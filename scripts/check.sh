#!/usr/bin/env bash
# Tier-1 verification cycle plus sanitizer passes over the verification
# suite. Usage: scripts/check.sh [mode] [build-dir]
#   mode: all (default) | tier1 | asan | tsan
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"
BUILD="${2:-build}"

case "$MODE" in
  all|tier1|asan|tsan) ;;
  *) echo "usage: scripts/check.sh [all|tier1|asan|tsan] [build-dir]" >&2
     exit 2 ;;
esac

if [[ "$MODE" == all || "$MODE" == tier1 ]]; then
  echo "== tier-1: configure + build + full test suite =="
  cmake -B "$BUILD" -S .
  cmake --build "$BUILD" -j
  ctest --test-dir "$BUILD" --output-on-failure -j
fi

if [[ "$MODE" == all || "$MODE" == asan ]]; then
  echo "== sanitizers: ASan+UBSan build of the verification suite =="
  SAN_BUILD="${BUILD}-asan"
  cmake -B "$SAN_BUILD" -S . -DCALIBRO_SANITIZE=address,undefined
  cmake --build "$SAN_BUILD" -j \
        --target test_verify test_outliner test_suffixtree \
                 test_serialize test_faultinject test_cache test_analysis \
                 test_service test_layout
  ctest --test-dir "$SAN_BUILD" --output-on-failure \
        -R '^(test_verify|test_outliner|test_suffixtree|test_serialize|test_faultinject|test_cache|test_analysis|test_service|test_layout)$'
fi

if [[ "$MODE" == all || "$MODE" == tsan ]]; then
  echo "== sanitizers: TSan build of the parallel link-stage suite =="
  TSAN_BUILD="${BUILD}-tsan"
  cmake -B "$TSAN_BUILD" -S . -DCALIBRO_SANITIZE=thread
  cmake --build "$TSAN_BUILD" -j --target test_parallel test_support \
                                          test_faultinject test_cache \
                                          test_analysis test_service \
                                          test_layout
  ctest --test-dir "$TSAN_BUILD" --output-on-failure \
        -R '^(test_parallel|test_support|test_faultinject|test_cache|test_analysis|test_service|test_layout)$'
fi

echo "check.sh ($MODE): all green"
