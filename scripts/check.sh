#!/usr/bin/env bash
# Tier-1 verification cycle plus a sanitizer pass over the verification
# suite. Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier-1: configure + build + full test suite =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo "== sanitizers: ASan+UBSan build of the verification suite =="
SAN_BUILD="${BUILD}-asan"
cmake -B "$SAN_BUILD" -S . -DCALIBRO_SANITIZE=address,undefined
cmake --build "$SAN_BUILD" -j --target test_verify test_outliner test_suffixtree
ctest --test-dir "$SAN_BUILD" --output-on-failure \
      -R '^(test_verify|test_outliner|test_suffixtree)$'

echo "== sanitizers: TSan build of the parallel link-stage suite =="
TSAN_BUILD="${BUILD}-tsan"
cmake -B "$TSAN_BUILD" -S . -DCALIBRO_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j --target test_parallel test_support
ctest --test-dir "$TSAN_BUILD" --output-on-failure \
      -R '^(test_parallel|test_support)$'

echo "check.sh: all green"
