#!/usr/bin/env python3
"""Structural diff for bench JSON artifacts.

Bench *values* are machine- and load-dependent, so CI cannot pin them. The
*shape* — which fields each table emits, and of what kind — is part of the
bench's contract with downstream tooling, and a refactor that silently
drops or renames a field should fail the build. This script reduces a JSON
document to its recursive shape and diffs two shapes:

  - dict  -> {key: shape(value)} with keys sorted
  - list  -> the union shape of all element shapes (so rows may vary in
             count but not in structure)
  - scalar -> its type name (bool before int: bool is an int in Python)

Usage: check_bench_schema.py GOLDEN.json CANDIDATE.json [GOLDEN CANDIDATE]...
Each GOLDEN/CANDIDATE pair is diffed independently. Exits 0 when every
pair's shapes match, 1 with a per-path report for each pair that differs.
"""

import json
import sys


def shape(node):
    if isinstance(node, dict):
        return {key: shape(value) for key, value in sorted(node.items())}
    if isinstance(node, list):
        merged = None
        for element in node:
            merged = merge(merged, shape(element))
        return [merged if merged is not None else "empty"]
    if isinstance(node, bool):
        return "bool"
    if isinstance(node, (int, float)):
        return "number"
    if node is None:
        return "null"
    return type(node).__name__


def merge(a, b):
    """Union of two shapes; mismatches collapse to a tagged pair so the
    diff below reports them at the right path."""
    if a is None:
        return b
    if a == b:
        return a
    if isinstance(a, dict) and isinstance(b, dict):
        return {k: merge(a.get(k), b.get(k)) for k in sorted(set(a) | set(b))}
    if isinstance(a, list) and isinstance(b, list):
        return [merge(a[0], b[0])]
    return ("mismatch", a, b)


def diff(golden, candidate, path, out):
    if isinstance(golden, dict) and isinstance(candidate, dict):
        for key in sorted(set(golden) | set(candidate)):
            here = f"{path}.{key}" if path else key
            if key not in candidate:
                out.append(f"missing field: {here}")
            elif key not in golden:
                out.append(f"new field: {here}")
            else:
                diff(golden[key], candidate[key], here, out)
        return
    if isinstance(golden, list) and isinstance(candidate, list):
        diff(golden[0], candidate[0], path + "[]", out)
        return
    if golden != candidate:
        out.append(f"type changed at {path}: {golden!r} -> {candidate!r}")


def check_pair(golden_path, candidate_path):
    with open(golden_path) as f:
        golden = shape(json.load(f))
    with open(candidate_path) as f:
        candidate = shape(json.load(f))
    problems = []
    diff(golden, candidate, "", problems)
    if problems:
        print(f"bench schema drift ({golden_path} vs {candidate_path}):")
        for p in problems:
            print(f"  {p}")
        return False
    print(f"bench schema OK: {candidate_path} matches {golden_path}")
    return True


def main(argv):
    if len(argv) < 3 or len(argv) % 2 != 1:
        print("usage: check_bench_schema.py GOLDEN.json CANDIDATE.json "
              "[GOLDEN CANDIDATE]...",
              file=sys.stderr)
        return 2
    ok = True
    for i in range(1, len(argv), 2):
        ok &= check_pair(argv[i], argv[i + 1])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
