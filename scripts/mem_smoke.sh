#!/usr/bin/env bash
# Memory-budgeted streaming smoke gate. Builds the table5 harness and the
# CLI, then enforces the two windowed-linking invariants at small scale:
#
#   1. the detect-phase window peak stays under the budget (+slack), and
#   2. the windowed image is byte-identical to the monolithic one (cmp).
#
# table5_memory itself exits non-zero when its own shape checks fail
# (byte-identity across the budget sweep, bounded peak under a fixed budget
# while the unbudgeted peak grows with input size), so running it IS a gate,
# not just a report. Usage: scripts/mem_smoke.sh [build-dir] [scale]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SCALE="${2:-0.3}"
BUDGET=600000      # bytes; comfortably tight at this scale (8 windows)
SLACK_PCT=25       # real peak may exceed the budget by at most this much

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j --target table5_memory calibro-dex2oat

echo "== mem-smoke: table5 shape gates (scale $SCALE) =="
(cd "$BUILD/bench" && ./table5_memory "$SCALE")

echo "== mem-smoke: CLI windowed-vs-monolithic (budget $BUDGET) =="
./"$BUILD"/tools/calibro-dex2oat --app Wechat --scale "$SCALE" --cto --ltbo \
  --partitions 8 --threads 4 -o mono.oat 2> mono.log
./"$BUILD"/tools/calibro-dex2oat --app Wechat --scale "$SCALE" --cto --ltbo \
  --partitions 8 --threads 4 --memory-budget "$BUDGET" -o win.oat 2> win.log
cat win.log

# Identity: windowing may change where intermediates live, never the image.
cmp mono.oat win.oat

# Bound: the reported window peak must not exceed budget + slack. The CLI
# prints "window peak <N> bytes (budget <B>)".
PEAK=$(grep -oE 'window peak [0-9]+' win.log | grep -oE '[0-9]+')
test -n "$PEAK"
LIMIT=$(( BUDGET + BUDGET * SLACK_PCT / 100 ))
if (( PEAK > LIMIT )); then
  echo "mem-smoke: window peak $PEAK bytes exceeds budget $BUDGET (+${SLACK_PCT}% = $LIMIT)" >&2
  exit 1
fi
echo "mem-smoke: peak $PEAK <= $LIMIT, images identical — all green"
