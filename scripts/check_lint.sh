#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every first-party source file
# in the compile database and diffs the normalized findings against the
# checked-in baseline. New findings fail; fixed findings just print a
# reminder to shrink the baseline.
#
#   scripts/check_lint.sh            # gate against scripts/lint_baseline.txt
#   scripts/check_lint.sh --update   # regenerate the baseline
#
# Findings are normalized to "<repo-relative-file>: <check-name>" and
# deduplicated, so line-number churn from unrelated edits does not
# invalidate the baseline.
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE=scripts/lint_baseline.txt
BUILD=${BUILD_DIR:-build}

TIDY=$(command -v clang-tidy || true)
if [ -z "$TIDY" ]; then
  echo "check_lint: clang-tidy not installed; skipping (CI installs it)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

FILES=$(git ls-files 'src/**/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'tests/*.cpp')

CURRENT=$(mktemp)
trap 'rm -f "$CURRENT"' EXIT
# shellcheck disable=SC2086
$TIDY -p "$BUILD" --quiet $FILES 2>/dev/null |
  grep -E 'warning:.*\[[a-z0-9.-]+\]$' |
  sed -E "s|^$(pwd)/||" |
  sed -E 's|^([^:]+):[0-9]+:[0-9]+: warning:.*\[([a-z0-9.-]+)\]$|\1: \2|' |
  sort -u > "$CURRENT" || true

if [ "${1:-}" = "--update" ]; then
  {
    echo "# clang-tidy baseline: one '<file>: <check>' line per tolerated"
    echo "# finding. Regenerate with scripts/check_lint.sh --update."
    cat "$CURRENT"
  } > "$BASELINE"
  echo "check_lint: baseline updated ($(wc -l < "$CURRENT") findings)"
  exit 0
fi

KNOWN=$(mktemp)
trap 'rm -f "$CURRENT" "$KNOWN"' EXIT
grep -v '^#' "$BASELINE" > "$KNOWN" || true

NEW=$(comm -13 <(sort -u "$KNOWN") "$CURRENT" || true)
FIXED=$(comm -23 <(sort -u "$KNOWN") "$CURRENT" || true)

if [ -n "$FIXED" ]; then
  echo "check_lint: findings fixed since baseline (run --update to shrink):"
  echo "$FIXED" | sed 's/^/  /'
fi
if [ -n "$NEW" ]; then
  echo "check_lint: NEW findings not in $BASELINE:" >&2
  echo "$NEW" | sed 's/^/  /' >&2
  echo "check_lint: fix them or run scripts/check_lint.sh --update" >&2
  exit 1
fi
echo "check_lint: clean ($(wc -l < "$CURRENT") findings, all baselined)"
