//===- bench/table6_build_time.cpp - Paper Table 6 --------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 6: building time per app for the baseline, the
/// single-global-suffix-tree CTO+LTBO, and the paralleled-suffix-tree
/// PlOpti variant, plus the growth ratios relative to the baseline.
///
/// Paper reference: CTO+LTBO slows the build by 489.5% on average (single
/// thread, one global tree), PlOpti by 70.8% (8 trees). Also includes the
/// K-sweep ablation (the trade-off knob §4.4 mentions) with the per-phase
/// breakdown of the parallel link pipeline, the link-stage speedup of the
/// parallel/radix implementation over the serial suffix-tree configuration,
/// and the suffix-array construction comparison (comparison-sorted prefix
/// doubling vs. radix-sorted doubling vs. linear-time SA-IS, including a
/// scale-8 input where the asymptotic gap actually shows). Everything is
/// also emitted as machine-readable JSON (BENCH_build_time.json in the
/// working directory).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "oat/Serialize.h"
#include "suffixtree/SuffixArray.h"
#include "support/Arena.h"
#include "support/Timer.h"

#include <algorithm>
#include <filesystem>
#include <numeric>

using namespace calibro;
using namespace calibro::bench;

namespace {

/// Median-of-5 wall-clock build time (short builds on a small shared box
/// are noisy; the median rejects scheduler hiccups).
double timedBuild(const dex::App &App, const core::CalibroOptions &Opts,
                  uint64_t *TextBytes = nullptr,
                  core::BuildStats *StatsOut = nullptr) {
  constexpr int Reps = 5;
  double Times[Reps];
  for (int K = 0; K < Reps; ++K) {
    Timer T;
    auto B = build(App, Opts);
    Times[K] = T.seconds();
    if (TextBytes)
      *TextBytes = B.Oat.textBytes();
    if (StatsOut)
      *StatsOut = B.Stats;
  }
  std::sort(Times, Times + Reps);
  return Times[Reps / 2];
}

/// Median-of-5 LTBO link-stage wall-clock (the outlining stage alone, as
/// reported by the build driver).
double timedLtboStage(const dex::App &App, const core::CalibroOptions &Opts) {
  constexpr int Reps = 5;
  double Times[Reps];
  for (int K = 0; K < Reps; ++K)
    Times[K] = build(App, Opts).Stats.LtboSeconds;
  std::sort(Times, Times + Reps);
  return Times[Reps / 2];
}

/// The seed implementation's suffix-array construction: prefix doubling
/// with a comparison sort over (rank, rank+K) pairs per round — O(n log^2 n)
/// with 64-bit keys. Kept here (only here) as the bench baseline the radix
/// construction is measured against.
std::vector<uint32_t> legacySortDoublingSa(std::vector<uint64_t> T) {
  T.push_back(~uint64_t(0)); // The seed's reserved sentinel symbol.
  const uint32_t N = static_cast<uint32_t>(T.size());
  std::vector<uint32_t> Sa(N), Rank(N), NewRank(N);
  std::iota(Sa.begin(), Sa.end(), 0);
  std::sort(Sa.begin(), Sa.end(),
            [&](uint32_t A, uint32_t B) { return T[A] < T[B]; });
  Rank[Sa[0]] = 0;
  for (uint32_t I = 1; I < N; ++I)
    Rank[Sa[I]] = Rank[Sa[I - 1]] + (T[Sa[I]] != T[Sa[I - 1]]);
  for (uint32_t K = 1; K < N; K *= 2) {
    auto Key = [&](uint32_t S) {
      uint64_t Second = S + K < N ? Rank[S + K] + 1 : 0;
      return (static_cast<uint64_t>(Rank[S]) << 32) | Second;
    };
    std::sort(Sa.begin(), Sa.end(),
              [&](uint32_t A, uint32_t B) { return Key(A) < Key(B); });
    NewRank[Sa[0]] = 0;
    for (uint32_t I = 1; I < N; ++I)
      NewRank[Sa[I]] = NewRank[Sa[I - 1]] + (Key(Sa[I]) != Key(Sa[I - 1]));
    Rank.swap(NewRank);
    if (Rank[Sa[N - 1]] == N - 1)
      break;
  }
  return Sa;
}

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

/// Simulated incremental edit: bump the first ConstInt immediate of the
/// first ceil(Fraction * N) non-native methods. Each bump changes that
/// method's dex content (a cache miss) and its compiled code (a changed
/// content digest), exactly like a small source edit would.
dex::App churnApp(const dex::App &Base, double Fraction) {
  dex::App A = Base;
  std::size_t Want = static_cast<std::size_t>(
      static_cast<double>(Base.numMethods()) * Fraction + 0.999);
  std::size_t Done = 0;
  for (auto &F : A.Files)
    for (auto &M : F.Methods) {
      if (Done >= Want)
        return A;
      if (M.IsNative)
        continue;
      for (auto &I : M.Code)
        if (I.Opcode == dex::Op::ConstInt) {
          I.Imm += 1;
          ++Done;
          break;
        }
    }
  return A;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv, 2.0);
  std::printf("Table 6: building time (scale %.2f)\n"
              "paper: CTO+LTBO +489.5%% avg (one global tree), "
              "+PlOpti +70.8%% avg (8 trees)\n\n",
              Scale);

  std::vector<std::string> Names, BaseRow, FullRow, ParRow, FullPct, ParPct;
  std::vector<double> BaseT, FullT, ParT;
  double FullSum = 0, ParSum = 0;

  auto Specs = workload::paperApps(Scale);
  for (const auto &Spec : Specs) {
    dex::App App = workload::makeApp(Spec);
    Names.push_back(Spec.Name);
    double TBase = timedBuild(App, baselineOpts());
    double TFull = timedBuild(App, ctoLtboOpts());
    double TPar = timedBuild(App, plOpts());
    BaseT.push_back(TBase);
    FullT.push_back(TFull);
    ParT.push_back(TPar);
    BaseRow.push_back(fmtSec(TBase));
    FullRow.push_back(fmtSec(TFull));
    ParRow.push_back(fmtSec(TPar));
    double FullGrowth = 100.0 * (TFull / TBase - 1.0);
    double ParGrowth = 100.0 * (TPar / TBase - 1.0);
    FullPct.push_back(fmtPct(FullGrowth));
    ParPct.push_back(fmtPct(ParGrowth));
    FullSum += FullGrowth;
    ParSum += ParGrowth;
  }
  double N = static_cast<double>(Specs.size());
  Names.push_back("AVG");
  BaseRow.push_back("/");
  FullRow.push_back("/");
  ParRow.push_back("/");
  FullPct.push_back(fmtPct(FullSum / N));
  ParPct.push_back(fmtPct(ParSum / N));

  printRow("", Names);
  printRow("Baseline", BaseRow);
  printRow("CTO+LTBO (1 tree)", FullRow);
  printRow("CTO+LTBO+PlOpti (8)", ParRow);
  printRow("growth: CTO+LTBO", FullPct);
  printRow("growth: +PlOpti", ParPct);

  std::printf("\nshape check: PlOpti growth << global-tree growth : %s\n",
              ParSum < FullSum ? "PASS" : "FAIL");

  // Ablation: the K trade-off (build time vs. size reduction), Wechat —
  // now with the per-phase breakdown of the parallel link pipeline.
  std::printf("\nablation: partition count K on %s\n",
              Specs[5].Name.c_str());
  dex::App App = workload::makeApp(Specs[5]);
  uint64_t BaseBytes = build(App, baselineOpts()).Oat.textBytes();
  std::printf("%6s %10s %10s %10s %10s %10s %12s %12s\n", "K", "build",
              "preproc", "detect", "select", "rewrite", "size saved",
              "detect peak");
  struct KRow {
    uint32_t K;
    double Build, Preprocess, Detect, Select, Rewrite, SavedPct;
    std::size_t DetectPeakBytes;
  };
  std::vector<KRow> KRows;
  for (uint32_t K : {1u, 2u, 4u, 8u, 16u, 32u}) {
    core::CalibroOptions O = ctoLtboOpts();
    O.LtboPartitions = K;
    O.LtboThreads = K > 1 ? 2 : 1;
    uint64_t Bytes = 0;
    core::BuildStats Stats;
    double T = timedBuild(App, O, &Bytes, &Stats);
    double Saved = 100.0 * (1.0 - double(Bytes) / double(BaseBytes));
    const auto &L = Stats.Ltbo;
    std::printf("%6u %10s %10s %10s %10s %10s %12s %11zuK\n", K,
                fmtSec(T).c_str(), fmtSec(L.PreprocessSeconds).c_str(),
                fmtSec(L.BuildTreeSeconds).c_str(),
                fmtSec(L.SelectSeconds).c_str(),
                fmtSec(L.RewriteSeconds).c_str(), fmtPct(Saved).c_str(),
                L.DetectPeakBytes / 1024);
    KRows.push_back({K, T, L.PreprocessSeconds, L.BuildTreeSeconds,
                     L.SelectSeconds, L.RewriteSeconds, Saved,
                     L.DetectPeakBytes});
  }
  // Selection cost must stay sublinear in K: more partitions mean more
  // (smaller) candidate sets, and the per-candidate work is bounded by the
  // clamped-interval dedup, so doubling K from 16 to 32 must not double
  // select time. The old first-occurrence scan walked every leaf position
  // per candidate and blew up here.
  double Select16 = KRows[4].Select, Select32 = KRows[5].Select;
  std::printf("  select sublinear in K (k=32 <= 2x k=16): %.4fs vs %.4fs : "
              "%s\n",
              Select32, Select16,
              Select32 <= 2.0 * Select16 + 0.001 ? "PASS" : "FAIL");

  // Ablation: detection backend (suffix tree vs. suffix array). Both make
  // identical outlining decisions; only the build-time profile differs.
  std::printf("\nablation: detection backend on %s (K = 1)\n",
              Specs[5].Name.c_str());
  for (auto [Label, Kind] :
       {std::pair<const char *, core::DetectorKind>{
            "suffix tree", core::DetectorKind::SuffixTree},
        {"suffix array", core::DetectorKind::SuffixArray}}) {
    core::CalibroOptions O = ctoLtboOpts();
    O.LtboDetector = Kind;
    uint64_t Bytes = 0;
    double T = timedBuild(App, O, &Bytes);
    std::printf("  %-14s %12s %12s\n", Label, fmtSec(T).c_str(),
                fmtPct(100.0 * (1.0 - double(Bytes) / double(BaseBytes)))
                    .c_str());
  }

  // Link-stage speedup: LTBO wall-clock at K = 1 for detector x thread
  // count. The serial suffix tree is the seed configuration; the radix
  // suffix array plus the parallel pipeline is the optimized one.
  std::printf("\nlink stage: LTBO wall-clock on %s (K = 1)\n",
              Specs[5].Name.c_str());
  struct LinkRow {
    const char *Detector;
    uint32_t Threads;
    double Seconds;
  };
  std::vector<LinkRow> LinkRows;
  for (auto [Label, Kind] :
       {std::pair<const char *, core::DetectorKind>{
            "tree", core::DetectorKind::SuffixTree},
        {"array", core::DetectorKind::SuffixArray}}) {
    for (uint32_t Threads : {1u, 8u}) {
      core::CalibroOptions O = ctoLtboOpts();
      O.LtboDetector = Kind;
      O.LtboThreads = Threads;
      double T = timedLtboStage(App, O);
      std::printf("  %-6s %u thread%s %12s\n", Label, Threads,
                  Threads == 1 ? " " : "s", fmtSec(T).c_str());
      LinkRows.push_back({Label, Threads, T});
    }
  }
  double SerialSeed = LinkRows[0].Seconds;  // tree, 1 thread
  double Optimized = LinkRows[3].Seconds;   // array, 8 threads
  double LinkSpeedup = Optimized > 0 ? SerialSeed / Optimized : 0;
  std::printf("  speedup (tree serial -> array 8t): %.2fx : %s\n",
              LinkSpeedup, LinkSpeedup >= 2.0 ? "PASS" : "FAIL");

  // Suffix-array construction alone: the seed's comparison-sorted prefix
  // doubling vs. the radix-sorted doubling vs. linear-time SA-IS (the
  // shipping construction), on the app's linked .text as the symbol
  // sequence. SA-IS is timed as the detect phase runs it: full constructor
  // (array + LCP + interval sweep) with a warm reusable arena — the
  // doubling baselines are array-only, so its numbers are conservative.
  std::vector<uint64_t> SaText;
  {
    auto Full = build(App, ctoOpts());
    SaText.assign(Full.Oat.Text.begin(), Full.Oat.Text.end());
  }
  support::Arena SaArena;
  auto TimeConstructions = [&SaArena](const std::vector<uint64_t> &Text,
                                      double &LegacyOut, double &RadixOut,
                                      double &SaIsOut, bool WithLegacy) {
    std::vector<double> LegacyTimes, RadixTimes, SaIsTimes;
    for (int Rep = 0; Rep < 5; ++Rep) {
      if (WithLegacy) {
        Timer TL;
        auto Sa = legacySortDoublingSa(Text);
        LegacyTimes.push_back(TL.seconds());
        if (Sa.empty())
          std::printf("unreachable\n");
      }
      Timer TR;
      auto Radix = st::prefixDoublingSuffixArray(Text);
      RadixTimes.push_back(TR.seconds());
      if (Radix.empty())
        std::printf("unreachable\n");
      SaArena.reset();
      Timer TS;
      st::SuffixArray A{std::vector<uint64_t>(Text), &SaArena};
      SaIsTimes.push_back(TS.seconds());
      if (A.textSize() != Text.size())
        std::printf("unreachable\n");
    }
    LegacyOut = WithLegacy ? medianOf(LegacyTimes) : 0;
    RadixOut = medianOf(RadixTimes);
    SaIsOut = medianOf(SaIsTimes);
  };
  double LegacySec = 0, RadixSec = 0, SaIsSec = 0;
  TimeConstructions(SaText, LegacySec, RadixSec, SaIsSec, true);
  std::printf("\nSA construction on %zu symbols:\n"
              "  sort-doubling (seed)    %12s\n"
              "  radix-doubling          %12s\n"
              "  SA-IS (+LCP intervals)  %12s\n"
              "  radix vs sort: %.2fx   SA-IS vs radix: %.2fx\n",
              SaText.size(), fmtSec(LegacySec).c_str(),
              fmtSec(RadixSec).c_str(), fmtSec(SaIsSec).c_str(),
              LegacySec / RadixSec, RadixSec / SaIsSec);

  // Doubling's round count is log2 of the longest repeat, so on typical
  // app text (shallow repeats) it exits early and runs neck and neck with
  // SA-IS. What SA-IS buys is the *bound*: detect cost stays linear no
  // matter how repetitive the input — and repeat-heavy input is precisely
  // the detector's target. The acceptance gate therefore measures a
  // scale >= 8 corpus in both shapes: the plain text (recorded, no gate)
  // and its tandem duplication (longest repeat = n/2, doubling's worst
  // case), where SA-IS must win by >= 2x.
  double SaIsScale = std::max(Scale, 8.0);
  std::vector<uint64_t> SaText8;
  {
    dex::App App8 = workload::makeApp(workload::paperApps(SaIsScale)[5]);
    auto Full8 = build(App8, ctoOpts());
    SaText8.assign(Full8.Oat.Text.begin(), Full8.Oat.Text.end());
  }
  double Unused = 0, Radix8Sec = 0, SaIs8Sec = 0;
  TimeConstructions(SaText8, Unused, Radix8Sec, SaIs8Sec, false);
  std::vector<uint64_t> Tandem = SaText8;
  Tandem.insert(Tandem.end(), SaText8.begin(), SaText8.end());
  double RadixWorst = 0, SaIsWorst = 0;
  TimeConstructions(Tandem, Unused, RadixWorst, SaIsWorst, false);
  double SaIsSpeedup8 = SaIs8Sec > 0 ? Radix8Sec / SaIs8Sec : 0;
  double WorstSpeedup = SaIsWorst > 0 ? RadixWorst / SaIsWorst : 0;
  std::printf("  scale %.0f (%zu symbols): radix %s, SA-IS %s (%.2fx)\n"
              "  scale %.0f tandem x2 (%zu symbols): radix %s, SA-IS %s\n"
              "  SA-IS speedup on repeat-heavy input at scale >= 8: %.2fx : "
              "%s\n",
              SaIsScale, SaText8.size(), fmtSec(Radix8Sec).c_str(),
              fmtSec(SaIs8Sec).c_str(), SaIsSpeedup8, SaIsScale,
              Tandem.size(), fmtSec(RadixWorst).c_str(),
              fmtSec(SaIsWorst).c_str(), WorstSpeedup,
              WorstSpeedup >= 2.0 ? "PASS" : "FAIL");

  // Incremental builds (ISSUE 5): cold vs warm under simulated churn. Each
  // warm measurement resets the store, populates it with one cold build of
  // the pre-edit app, then times the cache-enabled build of the edited app.
  namespace fs = std::filesystem;
  const fs::path CacheDir = fs::temp_directory_path() / "calibro-table6-cache";
  core::CalibroOptions CacheOpts = plOpts();
  CacheOpts.CacheDir = CacheDir.string();

  std::vector<double> ColdTimes;
  for (int Rep = 0; Rep < 3; ++Rep) {
    fs::remove_all(CacheDir);
    Timer T;
    auto B = build(App, CacheOpts);
    ColdTimes.push_back(T.seconds());
    if (B.Stats.CacheHits)
      std::printf("unreachable: cold build hit the cache\n");
  }
  double ColdS = medianOf(ColdTimes);
  double NoCacheS = ParT[5]; // Same app + config, cache disabled.
  double ColdOverheadPct = 100.0 * (ColdS / NoCacheS - 1.0);

  std::printf("\nincremental: cold vs warm on %s (PlOpti config, "
              "cache enabled)\n"
              "  cold %s (no-cache %s, overhead %s)\n"
              "%10s %10s %10s %10s %10s %12s\n",
              Specs[5].Name.c_str(), fmtSec(ColdS).c_str(),
              fmtSec(NoCacheS).c_str(), fmtPct(ColdOverheadPct).c_str(),
              "churn", "warm", "hit rate", "reused", "speedup", "identical");
  struct WarmRow {
    double ChurnPct, WarmS, HitRate, Speedup;
    std::size_t GroupsReused, GroupsDetected;
    bool Identical;
  };
  std::vector<WarmRow> WarmRows;
  for (double Churn : {0.0, 0.01, 0.10, 0.50}) {
    dex::App Edited = churnApp(App, Churn);
    const std::vector<uint8_t> RefBytes =
        oat::serializeOat(build(Edited, plOpts()).Oat);
    std::vector<double> Times;
    core::BuildStats WS;
    bool Identical = true;
    for (int Rep = 0; Rep < 3; ++Rep) {
      fs::remove_all(CacheDir);
      build(App, CacheOpts); // Populate with the pre-edit input.
      Timer T;
      auto W = build(Edited, CacheOpts);
      Times.push_back(T.seconds());
      WS = W.Stats;
      Identical &= oat::serializeOat(W.Oat) == RefBytes;
    }
    double WarmS = medianOf(Times);
    double HitRate = static_cast<double>(WS.CacheHits) /
                     static_cast<double>(WS.CacheHits + WS.CacheMisses);
    WarmRow Row{100.0 * Churn,
                WarmS,
                HitRate,
                WarmS > 0 ? ColdS / WarmS : 0,
                WS.Ltbo.GroupsReused,
                WS.Ltbo.GroupsDetected,
                Identical};
    WarmRows.push_back(Row);
    std::printf("%9.0f%% %10s %9.1f%% %7zu/%-2zu %9.2fx %12s\n", Row.ChurnPct,
                fmtSec(WarmS).c_str(), 100.0 * HitRate, Row.GroupsReused,
                Row.GroupsReused + Row.GroupsDetected, Row.Speedup,
                Identical ? "yes" : "NO");
  }
  fs::remove_all(CacheDir);
  // Acceptance: the cache must actually be *used* — that is what the hit
  // counters measure, and they are deterministic. Wall-clock speedup on a
  // small shared box is not: at low absolute build times the constant-cost
  // tail (store I/O, serialization) dominates and a flat >= 3x bar flakes.
  // So the gate is hit-rate thresholds per churn level plus tiered wall
  // bounds: strict at 0% churn (everything replays), moderate at 1%, and
  // only a warm-not-slower sanity margin at 10%, where a single edited
  // method per group already forces full group re-detection and the method
  // cache is all that can help.
  bool HitRates = WarmRows[0].HitRate >= 0.99 && WarmRows[1].HitRate >= 0.98 &&
                  WarmRows[2].HitRate >= 0.89;
  bool WarmFast = WarmRows[0].Speedup >= 2.0 && WarmRows[1].Speedup >= 1.5 &&
                  WarmRows[2].Speedup >= 1.1;
  bool AllIdentical = true;
  for (const auto &R : WarmRows)
    AllIdentical &= R.Identical;
  std::printf("  warm hit rate (0%%/1%%/10%% churn >= .99/.98/.89) : %s\n"
              "  warm speedup (0%%/1%%/10%% churn >= 2/1.5/1.1x)   : %s\n"
              "  warm output byte-identical                     : %s\n",
              HitRates ? "PASS" : "FAIL", WarmFast ? "PASS" : "FAIL",
              AllIdentical ? "PASS" : "FAIL");

  // Machine-readable record of everything above.
  FILE *J = std::fopen("BENCH_build_time.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_build_time.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"scale\": %.3f,\n  \"apps\": [", Scale);
  for (std::size_t I = 0; I < Specs.size(); ++I)
    std::fprintf(J,
                 "%s\n    {\"name\": \"%s\", \"baseline_s\": %.4f, "
                 "\"cto_ltbo_s\": %.4f, \"plopti_s\": %.4f}",
                 I ? "," : "", Specs[I].Name.c_str(), BaseT[I], FullT[I],
                 ParT[I]);
  std::fprintf(J,
               "\n  ],\n  \"avg_growth_pct\": {\"cto_ltbo\": %.2f, "
               "\"plopti\": %.2f},\n  \"k_sweep\": [",
               FullSum / N, ParSum / N);
  for (std::size_t I = 0; I < KRows.size(); ++I)
    std::fprintf(J,
                 "%s\n    {\"k\": %u, \"build_s\": %.4f, "
                 "\"preprocess_s\": %.4f, \"detect_s\": %.4f, "
                 "\"select_s\": %.4f, \"rewrite_s\": %.4f, "
                 "\"saved_pct\": %.2f, \"detect_peak_bytes\": %zu}",
                 I ? "," : "", KRows[I].K, KRows[I].Build, KRows[I].Preprocess,
                 KRows[I].Detect, KRows[I].Select, KRows[I].Rewrite,
                 KRows[I].SavedPct, KRows[I].DetectPeakBytes);
  std::fprintf(J, "\n  ],\n  \"link_stage\": [");
  for (std::size_t I = 0; I < LinkRows.size(); ++I)
    std::fprintf(J,
                 "%s\n    {\"detector\": \"%s\", \"threads\": %u, "
                 "\"ltbo_s\": %.4f}",
                 I ? "," : "", LinkRows[I].Detector, LinkRows[I].Threads,
                 LinkRows[I].Seconds);
  std::fprintf(J,
               "\n  ],\n  \"link_stage_speedup\": %.3f,\n"
               "  \"sa_construction\": {\"symbols\": %zu, "
               "\"sort_doubling_s\": %.4f, \"radix_doubling_s\": %.4f, "
               "\"sais_s\": %.4f, \"sais_speedup\": %.3f,\n"
               "    \"scale8_symbols\": %zu, \"scale8_radix_s\": %.4f, "
               "\"scale8_sais_s\": %.4f, \"scale8_speedup\": %.3f,\n"
               "    \"scale8_worstcase_symbols\": %zu, "
               "\"scale8_worstcase_radix_s\": %.4f, "
               "\"scale8_worstcase_sais_s\": %.4f, "
               "\"scale8_worstcase_speedup\": %.3f},\n",
               LinkSpeedup, SaText.size(), LegacySec, RadixSec, SaIsSec,
               RadixSec / SaIsSec, SaText8.size(), Radix8Sec, SaIs8Sec,
               SaIsSpeedup8, Tandem.size(), RadixWorst, SaIsWorst,
               WorstSpeedup);
  std::fprintf(J,
               "  \"cold_vs_warm\": {\n    \"app\": \"%s\", "
               "\"cold_s\": %.4f, \"no_cache_s\": %.4f, "
               "\"cold_overhead_pct\": %.2f,\n    \"rows\": [",
               Specs[5].Name.c_str(), ColdS, NoCacheS, ColdOverheadPct);
  for (std::size_t I = 0; I < WarmRows.size(); ++I) {
    const auto &R = WarmRows[I];
    std::fprintf(J,
                 "%s\n      {\"churn_pct\": %.1f, \"warm_s\": %.4f, "
                 "\"hit_rate\": %.4f, \"groups_reused\": %zu, "
                 "\"groups_detected\": %zu, \"speedup\": %.3f, "
                 "\"identical\": %s}",
                 I ? "," : "", R.ChurnPct, R.WarmS, R.HitRate, R.GroupsReused,
                 R.GroupsDetected, R.Speedup, R.Identical ? "true" : "false");
  }
  std::fprintf(J, "\n    ]\n  }\n}\n");
  std::fclose(J);
  std::printf("\nwrote BENCH_build_time.json\n");
  return 0;
}
