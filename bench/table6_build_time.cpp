//===- bench/table6_build_time.cpp - Paper Table 6 --------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 6: building time per app for the baseline, the
/// single-global-suffix-tree CTO+LTBO, and the paralleled-suffix-tree
/// PlOpti variant, plus the growth ratios relative to the baseline.
///
/// Paper reference: CTO+LTBO slows the build by 489.5% on average (single
/// thread, one global tree), PlOpti by 70.8% (8 trees). Also includes the
/// K-sweep ablation (the trade-off knob §4.4 mentions).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Timer.h"

#include <algorithm>

using namespace calibro;
using namespace calibro::bench;

namespace {

/// Median-of-5 wall-clock build time (short builds on a small shared box
/// are noisy; the median rejects scheduler hiccups).
double timedBuild(const dex::App &App, const core::CalibroOptions &Opts,
                  uint64_t *TextBytes = nullptr) {
  constexpr int Reps = 5;
  double Times[Reps];
  for (int K = 0; K < Reps; ++K) {
    Timer T;
    auto B = build(App, Opts);
    Times[K] = T.seconds();
    if (TextBytes)
      *TextBytes = B.Oat.textBytes();
  }
  std::sort(Times, Times + Reps);
  return Times[Reps / 2];
}

} // namespace

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv, 2.0);
  std::printf("Table 6: building time (scale %.2f)\n"
              "paper: CTO+LTBO +489.5%% avg (one global tree), "
              "+PlOpti +70.8%% avg (8 trees)\n\n",
              Scale);

  std::vector<std::string> Names, BaseRow, FullRow, ParRow, FullPct, ParPct;
  double FullSum = 0, ParSum = 0;

  auto Specs = workload::paperApps(Scale);
  for (const auto &Spec : Specs) {
    dex::App App = workload::makeApp(Spec);
    Names.push_back(Spec.Name);
    double TBase = timedBuild(App, baselineOpts());
    double TFull = timedBuild(App, ctoLtboOpts());
    double TPar = timedBuild(App, plOpts());
    BaseRow.push_back(fmtSec(TBase));
    FullRow.push_back(fmtSec(TFull));
    ParRow.push_back(fmtSec(TPar));
    double FullGrowth = 100.0 * (TFull / TBase - 1.0);
    double ParGrowth = 100.0 * (TPar / TBase - 1.0);
    FullPct.push_back(fmtPct(FullGrowth));
    ParPct.push_back(fmtPct(ParGrowth));
    FullSum += FullGrowth;
    ParSum += ParGrowth;
  }
  double N = static_cast<double>(Specs.size());
  Names.push_back("AVG");
  BaseRow.push_back("/");
  FullRow.push_back("/");
  ParRow.push_back("/");
  FullPct.push_back(fmtPct(FullSum / N));
  ParPct.push_back(fmtPct(ParSum / N));

  printRow("", Names);
  printRow("Baseline", BaseRow);
  printRow("CTO+LTBO (1 tree)", FullRow);
  printRow("CTO+LTBO+PlOpti (8)", ParRow);
  printRow("growth: CTO+LTBO", FullPct);
  printRow("growth: +PlOpti", ParPct);

  std::printf("\nshape check: PlOpti growth << global-tree growth : %s\n",
              ParSum < FullSum ? "PASS" : "FAIL");

  // Ablation: the K trade-off (build time vs. size reduction), Wechat.
  std::printf("\nablation: partition count K on %s\n",
              Specs[5].Name.c_str());
  dex::App App = workload::makeApp(Specs[5]);
  uint64_t BaseBytes = build(App, baselineOpts()).Oat.textBytes();
  std::printf("%6s %12s %12s\n", "K", "build", "size saved");
  for (uint32_t K : {1u, 2u, 4u, 8u, 16u, 32u}) {
    core::CalibroOptions O = ctoLtboOpts();
    O.LtboPartitions = K;
    O.LtboThreads = K > 1 ? 2 : 1;
    uint64_t Bytes = 0;
    double T = timedBuild(App, O, &Bytes);
    std::printf("%6u %12s %12s\n", K, fmtSec(T).c_str(),
                fmtPct(100.0 * (1.0 - double(Bytes) / double(BaseBytes)))
                    .c_str());
  }

  // Ablation: detection backend (suffix tree vs. suffix array). Both make
  // identical outlining decisions; only the build-time profile differs.
  std::printf("\nablation: detection backend on %s (K = 1)\n",
              Specs[5].Name.c_str());
  for (auto [Label, Kind] :
       {std::pair<const char *, core::DetectorKind>{
            "suffix tree", core::DetectorKind::SuffixTree},
        {"suffix array", core::DetectorKind::SuffixArray}}) {
    core::CalibroOptions O = ctoLtboOpts();
    O.LtboDetector = Kind;
    uint64_t Bytes = 0;
    double T = timedBuild(App, O, &Bytes);
    std::printf("  %-14s %12s %12s\n", Label, fmtSec(T).c_str(),
                fmtPct(100.0 * (1.0 - double(Bytes) / double(BaseBytes)))
                    .c_str());
  }
  return 0;
}
