//===- bench/table1_redundancy.cpp - Paper Table 1 --------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: "Estimated code size reduction ratios in popular
/// apps" — the §2.2 analysis (instruction mapping, suffix tree, repeat
/// detection, Fig. 2 benefit model) over each app's baseline-compiled
/// binary code. Paper: 24.3%-27.7%, average 25.4%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/CodeGenerator.h"
#include "core/RedundancyAnalysis.h"
#include "hir/Passes.h"

using namespace calibro;
using namespace calibro::bench;

namespace {

/// Baseline-compiles every method of \p App (the analysis runs on
/// pre-Calibro binary code, exactly as §2.2 does).
std::vector<codegen::CompiledMethod> compileBaseline(const dex::App &App) {
  codegen::CtoStubCache Cache;
  codegen::CodeGenerator Gen({.EnableCto = false}, Cache);
  std::vector<codegen::CompiledMethod> Out;
  auto Pipeline = hir::defaultPipeline();
  App.forEachMethod([&](const dex::Method &M) {
    if (M.IsNative) {
      Out.push_back(Gen.compileNative(M));
      return;
    }
    auto G = hir::buildHGraph(M);
    if (!G) {
      std::fprintf(stderr, "%s\n", G.message().c_str());
      std::exit(1);
    }
    hir::runPipeline(*G, Pipeline);
    Out.push_back(Gen.compile(*G));
  });
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  std::printf("Table 1: estimated code-size reduction ratios (scale %.2f)\n"
              "paper: Toutiao 25.4%%  Taobao 26.3%%  Fanqie 24.5%%  Meituan "
              "24.3%%  Kuaishou 27.7%%  Wechat 24.3%%  AVG 25.4%%\n\n",
              Scale);

  std::vector<std::string> Names, Ratios;
  double Sum = 0;
  for (const auto &Spec : workload::paperApps(Scale)) {
    dex::App App = workload::makeApp(Spec);
    auto Methods = compileBaseline(App);
    auto Report = core::analyzeRedundancy(Methods, {});
    Names.push_back(Spec.Name);
    Ratios.push_back(fmtPct(100.0 * Report.EstimatedReductionRatio));
    Sum += Report.EstimatedReductionRatio;
    std::printf("  %-10s insns=%-8llu repeats claimed=%-8llu est=%s\n",
                Spec.Name.c_str(), (unsigned long long)Report.TotalInsns,
                (unsigned long long)Report.SavedInsns,
                fmtPct(100.0 * Report.EstimatedReductionRatio).c_str());
  }
  std::printf("\n");
  Names.push_back("AVG");
  Ratios.push_back(fmtPct(100.0 * Sum / 6.0));
  std::vector<std::string> Empty;
  printRow("", {Names.begin(), Names.end()});
  printRow("Estimated reduction", {Ratios.begin(), Ratios.end()});
  return 0;
}
