//===- bench/micro_suffixtree.cpp - Suffix tree microbenchmarks -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark suite for the redundancy-detection substrate: Ukkonen
/// construction throughput vs. input size, the partitioned build (the
/// PlOpti mechanism: K smaller trees are cheaper than one big one even on a
/// single thread), repeat enumeration, and the greedy benefit-model
/// selection.
///
//===----------------------------------------------------------------------===//

#include "core/BenefitModel.h"
#include "suffixtree/SuffixArray.h"
#include "suffixtree/SuffixTree.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace calibro;

namespace {

/// Synthesizes an instruction-stream-like symbol sequence: Zipf-skewed
/// idiom reuse over a small alphabet plus unique separators, mimicking what
/// LTBO feeds the tree.
std::vector<st::Symbol> makeSequence(std::size_t N, uint64_t Seed) {
  Rng R(Seed);
  ZipfSampler Pick(512, 1.05);
  std::vector<st::Symbol> Seq;
  Seq.reserve(N);
  uint64_t Sep = 0;
  while (Seq.size() < N) {
    if (R.nextBool(0.12)) {
      Seq.push_back(st::SeparatorBase + Sep++);
      continue;
    }
    Seq.push_back(0x91000000u + Pick.sample(R));
  }
  return Seq;
}

void BM_BuildGlobalTree(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  auto Seq = makeSequence(N, 42);
  for (auto _ : State) {
    std::vector<st::Symbol> Copy = Seq;
    st::SuffixTree Tree(std::move(Copy));
    benchmark::DoNotOptimize(Tree.numNodes());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BuildGlobalTree)->Range(1 << 10, 1 << 18);

void BM_BuildSuffixArray(benchmark::State &State) {
  // The alternative detection backend: O(n log^2 n) but with a compact,
  // cache-friendly working set.
  std::size_t N = static_cast<std::size_t>(State.range(0));
  auto Seq = makeSequence(N, 42);
  for (auto _ : State) {
    std::vector<st::Symbol> Copy = Seq;
    st::SuffixArray Arr(std::move(Copy));
    benchmark::DoNotOptimize(Arr.numNodes());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BuildSuffixArray)->Range(1 << 10, 1 << 18);

void BM_BuildPartitionedTrees(benchmark::State &State) {
  // Same total input, K partitions, built sequentially: isolates the
  // memory-locality benefit the paper credits PlOpti with (§3.4.1).
  std::size_t N = 1 << 17;
  std::size_t K = static_cast<std::size_t>(State.range(0));
  auto Seq = makeSequence(N, 42);
  for (auto _ : State) {
    std::size_t Nodes = 0;
    for (std::size_t P = 0; P < K; ++P) {
      std::size_t Lo = N * P / K, Hi = N * (P + 1) / K;
      st::SuffixTree Tree(
          std::vector<st::Symbol>(Seq.begin() + Lo, Seq.begin() + Hi));
      Nodes += Tree.numNodes();
    }
    benchmark::DoNotOptimize(Nodes);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BuildPartitionedTrees)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_EnumerateRepeats(benchmark::State &State) {
  auto Seq = makeSequence(1 << 16, 7);
  st::SuffixTree Tree(std::move(Seq));
  for (auto _ : State) {
    std::size_t Count = 0;
    Tree.forEachRepeat(2, 64, 2,
                       [&](const st::SuffixTree::RepeatInfo &) { ++Count; });
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_EnumerateRepeats);

void BM_GreedyBenefitSelection(benchmark::State &State) {
  auto Seq = makeSequence(1 << 16, 9);
  st::SuffixTree Tree(std::move(Seq));
  for (auto _ : State) {
    struct Cand {
      int32_t Node;
      uint32_t Len, Count;
      int64_t Ben;
    };
    std::vector<Cand> Cands;
    Tree.forEachRepeat(2, 64, 2, [&](const st::SuffixTree::RepeatInfo &R) {
      int64_t B = core::benefit(R.Length, R.Count);
      if (B > 0)
        Cands.push_back({R.Node, R.Length, R.Count, B});
    });
    std::sort(Cands.begin(), Cands.end(),
              [](const Cand &A, const Cand &B) { return A.Ben > B.Ben; });
    std::vector<bool> Claimed(Tree.textSize(), false);
    uint64_t Saved = 0;
    for (const auto &C : Cands) {
      uint32_t Taken = 0, LastEnd = 0;
      for (uint32_t P : Tree.positionsOf(C.Node)) {
        if (Taken && P < LastEnd)
          continue;
        bool Ok = true;
        for (uint32_t Q = P; Q < P + C.Len && Ok; ++Q)
          Ok = !Claimed[Q];
        if (!Ok)
          continue;
        for (uint32_t Q = P; Q < P + C.Len; ++Q)
          Claimed[Q] = true;
        ++Taken;
        LastEnd = P + C.Len;
      }
      if (core::isProfitable(C.Len, Taken))
        Saved += static_cast<uint64_t>(core::benefit(C.Len, Taken));
    }
    benchmark::DoNotOptimize(Saved);
  }
}
BENCHMARK(BM_GreedyBenefitSelection);

} // namespace

BENCHMARK_MAIN();
