//===- bench/table4_code_size.cpp - Paper Table 4 ---------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 4: on-disk OAT code-size reduction per app under
/// CTO+LTBO, +PlOpti and +PlOpti+HfOpti (plus the CTO-only number quoted in
/// §4.2, 3.56%). The HfOpti rows follow the Fig. 6 workflow: profile the
/// PlOpti build, then rebuild with the hot set excluded.
///
/// Paper reference (reduction vs. baseline):
///   CTO+LTBO            19.19% avg
///   CTO+LTBO+PlOpti     16.40% avg
///   CTO+LTBO+PlOpti+Hf  15.19% avg
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace calibro;
using namespace calibro::bench;

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  std::printf("Table 4: OAT code-size reduction (scale %.2f)\n"
              "paper: CTO 3.56%% | CTO+LTBO 19.19%% | +PlOpti 16.40%% | "
              "+HfOpti 15.19%% (averages)\n\n",
              Scale);

  std::vector<std::string> Names = {"config"};
  std::vector<std::string> BaseRow, CtoRow, FullRow, ParRow, HfRow;
  double CtoSum = 0, FullSum = 0, ParSum = 0, HfSum = 0;

  auto Specs = workload::paperApps(Scale);
  for (const auto &Spec : Specs) {
    dex::App App = workload::makeApp(Spec);
    auto Script = workload::makeScript(Spec, 20, 2024);
    Names.push_back(Spec.Name);

    auto Base = build(App, baselineOpts());
    auto Cto = build(App, ctoOpts());
    auto Full = build(App, ctoLtboOpts());
    auto Par = build(App, plOpts());

    // HfOpti: profile the PlOpti build, rebuild with the hot set excluded.
    auto ParRun = runScript(Par.Oat, Script, /*CollectProfile=*/true);
    core::CalibroOptions HfOpts = plOpts();
    HfOpts.Profile = &ParRun.Prof;
    auto Hf = build(App, HfOpts);

    double B = static_cast<double>(Base.Oat.textBytes());
    auto Pct = [B](const core::BuildResult &R) {
      return 100.0 * (1.0 - static_cast<double>(R.Oat.textBytes()) / B);
    };
    BaseRow.push_back(fmtBytes(Base.Oat.textBytes()));
    CtoRow.push_back(fmtPct(Pct(Cto)));
    FullRow.push_back(fmtPct(Pct(Full)));
    ParRow.push_back(fmtPct(Pct(Par)));
    HfRow.push_back(fmtPct(Pct(Hf)));
    CtoSum += Pct(Cto);
    FullSum += Pct(Full);
    ParSum += Pct(Par);
    HfSum += Pct(Hf);
  }

  double N = static_cast<double>(Specs.size());
  Names.push_back("AVG");
  BaseRow.push_back("/");
  CtoRow.push_back(fmtPct(CtoSum / N));
  FullRow.push_back(fmtPct(FullSum / N));
  ParRow.push_back(fmtPct(ParSum / N));
  HfRow.push_back(fmtPct(HfSum / N));

  printRow("", {Names.begin() + 1, Names.end()});
  printRow("Baseline (.text)", BaseRow);
  printRow("CTO", CtoRow);
  printRow("CTO+LTBO", FullRow);
  printRow("CTO+LTBO+PlOpti", ParRow);
  printRow("CTO+LTBO+PlOpti+HfOpti", HfRow);

  std::printf("\nshape checks:\n");
  std::printf("  CTO < PlOpti+HfOpti < PlOpti < CTO+LTBO : %s\n",
              (CtoSum < HfSum && HfSum < ParSum && ParSum < FullSum)
                  ? "PASS"
                  : "FAIL");

  // Closed-world stacked ablation: with the workload's dead-code knobs
  // armed, stack reachability GC, then global merging, then outlining, and
  // attribute the .text bytes each stage removes. The ladder holds CTO
  // constant so every delta is purely the stage's own effect.
  //
  //   B = GC off, merge off, LTBO off     (closed-world baseline)
  //   G = GC on,  merge off, LTBO off     gc_bytes      = B - G
  //   M = GC on,  merge on,  LTBO off     merge_bytes   = G - M
  //   F = GC on,  merge on,  LTBO on      outline_bytes = M - F
  //   O = GC off, merge off, LTBO on      (outline-only reference)
  std::printf("\nclosed-world stacked ablation (GC -> merge -> outline):\n");
  struct AblRow {
    std::string Name;
    uint64_t Base, Gc, Merge, Outline, Full, OutlineOnly;
  };
  std::vector<AblRow> Abl;
  bool AllStacked = true;
  for (auto Spec : Specs) {
    workload::enableDeadCode(Spec);
    dex::App App = workload::makeApp(Spec);
    auto TextBytes = [&](bool Gc, bool Merge, bool Ltbo) {
      core::CalibroOptions O = ctoOpts();
      O.EnableLtbo = Ltbo;
      O.EnableGc = Gc;
      O.EnableMerge = Merge;
      return build(App, O).Oat.textBytes();
    };
    AblRow R;
    R.Name = Spec.Name;
    R.Base = TextBytes(false, false, false);
    uint64_t G = TextBytes(true, false, false);
    uint64_t M = TextBytes(true, true, false);
    R.Full = TextBytes(true, true, true);
    R.OutlineOnly = TextBytes(false, false, true);
    R.Gc = R.Base - G;
    R.Merge = G - M;
    R.Outline = M - R.Full;
    AllStacked &= (R.Base - R.Full) > (R.Base - R.OutlineOnly);
    Abl.push_back(std::move(R));
  }
  std::vector<std::string> AblNames, GcRow, MergeRow, OutRow, StackRow,
      OnlyRow;
  for (const auto &R : Abl) {
    AblNames.push_back(R.Name);
    GcRow.push_back(fmtBytes(R.Gc));
    MergeRow.push_back(fmtBytes(R.Merge));
    OutRow.push_back(fmtBytes(R.Outline));
    StackRow.push_back(fmtPct(100.0 * (R.Base - R.Full) / R.Base));
    OnlyRow.push_back(fmtPct(100.0 * (R.Base - R.OutlineOnly) / R.Base));
  }
  printRow("", AblNames);
  printRow("gc_bytes", GcRow);
  printRow("merge_bytes", MergeRow);
  printRow("outline_bytes", OutRow);
  printRow("GC+merge+outline", StackRow);
  printRow("outline only", OnlyRow);
  std::printf("\n  GC+merge+outline > outline-only (every app) : %s\n",
              AllStacked ? "PASS" : "FAIL");

  // Machine-readable record; CI diffs its shape against the committed
  // golden (scripts/check_bench_schema.py).
  FILE *J = std::fopen("BENCH_code_size.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_code_size.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"scale\": %.3f,\n  \"avg_reduction_pct\": "
                  "{\"cto\": %.2f, \"cto_ltbo\": %.2f, \"plopti\": %.2f, "
                  "\"hfopti\": %.2f},\n  \"ablation\": [",
               Scale, CtoSum / N, FullSum / N, ParSum / N, HfSum / N);
  for (std::size_t I = 0; I < Abl.size(); ++I) {
    const AblRow &R = Abl[I];
    std::fprintf(J,
                 "%s\n    {\"name\": \"%s\", \"base_bytes\": %llu, "
                 "\"gc_bytes\": %llu, \"merge_bytes\": %llu, "
                 "\"outline_bytes\": %llu, \"full_bytes\": %llu, "
                 "\"outline_only_bytes\": %llu}",
                 I ? "," : "", R.Name.c_str(), (unsigned long long)R.Base,
                 (unsigned long long)R.Gc, (unsigned long long)R.Merge,
                 (unsigned long long)R.Outline, (unsigned long long)R.Full,
                 (unsigned long long)R.OutlineOnly);
  }
  std::fprintf(J, "\n  ],\n  \"stacked_ge_outline_only\": %s\n}\n",
               AllStacked ? "true" : "false");
  std::fclose(J);
  std::printf("\nwrote BENCH_code_size.json\n");
  return AllStacked ? 0 : 1;
}
