//===- bench/table4_code_size.cpp - Paper Table 4 ---------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 4: on-disk OAT code-size reduction per app under
/// CTO+LTBO, +PlOpti and +PlOpti+HfOpti (plus the CTO-only number quoted in
/// §4.2, 3.56%). The HfOpti rows follow the Fig. 6 workflow: profile the
/// PlOpti build, then rebuild with the hot set excluded.
///
/// Paper reference (reduction vs. baseline):
///   CTO+LTBO            19.19% avg
///   CTO+LTBO+PlOpti     16.40% avg
///   CTO+LTBO+PlOpti+Hf  15.19% avg
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace calibro;
using namespace calibro::bench;

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  std::printf("Table 4: OAT code-size reduction (scale %.2f)\n"
              "paper: CTO 3.56%% | CTO+LTBO 19.19%% | +PlOpti 16.40%% | "
              "+HfOpti 15.19%% (averages)\n\n",
              Scale);

  std::vector<std::string> Names = {"config"};
  std::vector<std::string> BaseRow, CtoRow, FullRow, ParRow, HfRow;
  double CtoSum = 0, FullSum = 0, ParSum = 0, HfSum = 0;

  auto Specs = workload::paperApps(Scale);
  for (const auto &Spec : Specs) {
    dex::App App = workload::makeApp(Spec);
    auto Script = workload::makeScript(Spec, 20, 2024);
    Names.push_back(Spec.Name);

    auto Base = build(App, baselineOpts());
    auto Cto = build(App, ctoOpts());
    auto Full = build(App, ctoLtboOpts());
    auto Par = build(App, plOpts());

    // HfOpti: profile the PlOpti build, rebuild with the hot set excluded.
    auto ParRun = runScript(Par.Oat, Script, /*CollectProfile=*/true);
    core::CalibroOptions HfOpts = plOpts();
    HfOpts.Profile = &ParRun.Prof;
    auto Hf = build(App, HfOpts);

    double B = static_cast<double>(Base.Oat.textBytes());
    auto Pct = [B](const core::BuildResult &R) {
      return 100.0 * (1.0 - static_cast<double>(R.Oat.textBytes()) / B);
    };
    BaseRow.push_back(fmtBytes(Base.Oat.textBytes()));
    CtoRow.push_back(fmtPct(Pct(Cto)));
    FullRow.push_back(fmtPct(Pct(Full)));
    ParRow.push_back(fmtPct(Pct(Par)));
    HfRow.push_back(fmtPct(Pct(Hf)));
    CtoSum += Pct(Cto);
    FullSum += Pct(Full);
    ParSum += Pct(Par);
    HfSum += Pct(Hf);
  }

  double N = static_cast<double>(Specs.size());
  Names.push_back("AVG");
  BaseRow.push_back("/");
  CtoRow.push_back(fmtPct(CtoSum / N));
  FullRow.push_back(fmtPct(FullSum / N));
  ParRow.push_back(fmtPct(ParSum / N));
  HfRow.push_back(fmtPct(HfSum / N));

  printRow("", {Names.begin() + 1, Names.end()});
  printRow("Baseline (.text)", BaseRow);
  printRow("CTO", CtoRow);
  printRow("CTO+LTBO", FullRow);
  printRow("CTO+LTBO+PlOpti", ParRow);
  printRow("CTO+LTBO+PlOpti+HfOpti", HfRow);

  std::printf("\nshape checks:\n");
  std::printf("  CTO < PlOpti+HfOpti < PlOpti < CTO+LTBO : %s\n",
              (CtoSum < HfSum && HfSum < ParSum && ParSum < FullSum)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
