//===- bench/micro_aarch64.cpp - Encoder/decoder microbenchmarks ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark suite for the binary substrate: encode and decode
/// throughput over representative instruction mixes, and the PC-relative
/// retargeting operation the LTBO patcher runs over every recorded
/// instruction.
///
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "aarch64/PcRel.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace calibro;
using namespace calibro::a64;

namespace {

/// A representative basic-block mix: data processing, loads/stores,
/// branches, like generated OAT code.
std::vector<Insn> makeMix(std::size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<Insn> Mix;
  Mix.reserve(N);
  for (std::size_t I = 0; I < N; ++I) {
    Insn X;
    switch (R.nextBelow(6)) {
    case 0:
      X.Op = Opcode::AddReg;
      X.Rd = R.nextBelow(29);
      X.Rn = R.nextBelow(29);
      X.Rm = R.nextBelow(29);
      break;
    case 1:
      X.Op = Opcode::MovZ;
      X.Rd = R.nextBelow(29);
      X.Imm = static_cast<int64_t>(R.nextBelow(65536));
      break;
    case 2:
      X.Op = Opcode::LdrImm;
      X.Rd = R.nextBelow(29);
      X.Rn = R.nextBelow(29);
      X.Imm = 8 * static_cast<int64_t>(R.nextBelow(64));
      break;
    case 3:
      X.Op = Opcode::SubsImm;
      X.Rd = ZR;
      X.Rn = R.nextBelow(29);
      X.Imm = static_cast<int64_t>(R.nextBelow(4096));
      break;
    case 4:
      X.Op = Opcode::Bcond;
      X.CC = Cond::NE;
      X.Imm = 4 * (static_cast<int64_t>(R.nextBelow(1024)) - 512);
      break;
    default:
      X.Op = Opcode::Bl;
      X.Imm = 4 * (static_cast<int64_t>(R.nextBelow(1 << 20)) - (1 << 19));
      break;
    }
    Mix.push_back(X);
  }
  return Mix;
}

void BM_Encode(benchmark::State &State) {
  auto Mix = makeMix(4096, 1);
  for (auto _ : State) {
    uint32_t Acc = 0;
    for (const auto &I : Mix)
      Acc ^= encode(I);
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * Mix.size());
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State &State) {
  auto Mix = makeMix(4096, 2);
  std::vector<uint32_t> Words;
  for (const auto &I : Mix)
    Words.push_back(encode(I));
  for (auto _ : State) {
    std::size_t Ok = 0;
    for (uint32_t W : Words)
      Ok += decode(W).has_value();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(State.iterations() * Words.size());
}
BENCHMARK(BM_Decode);

void BM_RoundTrip(benchmark::State &State) {
  auto Mix = makeMix(4096, 3);
  std::vector<uint32_t> Words;
  for (const auto &I : Mix)
    Words.push_back(encode(I));
  for (auto _ : State) {
    uint32_t Acc = 0;
    for (uint32_t W : Words)
      Acc ^= encode(*decode(W));
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * Words.size());
}
BENCHMARK(BM_RoundTrip);

void BM_RetargetWord(benchmark::State &State) {
  // The §3.3.4 patch operation: decode, re-point, re-encode.
  Insn B{.Op = Opcode::Bcond};
  B.CC = Cond::EQ;
  B.Imm = 0x40;
  uint32_t Word = encode(B);
  uint64_t Pc = 0x1000;
  for (auto _ : State) {
    auto Patched = retargetWord(Word, Pc, Pc + 0x80);
    benchmark::DoNotOptimize(*Patched);
  }
}
BENCHMARK(BM_RetargetWord);

} // namespace

BENCHMARK_MAIN();
