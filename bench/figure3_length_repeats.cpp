//===- bench/figure3_length_repeats.cpp - Paper Figure 3 --------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 3: "Sequence Length vs. Number of Repeats" for a
/// WeChat-class app. The paper's observation (Obs. 2): most repetitive
/// sequences are short, and the shorter the sequence, the higher the
/// repeat frequency. Printed as a series (length, total repeats) plus an
/// ASCII log-scale bar chart.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/CodeGenerator.h"
#include "core/RedundancyAnalysis.h"
#include "hir/Passes.h"

#include <cmath>

using namespace calibro;
using namespace calibro::bench;

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  auto Specs = workload::paperApps(Scale);
  const auto &Spec = Specs[5]; // Wechat.
  dex::App App = workload::makeApp(Spec);

  codegen::CtoStubCache Cache;
  codegen::CodeGenerator Gen({.EnableCto = false}, Cache);
  std::vector<codegen::CompiledMethod> Methods;
  auto Pipeline = hir::defaultPipeline();
  App.forEachMethod([&](const dex::Method &M) {
    if (M.IsNative) {
      Methods.push_back(Gen.compileNative(M));
      return;
    }
    auto G = hir::buildHGraph(M);
    if (!G) {
      std::fprintf(stderr, "%s\n", G.message().c_str());
      std::exit(1);
    }
    hir::runPipeline(*G, Pipeline);
    Methods.push_back(Gen.compile(*G));
  });

  core::AnalysisOptions Opts;
  Opts.MaxSeqLen = 64;
  auto Report = core::analyzeRedundancy(Methods, Opts);

  std::printf("Figure 3: sequence length vs. number of repeats (%s, scale "
              "%.2f)\n\n",
              Spec.Name.c_str(), Scale);
  std::printf("%8s %10s  %s\n", "length", "repeats", "log-scale");
  uint64_t ShortMass = 0, LongMass = 0;
  for (const auto &[Len, Repeats] : Report.RepeatsByLength) {
    if (Len <= 5)
      ShortMass += Repeats;
    else if (Len >= 10)
      LongMass += Repeats;
    if (Len > 24)
      continue;
    int Bar = Repeats > 0 ? static_cast<int>(4.0 * std::log10(
                                static_cast<double>(Repeats) + 1.0))
                          : 0;
    std::printf("%8u %10llu  %s\n", Len, (unsigned long long)Repeats,
                std::string(static_cast<std::size_t>(Bar), '#').c_str());
  }
  std::printf("\nshape check (short sequences dominate, Obs. 2):\n"
              "  repeats at length<=5: %llu, at length>=10: %llu -> %s\n",
              (unsigned long long)ShortMass, (unsigned long long)LongMass,
              ShortMass > 4 * LongMass ? "PASS" : "WARN");
  return 0;
}
