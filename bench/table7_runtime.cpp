//===- bench/table7_runtime.cpp - Paper Table 7 -----------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 7: runtime performance (CPU cycle counts) of the
/// scripted run under CTO+LTBO+PlOpti with and without hot-function
/// filtering, relative to the baseline. HfOpti uses the Fig. 6 workflow
/// (profile the unfiltered build, rebuild with the top-80%-of-cycles
/// methods excluded).
///
/// Paper reference: +1.51% avg without HfOpti, +0.90% avg with.
/// Also includes the hot-coverage sweep ablation.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace calibro;
using namespace calibro::bench;

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  std::printf("Table 7: runtime performance in CPU cycles (scale %.2f)\n"
              "paper: +1.51%% avg (no HfOpti) -> +0.90%% avg (HfOpti)\n\n",
              Scale);

  std::vector<std::string> Names, BaseRow, ParRow, HfRow, ParPct, HfPct;
  double ParSum = 0, HfSum = 0;

  auto Specs = workload::paperApps(Scale);
  for (const auto &Spec : Specs) {
    dex::App App = workload::makeApp(Spec);
    auto Script = workload::makeScript(Spec, 20, 2024);
    Names.push_back(Spec.Name);

    auto Base = build(App, baselineOpts());
    auto Par = build(App, plOpts());
    auto ParRun = runScript(Par.Oat, Script, /*CollectProfile=*/true);

    core::CalibroOptions HfOpts = plOpts();
    HfOpts.Profile = &ParRun.Prof;
    auto Hf = build(App, HfOpts);

    uint64_t BaseCycles = runScript(Base.Oat, Script).Cycles;
    uint64_t HfCycles = runScript(Hf.Oat, Script).Cycles;

    double B = static_cast<double>(BaseCycles);
    BaseRow.push_back(fmtU64(BaseCycles));
    ParRow.push_back(fmtU64(ParRun.Cycles));
    HfRow.push_back(fmtU64(HfCycles));
    double ParDeg = 100.0 * (ParRun.Cycles / B - 1.0);
    double HfDeg = 100.0 * (HfCycles / B - 1.0);
    ParPct.push_back(fmtPct(ParDeg));
    HfPct.push_back(fmtPct(HfDeg));
    ParSum += ParDeg;
    HfSum += HfDeg;
  }
  double N = static_cast<double>(Specs.size());
  Names.push_back("AVG");
  BaseRow.push_back("/");
  ParRow.push_back("/");
  HfRow.push_back("/");
  ParPct.push_back(fmtPct(ParSum / N));
  HfPct.push_back(fmtPct(HfSum / N));

  printRow("", Names);
  printRow("Baseline (cycles)", BaseRow);
  printRow("CTO+LTBO+PlOpti", ParRow);
  printRow("+HfOpti", HfRow);
  printRow("degradation", ParPct);
  printRow("degradation +HfOpti", HfPct);

  std::printf("\nshape check: HfOpti mitigates the degradation : %s\n",
              HfSum < ParSum ? "PASS" : "FAIL");

  // Ablation: hot-coverage threshold sweep (paper fixes 80%).
  const auto &Spec = Specs[5];
  std::printf("\nablation: hot-coverage threshold on %s\n",
              Spec.Name.c_str());
  dex::App App = workload::makeApp(Spec);
  auto Script = workload::makeScript(Spec, 20, 2024);
  auto Base = build(App, baselineOpts());
  auto Par = build(App, plOpts());
  auto ParRun = runScript(Par.Oat, Script, true);
  uint64_t BaseCycles = runScript(Base.Oat, Script).Cycles;
  uint64_t BaseBytes = Base.Oat.textBytes();
  std::printf("%10s %14s %12s %12s\n", "coverage", "hot methods",
              "cycles deg", "size saved");
  for (double Cov : {0.0, 0.5, 0.8, 0.9, 0.99}) {
    core::CalibroOptions O = plOpts();
    O.Profile = &ParRun.Prof;
    O.HotCoverage = Cov;
    auto B = build(App, O);
    uint64_t Cycles = runScript(B.Oat, Script).Cycles;
    std::printf("%9.0f%% %14zu %12s %12s\n", 100 * Cov,
                B.Stats.Ltbo.HotFilteredMethods,
                fmtPct(100.0 * (double(Cycles) / BaseCycles - 1.0)).c_str(),
                fmtPct(100.0 * (1.0 - double(B.Oat.textBytes()) /
                                          double(BaseBytes)))
                    .c_str());
  }
  return 0;
}
