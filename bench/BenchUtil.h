//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure harnesses: the standard build
/// configurations from the paper's evaluation (§4.1), script execution with
/// aggregate statistics, and table formatting. Every harness accepts an
/// optional scale argument (argv[1], default 0.5) controlling workload
/// size.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_BENCH_BENCHUTIL_H
#define CALIBRO_BENCH_BENCHUTIL_H

#include "core/Calibro.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace calibro {
namespace bench {

/// Paper §4.1 configurations.
inline core::CalibroOptions baselineOpts() { return {}; }

inline core::CalibroOptions ctoOpts() {
  core::CalibroOptions O;
  O.EnableCto = true;
  return O;
}

inline core::CalibroOptions ctoLtboOpts() {
  core::CalibroOptions O = ctoOpts();
  O.EnableLtbo = true;
  return O;
}

/// PlOpti: 8 partitions (paper §4.4 "partitioned the original suffix tree
/// into 8 small suffix trees").
inline core::CalibroOptions plOpts(uint32_t Threads = 2) {
  core::CalibroOptions O = ctoLtboOpts();
  O.LtboPartitions = 8;
  O.LtboThreads = Threads;
  return O;
}

/// Workload scale from argv (argv[1], default 0.5).
inline double scaleFromArgs(int Argc, char **Argv, double Default = 0.5) {
  return Argc > 1 ? std::atof(Argv[1]) : Default;
}

/// Must-succeed build.
inline core::BuildResult build(const dex::App &App,
                               const core::CalibroOptions &Opts) {
  auto B = core::buildApp(App, Opts);
  if (!B) {
    std::fprintf(stderr, "build failed: %s\n", B.message().c_str());
    std::exit(1);
  }
  return std::move(*B);
}

/// Aggregate result of one scripted run (the uiautomator substitute; the
/// paper runs its scripts 20 times and averages — our simulator is
/// deterministic, so one run IS the average).
struct ScriptResult {
  uint64_t Cycles = 0;
  uint64_t Insns = 0;
  uint64_t ICacheMisses = 0;
  uint64_t MemoryBytes = 0; ///< Touched code pages + stackmaps + heap.
  profile::Profile Prof;
};

inline ScriptResult runScript(const oat::OatFile &Oat,
                              const std::vector<workload::Invocation> &Script,
                              bool CollectProfile = false) {
  sim::SimOptions Opts;
  Opts.CollectProfile = CollectProfile;
  // Residency granularity scaled to the simulated app size (see
  // SimOptions::PageShift): 256-byte "pages".
  Opts.PageShift = 8;
  sim::Simulator Sim(Oat, Opts);
  ScriptResult S;
  for (const auto &Inv : Script) {
    auto R = Sim.call(Inv.MethodIdx, Inv.Args);
    if (!R) {
      std::fprintf(stderr, "script fault: %s\n", R.message().c_str());
      std::exit(1);
    }
    S.Cycles += R->Cycles;
    S.Insns += R->Insns;
    S.ICacheMisses += R->ICacheMisses;
  }
  // The Table 5 memory model: resident code pages (demand-touched), plus a
  // readahead share of the mapped OAT file (the OS faults file pages in
  // readahead chunks, so a slice of untouched file is resident too), plus
  // loaded StackMap metadata and the app heap. The readahead share is what
  // transmits on-disk savings into memory savings at the paper's ~1:3
  // ratio (19.19% disk -> 6.82% memory).
  S.MemoryBytes = Sim.touchedTextBytes() + Oat.textBytes() / 4 +
                  Oat.stackMapBytes() + Sim.heapBytesAllocated();
  if (CollectProfile)
    S.Prof = Sim.profileData();
  return S;
}

/// Prints one row of numeric cells after a label.
inline void printRow(const char *Label,
                     const std::vector<std::string> &Cells) {
  std::printf("%-26s", Label);
  for (const auto &C : Cells)
    std::printf(" %12s", C.c_str());
  std::printf("\n");
}

inline std::string fmtBytes(uint64_t B) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1fK", static_cast<double>(B) / 1024.0);
  return Buf;
}

inline std::string fmtPct(double P) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f%%", P);
  return Buf;
}

inline std::string fmtU64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  return Buf;
}

inline std::string fmtSec(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3fs", S);
  return Buf;
}

} // namespace bench
} // namespace calibro

#endif // CALIBRO_BENCH_BENCHUTIL_H
