//===- bench/obs3_art_patterns.cpp - Paper Observation 3 --------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Observation 3: the hottest repetitive sequences in a
/// WeChat-class app are the three ART-specific patterns (Java call via
/// ArtMethod, native entrypoint call via x19, stack-overflow probe). Prints
/// the top repeated sequences with disassembly and classifies each.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "aarch64/Decoder.h"
#include "aarch64/Disasm.h"
#include "codegen/ArtAbi.h"
#include "codegen/CodeGenerator.h"
#include "core/RedundancyAnalysis.h"
#include "hir/Passes.h"

using namespace calibro;
using namespace calibro::bench;

namespace {

/// Classifies a repeated word sequence against the Fig. 4 patterns.
const char *classify(const std::vector<uint32_t> &Words) {
  bool HasJavaLoad = false, HasRtLoad = false, HasProbe = false,
       HasCall = false;
  for (std::size_t K = 0; K < Words.size(); ++K) {
    auto I = a64::decode(Words[K]);
    if (!I)
      continue;
    if (I->Op == a64::Opcode::LdrImm && I->Rd == a64::LR && I->Rn == 0 &&
        I->Imm == art::ArtMethodEntryPointOffset)
      HasJavaLoad = true;
    if (I->Op == a64::Opcode::LdrImm && I->Rd == a64::LR &&
        I->Rn == a64::ThreadReg)
      HasRtLoad = true;
    if (I->Op == a64::Opcode::SubImm && I->Rd == a64::IP0 &&
        I->Rn == a64::SP && I->Shift == 12)
      HasProbe = true;
    if (I->Op == a64::Opcode::Blr)
      HasCall = true;
  }
  if (HasJavaLoad && HasCall)
    return "JAVA-CALL (Fig. 4a)";
  if (HasRtLoad && HasCall)
    return "ART-NATIVE-CALL (Fig. 4b)";
  if (HasProbe)
    return "STACK-CHECK (Fig. 4c)";
  return "other";
}

} // namespace

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  auto Specs = workload::paperApps(Scale);
  const auto &Spec = Specs[5]; // Wechat.
  dex::App App = workload::makeApp(Spec);

  codegen::CtoStubCache Cache;
  codegen::CodeGenerator Gen({.EnableCto = false}, Cache);
  std::vector<codegen::CompiledMethod> Methods;
  auto Pipeline = hir::defaultPipeline();
  App.forEachMethod([&](const dex::Method &M) {
    if (M.IsNative) {
      Methods.push_back(Gen.compileNative(M));
      return;
    }
    auto G = hir::buildHGraph(M);
    if (!G) {
      std::fprintf(stderr, "%s\n", G.message().c_str());
      std::exit(1);
    }
    hir::runPipeline(*G, Pipeline);
    Methods.push_back(Gen.compile(*G));
  });

  // Rank short repeats by raw frequency, like the paper's per-pattern
  // counts (1006k / 173k / 217k occurrences in WeChat).
  core::AnalysisOptions Opts;
  Opts.TopK = 12;
  Opts.MaxSeqLen = 8;
  Opts.SeparateAtTerminators = true; // Patterns live inside basic blocks.
  auto Report = core::analyzeRedundancy(Methods, Opts);

  std::printf("Observation 3: top repetitive sequences in %s (scale %.2f)\n"
              "paper: #1 Java call (1006k), #2 stack check (173k), #3 "
              "pAllocObjectResolved (217k)\n\n",
              Spec.Name.c_str(), Scale);
  int ArtRank = 0, Rank = 0;
  for (const auto &P : Report.TopPatterns) {
    ++Rank;
    const char *Kind = classify(P.Words);
    if (Kind[0] != 'o' && ArtRank == 0)
      ArtRank = Rank;
    std::printf("#%-2d count=%-6u len=%u  %s\n", Rank, P.Count, P.Length,
                Kind);
    for (uint32_t W : P.Words) {
      auto I = a64::decode(W);
      std::printf("      %s\n", I ? a64::toString(*I).c_str() : ".word");
    }
  }
  std::printf("\nART-specific pattern first appears at rank %d "
              "(paper: ranks 1-3)\n",
              ArtRank);
  return 0;
}
