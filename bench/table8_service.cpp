//===- bench/table8_service.cpp - Compile-service throughput & economics ---===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon-scenario harness (no paper analogue — the fleet-build service
/// built on Calibro's determinism guarantees): N=8 app-build jobs race
/// through one CompileService over a shared pool, a shared sharded cache
/// and one global memory budget, cold then warm. Reports throughput,
/// per-job latency (p50/p99), and cache-hit economics into
/// BENCH_service.json, and self-gates on the service contract:
///
///   * every concurrently-built OAT is byte-identical to a serial rebuild
///     of the same job in isolation;
///   * the arbiter's peak sum of in-flight detect-budget grants never
///     exceeds --global-memory-budget;
///   * warm-cache throughput is at least 2x cold throughput.
///
/// Process RSS is reported for observability only (it folds in the
/// allocator and every other allocation in the process; the accounted
/// arbiter peak is the deterministic bound the gate checks).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "oat/Serialize.h"
#include "service/CompileService.h"
#include "support/Memory.h"

#include <algorithm>
#include <filesystem>
#include <memory>

using namespace calibro;
using namespace calibro::bench;

namespace {

struct JobTiming {
  double QueueSeconds = 0, BuildSeconds = 0;
  double latency() const { return QueueSeconds + BuildSeconds; }
};

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  std::size_t I = static_cast<std::size_t>(P * (V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

} // namespace

int main(int argc, char **argv) {
  const double Scale = scaleFromArgs(argc, argv, 0.4);
  constexpr std::size_t NumJobs = 8;
  const uint64_t GlobalBudget = 8ull << 20;

  std::printf("Table 8: compile-service concurrency (N=%zu jobs, scale %.2f, "
              "global budget %s)\n\n",
              NumJobs, Scale, fmtBytes(GlobalBudget).c_str());

  // Jobs 0..5: the six paper apps. Jobs 6..7 resubmit the first two apps —
  // identical inputs racing their originals, the cross-job dedup case.
  auto Specs = workload::paperApps(Scale);
  std::vector<dex::App> Apps;
  for (const auto &S : Specs)
    Apps.push_back(workload::makeApp(S));
  std::vector<const dex::App *> JobApps;
  std::vector<std::string> JobNames;
  for (std::size_t I = 0; I < NumJobs; ++I) {
    JobApps.push_back(&Apps[I % Apps.size()]);
    JobNames.push_back(Specs[I % Apps.size()].Name +
                       (I >= Apps.size() ? "-dup" : ""));
  }

  core::CalibroOptions Build = ctoLtboOpts();
  Build.LtboPartitions = 0; // Auto: derive K from the granted budget.

  service::ServiceOptions SOpts;
  SOpts.JobSlots = 4;
  SOpts.QueueDepth = NumJobs;
  SOpts.Threads = 0; // The machine.
  SOpts.CacheShards = 8;
  SOpts.GlobalMemoryBudgetBytes = GlobalBudget;
  namespace fs = std::filesystem;
  fs::path CacheDir = fs::temp_directory_path() / "calibro-table8-cache";
  fs::remove_all(CacheDir);
  SOpts.CacheDir = CacheDir.string();
  SOpts.JobLogPath = "BENCH_service_jobs.jsonl";

  auto Svc = service::CompileService::create(SOpts);
  if (!Svc) {
    std::fprintf(stderr, "service: %s\n", Svc.message().c_str());
    return 1;
  }

  // One pass: submit all N, wait all, collect images + timings.
  auto RunPass = [&](std::vector<std::vector<uint8_t>> &Images,
                     std::vector<JobTiming> &Timings,
                     std::vector<uint64_t> &Grants,
                     std::vector<core::BuildStats> &Stats) -> double {
    Timer Wall;
    std::vector<std::shared_ptr<service::JobHandle>> Handles;
    for (std::size_t I = 0; I < NumJobs; ++I) {
      service::JobSpec Job;
      Job.Name = JobNames[I];
      Job.App = JobApps[I];
      Job.Build = Build;
      Job.MemoryBudgetBytes = 0; // Arbitrated: each gets the fair share.
      auto H = (*Svc)->submit(std::move(Job));
      if (!H) {
        std::fprintf(stderr, "submit: %s\n", H.message().c_str());
        std::exit(1);
      }
      Handles.push_back(std::move(*H));
    }
    for (std::size_t I = 0; I < NumJobs; ++I) {
      const service::JobRecord &R = Handles[I]->wait();
      if (!R.Ok) {
        std::fprintf(stderr, "job %s failed: %s\n", R.Name.c_str(),
                     R.ErrorMessage.c_str());
        std::exit(1);
      }
      Images.push_back(oat::serializeOat(Handles[I]->oat()));
      Timings.push_back({R.QueueSeconds, R.BuildSeconds});
      Grants.push_back(R.GrantedBudgetBytes);
      Stats.push_back(R.Stats);
    }
    return Wall.seconds();
  };

  std::vector<std::vector<uint8_t>> ColdImages, WarmImages;
  std::vector<JobTiming> ColdTimings, WarmTimings;
  std::vector<uint64_t> ColdGrants, WarmGrants;
  std::vector<core::BuildStats> ColdStats, WarmStats;

  double ColdWall = RunPass(ColdImages, ColdTimings, ColdGrants, ColdStats);
  cache::ShardedCacheStats ColdCache = (*Svc)->sharedCache()->stats();
  double WarmWall = RunPass(WarmImages, WarmTimings, WarmGrants, WarmStats);
  cache::ShardedCacheStats TotalCache = (*Svc)->sharedCache()->stats();
  service::ServiceStats SvcStats = (*Svc)->stats();

  // Serial oracle: each job's effective configuration (its actual budget
  // grant, no pool, no cache) run in isolation, one at a time.
  bool AllIdentical = true;
  double SerialWall = 0;
  std::vector<std::vector<uint8_t>> Serial;
  {
    Timer T;
    for (std::size_t I = 0; I < NumJobs; ++I) {
      core::CalibroOptions O = Build;
      O.MemoryBudgetBytes = ColdGrants[I];
      Serial.push_back(oat::serializeOat(build(*JobApps[I], O).Oat));
    }
    SerialWall = T.seconds();
  }
  for (std::size_t I = 0; I < NumJobs; ++I) {
    bool ColdOk = ColdImages[I] == Serial[I];
    bool WarmOk = WarmImages[I] == Serial[I];
    AllIdentical &= ColdOk && WarmOk;
    if (!ColdOk || !WarmOk)
      std::fprintf(stderr, "job %zu (%s): %s%s DIVERGED from serial\n", I,
                   JobNames[I].c_str(), ColdOk ? "" : "cold ",
                   WarmOk ? "" : "warm ");
  }

  auto Latencies = [](const std::vector<JobTiming> &T) {
    std::vector<double> L;
    for (const auto &J : T)
      L.push_back(J.latency());
    return L;
  };
  std::vector<double> ColdLat = Latencies(ColdTimings);
  std::vector<double> WarmLat = Latencies(WarmTimings);
  double ColdTput = NumJobs / ColdWall, WarmTput = NumJobs / WarmWall;

  std::printf("%-14s %10s %10s %12s %12s\n", "job", "cold(s)", "warm(s)",
              "cold hits", "warm hits");
  for (std::size_t I = 0; I < NumJobs; ++I)
    std::printf("%-14s %10.3f %10.3f %6zu/%-5zu %6zu/%-5zu\n",
                JobNames[I].c_str(), ColdLat[I], WarmLat[I],
                ColdStats[I].CacheHits,
                ColdStats[I].CacheHits + ColdStats[I].CacheMisses,
                WarmStats[I].CacheHits,
                WarmStats[I].CacheHits + WarmStats[I].CacheMisses);

  std::printf("\nthroughput: cold %.2f jobs/s, warm %.2f jobs/s (%.2fx), "
              "serial %.2f jobs/s\n",
              ColdTput, WarmTput, WarmTput / ColdTput, NumJobs / SerialWall);
  std::printf("latency: cold p50 %.3fs p99 %.3fs | warm p50 %.3fs p99 %.3fs\n",
              percentile(ColdLat, 0.5), percentile(ColdLat, 0.99),
              percentile(WarmLat, 0.5), percentile(WarmLat, 0.99));
  std::printf("cache: cold %llu/%llu method hits, %llu deduped; total "
              "%llu/%llu hits, %llu evictions\n",
              (unsigned long long)ColdCache.MethodHits,
              (unsigned long long)(ColdCache.MethodHits +
                                   ColdCache.MethodMisses),
              (unsigned long long)ColdCache.StoresDeduped,
              (unsigned long long)TotalCache.MethodHits,
              (unsigned long long)(TotalCache.MethodHits +
                                   TotalCache.MethodMisses),
              (unsigned long long)TotalCache.Evictions);
  support::RssSample Rss = support::sampleRss();
  std::printf("arbiter: peak %s of %s global budget | process rss peak %s "
              "(observability only)\n",
              fmtBytes(SvcStats.ArbiterPeakBytes).c_str(),
              fmtBytes(GlobalBudget).c_str(), fmtBytes(Rss.PeakBytes).c_str());

  const bool WithinBudget = SvcStats.ArbiterPeakBytes <= GlobalBudget;
  const bool WarmFaster = WarmTput >= 2.0 * ColdTput;
  std::printf("\n  all images byte-identical to serial builds   : %s\n",
              AllIdentical ? "PASS" : "FAIL");
  std::printf("  arbiter peak within global memory budget     : %s\n",
              WithinBudget ? "PASS" : "FAIL");
  std::printf("  warm throughput >= 2x cold                   : %s\n",
              WarmFaster ? "PASS" : "FAIL");

  FILE *J = std::fopen("BENCH_service.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"scale\": %.3f,\n  \"num_jobs\": %zu,\n  \"jobs\": [",
               Scale, NumJobs);
  for (std::size_t I = 0; I < NumJobs; ++I)
    std::fprintf(
        J,
        "%s\n    {\"name\": \"%s\", \"text_bytes\": %llu, "
        "\"granted_budget_bytes\": %llu,\n     \"cold\": "
        "{\"queue_wait_seconds\": %.6f, \"build_seconds\": %.6f, "
        "\"cache_hits\": %zu, \"cache_misses\": %zu, \"identical\": %s},\n"
        "     \"warm\": {\"queue_wait_seconds\": %.6f, \"build_seconds\": "
        "%.6f, \"cache_hits\": %zu, \"cache_misses\": %zu, \"identical\": "
        "%s}}",
        I ? "," : "", JobNames[I].c_str(),
        (unsigned long long)ColdStats[I].TextBytes,
        (unsigned long long)ColdGrants[I], ColdTimings[I].QueueSeconds,
        ColdTimings[I].BuildSeconds, ColdStats[I].CacheHits,
        ColdStats[I].CacheMisses,
        ColdImages[I] == Serial[I] ? "true" : "false",
        WarmTimings[I].QueueSeconds, WarmTimings[I].BuildSeconds,
        WarmStats[I].CacheHits, WarmStats[I].CacheMisses,
        WarmImages[I] == Serial[I] ? "true" : "false");
  std::fprintf(
      J,
      "\n  ],\n  \"throughput\": {\"cold_jobs_per_sec\": %.3f, "
      "\"warm_jobs_per_sec\": %.3f, \"warm_over_cold\": %.3f, "
      "\"serial_jobs_per_sec\": %.3f},\n"
      "  \"latency_seconds\": {\"cold_p50\": %.6f, \"cold_p99\": %.6f, "
      "\"warm_p50\": %.6f, \"warm_p99\": %.6f},\n"
      "  \"cache\": {\"cold_method_hits\": %llu, \"cold_method_misses\": "
      "%llu, \"cold_stores_deduped\": %llu, \"total_method_hits\": %llu, "
      "\"total_method_misses\": %llu, \"total_group_hits\": %llu, "
      "\"evictions\": %llu, \"resident_bytes\": %llu},\n"
      "  \"arbiter\": {\"global_budget_bytes\": %llu, \"peak_bytes\": %llu, "
      "\"within_budget\": %s},\n"
      "  \"service\": {\"accepted\": %llu, \"rejected\": %llu, "
      "\"succeeded\": %llu, \"peak_queue_depth\": %llu},\n"
      "  \"rss\": {\"current_bytes\": %llu, \"peak_bytes\": %llu},\n"
      "  \"gates\": {\"all_identical\": %s, \"within_budget\": %s, "
      "\"warm_2x\": %s}\n}\n",
      ColdTput, WarmTput, WarmTput / ColdTput, NumJobs / SerialWall,
      percentile(ColdLat, 0.5), percentile(ColdLat, 0.99),
      percentile(WarmLat, 0.5), percentile(WarmLat, 0.99),
      (unsigned long long)ColdCache.MethodHits,
      (unsigned long long)ColdCache.MethodMisses,
      (unsigned long long)ColdCache.StoresDeduped,
      (unsigned long long)TotalCache.MethodHits,
      (unsigned long long)TotalCache.MethodMisses,
      (unsigned long long)TotalCache.GroupHits,
      (unsigned long long)TotalCache.Evictions,
      (unsigned long long)TotalCache.ResidentBytes,
      (unsigned long long)GlobalBudget,
      (unsigned long long)SvcStats.ArbiterPeakBytes,
      WithinBudget ? "true" : "false",
      (unsigned long long)SvcStats.JobsAccepted,
      (unsigned long long)SvcStats.JobsRejected,
      (unsigned long long)SvcStats.JobsSucceeded,
      (unsigned long long)SvcStats.PeakQueueDepth,
      (unsigned long long)Rss.CurrentBytes,
      (unsigned long long)Rss.PeakBytes,
      AllIdentical ? "true" : "false", WithinBudget ? "true" : "false",
      WarmFaster ? "true" : "false");
  std::fclose(J);
  std::printf("wrote BENCH_service.json\n");

  (*Svc)->shutdown();
  fs::remove_all(CacheDir);
  return AllIdentical && WithinBudget && WarmFaster ? 0 : 1;
}
