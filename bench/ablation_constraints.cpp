//===- bench/ablation_constraints.cpp - The cost of correctness -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DESIGN.md's constraint ablation: how much of the gross §2.2 redundancy
/// estimate does each of the outliner's correctness rules give up? The
/// ladder runs from the unrestricted estimate (Table 1's number) down to
/// the fully-constrained one, and compares the latter against what the real
/// outliner actually claimed — explaining the paper's 25.4% estimated vs.
/// 19.19% achieved gap mechanically.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/CodeGenerator.h"
#include "core/Outliner.h"
#include "core/RedundancyAnalysis.h"
#include "hir/Passes.h"

using namespace calibro;
using namespace calibro::bench;

namespace {

std::vector<codegen::CompiledMethod> compileBaseline(const dex::App &App) {
  codegen::CtoStubCache Cache;
  codegen::CodeGenerator Gen({.EnableCto = false}, Cache);
  std::vector<codegen::CompiledMethod> Out;
  auto Pipeline = hir::defaultPipeline();
  App.forEachMethod([&](const dex::Method &M) {
    if (M.IsNative) {
      Out.push_back(Gen.compileNative(M));
      return;
    }
    auto G = hir::buildHGraph(M);
    if (!G) {
      std::fprintf(stderr, "%s\n", G.message().c_str());
      std::exit(1);
    }
    hir::runPipeline(*G, Pipeline);
    Out.push_back(Gen.compile(*G));
  });
  return Out;
}

double estimate(const std::vector<codegen::CompiledMethod> &Methods,
                bool Term, bool PcRel, bool Lr) {
  core::AnalysisOptions O;
  O.MaxSeqLen = 64;
  O.SeparateAtTerminators = Term;
  O.SeparateAtPcRel = PcRel;
  O.SeparateAtLrSensitive = Lr;
  return 100.0 * core::analyzeRedundancy(Methods, O).EstimatedReductionRatio;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  auto Specs = workload::paperApps(Scale);
  const auto &Spec = Specs[5]; // Wechat.
  dex::App App = workload::makeApp(Spec);
  auto Methods = compileBaseline(App);

  std::printf("Constraint ablation on %s (scale %.2f): claimed savings as\n"
              "each correctness rule of §3.2/§3.3.2 is switched on\n\n",
              Spec.Name.c_str(), Scale);
  double Raw = estimate(Methods, false, false, false);
  double T = estimate(Methods, true, false, false);
  double TP = estimate(Methods, true, true, false);
  double TPL = estimate(Methods, true, true, true);
  std::printf("  %-46s %7.2f%%\n", "unrestricted (the Table 1 estimate)",
              Raw);
  std::printf("  %-46s %7.2f%%\n", "+ basic-block confinement (terminators)",
              T);
  std::printf("  %-46s %7.2f%%\n", "+ PC-relative exclusion", TP);
  std::printf("  %-46s %7.2f%%\n", "+ LR-sensitivity exclusion", TPL);

  // What the real outliner achieved on the same methods (it additionally
  // rejects occurrences with interior branch targets and ineligible
  // methods, and pays the outlined copies).
  auto Working = Methods;
  uint64_t Before = 0;
  for (const auto &M : Working)
    Before += M.Code.size();
  auto R = core::runLtbo(Working, {});
  if (!R) {
    std::fprintf(stderr, "%s\n", R.message().c_str());
    return 1;
  }
  double Achieved =
      100.0 * static_cast<double>(R->Stats.InsnsRemoved) /
      static_cast<double>(Before);
  std::printf("  %-46s %7.2f%%\n",
              "actual LTBO (net, incl. copies + exclusions)", Achieved);

  // Intermediate rungs can wobble slightly: the greedy claimer packs
  // occurrences differently once the candidate set changes. The endpoints
  // are the meaningful comparison.
  bool Ladder = Raw >= T && Raw >= TP && Raw >= TPL && TPL >= Achieved - 0.01;
  std::printf("\nshape check: estimate >= constrained estimate >= achieved "
              ": %s\n",
              Ladder ? "PASS" : "FAIL");
  std::printf("(paper: 25.4%% estimated -> 19.19%% achieved; the rules buy "
              "correctness with a slice of the estimate)\n");
  return 0;
}
