//===- bench/table7_layout.cpp - Profile-driven layout gate -----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout-stage companion to the Table 7 runtime harness: measures the
/// simulated startup working set (distinct .text pages touched by the
/// scripted run) of outline-only builds against outline+layout builds over
/// the closed-world paper corpus, and gates the stage's contract:
///
///   * outline+layout touches strictly fewer startup pages than outline
///     alone, summed over the corpus (per app it may only tie, never grow —
///     computeLayout falls back to the identity order when the realized
///     page cut does not improve);
///   * the emitted image is byte-identical for any layout thread count;
///   * without a profile the stage is a byte-identical no-op.
///
/// Emits BENCH_layout.json (schema-pinned in CI) and exits nonzero when
/// any gate fails.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "oat/Serialize.h"

using namespace calibro;
using namespace calibro::bench;

namespace {

/// Layout page granularity, matched to the simulator's 256-byte residency
/// pages (SimOptions::PageShift = 8) — the simulated apps are ~1000x
/// smaller than the commercial OAT files, so 4 KiB pages would blur every
/// placement decision into one page.
constexpr uint32_t PageSize = 256;

/// Distinct .text pages the script touches — the startup page-fault proxy.
std::size_t startupPages(const oat::OatFile &Oat,
                         const std::vector<workload::Invocation> &Script) {
  sim::SimOptions SO;
  SO.PageShift = 8;
  sim::Simulator Sim(Oat, SO);
  for (const auto &Inv : Script) {
    auto R = Sim.call(Inv.MethodIdx, Inv.Args);
    if (!R) {
      std::fprintf(stderr, "script fault: %s\n", R.message().c_str());
      std::exit(1);
    }
  }
  return Sim.touchedTextPages();
}

core::CalibroOptions layoutOpts(const profile::Profile *Prof, bool Layout,
                                uint32_t Threads = 2) {
  core::CalibroOptions O = plOpts(Threads);
  O.LtboPartitions = 4;
  O.Profile = Prof;
  O.EnableLayout = Layout;
  O.LayoutPageSize = PageSize;
  return O;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  std::printf("Table 7b: profile-driven function layout, %u-byte pages "
              "(scale %.2f)\n\n",
              PageSize, Scale);

  struct AppRow {
    std::string Name;
    uint64_t TextBytes = 0;
    std::size_t Nodes = 0, Edges = 0, WarmNodes = 0;
    uint64_t CutBefore = 0, CutAfter = 0;
    std::size_t PagesOutline = 0, PagesLayout = 0;
  };
  std::vector<AppRow> Rows;
  std::size_t TotalOutline = 0, TotalLayout = 0;
  bool ThreadsIdentical = true;
  bool NoProfileIdentical = true;
  bool PerAppNeverWorse = true;

  for (auto Spec : workload::paperApps(Scale)) {
    workload::enableDeadCode(Spec); // Closed world: the stage's gate.
    dex::App App = workload::makeApp(Spec);
    auto Script = workload::makeScript(Spec, 20, 2024);

    // Fig. 6 workflow: profile the unlaid build, then rebuild twice from
    // the same profile — once outline-only, once outline+layout. The only
    // difference between the two profiled builds is the layout stage.
    auto Pre = build(App, layoutOpts(nullptr, false));
    auto PreRun = runScript(Pre.Oat, Script, /*CollectProfile=*/true);

    auto Outline = build(App, layoutOpts(&PreRun.Prof, false));
    auto Laid = build(App, layoutOpts(&PreRun.Prof, true));
    if (!Laid.Stats.LayoutApplied) {
      std::fprintf(stderr, "%s: layout stage did not arm\n",
                   Spec.Name.c_str());
      return 1;
    }

    AppRow R;
    R.Name = Spec.Name;
    R.TextBytes = Laid.Oat.textBytes();
    R.Nodes = Laid.Stats.LayoutNodes;
    R.Edges = Laid.Stats.LayoutEdges;
    R.WarmNodes = Laid.Stats.LayoutWarmNodes;
    R.CutBefore = Laid.Stats.LayoutCutBefore;
    R.CutAfter = Laid.Stats.LayoutCutAfter;
    R.PagesOutline = startupPages(Outline.Oat, Script);
    R.PagesLayout = startupPages(Laid.Oat, Script);
    TotalOutline += R.PagesOutline;
    TotalLayout += R.PagesLayout;
    PerAppNeverWorse &= R.PagesLayout <= R.PagesOutline;

    // Byte-determinism: the plan — and therefore the image — must not
    // depend on how many workers the bisection fans out on.
    std::vector<uint8_t> Ref = oat::serializeOat(Laid.Oat);
    for (uint32_t Threads : {1u, 8u}) {
      auto Again = build(App, layoutOpts(&PreRun.Prof, true, Threads));
      ThreadsIdentical &= oat::serializeOat(Again.Oat) == Ref;
    }

    // Self-gating: with no profile the enabled stage must be a strict
    // no-op — byte-identical to a build with the stage disabled.
    auto NoProf = build(App, layoutOpts(nullptr, true));
    NoProfileIdentical &=
        oat::serializeOat(NoProf.Oat) == oat::serializeOat(Pre.Oat);

    Rows.push_back(std::move(R));
  }

  std::vector<std::string> Names, OutlineRow, LayoutRow, SavedRow, CutRow;
  for (const AppRow &R : Rows) {
    Names.push_back(R.Name);
    OutlineRow.push_back(fmtU64(R.PagesOutline));
    LayoutRow.push_back(fmtU64(R.PagesLayout));
    SavedRow.push_back(fmtPct(
        100.0 * (1.0 - static_cast<double>(R.PagesLayout) /
                           static_cast<double>(R.PagesOutline))));
    CutRow.push_back(fmtPct(
        100.0 * (1.0 - static_cast<double>(R.CutAfter) /
                           static_cast<double>(R.CutBefore ? R.CutBefore
                                                           : 1))));
  }
  printRow("", Names);
  printRow("startup pages, outline", OutlineRow);
  printRow("+layout", LayoutRow);
  printRow("pages saved", SavedRow);
  printRow("affinity cut reduced", CutRow);

  const bool FewerPages = TotalLayout < TotalOutline && PerAppNeverWorse;
  std::printf("\ncorpus startup pages: %zu -> %zu\n", TotalOutline,
              TotalLayout);
  std::printf("\n  outline+layout touches fewer startup pages  : %s\n",
              FewerPages ? "PASS" : "FAIL");
  std::printf("  byte-identical for any layout thread count  : %s\n",
              ThreadsIdentical ? "PASS" : "FAIL");
  std::printf("  no profile => byte-identical no-op          : %s\n",
              NoProfileIdentical ? "PASS" : "FAIL");

  FILE *J = std::fopen("BENCH_layout.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_layout.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"scale\": %.3f,\n  \"page_size\": %u,\n"
                  "  \"apps\": [",
               Scale, PageSize);
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const AppRow &R = Rows[I];
    std::fprintf(
        J,
        "%s\n    {\"name\": \"%s\", \"text_bytes\": %llu, "
        "\"layout_nodes\": %zu, \"layout_edges\": %zu, "
        "\"warm_nodes\": %zu,\n     \"cut_before\": %llu, \"cut_after\": "
        "%llu, \"startup_pages_outline\": %zu, \"startup_pages_layout\": "
        "%zu}",
        I ? "," : "", R.Name.c_str(), (unsigned long long)R.TextBytes,
        R.Nodes, R.Edges, R.WarmNodes, (unsigned long long)R.CutBefore,
        (unsigned long long)R.CutAfter, R.PagesOutline, R.PagesLayout);
  }
  std::fprintf(J,
               "\n  ],\n  \"total_pages_outline\": %zu,\n"
               "  \"total_pages_layout\": %zu,\n  \"gates\": {\n"
               "    \"fewer_pages_with_layout\": %s,\n"
               "    \"thread_count_byte_identical\": %s,\n"
               "    \"no_profile_byte_identical\": %s\n  }\n}\n",
               TotalOutline, TotalLayout, FewerPages ? "true" : "false",
               ThreadsIdentical ? "true" : "false",
               NoProfileIdentical ? "true" : "false");
  std::fclose(J);

  return (FewerPages && ThreadsIdentical && NoProfileIdentical) ? 0 : 1;
}
