//===- bench/table5_memory.cpp - Paper Table 5 ------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 5: runtime memory usage of the OAT file under the
/// scripted run (uiautomator substitute). The memory model counts resident
/// (touched) 4 KiB code pages plus loaded StackMap metadata plus the app
/// heap, so the relative reduction is smaller than the on-disk one —
/// exactly the paper's effect (19.19% disk vs. 6.82% memory).
///
/// Paper reference: CTO -2.03% avg, CTO+LTBO -6.82% avg.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "oat/Serialize.h"
#include "support/Memory.h"

using namespace calibro;
using namespace calibro::bench;

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  std::printf("Table 5: memory usage reduction under the scripted run "
              "(scale %.2f)\n"
              "paper: CTO 2.03%% avg, CTO+LTBO 6.82%% avg\n\n",
              Scale);

  std::vector<std::string> Names, BaseRow, CtoRow, FullRow;
  double CtoSum = 0, FullSum = 0, DiskSum = 0;

  auto Specs = workload::paperApps(Scale);
  for (const auto &Spec : Specs) {
    dex::App App = workload::makeApp(Spec);
    auto Script = workload::makeScript(Spec, 60, 515);
    Names.push_back(Spec.Name);

    auto Base = build(App, baselineOpts());
    auto Cto = build(App, ctoOpts());
    auto Full = build(App, ctoLtboOpts());

    uint64_t BaseMem = runScript(Base.Oat, Script).MemoryBytes;
    uint64_t CtoMem = runScript(Cto.Oat, Script).MemoryBytes;
    uint64_t FullMem = runScript(Full.Oat, Script).MemoryBytes;

    double B = static_cast<double>(BaseMem);
    BaseRow.push_back(fmtBytes(BaseMem));
    CtoRow.push_back(fmtPct(100.0 * (1.0 - CtoMem / B)));
    FullRow.push_back(fmtPct(100.0 * (1.0 - FullMem / B)));
    CtoSum += 100.0 * (1.0 - CtoMem / B);
    FullSum += 100.0 * (1.0 - FullMem / B);
    DiskSum += 100.0 * (1.0 - static_cast<double>(Full.Oat.textBytes()) /
                                  static_cast<double>(Base.Oat.textBytes()));
  }

  double N = static_cast<double>(Specs.size());
  Names.push_back("AVG");
  BaseRow.push_back("/");
  CtoRow.push_back(fmtPct(CtoSum / N));
  FullRow.push_back(fmtPct(FullSum / N));

  printRow("", Names);
  printRow("Baseline (memory)", BaseRow);
  printRow("CTO", CtoRow);
  printRow("CTO+LTBO", FullRow);

  std::printf("\nshape checks:\n");
  std::printf("  CTO reduction < CTO+LTBO reduction : %s\n",
              CtoSum < FullSum ? "PASS" : "FAIL");
  std::printf("  memory reduction < on-disk reduction (measured %.2f%% vs "
              "%.2f%%; paper 6.82%% vs 19.19%%) : %s\n",
              FullSum / N, DiskSum / N,
              FullSum / N < DiskSum / N ? "PASS" : "FAIL");

  // Build-side memory: the largest single-group detect-phase working set
  // (suffix structure + assembled sequence/provenance + candidate scratch,
  // sampled at its peak before scratch release). Partitioning shrinks it
  // (one small structure at a time), and the suffix-array backend holds
  // less than the tree at the same K.
  std::printf("\ndetect-phase peak working set (%s, CTO+LTBO):\n",
              Specs[5].Name.c_str());
  struct PeakRow {
    const char *Detector;
    uint32_t K;
    std::size_t PeakBytes, ScratchBytes;
  };
  std::vector<PeakRow> PeakRows;
  dex::App Big = workload::makeApp(Specs[5]);
  for (auto [Label, Kind] :
       {std::pair<const char *, core::DetectorKind>{
            "suffix tree", core::DetectorKind::SuffixTree},
        {"suffix array", core::DetectorKind::SuffixArray}}) {
    for (uint32_t K : {1u, 8u}) {
      core::CalibroOptions O = ctoLtboOpts();
      O.LtboDetector = Kind;
      O.LtboPartitions = K;
      auto B = build(Big, O);
      // Scratch = arena bytes retained across groups by the suffix-array
      // backend (zero for the tree, which allocates per group). It is an
      // upper bound held for the whole fan-out, so it is reported next to
      // the peak rather than folded into it.
      std::printf("  %-14s K=%-2u %12s  (arena scratch %s)\n", Label, K,
                  fmtBytes(B.Stats.Ltbo.DetectPeakBytes).c_str(),
                  fmtBytes(B.Stats.Ltbo.DetectScratchBytes).c_str());
      PeakRows.push_back(
          {Label, K, B.Stats.Ltbo.DetectPeakBytes, B.Stats.Ltbo.DetectScratchBytes});
    }
  }

  // Memory-budgeted streaming: the same PlOpti build under shrinking
  // --memory-budget values. The window peak (sum of the concurrently-live
  // groups' working sets) must track the budget down, and every image must
  // stay byte-identical to the unbudgeted build — windowing bounds WHERE
  // intermediates live, never what is produced.
  std::printf("\nmemory-budgeted streaming (%s, CTO+LTBO+PlOpti K=8):\n",
              Specs[5].Name.c_str());
  core::CalibroOptions PlO = plOpts();
  auto Mono = build(Big, PlO);
  std::vector<uint8_t> MonoImage = oat::serializeOat(Mono.Oat);
  const std::size_t UnbudgetedSum = [&] {
    // What the unbudgeted fan-out can hold at once: all groups live
    // together, so the paper-honest comparison point is the per-group peak
    // times the group count (the budget bounds the real concurrent sum).
    return Mono.Stats.Ltbo.DetectPeakBytes * 8;
  }();
  struct BudgetRow {
    uint64_t Budget;
    std::size_t Windows, WindowPeak, Overruns, Partitions;
    bool WithinBudget, Identical;
  };
  std::vector<BudgetRow> BudgetRows;
  bool SweepIdentical = true, SweepBounded = true;
  for (uint64_t Div : {1ull, 2ull, 4ull, 8ull}) {
    core::CalibroOptions O = PlO;
    O.MemoryBudgetBytes = static_cast<uint64_t>(UnbudgetedSum) / Div;
    auto B = build(Big, O);
    const auto &S = B.Stats.Ltbo;
    bool Identical = oat::serializeOat(B.Oat) == MonoImage;
    // A window of one over-budget group is allowed to overrun; every
    // multi-group window must fit.
    bool Within =
        S.DetectWindowPeakBytes <= O.MemoryBudgetBytes ||
        S.DetectBudgetOverruns > 0;
    SweepIdentical &= Identical;
    SweepBounded &= Within;
    std::printf("  budget %10s: %2zu windows, window peak %10s, "
                "%zu overruns, identical %s\n",
                fmtBytes(O.MemoryBudgetBytes).c_str(), S.DetectWindows,
                fmtBytes(S.DetectWindowPeakBytes).c_str(),
                S.DetectBudgetOverruns, Identical ? "yes" : "NO");
    BudgetRows.push_back({O.MemoryBudgetBytes, S.DetectWindows,
                          S.DetectWindowPeakBytes, S.DetectBudgetOverruns,
                          S.PartitionsUsed, Within, Identical});
  }

  // Growth demonstration: double the input and keep the budget fixed. The
  // unbudgeted peak grows with the image; the budgeted window peak stays
  // put (auto-partitioning derives a larger K from the same budget).
  auto SpecsBig = workload::paperApps(Scale * 2);
  dex::App Big2 = workload::makeApp(SpecsBig[5]);
  core::CalibroOptions Unb = ctoLtboOpts();
  auto G1 = build(Big, Unb);
  auto G2 = build(Big2, Unb);
  const uint64_t GrowthBudget = static_cast<uint64_t>(UnbudgetedSum) / 4;
  core::CalibroOptions Bud = ctoLtboOpts();
  Bud.LtboPartitions = 0; // Auto: derive K from the budget.
  Bud.MemoryBudgetBytes = GrowthBudget;
  auto W1 = build(Big, Bud);
  auto W2 = build(Big2, Bud);
  bool UnbudgetedGrows =
      G2.Stats.Ltbo.DetectPeakBytes > G1.Stats.Ltbo.DetectPeakBytes;
  bool BudgetedBounded =
      W1.Stats.Ltbo.DetectWindowPeakBytes <= GrowthBudget &&
      W2.Stats.Ltbo.DetectWindowPeakBytes <= GrowthBudget;
  std::printf("\npeak vs input size (budget fixed at %s):\n",
              fmtBytes(GrowthBudget).c_str());
  std::printf("  scale %4.1f: unbudgeted %10s | budgeted %10s "
              "(K=%zu, %zu windows)\n",
              Scale, fmtBytes(G1.Stats.Ltbo.DetectPeakBytes).c_str(),
              fmtBytes(W1.Stats.Ltbo.DetectWindowPeakBytes).c_str(),
              W1.Stats.Ltbo.PartitionsUsed, W1.Stats.Ltbo.DetectWindows);
  std::printf("  scale %4.1f: unbudgeted %10s | budgeted %10s "
              "(K=%zu, %zu windows)\n",
              Scale * 2, fmtBytes(G2.Stats.Ltbo.DetectPeakBytes).c_str(),
              fmtBytes(W2.Stats.Ltbo.DetectWindowPeakBytes).c_str(),
              W2.Stats.Ltbo.PartitionsUsed, W2.Stats.Ltbo.DetectWindows);

  // Process-level observability: VmRSS/VmHWM from /proc (zero where
  // unavailable). Never part of any deterministic stat — recorded so the
  // JSON ties the model-level byte counts to what the OS actually saw.
  support::RssSample Rss = support::sampleRss();
  std::printf("\nprocess rss: current %s, peak %s\n",
              fmtBytes(Rss.CurrentBytes).c_str(),
              fmtBytes(Rss.PeakBytes).c_str());

  std::printf("\n  windowed images byte-identical to monolithic : %s\n",
              SweepIdentical ? "PASS" : "FAIL");
  std::printf("  window peak within budget (or flagged overrun) : %s\n",
              SweepBounded ? "PASS" : "FAIL");
  std::printf("  unbudgeted peak grows with input               : %s\n",
              UnbudgetedGrows ? "PASS" : "FAIL");
  std::printf("  budgeted window peak stays under fixed budget  : %s\n",
              BudgetedBounded ? "PASS" : "FAIL");

  // Machine-readable record of everything above.
  FILE *J = std::fopen("BENCH_memory.json", "w");
  if (!J) {
    std::fprintf(stderr, "cannot write BENCH_memory.json\n");
    return 1;
  }
  std::fprintf(J, "{\n  \"scale\": %.3f,\n  \"apps\": [", Scale);
  for (std::size_t I = 0; I < Specs.size(); ++I)
    std::fprintf(J,
                 "%s\n    {\"name\": \"%s\", \"cto_reduction_pct\": %s, "
                 "\"cto_ltbo_reduction_pct\": %s}",
                 I ? "," : "", Specs[I].Name.c_str(),
                 CtoRow[I].substr(0, CtoRow[I].size() - 1).c_str(),
                 FullRow[I].substr(0, FullRow[I].size() - 1).c_str());
  std::fprintf(J,
               "\n  ],\n  \"avg_reduction_pct\": {\"cto\": %.2f, "
               "\"cto_ltbo\": %.2f, \"disk\": %.2f},\n  \"detect_peak\": [",
               CtoSum / N, FullSum / N, DiskSum / N);
  for (std::size_t I = 0; I < PeakRows.size(); ++I)
    std::fprintf(J,
                 "%s\n    {\"detector\": \"%s\", \"k\": %u, "
                 "\"peak_bytes\": %zu, \"scratch_bytes\": %zu}",
                 I ? "," : "", PeakRows[I].Detector, PeakRows[I].K,
                 PeakRows[I].PeakBytes, PeakRows[I].ScratchBytes);
  std::fprintf(J, "\n  ],\n  \"budget_sweep\": [");
  for (std::size_t I = 0; I < BudgetRows.size(); ++I) {
    const BudgetRow &R = BudgetRows[I];
    std::fprintf(J,
                 "%s\n    {\"budget_bytes\": %llu, \"windows\": %zu, "
                 "\"window_peak_bytes\": %zu, \"overruns\": %zu, "
                 "\"partitions\": %zu, \"within_budget\": %s, "
                 "\"identical\": %s}",
                 I ? "," : "", (unsigned long long)R.Budget, R.Windows,
                 R.WindowPeak, R.Overruns, R.Partitions,
                 R.WithinBudget ? "true" : "false",
                 R.Identical ? "true" : "false");
  }
  std::fprintf(J,
               "\n  ],\n  \"growth\": {\"budget_bytes\": %llu,\n"
               "    \"small\": {\"unbudgeted_peak_bytes\": %zu, "
               "\"window_peak_bytes\": %zu, \"partitions\": %zu, "
               "\"windows\": %zu},\n"
               "    \"large\": {\"unbudgeted_peak_bytes\": %zu, "
               "\"window_peak_bytes\": %zu, \"partitions\": %zu, "
               "\"windows\": %zu},\n"
               "    \"unbudgeted_grows\": %s, \"budgeted_bounded\": %s},\n",
               (unsigned long long)GrowthBudget,
               G1.Stats.Ltbo.DetectPeakBytes,
               W1.Stats.Ltbo.DetectWindowPeakBytes,
               W1.Stats.Ltbo.PartitionsUsed, W1.Stats.Ltbo.DetectWindows,
               G2.Stats.Ltbo.DetectPeakBytes,
               W2.Stats.Ltbo.DetectWindowPeakBytes,
               W2.Stats.Ltbo.PartitionsUsed, W2.Stats.Ltbo.DetectWindows,
               UnbudgetedGrows ? "true" : "false",
               BudgetedBounded ? "true" : "false");
  std::fprintf(J,
               "  \"rss\": {\"current_bytes\": %llu, \"peak_bytes\": %llu}\n"
               "}\n",
               (unsigned long long)Rss.CurrentBytes,
               (unsigned long long)Rss.PeakBytes);
  std::fclose(J);
  std::printf("wrote BENCH_memory.json\n");

  return SweepIdentical && SweepBounded && UnbudgetedGrows && BudgetedBounded
             ? 0
             : 1;
}
