//===- bench/table5_memory.cpp - Paper Table 5 ------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 5: runtime memory usage of the OAT file under the
/// scripted run (uiautomator substitute). The memory model counts resident
/// (touched) 4 KiB code pages plus loaded StackMap metadata plus the app
/// heap, so the relative reduction is smaller than the on-disk one —
/// exactly the paper's effect (19.19% disk vs. 6.82% memory).
///
/// Paper reference: CTO -2.03% avg, CTO+LTBO -6.82% avg.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace calibro;
using namespace calibro::bench;

int main(int argc, char **argv) {
  double Scale = scaleFromArgs(argc, argv);
  std::printf("Table 5: memory usage reduction under the scripted run "
              "(scale %.2f)\n"
              "paper: CTO 2.03%% avg, CTO+LTBO 6.82%% avg\n\n",
              Scale);

  std::vector<std::string> Names, BaseRow, CtoRow, FullRow;
  double CtoSum = 0, FullSum = 0, DiskSum = 0;

  auto Specs = workload::paperApps(Scale);
  for (const auto &Spec : Specs) {
    dex::App App = workload::makeApp(Spec);
    auto Script = workload::makeScript(Spec, 60, 515);
    Names.push_back(Spec.Name);

    auto Base = build(App, baselineOpts());
    auto Cto = build(App, ctoOpts());
    auto Full = build(App, ctoLtboOpts());

    uint64_t BaseMem = runScript(Base.Oat, Script).MemoryBytes;
    uint64_t CtoMem = runScript(Cto.Oat, Script).MemoryBytes;
    uint64_t FullMem = runScript(Full.Oat, Script).MemoryBytes;

    double B = static_cast<double>(BaseMem);
    BaseRow.push_back(fmtBytes(BaseMem));
    CtoRow.push_back(fmtPct(100.0 * (1.0 - CtoMem / B)));
    FullRow.push_back(fmtPct(100.0 * (1.0 - FullMem / B)));
    CtoSum += 100.0 * (1.0 - CtoMem / B);
    FullSum += 100.0 * (1.0 - FullMem / B);
    DiskSum += 100.0 * (1.0 - static_cast<double>(Full.Oat.textBytes()) /
                                  static_cast<double>(Base.Oat.textBytes()));
  }

  double N = static_cast<double>(Specs.size());
  Names.push_back("AVG");
  BaseRow.push_back("/");
  CtoRow.push_back(fmtPct(CtoSum / N));
  FullRow.push_back(fmtPct(FullSum / N));

  printRow("", Names);
  printRow("Baseline (memory)", BaseRow);
  printRow("CTO", CtoRow);
  printRow("CTO+LTBO", FullRow);

  std::printf("\nshape checks:\n");
  std::printf("  CTO reduction < CTO+LTBO reduction : %s\n",
              CtoSum < FullSum ? "PASS" : "FAIL");
  std::printf("  memory reduction < on-disk reduction (measured %.2f%% vs "
              "%.2f%%; paper 6.82%% vs 19.19%%) : %s\n",
              FullSum / N, DiskSum / N,
              FullSum / N < DiskSum / N ? "PASS" : "FAIL");

  // Build-side memory: the largest single-group detect-phase working set
  // (suffix structure + assembled sequence/provenance + candidate scratch,
  // sampled at its peak before scratch release). Partitioning shrinks it
  // (one small structure at a time), and the suffix-array backend holds
  // less than the tree at the same K.
  std::printf("\ndetect-phase peak working set (%s, CTO+LTBO):\n",
              Specs[5].Name.c_str());
  dex::App Big = workload::makeApp(Specs[5]);
  for (auto [Label, Kind] :
       {std::pair<const char *, core::DetectorKind>{
            "suffix tree", core::DetectorKind::SuffixTree},
        {"suffix array", core::DetectorKind::SuffixArray}}) {
    for (uint32_t K : {1u, 8u}) {
      core::CalibroOptions O = ctoLtboOpts();
      O.LtboDetector = Kind;
      O.LtboPartitions = K;
      auto B = build(Big, O);
      // Scratch = arena bytes retained across groups by the suffix-array
      // backend (zero for the tree, which allocates per group). It is an
      // upper bound held for the whole fan-out, so it is reported next to
      // the peak rather than folded into it.
      std::printf("  %-14s K=%-2u %12s  (arena scratch %s)\n", Label, K,
                  fmtBytes(B.Stats.Ltbo.DetectPeakBytes).c_str(),
                  fmtBytes(B.Stats.Ltbo.DetectScratchBytes).c_str());
    }
  }
  return 0;
}
