//===- service/CompileService.cpp - Sharded concurrent compile daemon -----===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include <cstdio>
#include <utility>

using namespace calibro;
using namespace calibro::service;

namespace {

/// Minimal JSON string escape for the job log (names and error messages).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

const JobRecord &JobHandle::wait() const {
  std::unique_lock<std::mutex> Lock(M);
  DoneCv.wait(Lock, [&] { return Done; });
  return Record;
}

CompileService::CompileService(ServiceOptions OptsIn)
    : Opts(std::move(OptsIn)),
      Arbiter(Opts.GlobalMemoryBudgetBytes, std::max<uint32_t>(1,
                                                               Opts.JobSlots)) {
}

Expected<std::unique_ptr<CompileService>>
CompileService::create(const ServiceOptions &Opts) {
  if (Opts.JobSlots == 0)
    return makeError(ErrCat::Service, "compile service: --jobs must be >= 1");
  auto Svc = std::unique_ptr<CompileService>(new CompileService(Opts));
  if (!Svc->Opts.CacheDir.empty()) {
    auto C = cache::ShardedBuildCache::open(Svc->Opts.CacheDir,
                                            std::max<uint32_t>(
                                                1, Svc->Opts.CacheShards),
                                            Svc->Opts.CacheBudgetBytes);
    if (!C)
      return C.takeError();
    Svc->Shared = std::move(*C);
  }
  if (!Svc->Opts.JobLogPath.empty()) {
    Svc->Log.open(Svc->Opts.JobLogPath, std::ios::out | std::ios::trunc);
    if (!Svc->Log)
      return makeError(ErrCat::Service, "compile service: cannot open job log "
                                        + Svc->Opts.JobLogPath);
  }
  Svc->Pool = std::make_unique<ThreadPool>(Svc->Opts.Threads);
  Svc->Runners.reserve(Svc->Opts.JobSlots);
  for (uint32_t I = 0; I < Svc->Opts.JobSlots; ++I)
    Svc->Runners.emplace_back([S = Svc.get()] { S->runnerLoop(); });
  return Svc;
}

CompileService::~CompileService() { shutdown(); }

Expected<std::shared_ptr<JobHandle>> CompileService::submit(JobSpec Spec) {
  if (!Spec.App)
    return makeError(ErrCat::Service, "compile service: job '" + Spec.Name +
                                          "' has no app");
  auto Handle = std::make_shared<JobHandle>();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (ShuttingDown) {
      ++Rejected;
      return makeError(ErrCat::Service,
                       "compile service: shutting down, job '" + Spec.Name +
                           "' rejected");
    }
    if (Waiting.size() >= Opts.QueueDepth) {
      // Backpressure: the caller resubmits later. Nothing in flight is
      // touched — rejection happens before the job joins any shared state.
      ++Rejected;
      return makeError(ErrCat::Service,
                       "compile service: queue full (" +
                           std::to_string(Waiting.size()) + " waiting), job '" +
                           Spec.Name + "' rejected");
    }
    ++Accepted;
    Waiting.push_back(QueuedJob{std::move(Spec), Handle, Timer()});
    PeakDepth = std::max<uint64_t>(PeakDepth, Waiting.size());
  }
  QueueCv.notify_one();
  return Handle;
}

void CompileService::runnerLoop() {
  for (;;) {
    QueuedJob Job;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [&] { return ShuttingDown || !Waiting.empty(); });
      if (Waiting.empty())
        return; // Shutting down and drained.
      Job = std::move(Waiting.front());
      Waiting.pop_front();
    }
    runJob(std::move(Job));
  }
}

void CompileService::runJob(QueuedJob Job) {
  JobRecord R;
  R.Name = Job.Spec.Name;
  R.QueueSeconds = Job.Queued.seconds();
  Timer BuildTimer;

  // The job's slice of the shared machinery: its own fairness group on the
  // one pool, its arbitrated detect budget, the shared cache. The grant is
  // deterministic (min(request, fair share)), so the job's windowing — and
  // with it every cache key it derives — cannot vary run to run.
  ThreadPool::GroupId Group = Pool->createGroup();
  MemoryArbiter::Lease Lease = Arbiter.acquire(Job.Spec.MemoryBudgetBytes);
  R.GrantedBudgetBytes = Lease.bytes();

  core::CalibroOptions Build = Job.Spec.Build;
  Build.Pool = Pool.get();
  Build.PoolGroup = Group;
  Build.MemoryBudgetBytes = Lease.bytes();
  if (Shared) {
    Build.SharedCache = Shared.get();
    Build.CacheDir.clear();
  }

  core::BuildResult Result;
  auto Compiled = core::compileApp(*Job.Spec.App, Build);
  if (Compiled) {
    if (Job.Spec.MutateCompiled)
      Job.Spec.MutateCompiled(*Compiled);
    auto Linked = core::linkApp(std::move(*Compiled), Build);
    if (Linked) {
      R.Ok = true;
      R.Stats = Linked->Stats;
      Result = std::move(*Linked);
    } else {
      R.ErrorMessage = Linked.message();
      R.ErrorCategory = Linked.category();
    }
  } else {
    R.ErrorMessage = Compiled.message();
    R.ErrorCategory = Compiled.category();
  }
  R.BuildSeconds = BuildTimer.seconds();

  // The group's tasks are fully drained (compileApp/linkApp only return
  // after their parallelForIn calls complete), so the slot can be recycled.
  Lease.release();
  Pool->releaseGroup(Group);

  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ++(R.Ok ? Succeeded : Failed);
  }
  logRecord(R);
  finish(*Job.Handle, std::move(R), std::move(Result));
}

void CompileService::finish(JobHandle &H, JobRecord R,
                            core::BuildResult Result) {
  {
    std::lock_guard<std::mutex> Lock(H.M);
    H.Record = std::move(R);
    H.Result = std::move(Result);
    H.Done = true;
  }
  H.DoneCv.notify_all();
}

void CompileService::logRecord(const JobRecord &R) {
  if (!Log.is_open())
    return;
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"job\":\"%s\",\"ok\":%s,\"error_cat\":\"%s\",\"queue_wait_seconds\":"
      "%.6f,\"build_seconds\":%.6f,\"compile_seconds\":%.6f,\"ltbo_seconds\":"
      "%.6f,\"link_seconds\":%.6f,\"granted_budget_bytes\":%llu,"
      "\"cache_hits\":%zu,\"cache_misses\":%zu,\"groups_reused\":%zu,"
      "\"text_bytes\":%llu,\"methods_rejected\":%zu",
      jsonEscape(R.Name).c_str(), R.Ok ? "true" : "false",
      R.Ok ? "" : errCatName(R.ErrorCategory), R.QueueSeconds, R.BuildSeconds,
      R.Stats.CompileSeconds, R.Stats.LtboSeconds, R.Stats.LinkSeconds,
      (unsigned long long)R.GrantedBudgetBytes, R.Stats.CacheHits,
      R.Stats.CacheMisses, R.Stats.GroupsReused,
      (unsigned long long)R.Stats.TextBytes, R.Stats.Ltbo.MethodsRejected);
  std::lock_guard<std::mutex> Lock(LogMutex);
  Log << Buf;
  if (!R.Ok)
    Log << ",\"error\":\"" << jsonEscape(R.ErrorMessage) << "\"";
  Log << "}\n";
  Log.flush();
}

void CompileService::shutdown() {
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
    ToJoin.swap(Runners); // Claimed under the lock: shutdown is reentrant.
  }
  QueueCv.notify_all();
  for (auto &T : ToJoin)
    T.join();
}

ServiceStats CompileService::stats() const {
  ServiceStats S;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    S.JobsAccepted = Accepted;
    S.JobsRejected = Rejected;
    S.JobsSucceeded = Succeeded;
    S.JobsFailed = Failed;
    S.PeakQueueDepth = PeakDepth;
  }
  S.ArbiterPeakBytes = Arbiter.peakOutstandingBytes();
  return S;
}
