//===- service/MemoryArbiter.h - Global detect-budget arbitration -*- C++ -*-=//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lease-based arbitration of one global detect-phase memory budget across
/// the daemon's concurrent jobs (calibro-compiled --global-memory-budget).
///
/// Each job acquires a Lease before linking; the granted bytes become its
/// OutlinerOptions::MemoryBudgetBytes. The invariant the arbiter maintains
/// is simple: the SUM of all outstanding grants never exceeds the global
/// budget, so the aggregate accounted detect working set of every in-flight
/// link stays bounded no matter how jobs overlap.
///
/// Grants are deterministic — min(per-job request, fair share) — and never
/// depend on timing; contention can only delay WHEN a lease is granted,
/// never change HOW MUCH. Since windowed linking is byte-identical for any
/// positive budget, arbitration shapes memory and wall clock, never output.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SERVICE_MEMORYARBITER_H
#define CALIBRO_SERVICE_MEMORYARBITER_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace calibro {
namespace service {

/// Arbiter of one global byte budget across concurrent lease holders.
class MemoryArbiter {
public:
  /// \p GlobalBudgetBytes caps the sum of outstanding grants (0 = no global
  /// budget: requests are granted verbatim, nothing ever blocks). \p Slots
  /// is the number of concurrent holders the budget is provisioned for: the
  /// fair share is GlobalBudgetBytes / Slots (at least 1), and because no
  /// grant exceeds the fair share, up to Slots concurrent acquirers are
  /// admitted without blocking.
  MemoryArbiter(uint64_t GlobalBudgetBytes, uint32_t Slots);

  MemoryArbiter(const MemoryArbiter &) = delete;
  MemoryArbiter &operator=(const MemoryArbiter &) = delete;

  /// RAII grant: returns its bytes to the pool on destruction.
  class Lease {
  public:
    Lease() = default;
    Lease(Lease &&Other) noexcept { *this = std::move(Other); }
    Lease &operator=(Lease &&Other) noexcept {
      release();
      Owner = Other.Owner;
      Granted = Other.Granted;
      Other.Owner = nullptr;
      Other.Granted = 0;
      return *this;
    }
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;
    ~Lease() { release(); }

    /// The granted detect budget in bytes. 0 means "unbudgeted" (only
    /// possible when the arbiter has no global budget and the job asked
    /// for none).
    uint64_t bytes() const { return Granted; }

    void release();

  private:
    friend class MemoryArbiter;
    Lease(MemoryArbiter *Owner, uint64_t Granted)
        : Owner(Owner), Granted(Granted) {}

    MemoryArbiter *Owner = nullptr;
    uint64_t Granted = 0;
  };

  /// Acquires a lease for a job that requested \p RequestedBytes (0 = the
  /// job itself is unbudgeted). Under a global budget the grant is
  /// min(RequestedBytes, fair share) — an unbudgeted job is clamped to the
  /// fair share, so the global bound holds over every job. Blocks until the
  /// grant fits under the global budget; never blocks when at most Slots
  /// leases are outstanding.
  Lease acquire(uint64_t RequestedBytes);

  uint64_t globalBudget() const { return Global; }
  uint64_t fairShareBytes() const { return FairShare; }

  /// Sum of currently outstanding grants.
  uint64_t outstandingBytes() const;

  /// High-water mark of outstandingBytes() over the arbiter's lifetime.
  /// The table8 gate: peak <= globalBudget().
  uint64_t peakOutstandingBytes() const;

private:
  void release(uint64_t Bytes);

  const uint64_t Global;
  const uint64_t FairShare;

  mutable std::mutex M;
  std::condition_variable Freed;
  uint64_t Outstanding = 0;
  uint64_t Peak = 0;
};

} // namespace service
} // namespace calibro

#endif // CALIBRO_SERVICE_MEMORYARBITER_H
