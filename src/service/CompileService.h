//===- service/CompileService.h - Sharded concurrent compile daemon -*- C++-*-//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-service core behind calibro-compiled: many app-build jobs in
/// flight at once over shared, bounded resources. One service owns
///
///  * a bounded admission queue — submit() rejects with ErrCat::Service when
///    QueueDepth jobs are already waiting (backpressure, never unbounded
///    growth) or after shutdown began;
///  * JobSlots runner threads, each driving one job end to end through the
///    library pipeline (compileApp -> linkApp);
///  * ONE shared ThreadPool. Every job fans its per-method compilation and
///    its whole LTBO link stage onto this pool under its own fairness group
///    (ThreadPool::createGroup), so a huge job cannot starve a small one and
///    no job ever waits on another job's queued tasks;
///  * a MemoryArbiter over --global-memory-budget: each job's detect budget
///    is a deterministic lease, and the sum of in-flight grants never
///    exceeds the global bound;
///  * optionally, a ShardedBuildCache all jobs share: concurrent probes and
///    stores with per-shard locking, cross-job digest dedup, LRU eviction
///    under a byte budget.
///
/// The determinism contract carries over from the library: a job's OAT is
/// byte-identical to the same build run serially in isolation, for any slot
/// count, pool size, budget grant, queue interleaving or cache state —
/// concurrency shapes throughput and memory, never output. That is the
/// property tests/test_service.cpp and bench/table8_service.cpp enforce by
/// comparing daemon-built images against serial rebuilds byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SERVICE_COMPILESERVICE_H
#define CALIBRO_SERVICE_COMPILESERVICE_H

#include "cache/ShardedCache.h"
#include "core/Calibro.h"
#include "service/MemoryArbiter.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace calibro {
namespace service {

/// Daemon configuration (the calibro-compiled flag surface).
struct ServiceOptions {
  /// Concurrent jobs in flight (runner threads). --jobs.
  uint32_t JobSlots = 2;
  /// Jobs allowed to WAIT beyond the running ones; submit() rejects with
  /// ErrCat::Service once this many are queued. --queue-depth.
  uint32_t QueueDepth = 8;
  /// Workers of the one shared pool (0 = hardware concurrency). --threads.
  uint32_t Threads = 0;
  /// Directory of the shared sharded build cache; empty = no shared cache
  /// (jobs may still use a private CalibroOptions::CacheDir). --cache-dir.
  std::string CacheDir;
  /// Shard count of the shared cache. --cache-shards.
  uint32_t CacheShards = 8;
  /// Byte budget of the shared cache (0 = unbounded). --cache-budget.
  uint64_t CacheBudgetBytes = 0;
  /// Global detect-budget bound across concurrent jobs (0 = none).
  /// --global-memory-budget.
  uint64_t GlobalMemoryBudgetBytes = 0;
  /// Machine-readable JSONL job log, one object per finished job; empty
  /// disables. --job-log.
  std::string JobLogPath;
};

/// One build request.
struct JobSpec {
  /// Display name (job log, error messages).
  std::string Name;
  /// The app to build; caller-owned, must outlive the job.
  const dex::App *App = nullptr;
  /// Build configuration. The service overrides Pool / PoolGroup /
  /// SharedCache / MemoryBudgetBytes; everything else is the caller's.
  core::CalibroOptions Build;
  /// Per-job detect-budget request in bytes (0 = unbudgeted). The actual
  /// grant is arbitrated: min(request, fair share) under a global budget.
  uint64_t MemoryBudgetBytes = 0;
  /// Test hook, run between compileApp and linkApp on the compiled app —
  /// the same surface the fault-injection harness mutates. Used by the
  /// fault-isolation suite (one corrupted job must degrade alone) and to
  /// block a running job while admission tests fill the queue.
  std::function<void(core::CompiledApp &)> MutateCompiled;
};

/// What one finished job reports (also serialized to the JSONL log).
struct JobRecord {
  std::string Name;
  bool Ok = false;
  std::string ErrorMessage; ///< Empty when Ok.
  ErrCat ErrorCategory = ErrCat::Generic;
  double QueueSeconds = 0.0; ///< submit() -> a runner picked it up.
  double BuildSeconds = 0.0; ///< Runner pickup -> build finished.
  uint64_t GrantedBudgetBytes = 0;
  core::BuildStats Stats; ///< Valid when Ok (cache hits, link wall, ...).
};

/// Handle of one accepted job. wait() blocks until the job finished and
/// returns its record; the built OAT stays in the handle for the caller to
/// take (the daemon tool serializes it, tests cmp it).
class JobHandle {
public:
  /// Blocks until the job finished.
  const JobRecord &wait() const;

  /// The linked image; valid after wait() when the record says Ok.
  oat::OatFile &oat() { return Result.Oat; }

private:
  friend class CompileService;

  mutable std::mutex M;
  mutable std::condition_variable DoneCv;
  bool Done = false;
  JobRecord Record;
  core::BuildResult Result;
};

/// Monotonic service counters.
struct ServiceStats {
  uint64_t JobsAccepted = 0;
  uint64_t JobsRejected = 0; ///< Queue-full / post-shutdown submissions.
  uint64_t JobsSucceeded = 0;
  uint64_t JobsFailed = 0; ///< Accepted but the build errored.
  uint64_t PeakQueueDepth = 0;
  uint64_t ArbiterPeakBytes = 0; ///< Peak sum of in-flight budget grants.
};

/// The daemon core. Construction spins up the runner threads; destruction
/// (or shutdown()) drains accepted jobs and joins them.
class CompileService {
public:
  static Expected<std::unique_ptr<CompileService>>
  create(const ServiceOptions &Opts);

  ~CompileService();

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Submits a job. Fails with ErrCat::Service — without touching any
  /// in-flight job — when QueueDepth jobs are already waiting or the
  /// service is shutting down.
  Expected<std::shared_ptr<JobHandle>> submit(JobSpec Spec);

  /// Stops accepting, drains every accepted job, joins the runners.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;

  /// The shared cache, or null when CacheDir was empty.
  cache::ShardedBuildCache *sharedCache() { return Shared.get(); }

  /// The one pool every job fans out on.
  ThreadPool &pool() { return *Pool; }

  const ServiceOptions &options() const { return Opts; }

private:
  explicit CompileService(ServiceOptions Opts);

  struct QueuedJob {
    JobSpec Spec;
    std::shared_ptr<JobHandle> Handle;
    Timer Queued; ///< Started at submit; read at runner pickup.
  };

  void runnerLoop();
  void runJob(QueuedJob Job);
  void logRecord(const JobRecord &R);
  void finish(JobHandle &H, JobRecord R, core::BuildResult Result);

  ServiceOptions Opts;
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<cache::ShardedBuildCache> Shared;
  MemoryArbiter Arbiter;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<QueuedJob> Waiting;
  bool ShuttingDown = false;
  uint64_t Accepted = 0, Rejected = 0, Succeeded = 0, Failed = 0;
  uint64_t PeakDepth = 0;

  std::mutex LogMutex;
  std::ofstream Log;

  std::vector<std::thread> Runners;
};

} // namespace service
} // namespace calibro

#endif // CALIBRO_SERVICE_COMPILESERVICE_H
