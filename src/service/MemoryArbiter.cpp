//===- service/MemoryArbiter.cpp - Global detect-budget arbitration -------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "service/MemoryArbiter.h"

#include <algorithm>

using namespace calibro;
using namespace calibro::service;

MemoryArbiter::MemoryArbiter(uint64_t GlobalBudgetBytes, uint32_t Slots)
    : Global(GlobalBudgetBytes),
      FairShare(GlobalBudgetBytes
                    ? std::max<uint64_t>(1, GlobalBudgetBytes /
                                                std::max<uint32_t>(1, Slots))
                    : 0) {}

MemoryArbiter::Lease MemoryArbiter::acquire(uint64_t RequestedBytes) {
  if (Global == 0) {
    // No global budget: the job's own request stands, including "none".
    std::lock_guard<std::mutex> Lock(M);
    Outstanding += RequestedBytes;
    Peak = std::max(Peak, Outstanding);
    return Lease(this, RequestedBytes);
  }
  // Deterministic grant: the request clamped to the fair share, and an
  // unbudgeted job clamped to the fair share outright — under a global
  // budget every job links windowed, or the sum could not be bounded.
  uint64_t Grant =
      RequestedBytes ? std::min(RequestedBytes, FairShare) : FairShare;
  std::unique_lock<std::mutex> Lock(M);
  Freed.wait(Lock, [&] { return Outstanding + Grant <= Global; });
  Outstanding += Grant;
  Peak = std::max(Peak, Outstanding);
  return Lease(this, Grant);
}

void MemoryArbiter::Lease::release() {
  if (!Owner)
    return;
  Owner->release(Granted);
  Owner = nullptr;
  Granted = 0;
}

void MemoryArbiter::release(uint64_t Bytes) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Outstanding -= Bytes;
  }
  Freed.notify_all();
}

uint64_t MemoryArbiter::outstandingBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Outstanding;
}

uint64_t MemoryArbiter::peakOutstandingBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Peak;
}
