//===- support/Error.h - Lightweight recoverable error handling -*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal, exception-free recoverable-error scheme in the spirit of
/// llvm::Error / llvm::Expected. An Error is either success or a message;
/// Expected<T> carries either a value or an Error. Errors must be checked
/// before destruction in asserts builds, which catches silently dropped
/// failures early.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_ERROR_H
#define CALIBRO_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace calibro {

/// A recoverable error: success, or a failure described by a message.
///
/// The object must be checked (tested via operator bool) or moved from before
/// it is destroyed; destruction of an unchecked failure asserts. This mirrors
/// llvm::Error's discipline without the RTTI machinery.
class [[nodiscard]] Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure value carrying \p Msg.
  static Error failure(std::string Msg) {
    Error E;
    E.Failed = true;
    E.Msg = std::move(Msg);
    E.Checked = false;
    return E;
  }

  Error(Error &&Other) noexcept
      : Failed(Other.Failed), Checked(Other.Checked),
        Msg(std::move(Other.Msg)) {
    Other.Checked = true;
  }

  Error &operator=(Error &&Other) noexcept {
    assert(Checked && "overwriting an unchecked Error");
    Failed = Other.Failed;
    Checked = Other.Checked;
    Msg = std::move(Other.Msg);
    Other.Checked = true;
    return *this;
  }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  ~Error() { assert(Checked && "destroying an unchecked Error"); }

  /// Tests for failure and marks the error checked. True means failure.
  explicit operator bool() {
    Checked = true;
    return Failed;
  }

  /// Returns the failure message (empty for success).
  const std::string &message() const { return Msg; }

private:
  Error() = default;

  bool Failed = false;
  bool Checked = true;
  std::string Msg;
};

/// Creates a failure Error from a message.
inline Error makeError(std::string Msg) {
  return Error::failure(std::move(Msg));
}

/// Explicitly discards an error that is known to be benign.
inline void consumeError(Error E) { (void)bool(E); }

/// Either a T or an Error. Test with operator bool (true == has a value),
/// then access the value with operator* / operator-> or the error with
/// takeError().
template <typename T> class [[nodiscard]] Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)), Err(Error::success()) {}

  /// Constructs a failure value.
  Expected(Error E) : Err(std::move(E)) {
    assert(Err.message().size() && "Expected constructed from success Error");
  }

  Expected(Expected &&) noexcept = default;

  /// True when a value is present.
  explicit operator bool() {
    if (!Value.has_value())
      return false;
    consumeErrorFlag();
    return true;
  }

  T &operator*() {
    assert(Value.has_value() && "dereferencing an errored Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value.has_value() && "dereferencing an errored Expected");
    return *Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// Extracts the error. Returns success() if a value is present.
  Error takeError() {
    if (Value.has_value())
      return Error::success();
    return std::move(Err);
  }

  /// Returns the failure message (empty when a value is present).
  const std::string &message() const { return Err.message(); }

private:
  void consumeErrorFlag() { (void)bool(Err); }

  std::optional<T> Value;
  Error Err;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_ERROR_H
