//===- support/Error.h - Lightweight recoverable error handling -*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal, exception-free recoverable-error scheme in the spirit of
/// llvm::Error / llvm::Expected. An Error is either success or a message;
/// Expected<T> carries either a value or an Error. Errors must be checked
/// before destruction in asserts builds, which catches silently dropped
/// failures early.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_ERROR_H
#define CALIBRO_SUPPORT_ERROR_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace calibro {

/// Coarse classification of a failure, so callers (tools, the fault-injection
/// harness) can tell a malformed input apart from an internal pipeline fault
/// without parsing the message text.
enum class ErrCat : uint8_t {
  Generic,   ///< Unclassified failure.
  BadFormat, ///< Malformed serialized input (ELF / OAT container).
  SideInfo,  ///< Invalid per-method side information.
  Link,      ///< Link-stage failure (relocations, layout, duplicate ids).
  Runtime,   ///< Simulator / execution failure.
  Service,   ///< Compile-service admission failure (queue full, shut down).
};

/// Returns a stable lower-case name for \p C ("bad-format", ...).
inline const char *errCatName(ErrCat C) {
  switch (C) {
  case ErrCat::Generic:
    return "error";
  case ErrCat::BadFormat:
    return "bad-format";
  case ErrCat::SideInfo:
    return "side-info";
  case ErrCat::Link:
    return "link";
  case ErrCat::Runtime:
    return "runtime";
  case ErrCat::Service:
    return "service";
  }
  return "error";
}

/// A recoverable error: success, or a failure described by a message.
///
/// The object must be checked (tested via operator bool) or moved from before
/// it is destroyed; destruction of an unchecked failure asserts. This mirrors
/// llvm::Error's discipline without the RTTI machinery.
class [[nodiscard]] Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure value carrying \p Msg, classified as \p Cat.
  static Error failure(std::string Msg, ErrCat Cat = ErrCat::Generic) {
    Error E;
    E.Failed = true;
    E.Msg = std::move(Msg);
    E.Cat = Cat;
    E.Checked = false;
    return E;
  }

  Error(Error &&Other) noexcept
      : Failed(Other.Failed), Checked(Other.Checked), Cat(Other.Cat),
        Msg(std::move(Other.Msg)) {
    Other.Checked = true;
  }

  Error &operator=(Error &&Other) noexcept {
    assert(Checked && "overwriting an unchecked Error");
    Failed = Other.Failed;
    Checked = Other.Checked;
    Cat = Other.Cat;
    Msg = std::move(Other.Msg);
    Other.Checked = true;
    return *this;
  }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  ~Error() { assert(Checked && "destroying an unchecked Error"); }

  /// Tests for failure and marks the error checked. True means failure.
  explicit operator bool() {
    Checked = true;
    return Failed;
  }

  /// Returns the failure message (empty for success).
  const std::string &message() const { return Msg; }

  /// Returns the failure category (Generic for success).
  ErrCat category() const { return Cat; }

private:
  Error() = default;

  bool Failed = false;
  bool Checked = true;
  ErrCat Cat = ErrCat::Generic;
  std::string Msg;
};

/// Creates a failure Error from a message.
inline Error makeError(std::string Msg) {
  return Error::failure(std::move(Msg));
}

/// Creates a classified failure Error.
inline Error makeError(ErrCat Cat, std::string Msg) {
  return Error::failure(std::move(Msg), Cat);
}

/// Explicitly discards an error that is known to be benign.
inline void consumeError(Error E) { (void)bool(E); }

/// Either a T or an Error. Test with operator bool (true == has a value),
/// then access the value with operator* / operator-> or the error with
/// takeError().
template <typename T> class [[nodiscard]] Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)), Err(Error::success()) {}

  /// Constructs a failure value.
  Expected(Error E) : Err(std::move(E)) {
    assert(Err.message().size() && "Expected constructed from success Error");
  }

  Expected(Expected &&) noexcept = default;

  /// True when a value is present.
  explicit operator bool() {
    if (!Value.has_value())
      return false;
    consumeErrorFlag();
    return true;
  }

  T &operator*() {
    assert(Value.has_value() && "dereferencing an errored Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value.has_value() && "dereferencing an errored Expected");
    return *Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// Extracts the error. Returns success() if a value is present.
  Error takeError() {
    if (Value.has_value())
      return Error::success();
    return std::move(Err);
  }

  /// Returns the failure message (empty when a value is present).
  const std::string &message() const { return Err.message(); }

  /// Returns the failure category (Generic when a value is present).
  ErrCat category() const { return Err.category(); }

private:
  void consumeErrorFlag() { (void)bool(Err); }

  std::optional<T> Value;
  Error Err;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_ERROR_H
