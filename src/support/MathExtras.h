//===- support/MathExtras.h - Bit and range arithmetic ----------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-twiddling helpers shared by the AArch64 encoder and the patcher:
/// signed-range checks for branch immediates, field extraction/insertion,
/// and alignment math.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_MATHEXTRAS_H
#define CALIBRO_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace calibro {

/// True if \p X fits in a signed N-bit integer.
template <unsigned N> constexpr bool isInt(int64_t X) {
  static_assert(N > 0 && N < 64, "invalid bit width");
  return X >= -(int64_t(1) << (N - 1)) && X < (int64_t(1) << (N - 1));
}

/// True if \p X is a multiple of 2^S and X/2^S fits in a signed N-bit value.
template <unsigned N, unsigned S> constexpr bool isShiftedInt(int64_t X) {
  static_assert(N + S <= 64, "invalid shifted bit width");
  return (X % (int64_t(1) << S)) == 0 && isInt<N>(X >> S);
}

/// True if \p X fits in an unsigned N-bit integer.
template <unsigned N> constexpr bool isUInt(uint64_t X) {
  static_assert(N > 0 && N < 64, "invalid bit width");
  return X < (uint64_t(1) << N);
}

/// Extracts the bit field [Lo, Lo+Width) from \p Value.
constexpr uint32_t extractBits(uint32_t Value, unsigned Lo, unsigned Width) {
  assert(Lo + Width <= 32 && "field out of range");
  if (Width == 32)
    return Value >> Lo;
  return (Value >> Lo) & ((uint32_t(1) << Width) - 1);
}

/// Returns \p Value with bit field [Lo, Lo+Width) replaced by \p Field.
constexpr uint32_t insertBits(uint32_t Value, uint32_t Field, unsigned Lo,
                              unsigned Width) {
  assert(Lo + Width <= 32 && "field out of range");
  uint32_t Mask =
      (Width == 32 ? ~uint32_t(0) : ((uint32_t(1) << Width) - 1)) << Lo;
  return (Value & ~Mask) | ((Field << Lo) & Mask);
}

/// Sign-extends the low \p Width bits of \p Value.
constexpr int64_t signExtend(uint64_t Value, unsigned Width) {
  assert(Width > 0 && Width <= 64 && "invalid width");
  if (Width == 64)
    return static_cast<int64_t>(Value);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  return static_cast<int64_t>((Value ^ SignBit)) - static_cast<int64_t>(SignBit);
}

/// Rounds \p Value up to the next multiple of \p Align (a power of two).
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "non power-of-two align");
  return (Value + Align - 1) & ~(Align - 1);
}

} // namespace calibro

#endif // CALIBRO_SUPPORT_MATHEXTRAS_H
