//===- support/Random.h - Deterministic random number utilities -*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generators used by the synthetic workload generator and by
/// property tests. All generators are fully deterministic for a given seed so
/// that every experiment in EXPERIMENTS.md is reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_RANDOM_H
#define CALIBRO_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace calibro {

/// SplitMix64: a tiny, high-quality 64-bit generator. Used directly and as
/// the seeding routine for Xoshiro256**.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: the main workhorse generator for workload synthesis.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : State)
      Word = SM.next();
  }

  /// Returns a uniformly distributed 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow() with zero bound");
    // Multiply-shift rejection-free mapping (slightly biased for huge bounds,
    // irrelevant for workload synthesis).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

/// Samples from a Zipf distribution over {0, .., N-1} with exponent S.
///
/// Used to model the heavy-tailed reuse of code idioms across an app's
/// methods (Observation 2: short sequences repeat very often). Sampling uses
/// a precomputed CDF, so construction is O(N) and sampling is O(log N).
class ZipfSampler {
public:
  ZipfSampler(std::size_t N, double S);

  /// Draws one index; smaller indices are exponentially more likely.
  std::size_t sample(Rng &R) const;

  std::size_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_RANDOM_H
