//===- support/MappedFile.h - Read-only memory-mapped files -----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only, memory-mapped view of a file. Both consumers of whole-file
/// bytes — the OAT reader and the build-cache blob loader — parse straight
/// out of the mapping through std::span, so opening a file no longer copies
/// its image into a heap vector first (the zero-copy read path, DESIGN.md
/// §9). Where mmap is unavailable or fails, open() silently falls back to a
/// buffered read; callers only ever see a span.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_MAPPEDFILE_H
#define CALIBRO_SUPPORT_MAPPEDFILE_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace calibro {
namespace support {

/// Read-only bytes of one file, mmap-backed when possible. Movable, not
/// copyable; the mapping lives exactly as long as the object (spans from
/// bytes() dangle after destruction — parse before dropping it).
class MappedFile {
public:
  /// Maps \p Path. Returns nullopt when the file cannot be opened or read
  /// (a missing cache entry is an expected miss, not an error). An empty
  /// file yields a valid object with an empty span.
  static std::optional<MappedFile> open(const std::string &Path);

  MappedFile(MappedFile &&O) noexcept { *this = std::move(O); }
  MappedFile &operator=(MappedFile &&O) noexcept;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile();

  std::span<const uint8_t> bytes() const {
    return std::span<const uint8_t>(Data, Len);
  }
  std::size_t size() const { return Len; }

  /// True when the bytes come from an actual mmap (false on the read
  /// fallback). Observability for tests and tools only.
  bool isMapped() const { return Mapping != nullptr; }

private:
  MappedFile() = default;

  const uint8_t *Data = nullptr;
  std::size_t Len = 0;
  void *Mapping = nullptr; ///< mmap base when mapped, else null.
  std::vector<uint8_t> Fallback;
};

} // namespace support
} // namespace calibro

#endif // CALIBRO_SUPPORT_MAPPEDFILE_H
