//===- support/MappedFile.cpp - Read-only memory-mapped files -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/MappedFile.h"

#include <cstdio>

#if defined(_WIN32)
// No mmap on Windows in this tree; the buffered-read fallback below is the
// only path.
#else
#define CALIBRO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace calibro;
using namespace calibro::support;

MappedFile &MappedFile::operator=(MappedFile &&O) noexcept {
  if (this == &O)
    return *this;
#ifdef CALIBRO_HAVE_MMAP
  if (Mapping)
    ::munmap(Mapping, Len);
#endif
  Data = O.Data;
  Len = O.Len;
  Mapping = O.Mapping;
  Fallback = std::move(O.Fallback);
  if (!Mapping && Len)
    Data = Fallback.data(); // The vector's buffer moved with it.
  O.Data = nullptr;
  O.Len = 0;
  O.Mapping = nullptr;
  return *this;
}

MappedFile::~MappedFile() {
#ifdef CALIBRO_HAVE_MMAP
  if (Mapping)
    ::munmap(Mapping, Len);
#endif
}

std::optional<MappedFile> MappedFile::open(const std::string &Path) {
#ifdef CALIBRO_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return std::nullopt;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return std::nullopt;
  }
  {
    MappedFile M;
    M.Len = static_cast<std::size_t>(St.st_size);
    if (M.Len == 0) {
      ::close(Fd);
      return M; // Empty file: valid, empty span, nothing to map.
    }
    void *Addr = ::mmap(nullptr, M.Len, PROT_READ, MAP_PRIVATE, Fd, 0);
    ::close(Fd);
    if (Addr != MAP_FAILED) {
      M.Mapping = Addr;
      M.Data = static_cast<const uint8_t *>(Addr);
      return M;
    }
    // mmap refused (odd filesystem): fall through to the read path.
  }
#endif
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  MappedFile M;
  M.Fallback.resize(static_cast<std::size_t>(Size < 0 ? 0 : Size));
  std::size_t Read = std::fread(M.Fallback.data(), 1, M.Fallback.size(), F);
  std::fclose(F);
  if (Read != M.Fallback.size())
    return std::nullopt;
  M.Data = M.Fallback.data();
  M.Len = M.Fallback.size();
  return M;
}
