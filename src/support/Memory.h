//===- support/Memory.h - Process memory observability ----------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-level resident-set sampling for the memory benchmarks: the
/// windowed-linking work bounds the detect phase's *accounted* working set
/// (OutlineStats::DetectPeakBytes and friends), and the bench harnesses
/// cross-check that accounting against what the OS actually charges the
/// process. Observability only — RSS depends on the allocator, the kernel
/// and every other allocation in the process, so it must never feed a
/// deterministic stat or a test's exact-equality assertion.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_MEMORY_H
#define CALIBRO_SUPPORT_MEMORY_H

#include <cstdint>

namespace calibro {
namespace support {

/// One resident-set snapshot of the calling process.
struct RssSample {
  uint64_t CurrentBytes = 0; ///< VmRSS: resident set right now.
  uint64_t PeakBytes = 0;    ///< VmHWM: lifetime resident-set high water.
};

/// Samples the process's resident set from /proc/self/status (VmRSS and
/// VmHWM). Returns zeros on platforms without procfs or on any read
/// failure — callers treat a zero sample as "not measurable", never as an
/// error.
RssSample sampleRss();

} // namespace support
} // namespace calibro

#endif // CALIBRO_SUPPORT_MEMORY_H
