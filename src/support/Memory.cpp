//===- support/Memory.cpp - Process memory observability ------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/Memory.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace calibro;
using namespace calibro::support;

RssSample support::sampleRss() {
  RssSample S;
  // /proc/self/status carries "VmRSS:   12345 kB" / "VmHWM:   23456 kB"
  // lines on Linux. Anywhere the file does not exist (or lacks the lines)
  // the sample stays zero.
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return S;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), F)) {
    uint64_t *Slot = nullptr;
    if (std::strncmp(Line, "VmRSS:", 6) == 0)
      Slot = &S.CurrentBytes;
    else if (std::strncmp(Line, "VmHWM:", 6) == 0)
      Slot = &S.PeakBytes;
    if (Slot)
      *Slot = std::strtoull(Line + 6, nullptr, 10) * 1024;
  }
  std::fclose(F);
  return S;
}
