//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers used by the build-time experiment (paper Table 6).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_TIMER_H
#define CALIBRO_SUPPORT_TIMER_H

#include <chrono>

namespace calibro {

/// A simple start/stop wall-clock timer reporting seconds.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the timer.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_TIMER_H
