//===- support/ThreadPool.h - Fixed-size worker thread pool -----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the parallel link stage: the
/// paralleled-suffix-tree optimization (paper §3.4.1), the per-method
/// preprocessing and rewrite fan-out around it, per-method compilation, and
/// the differential-verification ladder. Tasks are plain
/// std::function<void()>; wait() blocks until every enqueued task has
/// finished.
///
/// parallelFor() is the structured entry point: it splits the index space
/// into contiguous chunks (one queued task per chunk, never one allocation
/// per index), runs them across the pool, and propagates the exception of
/// the lowest failing index deterministically — the same error surfaces for
/// every thread count and scheduling.
///
/// Fairness groups (the calibro-compiled hook): the pool can be shared by
/// several concurrent clients — daemon jobs — each owning a GroupId from
/// createGroup(). Tasks queue per group and workers dispatch round-robin
/// ACROSS the non-empty groups, so a job that fans out ten thousand chunks
/// cannot starve the job that fans out eight; within one group order stays
/// FIFO. parallelFor tracks completion per call (not via the global queue),
/// so concurrent parallelFor calls from different jobs never wait on each
/// other's tasks. Group 0 always exists; single-client users never need to
/// touch the group API, and every output stays byte-identical regardless of
/// grouping — fairness shapes the wall clock, never the result.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_THREADPOOL_H
#define CALIBRO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace calibro {

/// Fixed-size pool of worker threads with per-group FIFO task queues and
/// round-robin dispatch across groups.
class ThreadPool {
public:
  /// A fairness class for tasks. 0 is the default group, always valid.
  using GroupId = uint32_t;

  /// Creates effectiveThreads(NumThreads) workers — the request is clamped
  /// to the machine, never trusted verbatim (see effectiveThreads()).
  explicit ThreadPool(std::size_t NumThreads);
  ~ThreadPool();

  /// The worker count a request for \p Requested threads actually gets:
  /// zero means "use the machine" (hardware_concurrency), and any request
  /// above hardware_concurrency is clamped down to it. Oversubscribing a
  /// CPU-bound stage only adds context-switch and queue-contention overhead
  /// — the measured 8-thread-slower-than-1-thread regression on small
  /// machines — and the link pipeline's output is thread-count-invariant,
  /// so clamping can never change a result, only the wall clock.
  static std::size_t effectiveThreads(std::size_t Requested);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Registers a new fairness group and returns its id. Thread-safe.
  GroupId createGroup();

  /// Releases a group created by createGroup(). The group's queue must be
  /// drained (every client waits out its own parallelFor calls before
  /// releasing). Group 0 cannot be released.
  void releaseGroup(GroupId G);

  /// Enqueues a task for asynchronous execution under group 0.
  void enqueue(std::function<void()> Task) { enqueueIn(0, std::move(Task)); }

  /// Enqueues a task under fairness group \p G.
  void enqueueIn(GroupId G, std::function<void()> Task);

  /// Blocks until every queue is empty and no task is running. This is a
  /// GLOBAL barrier over all groups — pool-sharing clients should rely on
  /// parallelFor's per-call completion instead.
  void wait();

  std::size_t numThreads() const { return Workers.size(); }

  /// Runs \p Fn(I) for every I in [0, N) across the pool and waits, under
  /// group 0. See parallelForIn.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Fn,
                   std::size_t Grain = 0) {
    parallelForIn(0, N, Fn, Grain);
  }

  /// Runs \p Fn(I) for every I in [0, N) across the pool and waits, with
  /// the chunk tasks queued under fairness group \p G.
  ///
  /// The index space is split into contiguous chunks of at least \p Grain
  /// iterations (Grain == 0 picks one automatically from N and the worker
  /// count), one queued task per chunk. A single-worker pool — or an index
  /// space that fits in one chunk — runs inline on the calling thread: no
  /// queue round-trip, no condition-variable handshake, identical
  /// semantics. Completion is tracked per call: this returns as soon as ITS
  /// chunks finished, regardless of what other groups (or other concurrent
  /// parallelFor calls) still have queued. If any iteration throws, the
  /// chunk abandons its remaining iterations, the other chunks still run,
  /// and the exception of the LOWEST failing index is rethrown here — so
  /// the caller observes the same error for any thread count, grouping, or
  /// scheduling.
  void parallelForIn(GroupId G, std::size_t N,
                     const std::function<void(std::size_t)> &Fn,
                     std::size_t Grain = 0);

private:
  void workerLoop();

  /// One fairness class: a FIFO of tasks plus liveness (released group
  /// slots are recycled by createGroup).
  struct Group {
    std::deque<std::function<void()>> Tasks;
    bool Live = false;
  };

  std::vector<std::thread> Workers;
  std::vector<Group> Groups;
  std::size_t RrCursor = 0;      ///< Last group a worker drew from.
  std::size_t PendingTasks = 0;  ///< Queued, not yet running (all groups).
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  std::size_t ActiveTasks = 0;
  bool ShuttingDown = false;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_THREADPOOL_H
