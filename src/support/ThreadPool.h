//===- support/ThreadPool.h - Fixed-size worker thread pool -----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the paralleled-suffix-tree
/// optimization (paper §3.4.1). Tasks are plain std::function<void()>; wait()
/// blocks until every enqueued task has finished, which is the only
/// synchronization the partition-per-tree design needs.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_THREADPOOL_H
#define CALIBRO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace calibro {

/// Fixed-size pool of worker threads with a FIFO task queue.
class ThreadPool {
public:
  /// Creates \p NumThreads workers. Zero means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task for asynchronous execution.
  void enqueue(std::function<void()> Task);

  /// Blocks until the queue is empty and no task is running.
  void wait();

  std::size_t numThreads() const { return Workers.size(); }

  /// Runs \p Fn(I) for every I in [0, N) across the pool and waits.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  std::size_t ActiveTasks = 0;
  bool ShuttingDown = false;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_THREADPOOL_H
