//===- support/ThreadPool.h - Fixed-size worker thread pool -----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the parallel link stage: the
/// paralleled-suffix-tree optimization (paper §3.4.1), the per-method
/// preprocessing and rewrite fan-out around it, per-method compilation, and
/// the differential-verification ladder. Tasks are plain
/// std::function<void()>; wait() blocks until every enqueued task has
/// finished.
///
/// parallelFor() is the structured entry point: it splits the index space
/// into contiguous chunks (one queued task per chunk, never one allocation
/// per index), runs them across the pool, and propagates the exception of
/// the lowest failing index deterministically — the same error surfaces for
/// every thread count and scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_THREADPOOL_H
#define CALIBRO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace calibro {

/// Fixed-size pool of worker threads with a FIFO task queue.
class ThreadPool {
public:
  /// Creates effectiveThreads(NumThreads) workers — the request is clamped
  /// to the machine, never trusted verbatim (see effectiveThreads()).
  explicit ThreadPool(std::size_t NumThreads);
  ~ThreadPool();

  /// The worker count a request for \p Requested threads actually gets:
  /// zero means "use the machine" (hardware_concurrency), and any request
  /// above hardware_concurrency is clamped down to it. Oversubscribing a
  /// CPU-bound stage only adds context-switch and queue-contention overhead
  /// — the measured 8-thread-slower-than-1-thread regression on small
  /// machines — and the link pipeline's output is thread-count-invariant,
  /// so clamping can never change a result, only the wall clock.
  static std::size_t effectiveThreads(std::size_t Requested);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task for asynchronous execution.
  void enqueue(std::function<void()> Task);

  /// Blocks until the queue is empty and no task is running.
  void wait();

  std::size_t numThreads() const { return Workers.size(); }

  /// Runs \p Fn(I) for every I in [0, N) across the pool and waits.
  ///
  /// The index space is split into contiguous chunks of at least \p Grain
  /// iterations (Grain == 0 picks one automatically from N and the worker
  /// count), one queued task per chunk. A single-worker pool — or an index
  /// space that fits in one chunk — runs inline on the calling thread: no
  /// queue round-trip, no condition-variable handshake, identical
  /// semantics. If any iteration throws, the chunk abandons its remaining
  /// iterations, the other chunks still run, and the exception of the
  /// LOWEST failing index is rethrown here — so the caller observes the
  /// same error for any thread count or scheduling.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Fn,
                   std::size_t Grain = 0);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  std::size_t ActiveTasks = 0;
  bool ShuttingDown = false;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_THREADPOOL_H
