//===- support/Arena.h - Bump allocator for detect scratch ------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump allocator for the short-lived, size-predictable scratch of the
/// detect phase: suffix-array construction workspace (rank arrays, SA-IS
/// buckets, LCP arrays) and per-group selection buffers. One group's detect
/// pass performs thousands of small frees under the general-purpose
/// allocator; with an arena the whole workspace is one reset.
///
/// Lifetime rules (DESIGN.md §9):
///  - Allocations are uninitialized raw memory for trivial types only; the
///    arena never runs constructors or destructors.
///  - reset() invalidates every span handed out since the previous reset
///    but KEEPS the memory, coalesced into a single block sized to a
///    decaying watermark of recent usage — a reused arena reaches steady
///    state after one group and stops touching the heap, while a block
///    grown for one oversized outlier decays back to the allocator instead
///    of being pinned for the pool's lifetime.
///  - An Arena is single-threaded. Concurrent detect tasks each borrow a
///    whole arena from an ArenaPool; the pool hands one arena to at most
///    one task at a time.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_ARENA_H
#define CALIBRO_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace calibro {
namespace support {

/// Chunked bump allocator. Not thread-safe; see ArenaPool for sharing.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// \p Bytes of uninitialized storage aligned to \p Align (a power of
  /// two, at most alignof(std::max_align_t)).
  void *allocate(std::size_t Bytes, std::size_t Align);

  /// Uninitialized span of \p N objects of trivial type T.
  template <typename T> std::span<T> allocSpan(std::size_t N) {
    return std::span<T>(static_cast<T *>(allocate(N * sizeof(T), alignof(T))),
                        N);
  }

  /// Invalidates all outstanding allocations and rewinds to empty. Memory
  /// is retained against a DECAYING watermark of recent usage, not a
  /// lifetime high-water mark: a cycle that spilled into several blocks is
  /// coalesced into one block sized to the watermark (so the next cycle of
  /// the same shape allocates from one contiguous block without touching
  /// the heap), and a reserve left behind by one oversized cycle shrinks
  /// geometrically across subsequent smaller cycles until it is returned to
  /// the allocator — retention never outlives the demand that caused it.
  void reset();

  /// Frees every block. The arena is reusable afterwards (cold again).
  void releaseMemory();

  /// Total bytes of backing blocks currently held (reserved, not used).
  std::size_t bytesReserved() const;

  /// Bytes handed out since the last reset().
  std::size_t bytesUsed() const { return Used; }

private:
  struct Block {
    std::unique_ptr<std::byte[]> Mem;
    std::size_t Size = 0;
    std::size_t Off = 0;
  };

  void addBlock(std::size_t MinBytes);

  std::vector<Block> Blocks;
  std::size_t Cur = 0;  ///< Index of the block currently bumped.
  std::size_t Used = 0; ///< Bytes allocated since the last reset.
  /// Decaying usage watermark that sizes the retained block at reset():
  /// raised instantly to the cycle just finished, lowered by a quarter per
  /// reset while demand stays below it.
  std::size_t Watermark = 0;
};

/// A mutex-protected free list of arenas for concurrent fan-outs: each task
/// acquire()s an arena for exclusive use and returns it on handle
/// destruction. Arenas keep their watermark-sized blocks across uses, so a
/// pool serving K similar groups settles on max(live tasks) warm arenas.
class ArenaPool {
public:
  /// Exclusive-use handle; returns the arena to the pool when destroyed.
  class Handle {
  public:
    Handle(ArenaPool &P, std::unique_ptr<Arena> A)
        : Pool(&P), Owned(std::move(A)) {}
    Handle(Handle &&O) noexcept : Pool(O.Pool), Owned(std::move(O.Owned)) {
      O.Pool = nullptr;
    }
    Handle(const Handle &) = delete;
    Handle &operator=(const Handle &) = delete;
    Handle &operator=(Handle &&) = delete;
    ~Handle() {
      if (Pool && Owned)
        Pool->release(std::move(Owned));
    }
    Arena *get() { return Owned.get(); }
    Arena *operator->() { return Owned.get(); }
    Arena &operator*() { return *Owned; }

  private:
    ArenaPool *Pool;
    std::unique_ptr<Arena> Owned;
  };

  /// Borrows a reset arena (reusing a warm one when available).
  Handle acquire();

private:
  friend class Handle;
  void release(std::unique_ptr<Arena> A);

  std::mutex Mutex;
  std::vector<std::unique_ptr<Arena>> Free;
};

} // namespace support
} // namespace calibro

#endif // CALIBRO_SUPPORT_ARENA_H
