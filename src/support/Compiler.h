//===- support/Compiler.h - Compiler abstraction helpers --------*- C++ -*-===//
//
// Part of the Calibro project, a reproduction of the CGO'25 paper
// "Calibro: Compilation-Assisted Linking-Time Binary Code Outlining".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-portability helpers shared by every Calibro library.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_COMPILER_H
#define CALIBRO_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace calibro {

/// Marks a point in the program that is statically believed to be
/// unreachable. Reaching it is unconditionally a bug: the message is printed
/// and the process aborts, in all build modes.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal usage or environment error (bad input file, impossible
/// configuration) and exits. Library code uses Expected/Error instead; this
/// is reserved for tool-level code.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "calibro fatal error: %s\n", Msg);
  std::exit(1);
}

} // namespace calibro

#define CALIBRO_UNREACHABLE(msg)                                               \
  ::calibro::unreachableImpl(msg, __FILE__, __LINE__)

#endif // CALIBRO_SUPPORT_COMPILER_H
