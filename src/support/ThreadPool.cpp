//===- support/ThreadPool.cpp - Fixed-size worker thread pool ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>
#include <exception>

using namespace calibro;

std::size_t ThreadPool::effectiveThreads(std::size_t Requested) {
  std::size_t Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  if (Requested == 0 || Requested > Hw)
    return Hw;
  return Requested;
}

ThreadPool::ThreadPool(std::size_t NumThreads) {
  NumThreads = effectiveThreads(NumThreads);
  Groups.resize(1);
  Groups[0].Live = true;
  Workers.reserve(NumThreads);
  for (std::size_t I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (auto &W : Workers)
    W.join();
}

ThreadPool::GroupId ThreadPool::createGroup() {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Recycle a released slot before growing: long-running daemons create one
  // group per job, and the group table must not grow with job count.
  for (std::size_t I = 1; I < Groups.size(); ++I)
    if (!Groups[I].Live && Groups[I].Tasks.empty()) {
      Groups[I].Live = true;
      return static_cast<GroupId>(I);
    }
  Groups.push_back(Group{{}, true});
  return static_cast<GroupId>(Groups.size() - 1);
}

void ThreadPool::releaseGroup(GroupId G) {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(G != 0 && "group 0 is permanent");
  assert(G < Groups.size() && Groups[G].Live && "releasing an unknown group");
  assert(Groups[G].Tasks.empty() && "releasing a group with queued tasks");
  Groups[G].Live = false;
}

void ThreadPool::enqueueIn(GroupId G, std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(G < Groups.size() && Groups[G].Live && "enqueue to unknown group");
    Groups[G].Tasks.push_back(std::move(Task));
    ++PendingTasks;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return PendingTasks == 0 && ActiveTasks == 0; });
}

void ThreadPool::parallelForIn(GroupId G, std::size_t N,
                               const std::function<void(std::size_t)> &Fn,
                               std::size_t Grain) {
  if (N == 0)
    return;
  // Chunk the index space so tiny iterations do not drown in queue traffic:
  // one queued task per chunk, not one std::function allocation per index.
  // A few chunks per worker keep the tail balanced when iteration costs are
  // uneven; Grain puts a floor under the chunk size for cheap iterations.
  std::size_t NumChunks = numThreads() * 4;
  if (NumChunks > N)
    NumChunks = N;
  std::size_t ChunkSize = (N + NumChunks - 1) / NumChunks;
  if (Grain != 0 && ChunkSize < Grain)
    ChunkSize = Grain;

  // One worker, or everything fits in a single chunk: run inline on the
  // calling thread. Queueing through the pool would serialize the work
  // anyway and only add the enqueue/wait handshake on top.
  if (numThreads() == 1 || ChunkSize >= N) {
    for (std::size_t I = 0; I < N; ++I)
      Fn(I); // First failure propagates directly — it IS the lowest index.
    return;
  }

  // Per-call completion + exception state. Stack storage is safe: this
  // frame outlives every chunk because it blocks until Remaining hits zero,
  // and the last chunk's final touch of Sync happens under Sync.M before
  // the waiter can observe Remaining == 0 and return.
  struct Sync {
    std::mutex M;
    std::condition_variable Done;
    std::size_t Remaining = 0;
    std::exception_ptr Exc;
    std::size_t ExcIndex = ~std::size_t(0);
  } Sync;
  for (std::size_t Begin = 0; Begin < N; Begin += ChunkSize)
    ++Sync.Remaining;

  for (std::size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    std::size_t End = Begin + ChunkSize < N ? Begin + ChunkSize : N;
    enqueueIn(G, [&Fn, &Sync, Begin, End] {
      std::exception_ptr ChunkExc;
      std::size_t ChunkExcIndex = ~std::size_t(0);
      for (std::size_t I = Begin; I < End; ++I) {
        try {
          Fn(I);
        } catch (...) {
          ChunkExc = std::current_exception();
          ChunkExcIndex = I;
          break; // Abandon the rest of this chunk.
        }
      }
      std::lock_guard<std::mutex> Lock(Sync.M);
      // Record the exception thrown by the lowest index. Every chunk runs
      // to its own first failure, so the minimum failing index — and
      // therefore the propagated exception — is scheduling-independent.
      if (ChunkExc && ChunkExcIndex < Sync.ExcIndex) {
        Sync.ExcIndex = ChunkExcIndex;
        Sync.Exc = ChunkExc;
      }
      if (--Sync.Remaining == 0)
        Sync.Done.notify_all();
    });
  }

  std::unique_lock<std::mutex> Lock(Sync.M);
  Sync.Done.wait(Lock, [&Sync] { return Sync.Remaining == 0; });
  if (Sync.Exc)
    std::rethrow_exception(Sync.Exc);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || PendingTasks != 0; });
      if (PendingTasks == 0) {
        // ShuttingDown and drained: exit the worker.
        return;
      }
      // Round-robin across non-empty groups, starting AFTER the group the
      // last task came from: with J jobs holding queued chunks, successive
      // draws rotate through all J, so no group waits more than one task
      // per competitor regardless of queue depths.
      std::size_t NumGroups = Groups.size();
      for (std::size_t Step = 1; Step <= NumGroups; ++Step) {
        std::size_t Idx = (RrCursor + Step) % NumGroups;
        if (!Groups[Idx].Tasks.empty()) {
          Task = std::move(Groups[Idx].Tasks.front());
          Groups[Idx].Tasks.pop_front();
          RrCursor = Idx;
          break;
        }
      }
      --PendingTasks;
      ++ActiveTasks;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveTasks;
      if (PendingTasks == 0 && ActiveTasks == 0)
        AllDone.notify_all();
    }
  }
}
