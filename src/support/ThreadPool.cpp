//===- support/ThreadPool.cpp - Fixed-size worker thread pool ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <exception>

using namespace calibro;

std::size_t ThreadPool::effectiveThreads(std::size_t Requested) {
  std::size_t Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  if (Requested == 0 || Requested > Hw)
    return Hw;
  return Requested;
}

ThreadPool::ThreadPool(std::size_t NumThreads) {
  NumThreads = effectiveThreads(NumThreads);
  Workers.reserve(NumThreads);
  for (std::size_t I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (auto &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Queue.empty() && ActiveTasks == 0; });
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Fn,
                             std::size_t Grain) {
  if (N == 0)
    return;
  // Chunk the index space so tiny iterations do not drown in queue traffic:
  // one queued task per chunk, not one std::function allocation per index.
  // A few chunks per worker keep the tail balanced when iteration costs are
  // uneven; Grain puts a floor under the chunk size for cheap iterations.
  std::size_t NumChunks = numThreads() * 4;
  if (NumChunks > N)
    NumChunks = N;
  std::size_t ChunkSize = (N + NumChunks - 1) / NumChunks;
  if (Grain != 0 && ChunkSize < Grain)
    ChunkSize = Grain;

  // One worker, or everything fits in a single chunk: run inline on the
  // calling thread. Queueing through the pool would serialize the work
  // anyway and only add the enqueue/wait handshake on top.
  if (numThreads() == 1 || ChunkSize >= N) {
    for (std::size_t I = 0; I < N; ++I)
      Fn(I); // First failure propagates directly — it IS the lowest index.
    return;
  }

  // Exception propagation: record the exception thrown by the lowest index.
  // Every chunk runs to its own first failure, so the minimum failing index
  // — and therefore the propagated exception — is scheduling-independent.
  std::mutex ExcMutex;
  std::exception_ptr Exc;
  std::size_t ExcIndex = ~std::size_t(0);

  for (std::size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    std::size_t End = Begin + ChunkSize < N ? Begin + ChunkSize : N;
    enqueue([&Fn, &ExcMutex, &Exc, &ExcIndex, Begin, End] {
      for (std::size_t I = Begin; I < End; ++I) {
        try {
          Fn(I);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(ExcMutex);
          if (I < ExcIndex) {
            ExcIndex = I;
            Exc = std::current_exception();
          }
          break; // Abandon the rest of this chunk.
        }
      }
    });
  }
  wait();
  if (Exc)
    std::rethrow_exception(Exc);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        // ShuttingDown and drained: exit the worker.
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveTasks;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveTasks;
      if (Queue.empty() && ActiveTasks == 0)
        AllDone.notify_all();
    }
  }
}
