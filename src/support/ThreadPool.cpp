//===- support/ThreadPool.cpp - Fixed-size worker thread pool ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>

using namespace calibro;

ThreadPool::ThreadPool(std::size_t NumThreads) {
  if (NumThreads == 0) {
    NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
  }
  Workers.reserve(NumThreads);
  for (std::size_t I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (auto &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Queue.empty() && ActiveTasks == 0; });
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Fn) {
  // Chunk the index space so tiny iterations do not drown in queue traffic.
  std::size_t NumChunks = numThreads() * 4;
  if (NumChunks > N)
    NumChunks = N;
  if (NumChunks == 0)
    return;
  std::size_t ChunkSize = (N + NumChunks - 1) / NumChunks;
  for (std::size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    std::size_t End = Begin + ChunkSize < N ? Begin + ChunkSize : N;
    enqueue([&Fn, Begin, End] {
      for (std::size_t I = Begin; I < End; ++I)
        Fn(I);
    });
  }
  wait();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        // ShuttingDown and drained: exit the worker.
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveTasks;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveTasks;
      if (Queue.empty() && ActiveTasks == 0)
        AllDone.notify_all();
    }
  }
}
