//===- support/Arena.cpp - Bump allocator for detect scratch --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <cassert>

using namespace calibro;
using namespace calibro::support;

namespace {

/// First block size; doubles per spill so a cold arena reaches any
/// workload's footprint in O(log) heap calls.
constexpr std::size_t MinBlockBytes = 1u << 16;

std::size_t alignUp(std::size_t V, std::size_t Align) {
  return (V + Align - 1) & ~(Align - 1);
}

} // namespace

void Arena::addBlock(std::size_t MinBytes) {
  std::size_t Size = Blocks.empty() ? MinBlockBytes : Blocks.back().Size * 2;
  if (Size < MinBytes)
    Size = alignUp(MinBytes, MinBlockBytes);
  Block B;
  B.Mem = std::make_unique<std::byte[]>(Size);
  B.Size = Size;
  Blocks.push_back(std::move(B));
  Cur = Blocks.size() - 1;
}

void *Arena::allocate(std::size_t Bytes, std::size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "non-power-of-two align");
  if (Bytes == 0)
    Bytes = 1; // Distinct non-null result, like operator new.
  // Try the current block, then any later (larger) block left by a previous
  // cycle, then grow.
  while (Cur < Blocks.size()) {
    Block &B = Blocks[Cur];
    std::size_t Off = alignUp(B.Off, Align);
    if (Off + Bytes <= B.Size) {
      B.Off = Off + Bytes;
      Used += Bytes;
      return B.Mem.get() + Off;
    }
    ++Cur;
  }
  addBlock(Bytes + Align);
  Block &B = Blocks[Cur];
  std::size_t Off = alignUp(B.Off, Align);
  B.Off = Off + Bytes;
  Used += Bytes;
  return B.Mem.get() + Off;
}

void Arena::reset() {
  // The watermark tracks recent demand, not the lifetime maximum: it rises
  // instantly to the cycle just finished and decays by a quarter per reset
  // while demand stays below it. A memory-budgeted caller that once fed one
  // oversized group must get that block back eventually — a pinned
  // high-water block would defeat the budget for the pool's lifetime.
  Watermark = std::max(Used, Watermark - Watermark / 4);
  std::size_t Want = alignUp(Watermark + Watermark / 8 + 64, MinBlockBytes);
  // Rebuild to one Want-sized block when the previous cycle spilled into a
  // chain (so the next same-shaped cycle never spills) or when the retained
  // reserve overshoots current demand by more than 2x (so an outlier's
  // block is returned to the allocator once the watermark has decayed).
  if (Blocks.size() > 1 || bytesReserved() > 2 * Want) {
    Blocks.clear();
    addBlock(Want);
  }
  for (Block &B : Blocks)
    B.Off = 0;
  Cur = 0;
  Used = 0;
}

void Arena::releaseMemory() {
  Blocks.clear();
  Blocks.shrink_to_fit();
  Cur = 0;
  Used = 0;
  Watermark = 0;
}

std::size_t Arena::bytesReserved() const {
  std::size_t Total = 0;
  for (const Block &B : Blocks)
    Total += B.Size;
  return Total;
}

ArenaPool::Handle ArenaPool::acquire() {
  std::unique_ptr<Arena> A;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Free.empty()) {
      A = std::move(Free.back());
      Free.pop_back();
    }
  }
  if (!A)
    A = std::make_unique<Arena>();
  A->reset();
  return Handle(*this, std::move(A));
}

void ArenaPool::release(std::unique_ptr<Arena> A) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Free.push_back(std::move(A));
}
