//===- support/BinaryStream.h - Little-endian byte streams ------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level writer/reader used by the OAT file format: little-endian
/// fixed-width integers, LEB128 varints (ART compresses its StackMaps and
/// method metadata the same way), and length-prefixed strings. The reader
/// reports truncation as recoverable errors so a corrupt file can never
/// crash the loader.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUPPORT_BINARYSTREAM_H
#define CALIBRO_SUPPORT_BINARYSTREAM_H

#include "support/Error.h"

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace calibro {

/// Appends little-endian data to a growing byte buffer.
class ByteWriter {
public:
  std::vector<uint8_t> take() { return std::move(Buf); }
  std::size_t size() const { return Buf.size(); }

  /// Read-only view of the bytes written so far (invalidated by further
  /// writes and by take()).
  const uint8_t *data() const { return Buf.data(); }

  void u8(uint8_t V) { Buf.push_back(V); }

  void u16(uint16_t V) { raw(&V, 2); }
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }

  /// Unsigned LEB128.
  void uleb(uint64_t V) {
    do {
      uint8_t Byte = V & 0x7f;
      V >>= 7;
      if (V)
        Byte |= 0x80;
      Buf.push_back(Byte);
    } while (V);
  }

  /// Length-prefixed UTF-8 string.
  void str(const std::string &S) {
    uleb(S.size());
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  /// Raw bytes.
  void bytes(const void *P, std::size_t N) { raw(P, N); }

  /// Zero padding up to the next multiple of \p Align.
  void align(std::size_t Align) {
    while (Buf.size() % Align)
      Buf.push_back(0);
  }

  /// Overwrites 4 bytes at \p Off (for back-patching headers).
  void patch32(std::size_t Off, uint32_t V) {
    std::memcpy(Buf.data() + Off, &V, 4);
  }

private:
  void raw(const void *P, std::size_t N) {
    const auto *B = static_cast<const uint8_t *>(P);
    Buf.insert(Buf.end(), B, B + N);
  }

  std::vector<uint8_t> Buf;
};

/// Reads little-endian data from a byte span with bounds checking.
class ByteReader {
public:
  explicit ByteReader(std::span<const uint8_t> Data) : Data(Data) {}

  std::size_t offset() const { return Off; }
  std::size_t remaining() const { return Data.size() - Off; }

  Expected<uint8_t> u8() {
    if (Off + 1 > Data.size())
      return makeError("byte stream truncated (u8)");
    return Data[Off++];
  }

  Expected<uint16_t> u16() { return fixed<uint16_t>(); }
  Expected<uint32_t> u32() { return fixed<uint32_t>(); }
  Expected<uint64_t> u64() { return fixed<uint64_t>(); }

  Expected<uint64_t> uleb() {
    uint64_t V = 0;
    unsigned Shift = 0;
    for (;;) {
      if (Off >= Data.size())
        return makeError("byte stream truncated (uleb)");
      if (Shift >= 64)
        return makeError("uleb128 value overflows 64 bits");
      uint8_t Byte = Data[Off++];
      V |= uint64_t(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return V;
      Shift += 7;
    }
  }

  Expected<std::string> str() {
    auto N = uleb();
    if (!N)
      return N.takeError();
    if (Off + *N > Data.size())
      return makeError("byte stream truncated (string)");
    std::string S(reinterpret_cast<const char *>(Data.data() + Off),
                  static_cast<std::size_t>(*N));
    Off += static_cast<std::size_t>(*N);
    return S;
  }

  Error bytes(void *P, std::size_t N) {
    if (Off + N > Data.size())
      return makeError("byte stream truncated (bytes)");
    std::memcpy(P, Data.data() + Off, N);
    Off += N;
    return Error::success();
  }

  Error seek(std::size_t NewOff) {
    if (NewOff > Data.size())
      return makeError("seek past end of stream");
    Off = NewOff;
    return Error::success();
  }

private:
  template <typename T> Expected<T> fixed() {
    if (Off + sizeof(T) > Data.size())
      return makeError("byte stream truncated (fixed)");
    T V;
    std::memcpy(&V, Data.data() + Off, sizeof(T));
    Off += sizeof(T);
    return V;
  }

  std::span<const uint8_t> Data;
  std::size_t Off = 0;
};

} // namespace calibro

#endif // CALIBRO_SUPPORT_BINARYSTREAM_H
