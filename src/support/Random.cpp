//===- support/Random.cpp - Deterministic random number utilities --------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace calibro;

ZipfSampler::ZipfSampler(std::size_t N, double S) {
  assert(N > 0 && "Zipf over an empty support");
  Cdf.resize(N);
  double Sum = 0.0;
  for (std::size_t I = 0; I < N; ++I) {
    Sum += 1.0 / std::pow(static_cast<double>(I + 1), S);
    Cdf[I] = Sum;
  }
  for (auto &V : Cdf)
    V /= Sum;
}

std::size_t ZipfSampler::sample(Rng &R) const {
  double U = R.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return static_cast<std::size_t>(It - Cdf.begin());
}
