//===- dex/Dex.h - DEX-like bytecode model ----------------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A register-based bytecode in the mold of Android's DEX. It is the input
/// format of the dex2oat-style compiler pipeline: an application package
/// (apk) holds several dex files, each dex file holds methods, and each
/// method is a sequence of register-based instructions.
///
/// The instruction set deliberately covers the op classes that drive the
/// binary patterns the paper analyzes (Observation 3): virtual/static Java
/// calls (the ArtMethod calling pattern), allocations and throws (the ART
/// native entrypoint pattern and slow paths), arithmetic with implicit
/// division-by-zero checks, field access with implicit null checks, control
/// flow including dense switches (which lower to indirect jumps and make
/// their methods non-outlinable), and native (JNI) methods.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_DEX_DEX_H
#define CALIBRO_DEX_DEX_H

#include "support/Error.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace calibro {
namespace dex {

/// Register designator meaning "no register" (e.g. an ignored call result).
inline constexpr uint16_t NoReg = 0xffff;

/// Bytecode operations.
enum class Op : uint8_t {
  Nop,

  // Data movement.
  ConstInt, ///< vA = Imm (any 64-bit value; wide values go to literal pools)
  Move,     ///< vA = vB

  // Three-register arithmetic: vA = vB <op> vC.
  Add,
  Sub,
  Mul,
  Div, ///< Implicit divide-by-zero check with a throwing slow path.
  And,
  Or,
  Xor,
  Shl,
  Shr,

  AddImm, ///< vA = vB + Imm

  // Conditional branches: compare vA with vB (or zero) and jump to Target.
  IfEq,
  IfNe,
  IfLt,
  IfGe,
  IfGt,
  IfLe,
  IfEqz,
  IfNez,
  IfLtz,
  IfGez,

  Goto,   ///< Unconditional jump to Target.
  Switch, ///< Dense switch on vA; Imm indexes the method's switch tables.

  Return,     ///< return vA
  ReturnVoid, ///< return

  InvokeStatic,  ///< Call method Idx with Args[0..NumArgs); result in vA.
  InvokeVirtual, ///< As InvokeStatic; Args[0] is the null-checked receiver.

  NewInstance, ///< vA = allocate class Idx (ART entrypoint call).
  Throw,       ///< Throw the exception object in vA (throwing slow path).

  IGet, ///< vA = *(vB + Imm), with implicit null check on vB.
  IPut, ///< *(vB + Imm) = vA, with implicit null check on vB.
};

/// Returns the mnemonic of \p O, for diagnostics and dumps.
const char *opName(Op O);

/// True when \p O never falls through to the next instruction.
bool endsBlock(Op O);

/// One bytecode instruction. Field use depends on the op; unused fields
/// are left zero.
struct Insn {
  Op Opcode = Op::Nop;
  uint16_t A = 0; ///< Destination register (or compared register for ifs).
  uint16_t B = 0; ///< First source register.
  uint16_t C = 0; ///< Second source register.
  int64_t Imm = 0; ///< Immediate / field offset / switch table index.
  uint32_t Target = 0; ///< Branch target (instruction index).
  uint32_t Idx = 0;    ///< Method or class index for invokes / allocation.
  std::array<uint16_t, 4> Args = {NoReg, NoReg, NoReg, NoReg};
  uint8_t NumArgs = 0;
};

/// One method: a register file size, an argument count, and code.
struct Method {
  uint32_t Idx = 0;         ///< Global method index within the application.
  std::string Name;
  uint16_t NumRegs = 0;     ///< Size of the virtual register file.
  uint16_t NumArgs = 0;     ///< Arguments arrive in v0..v(NumArgs-1).
  bool ReturnsValue = false;
  bool IsNative = false;    ///< JNI method: compiled as a trampoline only.
  std::vector<Insn> Code;
  std::vector<std::vector<uint32_t>> SwitchTables;
};

/// One dex file: a list of methods.
struct File {
  std::vector<Method> Methods;
};

/// One edge of the application's class hierarchy: \p Class directly
/// extends \p Super. Classes are named as they appear in method names
/// ("Lapp/Entry0;"). Classes absent from the list have no subtypes.
struct TypeLink {
  std::string Class;
  std::string Super;
};

/// An application package: what dex2oat consumes (paper Fig. 5's "apk").
struct App {
  std::string Name;
  std::vector<File> Files;

  /// Global method indices reachable from outside the app (manifest
  /// components, exported JNI, reflection roots). An empty list means the
  /// world is open: every method must be presumed reachable and the
  /// closed-world reachability GC stays disabled.
  std::vector<uint32_t> Entrypoints;

  /// Direct-subclass edges for conservative virtual-dispatch resolution.
  std::vector<TypeLink> Hierarchy;

  /// Total method count across all dex files.
  std::size_t numMethods() const {
    std::size_t N = 0;
    for (const auto &F : Files)
      N += F.Methods.size();
    return N;
  }

  /// Iterates all methods in file order. \p Fn takes (const Method &).
  template <typename FnT> void forEachMethod(FnT &&Fn) const {
    for (const auto &F : Files)
      for (const auto &M : F.Methods)
        Fn(M);
  }

  /// Looks up a method by its global index; nullptr when absent.
  const Method *findMethod(uint32_t Idx) const;
};

/// Structurally verifies \p M against the app-wide method count: register
/// bounds, branch targets, switch tables, argument sanity, and the
/// requirement that control cannot fall off the end of the method.
Error verifyMethod(const Method &M, std::size_t TotalMethods);

/// Verifies every method of \p A and the global-index numbering.
Error verifyApp(const App &A);

} // namespace dex
} // namespace calibro

#endif // CALIBRO_DEX_DEX_H
