//===- dex/Dex.cpp - DEX-like bytecode model -------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "dex/Dex.h"

#include "support/Compiler.h"

#include <cstdio>

using namespace calibro;
using namespace calibro::dex;

const char *dex::opName(Op O) {
  switch (O) {
  case Op::Nop:
    return "nop";
  case Op::ConstInt:
    return "const";
  case Op::Move:
    return "move";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::Shr:
    return "shr";
  case Op::AddImm:
    return "add-imm";
  case Op::IfEq:
    return "if-eq";
  case Op::IfNe:
    return "if-ne";
  case Op::IfLt:
    return "if-lt";
  case Op::IfGe:
    return "if-ge";
  case Op::IfGt:
    return "if-gt";
  case Op::IfLe:
    return "if-le";
  case Op::IfEqz:
    return "if-eqz";
  case Op::IfNez:
    return "if-nez";
  case Op::IfLtz:
    return "if-ltz";
  case Op::IfGez:
    return "if-gez";
  case Op::Goto:
    return "goto";
  case Op::Switch:
    return "switch";
  case Op::Return:
    return "return";
  case Op::ReturnVoid:
    return "return-void";
  case Op::InvokeStatic:
    return "invoke-static";
  case Op::InvokeVirtual:
    return "invoke-virtual";
  case Op::NewInstance:
    return "new-instance";
  case Op::Throw:
    return "throw";
  case Op::IGet:
    return "iget";
  case Op::IPut:
    return "iput";
  }
  CALIBRO_UNREACHABLE("unknown dex op");
}

bool dex::endsBlock(Op O) {
  switch (O) {
  case Op::Goto:
  case Op::Switch:
  case Op::Return:
  case Op::ReturnVoid:
  case Op::Throw:
    return true;
  default:
    return false;
  }
}

const Method *App::findMethod(uint32_t Idx) const {
  for (const auto &F : Files)
    for (const auto &M : F.Methods)
      if (M.Idx == Idx)
        return &M;
  return nullptr;
}

namespace {

Error fail(const Method &M, std::size_t Pc, const char *Msg) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "method '%s' (idx %u) at pc %zu: %s",
                M.Name.c_str(), M.Idx, Pc, Msg);
  return makeError(Buf);
}

bool regOk(uint16_t R, const Method &M) { return R < M.NumRegs; }

} // namespace

Error dex::verifyMethod(const Method &M, std::size_t TotalMethods) {
  if (M.IsNative) {
    if (!M.Code.empty())
      return fail(M, 0, "native method must have no bytecode");
    return Error::success();
  }
  if (M.Code.empty())
    return fail(M, 0, "non-native method has no bytecode");
  if (M.NumArgs > M.NumRegs)
    return fail(M, 0, "more arguments than registers");
  if (M.NumRegs > 64)
    return fail(M, 0, "register file larger than 64 registers");

  std::size_t N = M.Code.size();
  for (std::size_t Pc = 0; Pc < N; ++Pc) {
    const Insn &I = M.Code[Pc];
    switch (I.Opcode) {
    case Op::Nop:
      break;

    case Op::ConstInt:
      if (!regOk(I.A, M))
        return fail(M, Pc, "const: destination out of range");
      break;

    case Op::Move:
      if (!regOk(I.A, M) || !regOk(I.B, M))
        return fail(M, Pc, "move: register out of range");
      break;

    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Shl:
    case Op::Shr:
      if (!regOk(I.A, M) || !regOk(I.B, M) || !regOk(I.C, M))
        return fail(M, Pc, "binop: register out of range");
      break;

    case Op::AddImm:
      if (!regOk(I.A, M) || !regOk(I.B, M))
        return fail(M, Pc, "add-imm: register out of range");
      break;

    case Op::IfEq:
    case Op::IfNe:
    case Op::IfLt:
    case Op::IfGe:
    case Op::IfGt:
    case Op::IfLe:
      if (!regOk(I.A, M) || !regOk(I.B, M))
        return fail(M, Pc, "if: register out of range");
      if (I.Target >= N)
        return fail(M, Pc, "if: branch target out of range");
      if (Pc + 1 >= N)
        return fail(M, Pc, "if: conditional branch cannot end the method");
      break;

    case Op::IfEqz:
    case Op::IfNez:
    case Op::IfLtz:
    case Op::IfGez:
      if (!regOk(I.A, M))
        return fail(M, Pc, "ifz: register out of range");
      if (I.Target >= N)
        return fail(M, Pc, "ifz: branch target out of range");
      if (Pc + 1 >= N)
        return fail(M, Pc, "ifz: conditional branch cannot end the method");
      break;

    case Op::Goto:
      if (I.Target >= N)
        return fail(M, Pc, "goto: branch target out of range");
      break;

    case Op::Switch: {
      if (!regOk(I.A, M))
        return fail(M, Pc, "switch: register out of range");
      if (I.Imm < 0 ||
          static_cast<std::size_t>(I.Imm) >= M.SwitchTables.size())
        return fail(M, Pc, "switch: table index out of range");
      const auto &Table = M.SwitchTables[static_cast<std::size_t>(I.Imm)];
      if (Table.empty())
        return fail(M, Pc, "switch: empty table");
      for (uint32_t T : Table)
        if (T >= N)
          return fail(M, Pc, "switch: case target out of range");
      if (Pc + 1 >= N)
        return fail(M, Pc, "switch needs a fallthrough default case");
      break;
    }

    case Op::Return:
      if (!regOk(I.A, M))
        return fail(M, Pc, "return: register out of range");
      if (!M.ReturnsValue)
        return fail(M, Pc, "return with value in a void method");
      break;

    case Op::ReturnVoid:
      if (M.ReturnsValue)
        return fail(M, Pc, "return-void in a value-returning method");
      break;

    case Op::InvokeStatic:
    case Op::InvokeVirtual:
      if (I.Idx >= TotalMethods)
        return fail(M, Pc, "invoke: callee index out of range");
      if (I.NumArgs > 4)
        return fail(M, Pc, "invoke: too many arguments");
      if (I.Opcode == Op::InvokeVirtual && I.NumArgs == 0)
        return fail(M, Pc, "invoke-virtual: missing receiver");
      for (uint8_t K = 0; K < I.NumArgs; ++K)
        if (!regOk(I.Args[K], M))
          return fail(M, Pc, "invoke: argument register out of range");
      if (I.A != NoReg && !regOk(I.A, M))
        return fail(M, Pc, "invoke: result register out of range");
      break;

    case Op::NewInstance:
      if (!regOk(I.A, M))
        return fail(M, Pc, "new-instance: destination out of range");
      break;

    case Op::Throw:
      if (!regOk(I.A, M))
        return fail(M, Pc, "throw: register out of range");
      break;

    case Op::IGet:
    case Op::IPut:
      if (!regOk(I.A, M) || !regOk(I.B, M))
        return fail(M, Pc, "field access: register out of range");
      if (I.Imm < 0 || I.Imm > 32760 || (I.Imm % 8) != 0)
        return fail(M, Pc, "field access: bad field offset");
      break;
    }
  }

  // Control must not fall off the end of the method.
  if (!endsBlock(M.Code.back().Opcode))
    return fail(M, N - 1, "method does not end with a terminating op");
  return Error::success();
}

Error dex::verifyApp(const App &A) {
  std::size_t Total = A.numMethods();
  std::vector<bool> Seen(Total, false);
  for (const auto &F : A.Files) {
    for (const auto &M : F.Methods) {
      if (M.Idx >= Total)
        return makeError("method '" + M.Name + "': global index out of range");
      if (Seen[M.Idx])
        return makeError("method '" + M.Name + "': duplicate global index");
      Seen[M.Idx] = true;
      if (auto E = verifyMethod(M, Total))
        return E;
    }
  }
  for (uint32_t E : A.Entrypoints)
    if (E >= Total)
      return makeError("entrypoint index " + std::to_string(E) +
                       " out of range");
  return Error::success();
}
