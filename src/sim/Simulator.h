//===- sim/Simulator.h - AArch64 interpreter for OAT images -----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes linked OAT images: this repo's stand-in for the Pixel 7 the
/// paper runs on. The simulator provides:
///
///  * Architectural execution of the AArch64 subset (registers, NZCV,
///    memory), with the ART runtime contract: x19 points at the thread
///    record, the runtime image holds the method table and ArtMethod
///    objects, and entrypoint addresses are intercepted and serviced by
///    C++ hooks (allocation, throws, JNI transitions).
///  * A cycle model with an I-cache (Table 7's CPU-cycle metric).
///  * A deterministic architectural trace hash (runtime events + heap
///    stores + return value), which is how tests prove that an outlined
///    build is behaviour-identical to the baseline.
///  * Safepoint checking: at every allocation the caller's PC must have a
///    StackMap entry — the §3.5 consistency obligation, enforced at
///    runtime.
///  * Per-method cycle attribution (the simpleperf substitute, Fig. 6) and
///    touched-code-page accounting (Table 5's memory metric).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SIM_SIMULATOR_H
#define CALIBRO_SIM_SIMULATOR_H

#include "aarch64/Insn.h"
#include "oat/OatFile.h"
#include "profile/Profile.h"
#include "sim/CycleModel.h"
#include "support/Error.h"

#include <cstdio>
#include <optional>
#include <span>
#include <unordered_set>

namespace calibro {
namespace sim {

/// How a call into the image ended.
enum class Outcome : uint8_t {
  Ok,
  NullPointerException,
  DivZeroException,
  StackOverflow,
  Exception, ///< Explicit `throw` delivered.
};

/// Returns a printable name for \p O.
const char *outcomeName(Outcome O);

/// Result of one call into the image.
struct RunResult {
  Outcome What = Outcome::Ok;
  int64_t ReturnValue = 0;
  uint64_t Insns = 0;
  uint64_t Cycles = 0;
  uint64_t Calls = 0;        ///< bl/blr executed.
  uint64_t ICacheMisses = 0;
  uint64_t TraceHash = 0;    ///< Architectural effect digest.
};

/// Simulator options.
struct SimOptions {
  uint64_t MaxInsns = 200'000'000; ///< Runaway guard per call().
  bool CheckSafepoints = true;     ///< Enforce StackMap presence at allocs.
  bool CollectProfile = false;     ///< Attribute cycles per method.
  /// log2 of the residency granularity for touched-code accounting. 12
  /// (4 KiB OS pages) is physical reality; the Table 5 memory model uses a
  /// smaller granularity because the simulated apps are ~1000x smaller
  /// than the commercial OAT files whose page-level density the paper
  /// measures.
  unsigned PageShift = 12;
  /// When set, every executed instruction is disassembled to this stream
  /// (debugging aid; extremely verbose).
  std::FILE *TraceTo = nullptr;
  CycleConfig Cycles;
};

/// The simulated address space layout.
namespace layout {
inline constexpr uint64_t ImageBase = 0x20000000;    ///< Runtime image.
inline constexpr uint64_t HeapBase = 0x30000000;
inline constexpr uint64_t StackBase = 0x40000000;
inline constexpr uint64_t StackSize = 1u << 20;      ///< 1 MiB.
inline constexpr uint64_t EntrypointBase = 0x60000000;
inline constexpr uint64_t EntrypointStride = 16;
inline constexpr uint64_t ExitMagic = 0x7f000000;    ///< Top-level return.
} // namespace layout

/// One simulator instance bound to one OAT image.
///
/// Heap state and page/profile statistics persist across call()s (an app
/// "session"); reset() starts a fresh session.
class Simulator {
public:
  Simulator(const oat::OatFile &Oat, SimOptions Opts);

  /// Calls method \p MethodIdx with up to 4 integer arguments. Returns the
  /// run result, or an Error on a simulator fault (unmapped access, missing
  /// safepoint, undecodable instruction — all invariant violations, never
  /// legitimate program behaviour).
  Expected<RunResult> call(uint32_t MethodIdx, std::span<const int64_t> Args);

  /// Clears heap, statistics, profile and cache state.
  void reset();

  /// Per-method cycle attribution (requires CollectProfile).
  const profile::Profile &profileData() const { return Prof; }

  /// Distinct .text pages (of 2^PageShift bytes) fetched since reset().
  std::size_t touchedTextPages() const { return TouchedPages.size(); }

  /// Resident code bytes: touched pages times the page size.
  uint64_t touchedTextBytes() const {
    return uint64_t(TouchedPages.size()) << Opts.PageShift;
  }

  /// Total heap bytes allocated since reset().
  uint64_t heapBytesAllocated() const { return HeapTop; }

  /// Dynamic entry count per outlined function (indexed like
  /// OatFile::Outlined). Quantifies the runtime tax of each outlining
  /// decision; accumulated since reset().
  const std::vector<uint64_t> &outlinedEntryCounts() const {
    return OutlinedEntries;
  }

private:
  struct Flags {
    bool N = false, Z = false, C = false, V = false;
  };

  Expected<RunResult> runLoop(RunResult &R);
  Error handleEntrypoint(uint64_t Pc, RunResult &R, bool &Halt);

  // Memory access. Size is 1, 4 or 8.
  Expected<uint64_t> load(uint64_t Addr, unsigned Size);
  Error store(uint64_t Addr, unsigned Size, uint64_t Value);

  uint64_t readGp(uint8_t R) const { return R == 31 ? 0 : X[R]; }
  uint64_t readGpOrSp(uint8_t R) const { return R == 31 ? Sp : X[R]; }
  void writeGp(uint8_t R, uint64_t V) {
    if (R != 31)
      X[R] = V;
  }
  void writeGpOrSp(uint8_t R, uint64_t V) {
    if (R == 31)
      Sp = V;
    else
      X[R] = V;
  }

  bool condHolds(a64::Cond CC) const;
  void setAddSubFlags(uint64_t A, uint64_t B, bool IsSub, bool Is64);

  void traceEvent(uint64_t Kind, uint64_t Value, RunResult &R);

  const oat::OatFile &Oat;
  SimOptions Opts;

  // Pre-decoded text and word->method mapping.
  std::vector<std::optional<a64::Insn>> Decoded;
  std::vector<int32_t> MethodAt; ///< Method table index per text word; -1.
  std::vector<uint8_t> TextBytes;

  // Runtime image (thread record, method table, ArtMethod objects).
  std::vector<uint8_t> Image;
  std::vector<uint8_t> Heap;
  std::vector<uint8_t> Stack;
  uint64_t HeapTop = 0;

  // Architectural state.
  uint64_t X[31] = {};
  uint64_t Sp = 0;
  uint64_t Pc = 0;
  Flags Nzcv;

  ICache IC;
  profile::Profile Prof;
  std::unordered_set<uint64_t> TouchedPages;
  std::vector<int32_t> OutlinedEntryAt; ///< Per text word: outlined row or -1.
  std::vector<uint64_t> OutlinedEntries;
};

} // namespace sim
} // namespace calibro

#endif // CALIBRO_SIM_SIMULATOR_H
