//===- sim/Simulator.cpp - AArch64 interpreter for OAT images -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "aarch64/Decoder.h"
#include "aarch64/Disasm.h"
#include "codegen/ArtAbi.h"
#include "support/Compiler.h"
#include "support/MathExtras.h"

#include <cstring>

using namespace calibro;
using namespace calibro::sim;
using namespace calibro::a64;

namespace {

/// Runtime image internal layout (relative to layout::ImageBase).
constexpr uint64_t ThreadOff = 0;
constexpr uint64_t MethodTableOff = 0x1000;

constexpr uint64_t GuardSize = art::StackOverflowReservedBytes;

/// Extra cycles charged for servicing runtime entrypoints.
constexpr uint64_t AllocServiceCycles = 150;
constexpr uint64_t JniServiceCycles = 100;

uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t truncW(uint64_t V, bool Is64) { return Is64 ? V : (V & 0xffffffffu); }

} // namespace

const char *sim::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Ok:
    return "ok";
  case Outcome::NullPointerException:
    return "null-pointer-exception";
  case Outcome::DivZeroException:
    return "div-zero-exception";
  case Outcome::StackOverflow:
    return "stack-overflow";
  case Outcome::Exception:
    return "exception";
  }
  CALIBRO_UNREACHABLE("bad outcome");
}

Simulator::Simulator(const oat::OatFile &Oat, SimOptions Opts)
    : Oat(Oat), Opts(Opts) {
  // Pre-decode the text image once; embedded data simply stays undecodable
  // and must never be fetched.
  Decoded.resize(Oat.Text.size());
  for (std::size_t I = 0; I < Oat.Text.size(); ++I)
    Decoded[I] = decode(Oat.Text[I]);

  MethodAt.assign(Oat.Text.size(), -1);
  for (std::size_t M = 0; M < Oat.Methods.size(); ++M) {
    const auto &E = Oat.Methods[M];
    for (uint32_t W = E.CodeOffset / 4; W < (E.CodeOffset + E.CodeSize) / 4;
         ++W)
      // First writer wins: merge aliases share their canonical's range and
      // are appended after it, so the canonical keeps the attribution.
      if (MethodAt[W] < 0)
        MethodAt[W] = static_cast<int32_t>(M);
  }

  TextBytes.resize(Oat.Text.size() * 4);
  std::memcpy(TextBytes.data(), Oat.Text.data(), TextBytes.size());

  // Build the runtime image: thread record, method table, ArtMethods.
  // Table slots are indexed by MethodIdx, which is sparse once the
  // reachability GC drops dead methods — size by the largest index, not
  // the entry count.
  uint64_t NumMethods = 0;
  for (const auto &M : Oat.Methods)
    NumMethods = std::max<uint64_t>(NumMethods, uint64_t(M.MethodIdx) + 1);
  uint64_t ArtMethodsOff = alignTo(MethodTableOff + 8 * NumMethods, 4096);
  Image.assign(ArtMethodsOff + art::ArtMethodSize * NumMethods, 0);

  auto put64 = [&](uint64_t Off, uint64_t V) {
    std::memcpy(Image.data() + Off, &V, 8);
  };
  put64(ThreadOff + art::ThreadMethodTableOffset,
        layout::ImageBase + MethodTableOff);
  for (uint32_t E = 0; E < art::NumEntrypoints; ++E)
    put64(ThreadOff + art::entrypointOffset(static_cast<art::Entrypoint>(E)),
          layout::EntrypointBase + layout::EntrypointStride * E);
  for (const auto &M : Oat.Methods) {
    uint64_t Am = ArtMethodsOff + uint64_t(art::ArtMethodSize) * M.MethodIdx;
    put64(MethodTableOff + 8 * uint64_t(M.MethodIdx),
          layout::ImageBase + Am);
    put64(Am + 0, M.MethodIdx);
    put64(Am + art::ArtMethodEntryPointOffset, Oat.methodAddress(M));
  }

  OutlinedEntryAt.assign(Oat.Text.size(), -1);
  for (std::size_t F = 0; F < Oat.Outlined.size(); ++F)
    OutlinedEntryAt[Oat.Outlined[F].CodeOffset / 4] = static_cast<int32_t>(F);

  Stack.assign(layout::StackSize, 0);
  reset();
}

void Simulator::reset() {
  Heap.clear();
  HeapTop = 0;
  IC.reset();
  Prof = profile::Profile();
  TouchedPages.clear();
  OutlinedEntries.assign(Oat.Outlined.size(), 0);
}

namespace {

std::string faultMsg(const char *What, uint64_t Addr, uint64_t Pc) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%s at address 0x%llx (pc 0x%llx)", What,
                static_cast<unsigned long long>(Addr),
                static_cast<unsigned long long>(Pc));
  return Buf;
}

} // namespace

Expected<uint64_t> Simulator::load(uint64_t Addr, unsigned Size) {
  if (Addr % Size != 0)
    return makeError(faultMsg("unaligned load", Addr, Pc));
  const uint8_t *P = nullptr;
  uint64_t TextBase = Oat.BaseAddress;
  if (Addr >= TextBase && Addr + Size <= TextBase + TextBytes.size())
    P = TextBytes.data() + (Addr - TextBase);
  else if (Addr >= layout::ImageBase &&
           Addr + Size <= layout::ImageBase + Image.size())
    P = Image.data() + (Addr - layout::ImageBase);
  else if (Addr >= layout::HeapBase &&
           Addr + Size <= layout::HeapBase + Heap.size())
    P = Heap.data() + (Addr - layout::HeapBase);
  else if (Addr >= layout::StackBase &&
           Addr + Size <= layout::StackBase + Stack.size())
    P = Stack.data() + (Addr - layout::StackBase);
  else
    return makeError(faultMsg("unmapped load", Addr, Pc));
  uint64_t V = 0;
  std::memcpy(&V, P, Size);
  return V;
}

Error Simulator::store(uint64_t Addr, unsigned Size, uint64_t Value) {
  if (Addr % Size != 0)
    return makeError(faultMsg("unaligned store", Addr, Pc));
  uint8_t *P = nullptr;
  if (Addr >= layout::HeapBase && Addr + Size <= layout::HeapBase + Heap.size())
    P = Heap.data() + (Addr - layout::HeapBase);
  else if (Addr >= layout::StackBase &&
           Addr + Size <= layout::StackBase + Stack.size())
    P = Stack.data() + (Addr - layout::StackBase);
  else
    return makeError(faultMsg("unmapped or read-only store", Addr, Pc));
  std::memcpy(P, &Value, Size);
  return Error::success();
}

bool Simulator::condHolds(Cond CC) const {
  switch (CC) {
  case Cond::EQ:
    return Nzcv.Z;
  case Cond::NE:
    return !Nzcv.Z;
  case Cond::HS:
    return Nzcv.C;
  case Cond::LO:
    return !Nzcv.C;
  case Cond::MI:
    return Nzcv.N;
  case Cond::PL:
    return !Nzcv.N;
  case Cond::VS:
    return Nzcv.V;
  case Cond::VC:
    return !Nzcv.V;
  case Cond::HI:
    return Nzcv.C && !Nzcv.Z;
  case Cond::LS:
    return !(Nzcv.C && !Nzcv.Z);
  case Cond::GE:
    return Nzcv.N == Nzcv.V;
  case Cond::LT:
    return Nzcv.N != Nzcv.V;
  case Cond::GT:
    return !Nzcv.Z && Nzcv.N == Nzcv.V;
  case Cond::LE:
    return Nzcv.Z || Nzcv.N != Nzcv.V;
  case Cond::AL:
    return true;
  }
  CALIBRO_UNREACHABLE("bad condition code");
}

void Simulator::setAddSubFlags(uint64_t A, uint64_t B, bool IsSub, bool Is64) {
  uint64_t Bx = IsSub ? ~B : B;
  uint64_t CarryIn = IsSub ? 1 : 0;
  if (Is64) {
    unsigned __int128 Wide =
        static_cast<unsigned __int128>(A) + Bx + CarryIn;
    uint64_t Res = static_cast<uint64_t>(Wide);
    Nzcv.N = (Res >> 63) & 1;
    Nzcv.Z = Res == 0;
    Nzcv.C = static_cast<uint64_t>(Wide >> 64) != 0;
    Nzcv.V = ((~(A ^ Bx) & (A ^ Res)) >> 63) & 1;
  } else {
    A &= 0xffffffffu;
    Bx &= 0xffffffffu;
    uint64_t Wide = A + Bx + CarryIn;
    uint32_t Res = static_cast<uint32_t>(Wide);
    Nzcv.N = (Res >> 31) & 1;
    Nzcv.Z = Res == 0;
    Nzcv.C = (Wide >> 32) != 0;
    Nzcv.V = ((~(A ^ Bx) & (A ^ Res)) >> 31) & 1;
  }
}

void Simulator::traceEvent(uint64_t Kind, uint64_t Value, RunResult &R) {
  R.TraceHash = mix64(R.TraceHash ^ mix64(Kind * 0x9e3779b97f4a7c15ULL + Value));
}

Error Simulator::handleEntrypoint(uint64_t EpPc, RunResult &R, bool &Halt) {
  uint64_t Id = (EpPc - layout::EntrypointBase) / layout::EntrypointStride;
  if (Id >= art::NumEntrypoints)
    return makeError("jump to an invalid entrypoint address");
  switch (static_cast<art::Entrypoint>(Id)) {
  case art::Entrypoint::AllocObject: {
    if (Opts.CheckSafepoints) {
      uint64_t Ret = X[30];
      uint64_t TextBase = Oat.BaseAddress;
      if (Ret < TextBase || Ret >= TextBase + TextBytes.size())
        return makeError("allocation with return address outside .text");
      int32_t M = MethodAt[(Ret - TextBase) / 4];
      if (M < 0)
        return makeError("allocation with return address outside any method");
      const auto &E = Oat.Methods[M];
      uint32_t PcOff =
          static_cast<uint32_t>(Ret - TextBase) - E.CodeOffset;
      if (!oat::OatFile::hasSafepoint(E, PcOff))
        return makeError("missing StackMap safepoint at allocation in " +
                         E.Name);
    }
    if (HeapTop + 64 > (uint64_t(1) << 28))
      return makeError("simulated heap exhausted");
    uint64_t Obj = layout::HeapBase + HeapTop;
    HeapTop += 64;
    Heap.resize(HeapTop, 0);
    // Store the class index in the object header.
    std::memcpy(Heap.data() + (Obj - layout::HeapBase), &X[1], 8);
    X[0] = Obj;
    traceEvent(1, X[1], R);
    R.Cycles += AllocServiceCycles;
    Pc = X[30];
    return Error::success();
  }
  case art::Entrypoint::ThrowNullPointer:
    R.What = Outcome::NullPointerException;
    Halt = true;
    return Error::success();
  case art::Entrypoint::ThrowDivZero:
    R.What = Outcome::DivZeroException;
    Halt = true;
    return Error::success();
  case art::Entrypoint::ThrowStackOverflow:
    R.What = Outcome::StackOverflow;
    Halt = true;
    return Error::success();
  case art::Entrypoint::DeliverException:
    traceEvent(4, X[1], R);
    R.What = Outcome::Exception;
    Halt = true;
    return Error::success();
  case art::Entrypoint::JniStart:
    traceEvent(2, 0, R);
    R.Cycles += JniServiceCycles;
    Pc = X[30];
    return Error::success();
  case art::Entrypoint::JniEnd:
    X[0] = mix64(X[1] ^ 0x6a09e667f3bcc909ULL);
    traceEvent(3, X[1], R);
    R.Cycles += JniServiceCycles;
    Pc = X[30];
    return Error::success();
  case art::Entrypoint::Count:
    break;
  }
  return makeError("unhandled entrypoint");
}

Expected<RunResult> Simulator::call(uint32_t MethodIdx,
                                    std::span<const int64_t> Args) {
  const oat::OatMethodEntry *M = Oat.findMethod(MethodIdx);
  if (!M)
    return makeError("call: unknown method index");
  if (Args.size() > 4)
    return makeError("call: more than 4 arguments");

  for (auto &R : X)
    R = 0;
  Nzcv = Flags();
  Sp = layout::StackBase + layout::StackSize;
  X[a64::ThreadReg] = layout::ImageBase;
  // x0 = the callee's ArtMethod*, as the ART calling convention requires.
  uint64_t TableAddr = layout::ImageBase + MethodTableOff + 8 * uint64_t(MethodIdx);
  uint64_t Am = 0;
  std::memcpy(&Am, Image.data() + (TableAddr - layout::ImageBase), 8);
  X[0] = Am;
  for (std::size_t A = 0; A < Args.size(); ++A)
    X[1 + A] = static_cast<uint64_t>(Args[A]);
  X[a64::LR] = layout::ExitMagic;
  Pc = Oat.methodAddress(*M);

  RunResult R;
  return runLoop(R);
}

Expected<RunResult> Simulator::runLoop(RunResult &R) {
  uint64_t TextBase = Oat.BaseAddress;
  uint64_t TextEnd = TextBase + TextBytes.size();
  int32_t CurMethodRow = -1;

  for (;;) {
    if (Pc == layout::ExitMagic) {
      R.ReturnValue = static_cast<int64_t>(X[0]);
      traceEvent(9, X[0], R);
      return R;
    }
    if (Pc >= layout::EntrypointBase &&
        Pc < layout::EntrypointBase +
                layout::EntrypointStride * art::NumEntrypoints) {
      bool Halt = false;
      if (auto E = handleEntrypoint(Pc, R, Halt))
        return E;
      if (Halt) {
        traceEvent(8, static_cast<uint64_t>(R.What), R);
        return R;
      }
      continue;
    }
    if (Pc < TextBase || Pc >= TextEnd || (Pc & 3) != 0)
      return makeError("pc left the text segment");

    uint64_t WordIdx = (Pc - TextBase) / 4;
    const auto &MaybeInsn = Decoded[WordIdx];
    if (!MaybeInsn)
      return makeError("fetched an undecodable word (embedded data?)");
    const Insn &I = *MaybeInsn;

    if (++R.Insns > Opts.MaxInsns)
      return makeError("instruction budget exhausted (runaway execution?)");

    if (Opts.TraceTo)
      std::fprintf(Opts.TraceTo,
                   "0x%llx: %-40s x0=%llx x1=%llx x16=%llx x28=%llx x30=%llx\n",
                   static_cast<unsigned long long>(Pc),
                   a64::toString(I, Pc).c_str(),
                   static_cast<unsigned long long>(X[0]),
                   static_cast<unsigned long long>(X[1]),
                   static_cast<unsigned long long>(X[16]),
                   static_cast<unsigned long long>(X[28]),
                   static_cast<unsigned long long>(X[30]));

    uint64_t InsnCycles = Opts.Cycles.Base;
    if (IC.access(Pc)) {
      ++R.ICacheMisses;
      InsnCycles += Opts.Cycles.ICacheMiss;
    }
    TouchedPages.insert(Pc >> Opts.PageShift);
    if (MethodAt[WordIdx] >= 0)
      CurMethodRow = MethodAt[WordIdx];
    if (OutlinedEntryAt[WordIdx] >= 0)
      ++OutlinedEntries[OutlinedEntryAt[WordIdx]];

    uint64_t NextPc = Pc + 4;
    bool IsMem = false;

    switch (I.Op) {
    case Opcode::Invalid:
      return makeError("invalid opcode reached execution");

    case Opcode::AddImm:
    case Opcode::SubImm: {
      uint64_t V = static_cast<uint64_t>(I.Imm) << (I.Shift == 12 ? 12 : 0);
      uint64_t S = readGpOrSp(I.Rn);
      uint64_t Res = I.Op == Opcode::AddImm ? S + V : S - V;
      writeGpOrSp(I.Rd, truncW(Res, I.Is64));
      break;
    }
    case Opcode::AddsImm:
    case Opcode::SubsImm: {
      bool IsSub = I.Op == Opcode::SubsImm;
      uint64_t V = static_cast<uint64_t>(I.Imm) << (I.Shift == 12 ? 12 : 0);
      uint64_t S = readGpOrSp(I.Rn);
      setAddSubFlags(S, V, IsSub, I.Is64);
      writeGp(I.Rd, truncW(IsSub ? S - V : S + V, I.Is64));
      break;
    }

    case Opcode::MovZ:
      writeGp(I.Rd, truncW(static_cast<uint64_t>(I.Imm) << I.Shift, I.Is64));
      break;
    case Opcode::MovN:
      writeGp(I.Rd,
              truncW(~(static_cast<uint64_t>(I.Imm) << I.Shift), I.Is64));
      break;
    case Opcode::MovK: {
      uint64_t Old = readGp(I.Rd);
      uint64_t Mask = uint64_t(0xffff) << I.Shift;
      uint64_t Res =
          (Old & ~Mask) | (static_cast<uint64_t>(I.Imm) << I.Shift);
      writeGp(I.Rd, truncW(Res, I.Is64));
      break;
    }

    case Opcode::AddReg:
    case Opcode::SubReg: {
      uint64_t A = readGp(I.Rn);
      uint64_t B = truncW(readGp(I.Rm), I.Is64) << I.Shift;
      uint64_t Res = I.Op == Opcode::AddReg ? A + B : A - B;
      writeGp(I.Rd, truncW(Res, I.Is64));
      break;
    }
    case Opcode::AddsReg:
    case Opcode::SubsReg: {
      bool IsSub = I.Op == Opcode::SubsReg;
      uint64_t A = readGp(I.Rn);
      uint64_t B = truncW(readGp(I.Rm), I.Is64) << I.Shift;
      setAddSubFlags(A, B, IsSub, I.Is64);
      writeGp(I.Rd, truncW(IsSub ? A - B : A + B, I.Is64));
      break;
    }

    case Opcode::AndReg:
    case Opcode::OrrReg:
    case Opcode::EorReg:
    case Opcode::AndsReg: {
      uint64_t A = readGp(I.Rn);
      uint64_t B = truncW(readGp(I.Rm), I.Is64) << I.Shift;
      uint64_t Res;
      switch (I.Op) {
      case Opcode::AndReg:
      case Opcode::AndsReg:
        Res = A & B;
        break;
      case Opcode::OrrReg:
        Res = A | B;
        break;
      default:
        Res = A ^ B;
        break;
      }
      Res = truncW(Res, I.Is64);
      if (I.Op == Opcode::AndsReg) {
        Nzcv.N = (Res >> (I.Is64 ? 63 : 31)) & 1;
        Nzcv.Z = Res == 0;
        Nzcv.C = Nzcv.V = false;
      }
      writeGp(I.Rd, Res);
      break;
    }

    case Opcode::Lslv:
    case Opcode::Lsrv:
    case Opcode::Asrv: {
      unsigned Width = I.Is64 ? 64 : 32;
      uint64_t A = truncW(readGp(I.Rn), I.Is64);
      unsigned Amount =
          static_cast<unsigned>(readGp(I.Rm) & (Width - 1));
      uint64_t Res;
      if (I.Op == Opcode::Lslv)
        Res = A << Amount;
      else if (I.Op == Opcode::Lsrv)
        Res = A >> Amount;
      else {
        int64_t SA = I.Is64 ? static_cast<int64_t>(A)
                            : static_cast<int64_t>(static_cast<int32_t>(A));
        Res = static_cast<uint64_t>(SA >> Amount);
      }
      writeGp(I.Rd, truncW(Res, I.Is64));
      break;
    }

    case Opcode::Madd:
    case Opcode::Msub: {
      uint64_t Prod = readGp(I.Rn) * readGp(I.Rm);
      uint64_t Base = readGp(I.Ra);
      uint64_t Res = I.Op == Opcode::Madd ? Base + Prod : Base - Prod;
      writeGp(I.Rd, truncW(Res, I.Is64));
      break;
    }
    case Opcode::Sdiv: {
      int64_t A, B;
      if (I.Is64) {
        A = static_cast<int64_t>(readGp(I.Rn));
        B = static_cast<int64_t>(readGp(I.Rm));
      } else {
        A = static_cast<int32_t>(readGp(I.Rn));
        B = static_cast<int32_t>(readGp(I.Rm));
      }
      int64_t Res;
      if (B == 0)
        Res = 0;
      else if (A == INT64_MIN && B == -1)
        Res = INT64_MIN;
      else
        Res = A / B;
      writeGp(I.Rd, truncW(static_cast<uint64_t>(Res), I.Is64));
      break;
    }
    case Opcode::Udiv: {
      uint64_t A = truncW(readGp(I.Rn), I.Is64);
      uint64_t B = truncW(readGp(I.Rm), I.Is64);
      writeGp(I.Rd, B == 0 ? 0 : truncW(A / B, I.Is64));
      break;
    }

    case Opcode::Csel:
      writeGp(I.Rd, truncW(condHolds(I.CC) ? readGp(I.Rn) : readGp(I.Rm),
                           I.Is64));
      break;
    case Opcode::Csinc:
      writeGp(I.Rd,
              truncW(condHolds(I.CC) ? readGp(I.Rn) : readGp(I.Rm) + 1,
                     I.Is64));
      break;

    case Opcode::LdrImm:
    case Opcode::LdrbImm: {
      IsMem = true;
      unsigned Size = I.Op == Opcode::LdrbImm ? 1 : (I.Is64 ? 8 : 4);
      uint64_t Addr = readGpOrSp(I.Rn) + static_cast<uint64_t>(I.Imm);
      // The stack-overflow probe lands in the guard region below the stack.
      if (Addr >= layout::StackBase - GuardSize && Addr < layout::StackBase) {
        R.What = Outcome::StackOverflow;
        traceEvent(8, static_cast<uint64_t>(R.What), R);
        return R;
      }
      auto V = load(Addr, Size);
      if (!V)
        return V.takeError();
      writeGp(I.Rd, *V);
      break;
    }
    case Opcode::StrImm:
    case Opcode::StrbImm: {
      IsMem = true;
      unsigned Size = I.Op == Opcode::StrbImm ? 1 : (I.Is64 ? 8 : 4);
      uint64_t Addr = readGpOrSp(I.Rn) + static_cast<uint64_t>(I.Imm);
      uint64_t V = truncW(readGp(I.Rd), Size == 8);
      if (Size == 1)
        V &= 0xff;
      if (auto E = store(Addr, Size, V))
        return E;
      if (Addr >= layout::HeapBase && Addr < layout::StackBase)
        traceEvent(0x10, mix64(Addr) ^ V, R);
      break;
    }

    case Opcode::Ldp:
    case Opcode::Stp: {
      IsMem = true;
      unsigned Size = I.Is64 ? 8 : 4;
      uint64_t Base = readGpOrSp(I.Rn);
      uint64_t Addr =
          I.Mode == IndexMode::PostIndex ? Base : Base + static_cast<uint64_t>(I.Imm);
      if (I.Op == Opcode::Ldp) {
        auto V1 = load(Addr, Size);
        if (!V1)
          return V1.takeError();
        auto V2 = load(Addr + Size, Size);
        if (!V2)
          return V2.takeError();
        writeGp(I.Rd, *V1);
        writeGp(I.Ra, *V2);
      } else {
        if (auto E = store(Addr, Size, truncW(readGp(I.Rd), I.Is64)))
          return E;
        if (auto E = store(Addr + Size, Size, truncW(readGp(I.Ra), I.Is64)))
          return E;
      }
      if (I.Mode != IndexMode::Offset)
        writeGpOrSp(I.Rn, Base + static_cast<uint64_t>(I.Imm));
      break;
    }

    case Opcode::LdrLit: {
      IsMem = true;
      auto V = load(Pc + static_cast<uint64_t>(I.Imm), I.Is64 ? 8 : 4);
      if (!V)
        return V.takeError();
      writeGp(I.Rd, *V);
      break;
    }

    case Opcode::Adr:
      writeGp(I.Rd, Pc + static_cast<uint64_t>(I.Imm));
      break;
    case Opcode::Adrp:
      writeGp(I.Rd, (Pc & ~uint64_t(0xfff)) + static_cast<uint64_t>(I.Imm));
      break;

    case Opcode::B:
      NextPc = Pc + static_cast<uint64_t>(I.Imm);
      break;
    case Opcode::Bl:
      X[a64::LR] = Pc + 4;
      NextPc = Pc + static_cast<uint64_t>(I.Imm);
      ++R.Calls;
      InsnCycles += Opts.Cycles.Call;
      break;
    case Opcode::Bcond:
      if (condHolds(I.CC))
        NextPc = Pc + static_cast<uint64_t>(I.Imm);
      break;
    case Opcode::Cbz:
    case Opcode::Cbnz: {
      uint64_t V = truncW(readGp(I.Rd), I.Is64);
      bool Taken = (V == 0) == (I.Op == Opcode::Cbz);
      if (Taken)
        NextPc = Pc + static_cast<uint64_t>(I.Imm);
      break;
    }
    case Opcode::Tbz:
    case Opcode::Tbnz: {
      bool Bit = (readGp(I.Rd) >> I.BitPos) & 1;
      if (Bit == (I.Op == Opcode::Tbnz))
        NextPc = Pc + static_cast<uint64_t>(I.Imm);
      break;
    }
    case Opcode::Br:
      NextPc = readGp(I.Rn);
      break;
    case Opcode::Blr:
      // Read the target before writing the link register: `blr x30` must
      // branch to the old x30 value.
      NextPc = readGp(I.Rn);
      X[a64::LR] = Pc + 4;
      ++R.Calls;
      InsnCycles += Opts.Cycles.Call;
      break;
    case Opcode::Ret:
      NextPc = readGp(I.Rn);
      InsnCycles += Opts.Cycles.Ret;
      break;

    case Opcode::Nop:
      break;
    case Opcode::Brk:
      return makeError("brk executed (throw helper fell through?)");
    }

    if (IsMem)
      InsnCycles += Opts.Cycles.Mem;
    if (NextPc != Pc + 4 && I.Op != Opcode::Bl && I.Op != Opcode::Blr &&
        I.Op != Opcode::Ret)
      InsnCycles += Opts.Cycles.TakenBranch;

    R.Cycles += InsnCycles;
    if (Opts.CollectProfile && CurMethodRow >= 0)
      Prof.add(Oat.Methods[CurMethodRow].MethodIdx, InsnCycles);

    Pc = NextPc;
  }
}
