//===- sim/CycleModel.h - Timing model and I-cache --------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The performance model behind the paper's runtime experiments (Table 7):
/// a simple in-order cost model plus an instruction cache. Code outlining
/// adds call/return pairs (pipeline cost) but shrinks the text working set
/// (fewer I-cache misses) — both effects the paper discusses in §3.4 — so
/// the model charges both.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SIM_CYCLEMODEL_H
#define CALIBRO_SIM_CYCLEMODEL_H

#include <array>
#include <cstdint>

namespace calibro {
namespace sim {

/// Per-event cycle costs. Defaults roughly follow a little in-order core.
struct CycleConfig {
  uint32_t Base = 1;         ///< Every instruction.
  uint32_t TakenBranch = 1;  ///< Extra for a taken branch.
  uint32_t Call = 1;         ///< Extra for bl/blr (the outlining tax).
  uint32_t Ret = 1;          ///< Extra for ret / br x30 returns.
  uint32_t Mem = 1;          ///< Extra for loads/stores.
  uint32_t ICacheMiss = 30;  ///< Extra per I-cache line miss.
};

/// A set-associative instruction cache with LRU replacement.
/// Default geometry: 32 KiB, 64-byte lines, 4 ways (Cortex-ish).
class ICache {
public:
  ICache() { reset(); }

  void reset() {
    Tags.fill(~uint64_t(0));
    Stamps.fill(0);
    Tick = 0;
  }

  /// Accesses the line containing \p Addr; returns true on a miss.
  bool access(uint64_t Addr) {
    uint64_t Line = Addr >> LineBits;
    uint64_t Set = Line & (NumSets - 1);
    uint64_t Tag = Line >> SetBits;
    std::size_t Base = static_cast<std::size_t>(Set) * Ways;
    ++Tick;
    for (std::size_t W = 0; W < Ways; ++W) {
      if (Tags[Base + W] == Tag) {
        Stamps[Base + W] = Tick;
        return false;
      }
    }
    // Miss: evict the LRU way.
    std::size_t Victim = Base;
    for (std::size_t W = 1; W < Ways; ++W)
      if (Stamps[Base + W] < Stamps[Victim])
        Victim = Base + W;
    Tags[Victim] = Tag;
    Stamps[Victim] = Tick;
    return true;
  }

  static constexpr unsigned LineBits = 6;  ///< 64-byte lines.
  static constexpr unsigned SetBits = 7;   ///< 128 sets.
  static constexpr std::size_t NumSets = 1u << SetBits;
  static constexpr std::size_t Ways = 4;   ///< 32 KiB total.

private:
  std::array<uint64_t, NumSets * Ways> Tags;
  std::array<uint64_t, NumSets * Ways> Stamps;
  uint64_t Tick = 0;
};

} // namespace sim
} // namespace calibro

#endif // CALIBRO_SIM_CYCLEMODEL_H
