//===- codegen/SideInfoValidator.cpp - MethodSideInfo invariants ----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "codegen/SideInfoValidator.h"

#include "aarch64/Decoder.h"
#include "aarch64/Insn.h"
#include "aarch64/PcRel.h"

#include <algorithm>
#include <vector>

using namespace calibro;
using namespace calibro::codegen;

const char *codegen::sideInfoFaultName(SideInfoFault F) {
  switch (F) {
  case SideInfoFault::None:
    return "none";
  case SideInfoFault::TerminatorUnaligned:
    return "terminator-unaligned";
  case SideInfoFault::TerminatorOutOfBounds:
    return "terminator-out-of-bounds";
  case SideInfoFault::TerminatorNotSorted:
    return "terminator-not-sorted";
  case SideInfoFault::TerminatorNotAtTerminator:
    return "terminator-not-at-terminator";
  case SideInfoFault::TerminatorUnrecorded:
    return "terminator-unrecorded";
  case SideInfoFault::PcRelUnaligned:
    return "pc-rel-unaligned";
  case SideInfoFault::PcRelOutOfBounds:
    return "pc-rel-out-of-bounds";
  case SideInfoFault::PcRelNotAtPcRel:
    return "pc-rel-not-at-pc-rel";
  case SideInfoFault::PcRelTargetMismatch:
    return "pc-rel-target-mismatch";
  case SideInfoFault::PcRelUnrecorded:
    return "pc-rel-unrecorded";
  case SideInfoFault::EmbeddedDataUnaligned:
    return "embedded-data-unaligned";
  case SideInfoFault::EmbeddedDataOutOfBounds:
    return "embedded-data-out-of-bounds";
  case SideInfoFault::EmbeddedDataOverlap:
    return "embedded-data-overlap";
  case SideInfoFault::LiteralTargetNotInData:
    return "literal-target-not-in-data";
  case SideInfoFault::LiteralTargetMisaligned:
    return "literal-target-misaligned";
  case SideInfoFault::SlowPathUnaligned:
    return "slow-path-unaligned";
  case SideInfoFault::SlowPathInverted:
    return "slow-path-inverted";
  case SideInfoFault::SlowPathOutOfBounds:
    return "slow-path-out-of-bounds";
  case SideInfoFault::MetadataInsideData:
    return "metadata-inside-data";
  case SideInfoFault::UndeclaredIndirectJump:
    return "undeclared-indirect-jump";
  case SideInfoFault::UndecodableWord:
    return "undecodable-word";
  }
  return "none";
}

static_assert(static_cast<std::size_t>(SideInfoFault::UndecodableWord) + 1 ==
                  NumSideInfoFaults,
              "NumSideInfoFaults out of sync with the enum");

namespace {

SideInfoDiag fault(SideInfoFault F, std::string Detail) {
  return SideInfoDiag{F, std::move(Detail)};
}

std::string atOffset(uint32_t Off) {
  return "at method-local offset " + std::to_string(Off);
}

} // namespace

SideInfoDiag codegen::validateSideInfoShape(const MethodSideInfo &Side,
                                            uint32_t CodeSizeBytes) {
  bool First = true;
  uint32_t Prev = 0;
  for (uint32_t Off : Side.TerminatorOffsets) {
    if (Off % 4 != 0)
      return fault(SideInfoFault::TerminatorUnaligned, atOffset(Off));
    if (Off >= CodeSizeBytes)
      return fault(SideInfoFault::TerminatorOutOfBounds,
                   atOffset(Off) + " with code size " +
                       std::to_string(CodeSizeBytes));
    if (!First && Off <= Prev)
      return fault(SideInfoFault::TerminatorNotSorted,
                   atOffset(Off) + " after offset " + std::to_string(Prev));
    Prev = Off;
    First = false;
  }

  for (const PcRelRecord &R : Side.PcRelRecords) {
    if (R.InsnOffset % 4 != 0 || R.TargetOffset % 4 != 0)
      return fault(SideInfoFault::PcRelUnaligned,
                   atOffset(R.InsnOffset) + " targeting " +
                       std::to_string(R.TargetOffset));
    if (uint64_t(R.InsnOffset) + 4 > CodeSizeBytes ||
        R.TargetOffset > CodeSizeBytes)
      return fault(SideInfoFault::PcRelOutOfBounds,
                   atOffset(R.InsnOffset) + " targeting " +
                       std::to_string(R.TargetOffset) + " with code size " +
                       std::to_string(CodeSizeBytes));
  }

  for (const EmbeddedDataRange &D : Side.EmbeddedData) {
    if (D.Offset % 4 != 0 || D.Size % 4 != 0)
      return fault(SideInfoFault::EmbeddedDataUnaligned,
                   atOffset(D.Offset) + " size " + std::to_string(D.Size));
    if (uint64_t(D.Offset) + D.Size > CodeSizeBytes)
      return fault(SideInfoFault::EmbeddedDataOutOfBounds,
                   atOffset(D.Offset) + " size " + std::to_string(D.Size) +
                       " with code size " + std::to_string(CodeSizeBytes));
  }
  if (Side.EmbeddedData.size() > 1) {
    std::vector<EmbeddedDataRange> Sorted = Side.EmbeddedData;
    std::sort(Sorted.begin(), Sorted.end(),
              [](const EmbeddedDataRange &A, const EmbeddedDataRange &B) {
                return A.Offset < B.Offset;
              });
    for (std::size_t I = 1; I < Sorted.size(); ++I)
      if (uint64_t(Sorted[I - 1].Offset) + Sorted[I - 1].Size >
          Sorted[I].Offset)
        return fault(SideInfoFault::EmbeddedDataOverlap,
                     atOffset(Sorted[I].Offset));
  }

  for (const ByteRange &R : Side.SlowPathRanges) {
    if (R.Begin % 4 != 0 || R.End % 4 != 0)
      return fault(SideInfoFault::SlowPathUnaligned,
                   "range [" + std::to_string(R.Begin) + ", " +
                       std::to_string(R.End) + ")");
    if (R.End < R.Begin)
      return fault(SideInfoFault::SlowPathInverted,
                   "range [" + std::to_string(R.Begin) + ", " +
                       std::to_string(R.End) + ")");
    if (R.End > CodeSizeBytes)
      return fault(SideInfoFault::SlowPathOutOfBounds,
                   "range [" + std::to_string(R.Begin) + ", " +
                       std::to_string(R.End) + ") with code size " +
                       std::to_string(CodeSizeBytes));
  }

  return SideInfoDiag{};
}

SideInfoDiag codegen::validateSideInfo(const CompiledMethod &M) {
  if (auto D = validateSideInfoShape(M.Side, M.codeSizeBytes()))
    return D;

  const std::size_t NumWords = M.Code.size();
  std::vector<uint8_t> IsData(NumWords, 0);
  for (const EmbeddedDataRange &D : M.Side.EmbeddedData)
    for (uint32_t W = D.Offset / 4; W < (D.Offset + D.Size) / 4; ++W)
      IsData[W] = 1;

  for (uint32_t Off : M.Side.TerminatorOffsets)
    if (IsData[Off / 4])
      return fault(SideInfoFault::MetadataInsideData,
                   "terminator " + atOffset(Off));
  for (const PcRelRecord &R : M.Side.PcRelRecords)
    if (IsData[R.InsnOffset / 4])
      return fault(SideInfoFault::MetadataInsideData,
                   "pc-rel record " + atOffset(R.InsnOffset));

  std::vector<uint32_t> PcRelOffs;
  PcRelOffs.reserve(M.Side.PcRelRecords.size());
  for (const PcRelRecord &R : M.Side.PcRelRecords)
    PcRelOffs.push_back(R.InsnOffset);
  std::sort(PcRelOffs.begin(), PcRelOffs.end());

  // Whole-body decode pass: everything the outliner would need a record for
  // must actually be recorded, or moving code around would silently break
  // control flow (the completeness half of the contract; validateOat only
  // checks the records that are present).
  for (std::size_t W = 0; W < NumWords; ++W) {
    if (IsData[W])
      continue;
    uint32_t Off = static_cast<uint32_t>(W * 4);
    auto I = a64::decode(M.Code[W]);
    if (!I)
      return fault(SideInfoFault::UndecodableWord, atOffset(Off));
    if (a64::isIndirectJump(I->Op) && !M.Side.HasIndirectJump)
      return fault(SideInfoFault::UndeclaredIndirectJump, atOffset(Off));
    if (a64::isTerminator(I->Op) &&
        !std::binary_search(M.Side.TerminatorOffsets.begin(),
                            M.Side.TerminatorOffsets.end(), Off))
      return fault(SideInfoFault::TerminatorUnrecorded, atOffset(Off));
    if (a64::isPcRelative(I->Op) && I->Op != a64::Opcode::Bl &&
        !std::binary_search(PcRelOffs.begin(), PcRelOffs.end(), Off))
      return fault(SideInfoFault::PcRelUnrecorded, atOffset(Off));
  }

  for (uint32_t Off : M.Side.TerminatorOffsets) {
    auto I = a64::decode(M.Code[Off / 4]);
    if (!I || !a64::isTerminator(I->Op))
      return fault(SideInfoFault::TerminatorNotAtTerminator, atOffset(Off));
  }

  for (const PcRelRecord &R : M.Side.PcRelRecords) {
    auto I = a64::decode(M.Code[R.InsnOffset / 4]);
    if (!I || !a64::isPcRelative(I->Op))
      return fault(SideInfoFault::PcRelNotAtPcRel, atOffset(R.InsnOffset));
    auto Target = a64::pcRelTarget(*I, R.InsnOffset);
    if (!Target || *Target != R.TargetOffset)
      return fault(SideInfoFault::PcRelTargetMismatch,
                   atOffset(R.InsnOffset) + " records target " +
                       std::to_string(R.TargetOffset));
    if (I->Op == a64::Opcode::LdrLit) {
      uint32_t Width = I->Is64 ? 8 : 4;
      bool InData = false;
      for (const EmbeddedDataRange &D : M.Side.EmbeddedData)
        if (R.TargetOffset >= D.Offset &&
            uint64_t(R.TargetOffset) + Width <= uint64_t(D.Offset) + D.Size) {
          InData = true;
          break;
        }
      if (!InData)
        return fault(SideInfoFault::LiteralTargetNotInData,
                     atOffset(R.InsnOffset) + " targeting " +
                         std::to_string(R.TargetOffset));
      if (I->Is64 && R.TargetOffset % 8 != 0)
        return fault(SideInfoFault::LiteralTargetMisaligned,
                     atOffset(R.InsnOffset) + " targeting " +
                         std::to_string(R.TargetOffset));
    }
  }

  return SideInfoDiag{};
}
