//===- codegen/CodeGenerator.cpp - HGraph to AArch64 lowering -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"

#include "aarch64/Encoder.h"
#include "codegen/ArtAbi.h"
#include "support/Compiler.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace calibro;
using namespace calibro::codegen;
using namespace calibro::a64;

//===----------------------------------------------------------------------===//
// CtoStubCache
//===----------------------------------------------------------------------===//

std::vector<uint32_t> codegen::buildCtoStubCode(CtoStubKind Kind,
                                                uint32_t Imm) {
  std::vector<Insn> Body;
  switch (Kind) {
  case CtoStubKind::JavaCall: {
    // ldr x16, [x0, #Imm]; br x16 — tail form of Fig. 4a. The caller's `bl`
    // set x30, so the callee returns straight to the original site.
    Insn Ld{.Op = Opcode::LdrImm, .Rd = IP0, .Rn = ArtMethodReg};
    Ld.Imm = Imm;
    Body.push_back(Ld);
    Insn Jump{.Op = Opcode::Br};
    Jump.Rn = IP0;
    Body.push_back(Jump);
    break;
  }
  case CtoStubKind::RtCall: {
    // ldr x16, [x19, #Imm]; br x16 — tail form of Fig. 4b.
    Insn Ld{.Op = Opcode::LdrImm, .Rd = IP0, .Rn = ThreadReg};
    Ld.Imm = Imm;
    Body.push_back(Ld);
    Insn Jump{.Op = Opcode::Br};
    Jump.Rn = IP0;
    Body.push_back(Jump);
    break;
  }
  case CtoStubKind::StackCheck: {
    // sub x16, sp, #0x2000; ldr wzr, [x16]; ret — Fig. 4c plus the return.
    Insn SubSp{.Op = Opcode::SubImm, .Rd = IP0, .Rn = SP};
    SubSp.Imm = art::StackOverflowReservedBytes >> 12;
    SubSp.Shift = 12;
    Body.push_back(SubSp);
    Insn Probe{.Op = Opcode::LdrImm, .Is64 = false, .Rd = ZR, .Rn = IP0};
    Probe.Imm = 0;
    Body.push_back(Probe);
    Insn RetI{.Op = Opcode::Ret};
    RetI.Rn = LR;
    Body.push_back(RetI);
    break;
  }
  }
  std::vector<uint32_t> Words;
  Words.reserve(Body.size());
  for (const auto &I : Body)
    Words.push_back(encode(I));
  return Words;
}

uint32_t CtoStubCache::getOrCreate(CtoStubKind Kind, uint32_t Imm) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Key = std::make_pair(static_cast<uint8_t>(Kind), Imm);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Stubs.size());
  Stubs.push_back(CtoStub{Kind, Imm, buildCtoStubCode(Kind, Imm)});
  Cache.emplace(Key, Id);
  return Id;
}

std::vector<CtoStub> CtoStubCache::takeStubs() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return std::move(Stubs);
}

std::size_t CtoStubCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stubs.size();
}

//===----------------------------------------------------------------------===//
// Emitter: one method's assembly buffer with labels, pools and side info.
//===----------------------------------------------------------------------===//

namespace {

/// First home register: v0 lives in x20.
constexpr uint8_t FirstHomeReg = 20;
/// Virtual registers v0..v8 live in x20..x28.
constexpr uint16_t NumHomeRegs = 9;

class Emitter {
public:
  /// \p NumSavedHomes is how many home registers (x20..) the prologue must
  /// preserve — only the ones the method really uses, like a register
  /// allocator under per-method pressure.
  Emitter(const CodeGenOptions &Opts, CtoStubCache &Stubs, uint16_t NumRegs,
          uint16_t NumSavedHomes)
      : Opts(Opts), Stubs(Stubs), NumRegs(NumRegs) {
    NumSaved = std::min<uint16_t>(NumSavedHomes, NumHomeRegs);
    NumSpills = NumRegs > NumHomeRegs ? NumRegs - NumHomeRegs : 0;
    SavedBytes = static_cast<uint32_t>(alignTo(8 * NumSaved, 16));
    SpillBase = 16 + SavedBytes;
    FrameSize = SpillBase + static_cast<uint32_t>(alignTo(8 * NumSpills, 16));
    assert(FrameSize <= 504 && "frame too large for stp pre-index");
  }

  //--- Labels -------------------------------------------------------------

  uint32_t newLabel() {
    LabelOffsets.push_back(-1);
    return static_cast<uint32_t>(LabelOffsets.size()) - 1;
  }

  void bind(uint32_t Label) {
    assert(LabelOffsets[Label] == -1 && "label bound twice");
    LabelOffsets[Label] = static_cast<int32_t>(offset());
  }

  uint32_t offset() const { return static_cast<uint32_t>(Buf.size() * 4); }

  //--- Raw emission -------------------------------------------------------

  uint32_t emit(const Insn &I) {
    if (isTerminator(I.Op))
      Side.TerminatorOffsets.push_back(offset());
    Buf.push_back(I);
    return static_cast<uint32_t>(Buf.size()) - 1;
  }

  /// Emits a PC-relative instruction whose Imm will be resolved against
  /// \p Label; the resolved pair is recorded as a PcRelRecord.
  void emitToLabel(Insn I, uint32_t Label) {
    I.Imm = 0;
    uint32_t Idx = emit(I);
    Fixups.push_back({Idx, Label});
  }

  //--- Common idiom helpers -----------------------------------------------

  void emitMov(uint8_t Dst, uint8_t Src) {
    Insn I{.Op = Opcode::OrrReg, .Rd = Dst, .Rn = ZR, .Rm = Src};
    emit(I);
  }

  void emitLdrSp(uint8_t Dst, uint32_t Off, bool Is64 = true) {
    Insn I{.Op = Opcode::LdrImm, .Is64 = Is64, .Rd = Dst, .Rn = SP};
    I.Imm = Off;
    emit(I);
  }

  void emitStrSp(uint8_t Src, uint32_t Off) {
    Insn I{.Op = Opcode::StrImm, .Rd = Src, .Rn = SP};
    I.Imm = Off;
    emit(I);
  }

  //--- Virtual-register access ----------------------------------------------

  static bool isHome(uint16_t V) { return V < NumHomeRegs; }
  static uint8_t homeReg(uint16_t V) {
    return static_cast<uint8_t>(FirstHomeReg + V);
  }
  uint32_t spillOffset(uint16_t V) const {
    assert(V >= NumHomeRegs && "not a spilled vreg");
    return SpillBase + 8 * (V - NumHomeRegs);
  }

  /// Makes the value of vreg \p V available in a register: its home, or
  /// loaded into \p Scratch.
  uint8_t readVreg(uint16_t V, uint8_t Scratch) {
    if (isHome(V))
      return homeReg(V);
    emitLdrSp(Scratch, spillOffset(V));
    return Scratch;
  }

  /// Returns the register a value destined for vreg \p V should be computed
  /// into (the home, or \p Scratch pending a store).
  uint8_t destReg(uint16_t V, uint8_t Scratch) {
    return isHome(V) ? homeReg(V) : Scratch;
  }

  /// Completes a write to vreg \p V of the value in \p Reg.
  void writeVreg(uint16_t V, uint8_t Reg) {
    if (isHome(V)) {
      if (Reg != homeReg(V))
        emitMov(homeReg(V), Reg);
      return;
    }
    emitStrSp(Reg, spillOffset(V));
  }

  //--- Constants ------------------------------------------------------------

  /// Materializes \p Value into \p Dst using movz/movn/movk, or a literal
  /// pool load when that would take three or more instructions (the pools
  /// are the method's embedded data).
  void emitConst(uint8_t Dst, int64_t Value) {
    uint64_t U = static_cast<uint64_t>(Value);
    uint64_t NotU = ~U;

    auto chunks = [](uint64_t X) {
      int N = 0;
      for (int K = 0; K < 4; ++K)
        if ((X >> (16 * K)) & 0xffff)
          ++N;
      return N;
    };

    if (chunks(NotU) == 0 || chunks(NotU) == 1) {
      // movn covers all-ones patterns with one hole.
      int K = 0;
      for (; K < 4; ++K)
        if ((NotU >> (16 * K)) & 0xffff)
          break;
      if (K == 4)
        K = 0; // Value is ~0.
      Insn I{.Op = Opcode::MovN, .Rd = Dst};
      I.Imm = (NotU >> (16 * K)) & 0xffff;
      I.Shift = static_cast<uint8_t>(16 * K);
      emit(I);
      return;
    }
    int NZ = chunks(U);
    if (NZ <= 2) {
      bool First = true;
      if (U == 0) {
        Insn I{.Op = Opcode::MovZ, .Rd = Dst};
        I.Imm = 0;
        emit(I);
        return;
      }
      for (int K = 0; K < 4; ++K) {
        uint64_t Chunk = (U >> (16 * K)) & 0xffff;
        if (!Chunk)
          continue;
        Insn I{.Op = First ? Opcode::MovZ : Opcode::MovK, .Rd = Dst};
        I.Imm = static_cast<int64_t>(Chunk);
        I.Shift = static_cast<uint8_t>(16 * K);
        emit(I);
        First = false;
      }
      return;
    }
    // Literal pool load (PC-relative; patched by LTBO when code moves).
    uint32_t PoolIdx;
    auto It = PoolIndex.find(U);
    if (It != PoolIndex.end()) {
      PoolIdx = It->second;
    } else {
      PoolIdx = static_cast<uint32_t>(Pool.size());
      Pool.push_back(U);
      PoolIndex.emplace(U, PoolIdx);
    }
    Insn I{.Op = Opcode::LdrLit, .Rd = Dst};
    I.Imm = 0;
    uint32_t Idx = emit(I);
    PoolFixups.push_back({Idx, PoolIdx});
  }

  //--- Calls ------------------------------------------------------------------

  /// Emits the ART native entrypoint call (Fig. 4b), via a CTO stub when
  /// enabled. Records a StackMap safepoint at the return address.
  void emitRuntimeCall(art::Entrypoint E, uint32_t DexPc) {
    uint32_t Off = art::entrypointOffset(E);
    if (Opts.EnableCto) {
      emitBl(RelocKind::CtoStub,
             Stubs.getOrCreate(CtoStubKind::RtCall, Off));
    } else {
      Insn Ld{.Op = Opcode::LdrImm, .Rd = LR, .Rn = ThreadReg};
      Ld.Imm = Off;
      emit(Ld);
      Insn Call{.Op = Opcode::Blr};
      Call.Rn = LR;
      emit(Call);
    }
    Map.Entries.push_back({offset(), DexPc});
  }

  /// Emits the Java-call tail (Fig. 4a): the callee ArtMethod* is already
  /// in x0.
  void emitJavaCallTail(uint32_t DexPc) {
    if (Opts.EnableCto) {
      emitBl(RelocKind::CtoStub,
             Stubs.getOrCreate(CtoStubKind::JavaCall,
                               art::ArtMethodEntryPointOffset));
    } else {
      Insn Ld{.Op = Opcode::LdrImm, .Rd = LR, .Rn = ArtMethodReg};
      Ld.Imm = art::ArtMethodEntryPointOffset;
      emit(Ld);
      Insn Call{.Op = Opcode::Blr};
      Call.Rn = LR;
      emit(Call);
    }
    Map.Entries.push_back({offset(), DexPc});
  }

  /// Emits a `bl` with a symbolic target.
  void emitBl(RelocKind Kind, uint32_t TargetId) {
    Insn I{.Op = Opcode::Bl};
    I.Imm = 0;
    uint32_t Idx = emit(I);
    Relocs.push_back({Idx * 4, Kind, TargetId});
  }

  /// Loads the ArtMethod* of method \p CalleeIdx into x0 through the
  /// thread-local method table.
  void emitResolveMethod(uint32_t CalleeIdx) {
    Insn LdTable{.Op = Opcode::LdrImm, .Rd = ArtMethodReg, .Rn = ThreadReg};
    LdTable.Imm = art::ThreadMethodTableOffset;
    emit(LdTable);
    uint64_t ByteOff = uint64_t(CalleeIdx) * 8;
    assert(ByteOff < (1ull << 24) && "method index too large to address");
    if (ByteOff >= 4096) {
      Insn Hi{.Op = Opcode::AddImm, .Rd = ArtMethodReg, .Rn = ArtMethodReg};
      Hi.Imm = static_cast<int64_t>(ByteOff >> 12);
      Hi.Shift = 12;
      emit(Hi);
    }
    Insn LdSlot{.Op = Opcode::LdrImm, .Rd = ArtMethodReg, .Rn = ArtMethodReg};
    LdSlot.Imm = static_cast<int64_t>(ByteOff & 0xfff);
    emit(LdSlot);
  }

  //--- Prologue / epilogue / stack check ---------------------------------------

  void emitPrologue(bool NeedsStackCheck, uint16_t NumArgs) {
    // stp x29, x30, [sp, #-Frame]!
    Insn Push{.Op = Opcode::Stp, .Rd = FP, .Rn = SP, .Ra = LR};
    Push.Mode = IndexMode::PreIndex;
    Push.Imm = -static_cast<int64_t>(FrameSize);
    emit(Push);
    // mov x29, sp
    Insn SetFp{.Op = Opcode::AddImm, .Rd = FP, .Rn = SP};
    SetFp.Imm = 0;
    emit(SetFp);
    // Save the home registers this method uses.
    for (uint16_t V = 0; V < NumSaved; V += 2) {
      if (V + 1 < NumSaved) {
        Insn Save{.Op = Opcode::Stp, .Rd = homeReg(V), .Rn = SP,
                  .Ra = homeReg(V + 1)};
        Save.Imm = 16 + 8 * V;
        emit(Save);
      } else {
        emitStrSp(homeReg(V), 16 + 8 * V);
      }
    }
    // The stack overflow probe (Fig. 4c). Non-leaf methods only, like ART.
    if (NeedsStackCheck)
      emitStackCheck();
    // Home the incoming arguments (x1..x4 -> v0..).
    for (uint16_t A = 0; A < NumArgs; ++A)
      writeVreg(A, static_cast<uint8_t>(1 + A));
  }

  void emitStackCheck() {
    if (Opts.EnableCto) {
      emitBl(RelocKind::CtoStub,
             Stubs.getOrCreate(CtoStubKind::StackCheck, 0));
      return;
    }
    Insn SubSp{.Op = Opcode::SubImm, .Rd = IP0, .Rn = SP};
    SubSp.Imm = art::StackOverflowReservedBytes >> 12;
    SubSp.Shift = 12;
    emit(SubSp);
    Insn Probe{.Op = Opcode::LdrImm, .Is64 = false, .Rd = ZR, .Rn = IP0};
    Probe.Imm = 0;
    emit(Probe);
  }

  void emitEpilogue() {
    for (uint16_t V = 0; V < NumSaved; V += 2) {
      if (V + 1 < NumSaved) {
        Insn Load{.Op = Opcode::Ldp, .Rd = homeReg(V), .Rn = SP,
                  .Ra = homeReg(V + 1)};
        Load.Imm = 16 + 8 * V;
        emit(Load);
      } else {
        emitLdrSp(homeReg(V), 16 + 8 * V);
      }
    }
    Insn Pop{.Op = Opcode::Ldp, .Rd = FP, .Rn = SP, .Ra = LR};
    Pop.Mode = IndexMode::PostIndex;
    Pop.Imm = FrameSize;
    emit(Pop);
    Insn RetI{.Op = Opcode::Ret};
    RetI.Rn = LR;
    emit(RetI);
  }

  //--- Finishing -----------------------------------------------------------------

  /// Resolves labels and pools, encodes everything, and produces the final
  /// word image plus side info.
  void finish(CompiledMethod &Out) {
    uint32_t CodeBytes = offset();
    uint32_t PoolBase = static_cast<uint32_t>(alignTo(CodeBytes, 8));

    for (const auto &F : Fixups) {
      int32_t Target = LabelOffsets[F.Label];
      assert(Target >= 0 && "unbound label");
      Buf[F.InsnIdx].Imm =
          static_cast<int64_t>(Target) - static_cast<int64_t>(F.InsnIdx * 4);
      Side.PcRelRecords.push_back(
          {F.InsnIdx * 4, static_cast<uint32_t>(Target)});
    }
    for (const auto &F : PoolFixups) {
      uint32_t Target = PoolBase + 8 * F.PoolIdx;
      Buf[F.InsnIdx].Imm =
          static_cast<int64_t>(Target) - static_cast<int64_t>(F.InsnIdx * 4);
      Side.PcRelRecords.push_back({F.InsnIdx * 4, Target});
    }

    Out.Code.clear();
    Out.Code.reserve(PoolBase / 4 + Pool.size() * 2);
    for (const auto &I : Buf)
      Out.Code.push_back(encode(I));
    if (!Pool.empty()) {
      if (PoolBase != CodeBytes)
        Out.Code.push_back(encode(Insn{.Op = Opcode::Nop})); // Align pad.
      for (uint64_t V : Pool) {
        Out.Code.push_back(static_cast<uint32_t>(V));
        Out.Code.push_back(static_cast<uint32_t>(V >> 32));
      }
      Side.EmbeddedData.push_back(
          {PoolBase, static_cast<uint32_t>(Pool.size() * 8)});
    }

    std::sort(Map.Entries.begin(), Map.Entries.end(),
              [](const StackMapEntry &A, const StackMapEntry &B) {
                return A.NativePcOffset < B.NativePcOffset;
              });
    std::sort(Side.TerminatorOffsets.begin(), Side.TerminatorOffsets.end());
    Out.Relocs = std::move(Relocs);
    Out.Side = std::move(Side);
    Out.Map = std::move(Map);
  }

  const CodeGenOptions &Opts;
  CtoStubCache &Stubs;
  uint16_t NumRegs;
  uint16_t NumSaved = 0;
  uint16_t NumSpills = 0;
  uint32_t SavedBytes = 0;
  uint32_t SpillBase = 0;
  uint32_t FrameSize = 0;

  std::vector<Insn> Buf;
  struct Fixup {
    uint32_t InsnIdx;
    uint32_t Label;
  };
  struct PoolFixup {
    uint32_t InsnIdx;
    uint32_t PoolIdx;
  };
  std::vector<Fixup> Fixups;
  std::vector<PoolFixup> PoolFixups;
  std::vector<int32_t> LabelOffsets;
  std::vector<uint64_t> Pool;
  std::map<uint64_t, uint32_t> PoolIndex;
  std::vector<Relocation> Relocs;
  MethodSideInfo Side;
  StackMap Map;
};

/// Maps an HGraph condition to the A64 condition for a compare-and-branch.
Cond condCodeOf(hir::CondKind CK) {
  switch (CK) {
  case hir::CondKind::Eq:
    return Cond::EQ;
  case hir::CondKind::Ne:
    return Cond::NE;
  case hir::CondKind::Lt:
    return Cond::LT;
  case hir::CondKind::Ge:
    return Cond::GE;
  case hir::CondKind::Gt:
    return Cond::GT;
  case hir::CondKind::Le:
    return Cond::LE;
  }
  CALIBRO_UNREACHABLE("bad condition kind");
}

/// True when the method needs no frame activity beyond its registers:
/// no calls, no allocation, no implicit-check slow paths.
bool isLeafGraph(const hir::HGraph &G) {
  for (const auto &B : G.Blocks)
    for (const auto &I : B.Insns)
      switch (I.Op) {
      case hir::HOp::InvokeStatic:
      case hir::HOp::InvokeVirtual:
      case hir::HOp::NewInstance:
      case hir::HOp::Throw:
      case hir::HOp::Div:
      case hir::HOp::IGet:
      case hir::HOp::IPut:
        return false;
      default:
        break;
      }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// CodeGenerator
//===----------------------------------------------------------------------===//

CodeGenerator::CodeGenerator(CodeGenOptions Opts, CtoStubCache &Stubs)
    : Opts(Opts), Stubs(Stubs) {
  // Pre-register every stub the generator can ever emit so that stub ids
  // do not depend on method compilation order — parallel compilation then
  // produces bit-identical images.
  if (!Opts.EnableCto)
    return;
  Stubs.getOrCreate(CtoStubKind::StackCheck, 0);
  Stubs.getOrCreate(CtoStubKind::JavaCall, art::ArtMethodEntryPointOffset);
  for (uint32_t E = 0; E < art::NumEntrypoints; ++E)
    Stubs.getOrCreate(CtoStubKind::RtCall,
                      art::entrypointOffset(static_cast<art::Entrypoint>(E)));
}

CompiledMethod CodeGenerator::compile(const hir::HGraph &G) const {
  CompiledMethod Out;
  Out.MethodIdx = G.MethodIdx;
  Out.Name = G.Name;

  // Preserve only the home registers this method touches.
  uint16_t NumSavedHomes = 0;
  {
    std::vector<uint16_t> Regs;
    auto Note = [&](uint16_t V) {
      if (V < NumHomeRegs && V + 1 > NumSavedHomes)
        NumSavedHomes = V + 1;
    };
    for (uint16_t A = 0; A < G.NumArgs; ++A)
      Note(A);
    for (const auto &B : G.Blocks)
      for (const auto &I : B.Insns) {
        if (auto D = hir::defOf(I))
          Note(*D);
        Regs.clear();
        hir::usesOf(I, Regs);
        for (uint16_t V : Regs)
          Note(V);
      }
  }

  Emitter E(Opts, Stubs, G.NumRegs, NumSavedHomes);

  // One label per block, plus the shared epilogue and lazy slow paths.
  std::vector<uint32_t> BlockLabel(G.Blocks.size());
  for (std::size_t B = 0; B < G.Blocks.size(); ++B)
    BlockLabel[B] = E.newLabel();
  uint32_t EpilogueLabel = E.newLabel();
  uint32_t NpeLabel = ~uint32_t(0), DivZeroLabel = ~uint32_t(0);
  uint32_t NpeDexPc = 0, DivZeroDexPc = 0;

  auto npeTarget = [&](uint32_t DexPc) {
    if (NpeLabel == ~uint32_t(0)) {
      NpeLabel = E.newLabel();
      NpeDexPc = DexPc;
    }
    return NpeLabel;
  };
  auto divZeroTarget = [&](uint32_t DexPc) {
    if (DivZeroLabel == ~uint32_t(0)) {
      DivZeroLabel = E.newLabel();
      DivZeroDexPc = DexPc;
    }
    return DivZeroLabel;
  };

  bool Leaf = isLeafGraph(G);
  E.emitPrologue(/*NeedsStackCheck=*/!Leaf, G.NumArgs);

  for (std::size_t BIdx = 0; BIdx < G.Blocks.size(); ++BIdx) {
    const hir::HBlock &B = G.Blocks[BIdx];
    E.bind(BlockLabel[BIdx]);
    bool HasNext = BIdx + 1 < G.Blocks.size();
    uint32_t NextId = HasNext ? static_cast<uint32_t>(BIdx + 1) : ~uint32_t(0);

    for (const hir::HInsn &I : B.Insns) {
      switch (I.Op) {
      case hir::HOp::Const: {
        uint8_t D = E.destReg(I.A, IP0);
        E.emitConst(D, I.Imm);
        E.writeVreg(I.A, D);
        break;
      }
      case hir::HOp::Move: {
        uint8_t S = E.readVreg(I.B, IP0);
        E.writeVreg(I.A, S);
        break;
      }
      case hir::HOp::Add:
      case hir::HOp::Sub:
      case hir::HOp::And:
      case hir::HOp::Or:
      case hir::HOp::Xor:
      case hir::HOp::Shl:
      case hir::HOp::Shr:
      case hir::HOp::Mul: {
        uint8_t L = E.readVreg(I.B, IP0);
        uint8_t R = E.readVreg(I.C, IP1);
        uint8_t D = E.destReg(I.A, IP0);
        Insn Op;
        Op.Rd = D;
        Op.Rn = L;
        Op.Rm = R;
        switch (I.Op) {
        case hir::HOp::Add:
          Op.Op = Opcode::AddReg;
          break;
        case hir::HOp::Sub:
          Op.Op = Opcode::SubReg;
          break;
        case hir::HOp::And:
          Op.Op = Opcode::AndReg;
          break;
        case hir::HOp::Or:
          Op.Op = Opcode::OrrReg;
          break;
        case hir::HOp::Xor:
          Op.Op = Opcode::EorReg;
          break;
        case hir::HOp::Shl:
          Op.Op = Opcode::Lslv;
          break;
        case hir::HOp::Shr:
          Op.Op = Opcode::Asrv;
          break;
        case hir::HOp::Mul:
          Op.Op = Opcode::Madd;
          Op.Ra = ZR;
          break;
        default:
          CALIBRO_UNREACHABLE("covered above");
        }
        E.emit(Op);
        E.writeVreg(I.A, D);
        break;
      }
      case hir::HOp::Div: {
        uint8_t L = E.readVreg(I.B, IP0);
        uint8_t R = E.readVreg(I.C, IP1);
        // Implicit divide-by-zero check with a shared throwing slow path.
        Insn Check{.Op = Opcode::Cbz, .Rd = R};
        E.emitToLabel(Check, divZeroTarget(I.DexPc));
        uint8_t D = E.destReg(I.A, IP0);
        Insn Op{.Op = Opcode::Sdiv, .Rd = D, .Rn = L, .Rm = R};
        E.emit(Op);
        E.writeVreg(I.A, D);
        break;
      }
      case hir::HOp::AddImm: {
        uint8_t S = E.readVreg(I.B, IP0);
        uint8_t D = E.destReg(I.A, IP0);
        if (I.Imm >= 0 && I.Imm <= 4095) {
          Insn Op{.Op = Opcode::AddImm, .Rd = D, .Rn = S};
          Op.Imm = I.Imm;
          E.emit(Op);
        } else if (I.Imm < 0 && -I.Imm <= 4095) {
          Insn Op{.Op = Opcode::SubImm, .Rd = D, .Rn = S};
          Op.Imm = -I.Imm;
          E.emit(Op);
        } else {
          E.emitConst(IP1, I.Imm);
          Insn Op{.Op = Opcode::AddReg, .Rd = D, .Rn = S, .Rm = IP1};
          E.emit(Op);
        }
        E.writeVreg(I.A, D);
        break;
      }

      case hir::HOp::If: {
        uint32_t Taken = BlockLabel[B.Succs[0]];
        uint32_t Fall = B.Succs[1];
        uint8_t L = E.readVreg(I.A, IP0);
        if (I.B == dex::NoReg) {
          // Compare with zero: use the dedicated forms (cbz/cbnz for
          // equality, sign-bit tbz/tbnz for </>=) like real ART code.
          switch (I.CC) {
          case hir::CondKind::Eq: {
            Insn Br{.Op = Opcode::Cbz, .Rd = L};
            E.emitToLabel(Br, Taken);
            break;
          }
          case hir::CondKind::Ne: {
            Insn Br{.Op = Opcode::Cbnz, .Rd = L};
            E.emitToLabel(Br, Taken);
            break;
          }
          case hir::CondKind::Lt: {
            Insn Br{.Op = Opcode::Tbnz, .Rd = L};
            Br.BitPos = 63;
            E.emitToLabel(Br, Taken);
            break;
          }
          case hir::CondKind::Ge: {
            Insn Br{.Op = Opcode::Tbz, .Rd = L};
            Br.BitPos = 63;
            E.emitToLabel(Br, Taken);
            break;
          }
          case hir::CondKind::Gt:
          case hir::CondKind::Le: {
            Insn Cmp{.Op = Opcode::SubsImm, .Rd = ZR, .Rn = L};
            Cmp.Imm = 0;
            E.emit(Cmp);
            Insn Br{.Op = Opcode::Bcond};
            Br.CC = condCodeOf(I.CC);
            E.emitToLabel(Br, Taken);
            break;
          }
          }
        } else {
          uint8_t R = E.readVreg(I.B, IP1);
          Insn Cmp{.Op = Opcode::SubsReg, .Rd = ZR, .Rn = L, .Rm = R};
          E.emit(Cmp);
          Insn Br{.Op = Opcode::Bcond};
          Br.CC = condCodeOf(I.CC);
          E.emitToLabel(Br, Taken);
        }
        if (Fall != NextId) {
          Insn Jump{.Op = Opcode::B};
          E.emitToLabel(Jump, BlockLabel[Fall]);
        }
        break;
      }

      case hir::HOp::Goto:
        if (B.Succs[0] != NextId) {
          Insn Jump{.Op = Opcode::B};
          E.emitToLabel(Jump, BlockLabel[B.Succs[0]]);
        }
        break;

      case hir::HOp::Switch: {
        // Bounds check + adr/add/br jump table of `b` instructions. The
        // `br` makes this method non-outlinable (paper §3.2).
        uint32_t NumCases = static_cast<uint32_t>(B.Succs.size()) - 1;
        assert(NumCases >= 1 && NumCases <= 4095 && "switch size");
        uint32_t DefaultBlock = B.Succs.back();
        uint8_t V = E.readVreg(I.A, IP0);
        Insn Cmp{.Op = Opcode::SubsImm, .Rd = ZR, .Rn = V};
        Cmp.Imm = NumCases;
        E.emit(Cmp);
        Insn Miss{.Op = Opcode::Bcond};
        Miss.CC = Cond::HS;
        E.emitToLabel(Miss, BlockLabel[DefaultBlock]);
        uint32_t TableLabel = E.newLabel();
        Insn Base{.Op = Opcode::Adr, .Rd = IP1};
        E.emitToLabel(Base, TableLabel);
        Insn Scale{.Op = Opcode::AddReg, .Rd = IP1, .Rn = IP1, .Rm = V};
        Scale.Shift = 2;
        E.emit(Scale);
        Insn Jump{.Op = Opcode::Br};
        Jump.Rn = IP1;
        E.emit(Jump);
        E.Side.HasIndirectJump = true;
        E.bind(TableLabel);
        for (uint32_t C = 0; C < NumCases; ++C) {
          Insn CaseBr{.Op = Opcode::B};
          E.emitToLabel(CaseBr, BlockLabel[B.Succs[C]]);
        }
        break;
      }

      case hir::HOp::Return: {
        uint8_t V = E.readVreg(I.A, IP0);
        if (V != 0)
          E.emitMov(0, V);
        Insn Jump{.Op = Opcode::B};
        E.emitToLabel(Jump, EpilogueLabel);
        break;
      }
      case hir::HOp::ReturnVoid: {
        Insn Jump{.Op = Opcode::B};
        E.emitToLabel(Jump, EpilogueLabel);
        break;
      }

      case hir::HOp::InvokeStatic:
      case hir::HOp::InvokeVirtual: {
        for (uint8_t K = 0; K < I.NumArgs; ++K) {
          uint16_t Src = I.Args[K];
          uint8_t Target = static_cast<uint8_t>(1 + K);
          if (Emitter::isHome(Src))
            E.emitMov(Target, Emitter::homeReg(Src));
          else
            E.emitLdrSp(Target, E.spillOffset(Src));
        }
        if (I.Op == hir::HOp::InvokeVirtual) {
          Insn Check{.Op = Opcode::Cbz, .Rd = 1};
          E.emitToLabel(Check, npeTarget(I.DexPc));
        }
        E.emitResolveMethod(I.Idx);
        E.emitJavaCallTail(I.DexPc);
        if (I.A != dex::NoReg)
          E.writeVreg(I.A, 0);
        break;
      }

      case hir::HOp::NewInstance: {
        E.emitConst(1, I.Idx); // x1 = class index.
        E.emitRuntimeCall(art::Entrypoint::AllocObject, I.DexPc);
        E.writeVreg(I.A, 0);
        break;
      }

      case hir::HOp::Throw: {
        uint8_t V = E.readVreg(I.A, IP0);
        if (V != 1)
          E.emitMov(1, V);
        E.emitRuntimeCall(art::Entrypoint::DeliverException, I.DexPc);
        Insn Trap{.Op = Opcode::Brk};
        E.emit(Trap);
        break;
      }

      case hir::HOp::IGet: {
        uint8_t Obj = E.readVreg(I.B, IP0);
        Insn Check{.Op = Opcode::Cbz, .Rd = Obj};
        E.emitToLabel(Check, npeTarget(I.DexPc));
        uint8_t D = E.destReg(I.A, IP1);
        Insn Load{.Op = Opcode::LdrImm, .Rd = D, .Rn = Obj};
        Load.Imm = I.Imm;
        E.emit(Load);
        E.writeVreg(I.A, D);
        break;
      }
      case hir::HOp::IPut: {
        uint8_t Obj = E.readVreg(I.B, IP0);
        Insn Check{.Op = Opcode::Cbz, .Rd = Obj};
        E.emitToLabel(Check, npeTarget(I.DexPc));
        uint8_t V = E.readVreg(I.A, IP1);
        Insn Store{.Op = Opcode::StrImm, .Rd = V, .Rn = Obj};
        Store.Imm = I.Imm;
        E.emit(Store);
        break;
      }
      }
    }
  }

  E.bind(EpilogueLabel);
  E.emitEpilogue();

  // Shared throwing slow paths (cold by construction; recorded so HfOpti can
  // outline them even inside hot methods, paper §3.2 "Slowpath").
  auto emitThrowPath = [&](uint32_t Label, art::Entrypoint EP,
                           uint32_t DexPc) {
    uint32_t Begin = E.offset();
    E.bind(Label);
    // Materialize the exception context the runtime helper expects. The
    // pair is identical across methods for the same exception kind, so it
    // is exactly the cross-method slow-path redundancy the paper's HfOpti
    // still outlines inside hot functions.
    Insn Kind{.Op = Opcode::MovZ, .Rd = 1};
    Kind.Imm = static_cast<uint32_t>(EP);
    E.emit(Kind);
    Insn Flags{.Op = Opcode::MovZ, .Rd = 2};
    Flags.Imm = 0x100;
    E.emit(Flags);
    E.emitRuntimeCall(EP, DexPc);
    Insn Trap{.Op = Opcode::Brk};
    E.emit(Trap);
    E.Side.SlowPathRanges.push_back({Begin, E.offset()});
  };
  if (NpeLabel != ~uint32_t(0))
    emitThrowPath(NpeLabel, art::Entrypoint::ThrowNullPointer, NpeDexPc);
  if (DivZeroLabel != ~uint32_t(0))
    emitThrowPath(DivZeroLabel, art::Entrypoint::ThrowDivZero, DivZeroDexPc);

  E.finish(Out);
  return Out;
}

CompiledMethod CodeGenerator::compileNative(const dex::Method &M) const {
  assert(M.IsNative && "compileNative on a bytecode method");
  CompiledMethod Out;
  Out.MethodIdx = M.Idx;
  Out.Name = M.Name;

  Emitter E(Opts, Stubs, /*NumRegs=*/0, /*NumSavedHomes=*/0);
  // Minimal JNI transition trampoline. Marked IsNative: the outliner skips
  // it entirely (paper §3.2, "Java native methods").
  Insn Push{.Op = Opcode::Stp, .Rd = FP, .Rn = SP, .Ra = LR};
  Push.Mode = IndexMode::PreIndex;
  Push.Imm = -16;
  E.emit(Push);
  E.emitRuntimeCall(art::Entrypoint::JniStart, 0);
  E.emitConst(1, M.Idx); // Identify the native function to the runtime.
  E.emitRuntimeCall(art::Entrypoint::JniEnd, 0);
  Insn Pop{.Op = Opcode::Ldp, .Rd = FP, .Rn = SP, .Ra = LR};
  Pop.Mode = IndexMode::PostIndex;
  Pop.Imm = 16;
  E.emit(Pop);
  Insn RetI{.Op = Opcode::Ret};
  RetI.Rn = LR;
  E.emit(RetI);

  E.Side.IsNative = true;
  E.finish(Out);
  return Out;
}
