//===- codegen/CompiledMethod.h - Compilation artifacts ---------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-method output of code generation: encoded AArch64 words, call
/// relocations, the StackMap, and — central to this paper — the
/// MethodSideInfo that the compiler records for the linking-time binary
/// outliner (LTBO.1, paper §3.2): embedded-data ranges, PC-relative
/// instructions with their targets, terminator offsets, the indirect-jump
/// and native-method flags, and slow-path ranges.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CODEGEN_COMPILEDMETHOD_H
#define CALIBRO_CODEGEN_COMPILEDMETHOD_H

#include <cstdint>
#include <string>
#include <vector>

namespace calibro {
namespace codegen {

/// What a `bl` relocation refers to. Targets are symbolic until the link
/// step binds them — which is exactly why the outliner never needs to patch
/// call instructions (paper §3.2, last bullet).
enum class RelocKind : uint8_t {
  CtoStub,      ///< A compilation-time-outlining stub (paper §3.1).
  OutlinedFunc, ///< A function created by the link-time outliner (§3.3.3).
  MergedBody,   ///< Merge thunk tail: `b` into the canonical body's tail.
};

/// One unresolved `bl` site.
struct Relocation {
  uint32_t Offset = 0;   ///< Byte offset of the bl within the method code.
  RelocKind Kind = RelocKind::CtoStub;
  uint32_t TargetId = 0; ///< Stub id or outlined-function id.

  bool operator==(const Relocation &) const = default;
};

/// A PC-relative instruction and its (method-local) target, both as byte
/// offsets from the method start. Collected at compilation time so the
/// outliner can re-patch without disassembling (paper §3.2/§3.3.4).
struct PcRelRecord {
  uint32_t InsnOffset = 0;
  uint32_t TargetOffset = 0;

  bool operator==(const PcRelRecord &) const = default;
};

/// A range [Offset, Offset+Size) of non-instruction bytes embedded in the
/// method body (literal pools). The outliner skips these instead of
/// mis-decoding them (paper §3.2, "Embedding data").
struct EmbeddedDataRange {
  uint32_t Offset = 0;
  uint32_t Size = 0;

  bool operator==(const EmbeddedDataRange &) const = default;
};

/// A half-open byte range [Begin, End).
struct ByteRange {
  uint32_t Begin = 0;
  uint32_t End = 0;

  bool contains(uint32_t Off) const { return Off >= Begin && Off < End; }
  bool operator==(const ByteRange &) const = default;
};

/// The LTBO.1 side information for one method (paper §3.2).
struct MethodSideInfo {
  std::vector<uint32_t> TerminatorOffsets;   ///< Basic-block separators.
  std::vector<PcRelRecord> PcRelRecords;     ///< To re-patch after moves.
  std::vector<EmbeddedDataRange> EmbeddedData;
  std::vector<ByteRange> SlowPathRanges;     ///< Outlinable even when hot.
  bool HasIndirectJump = false; ///< br present: excluded from outlining.
  bool IsNative = false;        ///< JNI trampoline: excluded from outlining.

  bool operator==(const MethodSideInfo &) const = default;
};

/// One StackMap entry: the state mapping at a safepoint (paper §3.5). The
/// native PC is the return address of the call that forms the safepoint.
struct StackMapEntry {
  uint32_t NativePcOffset = 0;
  uint32_t DexPc = 0;

  bool operator==(const StackMapEntry &) const = default;
};

/// Per-method StackMap, sorted by native PC.
struct StackMap {
  std::vector<StackMapEntry> Entries;

  bool operator==(const StackMap &) const = default;
};

/// One compiled method: the unit the linker consumes (paper Fig. 5's
/// "binary code" boxes).
struct CompiledMethod {
  uint32_t MethodIdx = 0;
  std::string Name;
  std::vector<uint32_t> Code; ///< Encoded words; pools are raw data words.
  std::vector<Relocation> Relocs;
  MethodSideInfo Side;
  StackMap Map;

  uint32_t codeSizeBytes() const {
    return static_cast<uint32_t>(Code.size() * 4);
  }

  bool operator==(const CompiledMethod &) const = default;
};

/// A function created by the link-time outliner (paper §3.3.3): one
/// preserved copy of a repeated sequence plus the `br x30` return. Its code
/// may itself carry `bl` relocations captured from the original sites.
struct OutlinedFunc {
  uint32_t Id = 0;
  std::vector<uint32_t> Code;
  std::vector<Relocation> Relocs;
  uint32_t SeqLength = 0;    ///< Outlined sequence length in instructions.
  uint32_t Occurrences = 0;  ///< Number of replaced occurrences.
};

/// The kinds of CTO stubs (paper §3.1 / Observation 3's three patterns).
enum class CtoStubKind : uint8_t {
  JavaCall,   ///< ldr x16, [x0,  #Imm]; br x16
  RtCall,     ///< ldr x16, [x19, #Imm]; br x16
  StackCheck, ///< sub x16, sp, #0x2000; ldr wzr, [x16]; ret
};

/// One materialized CTO stub.
struct CtoStub {
  CtoStubKind Kind;
  uint32_t Imm = 0; ///< Load offset for the call kinds; unused otherwise.
  std::vector<uint32_t> Code;
};

} // namespace codegen
} // namespace calibro

#endif // CALIBRO_CODEGEN_COMPILEDMETHOD_H
