//===- codegen/ArtAbi.h - ART runtime ABI constants -------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ABI contract between generated code, the runtime image and the
/// simulator — this repo's stand-in for the real ART runtime layout:
///
///  * x19 ("tr") holds the Thread*, whose record contains the ArtMethod**
///    method table followed by the native entrypoint table. Entrypoint
///    calls are `ldr x30, [x19, #off]; blr x30` — the paper's "ART native
///    function calling pattern" (Fig. 4b).
///  * Every Java method is named by an ArtMethod object; its entry code
///    address lives at a fixed offset, so calls are
///    `ldr x30, [x0, #ArtMethodEntryPointOffset]; blr x30` — the paper's
///    "Java function calling pattern" (Fig. 4a).
///  * Non-leaf methods probe [sp - StackOverflowReservedBytes] on entry —
///    the "stack overflow checking pattern" (Fig. 4c).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CODEGEN_ARTABI_H
#define CALIBRO_CODEGEN_ARTABI_H

#include <cstdint>

namespace calibro {
namespace art {

/// Native runtime entrypoints reachable through the Thread record.
enum class Entrypoint : uint32_t {
  AllocObject,      ///< pAllocObjectResolved: x1 = class idx, returns x0.
  ThrowNullPointer, ///< pThrowNullPointerException (noreturn).
  ThrowDivZero,     ///< pThrowDivZeroException (noreturn).
  ThrowStackOverflow, ///< pThrowStackOverflowError (noreturn).
  DeliverException, ///< pDeliverException: x1 = exception object (noreturn).
  JniStart,         ///< JNI transition in.
  JniEnd,           ///< JNI transition out; produces the native result.
  Count
};

inline constexpr uint32_t NumEntrypoints =
    static_cast<uint32_t>(Entrypoint::Count);

/// Thread record layout (addressed off x19).
/// [0] ArtMethod** method table; [8 + 8*i] entrypoint i.
inline constexpr uint32_t ThreadMethodTableOffset = 0;

/// Byte offset of entrypoint \p E in the Thread record.
inline constexpr uint32_t entrypointOffset(Entrypoint E) {
  return 8 + 8 * static_cast<uint32_t>(E);
}

/// Total Thread record size.
inline constexpr uint32_t ThreadRecordSize = 8 + 8 * NumEntrypoints;

/// ArtMethod object layout: [0] method index, [8] declaring class,
/// [ArtMethodEntryPointOffset] entry code address.
inline constexpr uint32_t ArtMethodEntryPointOffset = 24;
inline constexpr uint32_t ArtMethodSize = 32;

/// Size of the guard region probed by the stack overflow check (Fig. 4c
/// uses 0x2000 on arm64, matching real ART).
inline constexpr uint32_t StackOverflowReservedBytes = 0x2000;

} // namespace art
} // namespace calibro

#endif // CALIBRO_CODEGEN_ARTABI_H
