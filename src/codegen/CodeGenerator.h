//===- codegen/CodeGenerator.h - HGraph to AArch64 lowering -----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dex2oat-style code generator: lowers an optimized HGraph to encoded
/// AArch64 words following the ART idioms (ArtMethod calls, entrypoint
/// calls, stack-overflow probe, slow paths, literal pools, jump tables).
///
/// Two Calibro hooks live here:
///  * CTO (paper §3.1): with EnableCto, the three ART-specific repetitive
///    patterns are emitted once as stubs in a CtoStubCache — the paper's
///    "cache with a label L" — and every site becomes one `bl`.
///  * LTBO.1 (paper §3.2): while emitting, the generator records the
///    MethodSideInfo the link-time outliner needs.
///
/// Register convention (within this repo's ABI): x0 = ArtMethod* / result;
/// x1..x4 = arguments; x16/x17 = scratch; x19 = Thread*; x20..x28 = homes
/// of virtual registers v0..v8 (callee-saved); spilled vregs live in the
/// frame. Frames are fixed-size with FP/LR saved by `stp` pre-index.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CODEGEN_CODEGENERATOR_H
#define CALIBRO_CODEGEN_CODEGENERATOR_H

#include "codegen/CompiledMethod.h"
#include "dex/Dex.h"
#include "hir/HGraph.h"

#include <map>
#include <mutex>

namespace calibro {
namespace codegen {

/// The shared, concurrency-safe cache of CTO stubs for one compilation
/// session (one per app build). Deduplicates stubs by (kind, immediate) —
/// e.g. all Java calls through the same ArtMethod entry offset share one
/// stub.
class CtoStubCache {
public:
  /// Returns the stub id for (\p Kind, \p Imm), creating the stub body on
  /// first use.
  uint32_t getOrCreate(CtoStubKind Kind, uint32_t Imm);

  /// All stubs created so far. Call after compilation finishes.
  std::vector<CtoStub> takeStubs();

  /// Number of stubs currently cached.
  std::size_t size() const;

private:
  mutable std::mutex Mutex;
  std::map<std::pair<uint8_t, uint32_t>, uint32_t> Cache;
  std::vector<CtoStub> Stubs;
};

/// Code generation options.
struct CodeGenOptions {
  bool EnableCto = false; ///< Outline the three ART patterns at compile time.
};

/// Lowers optimized HGraphs (and native-method trampolines) to
/// CompiledMethods. Thread-safe: compile() may run concurrently for
/// different methods (dex2oat compiles methods in parallel, Fig. 5).
class CodeGenerator {
public:
  CodeGenerator(CodeGenOptions Opts, CtoStubCache &Stubs);

  /// Compiles one optimized HGraph.
  CompiledMethod compile(const hir::HGraph &G) const;

  /// Compiles the JNI trampoline for a native method.
  CompiledMethod compileNative(const dex::Method &M) const;

private:
  CodeGenOptions Opts;
  CtoStubCache &Stubs;
};

/// Builds the machine code of one CTO stub body (shared with tests).
std::vector<uint32_t> buildCtoStubCode(CtoStubKind Kind, uint32_t Imm);

} // namespace codegen
} // namespace calibro

#endif // CALIBRO_CODEGEN_CODEGENERATOR_H
