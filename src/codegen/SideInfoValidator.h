//===- codegen/SideInfoValidator.h - MethodSideInfo invariants --*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validation of the LTBO.1 side information (paper §3.2) before anything
/// downstream trusts it. Side info may come from an untrusted or
/// version-skewed compiler (deserialized from an OAT file), so every
/// invariant the outliner and linker rely on is checked here and violations
/// come back as a typed diagnostic instead of undefined behavior.
///
/// Two levels:
///  - validateSideInfoShape: pure range/ordering checks against the code
///    size. Cheap; used at parse time where only the byte layout is known.
///  - validateSideInfo: shape plus full consistency against the decoded
///    instruction stream (recorded offsets land on matching instructions,
///    recorded targets agree with the encoded displacements, and nothing
///    the outliner would need to know about is missing). Used by runLtbo
///    to decide, per method, whether outlining is safe.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CODEGEN_SIDEINFOVALIDATOR_H
#define CALIBRO_CODEGEN_SIDEINFOVALIDATOR_H

#include "codegen/CompiledMethod.h"

#include <cstddef>
#include <string>

namespace calibro {
namespace codegen {

/// Every way a MethodSideInfo can be wrong. The enum doubles as the
/// rejection-reason taxonomy reported by OutlineStats::RejectedByFault, so
/// keep values dense and append-only.
enum class SideInfoFault : uint8_t {
  None = 0,
  TerminatorUnaligned,      ///< Terminator offset not 4-aligned.
  TerminatorOutOfBounds,    ///< Terminator offset >= code size.
  TerminatorNotSorted,      ///< Offsets not strictly increasing.
  TerminatorNotAtTerminator,///< Word at a recorded offset is not a terminator.
  TerminatorUnrecorded,     ///< Decoded terminator with no record.
  PcRelUnaligned,           ///< Insn or target offset not 4-aligned.
  PcRelOutOfBounds,         ///< Insn past code end or target > code size.
  PcRelNotAtPcRel,          ///< Word at a recorded offset is not PC-relative.
  PcRelTargetMismatch,      ///< Encoded displacement disagrees with record.
  PcRelUnrecorded,          ///< Decoded PC-relative insn (non-bl) unrecorded.
  EmbeddedDataUnaligned,    ///< Embedded range offset/size not 4-aligned.
  EmbeddedDataOutOfBounds,  ///< Embedded range extends past the code.
  EmbeddedDataOverlap,      ///< Two embedded ranges overlap.
  LiteralTargetNotInData,   ///< ldr-literal target outside embedded data.
  LiteralTargetMisaligned,  ///< 64-bit ldr-literal target not 8-aligned.
  SlowPathUnaligned,        ///< Slow-path bound not 4-aligned.
  SlowPathInverted,         ///< Slow-path range with End < Begin.
  SlowPathOutOfBounds,      ///< Slow-path End past the code size.
  MetadataInsideData,       ///< Terminator/PC-rel record inside embedded data.
  UndeclaredIndirectJump,   ///< br present but HasIndirectJump is false.
  UndecodableWord,          ///< Non-data word that does not decode.
};

/// Number of SideInfoFault values including None; sized for per-reason
/// rejection counters.
inline constexpr std::size_t NumSideInfoFaults = 22;

/// Returns a stable kebab-case name for \p F ("slow-path-inverted", ...).
const char *sideInfoFaultName(SideInfoFault F);

/// The outcome of a validation: None means valid; otherwise the first fault
/// found (in deterministic record order) plus a human-readable detail.
struct SideInfoDiag {
  SideInfoFault Fault = SideInfoFault::None;
  std::string Detail;

  /// True when a fault was found.
  explicit operator bool() const { return Fault != SideInfoFault::None; }
};

/// Checks the pure shape invariants of \p Side against \p CodeSizeBytes:
/// all offsets 4-aligned and in-bounds, terminators strictly increasing,
/// embedded ranges non-overlapping, slow-path ranges well-formed half-open
/// intervals inside the method. Does not look at the instruction bytes.
SideInfoDiag validateSideInfoShape(const MethodSideInfo &Side,
                                   uint32_t CodeSizeBytes);

/// Full validation of \p M's side info: shape plus consistency with the
/// decoded code — every recorded terminator/PC-rel offset lands on a
/// matching instruction whose encoded displacement agrees with the record,
/// every decoded terminator and PC-relative instruction (except `bl`, which
/// is tracked by symbolic relocations) is recorded, literal loads target
/// recorded embedded data with room for their width, and `br` only appears
/// when HasIndirectJump is set.
SideInfoDiag validateSideInfo(const CompiledMethod &M);

} // namespace codegen
} // namespace calibro

#endif // CALIBRO_CODEGEN_SIDEINFOVALIDATOR_H
