//===- layout/Layout.h - Profile-driven function layout ---------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-outlining layout stage (ROADMAP item 3): reorder the .text
/// section by co-execution affinity so that a profiled startup touches as
/// few distinct code pages as possible, per Meta's "Optimizing Function
/// Layout for Mobile Applications" and Chromium's orderfile machinery.
///
/// The stage is a pure planner: it consumes the exact oat::LinkInput the
/// linker is about to place plus the call graph and the runtime profile,
/// and produces a oat::LayoutItem permutation for LinkInput::Layout. The
/// linker's symbolic relocation binding makes the plan safe by
/// construction — every call site resolves against the final layout map,
/// so no rewrite-phase cooperation is needed.
///
/// Pipeline position: GC -> merge -> outline -> **layout** -> link.
///
/// Algorithm: recursive balanced (graph) bisection over a weighted
/// affinity graph.
///
///  * Nodes: one per compiled method, CTO stub and outlined function.
///  * Edges: static call-graph adjacency (weight 1 + min of the endpoint
///    heats) plus every symbolic relocation site (caller -> stub/outlined
///    fn/merge canonical, weight 1 + caller heat). Heat is the method's
///    profiled cycle count.
///  * Solve: split the warm subgraph in two size-balanced halves, refine
///    with deterministic gain-sorted pair swaps to shrink the cross-half
///    affinity weight, recurse on both halves until a half fits a page.
///    Cold nodes (no heat, no warm neighbor) keep their original relative
///    order after the warm block.
///
/// Determinism: every tie breaks on node index, refinement runs a fixed
/// number of passes, and the parallel solver is level-synchronous —
/// each level's subproblems touch disjoint ranges of the order array, so
/// the plan is byte-identical for any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_LAYOUT_LAYOUT_H
#define CALIBRO_LAYOUT_LAYOUT_H

#include "analysis/CallGraph.h"
#include "oat/Linker.h"
#include "profile/Profile.h"
#include "support/ThreadPool.h"

namespace calibro {
namespace layout {

/// Layout-stage configuration.
struct LayoutOptions {
  /// Page granularity the bisection optimizes for (and the cut metric is
  /// reported at). The default matches the 4 KiB pages ART maps OAT text
  /// with; benches use the simulator's smaller page to exercise the
  /// machinery at small scales.
  uint32_t PageSize = 4096;
  /// Deterministic refinement passes per bisection step.
  uint32_t RefinePasses = 8;
  /// Worker threads for the level-synchronous solve (ignored when Pool is
  /// set). 1 = fully serial. The plan is identical for any value.
  uint32_t Threads = 1;
  /// Externally-owned pool (daemon mode); overrides Threads.
  ThreadPool *Pool = nullptr;
  ThreadPool::GroupId PoolGroup = 0;
};

/// One placeable text item with its profile heat.
struct AffinityNode {
  oat::LayoutItem Item;
  uint32_t SizeBytes = 0;
  uint64_t Heat = 0; ///< Profiled cycles (methods; 0 for stubs/outlined).
};

/// Undirected weighted edge; A < B, node indices into AffinityGraph::Nodes.
struct AffinityEdge {
  uint32_t A = 0;
  uint32_t B = 0;
  uint64_t Weight = 0;
};

/// The co-execution affinity graph over one app's placeable items.
struct AffinityGraph {
  std::vector<AffinityNode> Nodes; ///< Node I = legacy plan position I.
  std::vector<AffinityEdge> Edges; ///< Sorted by (A, B), unique.
};

/// Builds the affinity graph for \p In: static call adjacency from \p G
/// weighted with \p P's cycles, plus one edge per symbolic relocation
/// site. Deterministic (ordered accumulation, no hashing on output).
AffinityGraph buildAffinityGraph(const oat::LinkInput &In,
                                 const analysis::CallGraph &G,
                                 const profile::Profile &P);

/// What the solve did, for BuildStats and the bench.
struct LayoutResult {
  std::vector<oat::LayoutItem> Plan; ///< Covers every item exactly once.
  std::size_t Nodes = 0;
  std::size_t Edges = 0;
  std::size_t WarmNodes = 0; ///< Nodes the bisection actually ordered.
  uint64_t CutBefore = 0;    ///< Page-crossing affinity weight, input order.
  uint64_t CutAfter = 0;     ///< Same metric under Plan.
};

/// Runs recursive balanced bisection over \p G and returns the placement
/// plan. Byte-deterministic for any Threads / Pool configuration.
LayoutResult computeLayout(const AffinityGraph &G, const LayoutOptions &Opts);

/// The page-cut metric both CutBefore/CutAfter report: total weight of
/// edges whose endpoints start on different PageSize pages when the nodes
/// are placed in \p Order (with the linker's 16/4 alignment rules).
/// \p Order holds node indices into G.Nodes.
uint64_t affinityCut(const AffinityGraph &G, const std::vector<uint32_t> &Order,
                     uint32_t PageSize);

} // namespace layout
} // namespace calibro

#endif // CALIBRO_LAYOUT_LAYOUT_H
