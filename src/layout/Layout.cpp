//===- layout/Layout.cpp - Profile-driven function layout -------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "layout/Layout.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace calibro;
using namespace calibro::layout;

namespace {

/// Alignment the linker will place \p Kind at (Linker.cpp's rules).
uint32_t alignOf(oat::LayoutItemKind Kind) {
  return Kind == oat::LayoutItemKind::Method ? 16 : 4;
}

} // namespace

AffinityGraph layout::buildAffinityGraph(const oat::LinkInput &In,
                                         const analysis::CallGraph &G,
                                         const profile::Profile &P) {
  AffinityGraph AG;
  AG.Nodes.reserve(In.Methods.size() + In.Stubs.size() + In.Outlined.size());

  // Node order mirrors the legacy plan: methods, stubs, outlined. That
  // makes "node index" and "pre-layout placement position" the same thing,
  // which is what the deterministic tie-breaks key on.
  std::unordered_map<uint32_t, uint32_t> MethodNode; // MethodIdx -> node
  MethodNode.reserve(In.Methods.size());
  for (uint32_t I = 0; I < In.Methods.size(); ++I) {
    const auto &M = In.Methods[I];
    AffinityNode N;
    N.Item = {oat::LayoutItemKind::Method, I};
    N.SizeBytes = static_cast<uint32_t>(M.codeSizeBytes());
    auto It = P.CyclesByMethod.find(M.MethodIdx);
    N.Heat = It == P.CyclesByMethod.end() ? 0 : It->second;
    MethodNode.emplace(M.MethodIdx, static_cast<uint32_t>(AG.Nodes.size()));
    AG.Nodes.push_back(N);
  }
  const uint32_t StubBase = static_cast<uint32_t>(AG.Nodes.size());
  for (uint32_t I = 0; I < In.Stubs.size(); ++I) {
    AffinityNode N;
    N.Item = {oat::LayoutItemKind::Stub, I};
    N.SizeBytes = static_cast<uint32_t>(In.Stubs[I].Code.size() * 4);
    AG.Nodes.push_back(N);
  }
  std::unordered_map<uint32_t, uint32_t> OutNodeById; // OutlinedFunc id
  OutNodeById.reserve(In.Outlined.size());
  for (uint32_t I = 0; I < In.Outlined.size(); ++I) {
    AffinityNode N;
    N.Item = {oat::LayoutItemKind::Outlined, I};
    N.SizeBytes = static_cast<uint32_t>(In.Outlined[I].Code.size() * 4);
    OutNodeById.emplace(In.Outlined[I].Id,
                        static_cast<uint32_t>(AG.Nodes.size()));
    AG.Nodes.push_back(N);
  }

  // Accumulate undirected weights in an ordered map so the emitted edge
  // list never depends on hash iteration order.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> W;
  auto AddEdge = [&](uint32_t A, uint32_t B, uint64_t Weight) {
    if (A == B)
      return;
    if (A > B)
      std::swap(A, B);
    W[{A, B}] += Weight;
  };

  // Static call-graph adjacency: callers and callees that survived GC and
  // merge. Weight scales with how hot the colder endpoint is — a call pair
  // only co-executes as often as its less-frequent side.
  for (uint32_t I = 0; I < In.Methods.size(); ++I) {
    uint32_t Idx = In.Methods[I].MethodIdx;
    if (Idx >= G.Succ.size())
      continue;
    for (uint32_t Callee : G.Succ[Idx]) {
      auto It = MethodNode.find(Callee);
      if (It == MethodNode.end())
        continue;
      AddEdge(I, It->second,
              1 + std::min(AG.Nodes[I].Heat, AG.Nodes[It->second].Heat));
    }
  }

  // Symbolic relocation sites: each `bl` to a stub / outlined function /
  // merge canonical is a co-execution certainty whenever the caller runs,
  // so it carries the caller's full heat.
  auto AddRelocEdges = [&](uint32_t FromNode,
                           const std::vector<codegen::Relocation> &Relocs) {
    for (const auto &R : Relocs) {
      switch (R.Kind) {
      case codegen::RelocKind::CtoStub:
        if (R.TargetId < In.Stubs.size())
          AddEdge(FromNode, StubBase + R.TargetId,
                  1 + AG.Nodes[FromNode].Heat);
        break;
      case codegen::RelocKind::OutlinedFunc: {
        auto It = OutNodeById.find(R.TargetId);
        if (It != OutNodeById.end())
          AddEdge(FromNode, It->second, 1 + AG.Nodes[FromNode].Heat);
        break;
      }
      case codegen::RelocKind::MergedBody: {
        if (R.TargetId >= In.MergeThunks.size())
          break;
        auto It = MethodNode.find(In.MergeThunks[R.TargetId].CanonMethodIdx);
        if (It != MethodNode.end())
          AddEdge(FromNode, It->second, 1 + AG.Nodes[FromNode].Heat);
        break;
      }
      default:
        break;
      }
    }
  };
  for (uint32_t I = 0; I < In.Methods.size(); ++I)
    AddRelocEdges(I, In.Methods[I].Relocs);
  for (uint32_t I = 0; I < In.Outlined.size(); ++I)
    AddRelocEdges(OutNodeById[In.Outlined[I].Id], In.Outlined[I].Relocs);

  AG.Edges.reserve(W.size());
  for (const auto &[Key, Weight] : W)
    AG.Edges.push_back({Key.first, Key.second, Weight});
  return AG;
}

uint64_t layout::affinityCut(const AffinityGraph &G,
                             const std::vector<uint32_t> &Order,
                             uint32_t PageSize) {
  if (PageSize == 0 || G.Nodes.empty())
    return 0;
  // Simulate the linker's placement over Order and record each node's
  // starting page.
  std::vector<uint64_t> Page(G.Nodes.size(), 0);
  uint64_t Off = 0;
  for (uint32_t N : Order) {
    Off = alignTo(Off, alignOf(G.Nodes[N].Item.Kind));
    Page[N] = Off / PageSize;
    Off += G.Nodes[N].SizeBytes;
  }
  uint64_t Cut = 0;
  for (const AffinityEdge &E : G.Edges)
    if (Page[E.A] != Page[E.B])
      Cut += E.Weight;
  return Cut;
}

namespace {

/// Compressed adjacency of the affinity graph (both directions of every
/// undirected edge), for O(degree) gain computation.
struct Adjacency {
  std::vector<uint32_t> Start; // Nodes.size() + 1
  std::vector<uint32_t> Nbr;
  std::vector<uint64_t> Wt;

  explicit Adjacency(const AffinityGraph &G) {
    std::vector<uint32_t> Deg(G.Nodes.size(), 0);
    for (const AffinityEdge &E : G.Edges) {
      ++Deg[E.A];
      ++Deg[E.B];
    }
    Start.assign(G.Nodes.size() + 1, 0);
    for (std::size_t I = 0; I < Deg.size(); ++I)
      Start[I + 1] = Start[I] + Deg[I];
    Nbr.resize(Start.back());
    Wt.resize(Start.back());
    std::vector<uint32_t> Fill(G.Nodes.size(), 0);
    for (const AffinityEdge &E : G.Edges) {
      uint32_t PA = Start[E.A] + Fill[E.A]++;
      uint32_t PB = Start[E.B] + Fill[E.B]++;
      Nbr[PA] = E.B;
      Wt[PA] = E.Weight;
      Nbr[PB] = E.A;
      Wt[PB] = E.Weight;
    }
  }
};

/// One open subproblem: Order[Begin, End) is to be bisected.
struct Range {
  uint32_t Begin;
  uint32_t End;
};

/// State shared by all subproblems of one solve. Ranges are disjoint, and
/// every per-node array cell is owned by exactly one range per level, so
/// the parallel fan-out is race-free and order-independent.
struct Solver {
  const AffinityGraph &G;
  const Adjacency Adj;
  const LayoutOptions &Opts;
  std::vector<uint32_t> Order; ///< Node indices, permuted in place.
  std::vector<uint32_t> Pos;   ///< Pos[node] = index into Order.
  std::vector<uint8_t> Side;   ///< Current bisection side of each node.

  Solver(const AffinityGraph &Gr, const LayoutOptions &O,
         std::vector<uint32_t> Initial)
      : G(Gr), Adj(Gr), Opts(O), Order(std::move(Initial)),
        Pos(Gr.Nodes.size(), 0), Side(Gr.Nodes.size(), 0) {
    for (uint32_t I = 0; I < Order.size(); ++I)
      Pos[Order[I]] = I;
  }

  uint64_t rangeBytes(const Range &R) const {
    uint64_t Total = 0;
    for (uint32_t I = R.Begin; I < R.End; ++I)
      Total += G.Nodes[Order[I]].SizeBytes;
    return Total;
  }

  /// Signed gain of moving \p N to the other side: affinity to the far
  /// side minus affinity to its own side, neighbors outside [B, E) ignored.
  int64_t gainOf(uint32_t N, uint32_t B, uint32_t E) const {
    int64_t Gain = 0;
    for (uint32_t P = Adj.Start[N]; P < Adj.Start[N + 1]; ++P) {
      uint32_t M = Adj.Nbr[P];
      if (Pos[M] < B || Pos[M] >= E)
        continue;
      int64_t Wgt = static_cast<int64_t>(Adj.Wt[P]);
      Gain += Side[M] != Side[N] ? Wgt : -Wgt;
    }
    return Gain;
  }

  /// Bisects Order[R.Begin, R.End): assigns sides, refines, and rewrites
  /// the range so side 0 precedes side 1. Returns the split point.
  uint32_t bisect(const Range &R) {
    const uint32_t B = R.Begin, E = R.End;
    // Initial split: walk the current (deterministic) order and cut at
    // half the byte size, keeping both sides non-empty.
    const uint64_t Total = rangeBytes(R);
    uint64_t Acc = 0;
    uint32_t Mid = B + 1;
    for (uint32_t I = B; I + 1 < E; ++I) {
      Acc += G.Nodes[Order[I]].SizeBytes;
      if (Acc * 2 >= Total) {
        Mid = I + 1;
        break;
      }
      Mid = I + 2;
    }
    // A trailing node heavier than the rest of the range leaves the loop
    // with Mid == E; clamp so both sides stay non-empty — an empty side
    // would hand solve() its own range back and never terminate.
    Mid = std::min(Mid, E - 1);
    for (uint32_t I = B; I < E; ++I)
      Side[Order[I]] = I >= Mid;

    // Refinement: fixed passes of gain-sorted pair swaps. Swapping one
    // node from each side keeps the node-count split exactly, so the
    // recursion always shrinks. Ties break on node index; a pass with no
    // profitable pair ends refinement.
    std::vector<std::pair<int64_t, uint32_t>> C0, C1; // (-gain, node)
    for (uint32_t Pass = 0; Pass < Opts.RefinePasses; ++Pass) {
      C0.clear();
      C1.clear();
      for (uint32_t I = B; I < E; ++I) {
        uint32_t N = Order[I];
        (Side[N] ? C1 : C0).push_back({-gainOf(N, B, E), N});
      }
      std::sort(C0.begin(), C0.end());
      std::sort(C1.begin(), C1.end());
      bool Swapped = false;
      for (std::size_t K = 0; K < C0.size() && K < C1.size(); ++K) {
        // Combined gain overcounts by 2w when the pair is itself an edge;
        // requiring a strictly positive sum keeps every accepted swap at
        // worst neutral, so refinement can only reduce the cut estimate.
        if (-(C0[K].first + C1[K].first) <= 0)
          break;
        Side[C0[K].second] = 1;
        Side[C1[K].second] = 0;
        Swapped = true;
      }
      if (!Swapped)
        break;
    }

    // Rewrite the range: side 0 first, each side keeping its previous
    // relative order (stable, so the result is deterministic).
    std::vector<uint32_t> Tmp;
    Tmp.reserve(E - B);
    for (uint32_t I = B; I < E; ++I)
      if (!Side[Order[I]])
        Tmp.push_back(Order[I]);
    uint32_t NewMid = B + static_cast<uint32_t>(Tmp.size());
    for (uint32_t I = B; I < E; ++I)
      if (Side[Order[I]])
        Tmp.push_back(Order[I]);
    for (uint32_t I = B; I < E; ++I) {
      Order[I] = Tmp[I - B];
      Pos[Order[I]] = I;
    }
    return NewMid;
  }

  /// Full recursive solve over Order[R0): level-synchronous so independent
  /// subproblems fan out on the pool while the result stays identical to
  /// the serial recursion.
  void solve(Range R0) {
    std::vector<Range> Level{R0};
    std::vector<uint32_t> Mids;
    while (!Level.empty()) {
      // A range stops splitting once it fits one page or two nodes —
      // past that the page-cut metric no longer sees intra-range order.
      std::vector<Range> Work;
      for (const Range &R : Level)
        if (R.End - R.Begin > 2 && rangeBytes(R) > Opts.PageSize)
          Work.push_back(R);
      if (Work.empty())
        break;
      Mids.assign(Work.size(), 0);
      auto RunOne = [&](std::size_t I) { Mids[I] = bisect(Work[I]); };
      if (Opts.Pool) {
        Opts.Pool->parallelForIn(Opts.PoolGroup, Work.size(), RunOne);
      } else if (Opts.Threads > 1 && Work.size() > 1) {
        ThreadPool Pool(Opts.Threads);
        Pool.parallelFor(Work.size(), RunOne);
      } else {
        for (std::size_t I = 0; I < Work.size(); ++I)
          RunOne(I);
      }
      Level.clear();
      for (std::size_t I = 0; I < Work.size(); ++I) {
        Level.push_back({Work[I].Begin, Mids[I]});
        Level.push_back({Mids[I], Work[I].End});
      }
    }
  }
};

} // namespace

LayoutResult layout::computeLayout(const AffinityGraph &G,
                                   const LayoutOptions &Opts) {
  LayoutResult R;
  R.Nodes = G.Nodes.size();
  R.Edges = G.Edges.size();
  const uint32_t N = static_cast<uint32_t>(G.Nodes.size());

  // Warm set: profiled nodes plus anything directly affine to one (the
  // stubs and outlined bodies a hot method calls into). Everything else is
  // cold and keeps its original relative order after the warm block — a
  // cold function can't cost a startup page fault, but moving it could
  // perturb otherwise-identical images for no gain.
  std::vector<uint8_t> Warm(N, 0);
  for (uint32_t I = 0; I < N; ++I)
    Warm[I] = G.Nodes[I].Heat > 0;
  for (const AffinityEdge &E : G.Edges) {
    if (G.Nodes[E.A].Heat > 0)
      Warm[E.B] = 1;
    if (G.Nodes[E.B].Heat > 0)
      Warm[E.A] = 1;
  }

  std::vector<uint32_t> Initial;
  Initial.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    if (Warm[I])
      Initial.push_back(I);
  R.WarmNodes = Initial.size();
  const uint32_t WarmCount = static_cast<uint32_t>(Initial.size());
  for (uint32_t I = 0; I < N; ++I)
    if (!Warm[I])
      Initial.push_back(I);

  std::vector<uint32_t> IdentityOrder(N);
  for (uint32_t I = 0; I < N; ++I)
    IdentityOrder[I] = I;
  R.CutBefore = affinityCut(G, IdentityOrder, Opts.PageSize);

  Solver S(G, Opts, std::move(Initial));
  S.solve({0, WarmCount});

  R.CutAfter = affinityCut(G, S.Order, Opts.PageSize);
  // The bisection minimizes an estimate; if the realized page cut did not
  // improve, fall back to the identity order — the stage must never make
  // layout worse than not running at all.
  const std::vector<uint32_t> &Final =
      R.CutAfter <= R.CutBefore ? S.Order : IdentityOrder;
  if (&Final == &IdentityOrder)
    R.CutAfter = R.CutBefore;

  R.Plan.reserve(N);
  for (uint32_t I : Final)
    R.Plan.push_back(G.Nodes[I].Item);
  return R;
}
