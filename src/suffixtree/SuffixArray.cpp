//===- suffixtree/SuffixArray.cpp - SA+LCP repeat detection ----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "suffixtree/SuffixArray.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace calibro;
using namespace calibro::st;

namespace {

constexpr Symbol Sentinel = ~uint64_t(0);

} // namespace

SuffixArray::SuffixArray(std::vector<Symbol> Text) : Txt(std::move(Text)) {
  assert(std::find(Txt.begin(), Txt.end(), Sentinel) == Txt.end() &&
         "input sequence may not contain the reserved sentinel symbol");
  Txt.push_back(Sentinel);
  uint32_t N = static_cast<uint32_t>(Txt.size());

  // Prefix-doubling construction. Initial ranks come from sorting the
  // symbols themselves (the alphabet is sparse 64-bit).
  Sa.resize(N);
  std::iota(Sa.begin(), Sa.end(), 0);
  std::vector<uint32_t> Rank(N), Tmp(N);
  {
    std::sort(Sa.begin(), Sa.end(),
              [&](uint32_t A, uint32_t B) { return Txt[A] < Txt[B]; });
    uint32_t R = 0;
    Rank[Sa[0]] = 0;
    for (uint32_t I = 1; I < N; ++I) {
      if (Txt[Sa[I]] != Txt[Sa[I - 1]])
        ++R;
      Rank[Sa[I]] = R;
    }
  }
  for (uint32_t K = 1; K < N; K *= 2) {
    auto Key = [&](uint32_t S) {
      uint64_t Hi = Rank[S];
      uint64_t Lo = S + K < N ? Rank[S + K] + 1 : 0;
      return (Hi << 32) | Lo;
    };
    std::sort(Sa.begin(), Sa.end(),
              [&](uint32_t A, uint32_t B) { return Key(A) < Key(B); });
    Tmp[Sa[0]] = 0;
    for (uint32_t I = 1; I < N; ++I)
      Tmp[Sa[I]] = Tmp[Sa[I - 1]] + (Key(Sa[I - 1]) != Key(Sa[I]) ? 1 : 0);
    Rank = Tmp;
    if (Rank[Sa[N - 1]] == N - 1)
      break;
  }

  // Kasai's LCP: Lcp[I] = lcp(SA[I-1], SA[I]); Lcp[0] = 0.
  Lcp.assign(N, 0);
  {
    std::vector<uint32_t> Inv(N);
    for (uint32_t I = 0; I < N; ++I)
      Inv[Sa[I]] = I;
    uint32_t H = 0;
    for (uint32_t S = 0; S < N; ++S) {
      if (Inv[S] == 0) {
        H = 0;
        continue;
      }
      uint32_t Prev = Sa[Inv[S] - 1];
      while (S + H < N && Prev + H < N && Txt[S + H] == Txt[Prev + H])
        ++H;
      Lcp[Inv[S]] = H;
      if (H)
        --H;
    }
  }

  // Enumerate LCP intervals (the suffix tree's internal nodes) with the
  // classic stack sweep (Abouelhoda et al.).
  struct Open {
    uint32_t LcpVal;
    uint32_t Lo;
  };
  std::vector<Open> Stack;
  Stack.push_back({0, 0});
  for (uint32_t I = 1; I <= N; ++I) {
    uint32_t Cur = I < N ? Lcp[I] : 0;
    uint32_t Lo = I - 1;
    while (Stack.back().LcpVal > Cur) {
      Open Top = Stack.back();
      Stack.pop_back();
      // Interval [Top.Lo, I-1] with repeat length Top.LcpVal. Its parent
      // is either the enclosing interval still on the stack or the one
      // about to be opened with LCP value Cur, whichever is deeper.
      uint32_t ParentLen = std::max(Cur, Stack.back().LcpVal);
      Intervals.push_back({Top.Lo, I - 1, Top.LcpVal, ParentLen});
      Lo = Top.Lo;
    }
    if (Cur > Stack.back().LcpVal)
      Stack.push_back({Cur, Lo});
  }
}

void SuffixArray::forEachRepeat(
    uint32_t MinLen, uint32_t MaxLen, uint32_t MinCount,
    const std::function<void(const RepeatInfo &)> &Fn) const {
  assert(MinCount >= 2 && "a repeat needs at least two occurrences");
  for (std::size_t K = 0; K < Intervals.size(); ++K) {
    const Interval &IV = Intervals[K];
    uint32_t Count = IV.Hi - IV.Lo + 1;
    if (Count < MinCount || IV.Len < MinLen)
      continue;
    // Clamped-candidate dedup (mirrors SuffixTree::forEachRepeat): the
    // parent interval reports the same length-MaxLen prefix over a
    // superset of rows, so this interval would be a duplicate.
    if (IV.ParentLen >= MaxLen)
      continue;
    RepeatInfo R;
    R.Node = static_cast<int32_t>(K);
    R.Length = IV.Len < MaxLen ? IV.Len : MaxLen;
    R.Count = Count;
    Fn(R);
  }
}

std::vector<uint32_t> SuffixArray::positionsOf(int32_t Interval) const {
  const auto &IV = Intervals[static_cast<std::size_t>(Interval)];
  std::vector<uint32_t> Positions(Sa.begin() + IV.Lo, Sa.begin() + IV.Hi + 1);
  std::sort(Positions.begin(), Positions.end());
  return Positions;
}
