//===- suffixtree/SuffixArray.cpp - SA+LCP repeat detection ----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "suffixtree/SuffixArray.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace calibro;
using namespace calibro::st;

namespace {

/// Maps the sparse 64-bit symbols of \p Txt to dense uint32 ranks via an
/// LSD radix sort (4 x 16-bit passes, passes whose key bits are all zero
/// are skipped — instruction words use only the low 32 bits). Position
/// Txt.size() is the virtual sentinel: rank 0, strictly smaller than every
/// real symbol's rank (those start at 1). No reserved symbol value exists,
/// so ANY uint64 sequence is legal input — the old "input may not contain
/// ~0" precondition is gone by construction.
///
/// Returns the dense per-position ranks (size Txt.size() + 1) and sets
/// \p AlphabetOut to one past the largest rank.
std::vector<uint32_t> compactRanks(const std::vector<Symbol> &Txt,
                                   uint32_t &AlphabetOut) {
  const uint32_t n = static_cast<uint32_t>(Txt.size());
  std::vector<uint32_t> Idx(n), Tmp(n);
  std::iota(Idx.begin(), Idx.end(), 0);
  std::vector<uint32_t> Cnt(1u << 16);
  for (int Pass = 0; Pass < 4; ++Pass) {
    const int Shift = Pass * 16;
    bool AnyBits = Pass == 0;
    for (uint32_t I = 0; I < n && !AnyBits; ++I)
      AnyBits = ((Txt[I] >> Shift) & 0xffff) != 0;
    if (!AnyBits)
      continue;
    std::fill(Cnt.begin(), Cnt.end(), 0);
    for (uint32_t I = 0; I < n; ++I)
      ++Cnt[(Txt[I] >> Shift) & 0xffff];
    uint32_t Sum = 0;
    for (uint32_t &C : Cnt) {
      uint32_t T = C;
      C = Sum;
      Sum += T;
    }
    for (uint32_t I = 0; I < n; ++I)
      Tmp[Cnt[(Txt[Idx[I]] >> Shift) & 0xffff]++] = Idx[I];
    Idx.swap(Tmp);
  }
  std::vector<uint32_t> Rank(n + 1);
  uint32_t R = 0;
  for (uint32_t I = 0; I < n; ++I) {
    if (I > 0 && Txt[Idx[I]] != Txt[Idx[I - 1]])
      ++R;
    Rank[Idx[I]] = R + 1;
  }
  Rank[n] = 0; // The virtual sentinel suffix.
  AlphabetOut = n == 0 ? 1 : R + 2;
  return Rank;
}

} // namespace

SuffixArray::SuffixArray(std::vector<Symbol> Text)
    : Txt(std::move(Text)), TextLen(Txt.size()) {
  const uint32_t n = static_cast<uint32_t>(Txt.size());
  const uint32_t N = n + 1; // Plus the virtual sentinel position n.

  // Prefix doubling over dense ranks with counting (radix) sorts: O(n) per
  // round, O(log n) rounds, O(n log n) total — and uint32 working arrays
  // instead of 64-bit sort keys.
  uint32_t Alphabet = 0;
  std::vector<uint32_t> Rank = compactRanks(Txt, Alphabet);
  // Equal initial ranks <=> equal symbols, so Kasai below can compare these
  // dense uint32 ranks instead of the raw 64-bit symbols — half the working
  // set on the LCP scan. Copied before prefix doubling coarsens Rank.
  std::vector<uint32_t> Rank0(Rank.begin(), Rank.begin() + n);

  Sa.resize(N);
  {
    std::vector<uint32_t> Cnt(Alphabet, 0);
    for (uint32_t R : Rank)
      ++Cnt[R];
    uint32_t Sum = 0;
    for (uint32_t &C : Cnt) {
      uint32_t T = C;
      C = Sum;
      Sum += T;
    }
    for (uint32_t I = 0; I < N; ++I)
      Sa[Cnt[Rank[I]]++] = I;
  }
  {
    std::vector<uint32_t> Tmp(N), NewRank(N), Cnt;
    for (uint32_t K = 1; K < N; K *= 2) {
      // Order by the second key (Rank[I + K], out-of-range smallest):
      // positions I >= N - K have no second key and come first; the rest
      // follow in the current suffix-array order, shifted by K. This keeps
      // the sort stable in the second key, so the subsequent counting sort
      // by the first key yields the (first, second) lexicographic order.
      uint32_t P = 0;
      for (uint32_t I = N - K; I < N; ++I)
        Tmp[P++] = I;
      for (uint32_t I = 0; I < N; ++I)
        if (Sa[I] >= K)
          Tmp[P++] = Sa[I] - K;
      // Stable counting sort by the first key.
      Cnt.assign(Alphabet, 0);
      for (uint32_t I = 0; I < N; ++I)
        ++Cnt[Rank[I]];
      uint32_t Sum = 0;
      for (uint32_t &C : Cnt) {
        uint32_t T = C;
        C = Sum;
        Sum += T;
      }
      for (uint32_t I = 0; I < N; ++I)
        Sa[Cnt[Rank[Tmp[I]]]++] = Tmp[I];
      // Re-rank: adjacent rows with equal (first, second) keys share a rank.
      auto Second = [&](uint32_t S) {
        return S + K < N ? Rank[S + K] + 1 : 0;
      };
      NewRank[Sa[0]] = 0;
      uint32_t R = 0;
      for (uint32_t I = 1; I < N; ++I) {
        uint32_t A = Sa[I - 1], B = Sa[I];
        R += !(Rank[A] == Rank[B] && Second(A) == Second(B));
        NewRank[B] = R;
      }
      Rank.swap(NewRank);
      Alphabet = R + 2;
      if (R == N - 1)
        break;
    }
  }

  // Kasai's LCP: Lcp[I] = lcp(SA[I-1], SA[I]); Lcp[0] = 0. Comparing
  // initial dense ranks is exact: equal ranks iff equal symbols, and both
  // positions are < n (the sentinel suffix never has a positive LCP with
  // any neighbour — its rank is unique). The array is construction scratch
  // only: intervals are enumerated right below and it is freed with the
  // constructor frame.
  std::vector<uint32_t> Lcp(N, 0);
  {
    std::vector<uint32_t> Inv(N);
    for (uint32_t I = 0; I < N; ++I)
      Inv[Sa[I]] = I;
    uint32_t H = 0;
    for (uint32_t S = 0; S < N; ++S) {
      if (Inv[S] == 0) {
        H = 0;
        continue;
      }
      uint32_t Prev = Sa[Inv[S] - 1];
      while (S + H < n && Prev + H < n && Rank0[S + H] == Rank0[Prev + H])
        ++H;
      Lcp[Inv[S]] = H;
      if (H)
        --H;
    }
  }

  // Enumerate LCP intervals (the suffix tree's internal nodes) with the
  // classic stack sweep (Abouelhoda et al.).
  struct Open {
    uint32_t LcpVal;
    uint32_t Lo;
  };
  std::vector<Open> Stack;
  Stack.push_back({0, 0});
  for (uint32_t I = 1; I <= N; ++I) {
    uint32_t Cur = I < N ? Lcp[I] : 0;
    uint32_t Lo = I - 1;
    while (Stack.back().LcpVal > Cur) {
      Open Top = Stack.back();
      Stack.pop_back();
      // Interval [Top.Lo, I-1] with repeat length Top.LcpVal. Its parent
      // is either the enclosing interval still on the stack or the one
      // about to be opened with LCP value Cur, whichever is deeper.
      uint32_t ParentLen = std::max(Cur, Stack.back().LcpVal);
      Intervals.push_back({Top.Lo, I - 1, Top.LcpVal, ParentLen});
      Lo = Top.Lo;
    }
    if (Cur > Stack.back().LcpVal)
      Stack.push_back({Cur, Lo});
  }
}

void SuffixArray::forEachRepeat(
    uint32_t MinLen, uint32_t MaxLen, uint32_t MinCount,
    const std::function<void(const RepeatInfo &)> &Fn) const {
  assert(MinCount >= 2 && "a repeat needs at least two occurrences");
  for (std::size_t K = 0; K < Intervals.size(); ++K) {
    const Interval &IV = Intervals[K];
    uint32_t Count = IV.Hi - IV.Lo + 1;
    if (Count < MinCount || IV.Len < MinLen)
      continue;
    // Clamped-candidate dedup (mirrors SuffixTree::forEachRepeat): the
    // parent interval reports the same length-MaxLen prefix over a
    // superset of rows, so this interval would be a duplicate.
    if (IV.ParentLen >= MaxLen)
      continue;
    RepeatInfo R;
    R.Node = static_cast<int32_t>(K);
    R.Length = IV.Len < MaxLen ? IV.Len : MaxLen;
    R.Count = Count;
    Fn(R);
  }
}

std::vector<uint32_t> SuffixArray::positionsOf(int32_t Interval) const {
  std::vector<uint32_t> Positions;
  positionsOf(Interval, Positions);
  return Positions;
}

void SuffixArray::positionsOf(int32_t Interval,
                              std::vector<uint32_t> &Out) const {
  const auto &IV = Intervals[static_cast<std::size_t>(Interval)];
  Out.assign(Sa.begin() + IV.Lo, Sa.begin() + IV.Hi + 1);
  std::sort(Out.begin(), Out.end());
}

std::size_t SuffixArray::workingSetBytes() const {
  return Txt.capacity() * sizeof(Symbol) + Sa.capacity() * sizeof(uint32_t) +
         Intervals.capacity() * sizeof(Interval);
}

void SuffixArray::releaseWorkingSet() {
  std::vector<Symbol>().swap(Txt);
}
