//===- suffixtree/SuffixArray.cpp - SA+LCP repeat detection ----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "suffixtree/SuffixArray.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace calibro;
using namespace calibro::st;

namespace {

/// Maps the sparse 64-bit symbols of \p Txt to dense uint32 ranks via an
/// LSD radix sort (4 x 16-bit passes, passes whose key bits are all zero
/// are skipped — instruction words use only the low 32 bits). Position
/// Txt.size() is the virtual sentinel: rank 0, strictly smaller than every
/// real symbol's rank (those start at 1). No reserved symbol value exists,
/// so ANY uint64 sequence is legal input — the old "input may not contain
/// ~0" precondition is gone by construction.
///
/// Returns the dense per-position ranks (size Txt.size() + 1, allocated
/// from \p A) and sets \p AlphabetOut to one past the largest rank.
std::span<uint32_t> compactRanks(std::span<const Symbol> Txt,
                                 uint32_t &AlphabetOut, support::Arena &A) {
  const uint32_t n = static_cast<uint32_t>(Txt.size());
  std::span<uint32_t> Idx = A.allocSpan<uint32_t>(n);
  std::span<uint32_t> Tmp = A.allocSpan<uint32_t>(n);
  std::span<uint32_t> Cnt = A.allocSpan<uint32_t>(1u << 16);
  // One OR over the text decides up front which passes carry any key bits
  // (instruction words use only the low 32, so passes 2 and 3 usually
  // drop out) — cheaper than probing per pass.
  uint64_t OrAll = 0;
  for (uint32_t I = 0; I < n; ++I)
    OrAll |= Txt[I];
  uint32_t *Src = Idx.data(), *Dst = Tmp.data();
  bool Seeded = false;
  for (int Pass = 0; Pass < 4; ++Pass) {
    const int Shift = Pass * 16;
    if (Pass > 0 && ((OrAll >> Shift) & 0xffff) == 0)
      continue;
    std::fill(Cnt.begin(), Cnt.end(), 0);
    for (uint32_t I = 0; I < n; ++I)
      ++Cnt[(Txt[I] >> Shift) & 0xffff];
    uint32_t Sum = 0;
    for (uint32_t &C : Cnt) {
      uint32_t T = C;
      C = Sum;
      Sum += T;
    }
    if (!Seeded) {
      // First active pass seeds the order directly from the text; no iota
      // pass, no indirection through a not-yet-meaningful index array.
      for (uint32_t I = 0; I < n; ++I)
        Dst[Cnt[(Txt[I] >> Shift) & 0xffff]++] = I;
      Seeded = true;
    } else {
      for (uint32_t I = 0; I < n; ++I)
        Dst[Cnt[(Txt[Src[I]] >> Shift) & 0xffff]++] = Src[I];
    }
    std::swap(Src, Dst);
  }
  std::span<uint32_t> Rank = A.allocSpan<uint32_t>(n + 1);
  uint32_t R = 0;
  for (uint32_t I = 0; I < n; ++I) {
    if (I > 0 && Txt[Src[I]] != Txt[Src[I - 1]])
      ++R;
    Rank[Src[I]] = R + 1;
  }
  Rank[n] = 0; // The virtual sentinel suffix.
  AlphabetOut = n == 0 ? 1 : R + 2;
  return Rank;
}

/// Empty suffix-array slot during induced sorting. Positions are < N, so
/// the all-ones pattern can never collide with a real entry.
constexpr uint32_t SaEmpty = ~uint32_t(0);

/// SA-IS (Nong, Zhang, Chan: "Two Efficient Algorithms for Linear Time
/// Suffix Array Construction"): linear-time suffix-array construction by
/// induced sorting.
///
/// Preconditions: N >= 1, all values of S are < K, and S[N - 1] is the
/// unique smallest symbol (the compacted virtual sentinel guarantees
/// exactly this). All workspace comes from \p A; nothing is freed here —
/// the caller resets the arena after construction.
void saIs(const uint32_t *S, uint32_t N, uint32_t K, uint32_t *Sa,
          support::Arena &A) {
  if (N == 1) {
    Sa[0] = 0;
    return;
  }

  // Classify L/S-types right to left and fuse the type bit into the symbol:
  // SP[I] = S[I] * 2 + type, type 1 = S-type (suffix smaller than its right
  // neighbour; the sentinel is S-type by definition). One random read of SP
  // then yields both the symbol and the type during the induce scans — the
  // separate type-array lookup was half their cache misses.
  //
  // Bucketing directly on SP (2K buckets) places every suffix exactly where
  // symbol-bucketing would: within one symbol's bucket the L-suffixes form
  // the head and the S-suffixes the tail of the final suffix order, so the
  // (c, L) sub-bucket start is the c bucket start and the (c, S) sub-bucket
  // end is the c bucket end.
  std::span<uint32_t> SP = A.allocSpan<uint32_t>(N);
  SP[N - 1] = S[N - 1] * 2 + 1;
  for (uint32_t I = N - 1; I-- > 0;)
    SP[I] = S[I] * 2 +
            (S[I] < S[I + 1] || (S[I] == S[I + 1] && (SP[I + 1] & 1)));
  auto IsLms = [&](uint32_t I) {
    return I > 0 && (SP[I] & 1) && !(SP[I - 1] & 1);
  };

  // Packed-symbol histogram + a bucket cursor array, shared by every pass.
  std::span<uint32_t> Cnt = A.allocSpan<uint32_t>(2 * K);
  std::span<uint32_t> Bkt = A.allocSpan<uint32_t>(2 * K);
  std::fill(Cnt.begin(), Cnt.end(), 0);
  for (uint32_t I = 0; I < N; ++I)
    ++Cnt[SP[I]];
  auto BucketEnds = [&] {
    uint32_t Sum = 0;
    for (uint32_t C = 0; C < 2 * K; ++C) {
      Sum += Cnt[C];
      Bkt[C] = Sum;
    }
  };
  auto BucketStarts = [&] {
    uint32_t Sum = 0;
    for (uint32_t C = 0; C < 2 * K; ++C) {
      Bkt[C] = Sum;
      Sum += Cnt[C];
    }
  };

  // Induce L-suffixes left to right from bucket starts, then S-suffixes
  // right to left from bucket ends. After this, every suffix occupies
  // exactly one slot.
  auto Induce = [&] {
    BucketStarts();
    for (uint32_t I = 0; I < N; ++I) {
      uint32_t J = Sa[I];
      if (J == SaEmpty || J == 0)
        continue;
      uint32_t P = SP[J - 1];
      if (!(P & 1))
        Sa[Bkt[P]++] = J - 1;
    }
    BucketEnds();
    for (uint32_t I = N; I-- > 0;) {
      uint32_t J = Sa[I];
      if (J == SaEmpty || J == 0)
        continue;
      uint32_t P = SP[J - 1];
      if (P & 1)
        Sa[--Bkt[P]] = J - 1;
    }
  };

  // Stage 1: drop the LMS suffixes at their bucket ends in arbitrary order
  // and induce once — this sorts the LMS *substrings*.
  std::fill(Sa, Sa + N, SaEmpty);
  BucketEnds();
  for (uint32_t I = 1; I < N; ++I)
    if (IsLms(I))
      Sa[--Bkt[SP[I]]] = I;
  Induce();

  // Compact the LMS positions out of Sa; their order is now the sorted
  // order of their LMS substrings.
  uint32_t NumLms = 0;
  for (uint32_t I = 0; I < N; ++I)
    if (IsLms(Sa[I]))
      Sa[NumLms++] = Sa[I];

  // Stage 2: name each LMS substring by rank; equal substrings share a
  // name. An LMS substring runs from its LMS position up to AND including
  // the next LMS position. Comparing packed symbols compares symbol and
  // type at once.
  std::span<uint32_t> SortedLms = A.allocSpan<uint32_t>(NumLms);
  std::copy(Sa, Sa + NumLms, SortedLms.begin());
  std::span<uint32_t> NameOf = A.allocSpan<uint32_t>(N);
  auto LmsEqual = [&](uint32_t PA, uint32_t PB) {
    if (PA == N - 1 || PB == N - 1)
      return false; // The sentinel's substring is unique by construction.
    for (uint32_t D = 0;; ++D) {
      if (SP[PA + D] != SP[PB + D])
        return false;
      if (D > 0 && (IsLms(PA + D) || IsLms(PB + D)))
        return IsLms(PA + D) && IsLms(PB + D);
    }
  };
  uint32_t Names = 0;
  for (uint32_t R = 0; R < NumLms; ++R) {
    if (R > 0 && !LmsEqual(SortedLms[R - 1], SortedLms[R]))
      ++Names;
    NameOf[SortedLms[R]] = Names;
  }
  const uint32_t NumNames = NumLms ? Names + 1 : 0;

  // The reduced string: LMS names in text order. Its last character is the
  // sentinel's name 0 — unique smallest, so the recursion's precondition
  // holds at every level.
  std::span<uint32_t> LmsPos = A.allocSpan<uint32_t>(NumLms);
  std::span<uint32_t> Reduced = A.allocSpan<uint32_t>(NumLms);
  {
    uint32_t W = 0;
    for (uint32_t I = 1; I < N; ++I)
      if (IsLms(I)) {
        LmsPos[W] = I;
        Reduced[W] = NameOf[I];
        ++W;
      }
  }

  // Sort the LMS *suffixes*: directly when every name is unique, otherwise
  // by recursing on the reduced string (at most half the length).
  std::span<uint32_t> SaLms = A.allocSpan<uint32_t>(NumLms);
  if (NumNames == NumLms) {
    for (uint32_t R = 0; R < NumLms; ++R)
      SaLms[Reduced[R]] = R;
  } else {
    saIs(Reduced.data(), NumLms, NumNames, SaLms.data(), A);
  }

  
  // Stage 3: seed the buckets with the LMS suffixes in their final sorted
  // order (filled right to left so bucket ends stay stable) and induce once
  // more — the result is the complete suffix array.
  std::fill(Sa, Sa + N, SaEmpty);
  BucketEnds();
  for (uint32_t R = NumLms; R-- > 0;) {
    uint32_t P = LmsPos[SaLms[R]];
    Sa[--Bkt[SP[P]]] = P;
  }
  Induce();

}

/// Prefix doubling over already-compacted dense ranks, writing the full
/// N-entry suffix array into \p Sa. Identical algorithm to the
/// prefixDoublingSuffixArray oracle below (which now delegates here) —
/// counting-sort doubling, O(n) per round, early exit once every rank is
/// unique. \p Rank0 is read-only (build() still needs it for Kasai); all
/// workspace, including the mutable rank copy, comes from \p A.
void prefixDoubleFromRanks(const uint32_t *Rank0, uint32_t N,
                           uint32_t Alphabet, uint32_t *Sa,
                           support::Arena &A) {
  std::span<uint32_t> Rank = A.allocSpan<uint32_t>(N);
  std::copy(Rank0, Rank0 + N, Rank.begin());
  std::span<uint32_t> Tmp = A.allocSpan<uint32_t>(N);
  std::span<uint32_t> NewRank = A.allocSpan<uint32_t>(N);
  // Re-ranking can widen the alphabet up to N + 1, so size the histogram
  // for the worst round once instead of per round.
  std::span<uint32_t> Cnt = A.allocSpan<uint32_t>(N + 2);

  // Seed: counting sort of the single-symbol ranks.
  std::fill(Cnt.begin(), Cnt.begin() + Alphabet, 0);
  for (uint32_t I = 0; I < N; ++I)
    ++Cnt[Rank[I]];
  uint32_t Sum = 0;
  for (uint32_t C = 0; C < Alphabet; ++C) {
    uint32_t T = Cnt[C];
    Cnt[C] = Sum;
    Sum += T;
  }
  for (uint32_t I = 0; I < N; ++I)
    Sa[Cnt[Rank[I]]++] = I;

  for (uint32_t K = 1; K < N; K *= 2) {
    // Order by the second key (Rank[I + K], out-of-range smallest):
    // positions I >= N - K have no second key and come first; the rest
    // follow in the current suffix-array order, shifted by K. This keeps
    // the sort stable in the second key, so the subsequent counting sort
    // by the first key yields the (first, second) lexicographic order.
    uint32_t P = 0;
    for (uint32_t I = N - K; I < N; ++I)
      Tmp[P++] = I;
    for (uint32_t I = 0; I < N; ++I)
      if (Sa[I] >= K)
        Tmp[P++] = Sa[I] - K;
    // Stable counting sort by the first key.
    std::fill(Cnt.begin(), Cnt.begin() + Alphabet, 0);
    for (uint32_t I = 0; I < N; ++I)
      ++Cnt[Rank[I]];
    Sum = 0;
    for (uint32_t C = 0; C < Alphabet; ++C) {
      uint32_t T = Cnt[C];
      Cnt[C] = Sum;
      Sum += T;
    }
    for (uint32_t I = 0; I < N; ++I)
      Sa[Cnt[Rank[Tmp[I]]]++] = Tmp[I];
    // Re-rank: adjacent rows with equal (first, second) keys share a rank.
    auto Second = [&](uint32_t S) { return S + K < N ? Rank[S + K] + 1 : 0; };
    NewRank[Sa[0]] = 0;
    uint32_t R = 0;
    for (uint32_t I = 1; I < N; ++I) {
      uint32_t A2 = Sa[I - 1], B = Sa[I];
      R += !(Rank[A2] == Rank[B] && Second(A2) == Second(B));
      NewRank[B] = R;
    }
    std::swap(Rank, NewRank); // Span handles, not contents: O(1).
    Alphabet = R + 2;
    if (R == N - 1)
      break;
  }
}

/// Symbol count below which prefix doubling always wins: each round is a
/// handful of linear passes over tiny arrays, while SA-IS pays its
/// type-classification, bucket and recursion setup regardless of n.
/// BENCH_build_time's sais_speedup of 0.617 at scale 2 is exactly this
/// regime.
constexpr uint32_t SaIsMinSymbols = 1u << 15;

/// Hybrid backend pick. A pure function of the compacted ranks, so the
/// choice is deterministic per text: symbol-count threshold first, then a
/// strided bigram repeat-density probe — repeat-poor text resolves all
/// rank ties within a few doubling rounds, which the O(n) construction
/// cannot beat in practice. Either backend yields the same bits (the
/// suffix array with a unique smallest sentinel is unique), so a wrong
/// guess costs only wall clock.
SaBackend chooseBackend(std::span<const uint32_t> Rank, uint32_t n) {
  if (n < SaIsMinSymbols)
    return SaBackend::PrefixDoubling;
  const uint32_t Want = 1024;
  const uint32_t Stride = std::max<uint32_t>(1, (n - 1) / Want);
  std::vector<uint64_t> Keys;
  Keys.reserve(Want + 1);
  for (uint32_t I = 0; I + 1 < n; I += Stride)
    Keys.push_back((uint64_t(Rank[I]) << 32) | Rank[I + 1]);
  std::sort(Keys.begin(), Keys.end());
  std::size_t Dups = 0;
  for (std::size_t I = 1; I < Keys.size(); ++I)
    Dups += Keys[I] == Keys[I - 1];
  // A quarter of sampled bigrams repeating marks the corpus repeat-heavy
  // enough for the doubling rounds to run deep.
  return Dups * 4 >= Keys.size() ? SaBackend::SaIs
                                 : SaBackend::PrefixDoubling;
}

} // namespace

const char *st::saBackendName(SaBackend B) {
  switch (B) {
  case SaBackend::SaIs:
    return "sa_is";
  case SaBackend::PrefixDoubling:
    return "prefix_doubling";
  }
  return "unknown";
}

SuffixArray::SuffixArray(std::vector<Symbol> Text, support::Arena *Scratch)
    : Owned(std::move(Text)), View(Owned), TextLen(Owned.size()) {
  build(Scratch);
}

SuffixArray::SuffixArray(std::span<const Symbol> Text, support::Arena *Scratch)
    : View(Text), TextLen(Text.size()) {
  build(Scratch);
}

void SuffixArray::build(support::Arena *Scratch) {
  const uint32_t n = static_cast<uint32_t>(TextLen);
  const uint32_t N = n + 1; // Plus the virtual sentinel position n.

  support::Arena Local;
  support::Arena &A = Scratch ? *Scratch : Local;

  uint32_t Alphabet = 0;
  std::span<uint32_t> Rank = compactRanks(View, Alphabet, A);

  // Construction over the dense ranks via the hybrid auto-pick: SA-IS
  // (O(n), no doubling rounds) on large repeat-heavy text, radix prefix
  // doubling (O(n log n) but with a tiny constant and shallow rounds) on
  // small or repeat-poor text. The suffix array of a text with a unique
  // smallest sentinel is unique, so both backends are bit-identical —
  // the pick can only change the construction wall clock. Neither backend
  // writes Rank, and the arena only grows during construction, so the
  // span stays valid for Kasai below.
  Backend = chooseBackend(Rank, n);
  Sa.resize(N);
  if (Backend == SaBackend::SaIs)
    saIs(Rank.data(), N, Alphabet, Sa.data(), A);
  else
    prefixDoubleFromRanks(Rank.data(), N, Alphabet, Sa.data(), A);

  // Kasai's LCP: Lcp[I] = lcp(SA[I-1], SA[I]); Lcp[0] = 0. Comparing the
  // initial dense ranks is exact: equal ranks iff equal symbols, and both
  // positions are < n (the sentinel suffix never has a positive LCP with
  // any neighbour — its rank is unique), so half the working set of a raw
  // 64-bit symbol scan. The array is construction scratch only: intervals
  // are enumerated right below and die with the arena.
  std::span<uint32_t> Lcp = A.allocSpan<uint32_t>(N);
  std::fill(Lcp.begin(), Lcp.end(), 0);
  {
    std::span<uint32_t> Inv = A.allocSpan<uint32_t>(N);
    for (uint32_t I = 0; I < N; ++I)
      Inv[Sa[I]] = I;
    uint32_t H = 0;
    for (uint32_t S = 0; S < N; ++S) {
      if (Inv[S] == 0) {
        H = 0;
        continue;
      }
      uint32_t Prev = Sa[Inv[S] - 1];
      while (S + H < n && Prev + H < n && Rank[S + H] == Rank[Prev + H])
        ++H;
      Lcp[Inv[S]] = H;
      if (H)
        --H;
    }
  }

  // Enumerate LCP intervals (the suffix tree's internal nodes) with the
  // classic stack sweep (Abouelhoda et al.).
  struct Open {
    uint32_t LcpVal;
    uint32_t Lo;
  };
  std::vector<Open> Stack;
  Stack.push_back({0, 0});
  for (uint32_t I = 1; I <= N; ++I) {
    uint32_t Cur = I < N ? Lcp[I] : 0;
    uint32_t Lo = I - 1;
    while (Stack.back().LcpVal > Cur) {
      Open Top = Stack.back();
      Stack.pop_back();
      // Interval [Top.Lo, I-1] with repeat length Top.LcpVal. Its parent
      // is either the enclosing interval still on the stack or the one
      // about to be opened with LCP value Cur, whichever is deeper.
      uint32_t ParentLen = std::max(Cur, Stack.back().LcpVal);
      Intervals.push_back({Top.Lo, I - 1, Top.LcpVal, ParentLen});
      Lo = Top.Lo;
    }
    if (Cur > Stack.back().LcpVal)
      Stack.push_back({Cur, Lo});
  }
}

void SuffixArray::forEachRepeat(
    uint32_t MinLen, uint32_t MaxLen, uint32_t MinCount,
    const std::function<void(const RepeatInfo &)> &Fn) const {
  assert(MinCount >= 2 && "a repeat needs at least two occurrences");
  for (std::size_t K = 0; K < Intervals.size(); ++K) {
    const Interval &IV = Intervals[K];
    uint32_t Count = IV.Hi - IV.Lo + 1;
    if (Count < MinCount || IV.Len < MinLen)
      continue;
    // Clamped-candidate dedup (mirrors SuffixTree::forEachRepeat): the
    // parent interval reports the same length-MaxLen prefix over a
    // superset of rows, so this interval would be a duplicate.
    if (IV.ParentLen >= MaxLen)
      continue;
    RepeatInfo R;
    R.Node = static_cast<int32_t>(K);
    R.Length = IV.Len < MaxLen ? IV.Len : MaxLen;
    R.Count = Count;
    Fn(R);
  }
}

std::vector<uint32_t> SuffixArray::positionsOf(int32_t Interval) const {
  std::vector<uint32_t> Positions;
  positionsOf(Interval, Positions);
  return Positions;
}

void SuffixArray::positionsOf(int32_t Interval,
                              std::vector<uint32_t> &Out) const {
  const auto &IV = Intervals[static_cast<std::size_t>(Interval)];
  Out.assign(Sa.begin() + IV.Lo, Sa.begin() + IV.Hi + 1);
  std::sort(Out.begin(), Out.end());
}

uint32_t SuffixArray::firstPositionOf(int32_t Interval) const {
  const auto &IV = Intervals[static_cast<std::size_t>(Interval)];
  uint32_t Min = Sa[IV.Lo];
  for (uint32_t Row = IV.Lo + 1; Row <= IV.Hi; ++Row)
    Min = std::min(Min, Sa[Row]);
  return Min;
}

std::size_t SuffixArray::workingSetBytes() const {
  // Viewed text counts like owned text while the view is live — the caller's
  // storage is resident on this array's behalf — and drops to zero after
  // releaseWorkingSet().
  std::size_t TextBytes = Owned.empty() ? View.size() * sizeof(Symbol)
                                        : Owned.capacity() * sizeof(Symbol);
  return TextBytes + Sa.capacity() * sizeof(uint32_t) +
         Intervals.capacity() * sizeof(Interval);
}

void SuffixArray::releaseWorkingSet() {
  std::vector<Symbol>().swap(Owned);
  View = {};
}

std::vector<uint32_t>
st::prefixDoublingSuffixArray(const std::vector<Symbol> &Text) {
  const uint32_t N = static_cast<uint32_t>(Text.size()) + 1;

  // Prefix doubling over dense ranks with counting (radix) sorts: O(n) per
  // round, O(log n) rounds, O(n log n) total. This was the production
  // construction before SA-IS; it survives as the differential oracle and
  // as one leg of the hybrid auto-pick (same helper, so oracle and
  // production path cannot drift apart).
  support::Arena A;
  uint32_t Alphabet = 0;
  std::span<uint32_t> Rank0 = compactRanks(Text, Alphabet, A);
  std::vector<uint32_t> Sa(N);
  prefixDoubleFromRanks(Rank0.data(), N, Alphabet, Sa.data(), A);
  return Sa;
}
