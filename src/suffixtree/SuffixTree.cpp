//===- suffixtree/SuffixTree.cpp - Ukkonen suffix tree --------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "suffixtree/SuffixTree.h"

#include <algorithm>
#include <cassert>

using namespace calibro;
using namespace calibro::st;

namespace {

/// Internal sentinel: above every separator a caller can allocate. Virtual
/// only — it is returned by sym() for position TextLen and never stored.
constexpr Symbol Sentinel = ~uint64_t(0);

} // namespace

Symbol SuffixTree::sym(std::size_t I) const {
  return I == TextLen ? Sentinel : View[I];
}

SuffixTree::SuffixTree(std::vector<Symbol> Text)
    : Owned(std::move(Text)), View(Owned), TextLen(Owned.size()) {
  build();
}

SuffixTree::SuffixTree(std::span<const Symbol> Text)
    : View(Text), TextLen(Text.size()) {
  build();
}

void SuffixTree::build() {
  assert(std::find(View.begin(), View.end(), Sentinel) == View.end() &&
         "input sequence may not contain the reserved sentinel symbol");

  Nodes.reserve((TextLen + 1) * 2);
  Trans.reserve((TextLen + 1) * 2);
  newNode(-1, -1); // Root is node 0.

  // One extension per text position plus one for the virtual sentinel.
  for (std::size_t Pos = 0; Pos <= TextLen; ++Pos)
    extend(static_cast<int32_t>(Pos));
  finalize();
}

int32_t SuffixTree::newNode(int32_t Start, int32_t End) {
  Nodes.push_back(Node{Start, End, 0});
  return static_cast<int32_t>(Nodes.size()) - 1;
}

int32_t SuffixTree::go(int32_t N, Symbol S) const {
  auto It = Trans.find(TransKey{N, S});
  return It == Trans.end() ? -1 : It->second;
}

void SuffixTree::setChild(int32_t N, Symbol S, int32_t Child) {
  Trans[TransKey{N, S}] = Child;
}

int32_t SuffixTree::edgeLength(int32_t N, int32_t Pos) const {
  const Node &Nd = Nodes[N];
  int32_t End = Nd.End == -1 ? Pos + 1 : Nd.End;
  return End - Nd.Start;
}

void SuffixTree::extend(int32_t Pos) {
  LastNewNode = -1;
  ++Remaining;
  while (Remaining > 0) {
    if (ActiveLength == 0)
      ActiveEdge = Pos;
    int32_t Next = go(ActiveNode, sym(ActiveEdge));
    if (Next == -1) {
      // Rule 2: no edge starts with the current symbol; add a leaf.
      int32_t Leaf = newNode(Pos, -1);
      setChild(ActiveNode, sym(ActiveEdge), Leaf);
      if (LastNewNode != -1) {
        Nodes[LastNewNode].SuffixLink = ActiveNode;
        LastNewNode = -1;
      }
    } else {
      // Walk down if the active point passed the end of this edge.
      int32_t ELen = edgeLength(Next, Pos);
      if (ActiveLength >= ELen) {
        ActiveEdge += ELen;
        ActiveLength -= ELen;
        ActiveNode = Next;
        continue;
      }
      if (sym(Nodes[Next].Start + ActiveLength) == sym(Pos)) {
        // Rule 3: already present; this extension (and all following ones
        // this phase) is implicit.
        if (LastNewNode != -1 && ActiveNode != 0) {
          Nodes[LastNewNode].SuffixLink = ActiveNode;
          LastNewNode = -1;
        }
        ++ActiveLength;
        break;
      }
      // Rule 2 with split: the edge diverges at the active point.
      int32_t Split = newNode(Nodes[Next].Start, Nodes[Next].Start + ActiveLength);
      setChild(ActiveNode, sym(ActiveEdge), Split);
      int32_t Leaf = newNode(Pos, -1);
      setChild(Split, sym(Pos), Leaf);
      Nodes[Next].Start += ActiveLength;
      setChild(Split, sym(Nodes[Next].Start), Next);
      if (LastNewNode != -1)
        Nodes[LastNewNode].SuffixLink = Split;
      LastNewNode = Split;
    }
    --Remaining;
    if (ActiveNode == 0 && ActiveLength > 0) {
      --ActiveLength;
      ActiveEdge = Pos - Remaining + 1;
    } else if (ActiveNode != 0) {
      ActiveNode = Nodes[ActiveNode].SuffixLink;
    }
  }
}

void SuffixTree::finalize() {
  int32_t N = static_cast<int32_t>(Nodes.size());
  // Construction-text length including the virtual sentinel position.
  int32_t Total = static_cast<int32_t>(TextLen) + 1;

  // Group children per parent in deterministic (symbol-sorted) order. The
  // transition map's iteration order is unspecified, so sort.
  std::vector<std::pair<TransKey, int32_t>> Edges(Trans.begin(), Trans.end());
  std::sort(Edges.begin(), Edges.end(), [](const auto &A, const auto &B) {
    if (A.first.Node != B.first.Node)
      return A.first.Node < B.first.Node;
    return A.first.Sym < B.first.Sym;
  });
  std::vector<int32_t> ChildLo(N + 1, 0);
  for (const auto &E : Edges)
    ++ChildLo[E.first.Node + 1];
  for (int32_t I = 0; I < N; ++I)
    ChildLo[I + 1] += ChildLo[I];
  std::vector<int32_t> Children(Edges.size());
  {
    std::vector<int32_t> Fill(ChildLo.begin(), ChildLo.end() - 1);
    for (const auto &E : Edges)
      Children[Fill[E.first.Node]++] = E.second;
  }

  Depth.assign(N, 0);
  ParentDepth.assign(N, 0);
  LeafCount.assign(N, 0);
  LeafLo.assign(N, 0);
  LeafHi.assign(N, 0);
  LeafSuffixes.clear();
  DfsOrder.clear();

  // Iterative DFS: pre-visit computes depth and the LeafSuffixes range
  // start; post-visit accumulates leaf counts and closes the range.
  struct Frame {
    int32_t Node;
    bool Post;
  };
  std::vector<Frame> Stack;
  Stack.push_back({0, false});
  while (!Stack.empty()) {
    Frame F = Stack.back();
    Stack.pop_back();
    int32_t Nd = F.Node;
    if (F.Post) {
      int32_t Sum = 0;
      for (int32_t CI = ChildLo[Nd]; CI < ChildLo[Nd + 1]; ++CI)
        Sum += LeafCount[Children[CI]];
      LeafCount[Nd] = Sum;
      LeafHi[Nd] = static_cast<int32_t>(LeafSuffixes.size());
      continue;
    }
    bool IsLeaf = ChildLo[Nd] == ChildLo[Nd + 1];
    if (IsLeaf) {
      // The suffix this leaf represents starts depth symbols before the end.
      LeafCount[Nd] = 1;
      LeafLo[Nd] = static_cast<int32_t>(LeafSuffixes.size());
      LeafSuffixes.push_back(static_cast<uint32_t>(Total - Depth[Nd]));
      LeafHi[Nd] = static_cast<int32_t>(LeafSuffixes.size());
      continue;
    }
    LeafLo[Nd] = static_cast<int32_t>(LeafSuffixes.size());
    if (Nd != 0)
      DfsOrder.push_back(Nd);
    Stack.push_back({Nd, true});
    // Push children in reverse so the DFS visits them in symbol order.
    for (int32_t CI = ChildLo[Nd + 1] - 1; CI >= ChildLo[Nd]; --CI) {
      int32_t C = Children[CI];
      int32_t End = Nodes[C].End == -1 ? Total : Nodes[C].End;
      Depth[C] = Depth[Nd] + (End - Nodes[C].Start);
      ParentDepth[C] = Depth[Nd];
      Stack.push_back({C, false});
    }
  }

  // Construction state is no longer needed; release the transition map, the
  // dominant memory consumer (this mirrors the paper's observation that the
  // tree's working set, not the text, is what hurts).
  Trans.clear();
  Trans.rehash(0);
}

void SuffixTree::forEachRepeat(
    uint32_t MinLen, uint32_t MaxLen, uint32_t MinCount,
    const std::function<void(const RepeatInfo &)> &Fn) const {
  assert(MinCount >= 2 && "a repeat needs at least two occurrences");
  for (int32_t Nd : DfsOrder) {
    if (static_cast<uint32_t>(LeafCount[Nd]) < MinCount)
      continue;
    uint32_t Len = static_cast<uint32_t>(Depth[Nd]);
    if (Len < MinLen)
      continue;
    // Clamped-candidate dedup: when the parent's depth already reaches
    // MaxLen, this node's clamped report would repeat the parent's exact
    // length-MaxLen prefix over a subset of its positions. The unique
    // survivor on each root path is the shallowest node at depth >= MaxLen.
    if (static_cast<uint32_t>(ParentDepth[Nd]) >= MaxLen)
      continue;
    RepeatInfo R;
    R.Node = Nd;
    R.Length = Len < MaxLen ? Len : MaxLen;
    R.Count = static_cast<uint32_t>(LeafCount[Nd]);
    Fn(R);
  }
}

std::vector<uint32_t> SuffixTree::positionsOf(int32_t Node) const {
  std::vector<uint32_t> Positions;
  positionsOf(Node, Positions);
  return Positions;
}

void SuffixTree::positionsOf(int32_t Node, std::vector<uint32_t> &Out) const {
  Out.assign(LeafSuffixes.begin() + LeafLo[Node],
             LeafSuffixes.begin() + LeafHi[Node]);
  std::sort(Out.begin(), Out.end());
}

uint32_t SuffixTree::firstPositionOf(int32_t Node) const {
  uint32_t Min = LeafSuffixes[LeafLo[Node]];
  for (int32_t I = LeafLo[Node] + 1; I < LeafHi[Node]; ++I)
    Min = std::min(Min, LeafSuffixes[I]);
  return Min;
}

std::size_t SuffixTree::workingSetBytes() const {
  // The unordered_map accounting is an estimate: one heap node per entry
  // (pair + next pointer) plus the bucket array. Viewed text counts like
  // owned text — it is resident while the tree reads it — and both drop to
  // zero after releaseWorkingSet().
  std::size_t TransBytes =
      Trans.size() * (sizeof(std::pair<TransKey, int32_t>) + sizeof(void *)) +
      Trans.bucket_count() * sizeof(void *);
  std::size_t TextBytes = Owned.empty() ? View.size() * sizeof(Symbol)
                                        : Owned.capacity() * sizeof(Symbol);
  return TextBytes + Nodes.capacity() * sizeof(Node) + TransBytes +
         (Depth.capacity() + ParentDepth.capacity() + LeafCount.capacity() +
          LeafLo.capacity() + LeafHi.capacity() + DfsOrder.capacity()) *
             sizeof(int32_t) +
         LeafSuffixes.capacity() * sizeof(uint32_t);
}

void SuffixTree::releaseWorkingSet() {
  std::vector<Symbol>().swap(Owned);
  View = {};
  std::unordered_map<TransKey, int32_t, TransKeyHash>().swap(Trans);
}
