//===- suffixtree/SuffixTree.h - Ukkonen suffix tree ------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A suffix tree over sequences of 64-bit symbols, built online with
/// Ukkonen's algorithm (Ukkonen, Algorithmica 1995) in O(n) expected time.
///
/// This is the redundancy-detection substrate of the paper (§2.1.2, §3.3.2):
/// the whole program's instruction stream is mapped to a symbol sequence
/// (instruction encodings, with every basic-block terminator replaced by a
/// globally unique separator symbol), the tree is built once, and every
/// internal node with >= 2 descendant leaves names a repeated sequence whose
/// length is the node's path depth and whose occurrences are the suffix
/// indices of those leaves. Unique separators can never appear inside a
/// repeated sequence, which confines every candidate to a basic block
/// exactly as §3.3.2 requires.
///
/// The symbol alphabet is uint64_t so that 32-bit instruction words and
/// out-of-band separator symbols (>= 2^32) coexist in one sequence.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUFFIXTREE_SUFFIXTREE_H
#define CALIBRO_SUFFIXTREE_SUFFIXTREE_H

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

namespace calibro {
namespace st {

/// Sequence symbol. Instruction words occupy [0, 2^32); separator and
/// sentinel symbols live above.
using Symbol = uint64_t;

/// First symbol value reserved for separators. Callers allocate unique
/// separators as SeparatorBase + counter.
inline constexpr Symbol SeparatorBase = uint64_t(1) << 32;

/// A suffix tree of one symbol sequence.
///
/// Construction terminates the sequence with an internal, globally unique
/// *virtual* sentinel (a position one past the end, never materialized in
/// any buffer), so callers can pass arbitrary sequences without the tree
/// copying or extending them. All reported positions refer to the original
/// (un-sentineled) sequence.
class SuffixTree {
public:
  /// Builds the tree over an owned copy of \p Text. O(text length)
  /// expected.
  explicit SuffixTree(std::vector<Symbol> Text);

  /// Builds the tree over a NON-OWNING view of \p Text — no private copy
  /// is made, so the bytes may live in an mmap'd image or an arena. The
  /// caller must keep the storage alive until releaseWorkingSet() (or
  /// destruction); after releaseWorkingSet() the tree no longer touches
  /// it. Detection output is byte-identical to the owning constructor's.
  explicit SuffixTree(std::span<const Symbol> Text);

  /// Length of the original sequence (without the internal sentinel).
  /// Valid even after releaseWorkingSet().
  std::size_t textSize() const { return TextLen; }

  /// The stored (or viewed) sequence. Invalid after releaseWorkingSet().
  std::span<const Symbol> text() const { return View; }

  /// Total node count including root and leaves (for memory accounting and
  /// the build-time experiment).
  std::size_t numNodes() const { return Nodes.size(); }

  /// A repeated sequence discovered in the tree.
  struct RepeatInfo {
    int32_t Node;    ///< Tree node handle, usable with positionsOf().
    uint32_t Length; ///< Repeated-sequence length (clamped to MaxLen).
    uint32_t Count;  ///< Number of (possibly overlapping) occurrences.
  };

  /// Visits every internal node whose path depth is >= \p MinLen and whose
  /// descendant-leaf count is >= \p MinCount. Lengths longer than \p MaxLen
  /// are reported clamped to MaxLen (the occurrence positions stay valid for
  /// the length-MaxLen prefix). Clamped candidates are deduplicated: a node
  /// whose parent depth is already >= MaxLen is skipped, because the parent
  /// reports the identical length-MaxLen prefix with a superset of the
  /// occurrence positions. Visit order is deterministic.
  void forEachRepeat(uint32_t MinLen, uint32_t MaxLen, uint32_t MinCount,
                     const std::function<void(const RepeatInfo &)> &Fn) const;

  /// Returns the start positions (suffix indices) of the repeated sequence
  /// represented by \p Node, in increasing order. O(count · log count).
  std::vector<uint32_t> positionsOf(int32_t Node) const;

  /// Buffer-reusing variant: fills \p Out (cleared first) with the same
  /// ascending positions, allocating nothing once \p Out has grown.
  void positionsOf(int32_t Node, std::vector<uint32_t> &Out) const;

  /// Earliest start position of the repeat at \p Node. O(count) with no
  /// copy and no sort — the selector's candidate ordering needs only this
  /// one value per candidate.
  uint32_t firstPositionOf(int32_t Node) const;

  /// Bytes held right now by the text, node table, transition map, and the
  /// finalize()-derived arrays. Shrinks after releaseWorkingSet().
  std::size_t workingSetBytes() const;

  /// Frees the stored text and the transition hash map — the two largest
  /// construction structures, neither needed for repeat enumeration.
  /// forEachRepeat/positionsOf/numNodes/textSize/depthOf stay valid; text()
  /// does not.
  void releaseWorkingSet();

  /// Path depth (repeated-sequence length before clamping) of \p Node.
  uint32_t depthOf(int32_t Node) const {
    return static_cast<uint32_t>(Depth[Node]);
  }

private:
  struct Node {
    int32_t Start;      ///< Edge label: Txt[Start, End). Root: Start == -1.
    int32_t End;        ///< Exclusive end; -1 while a leaf is still open.
    int32_t SuffixLink; ///< Ukkonen suffix link; 0 (root) by default.
  };

  struct TransKey {
    int32_t Node;
    Symbol Sym;
    bool operator==(const TransKey &) const = default;
  };

  struct TransKeyHash {
    std::size_t operator()(const TransKey &K) const {
      uint64_t Z = K.Sym + 0x9e3779b97f4a7c15ULL * (uint64_t(K.Node) + 1);
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(Z ^ (Z >> 31));
    }
  };

  /// Symbol at construction position \p I, where position TextLen is the
  /// virtual sentinel (unique, above every separator a caller can
  /// allocate). Every construction-time text read goes through here, so
  /// the sentinel never needs to exist in any buffer — which is what lets
  /// the view constructor build over mmap'd or arena-backed storage
  /// without a private, extendable copy.
  Symbol sym(std::size_t I) const;

  int32_t newNode(int32_t Start, int32_t End);
  int32_t go(int32_t Node, Symbol S) const;
  void setChild(int32_t Node, Symbol S, int32_t Child);
  int32_t edgeLength(int32_t Node, int32_t Pos) const;
  void build();
  void extend(int32_t Pos);
  void finalize();

  std::vector<Symbol> Owned;    ///< Backing storage of the owning ctor.
  std::span<const Symbol> View; ///< The sequence (owned or caller-owned).
  std::size_t TextLen = 0;
  std::vector<Node> Nodes;
  std::unordered_map<TransKey, int32_t, TransKeyHash> Trans;

  // Ukkonen state (only meaningful during construction).
  int32_t ActiveNode = 0;
  int32_t ActiveEdge = 0;
  int32_t ActiveLength = 0;
  int32_t Remaining = 0;
  int32_t LastNewNode = -1;

  // Derived, filled by finalize().
  std::vector<int32_t> Depth;        ///< Path depth per node.
  std::vector<int32_t> ParentDepth;  ///< Path depth of each node's parent.
  std::vector<int32_t> LeafCount;    ///< Descendant leaves per node.
  std::vector<int32_t> LeafLo;       ///< First index into LeafSuffixes.
  std::vector<int32_t> LeafHi;       ///< One past the last index.
  std::vector<uint32_t> LeafSuffixes; ///< Suffix indices in DFS order.
  std::vector<int32_t> DfsOrder;     ///< Internal nodes in DFS order.
};

} // namespace st
} // namespace calibro

#endif // CALIBRO_SUFFIXTREE_SUFFIXTREE_H
