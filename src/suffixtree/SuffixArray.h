//===- suffixtree/SuffixArray.h - SA+LCP repeat detection -------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent redundancy-detection backend: a suffix array with Kasai's
/// LCP array, enumerating repeated sequences as LCP intervals. Construction
/// is O(n): the sparse 64-bit alphabet is first compacted to dense uint32
/// ranks (LSD radix sort of the symbols), then SA-IS (suffix array by
/// induced sorting, Nong/Zhang/Chan) builds the array in linear time — no
/// doubling rounds at all. The sentinel is a *virtual* position with a
/// by-construction unique smallest rank — no symbol value is reserved, so
/// any uint64 sequence is legal input (the old release-build hazard of a
/// text containing the reserved ~0 sentinel no longer exists).
///
/// The suffix array of a text whose (virtual) sentinel is strictly smaller
/// than every other symbol is unique, so the SA-IS result is bit-identical
/// to what prefix doubling produced — detection output cannot shift with
/// the construction algorithm. prefixDoublingSuffixArray() keeps the old
/// O(n log n) construction alive as the differential oracle the tests and
/// the build-time bench compare against.
///
/// LCP intervals correspond one-to-one to the internal nodes of the suffix
/// tree, so this backend must report exactly the same repeats with exactly
/// the same occurrence sets as st::SuffixTree — which is how the test suite
/// cross-validates the Ukkonen implementation (and vice versa). It is also
/// the memory-lean and construction-fast alternative the build-time
/// experiments compare against.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_SUFFIXTREE_SUFFIXARRAY_H
#define CALIBRO_SUFFIXTREE_SUFFIXARRAY_H

#include "suffixtree/SuffixTree.h"
#include "support/Arena.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace calibro {
namespace st {

/// Which algorithm constructed the raw suffix array. The suffix array of a
/// text with a unique smallest (virtual) sentinel is unique, so the choice
/// can never change the output — only the construction wall clock.
enum class SaBackend : uint8_t {
  SaIs,           ///< O(n) induced sorting; wins on large repeat-heavy text.
  PrefixDoubling, ///< O(n log n) radix doubling; wins on small/plain text.
};

/// Returns the identifier-style name of \p B.
const char *saBackendName(SaBackend B);

/// Suffix array + LCP over one symbol sequence, with the same repeat
/// enumeration interface as SuffixTree.
///
/// Construction auto-picks its backend per text (hybrid): SA-IS's linear
/// time only pays off once the doubling round count grows, which needs
/// both scale and repeat density — BENCH_build_time measured SA-IS at
/// 0.617x doubling's speed on the small scale-2 corpus. The pick is a
/// pure function of the text (symbol count + a strided bigram
/// repeat-density probe), so it is deterministic, and the resulting array
/// is bit-identical either way.
class SuffixArray {
public:
  /// Builds the array in O(n): alphabet rank-compaction followed by SA-IS
  /// induced sorting, then Kasai's LCP and the LCP-interval sweep. Accepts
  /// any symbol values — the sentinel is virtual, nothing is reserved.
  ///
  /// \p Scratch optionally supplies the construction workspace (rank
  /// arrays, SA-IS type/bucket/recursion arrays, LCP scratch). Everything
  /// allocated from it is dead once the constructor returns — the caller
  /// may reset() the arena immediately afterwards. Null uses a private
  /// arena that is freed with the constructor frame.
  explicit SuffixArray(std::vector<Symbol> Text,
                       support::Arena *Scratch = nullptr);

  /// Same construction over a NON-OWNING view of \p Text — no private copy
  /// is made, so the symbols may live in an mmap'd image or an arena. The
  /// caller must keep the storage alive until releaseWorkingSet() (or
  /// destruction); afterwards the array no longer touches it. Output is
  /// byte-identical to the owning constructor's.
  explicit SuffixArray(std::span<const Symbol> Text,
                       support::Arena *Scratch = nullptr);

  /// Length of the original sequence. Valid even after
  /// releaseWorkingSet().
  std::size_t textSize() const { return TextLen; }

  /// The stored (or viewed) sequence. Invalid after releaseWorkingSet().
  std::span<const Symbol> text() const { return View; }

  using RepeatInfo = SuffixTree::RepeatInfo;

  /// Number of LCP intervals — the counterpart of the suffix tree's
  /// internal-node count (leaves are implicit in the array itself).
  std::size_t numNodes() const { return Intervals.size(); }

  /// Visits every LCP interval whose repeat length is >= \p MinLen
  /// (clamped to \p MaxLen) with >= \p MinCount occurrences. The Node
  /// handle indexes the internal interval table. Clamped candidates are
  /// deduplicated exactly like SuffixTree::forEachRepeat: an interval whose
  /// parent interval's LCP value is already >= MaxLen is skipped.
  void forEachRepeat(uint32_t MinLen, uint32_t MaxLen, uint32_t MinCount,
                     const std::function<void(const RepeatInfo &)> &Fn) const;

  /// Start positions of the repeat named by \p Interval, ascending.
  std::vector<uint32_t> positionsOf(int32_t Interval) const;

  /// Buffer-reusing variant: fills \p Out (cleared first) with the same
  /// ascending positions. Hot-path friendly — no allocation once \p Out has
  /// grown to the largest occurrence count.
  void positionsOf(int32_t Interval, std::vector<uint32_t> &Out) const;

  /// Earliest start position of the repeat named by \p Interval. O(count)
  /// with no copy and no sort — the selector's candidate ordering needs
  /// only this one value per candidate.
  uint32_t firstPositionOf(int32_t Interval) const;

  /// The construction algorithm the hybrid auto-pick chose for this text.
  SaBackend constructionBackend() const { return Backend; }

  /// The raw suffix array, including the virtual-sentinel row: textSize()+1
  /// entries, the first of which is always textSize() (the sentinel suffix
  /// sorts strictly smallest). Exposed for the construction differential
  /// tests and benches.
  std::span<const uint32_t> suffixArray() const {
    return std::span<const uint32_t>(Sa.data(), Sa.size());
  }

  /// Bytes held by the detection-relevant arrays right now (text — owned
  /// or viewed, suffix array, interval table; all construction scratch
  /// lives in the arena and is already dead). Shrinks after
  /// releaseWorkingSet(): the text contribution returns to zero.
  std::size_t workingSetBytes() const;

  /// Drops the stored text (frees it when owned, forgets the view when
  /// not). forEachRepeat/positionsOf/numNodes/textSize stay valid (they
  /// read only Sa and Intervals); text() does not. Call once repeat
  /// enumeration no longer needs the raw symbols.
  void releaseWorkingSet();

private:
  struct Interval {
    uint32_t Lo;        ///< First suffix-array row (inclusive).
    uint32_t Hi;        ///< Last suffix-array row (inclusive).
    uint32_t Len;       ///< Repeat length (the interval's LCP value).
    uint32_t ParentLen; ///< LCP value of the enclosing (parent) interval.
  };

  void build(support::Arena *Scratch);

  std::vector<Symbol> Owned;    ///< Backing storage of the owning ctor.
  std::span<const Symbol> View; ///< The sequence (owned or caller-owned).
  std::size_t TextLen = 0;
  SaBackend Backend = SaBackend::SaIs;
  std::vector<uint32_t> Sa;
  std::vector<Interval> Intervals;
};

/// Reference O(n log n) construction: the radix-sorted prefix doubling that
/// SA-IS replaced. Returns the full suffix array over \p Text plus the
/// virtual sentinel (size Text.size() + 1, row 0 is the sentinel suffix) —
/// directly comparable with SuffixArray::suffixArray(). Kept as the
/// differential oracle for the SA-IS fuzz tests and as the baseline the
/// build-time bench measures the linear construction against; not used on
/// any production path.
std::vector<uint32_t> prefixDoublingSuffixArray(const std::vector<Symbol> &Text);

} // namespace st
} // namespace calibro

#endif // CALIBRO_SUFFIXTREE_SUFFIXARRAY_H
