//===- oat/MappedOat.h - Zero-copy OAT file reader --------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zero-copy OAT read path (DESIGN.md §9): open() memory-maps the file
/// and parse() runs deserializeOat straight over the mapping through
/// std::span — the file's image is never copied into a heap vector first.
/// The OatFile that parse() returns owns its own decoded structures, so it
/// outlives the mapping; only the raw-bytes view (bytes()) is tied to the
/// MappedOat's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_OAT_MAPPEDOAT_H
#define CALIBRO_OAT_MAPPEDOAT_H

#include "oat/OatFile.h"
#include "support/Error.h"
#include "support/MappedFile.h"

#include <span>
#include <string>

namespace calibro {
namespace oat {

/// A memory-mapped OAT image. Movable, not copyable.
class MappedOat {
public:
  /// Maps \p Path. Fails with a message when the file cannot be opened —
  /// structural validation happens in parse(), not here.
  static Expected<MappedOat> open(const std::string &Path);

  /// The raw image bytes, valid while this object lives.
  std::span<const uint8_t> bytes() const { return Map.bytes(); }
  std::size_t size() const { return Map.size(); }

  /// True when the bytes come from an actual mmap (false on the buffered
  /// read fallback). Observability for tests and tools only.
  bool isMapped() const { return Map.isMapped(); }

  /// Parses the mapped image into an owning OatFile (deserializeOat over
  /// the mapping, including full structural validation). The result is
  /// independent of this object's lifetime.
  Expected<OatFile> parse() const;

  /// The .text payload as instruction words, straight out of the mapping —
  /// no copy, no heap vector, no full parse. This is what lets a
  /// memory-budgeted reader (or the windowed outliner's detectors, via
  /// their view constructors) walk an image's code without ever holding a
  /// private duplicate of it. Valid while this object lives. Fails on
  /// structural corruption, a missing .text, a size that is not a whole
  /// number of words, or a payload the serializer's alignment guarantee
  /// does not hold for.
  Expected<std::span<const uint32_t>> textWords() const;

private:
  explicit MappedOat(support::MappedFile M) : Map(std::move(M)) {}

  support::MappedFile Map;
};

} // namespace oat
} // namespace calibro

#endif // CALIBRO_OAT_MAPPEDOAT_H
