//===- oat/Serialize.cpp - OAT files on disk (special ELF) ------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "oat/Serialize.h"

#include "codegen/SideInfoValidator.h"
#include "oat/MappedOat.h"
#include "support/BinaryStream.h"

#include <cstdio>

using namespace calibro;
using namespace calibro::oat;
using namespace calibro::codegen;

namespace {

//===----------------------------------------------------------------------===//
// ELF64 structures (just what the format needs).
//===----------------------------------------------------------------------===//

constexpr uint16_t EmAarch64 = 183;
constexpr uint16_t EtDyn = 3;
constexpr uint32_t ShtNull = 0;
constexpr uint32_t ShtProgbits = 1;
constexpr uint32_t ShtStrtab = 3;
constexpr uint64_t ShfAlloc = 0x2;
constexpr uint64_t ShfExecinstr = 0x4;

constexpr std::size_t ElfHeaderSize = 64;
constexpr std::size_t SectionHeaderSize = 64;

struct SectionSpec {
  std::string Name;
  uint32_t Type = ShtProgbits;
  uint64_t Flags = 0;
  uint64_t Addr = 0;
  uint64_t Align = 4;
  std::vector<uint8_t> Payload;
};

//===----------------------------------------------------------------------===//
// Payload encoding
//===----------------------------------------------------------------------===//

void putHeaderSection(ByteWriter &W, const OatFile &O) {
  W.u32(0x3154414f); // "OAT1"
  W.u32(OatFormatVersion);
  W.u64(O.BaseAddress);
  W.str(O.AppName);
}

} // namespace

namespace calibro {
namespace oat {

/// StackMaps are stored delta-compressed over the sorted native PCs, the
/// way ART packs its CodeInfo tables.
void putStackMap(ByteWriter &W, const StackMap &Map) {
  W.uleb(Map.Entries.size());
  uint32_t PrevPc = 0;
  for (const auto &E : Map.Entries) {
    W.uleb((E.NativePcOffset - PrevPc) / 4);
    W.uleb(E.DexPc);
    PrevPc = E.NativePcOffset;
  }
}

void putSideInfo(ByteWriter &W, const MethodSideInfo &S) {
  W.uleb(S.TerminatorOffsets.size());
  uint32_t Prev = 0;
  for (uint32_t T : S.TerminatorOffsets) {
    W.uleb((T - Prev) / 4);
    Prev = T;
  }
  W.uleb(S.PcRelRecords.size());
  for (const auto &R : S.PcRelRecords) {
    W.uleb(R.InsnOffset / 4);
    W.uleb(R.TargetOffset / 4);
  }
  W.uleb(S.EmbeddedData.size());
  for (const auto &D : S.EmbeddedData) {
    W.uleb(D.Offset / 4);
    W.uleb(D.Size / 4);
  }
  W.uleb(S.SlowPathRanges.size());
  for (const auto &R : S.SlowPathRanges) {
    W.uleb(R.Begin / 4);
    W.uleb(R.End / 4);
  }
  W.u8(static_cast<uint8_t>((S.HasIndirectJump ? 1 : 0) |
                            (S.IsNative ? 2 : 0)));
}

} // namespace oat
} // namespace calibro

namespace {

void putMethodsSection(ByteWriter &W, const OatFile &O) {
  W.uleb(O.Methods.size());
  for (const auto &M : O.Methods) {
    W.uleb(M.MethodIdx);
    W.str(M.Name);
    W.uleb(M.CodeOffset / 4);
    W.uleb(M.CodeSize / 4);
    // Merge provenance: 0 = unmerged, else canonical MethodIdx + 1.
    W.uleb(M.MergedInto == NoMergeParent ? 0 : uint64_t(M.MergedInto) + 1);
    W.uleb(M.MergedEntryOff / 4);
    putStackMap(W, M.Map);
    putSideInfo(W, M.Side);
  }
}

void putStubsSection(ByteWriter &W, const OatFile &O) {
  W.uleb(O.CtoStubs.size());
  for (const auto &S : O.CtoStubs) {
    W.u8(static_cast<uint8_t>(S.Kind));
    W.uleb(S.Imm);
    W.uleb(S.CodeOffset / 4);
    W.uleb(S.CodeSize / 4);
  }
}

void putOutlinedSection(ByteWriter &W, const OatFile &O) {
  W.uleb(O.Outlined.size());
  for (const auto &F : O.Outlined) {
    W.uleb(F.Id);
    W.uleb(F.CodeOffset / 4);
    W.uleb(F.CodeSize / 4);
  }
}

//===----------------------------------------------------------------------===//
// Payload decoding
//===----------------------------------------------------------------------===//

#define READ_OR_RETURN(VAR, EXPR)                                             \
  auto VAR##OrErr = (EXPR);                                                   \
  if (!VAR##OrErr)                                                            \
    return VAR##OrErr.takeError();                                            \
  auto VAR = *VAR##OrErr;

Error parseHeaderSection(std::span<const uint8_t> Bytes, OatFile &O) {
  ByteReader R(Bytes);
  READ_OR_RETURN(Magic, R.u32());
  if (Magic != 0x3154414f)
    return makeError(ErrCat::BadFormat, "oat header: bad magic");
  READ_OR_RETURN(Version, R.u32());
  if (Version != OatFormatVersion)
    return makeError(ErrCat::BadFormat, "oat header: unsupported version");
  READ_OR_RETURN(Base, R.u64());
  READ_OR_RETURN(Name, R.str());
  O.BaseAddress = Base;
  O.AppName = Name;
  return Error::success();
}

} // namespace

namespace calibro {
namespace oat {

Error parseStackMap(ByteReader &R, StackMap &Map) {
  READ_OR_RETURN(Count, R.uleb());
  uint32_t Pc = 0;
  for (uint64_t K = 0; K < Count; ++K) {
    READ_OR_RETURN(Delta, R.uleb());
    READ_OR_RETURN(DexPc, R.uleb());
    Pc += static_cast<uint32_t>(Delta) * 4;
    Map.Entries.push_back({Pc, static_cast<uint32_t>(DexPc)});
  }
  return Error::success();
}

Error parseSideInfo(ByteReader &R, MethodSideInfo &S) {
  READ_OR_RETURN(NumTerm, R.uleb());
  uint32_t Off = 0;
  for (uint64_t K = 0; K < NumTerm; ++K) {
    READ_OR_RETURN(Delta, R.uleb());
    Off += static_cast<uint32_t>(Delta) * 4;
    S.TerminatorOffsets.push_back(Off);
  }
  READ_OR_RETURN(NumPcRel, R.uleb());
  for (uint64_t K = 0; K < NumPcRel; ++K) {
    READ_OR_RETURN(Insn, R.uleb());
    READ_OR_RETURN(Target, R.uleb());
    S.PcRelRecords.push_back({static_cast<uint32_t>(Insn) * 4,
                              static_cast<uint32_t>(Target) * 4});
  }
  READ_OR_RETURN(NumData, R.uleb());
  for (uint64_t K = 0; K < NumData; ++K) {
    READ_OR_RETURN(DOff, R.uleb());
    READ_OR_RETURN(DSize, R.uleb());
    S.EmbeddedData.push_back(
        {static_cast<uint32_t>(DOff) * 4, static_cast<uint32_t>(DSize) * 4});
  }
  READ_OR_RETURN(NumSlow, R.uleb());
  for (uint64_t K = 0; K < NumSlow; ++K) {
    READ_OR_RETURN(Begin, R.uleb());
    READ_OR_RETURN(End, R.uleb());
    S.SlowPathRanges.push_back(
        {static_cast<uint32_t>(Begin) * 4, static_cast<uint32_t>(End) * 4});
  }
  READ_OR_RETURN(Flags, R.u8());
  S.HasIndirectJump = Flags & 1;
  S.IsNative = Flags & 2;
  return Error::success();
}

} // namespace oat
} // namespace calibro

namespace {

Error parseMethodsSection(std::span<const uint8_t> Bytes, OatFile &O) {
  ByteReader R(Bytes);
  READ_OR_RETURN(Count, R.uleb());
  for (uint64_t K = 0; K < Count; ++K) {
    OatMethodEntry M;
    READ_OR_RETURN(Idx, R.uleb());
    READ_OR_RETURN(Name, R.str());
    READ_OR_RETURN(Off, R.uleb());
    READ_OR_RETURN(Size, R.uleb());
    READ_OR_RETURN(Merged, R.uleb());
    READ_OR_RETURN(EntryOff, R.uleb());
    M.MethodIdx = static_cast<uint32_t>(Idx);
    M.Name = Name;
    M.CodeOffset = static_cast<uint32_t>(Off) * 4;
    M.CodeSize = static_cast<uint32_t>(Size) * 4;
    M.MergedInto =
        Merged == 0 ? NoMergeParent : static_cast<uint32_t>(Merged - 1);
    M.MergedEntryOff = static_cast<uint32_t>(EntryOff) * 4;
    if (auto E = parseStackMap(R, M.Map))
      return E;
    if (auto E = parseSideInfo(R, M.Side))
      return E;
    // Reject malformed side info at the parse boundary, before anything
    // downstream indexes with these offsets (inverted ranges and offsets
    // past the code size used to sail through here).
    if (auto D = validateSideInfoShape(M.Side, M.CodeSize))
      return makeError(ErrCat::SideInfo,
                       "oat methods: method '" + M.Name +
                           "': " + sideInfoFaultName(D.Fault) + " " + D.Detail);
    O.Methods.push_back(std::move(M));
  }
  return Error::success();
}

Error parseStubsSection(std::span<const uint8_t> Bytes, OatFile &O) {
  ByteReader R(Bytes);
  READ_OR_RETURN(Count, R.uleb());
  for (uint64_t K = 0; K < Count; ++K) {
    READ_OR_RETURN(Kind, R.u8());
    READ_OR_RETURN(Imm, R.uleb());
    READ_OR_RETURN(Off, R.uleb());
    READ_OR_RETURN(Size, R.uleb());
    if (Kind > static_cast<uint8_t>(CtoStubKind::StackCheck))
      return makeError(ErrCat::BadFormat, "oat stubs: bad stub kind");
    O.CtoStubs.push_back({static_cast<CtoStubKind>(Kind),
                          static_cast<uint32_t>(Imm),
                          static_cast<uint32_t>(Off) * 4,
                          static_cast<uint32_t>(Size) * 4});
  }
  return Error::success();
}

Error parseOutlinedSection(std::span<const uint8_t> Bytes, OatFile &O) {
  ByteReader R(Bytes);
  READ_OR_RETURN(Count, R.uleb());
  for (uint64_t K = 0; K < Count; ++K) {
    READ_OR_RETURN(Id, R.uleb());
    READ_OR_RETURN(Off, R.uleb());
    READ_OR_RETURN(Size, R.uleb());
    O.Outlined.push_back({static_cast<uint32_t>(Id),
                          static_cast<uint32_t>(Off) * 4,
                          static_cast<uint32_t>(Size) * 4});
  }
  return Error::success();
}

} // namespace

namespace {

// Little-endian scalar stores for the sized-buffer writer below.
void put16(uint8_t *P, uint16_t V) {
  P[0] = static_cast<uint8_t>(V);
  P[1] = static_cast<uint8_t>(V >> 8);
}
void put32(uint8_t *P, uint32_t V) {
  put16(P, static_cast<uint16_t>(V));
  put16(P + 2, static_cast<uint16_t>(V >> 16));
}
void put64(uint8_t *P, uint64_t V) {
  put32(P, static_cast<uint32_t>(V));
  put32(P + 4, static_cast<uint32_t>(V >> 32));
}

uint64_t alignTo(uint64_t V, uint64_t Align) {
  return (V + Align - 1) & ~(Align - 1);
}

/// One section of the output image. .text points straight at the linker's
/// word array (never copied into an intermediate payload vector); the
/// small metadata sections point at ByteWriter buffers owned by the
/// caller's frame.
struct SectionView {
  const char *Name;
  uint32_t Type = ShtProgbits;
  uint64_t Flags = 0;
  uint64_t Addr = 0;
  uint64_t Align = 4;
  const uint8_t *Data = nullptr;
  uint64_t Size = 0;
};

} // namespace

void oat::serializeOat(const OatFile &O, std::vector<uint8_t> &Out) {
  // Encode the variable-size metadata sections first (varint-compressed, so
  // their sizes are data-dependent); .text stays where it is and is copied
  // exactly once, straight into the final image.
  ByteWriter HeaderW, MethodsW, StubsW, OutlinedW;
  putHeaderSection(HeaderW, O);
  putMethodsSection(MethodsW, O);
  putStubsSection(StubsW, O);
  putOutlinedSection(OutlinedW, O);

  SectionView Sections[6];
  Sections[0] = {".text", ShtProgbits, ShfAlloc | ShfExecinstr, O.BaseAddress,
                 16, reinterpret_cast<const uint8_t *>(O.Text.data()),
                 O.Text.size() * 4};
  auto View = [](const char *Name, const ByteWriter &W) {
    SectionView S;
    S.Name = Name;
    S.Data = W.data();
    S.Size = W.size();
    return S;
  };
  Sections[1] = View(".oat.header", HeaderW);
  Sections[2] = View(".oat.methods", MethodsW);
  Sections[3] = View(".oat.stubs", StubsW);
  Sections[4] = View(".oat.outlined", OutlinedW);

  // .shstrtab (leading NUL, then each name).
  std::vector<uint8_t> Strtab;
  uint32_t NameOff[6];
  Strtab.push_back(0);
  Sections[5] = {".shstrtab", ShtStrtab, 0, 0, 1, nullptr, 0};
  for (std::size_t I = 0; I < 6; ++I) {
    NameOff[I] = static_cast<uint32_t>(Strtab.size());
    const char *N = Sections[I].Name;
    Strtab.insert(Strtab.end(), N, N + std::char_traits<char>::length(N));
    Strtab.push_back(0);
  }
  Sections[5].Data = Strtab.data();
  Sections[5].Size = Strtab.size();

  // Every section size is now known, so the whole layout — including
  // e_shoff — is computable up front: ELF header, aligned payloads,
  // 8-aligned section header table (SHT_NULL + one header per section).
  // One exact-size resize, one pass of stores, no patching afterwards.
  uint64_t PayloadOff[6];
  uint64_t Off = ElfHeaderSize;
  for (std::size_t I = 0; I < 6; ++I) {
    Off = alignTo(Off, Sections[I].Align);
    PayloadOff[I] = Off;
    Off += Sections[I].Size;
  }
  const uint64_t Shoff = alignTo(Off, 8);
  const uint64_t Total = Shoff + 7 * SectionHeaderSize;

  Out.assign(Total, 0); // Zero fill doubles as alignment padding.
  uint8_t *B = Out.data();

  const uint8_t Ident[16] = {0x7f, 'E', 'L', 'F',
                             2 /*ELFCLASS64*/, 1 /*LSB*/, 1 /*EV_CURRENT*/,
                             0, 0, 0, 0, 0, 0, 0, 0, 0};
  std::memcpy(B, Ident, 16);
  put16(B + 16, EtDyn);
  put16(B + 18, EmAarch64);
  put32(B + 20, 1);             // e_version
  put64(B + 24, O.BaseAddress); // e_entry: the image load address.
  put64(B + 32, 0);             // e_phoff (no program headers).
  put64(B + 40, Shoff);         // e_shoff — exact, not patched.
  put32(B + 48, 0);             // e_flags
  put16(B + 52, ElfHeaderSize);
  put16(B + 54, 0); // e_phentsize
  put16(B + 56, 0); // e_phnum
  put16(B + 58, SectionHeaderSize);
  put16(B + 60, 7); // e_shnum: SHT_NULL + 6 sections.
  put16(B + 62, 6); // e_shstrndx: .shstrtab (header index, after SHT_NULL).

  for (std::size_t I = 0; I < 6; ++I)
    if (Sections[I].Size)
      std::memcpy(B + PayloadOff[I], Sections[I].Data, Sections[I].Size);

  // Section header table; the SHT_NULL row is already all zeroes.
  uint8_t *H = B + Shoff + SectionHeaderSize;
  for (std::size_t I = 0; I < 6; ++I, H += SectionHeaderSize) {
    const SectionView &S = Sections[I];
    put32(H + 0, NameOff[I]);
    put32(H + 4, S.Type);
    put64(H + 8, S.Flags);
    put64(H + 16, S.Addr);
    put64(H + 24, PayloadOff[I]);
    put64(H + 32, S.Size);
    put32(H + 40, 0); // sh_link
    put32(H + 44, 0); // sh_info
    put64(H + 48, S.Align);
    put64(H + 56, 0); // sh_entsize
  }
}

std::vector<uint8_t> oat::serializeOat(const OatFile &O) {
  std::vector<uint8_t> Out;
  serializeOat(O, Out);
  return Out;
}

Expected<OatFile> oat::deserializeOat(std::span<const uint8_t> Bytes) {
  ByteReader R(Bytes);
  uint8_t Ident[16];
  if (auto E = R.bytes(Ident, 16))
    return E;
  if (Ident[0] != 0x7f || Ident[1] != 'E' || Ident[2] != 'L' ||
      Ident[3] != 'F')
    return makeError(ErrCat::BadFormat, "not an ELF file");
  if (Ident[4] != 2 || Ident[5] != 1)
    return makeError(ErrCat::BadFormat, "not a little-endian ELF64");
  READ_OR_RETURN(Type, R.u16());
  READ_OR_RETURN(Machine, R.u16());
  if (Machine != EmAarch64)
    return makeError(ErrCat::BadFormat, "not an AArch64 image");
  (void)Type;
  READ_OR_RETURN(EVersion, R.u32());
  (void)EVersion;
  READ_OR_RETURN(Entry, R.u64());
  (void)Entry;
  READ_OR_RETURN(Phoff, R.u64());
  (void)Phoff;
  READ_OR_RETURN(Shoff, R.u64());
  READ_OR_RETURN(Flags, R.u32());
  (void)Flags;
  READ_OR_RETURN(Ehsize, R.u16());
  (void)Ehsize;
  READ_OR_RETURN(Phentsize, R.u16());
  (void)Phentsize;
  READ_OR_RETURN(Phnum, R.u16());
  (void)Phnum;
  READ_OR_RETURN(Shentsize, R.u16());
  if (Shentsize != SectionHeaderSize)
    return makeError(ErrCat::BadFormat, "unexpected section header size");
  READ_OR_RETURN(Shnum, R.u16());
  READ_OR_RETURN(Shstrndx, R.u16());
  if (Shnum == 0 || Shstrndx >= Shnum)
    return makeError(ErrCat::BadFormat, "bad section header table shape");
  // The whole declared table must fit, including the trailing fields the
  // walk below never touches — a file cut inside its last header is
  // malformed even if every byte we would read is still present.
  if (Shoff > Bytes.size() ||
      uint64_t(Shnum) * SectionHeaderSize > Bytes.size() - Shoff)
    return makeError(ErrCat::BadFormat, "section header table out of bounds");

  struct RawSection {
    uint32_t NameOff;
    uint64_t Off, Size;
  };
  std::vector<RawSection> Raw;
  for (uint16_t S = 0; S < Shnum; ++S) {
    if (auto E = R.seek(static_cast<std::size_t>(Shoff) +
                        std::size_t(S) * SectionHeaderSize))
      return E;
    READ_OR_RETURN(NameOff, R.u32());
    READ_OR_RETURN(SType, R.u32());
    (void)SType;
    READ_OR_RETURN(SFlags, R.u64());
    (void)SFlags;
    READ_OR_RETURN(Addr, R.u64());
    (void)Addr;
    READ_OR_RETURN(Off, R.u64());
    READ_OR_RETURN(Size, R.u64());
    if (Off > Bytes.size() || Size > Bytes.size() - Off)
      return makeError(ErrCat::BadFormat, "section payload out of bounds");
    Raw.push_back({NameOff, Off, Size});
  }

  auto nameOf = [&](const RawSection &S) -> std::string {
    const RawSection &Tab = Raw[Shstrndx];
    std::string Name;
    for (uint64_t P = Tab.Off + S.NameOff;
         P < Tab.Off + Tab.Size && Bytes[P]; ++P)
      Name.push_back(static_cast<char>(Bytes[P]));
    return Name;
  };
  auto payloadOf = [&](const RawSection &S) {
    return Bytes.subspan(static_cast<std::size_t>(S.Off),
                         static_cast<std::size_t>(S.Size));
  };

  OatFile O;
  bool SawText = false, SawHeader = false, SawMethods = false;
  for (const auto &S : Raw) {
    std::string Name = nameOf(S);
    if (Name == ".text") {
      if (S.Size % 4 != 0)
        return makeError(ErrCat::BadFormat, ".text size not word-aligned");
      O.Text.resize(static_cast<std::size_t>(S.Size) / 4);
      std::memcpy(O.Text.data(), Bytes.data() + S.Off,
                  static_cast<std::size_t>(S.Size));
      SawText = true;
    } else if (Name == ".oat.header") {
      if (auto E = parseHeaderSection(payloadOf(S), O))
        return E;
      SawHeader = true;
    } else if (Name == ".oat.methods") {
      if (auto E = parseMethodsSection(payloadOf(S), O))
        return E;
      SawMethods = true;
    } else if (Name == ".oat.stubs") {
      if (auto E = parseStubsSection(payloadOf(S), O))
        return E;
    } else if (Name == ".oat.outlined") {
      if (auto E = parseOutlinedSection(payloadOf(S), O))
        return E;
    }
  }
  if (!SawText || !SawHeader || !SawMethods)
    return makeError(ErrCat::BadFormat, "missing required OAT sections");
  if (auto E = validateOat(O))
    return E;
  return O;
}

Expected<std::span<const uint8_t>>
oat::sectionPayload(std::span<const uint8_t> Bytes, std::string_view Name) {
  ByteReader R(Bytes);
  uint8_t Ident[16];
  if (auto E = R.bytes(Ident, 16))
    return E;
  if (Ident[0] != 0x7f || Ident[1] != 'E' || Ident[2] != 'L' ||
      Ident[3] != 'F')
    return makeError(ErrCat::BadFormat, "not an ELF file");
  if (Ident[4] != 2 || Ident[5] != 1)
    return makeError(ErrCat::BadFormat, "not a little-endian ELF64");
  if (auto E = R.seek(0x28)) // e_shoff
    return E;
  READ_OR_RETURN(Shoff, R.u64());
  if (auto E = R.seek(0x3a)) // e_shentsize
    return E;
  READ_OR_RETURN(Shentsize, R.u16());
  if (Shentsize != SectionHeaderSize)
    return makeError(ErrCat::BadFormat, "unexpected section header size");
  READ_OR_RETURN(Shnum, R.u16());
  READ_OR_RETURN(Shstrndx, R.u16());
  if (Shnum == 0 || Shstrndx >= Shnum)
    return makeError(ErrCat::BadFormat, "bad section header table shape");
  if (Shoff > Bytes.size() ||
      uint64_t(Shnum) * SectionHeaderSize > Bytes.size() - Shoff)
    return makeError(ErrCat::BadFormat, "section header table out of bounds");

  // One header read: sh_name, sh_offset, sh_size (bounds-checked).
  struct Sect {
    uint32_t NameOff;
    uint64_t Off, Size;
  };
  auto readSect = [&](uint16_t S) -> Expected<Sect> {
    if (auto E = R.seek(static_cast<std::size_t>(Shoff) +
                        std::size_t(S) * SectionHeaderSize))
      return E;
    READ_OR_RETURN(NameOff, R.u32());
    if (auto E = R.seek(static_cast<std::size_t>(Shoff) +
                        std::size_t(S) * SectionHeaderSize + 24))
      return E;
    READ_OR_RETURN(Off, R.u64());
    READ_OR_RETURN(Size, R.u64());
    if (Off > Bytes.size() || Size > Bytes.size() - Off)
      return makeError(ErrCat::BadFormat, "section payload out of bounds");
    return Sect{NameOff, Off, Size};
  };

  auto Tab = readSect(Shstrndx);
  if (!Tab)
    return Tab.takeError();
  for (uint16_t S = 0; S < Shnum; ++S) {
    auto Sec = readSect(S);
    if (!Sec)
      return Sec.takeError();
    std::string_view Want = Name;
    uint64_t P = Tab->Off + Sec->NameOff;
    while (!Want.empty() && P < Tab->Off + Tab->Size &&
           Bytes[static_cast<std::size_t>(P)] ==
               static_cast<uint8_t>(Want.front())) {
      Want.remove_prefix(1);
      ++P;
    }
    if (Want.empty() && P < Tab->Off + Tab->Size &&
        Bytes[static_cast<std::size_t>(P)] == 0)
      return Bytes.subspan(static_cast<std::size_t>(Sec->Off),
                           static_cast<std::size_t>(Sec->Size));
  }
  return makeError(ErrCat::BadFormat,
                   "no section named '" + std::string(Name) + "'");
}

Error oat::writeOatFile(const OatFile &O, const std::string &Path) {
  std::vector<uint8_t> Bytes;
  serializeOat(O, Bytes);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot open '" + Path + "' for writing");
  std::size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  std::fclose(F);
  if (Written != Bytes.size())
    return makeError("short write to '" + Path + "'");
  return Error::success();
}

Expected<OatFile> oat::readOatFile(const std::string &Path) {
  auto M = MappedOat::open(Path);
  if (!M)
    return M.takeError();
  return M->parse();
}
