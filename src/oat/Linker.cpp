//===- oat/Linker.cpp - OAT linking -----------------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "oat/Linker.h"

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "support/MathExtras.h"

#include <unordered_map>
#include <unordered_set>

using namespace calibro;
using namespace calibro::oat;
using namespace calibro::codegen;

namespace {

/// NOP word used as inter-method alignment padding.
constexpr uint32_t PadWord = 0xD503201Fu;

/// Appends \p Code at the next \p Align boundary; returns its byte offset.
uint32_t place(std::vector<uint32_t> &Text, const std::vector<uint32_t> &Code,
               uint32_t Align) {
  uint64_t Off = alignTo(Text.size() * 4, Align);
  while (Text.size() * 4 < Off)
    Text.push_back(PadWord);
  uint32_t Result = static_cast<uint32_t>(Text.size() * 4);
  Text.insert(Text.end(), Code.begin(), Code.end());
  return Result;
}

/// Binds one branch site at absolute text offset \p SiteOff to \p TargetOff.
/// Call relocations must sit on `bl`; merge-thunk tails sit on plain `b`.
Error bindCall(std::vector<uint32_t> &Text, uint32_t SiteOff,
               uint32_t TargetOff, const std::string &Where,
               a64::Opcode Expect = a64::Opcode::Bl) {
  auto I = a64::decode(Text[SiteOff / 4]);
  if (!I || I->Op != Expect)
    return makeError(ErrCat::Link,
                     Where + (Expect == a64::Opcode::Bl
                                  ? ": relocation does not sit on a bl"
                                  : ": relocation does not sit on a b"));
  I->Imm = static_cast<int64_t>(TargetOff) - static_cast<int64_t>(SiteOff);
  auto Word = a64::encodeChecked(*I);
  if (!Word)
    return makeError(ErrCat::Link, Where + ": bl displacement out of range");
  Text[SiteOff / 4] = *Word;
  return Error::success();
}

} // namespace

namespace {

/// Checks that \p Plan places every method, stub and outlined function of
/// \p In exactly once. A valid plan is a permutation of the legacy order.
Error validateLayoutPlan(const LinkInput &In,
                         const std::vector<LayoutItem> &Plan) {
  const std::size_t Want =
      In.Methods.size() + In.Stubs.size() + In.Outlined.size();
  if (Plan.size() != Want)
    return makeError(ErrCat::Link,
                     "layout plan places " + std::to_string(Plan.size()) +
                         " items, image has " + std::to_string(Want));
  std::vector<uint8_t> SeenM(In.Methods.size(), 0), SeenS(In.Stubs.size(), 0),
      SeenO(In.Outlined.size(), 0);
  for (const LayoutItem &It : Plan) {
    std::vector<uint8_t> *Seen = nullptr;
    const char *What = "";
    switch (It.Kind) {
    case LayoutItemKind::Method:
      Seen = &SeenM;
      What = "method";
      break;
    case LayoutItemKind::Stub:
      Seen = &SeenS;
      What = "cto stub";
      break;
    case LayoutItemKind::Outlined:
      Seen = &SeenO;
      What = "outlined fn";
      break;
    }
    if (It.Index >= Seen->size())
      return makeError(ErrCat::Link, std::string("layout plan: ") + What +
                                         " slot " + std::to_string(It.Index) +
                                         " out of range");
    if ((*Seen)[It.Index]++)
      return makeError(ErrCat::Link, std::string("layout plan places ") +
                                         What + " slot " +
                                         std::to_string(It.Index) + " twice");
  }
  // Plan size matched and nothing repeats, so everything is covered.
  return Error::success();
}

} // namespace

Expected<OatFile> oat::link(const LinkInput &In) {
  OatFile O;
  O.AppName = In.AppName;
  O.BaseAddress = In.BaseAddress;

  // Placement is driven by a layout plan; an empty plan means the legacy
  // order — methods (16-aligned, like ART), then CTO stubs and outlined
  // functions (4-aligned; they are tiny and their density is the point).
  // Binding stays symbolic either way: every relocation names its target by
  // id and is resolved against the final offsets after all placement, so a
  // reordering plan needs no cooperation from the compiler or outliner.
  struct PendingReloc {
    uint32_t SiteOff;
    RelocKind Kind;
    uint32_t TargetId;
    std::string Where;
  };
  std::vector<PendingReloc> Pending;

  std::unordered_set<uint32_t> SeenMethodIdx;
  SeenMethodIdx.reserve(In.Methods.size());
  // MethodIdx -> position in O.Methods, for merge canonical lookups.
  std::unordered_map<uint32_t, std::size_t> MethodPos;
  MethodPos.reserve(In.Methods.size());

  // Create the method table in INPUT order (the table order is part of the
  // deterministic output surface and never follows the plan) and validate
  // every untrusted relocation offset before anything is placed, so error
  // ordering is independent of the plan too.
  for (const auto &M : In.Methods) {
    if (!SeenMethodIdx.insert(M.MethodIdx).second)
      return makeError(ErrCat::Link, "duplicate method index " +
                                         std::to_string(M.MethodIdx) +
                                         " (method " + M.Name + ")");
    // Untrusted relocation offsets would otherwise index Text out of
    // bounds inside bindCall.
    for (const auto &R : M.Relocs)
      if (R.Offset % 4 != 0 || uint64_t(R.Offset) + 4 > M.codeSizeBytes())
        return makeError(ErrCat::Link, "method " + M.Name +
                                           ": relocation offset " +
                                           std::to_string(R.Offset) +
                                           " outside the method");
    OatMethodEntry E;
    E.MethodIdx = M.MethodIdx;
    E.Name = M.Name;
    E.CodeOffset = 0; // Placed below.
    E.CodeSize = M.codeSizeBytes();
    E.Side = M.Side;
    E.Map = M.Map;
    MethodPos.emplace(M.MethodIdx, O.Methods.size());
    O.Methods.push_back(std::move(E));
  }
  for (const OutlinedFunc &Fn : In.Outlined)
    for (const auto &R : Fn.Relocs)
      if (R.Offset % 4 != 0 || uint64_t(R.Offset) + 4 > Fn.Code.size() * 4)
        return makeError(ErrCat::Link, "outlined fn " + std::to_string(Fn.Id) +
                                           ": relocation offset " +
                                           std::to_string(R.Offset) +
                                           " outside the function");

  // The plan: explicit when the layout stage produced one, else legacy.
  std::vector<LayoutItem> DefaultPlan;
  const std::vector<LayoutItem> *Plan = &In.Layout;
  if (In.Layout.empty()) {
    DefaultPlan.reserve(In.Methods.size() + In.Stubs.size() +
                        In.Outlined.size());
    for (uint32_t I = 0; I < In.Methods.size(); ++I)
      DefaultPlan.push_back({LayoutItemKind::Method, I});
    for (uint32_t I = 0; I < In.Stubs.size(); ++I)
      DefaultPlan.push_back({LayoutItemKind::Stub, I});
    for (uint32_t I = 0; I < In.Outlined.size(); ++I)
      DefaultPlan.push_back({LayoutItemKind::Outlined, I});
    Plan = &DefaultPlan;
  } else if (auto E = validateLayoutPlan(In, In.Layout)) {
    return E;
  }

  // Emit the stub/outlined tables in input order as well; placement below
  // only fills in offsets. Relocations name outlined functions by id, not
  // position; resolve them through a hash map so binding is O(1) per site.
  // Building the map up front also catches duplicate ids, which the old
  // scan silently resolved to the first copy.
  std::vector<uint32_t> StubOff(In.Stubs.size(), 0);
  for (const auto &S : In.Stubs)
    O.CtoStubs.push_back(
        {S.Kind, S.Imm, 0, static_cast<uint32_t>(S.Code.size() * 4)});
  std::unordered_map<uint32_t, uint32_t> OutOffById;
  OutOffById.reserve(In.Outlined.size());
  for (const OutlinedFunc &Fn : In.Outlined) {
    O.Outlined.push_back({Fn.Id, 0, static_cast<uint32_t>(Fn.Code.size() * 4)});
    if (!OutOffById.emplace(Fn.Id, 0u).second)
      return makeError(ErrCat::Link,
                       "duplicate outlined-function id " + std::to_string(Fn.Id));
  }

  // One placement loop over the plan. Everything an item owns (its table
  // offset, its relocation sites) keys off the offset assigned here.
  for (const LayoutItem &It : *Plan) {
    switch (It.Kind) {
    case LayoutItemKind::Method: {
      const CompiledMethod &M = In.Methods[It.Index];
      uint32_t Off = place(O.Text, M.Code, 16);
      O.Methods[It.Index].CodeOffset = Off;
      for (const auto &R : M.Relocs)
        Pending.push_back(
            {Off + R.Offset, R.Kind, R.TargetId, "method " + M.Name});
      break;
    }
    case LayoutItemKind::Stub: {
      uint32_t Off = place(O.Text, In.Stubs[It.Index].Code, 4);
      StubOff[It.Index] = Off;
      O.CtoStubs[It.Index].CodeOffset = Off;
      break;
    }
    case LayoutItemKind::Outlined: {
      const OutlinedFunc &Fn = In.Outlined[It.Index];
      uint32_t Off = place(O.Text, Fn.Code, 4);
      O.Outlined[It.Index].CodeOffset = Off;
      OutOffById[Fn.Id] = Off;
      for (const auto &R : Fn.Relocs)
        Pending.push_back({Off + R.Offset, R.Kind, R.TargetId,
                           "outlined fn " + std::to_string(Fn.Id)});
      break;
    }
    }
  }

  // Stamp thunk provenance onto the already-placed prefix bodies, and
  // append alias entries sharing their canonical's range outright.
  for (const MergeThunkRef &T : In.MergeThunks) {
    auto Self = MethodPos.find(T.MethodIdx);
    if (Self == MethodPos.end())
      return makeError(ErrCat::Link, "merge thunk for unlinked method " +
                                         std::to_string(T.MethodIdx));
    auto Canon = MethodPos.find(T.CanonMethodIdx);
    if (Canon == MethodPos.end())
      return makeError(ErrCat::Link, "merge thunk canonical method " +
                                         std::to_string(T.CanonMethodIdx) +
                                         " not linked");
    if (T.EntryByteOff % 4 != 0 ||
        T.EntryByteOff >= O.Methods[Canon->second].CodeSize)
      return makeError(ErrCat::Link,
                       "merge thunk entry offset outside canonical body");
    O.Methods[Self->second].MergedInto = T.CanonMethodIdx;
    O.Methods[Self->second].MergedEntryOff = T.EntryByteOff;
  }
  for (const MergeAliasRef &A : In.Aliases) {
    if (!SeenMethodIdx.insert(A.MethodIdx).second)
      return makeError(ErrCat::Link, "duplicate method index " +
                                         std::to_string(A.MethodIdx) +
                                         " (merge alias " + A.Name + ")");
    auto Canon = MethodPos.find(A.CanonMethodIdx);
    if (Canon == MethodPos.end())
      return makeError(ErrCat::Link, "merge alias canonical method " +
                                         std::to_string(A.CanonMethodIdx) +
                                         " not linked");
    OatMethodEntry E;
    E.MethodIdx = A.MethodIdx;
    E.Name = A.Name;
    E.CodeOffset = O.Methods[Canon->second].CodeOffset;
    E.CodeSize = O.Methods[Canon->second].CodeSize;
    E.Side = O.Methods[Canon->second].Side;
    E.Map = O.Methods[Canon->second].Map;
    E.MergedInto = A.CanonMethodIdx;
    O.Methods.push_back(std::move(E));
  }

  // Bind every call now that all addresses exist.
  for (const auto &P : Pending) {
    uint32_t Target;
    a64::Opcode Expect = a64::Opcode::Bl;
    switch (P.Kind) {
    case RelocKind::CtoStub:
      if (P.TargetId >= StubOff.size())
        return makeError(ErrCat::Link, P.Where + ": dangling CTO stub relocation");
      Target = StubOff[P.TargetId];
      break;
    case RelocKind::OutlinedFunc: {
      auto It = OutOffById.find(P.TargetId);
      if (It == OutOffById.end())
        return makeError(ErrCat::Link, P.Where + ": dangling outlined-function relocation");
      Target = It->second;
      break;
    }
    case RelocKind::MergedBody: {
      if (P.TargetId >= In.MergeThunks.size())
        return makeError(ErrCat::Link,
                         P.Where + ": dangling merge-thunk relocation");
      const MergeThunkRef &T = In.MergeThunks[P.TargetId];
      auto It = MethodPos.find(T.CanonMethodIdx);
      if (It == MethodPos.end())
        return makeError(ErrCat::Link,
                         P.Where + ": merge canonical method not linked");
      Target = O.Methods[It->second].CodeOffset + T.EntryByteOff;
      Expect = a64::Opcode::B;
      break;
    }
    default:
      return makeError(ErrCat::Link, P.Where + ": unknown relocation kind");
    }
    if (auto E = bindCall(O.Text, P.SiteOff, Target, P.Where, Expect))
      return E;
  }

  return O;
}
