//===- oat/Linker.cpp - OAT linking -----------------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "oat/Linker.h"

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "support/MathExtras.h"

#include <unordered_map>
#include <unordered_set>

using namespace calibro;
using namespace calibro::oat;
using namespace calibro::codegen;

namespace {

/// NOP word used as inter-method alignment padding.
constexpr uint32_t PadWord = 0xD503201Fu;

/// Appends \p Code at the next \p Align boundary; returns its byte offset.
uint32_t place(std::vector<uint32_t> &Text, const std::vector<uint32_t> &Code,
               uint32_t Align) {
  uint64_t Off = alignTo(Text.size() * 4, Align);
  while (Text.size() * 4 < Off)
    Text.push_back(PadWord);
  uint32_t Result = static_cast<uint32_t>(Text.size() * 4);
  Text.insert(Text.end(), Code.begin(), Code.end());
  return Result;
}

/// Binds one branch site at absolute text offset \p SiteOff to \p TargetOff.
/// Call relocations must sit on `bl`; merge-thunk tails sit on plain `b`.
Error bindCall(std::vector<uint32_t> &Text, uint32_t SiteOff,
               uint32_t TargetOff, const std::string &Where,
               a64::Opcode Expect = a64::Opcode::Bl) {
  auto I = a64::decode(Text[SiteOff / 4]);
  if (!I || I->Op != Expect)
    return makeError(ErrCat::Link,
                     Where + (Expect == a64::Opcode::Bl
                                  ? ": relocation does not sit on a bl"
                                  : ": relocation does not sit on a b"));
  I->Imm = static_cast<int64_t>(TargetOff) - static_cast<int64_t>(SiteOff);
  auto Word = a64::encodeChecked(*I);
  if (!Word)
    return makeError(ErrCat::Link, Where + ": bl displacement out of range");
  Text[SiteOff / 4] = *Word;
  return Error::success();
}

} // namespace

Expected<OatFile> oat::link(const LinkInput &In) {
  OatFile O;
  O.AppName = In.AppName;
  O.BaseAddress = In.BaseAddress;

  // Layout: methods (16-aligned, like ART), then CTO stubs and outlined
  // functions (4-aligned; they are tiny and their density is the point).
  struct PendingReloc {
    uint32_t SiteOff;
    RelocKind Kind;
    uint32_t TargetId;
    std::string Where;
  };
  std::vector<PendingReloc> Pending;

  std::unordered_set<uint32_t> SeenMethodIdx;
  SeenMethodIdx.reserve(In.Methods.size());
  // MethodIdx -> position in O.Methods, for merge canonical lookups.
  std::unordered_map<uint32_t, std::size_t> MethodPos;
  MethodPos.reserve(In.Methods.size());
  for (const auto &M : In.Methods) {
    if (!SeenMethodIdx.insert(M.MethodIdx).second)
      return makeError(ErrCat::Link, "duplicate method index " +
                                         std::to_string(M.MethodIdx) +
                                         " (method " + M.Name + ")");
    // Untrusted relocation offsets would otherwise index Text out of
    // bounds inside bindCall.
    for (const auto &R : M.Relocs)
      if (R.Offset % 4 != 0 || uint64_t(R.Offset) + 4 > M.codeSizeBytes())
        return makeError(ErrCat::Link, "method " + M.Name +
                                           ": relocation offset " +
                                           std::to_string(R.Offset) +
                                           " outside the method");
    uint32_t Off = place(O.Text, M.Code, 16);
    OatMethodEntry E;
    E.MethodIdx = M.MethodIdx;
    E.Name = M.Name;
    E.CodeOffset = Off;
    E.CodeSize = M.codeSizeBytes();
    E.Side = M.Side;
    E.Map = M.Map;
    MethodPos.emplace(M.MethodIdx, O.Methods.size());
    O.Methods.push_back(std::move(E));
    for (const auto &R : M.Relocs)
      Pending.push_back({Off + R.Offset, R.Kind, R.TargetId,
                         "method " + M.Name});
  }

  // Stamp thunk provenance onto the already-placed prefix bodies, and
  // append alias entries sharing their canonical's range outright.
  for (const MergeThunkRef &T : In.MergeThunks) {
    auto Self = MethodPos.find(T.MethodIdx);
    if (Self == MethodPos.end())
      return makeError(ErrCat::Link, "merge thunk for unlinked method " +
                                         std::to_string(T.MethodIdx));
    auto Canon = MethodPos.find(T.CanonMethodIdx);
    if (Canon == MethodPos.end())
      return makeError(ErrCat::Link, "merge thunk canonical method " +
                                         std::to_string(T.CanonMethodIdx) +
                                         " not linked");
    if (T.EntryByteOff % 4 != 0 ||
        T.EntryByteOff >= O.Methods[Canon->second].CodeSize)
      return makeError(ErrCat::Link,
                       "merge thunk entry offset outside canonical body");
    O.Methods[Self->second].MergedInto = T.CanonMethodIdx;
    O.Methods[Self->second].MergedEntryOff = T.EntryByteOff;
  }
  for (const MergeAliasRef &A : In.Aliases) {
    if (!SeenMethodIdx.insert(A.MethodIdx).second)
      return makeError(ErrCat::Link, "duplicate method index " +
                                         std::to_string(A.MethodIdx) +
                                         " (merge alias " + A.Name + ")");
    auto Canon = MethodPos.find(A.CanonMethodIdx);
    if (Canon == MethodPos.end())
      return makeError(ErrCat::Link, "merge alias canonical method " +
                                         std::to_string(A.CanonMethodIdx) +
                                         " not linked");
    OatMethodEntry E;
    E.MethodIdx = A.MethodIdx;
    E.Name = A.Name;
    E.CodeOffset = O.Methods[Canon->second].CodeOffset;
    E.CodeSize = O.Methods[Canon->second].CodeSize;
    E.Side = O.Methods[Canon->second].Side;
    E.Map = O.Methods[Canon->second].Map;
    E.MergedInto = A.CanonMethodIdx;
    O.Methods.push_back(std::move(E));
  }

  std::vector<uint32_t> StubOff(In.Stubs.size());
  for (std::size_t S = 0; S < In.Stubs.size(); ++S) {
    uint32_t Off = place(O.Text, In.Stubs[S].Code, 4);
    StubOff[S] = Off;
    O.CtoStubs.push_back({In.Stubs[S].Kind, In.Stubs[S].Imm, Off,
                          static_cast<uint32_t>(In.Stubs[S].Code.size() * 4)});
  }

  // Relocations name outlined functions by id, not position; resolve them
  // through a hash map so binding is O(1) per site instead of a linear scan
  // over every outlined function. Building the map up front also catches
  // duplicate ids, which the old scan silently resolved to the first copy.
  std::unordered_map<uint32_t, uint32_t> OutOffById;
  OutOffById.reserve(In.Outlined.size());
  for (const OutlinedFunc &Fn : In.Outlined) {
    uint32_t Off = place(O.Text, Fn.Code, 4);
    O.Outlined.push_back(
        {Fn.Id, Off, static_cast<uint32_t>(Fn.Code.size() * 4)});
    for (const auto &R : Fn.Relocs)
      if (R.Offset % 4 != 0 || uint64_t(R.Offset) + 4 > Fn.Code.size() * 4)
        return makeError(ErrCat::Link, "outlined fn " + std::to_string(Fn.Id) +
                                           ": relocation offset " +
                                           std::to_string(R.Offset) +
                                           " outside the function");
    if (!OutOffById.emplace(Fn.Id, Off).second)
      return makeError(ErrCat::Link, "duplicate outlined-function id " +
                       std::to_string(Fn.Id));
    for (const auto &R : Fn.Relocs)
      Pending.push_back({Off + R.Offset, R.Kind, R.TargetId,
                         "outlined fn " + std::to_string(Fn.Id)});
  }

  // Bind every call now that all addresses exist.
  for (const auto &P : Pending) {
    uint32_t Target;
    a64::Opcode Expect = a64::Opcode::Bl;
    switch (P.Kind) {
    case RelocKind::CtoStub:
      if (P.TargetId >= StubOff.size())
        return makeError(ErrCat::Link, P.Where + ": dangling CTO stub relocation");
      Target = StubOff[P.TargetId];
      break;
    case RelocKind::OutlinedFunc: {
      auto It = OutOffById.find(P.TargetId);
      if (It == OutOffById.end())
        return makeError(ErrCat::Link, P.Where + ": dangling outlined-function relocation");
      Target = It->second;
      break;
    }
    case RelocKind::MergedBody: {
      if (P.TargetId >= In.MergeThunks.size())
        return makeError(ErrCat::Link,
                         P.Where + ": dangling merge-thunk relocation");
      const MergeThunkRef &T = In.MergeThunks[P.TargetId];
      auto It = MethodPos.find(T.CanonMethodIdx);
      if (It == MethodPos.end())
        return makeError(ErrCat::Link,
                         P.Where + ": merge canonical method not linked");
      Target = O.Methods[It->second].CodeOffset + T.EntryByteOff;
      Expect = a64::Opcode::B;
      break;
    }
    default:
      return makeError(ErrCat::Link, P.Where + ": unknown relocation kind");
    }
    if (auto E = bindCall(O.Text, P.SiteOff, Target, P.Where, Expect))
      return E;
  }

  return O;
}
