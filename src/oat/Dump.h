//===- oat/Dump.h - Textual OAT dump ----------------------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a linked OAT image as text (oatdump-style), with per-method
/// disassembly that uses the side information to print embedded data as
/// data rather than mis-decoded instructions.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_OAT_DUMP_H
#define CALIBRO_OAT_DUMP_H

#include "oat/OatFile.h"

#include <string>

namespace calibro {
namespace oat {

/// Renders a summary header plus, when \p Disassemble is set, a full
/// disassembly of every method, stub and outlined function.
std::string dumpOat(const OatFile &O, bool Disassemble);

/// Disassembles one method entry (with absolute addresses).
std::string dumpMethod(const OatFile &O, const OatMethodEntry &M);

} // namespace oat
} // namespace calibro

#endif // CALIBRO_OAT_DUMP_H
