//===- oat/OatFile.h - OAT image model --------------------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory model of an OAT file: the linked .text image plus the
/// method table, CTO stub table, outlined-function table, per-method
/// StackMaps and the retained side information. Real OAT files are special
/// ELF files; this model keeps exactly the parts the paper's pipeline and
/// experiments touch (text segment for size accounting, method metadata for
/// runtime lookup, StackMaps for the §3.5 consistency obligation).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_OAT_OATFILE_H
#define CALIBRO_OAT_OATFILE_H

#include "codegen/CompiledMethod.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace calibro {
namespace oat {

/// MergedInto value meaning "not merged".
inline constexpr uint32_t NoMergeParent = 0xffffffffu;

/// One linked method.
struct OatMethodEntry {
  uint32_t MethodIdx = 0;
  std::string Name;
  uint32_t CodeOffset = 0; ///< Byte offset of the entry point in .text.
  uint32_t CodeSize = 0;   ///< Bytes, including embedded pools.
  codegen::MethodSideInfo Side; ///< Post-outlining side information.
  codegen::StackMap Map;
  /// Global-merge provenance: the canonical method's index when this entry
  /// is an alias (shares the canonical code range outright) or a thunk
  /// (own prefix ending in a `b` into the canonical body).
  uint32_t MergedInto = NoMergeParent;
  /// Thunk entries only: byte offset inside the canonical body that the
  /// trailing branch targets. Zero for aliases.
  uint32_t MergedEntryOff = 0;
};

/// One linked CTO stub.
struct OatStubEntry {
  codegen::CtoStubKind Kind = codegen::CtoStubKind::JavaCall;
  uint32_t Imm = 0;
  uint32_t CodeOffset = 0;
  uint32_t CodeSize = 0;
};

/// One linked outlined function.
struct OatOutlinedEntry {
  uint32_t Id = 0;
  uint32_t CodeOffset = 0;
  uint32_t CodeSize = 0;
};

/// A linked OAT image.
struct OatFile {
  std::string AppName;
  uint64_t BaseAddress = 0;   ///< Load address of .text.
  std::vector<uint32_t> Text; ///< The .text image, word-addressed.
  std::vector<OatMethodEntry> Methods;
  std::vector<OatStubEntry> CtoStubs;
  std::vector<OatOutlinedEntry> Outlined;

  /// .text size in bytes — the paper's on-disk code-size metric (Table 4).
  uint64_t textBytes() const { return Text.size() * 4; }

  /// StackMap metadata size in bytes (NativePc + DexPc per entry), part of
  /// the memory-usage metric (Table 5).
  uint64_t stackMapBytes() const;

  /// Absolute entry address of a method.
  uint64_t methodAddress(const OatMethodEntry &M) const {
    return BaseAddress + M.CodeOffset;
  }

  /// Finds the method entry by global method index; nullptr when absent.
  const OatMethodEntry *findMethod(uint32_t MethodIdx) const;

  /// Finds the method whose code range contains \p TextOff; nullptr when
  /// the offset falls outside every method (stub, outlined code, padding).
  const OatMethodEntry *methodContaining(uint32_t TextOff) const;

  /// Finds the outlined function whose range contains \p TextOff.
  const OatOutlinedEntry *outlinedContaining(uint32_t TextOff) const;

  /// True when the method has a safepoint whose native PC is \p PcOff
  /// (relative to the method's CodeOffset).
  static bool hasSafepoint(const OatMethodEntry &M, uint32_t PcOff);
};

/// Checks internal consistency of a linked image: entry ranges are disjoint
/// and inside .text, every recorded PC-relative instruction decodes and its
/// actual target equals the recorded one, StackMap entries sit right after
/// call instructions, and embedded-data/slow-path ranges are in bounds.
/// This is the §3.5 "binary code vs. metadata" invariant, run after every
/// rewrite in tests.
Error validateOat(const OatFile &O);

} // namespace oat
} // namespace calibro

#endif // CALIBRO_OAT_OATFILE_H
