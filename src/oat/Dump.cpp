//===- oat/Dump.cpp - Textual OAT dump --------------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "oat/Dump.h"

#include "aarch64/Decoder.h"
#include "aarch64/Disasm.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace calibro;
using namespace calibro::oat;

namespace {

void appendf(std::string &S, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  S += Buf;
}

bool inEmbedded(const codegen::MethodSideInfo &Side, uint32_t Off) {
  for (const auto &D : Side.EmbeddedData)
    if (Off >= D.Offset && Off < D.Offset + D.Size)
      return true;
  return false;
}

void disasmRange(std::string &S, const OatFile &O, uint32_t Begin,
                 uint32_t Size, const codegen::MethodSideInfo *Side) {
  for (uint32_t Off = 0; Off < Size; Off += 4) {
    uint64_t Addr = O.BaseAddress + Begin + Off;
    uint32_t Word = O.Text[(Begin + Off) / 4];
    if (Side && inEmbedded(*Side, Off)) {
      appendf(S, "  0x%" PRIx64 ": .word 0x%08x  ; embedded data\n", Addr,
              Word);
      continue;
    }
    auto I = a64::decode(Word);
    if (I)
      appendf(S, "  0x%" PRIx64 ": %s\n", Addr,
              a64::toString(*I, Addr).c_str());
    else
      appendf(S, "  0x%" PRIx64 ": .word 0x%08x  ; <undecodable>\n", Addr,
              Word);
  }
}

const char *stubKindName(codegen::CtoStubKind K) {
  switch (K) {
  case codegen::CtoStubKind::JavaCall:
    return "JavaCall";
  case codegen::CtoStubKind::RtCall:
    return "RtCall";
  case codegen::CtoStubKind::StackCheck:
    return "StackCheck";
  }
  return "?";
}

} // namespace

std::string oat::dumpMethod(const OatFile &O, const OatMethodEntry &M) {
  std::string S;
  appendf(S, "0x%" PRIx64 " <%s> (%u bytes, %zu safepoints)\n",
          O.methodAddress(M), M.Name.c_str(), M.CodeSize,
          M.Map.Entries.size());
  disasmRange(S, O, M.CodeOffset, M.CodeSize, &M.Side);
  return S;
}

std::string oat::dumpOat(const OatFile &O, bool Disassemble) {
  std::string S;
  appendf(S, "OAT image '%s'\n", O.AppName.c_str());
  appendf(S, "  base address : 0x%" PRIx64 "\n", O.BaseAddress);
  appendf(S, "  .text size   : %" PRIu64 " bytes\n", O.textBytes());
  appendf(S, "  methods      : %zu\n", O.Methods.size());
  appendf(S, "  cto stubs    : %zu\n", O.CtoStubs.size());
  appendf(S, "  outlined fns : %zu\n", O.Outlined.size());
  appendf(S, "  stackmap size: %" PRIu64 " bytes\n", O.stackMapBytes());
  if (!Disassemble)
    return S;

  for (const auto &M : O.Methods) {
    S += '\n';
    S += dumpMethod(O, M);
  }
  for (const auto &T : O.CtoStubs) {
    appendf(S, "\n0x%" PRIx64 " <cto:%s#%u>\n", O.BaseAddress + T.CodeOffset,
            stubKindName(T.Kind), T.Imm);
    disasmRange(S, O, T.CodeOffset, T.CodeSize, nullptr);
  }
  for (const auto &F : O.Outlined) {
    appendf(S, "\n0x%" PRIx64 " <OutlinedFunc%u>\n",
            O.BaseAddress + F.CodeOffset, F.Id);
    disasmRange(S, O, F.CodeOffset, F.CodeSize, nullptr);
  }
  return S;
}
