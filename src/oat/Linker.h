//===- oat/Linker.h - OAT linking -------------------------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The link step of the pipeline (paper Fig. 5, "linking"): lays out every
/// compiled method, CTO stub and outlined function into one .text image,
/// binds the symbolic `bl` targets, and emits the OatFile. Binding happens
/// *after* link-time outlining, which is why the outliner never patches
/// call instructions (paper §3.2, last bullet).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_OAT_LINKER_H
#define CALIBRO_OAT_LINKER_H

#include "oat/OatFile.h"

namespace calibro {
namespace oat {

/// An identical-body merge victim: gets its own OatMethodEntry sharing the
/// canonical method's code range and metadata, contributing zero text.
struct MergeAliasRef {
  uint32_t MethodIdx = 0;
  std::string Name;
  uint32_t CanonMethodIdx = 0;
};

/// A thunk merge: MethodIdx is still in Methods (prefix body ending in a
/// MergedBody relocation) and its trailing `b` must land EntryByteOff bytes
/// into the canonical method's body.
struct MergeThunkRef {
  uint32_t MethodIdx = 0;
  uint32_t CanonMethodIdx = 0;
  uint32_t EntryByteOff = 0;
};

/// What one slot of a layout plan places into .text.
enum class LayoutItemKind : uint8_t { Method, Stub, Outlined };

/// One placement decision: the Index-th element of the matching LinkInput
/// vector (Methods, Stubs or Outlined).
struct LayoutItem {
  LayoutItemKind Kind = LayoutItemKind::Method;
  uint32_t Index = 0;

  bool operator==(const LayoutItem &O) const {
    return Kind == O.Kind && Index == O.Index;
  }
};

/// Everything the linker consumes for one app.
struct LinkInput {
  std::string AppName;
  uint64_t BaseAddress = 0x10000000;
  std::vector<codegen::CompiledMethod> Methods;
  std::vector<codegen::CtoStub> Stubs;
  std::vector<codegen::OutlinedFunc> Outlined;
  /// Global-merge outputs (empty unless the merge pass ran). MergedBody
  /// relocations index MergeThunks by TargetId.
  std::vector<MergeAliasRef> Aliases;
  std::vector<MergeThunkRef> MergeThunks;
  /// Placement order of the .text section. Empty = the legacy order (every
  /// method in input order, then CTO stubs, then outlined functions) —
  /// byte-identical to builds that predate the layout stage. A non-empty
  /// plan must place every method, stub and outlined function exactly once.
  /// Only text offsets follow the plan: the emitted method/stub/outlined
  /// TABLES always keep input order, so every symbolic target (CtoStub /
  /// OutlinedFunc / MergedBody relocations) resolves against the final
  /// layout map regardless of where the plan put its body.
  std::vector<LayoutItem> Layout;
};

/// Links \p In into an OatFile. Fails on dangling relocations or malformed
/// call sites.
Expected<OatFile> link(const LinkInput &In);

} // namespace oat
} // namespace calibro

#endif // CALIBRO_OAT_LINKER_H
