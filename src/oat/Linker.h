//===- oat/Linker.h - OAT linking -------------------------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The link step of the pipeline (paper Fig. 5, "linking"): lays out every
/// compiled method, CTO stub and outlined function into one .text image,
/// binds the symbolic `bl` targets, and emits the OatFile. Binding happens
/// *after* link-time outlining, which is why the outliner never patches
/// call instructions (paper §3.2, last bullet).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_OAT_LINKER_H
#define CALIBRO_OAT_LINKER_H

#include "oat/OatFile.h"

namespace calibro {
namespace oat {

/// Everything the linker consumes for one app.
struct LinkInput {
  std::string AppName;
  uint64_t BaseAddress = 0x10000000;
  std::vector<codegen::CompiledMethod> Methods;
  std::vector<codegen::CtoStub> Stubs;
  std::vector<codegen::OutlinedFunc> Outlined;
};

/// Links \p In into an OatFile. Fails on dangling relocations or malformed
/// call sites.
Expected<OatFile> link(const LinkInput &In);

} // namespace oat
} // namespace calibro

#endif // CALIBRO_OAT_LINKER_H
