//===- oat/MappedOat.cpp - Zero-copy OAT file reader ----------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "oat/MappedOat.h"

#include "oat/Serialize.h"

#include <cstdint>

using namespace calibro;
using namespace calibro::oat;

Expected<MappedOat> MappedOat::open(const std::string &Path) {
  auto M = support::MappedFile::open(Path);
  if (!M)
    return makeError("cannot open '" + Path + "'");
  return MappedOat(std::move(*M));
}

Expected<OatFile> MappedOat::parse() const {
  return deserializeOat(Map.bytes());
}

Expected<std::span<const uint32_t>> MappedOat::textWords() const {
  auto Payload = sectionPayload(Map.bytes(), ".text");
  if (!Payload)
    return Payload.takeError();
  if (Payload->size() % 4 != 0)
    return makeError(ErrCat::BadFormat, ".text size not word-aligned");
  if (reinterpret_cast<uintptr_t>(Payload->data()) % alignof(uint32_t) != 0)
    return makeError(ErrCat::BadFormat, ".text payload misaligned");
  return std::span<const uint32_t>(
      reinterpret_cast<const uint32_t *>(Payload->data()),
      Payload->size() / 4);
}
