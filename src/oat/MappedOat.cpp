//===- oat/MappedOat.cpp - Zero-copy OAT file reader ----------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "oat/MappedOat.h"

#include "oat/Serialize.h"

using namespace calibro;
using namespace calibro::oat;

Expected<MappedOat> MappedOat::open(const std::string &Path) {
  auto M = support::MappedFile::open(Path);
  if (!M)
    return makeError("cannot open '" + Path + "'");
  return MappedOat(std::move(*M));
}

Expected<OatFile> MappedOat::parse() const {
  return deserializeOat(Map.bytes());
}
