//===- oat/Serialize.h - OAT files on disk (special ELF) --------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk OAT format. As the paper notes (§1, challenge 1), "OAT files
/// are special ELF files, containing a part of Android-specific content":
/// this writer emits a genuine ELF64 (little-endian, EM_AARCH64) whose
/// sections carry the image —
///
///   .text             the linked code image (loaded at BaseAddress)
///   .oat.header       app name, base address, format version
///   .oat.methods      method table: index, name, range, StackMap (varint
///                     delta-compressed, like ART), side information
///   .oat.stubs        CTO stub table
///   .oat.outlined     outlined-function table
///   .shstrtab         section names
///
/// The reader parses the ELF structure, locates the sections by name, and
/// reconstructs the OatFile exactly (round-trip is bit-faithful; tests
/// assert re-serialization is byte-identical).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_OAT_SERIALIZE_H
#define CALIBRO_OAT_SERIALIZE_H

#include "oat/OatFile.h"
#include "support/BinaryStream.h"

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace calibro {
namespace oat {

/// Current format version, stored in .oat.header. Version 2 added the
/// per-method merge provenance fields (MergedInto, MergedEntryOff).
inline constexpr uint32_t OatFormatVersion = 2;

/// Shared payload encodings for per-method metadata (varint
/// delta-compressed, the way ART packs its CodeInfo tables). Exported so
/// the incremental build cache stores compiled-method blobs in the exact
/// on-disk encoding the OAT writer uses — one codec, one set of bugs.
void putStackMap(ByteWriter &W, const codegen::StackMap &Map);
void putSideInfo(ByteWriter &W, const codegen::MethodSideInfo &S);
Error parseStackMap(ByteReader &R, codegen::StackMap &Map);
Error parseSideInfo(ByteReader &R, codegen::MethodSideInfo &S);

/// Serializes \p O into an ELF64 image, replacing \p Out's contents. The
/// zero-copy write path: the whole layout (including e_shoff) is computed
/// before a byte is stored, the buffer is sized exactly once, and .text is
/// copied straight from the linker's word array into its final position —
/// no intermediate section payload, no post-hoc patching. A caller that
/// reuses \p Out across builds amortizes even that one allocation.
void serializeOat(const OatFile &O, std::vector<uint8_t> &Out);

/// Convenience wrapper returning a fresh buffer.
std::vector<uint8_t> serializeOat(const OatFile &O);

/// Parses an ELF64 OAT image. Fails with a message on any structural
/// corruption (bad magic, truncated sections, version mismatch).
Expected<OatFile> deserializeOat(std::span<const uint8_t> Bytes);

/// Locates section \p Name in the ELF64 image \p Bytes and returns a view
/// of its payload WITHIN \p Bytes — no copy, no full parse, no payload
/// decoding. The minimal validated walk (ident, section header table,
/// per-section bounds) is the same one deserializeOat performs, so any
/// image it accepts this accepts. The view aliases \p Bytes: it is valid
/// exactly as long as the caller's storage (e.g. a MappedOat's mapping).
/// Fails on structural corruption or when no such section exists.
Expected<std::span<const uint8_t>>
sectionPayload(std::span<const uint8_t> Bytes, std::string_view Name);

/// File convenience wrappers.
Error writeOatFile(const OatFile &O, const std::string &Path);
Expected<OatFile> readOatFile(const std::string &Path);

} // namespace oat
} // namespace calibro

#endif // CALIBRO_OAT_SERIALIZE_H
