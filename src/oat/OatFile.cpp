//===- oat/OatFile.cpp - OAT image model ------------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "oat/OatFile.h"

#include "aarch64/Decoder.h"
#include "aarch64/PcRel.h"

#include <algorithm>

using namespace calibro;
using namespace calibro::oat;

uint64_t OatFile::stackMapBytes() const {
  uint64_t N = 0;
  for (const auto &M : Methods)
    N += M.Map.Entries.size() * sizeof(codegen::StackMapEntry);
  return N;
}

const OatMethodEntry *OatFile::findMethod(uint32_t MethodIdx) const {
  for (const auto &M : Methods)
    if (M.MethodIdx == MethodIdx)
      return &M;
  return nullptr;
}

const OatMethodEntry *OatFile::methodContaining(uint32_t TextOff) const {
  for (const auto &M : Methods)
    if (TextOff >= M.CodeOffset && TextOff < M.CodeOffset + M.CodeSize)
      return &M;
  return nullptr;
}

const OatOutlinedEntry *OatFile::outlinedContaining(uint32_t TextOff) const {
  for (const auto &F : Outlined)
    if (TextOff >= F.CodeOffset && TextOff < F.CodeOffset + F.CodeSize)
      return &F;
  return nullptr;
}

bool OatFile::hasSafepoint(const OatMethodEntry &M, uint32_t PcOff) {
  return std::any_of(M.Map.Entries.begin(), M.Map.Entries.end(),
                     [PcOff](const codegen::StackMapEntry &E) {
                       return E.NativePcOffset == PcOff;
                     });
}

namespace {

Error failAt(const std::string &Where, const char *Msg) {
  return makeError(Where + ": " + Msg);
}

/// True when \p Off lies inside one of the method's embedded-data ranges.
bool inEmbeddedData(const codegen::MethodSideInfo &Side, uint32_t Off) {
  for (const auto &D : Side.EmbeddedData)
    if (Off >= D.Offset && Off < D.Offset + D.Size)
      return true;
  return false;
}

} // namespace

Error oat::validateOat(const OatFile &O) {
  uint64_t TextSize = O.textBytes();

  // Ranges: in bounds, word-aligned, mutually disjoint.
  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  auto addRange = [&](uint32_t Off, uint32_t Size,
                      const std::string &Where) -> Error {
    if (Off % 4 != 0 || Size % 4 != 0)
      return failAt(Where, "unaligned code range");
    if (Off + static_cast<uint64_t>(Size) > TextSize)
      return failAt(Where, "code range exceeds .text");
    Ranges.emplace_back(Off, Off + Size);
    return Error::success();
  };
  for (const auto &M : O.Methods) {
    if (M.MergedInto != NoMergeParent) {
      const OatMethodEntry *Canon = O.findMethod(M.MergedInto);
      if (Canon && M.CodeOffset == Canon->CodeOffset)
        continue; // Alias: shares the canonical range; provenance checks it.
    }
    if (auto E = addRange(M.CodeOffset, M.CodeSize, "method " + M.Name))
      return E;
  }
  for (const auto &S : O.CtoStubs)
    if (auto E = addRange(S.CodeOffset, S.CodeSize, "cto stub"))
      return E;
  for (const auto &F : O.Outlined)
    if (auto E =
            addRange(F.CodeOffset, F.CodeSize,
                     "outlined fn " + std::to_string(F.Id)))
      return E;
  std::sort(Ranges.begin(), Ranges.end());
  for (std::size_t I = 1; I < Ranges.size(); ++I)
    if (Ranges[I].first < Ranges[I - 1].second)
      return makeError("validateOat: overlapping code ranges");

  // Merge provenance: every merged entry names a live, unmerged canonical.
  // Aliases must mirror the canonical range outright; thunks must end in an
  // unconditional `b` landing exactly on the recorded canonical-body entry.
  for (const auto &M : O.Methods) {
    if (M.MergedInto == NoMergeParent)
      continue;
    std::string Where = "method " + M.Name;
    if (M.MergedInto == M.MethodIdx)
      return failAt(Where, "method merged into itself");
    const OatMethodEntry *Canon = O.findMethod(M.MergedInto);
    if (!Canon)
      return failAt(Where, "merge parent not in method table");
    if (Canon->MergedInto != NoMergeParent)
      return failAt(Where, "merge parent is itself merged");
    if (M.CodeOffset == Canon->CodeOffset) {
      // Alias: same body, zero extra text.
      if (M.CodeSize != Canon->CodeSize || M.MergedEntryOff != 0)
        return failAt(Where, "malformed merge alias entry");
    } else {
      // Thunk: private prefix plus the trailing tail-branch.
      if (M.MergedEntryOff % 4 != 0 || M.MergedEntryOff >= Canon->CodeSize)
        return failAt(Where, "merge entry offset out of canonical body");
      if (M.CodeSize < 8)
        return failAt(Where, "merge thunk too small");
      uint32_t BranchOff = M.CodeOffset + M.CodeSize - 4;
      auto I = a64::decode(O.Text[BranchOff / 4]);
      if (!I || I->Op != a64::Opcode::B)
        return failAt(Where, "merge thunk does not end in b");
      auto Target = a64::pcRelTarget(*I, O.BaseAddress + BranchOff);
      if (!Target ||
          *Target != O.BaseAddress + Canon->CodeOffset + M.MergedEntryOff)
        return failAt(Where, "merge thunk branch misses canonical entry");
    }
  }

  // Per-method metadata consistency.
  for (const auto &M : O.Methods) {
    std::string Where = "method " + M.Name;
    const codegen::MethodSideInfo &Side = M.Side;

    for (const auto &D : Side.EmbeddedData)
      if (D.Offset + static_cast<uint64_t>(D.Size) > M.CodeSize)
        return failAt(Where, "embedded data range out of bounds");
    for (const auto &R : Side.SlowPathRanges)
      if (R.Begin > R.End || R.End > M.CodeSize)
        return failAt(Where, "slow path range out of bounds");
    for (uint32_t T : Side.TerminatorOffsets) {
      if (T % 4 != 0 || T >= M.CodeSize)
        return failAt(Where, "terminator offset out of bounds");
      auto I = a64::decode(O.Text[(M.CodeOffset + T) / 4]);
      if (!I || !a64::isTerminator(I->Op))
        return failAt(Where, "terminator offset not at a terminator");
    }

    // Every recorded PC-relative instruction must decode and really point
    // at the recorded target (paper §3.3.4's invariant after patching).
    for (const auto &R : Side.PcRelRecords) {
      if (R.InsnOffset % 4 != 0 || R.InsnOffset >= M.CodeSize)
        return failAt(Where, "pc-rel record out of bounds");
      if (R.TargetOffset > M.CodeSize)
        return failAt(Where, "pc-rel target out of bounds");
      auto I = a64::decode(O.Text[(M.CodeOffset + R.InsnOffset) / 4]);
      if (!I || !a64::isPcRelative(I->Op))
        return failAt(Where, "pc-rel record not at a pc-relative insn");
      uint64_t Pc = O.BaseAddress + M.CodeOffset + R.InsnOffset;
      auto Target = a64::pcRelTarget(*I, Pc);
      if (!Target ||
          *Target != O.BaseAddress + M.CodeOffset + R.TargetOffset)
        return failAt(Where, "pc-rel record target mismatch");
      // 64-bit literal loads require an 8-byte-aligned pool slot.
      if (I->Op == a64::Opcode::LdrLit && I->Is64 && (*Target % 8) != 0)
        return failAt(Where, "misaligned 64-bit literal pool slot");
    }

    // StackMap entries point right after a call instruction.
    for (const auto &E : M.Map.Entries) {
      if (E.NativePcOffset % 4 != 0 || E.NativePcOffset == 0 ||
          E.NativePcOffset > M.CodeSize)
        return failAt(Where, "stack map native pc out of bounds");
      uint32_t CallOff = E.NativePcOffset - 4;
      if (inEmbeddedData(Side, CallOff))
        return failAt(Where, "stack map native pc inside embedded data");
      auto I = a64::decode(O.Text[(M.CodeOffset + CallOff) / 4]);
      if (!I || !a64::isCall(I->Op))
        return failAt(Where, "stack map native pc not after a call");
    }
  }
  return Error::success();
}
