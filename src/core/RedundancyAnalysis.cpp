//===- core/RedundancyAnalysis.cpp - §2.2 redundancy estimator -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/RedundancyAnalysis.h"

#include "aarch64/Decoder.h"
#include "core/BenefitModel.h"
#include "suffixtree/SuffixTree.h"

#include <algorithm>

using namespace calibro;
using namespace calibro::core;

RedundancyReport core::analyzeRedundancy(
    const std::vector<codegen::CompiledMethod> &Methods,
    const AnalysisOptions &Opts) {
  RedundancyReport Report;

  // Step 1 (§2.2): map the binary code to a sequence of unsigned integers.
  // Instruction words map to themselves; embedded data and method
  // boundaries become unique separators so no "repeat" spans them.
  std::vector<st::Symbol> Seq;
  uint64_t SepCounter = 0;
  for (const auto &M : Methods) {
    std::vector<bool> IsSep(M.Code.size(), false);
    for (const auto &D : M.Side.EmbeddedData)
      for (uint32_t W = D.Offset / 4; W < (D.Offset + D.Size) / 4; ++W)
        IsSep[W] = true;
    if (Opts.SeparateAtTerminators)
      for (uint32_t T : M.Side.TerminatorOffsets)
        IsSep[T / 4] = true;
    if (Opts.SeparateAtPcRel)
      for (const auto &R : M.Side.PcRelRecords)
        IsSep[R.InsnOffset / 4] = true;
    if (Opts.SeparateAtLrSensitive) {
      std::vector<bool> IsData(M.Code.size(), false);
      for (const auto &D : M.Side.EmbeddedData)
        for (uint32_t W = D.Offset / 4; W < (D.Offset + D.Size) / 4; ++W)
          IsData[W] = true;
      for (std::size_t W = 0; W < M.Code.size(); ++W) {
        if (IsData[W])
          continue;
        auto I = a64::decode(M.Code[W]);
        if (!I)
          continue;
        bool Lr = I->Op == a64::Opcode::Bl || I->Op == a64::Opcode::Blr ||
                  I->Rd == a64::LR || I->Rn == a64::LR ||
                  I->Rm == a64::LR || I->Ra == a64::LR;
        if (Lr)
          IsSep[W] = true;
      }
    }
    for (std::size_t W = 0; W < M.Code.size(); ++W) {
      if (IsSep[W]) {
        Seq.push_back(st::SeparatorBase + SepCounter++);
      } else {
        Seq.push_back(st::Symbol(M.Code[W]));
        ++Report.TotalInsns;
      }
    }
    Seq.push_back(st::SeparatorBase + SepCounter++);
  }

  // Steps 2+3 (§2.2): suffix tree and repetitive-sequence detection.
  st::SuffixTree Tree(std::move(Seq));

  struct Cand {
    int32_t Node;
    uint32_t Len;
    uint32_t Count;
    int64_t Ben;
  };
  std::vector<Cand> Cands;
  Tree.forEachRepeat(2, Opts.MaxSeqLen, 2,
                     [&](const st::SuffixTree::RepeatInfo &R) {
                       int64_t Ben = benefit(R.Length, R.Count);
                       if (Ben > 0)
                         Cands.push_back({R.Node, R.Length, R.Count, Ben});
                     });
  std::sort(Cands.begin(), Cands.end(), [](const Cand &A, const Cand &B) {
    if (A.Ben != B.Ben)
      return A.Ben > B.Ben;
    return A.Node < B.Node;
  });

  // Step 4 (§2.2): estimate the saving with the Fig. 2 model, greedily and
  // without double counting (non-overlapping occurrences only).
  std::vector<bool> Claimed(Tree.textSize(), false);
  auto Text = Tree.text();
  std::vector<TopPattern> Patterns;

  for (const Cand &C : Cands) {
    uint32_t Taken = 0;
    uint32_t LastEnd = 0;
    uint32_t FirstPos = 0;
    for (uint32_t P : Tree.positionsOf(C.Node)) {
      if (Taken && P < LastEnd)
        continue;
      bool Ok = true;
      for (uint32_t Q = P; Q < P + C.Len && Ok; ++Q)
        Ok = !Claimed[Q];
      if (!Ok)
        continue;
      if (!Taken)
        FirstPos = P;
      ++Taken;
      LastEnd = P + C.Len;
    }
    if (!isProfitable(C.Len, Taken))
      continue;
    // Claim in a second pass (cheap; candidate lists are position-sorted).
    uint32_t Reclaimed = 0;
    LastEnd = 0;
    for (uint32_t P : Tree.positionsOf(C.Node)) {
      if (Reclaimed && P < LastEnd)
        continue;
      bool Ok = true;
      for (uint32_t Q = P; Q < P + C.Len && Ok; ++Q)
        Ok = !Claimed[Q];
      if (!Ok)
        continue;
      for (uint32_t Q = P; Q < P + C.Len; ++Q)
        Claimed[Q] = true;
      ++Reclaimed;
      LastEnd = P + C.Len;
    }
    Report.SavedInsns += static_cast<uint64_t>(benefit(C.Len, Taken));
    Report.RepeatsByLength[C.Len] += Taken;

    TopPattern TP;
    TP.Length = C.Len;
    TP.Count = Taken;
    for (uint32_t K = 0; K < C.Len; ++K)
      TP.Words.push_back(static_cast<uint32_t>(Text[FirstPos + K]));
    Patterns.push_back(std::move(TP));
  }

  std::sort(Patterns.begin(), Patterns.end(),
            [](const TopPattern &A, const TopPattern &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Length > B.Length;
            });
  if (Patterns.size() > Opts.TopK)
    Patterns.resize(Opts.TopK);
  Report.TopPatterns = std::move(Patterns);

  if (Report.TotalInsns > 0)
    Report.EstimatedReductionRatio =
        static_cast<double>(Report.SavedInsns) /
        static_cast<double>(Report.TotalInsns);
  return Report;
}
