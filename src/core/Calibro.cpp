//===- core/Calibro.cpp - The Calibro build driver --------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"

#include "analysis/Merge.h"
#include "codegen/CodeGenerator.h"
#include "hir/Passes.h"
#include "layout/Layout.h"
#include "oat/Linker.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "verify/OatVerifier.h"

#include <unordered_map>

using namespace calibro;
using namespace calibro::core;

Expected<CompiledApp> core::compileApp(const dex::App &App,
                                       const CalibroOptions &Opts) {
  if (auto E = dex::verifyApp(App))
    return E;

  CompiledApp Result;
  Result.AppName = App.Name;
  BuildStats &Stats = Result.Stats;

  // Incremental builds: a configured cache directory lets unchanged dex
  // methods skip HIR construction and codegen entirely. Failing to OPEN
  // the store is a configuration error and fails the build; everything
  // after that degrades (a bad entry is just a miss). A daemon-shared
  // store (Opts.SharedCache) takes precedence over a private directory.
  std::unique_ptr<cache::BuildCache> OwnedCache;
  cache::BuildCache *Cache = Opts.SharedCache;
  if (!Cache && !Opts.CacheDir.empty()) {
    auto C = cache::BuildCache::open(Opts.CacheDir);
    if (!C)
      return C.takeError();
    OwnedCache = std::move(*C);
    Cache = OwnedCache.get();
  }

  // Compilation: per-method, independent of every other method, and run
  // concurrently like dex2oat does (Fig. 5). Results land in order-stable
  // slots, so the build is deterministic for any thread count.
  Timer CompileTimer;
  codegen::CtoStubCache StubCache;
  codegen::CodeGenerator Gen({.EnableCto = Opts.EnableCto}, StubCache);

  std::vector<const dex::Method *> Order;
  Order.reserve(App.numMethods());
  App.forEachMethod([&](const dex::Method &M) { Order.push_back(&M); });
  Stats.NumMethods = Order.size();

  std::vector<codegen::CompiledMethod> Methods(Order.size());
  std::vector<std::size_t> Simplified(Order.size(), 0);
  std::vector<std::string> Errors(Order.size());
  std::vector<cache::Digest> Digests(Cache ? Order.size() : 0);
  std::vector<uint8_t> CacheHit(Order.size(), 0);
  auto Pipeline = hir::defaultPipeline();

  auto CompileOne = [&](std::size_t I) {
    const dex::Method &M = *Order[I];
    cache::Digest SourceKey;
    if (Cache) {
      SourceKey = cache::methodSourceKey(M, Opts.EnableCto);
      if (auto CM = Cache->loadMethod(SourceKey)) {
        // The blob already passed checksum + SideInfoValidator; the
        // identity cross-check below catches digest collisions between
        // distinct methods before a wrong body is linked.
        if (CM->Method.MethodIdx == M.Idx && CM->Method.Name == M.Name &&
            CM->Method.Side.IsNative == M.IsNative) {
          Methods[I] = std::move(CM->Method);
          Simplified[I] = CM->HirInsnsSimplified;
          Digests[I] = cache::methodContentDigest(Methods[I]);
          CacheHit[I] = 1;
          return;
        }
      }
    }
    if (M.IsNative) {
      Methods[I] = Gen.compileNative(M);
    } else {
      auto G = hir::buildHGraph(M);
      if (!G) {
        Errors[I] = G.message();
        return;
      }
      for (const auto &PS : hir::runPipeline(*G, Pipeline))
        Simplified[I] += PS.Simplified;
      Methods[I] = Gen.compile(*G);
    }
    if (Cache) {
      Digests[I] = cache::methodContentDigest(Methods[I]);
      Cache->storeMethod(SourceKey, Methods[I],
                         static_cast<uint32_t>(Simplified[I]));
    }
  };

  if (Opts.Pool) {
    // Daemon mode: fan out on the shared pool under this job's fairness
    // group, so concurrent jobs interleave instead of serializing.
    Opts.Pool->parallelForIn(Opts.PoolGroup, Order.size(), CompileOne);
  } else if (Opts.CompileThreads == 1) {
    for (std::size_t I = 0; I < Order.size(); ++I)
      CompileOne(I);
  } else {
    ThreadPool Pool(Opts.CompileThreads);
    Pool.parallelFor(Order.size(), CompileOne);
  }

  for (std::size_t I = 0; I < Order.size(); ++I) {
    if (!Errors[I].empty())
      return makeError(Errors[I]);
    Stats.HirInsnsSimplified += Simplified[I];
    Stats.NumNativeMethods += Methods[I].Side.IsNative;
    if (Cache) {
      Stats.CacheHits += CacheHit[I];
      Stats.CacheMisses += !CacheHit[I];
    }
  }
  Stats.CompileSeconds = CompileTimer.seconds();
  for (const auto &M : Methods)
    for (const auto &R : M.Relocs)
      if (R.Kind == codegen::RelocKind::CtoStub)
        ++Stats.CtoCallSites;

  Result.Methods = std::move(Methods);
  Result.Stubs = StubCache.takeStubs();
  Result.MethodDigests = std::move(Digests);

  // Dex-level call graph for the closed-world analyses. Built even for
  // open-world apps (oatdump --callgraph wants it); the GC itself only
  // arms when entrypoints were declared.
  analysis::CallGraphOptions GOpts;
  GOpts.Strict = Opts.StrictCallGraph;
  auto G = analysis::buildCallGraph(App, GOpts);
  if (!G)
    return G.takeError();
  Result.Graph = std::move(*G);
  Result.HasAnalysis = true;
  return Result;
}

Expected<BuildResult> core::linkApp(CompiledApp App,
                                    const CalibroOptions &Opts) {
  BuildResult Result;
  BuildStats &Stats = Result.Stats;
  Stats = std::move(App.Stats);

  // Closed-world analyses (GC + merge), before outlining. Armed only when
  // the app declared entrypoints; open-world builds are byte-for-byte
  // unaffected. Both passes plan single-threadedly, so their verdicts are
  // independent of every thread-count knob.
  std::unordered_set<uint32_t> MergePinned;
  std::vector<oat::MergeAliasRef> Aliases;
  std::vector<oat::MergeThunkRef> MergeThunks;
  std::vector<uint32_t> MethodsGCed;
  uint64_t GcBytes = 0;
  std::size_t MergedIdentical = 0, MergedThunk = 0;
  uint64_t MergeSavedBytes = 0;
  std::size_t GraphAnomalies = 0, RepairedEdges = 0;

  const bool ClosedWorld = App.HasAnalysis && !App.Graph.Entrypoints.empty();
  if (ClosedWorld && (Opts.EnableGc || Opts.EnableMerge)) {
    auto B = analysis::bindBinaryEdges(App.Graph, App.Methods,
                                       Opts.StrictCallGraph);
    if (!B)
      return B.takeError();
    RepairedEdges = B->RepairedEdges;
    GraphAnomalies = App.Graph.Anomalies.size();

    if (Opts.EnableGc) {
      analysis::Reachability Reach = analysis::computeReachability(App.Graph);
      if (!Reach.Dead.empty()) {
        std::unordered_set<uint32_t> DeadSet(Reach.Dead.begin(),
                                             Reach.Dead.end());
        std::vector<codegen::CompiledMethod> Kept;
        Kept.reserve(App.Methods.size());
        for (auto &M : App.Methods) {
          if (DeadSet.count(M.MethodIdx)) {
            GcBytes += M.codeSizeBytes();
            MethodsGCed.push_back(M.MethodIdx);
          } else {
            Kept.push_back(std::move(M));
          }
        }
        App.Methods = std::move(Kept);
      }
    }

    if (Opts.EnableMerge) {
      analysis::MergePlan Plan = analysis::planMerge(App.Methods);
      if (!Plan.Aliases.empty() || !Plan.Thunks.empty()) {
        std::unordered_map<uint32_t, uint32_t> AliasCanon;
        AliasCanon.reserve(Plan.Aliases.size());
        for (const auto &A : Plan.Aliases)
          AliasCanon.emplace(A.MethodIdx, A.CanonMethodIdx);
        std::vector<codegen::CompiledMethod> Kept;
        Kept.reserve(App.Methods.size());
        for (auto &M : App.Methods) {
          auto It = AliasCanon.find(M.MethodIdx);
          if (It != AliasCanon.end())
            Aliases.push_back({M.MethodIdx, std::move(M.Name), It->second});
          else
            Kept.push_back(std::move(M));
        }
        App.Methods = std::move(Kept);

        std::unordered_map<uint32_t, std::size_t> Pos;
        Pos.reserve(App.Methods.size());
        for (std::size_t I = 0; I < App.Methods.size(); ++I)
          Pos.emplace(App.Methods[I].MethodIdx, I);
        for (std::size_t TI = 0; TI < Plan.Thunks.size(); ++TI) {
          const analysis::MergeThunk &T = Plan.Thunks[TI];
          auto It = Pos.find(T.MethodIdx);
          if (It == Pos.end())
            return makeError("merge plan names unknown method " +
                             std::to_string(T.MethodIdx));
          analysis::makeThunk(App.Methods[It->second], T.EntryByteOff / 4,
                              static_cast<uint32_t>(TI));
          MergeThunks.push_back({T.MethodIdx, T.CanonMethodIdx,
                                 T.EntryByteOff});
        }
        MergePinned.insert(Plan.Pinned.begin(), Plan.Pinned.end());
        MergedIdentical = Plan.Aliases.size();
        MergedThunk = Plan.Thunks.size();
        MergeSavedBytes = Plan.SavedBytes;
      }
    }
  }

  // LTBO.2: whole-program outlining before linking.
  std::vector<codegen::OutlinedFunc> Outlined;
  if (Opts.EnableLtbo) {
    Timer LtboTimer;
    std::set<uint32_t> Hot;
    OutlinerOptions OOpts;
    OOpts.MinSeqLen = Opts.MinSeqLen;
    OOpts.MaxSeqLen = Opts.MaxSeqLen;
    OOpts.Partitions = Opts.LtboPartitions;
    OOpts.Threads = Opts.LtboThreads;
    OOpts.MemoryBudgetBytes = Opts.MemoryBudgetBytes;
    OOpts.Detector = Opts.LtboDetector;
    OOpts.Strict = Opts.StrictSideInfo;
    OOpts.Pool = Opts.Pool;
    OOpts.PoolGroup = Opts.PoolGroup;
    std::unique_ptr<cache::BuildCache> Cache;
    if (Opts.SharedCache) {
      OOpts.Cache = Opts.SharedCache;
    } else if (!Opts.CacheDir.empty()) {
      auto C = cache::BuildCache::open(Opts.CacheDir);
      if (!C)
        return C.takeError();
      Cache = std::move(*C);
      OOpts.Cache = Cache.get();
    }
    if (Opts.Profile) {
      Hot = profile::selectHotMethods(*Opts.Profile, Opts.HotCoverage);
      OOpts.HotMethods = &Hot;
    }
    if (!MergePinned.empty())
      OOpts.PinnedMethods = &MergePinned;
    auto R = runLtbo(App.Methods, OOpts);
    if (!R)
      return R.takeError();
    Outlined = std::move(R->Funcs);
    Stats.Ltbo = R->Stats;
    Stats.GroupsReused = R->Stats.GroupsReused;
    Stats.LtboSeconds = LtboTimer.seconds();
  }

  // Analysis counters land after the Ltbo overwrite above so they also
  // survive outline-disabled builds.
  Stats.Ltbo.MethodsGCed = std::move(MethodsGCed);
  Stats.Ltbo.GcBytes = GcBytes;
  Stats.Ltbo.MethodsMergedIdentical = MergedIdentical;
  Stats.Ltbo.MethodsMergedThunk = MergedThunk;
  Stats.Ltbo.MergeSavedBytes = MergeSavedBytes;
  Stats.Ltbo.CallGraphAnomalies = GraphAnomalies;
  Stats.Ltbo.RepairedEdges = RepairedEdges;

  // Linking: bind every symbolic call, lay out the .text image.
  Timer LinkTimer;
  oat::LinkInput In;
  In.AppName = App.AppName;
  In.BaseAddress = Opts.BaseAddress;
  In.Methods = std::move(App.Methods);
  In.Stubs = std::move(App.Stubs);
  In.Outlined = std::move(Outlined);
  In.Aliases = std::move(Aliases);
  In.MergeThunks = std::move(MergeThunks);
  Stats.CtoStubCount = In.Stubs.size();

  // Profile-driven layout: reorder .text by co-execution affinity. Armed
  // only with a profile AND a closed world — without either there is no
  // affinity signal worth moving code for, and the build must stay
  // byte-identical to a stage-less one (In.Layout stays empty, which the
  // linker treats as the legacy order).
  if (Opts.EnableLayout && Opts.Profile && ClosedWorld) {
    Timer LayoutTimer;
    layout::LayoutOptions LOpts;
    LOpts.PageSize = Opts.LayoutPageSize;
    LOpts.Threads = Opts.LtboThreads;
    LOpts.Pool = Opts.Pool;
    LOpts.PoolGroup = Opts.PoolGroup;
    layout::AffinityGraph AG =
        layout::buildAffinityGraph(In, App.Graph, *Opts.Profile);
    layout::LayoutResult LR = layout::computeLayout(AG, LOpts);
    Stats.LayoutApplied = true;
    Stats.LayoutNodes = LR.Nodes;
    Stats.LayoutEdges = LR.Edges;
    Stats.LayoutWarmNodes = LR.WarmNodes;
    Stats.LayoutCutBefore = LR.CutBefore;
    Stats.LayoutCutAfter = LR.CutAfter;
    In.Layout = std::move(LR.Plan);
    Stats.LayoutSeconds = LayoutTimer.seconds();
  }

  auto O = oat::link(In);
  if (!O)
    return O.takeError();
  Stats.LinkSeconds = LinkTimer.seconds();

  Result.Oat = std::move(*O);
  if (Opts.VerifyOutput)
    if (auto E = verify::verifyOatFile(Result.Oat))
      return E;
  Stats.TextBytes = Result.Oat.textBytes();
  return Result;
}

Expected<BuildResult> core::buildApp(const dex::App &App,
                                     const CalibroOptions &Opts) {
  Timer Total;
  auto Compiled = compileApp(App, Opts);
  if (!Compiled)
    return Compiled.takeError();
  auto Result = linkApp(std::move(*Compiled), Opts);
  if (!Result)
    return Result;
  Result->Stats.TotalSeconds = Total.seconds();
  return Result;
}
