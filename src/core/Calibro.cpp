//===- core/Calibro.cpp - The Calibro build driver --------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"

#include "codegen/CodeGenerator.h"
#include "hir/Passes.h"
#include "oat/Linker.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "verify/OatVerifier.h"

using namespace calibro;
using namespace calibro::core;

Expected<CompiledApp> core::compileApp(const dex::App &App,
                                       const CalibroOptions &Opts) {
  if (auto E = dex::verifyApp(App))
    return E;

  CompiledApp Result;
  Result.AppName = App.Name;
  BuildStats &Stats = Result.Stats;

  // Incremental builds: a configured cache directory lets unchanged dex
  // methods skip HIR construction and codegen entirely. Failing to OPEN
  // the store is a configuration error and fails the build; everything
  // after that degrades (a bad entry is just a miss).
  std::unique_ptr<cache::BuildCache> Cache;
  if (!Opts.CacheDir.empty()) {
    auto C = cache::BuildCache::open(Opts.CacheDir);
    if (!C)
      return C.takeError();
    Cache = std::move(*C);
  }

  // Compilation: per-method, independent of every other method, and run
  // concurrently like dex2oat does (Fig. 5). Results land in order-stable
  // slots, so the build is deterministic for any thread count.
  Timer CompileTimer;
  codegen::CtoStubCache StubCache;
  codegen::CodeGenerator Gen({.EnableCto = Opts.EnableCto}, StubCache);

  std::vector<const dex::Method *> Order;
  Order.reserve(App.numMethods());
  App.forEachMethod([&](const dex::Method &M) { Order.push_back(&M); });
  Stats.NumMethods = Order.size();

  std::vector<codegen::CompiledMethod> Methods(Order.size());
  std::vector<std::size_t> Simplified(Order.size(), 0);
  std::vector<std::string> Errors(Order.size());
  std::vector<cache::Digest> Digests(Cache ? Order.size() : 0);
  std::vector<uint8_t> CacheHit(Order.size(), 0);
  auto Pipeline = hir::defaultPipeline();

  auto CompileOne = [&](std::size_t I) {
    const dex::Method &M = *Order[I];
    cache::Digest SourceKey;
    if (Cache) {
      SourceKey = cache::methodSourceKey(M, Opts.EnableCto);
      if (auto CM = Cache->loadMethod(SourceKey)) {
        // The blob already passed checksum + SideInfoValidator; the
        // identity cross-check below catches digest collisions between
        // distinct methods before a wrong body is linked.
        if (CM->Method.MethodIdx == M.Idx && CM->Method.Name == M.Name &&
            CM->Method.Side.IsNative == M.IsNative) {
          Methods[I] = std::move(CM->Method);
          Simplified[I] = CM->HirInsnsSimplified;
          Digests[I] = cache::methodContentDigest(Methods[I]);
          CacheHit[I] = 1;
          return;
        }
      }
    }
    if (M.IsNative) {
      Methods[I] = Gen.compileNative(M);
    } else {
      auto G = hir::buildHGraph(M);
      if (!G) {
        Errors[I] = G.message();
        return;
      }
      for (const auto &PS : hir::runPipeline(*G, Pipeline))
        Simplified[I] += PS.Simplified;
      Methods[I] = Gen.compile(*G);
    }
    if (Cache) {
      Digests[I] = cache::methodContentDigest(Methods[I]);
      Cache->storeMethod(SourceKey, Methods[I],
                         static_cast<uint32_t>(Simplified[I]));
    }
  };

  if (Opts.CompileThreads == 1) {
    for (std::size_t I = 0; I < Order.size(); ++I)
      CompileOne(I);
  } else {
    ThreadPool Pool(Opts.CompileThreads);
    Pool.parallelFor(Order.size(), CompileOne);
  }

  for (std::size_t I = 0; I < Order.size(); ++I) {
    if (!Errors[I].empty())
      return makeError(Errors[I]);
    Stats.HirInsnsSimplified += Simplified[I];
    Stats.NumNativeMethods += Methods[I].Side.IsNative;
    if (Cache) {
      Stats.CacheHits += CacheHit[I];
      Stats.CacheMisses += !CacheHit[I];
    }
  }
  Stats.CompileSeconds = CompileTimer.seconds();
  for (const auto &M : Methods)
    for (const auto &R : M.Relocs)
      if (R.Kind == codegen::RelocKind::CtoStub)
        ++Stats.CtoCallSites;

  Result.Methods = std::move(Methods);
  Result.Stubs = StubCache.takeStubs();
  Result.MethodDigests = std::move(Digests);
  return Result;
}

Expected<BuildResult> core::linkApp(CompiledApp App,
                                    const CalibroOptions &Opts) {
  BuildResult Result;
  BuildStats &Stats = Result.Stats;
  Stats = std::move(App.Stats);

  // LTBO.2: whole-program outlining before linking.
  std::vector<codegen::OutlinedFunc> Outlined;
  if (Opts.EnableLtbo) {
    Timer LtboTimer;
    std::unordered_set<uint32_t> Hot;
    OutlinerOptions OOpts;
    OOpts.MinSeqLen = Opts.MinSeqLen;
    OOpts.MaxSeqLen = Opts.MaxSeqLen;
    OOpts.Partitions = Opts.LtboPartitions;
    OOpts.Threads = Opts.LtboThreads;
    OOpts.Detector = Opts.LtboDetector;
    OOpts.Strict = Opts.StrictSideInfo;
    std::unique_ptr<cache::BuildCache> Cache;
    if (!Opts.CacheDir.empty()) {
      auto C = cache::BuildCache::open(Opts.CacheDir);
      if (!C)
        return C.takeError();
      Cache = std::move(*C);
      OOpts.Cache = Cache.get();
    }
    if (Opts.Profile) {
      Hot = profile::selectHotMethods(*Opts.Profile, Opts.HotCoverage);
      OOpts.HotMethods = &Hot;
    }
    auto R = runLtbo(App.Methods, OOpts);
    if (!R)
      return R.takeError();
    Outlined = std::move(R->Funcs);
    Stats.Ltbo = R->Stats;
    Stats.GroupsReused = R->Stats.GroupsReused;
    Stats.LtboSeconds = LtboTimer.seconds();
  }

  // Linking: bind every symbolic call, lay out the .text image.
  Timer LinkTimer;
  oat::LinkInput In;
  In.AppName = App.AppName;
  In.BaseAddress = Opts.BaseAddress;
  In.Methods = std::move(App.Methods);
  In.Stubs = std::move(App.Stubs);
  In.Outlined = std::move(Outlined);
  Stats.CtoStubCount = In.Stubs.size();
  auto O = oat::link(In);
  if (!O)
    return O.takeError();
  Stats.LinkSeconds = LinkTimer.seconds();

  Result.Oat = std::move(*O);
  if (Opts.VerifyOutput)
    if (auto E = verify::verifyOatFile(Result.Oat))
      return E;
  Stats.TextBytes = Result.Oat.textBytes();
  return Result;
}

Expected<BuildResult> core::buildApp(const dex::App &App,
                                     const CalibroOptions &Opts) {
  Timer Total;
  auto Compiled = compileApp(App, Opts);
  if (!Compiled)
    return Compiled.takeError();
  auto Result = linkApp(std::move(*Compiled), Opts);
  if (!Result)
    return Result;
  Result->Stats.TotalSeconds = Total.seconds();
  return Result;
}
