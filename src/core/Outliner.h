//===- core/Outliner.h - Linking-time binary outlining (LTBO.2) -*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linking-time half of LTBO (paper §3.3): the whole-program binary
/// outliner that runs over all compiled methods before the link step binds
/// call targets. The four steps are exactly the paper's:
///
///  1. Choosing candidate methods (§3.3.1): methods with indirect jumps and
///     JNI trampolines are excluded, using the flags the compiler recorded.
///  2. Detecting repetitive code sequences (§3.3.2): each method's words
///     become a symbol sequence; every terminator maps to a globally unique
///     separator so no repeat crosses a basic block. This implementation
///     additionally maps to separators: embedded-data words (never code),
///     PC-relative instructions (their target is position-dependent, so a
///     shared outlined copy cannot be correct for every occurrence), and
///     instructions that read or write x30 (an outlined body must preserve
///     the return address its `bl` just produced). A suffix tree over the
///     sequence yields every repeated candidate with its occurrences.
///  3. Outlining (§3.3.3): candidates are ranked by the Fig. 2 benefit
///     model; occurrences are claimed greedily and non-overlapping, each
///     selected sequence becomes one OutlinedFunc ending in `br x30`, and
///     every occurrence is replaced by a single `bl` carrying a symbolic
///     relocation (bound later by the linker).
///  4. Patching PC-relative addressing instructions (§3.3.4): using the
///     recorded PcRelRecords, every PC-relative instruction is re-encoded
///     against its target's new offset. StackMaps, relocations,
///     terminator/embedded-data/slow-path metadata are remapped in the same
///     pass (§3.5's consistency obligation).
///
/// The paralleled-suffix-tree optimization (§3.4.1) partitions candidate
/// methods into K groups and runs detection + outlining per group on a
/// thread pool; hot-function filtering (§3.4.2) restricts outlining in hot
/// methods to their recorded slow-path ranges.
///
/// Independent of the partition knob, the stage itself runs as a parallel
/// three-phase pipeline whenever Threads > 1 (even with Partitions == 1):
///
///   Phase A (parallel over methods): separator + branch-target
///     preprocessing — the decode-heavy per-method analysis.
///   Phase B (parallel over groups): sequence assembly, repeat detection,
///     and greedy candidate selection per group.
///   Phase C (parallel over methods): rewriteMethod fan-out — each selected
///     method's rewrite is independent of every other method's.
///
/// Determinism contract: the OutlineResult (functions, rewritten methods,
/// and all scheduling-invariant stats) is byte-identical for every Threads
/// value, and errors surface deterministically (the lowest method index
/// wins), for any scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CORE_OUTLINER_H
#define CALIBRO_CORE_OUTLINER_H

#include "cache/BuildCache.h"
#include "codegen/CompiledMethod.h"
#include "codegen/SideInfoValidator.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <array>
#include <set>
#include <unordered_set>

namespace calibro {
namespace core {

/// Which repeated-sequence detection backend LTBO uses. The paper (and
/// prior outlining work) uses suffix trees; the suffix-array backend finds
/// exactly the same repeats with a smaller working set and exists for
/// cross-validation and the build-time ablation.
enum class DetectorKind : uint8_t { SuffixTree, SuffixArray };

/// LTBO.2 options.
struct OutlinerOptions {
  uint32_t MinSeqLen = 2;  ///< Minimum candidate length (instructions).
  uint32_t MaxSeqLen = 64; ///< Maximum candidate length (instructions).
  /// K suffix trees (PlOpti when > 1). 0 = choose K automatically from
  /// MemoryBudgetBytes (legal only when a budget is set): the smallest K
  /// whose estimated per-group detect working set fits the budget.
  uint32_t Partitions = 1;
  /// Worker threads for the whole link stage: preprocessing, per-group
  /// detection/selection, and the rewrite fan-out all run on one pool of
  /// this size (not just the K-partition build). 1 = fully serial.
  uint32_t Threads = 1;
  DetectorKind Detector = DetectorKind::SuffixTree;
  /// Hot methods (HfOpti): outlining inside them is restricted to their
  /// slow-path ranges. Null disables filtering. Sorted (it comes straight
  /// from profile::selectHotMethods) so that any iteration over it is
  /// deterministic.
  const std::set<uint32_t> *HotMethods = nullptr;
  /// Methods the global merger pinned out of outlining: thunk canonicals
  /// (their tail entry offset must survive linking unchanged) and the
  /// thunks themselves. They link verbatim. Null pins nothing.
  const std::unordered_set<uint32_t> *PinnedMethods = nullptr;
  /// Fail-fast mode: a method with invalid side info aborts the whole run
  /// with a typed error instead of being excluded from outlining. The
  /// default is per-method graceful degradation — an invalid method still
  /// links verbatim, it just never participates in outlining.
  bool Strict = false;
  /// Incremental detection-result reuse. When set, each partition group is
  /// keyed by the content digests of its member methods (recomputed here
  /// from the methods actually being linked — never trusted from an earlier
  /// stage); a group whose key has a stored selection replays it instead of
  /// building a suffix structure. Selection order, OutlinedFunc id
  /// assignment, and rewriting are unchanged, so the result is
  /// byte-identical to a cold run — a replay that fails any validation
  /// check silently falls back to detection. Null disables reuse.
  cache::BuildCache *Cache = nullptr;
  /// Peak detect-phase memory budget in bytes; 0 = unbudgeted (the classic
  /// single-pass Phase B over all K groups at once). When set, Phase B
  /// streams: the K groups are packed into windows whose summed estimated
  /// detect working set fits the budget, windows run one after another
  /// (groups within a window still run on the pool), and each finished
  /// group's canonical selection is spilled to the content-addressed store
  /// — Cache when configured, else an ephemeral temp-dir SpillStore — so
  /// peak memory tracks the budget, not the image size. A final serial
  /// merge pass reloads and replays every group in ascending group index;
  /// replay re-validates everything and falls back to re-detection, so the
  /// OutlineResult stays byte-identical to the unbudgeted pipeline for any
  /// budget, window packing, and thread count.
  uint64_t MemoryBudgetBytes = 0;
  /// Directory for the ephemeral spill store (windowed mode with no Cache).
  /// Empty = a unique directory under the system temp root, removed when
  /// the run finishes; non-empty directories are kept (tests use this to
  /// inspect the spill format).
  std::string SpillDir;
  /// Externally-owned worker pool (the compile daemon's shared pool). When
  /// set, every phase fans out on it — under fairness group PoolGroup —
  /// instead of constructing a private pool, and Threads is ignored. The
  /// result stays byte-identical: scheduling never reaches the output.
  ThreadPool *Pool = nullptr;
  ThreadPool::GroupId PoolGroup = 0;
};

/// Estimated peak detect-phase bytes per sequence word for \p Kind: text +
/// provenance + the suffix structure at its construction peak. Calibrated
/// against bench/table5_memory's measured DetectPeakBytes; the window
/// planner and the auto-partition chooser size groups with it.
std::size_t detectBytesPerWord(DetectorKind Kind);

/// What LTBO.2 did, for the build-time and ablation experiments.
struct OutlineStats {
  std::size_t CandidateMethods = 0;
  std::size_t ExcludedIndirectJump = 0;
  std::size_t ExcludedNative = 0;
  std::size_t HotFilteredMethods = 0;
  std::size_t SequencesOutlined = 0;
  std::size_t OccurrencesReplaced = 0;
  /// Profitable candidates ranked by the selection loop. Sensitive to
  /// detector-side duplicate suppression (clamped-candidate dedup), so it
  /// is the regression metric for that fix: the selected outcome must be
  /// identical while this count stays minimal.
  std::size_t CandidatesEvaluated = 0;
  uint64_t InsnsRemoved = 0;       ///< Net instruction-count saving.
  uint64_t SymbolCount = 0;        ///< Total sequence length fed to trees.
  uint64_t TreeNodes = 0;          ///< Sum of node counts over all trees.
  double PreprocessSeconds = 0; ///< Phase A: separators + branch targets.
  double BuildTreeSeconds = 0;
  double SelectSeconds = 0;
  double RewriteSeconds = 0;
  /// Worker counts actually used per phase (1 when that phase ran inline on
  /// the calling thread). Scheduling metadata, NOT part of the deterministic
  /// result — determinism tests must ignore these.
  std::size_t PreprocessThreads = 1;
  std::size_t DetectThreads = 1;
  std::size_t RewriteThreads = 1;
  /// Non-empty partition groups whose selection was replayed from the
  /// cache (no suffix structure built). Decided purely by pre-existing
  /// cache state — all group blobs are prefetched before Phase B — so the
  /// split is deterministic for any Threads.
  std::size_t GroupsReused = 0;
  /// Non-empty partition groups that ran detection (cold or fallback).
  std::size_t GroupsDetected = 0;
  /// Detected groups split by the suffix-array construction backend the
  /// hybrid auto-pick chose (see st::SaBackend). Both zero under the
  /// suffix-tree detector. Deterministic: the pick is a pure function of
  /// the group's assembled symbol sequence.
  std::size_t GroupsSaIs = 0;
  std::size_t GroupsPrefixDoubling = 0;
  /// Largest single-group detect-phase working set in bytes: suffix
  /// structure plus the assembled sequence/provenance arrays, sampled at
  /// its peak (before scratch release). Deterministic for any Threads.
  std::size_t DetectPeakBytes = 0;
  /// Largest construction-scratch arena footprint (bytesReserved) seen in
  /// Phase B. Arenas are pooled per worker and coalesced on reset, so this
  /// tracks the high-water mark of ONE reusable block, not a per-group sum.
  /// Scheduling metadata like the *Threads fields: the pool hand-out order
  /// depends on worker interleaving, so determinism tests must ignore it.
  std::size_t DetectScratchBytes = 0;
  /// Partition-group count actually used: Opts.Partitions, or the
  /// budget-derived K when Partitions == 0. Deterministic.
  std::size_t PartitionsUsed = 0;
  /// Memory-budgeted streaming (MemoryBudgetBytes > 0). All deterministic
  /// for any Threads: the window packing is a pure function of the groups
  /// and the budget. Zero when unbudgeted.
  std::size_t DetectWindows = 0; ///< Windows Phase B ran in (0 = unbudgeted).
  /// Largest window working set: max over windows of the summed member
  /// DetectPeakBytes. This is what the budget bounds (one overrun group
  /// excepted — see DetectBudgetOverruns).
  std::size_t DetectWindowPeakBytes = 0;
  /// Windows holding a single group whose estimate alone exceeds the
  /// budget; such a group still runs (alone) rather than failing the link.
  std::size_t DetectBudgetOverruns = 0;
  /// Groups whose selection was spilled to the store and whose in-memory
  /// outputs were dropped between their window and the merge pass.
  std::size_t GroupsSpilled = 0;
  /// Merge-pass wall time (reload + replay of every group). Timing
  /// metadata like the other *Seconds fields.
  double MergeSeconds = 0;
  /// Candidate methods whose side info failed validation and were excluded
  /// from outlining (graceful degradation). Deterministic for any Threads.
  std::size_t MethodsRejected = 0;
  /// MethodsRejected bucketed by the first fault found per method, indexed
  /// by codegen::SideInfoFault.
  std::array<std::size_t, codegen::NumSideInfoFaults> RejectedByFault{};
  /// Methods excluded from outlining because the merger pinned them.
  std::size_t ExcludedMergePinned = 0;

  // --- Analysis front-end (GC + merge) counters. Filled by linkApp, not
  // by runLtbo; they live here so every size experiment reads one struct.
  // All are single-threaded-plan outputs: independent of Threads.
  /// Dead methods dropped by the reachability GC, ascending MethodIdx.
  std::vector<uint32_t> MethodsGCed;
  uint64_t GcBytes = 0;              ///< Code bytes the GC removed.
  std::size_t MethodsMergedIdentical = 0; ///< Bodies turned into aliases.
  std::size_t MethodsMergedThunk = 0;     ///< Bodies turned into thunks.
  uint64_t MergeSavedBytes = 0;      ///< Alias bodies + dropped tails.
  std::size_t CallGraphAnomalies = 0; ///< Recorded by build + bind passes.
  std::size_t RepairedEdges = 0;      ///< Binary-only edges added back.
};

/// One method excluded from outlining by side-info validation.
struct RejectedMethod {
  uint32_t MethodIdx = 0;
  std::string Name;
  codegen::SideInfoFault Fault = codegen::SideInfoFault::None;
  std::string Detail;
};

/// Result of one LTBO.2 run.
struct OutlineResult {
  std::vector<codegen::OutlinedFunc> Funcs;
  OutlineStats Stats;
  /// Rejected methods in ascending MethodIdx order (same order the methods
  /// appear in the input). Empty on a fully clean run.
  std::vector<RejectedMethod> Rejected;
};

/// Runs the whole-program outliner over \p Methods, rewriting them in
/// place and returning the outlined functions to hand to the linker.
Expected<OutlineResult> runLtbo(std::vector<codegen::CompiledMethod> &Methods,
                                const OutlinerOptions &Opts);

} // namespace core
} // namespace calibro

#endif // CALIBRO_CORE_OUTLINER_H
