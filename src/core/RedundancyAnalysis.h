//===- core/RedundancyAnalysis.h - §2.2 redundancy estimator ----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's code-redundancy analysis (§2.2): map the application's
/// binary code to an unsigned-integer sequence, build a suffix tree, detect
/// repetitive sequences, and estimate the potential code-size saving with
/// the Fig. 2 benefit model. This is the estimator behind Table 1 (25.4 %
/// average potential), Figure 3 (length vs. repeats), and Observation 3
/// (the hottest ART-specific patterns).
///
/// Unlike the real outliner, the estimate deliberately ignores the
/// correctness restrictions (LR-sensitivity, PC-relative operands, branch
/// targets) — it is an upper bound on what outlining could save, which is
/// why Table 4's achieved reductions come in below Table 1's estimates.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CORE_REDUNDANCYANALYSIS_H
#define CALIBRO_CORE_REDUNDANCYANALYSIS_H

#include "codegen/CompiledMethod.h"

#include <cstdint>
#include <map>
#include <vector>

namespace calibro {
namespace core {

/// Analysis options. The three Separate* flags switch on, one by one, the
/// correctness rules the real outliner must obey; with all of them set the
/// estimate approximates what LTBO can legally claim. The raw §2.2
/// estimate keeps them all off to measure gross redundancy.
struct AnalysisOptions {
  uint32_t MaxSeqLen = 256; ///< Longest sequence considered.
  uint32_t TopK = 10;       ///< How many hottest patterns to report.
  /// Basic-block confinement (§3.3.2): terminators become separators.
  bool SeparateAtTerminators = false;
  /// PC-relative operands are position-dependent: adr/ldr-literal (and the
  /// branches, when terminators are not already separated) cannot be moved
  /// into a shared copy.
  bool SeparateAtPcRel = false;
  /// Instructions reading or writing x30 would corrupt the outlined
  /// function's return address.
  bool SeparateAtLrSensitive = false;
};

/// A frequently repeated pattern (for Observation 3).
struct TopPattern {
  std::vector<uint32_t> Words; ///< The instruction words.
  uint32_t Length = 0;
  uint32_t Count = 0; ///< Non-overlapping occurrence count.
};

/// Result of one analysis run.
struct RedundancyReport {
  uint64_t TotalInsns = 0;
  uint64_t SavedInsns = 0; ///< Estimated by greedy benefit-model selection.
  double EstimatedReductionRatio = 0;
  /// Figure 3's data: for each repeated-sequence length, the total number
  /// of (non-overlapping) repeats found at that length.
  std::map<uint32_t, uint64_t> RepeatsByLength;
  std::vector<TopPattern> TopPatterns; ///< Sorted by Count, descending.
};

/// Analyzes all compiled methods of one app (pre-link binary code).
RedundancyReport analyzeRedundancy(
    const std::vector<codegen::CompiledMethod> &Methods,
    const AnalysisOptions &Opts);

} // namespace core
} // namespace calibro

#endif // CALIBRO_CORE_REDUNDANCYANALYSIS_H
