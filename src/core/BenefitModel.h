//===- core/BenefitModel.h - Outlining benefit model ------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benefit model (Fig. 2):
///
///   OriginalSize   = Length * RepeatedTimes
///   OptimizedSize  = RepeatedTimes + 1 + Length
///   ReductionRatio = (OriginalSize - OptimizedSize) / OriginalSize
///
/// where Length counts instructions in the repeated sequence, RepeatedTimes
/// counts its occurrences, the `RepeatedTimes` term is one call instruction
/// per occurrence, and the `+ 1` is the extra return (`br x30`) of the
/// outlined function. All sizes are in instructions.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CORE_BENEFITMODEL_H
#define CALIBRO_CORE_BENEFITMODEL_H

#include <cstdint>

namespace calibro {
namespace core {

/// Instruction count before outlining.
inline constexpr uint64_t originalSize(uint64_t Length, uint64_t Repeats) {
  return Length * Repeats;
}

/// Instruction count after outlining: one call per occurrence, plus the
/// preserved copy, plus its return instruction.
inline constexpr uint64_t optimizedSize(uint64_t Length, uint64_t Repeats) {
  return Repeats + 1 + Length;
}

/// Saved instructions; negative values mean outlining would grow the code.
inline constexpr int64_t benefit(uint64_t Length, uint64_t Repeats) {
  return static_cast<int64_t>(originalSize(Length, Repeats)) -
         static_cast<int64_t>(optimizedSize(Length, Repeats));
}

/// True when outlining the sequence shrinks the code.
inline constexpr bool isProfitable(uint64_t Length, uint64_t Repeats) {
  return benefit(Length, Repeats) > 0;
}

/// The paper's reduction-ratio estimate for one repeated sequence.
inline constexpr double reductionRatio(uint64_t Length, uint64_t Repeats) {
  uint64_t Orig = originalSize(Length, Repeats);
  if (Orig == 0)
    return 0.0;
  return static_cast<double>(benefit(Length, Repeats)) /
         static_cast<double>(Orig);
}

} // namespace core
} // namespace calibro

#endif // CALIBRO_CORE_BENEFITMODEL_H
