//===- core/Outliner.cpp - Linking-time binary outlining (LTBO.2) ----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/Outliner.h"

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "aarch64/PcRel.h"
#include "cache/SpillStore.h"
#include "core/BenefitModel.h"
#include "suffixtree/SuffixArray.h"
#include "suffixtree/SuffixTree.h"
#include "support/Arena.h"
#include "support/Compiler.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <type_traits>

using namespace calibro;
using namespace calibro::core;
using namespace calibro::codegen;

namespace {

/// True when executing \p I inside an outlined function would observe or
/// destroy the return address the outlining `bl` produced. Unused register
/// fields of Insn are zero, so checking all of them is exact for the
/// supported subset.
bool touchesLr(const a64::Insn &I) {
  if (I.Op == a64::Opcode::Bl || I.Op == a64::Opcode::Blr)
    return true; // Implicit LR write.
  return I.Rd == a64::LR || I.Rn == a64::LR || I.Rm == a64::LR ||
         I.Ra == a64::LR;
}

/// One selected occurrence, in method-local coordinates.
struct MethodOcc {
  uint32_t WordStart = 0;
  uint32_t LenWords = 0;
  uint32_t FuncId = 0;
};

/// Sequence position provenance: which method row and word produced it.
struct PosInfo {
  int32_t MethodRow = -1; ///< -1 for inter-method separators.
  uint32_t Word = 0;
};

/// Marks separator words for one method: embedded data, terminators,
/// PC-relative instructions, LR-sensitive instructions, and — under hot
/// function filtering — everything outside the slow-path ranges.
///
/// Runs only on methods that passed validateSideInfo, so every non-data
/// word decodes; an undecodable word is still handled defensively (it
/// becomes a separator and can never be outlined).
std::vector<bool> computeSeparators(const CompiledMethod &M,
                                    bool HotFiltered) {
  std::size_t NumWords = M.Code.size();
  std::vector<bool> Sep(NumWords, false);
  std::vector<bool> IsData(NumWords, false);

  for (const auto &D : M.Side.EmbeddedData)
    for (uint32_t W = D.Offset / 4; W < (D.Offset + D.Size) / 4; ++W) {
      Sep[W] = true;
      IsData[W] = true;
    }
  for (uint32_t T : M.Side.TerminatorOffsets)
    Sep[T / 4] = true;
  for (const auto &R : M.Side.PcRelRecords)
    Sep[R.InsnOffset / 4] = true;

  for (std::size_t W = 0; W < NumWords; ++W) {
    if (IsData[W])
      continue;
    auto I = a64::decode(M.Code[W]);
    if (!I || touchesLr(*I))
      Sep[W] = true;
  }

  if (HotFiltered) {
    // Only the recorded slow paths stay outlinable (paper §3.4.2).
    std::vector<bool> InSlowPath(NumWords, false);
    for (const auto &R : M.Side.SlowPathRanges)
      for (uint32_t W = R.Begin / 4; W < R.End / 4; ++W)
        InSlowPath[W] = true;
    for (std::size_t W = 0; W < NumWords; ++W)
      if (!InSlowPath[W])
        Sep[W] = true;
  }
  return Sep;
}

/// Marks words that some branch jumps to (from the recorded PcRelRecords).
/// An occurrence may start at such a word but must not contain one in its
/// interior: the interior instructions no longer exist at their old
/// addresses after outlining.
std::vector<bool> computeBranchTargets(const CompiledMethod &M) {
  std::vector<bool> Target(M.Code.size(), false);
  for (const auto &R : M.Side.PcRelRecords)
    if (R.TargetOffset / 4 < M.Code.size())
      Target[R.TargetOffset / 4] = true;
  return Target;
}

/// Rewrites one method given its selected occurrences (sorted, disjoint):
/// replaces each occurrence with a relocated `bl`, then remaps and patches
/// every piece of metadata (paper §3.3.4 and §3.5).
Error rewriteMethod(CompiledMethod &M, std::vector<MethodOcc> Occs) {
  std::sort(Occs.begin(), Occs.end(),
            [](const MethodOcc &A, const MethodOcc &B) {
              return A.WordStart < B.WordStart;
            });

  std::size_t NumWords = M.Code.size();
  std::vector<uint32_t> NewOffOfWord(NumWords + 1, 0);
  std::vector<uint32_t> NewCode;
  NewCode.reserve(NumWords);
  std::vector<Relocation> NewRelocs;

  const uint32_t BlWord = a64::encode(a64::Insn{.Op = a64::Opcode::Bl});

  std::size_t OI = 0;
  for (std::size_t W = 0; W < NumWords;) {
    uint32_t NewOff = static_cast<uint32_t>(NewCode.size() * 4);
    if (OI < Occs.size() && W == Occs[OI].WordStart) {
      const MethodOcc &O = Occs[OI];
      for (uint32_t K = 0; K < O.LenWords; ++K)
        NewOffOfWord[W + K] = NewOff;
      NewCode.push_back(BlWord);
      NewRelocs.push_back({NewOff, RelocKind::OutlinedFunc, O.FuncId});
      W += O.LenWords;
      ++OI;
      continue;
    }
    NewOffOfWord[W] = NewOff;
    NewCode.push_back(M.Code[W]);
    ++W;
  }
  NewOffOfWord[NumWords] = static_cast<uint32_t>(NewCode.size() * 4);

  // Removals can break the 8-byte alignment of the trailing literal pool
  // (64-bit ldr-literal loads require it). Re-pad with one NOP in front of
  // the pool and shift everything at or past the pool start.
  uint32_t PoolStart = ~uint32_t(0);
  for (const auto &D : M.Side.EmbeddedData)
    PoolStart = std::min(PoolStart, NewOffOfWord[D.Offset / 4]);
  uint32_t PoolShift = 0;
  if (PoolStart != ~uint32_t(0) && PoolStart % 8 != 0) {
    NewCode.insert(NewCode.begin() + PoolStart / 4,
                   a64::encode(a64::Insn{.Op = a64::Opcode::Nop}));
    PoolShift = 4;
  }

  auto remap = [&](uint32_t OldOff) {
    uint32_t Off = NewOffOfWord[OldOff / 4];
    return Off >= PoolStart ? Off + PoolShift : Off;
  };

  // Carry the original relocations over; `bl` words are always separators,
  // so none of them can sit inside a removed region.
  for (const auto &R : M.Relocs)
    NewRelocs.push_back({remap(R.Offset), R.Kind, R.TargetId});
  std::sort(NewRelocs.begin(), NewRelocs.end(),
            [](const Relocation &A, const Relocation &B) {
              return A.Offset < B.Offset;
            });

  // Patch PC-relative instructions against their targets' new offsets.
  std::vector<PcRelRecord> NewPcRel;
  NewPcRel.reserve(M.Side.PcRelRecords.size());
  for (const auto &R : M.Side.PcRelRecords) {
    uint32_t NewInsn = remap(R.InsnOffset);
    uint32_t NewTarget = remap(R.TargetOffset);
    uint32_t &Word = NewCode[NewInsn / 4];
    auto Patched = a64::retargetWord(Word, NewInsn, NewTarget);
    if (!Patched)
      return makeError("method '" + M.Name +
                       "': pc-relative patch failed: " + Patched.message());
    Word = *Patched;
    NewPcRel.push_back({NewInsn, NewTarget});
  }

  for (auto &T : M.Side.TerminatorOffsets)
    T = remap(T);
  for (auto &D : M.Side.EmbeddedData)
    D.Offset = remap(D.Offset);
  // NewOffOfWord has NumWords+1 entries, so remap() handles End offsets up
  // to and including codeSizeBytes() — and applies PoolShift uniformly
  // (an end-of-code End that sits past an inserted pool NOP must shift
  // with the pool, or the range would under-cover the last instruction).
  for (auto &S : M.Side.SlowPathRanges) {
    uint32_t End = remap(S.End);
    S.Begin = remap(S.Begin);
    S.End = End;
  }
  for (auto &E : M.Map.Entries)
    E.NativePcOffset = remap(E.NativePcOffset);

  M.Side.PcRelRecords = std::move(NewPcRel);
  M.Relocs = std::move(NewRelocs);
  M.Code = std::move(NewCode);
  return Error::success();
}

/// Phase A output for one candidate method: everything computeSeparators /
/// computeBranchTargets derive, computed once up front (in parallel) so the
/// per-group sequence assembly below is a cheap copy loop.
struct MethodPrep {
  std::vector<bool> Sep;
  std::vector<bool> Targets;
  /// Content digest (code + side info), computed only when detection-result
  /// reuse is on. Recomputed HERE, from the method actually being linked:
  /// a digest carried over from an earlier pipeline stage could go stale if
  /// anything mutated the methods in between, and a stale digest could
  /// replay a wrong cached selection.
  cache::Digest Content;
  /// Side-info validation outcome. A faulted method is skipped by the
  /// prep (Sep/Targets stay empty) and excluded from outlining — or, in
  /// strict mode, aborts the run.
  codegen::SideInfoDiag Diag;
};

/// Rewrite work for one method, produced by selection (Phase B) and
/// executed by the rewrite fan-out (Phase C).
struct RewriteWork {
  std::size_t Row = 0; ///< Index into Methods.
  std::vector<MethodOcc> Occs;
};

/// Phase B for one partition: sequence assembly from the precomputed
/// separators, detection (suffix tree or suffix array, per options), and
/// candidate selection. Produces this group's outlined functions and the
/// per-method rewrite work; it mutates nothing, so groups run concurrently.
template <typename DetectorT>
void runGroupImpl(const std::vector<CompiledMethod> &Methods,
                  const std::vector<std::size_t> &Rows,
                  const std::vector<const MethodPrep *> &Preps,
                  uint32_t GroupIdx, const OutlinerOptions &Opts,
                  std::vector<OutlinedFunc> &FuncsOut,
                  std::vector<RewriteWork> &WorkOut, OutlineStats &Stats,
                  cache::GroupSelections *StoreOut, support::Arena *Scratch,
                  bool ViewText) {
  Timer BuildTimer;

  // Step 2 (paper §3.3.2): map this group's binary code to one symbol
  // sequence with unique separators. Sized up front: every word emits one
  // position plus one inter-method separator per method.
  std::size_t TotalWords = 0;
  for (std::size_t Row : Rows)
    TotalWords += Methods[Row].Code.size() + 1;

  std::vector<st::Symbol> Seq;
  std::vector<PosInfo> Pos;
  Seq.reserve(TotalWords);
  Pos.reserve(TotalWords);
  uint64_t SepCounter = 0;

  for (std::size_t GI = 0; GI < Rows.size(); ++GI) {
    const CompiledMethod &M = Methods[Rows[GI]];
    const std::vector<bool> &Sep = Preps[GI]->Sep;
    for (std::size_t W = 0; W < M.Code.size(); ++W) {
      Seq.push_back(Sep[W] ? st::SeparatorBase + SepCounter++
                           : st::Symbol(M.Code[W]));
      Pos.push_back({static_cast<int32_t>(GI), static_cast<uint32_t>(W)});
    }
    Seq.push_back(st::SeparatorBase + SepCounter++);
    Pos.push_back({-1, 0});
  }
  const std::size_t TextSize = Seq.size();
  Stats.SymbolCount += TextSize;

  // The suffix array takes a construction-scratch arena (dead once the
  // constructor returns); the suffix tree allocates its own structures.
  // Windowed (ViewText) mode hands the detector a non-owning view instead
  // of moving the vector in: the sequence stays where it was assembled and
  // is freed explicitly right after the detector releases its working set,
  // so no second text copy ever exists. Output is identical either way.
  auto MakeDetector = [&] {
    if constexpr (std::is_constructible_v<DetectorT, std::vector<st::Symbol>,
                                          support::Arena *>) {
      if (ViewText)
        return DetectorT(std::span<const st::Symbol>(Seq), Scratch);
      return DetectorT(std::move(Seq), Scratch);
    } else {
      if (ViewText)
        return DetectorT(std::span<const st::Symbol>(Seq));
      return DetectorT(std::move(Seq));
    }
  };
  DetectorT Tree = MakeDetector();
  Stats.TreeNodes += Tree.numNodes();
  Stats.BuildTreeSeconds += BuildTimer.seconds();
  if constexpr (std::is_same_v<DetectorT, st::SuffixArray>) {
    if (Tree.constructionBackend() == st::SaBackend::SaIs)
      ++Stats.GroupsSaIs;
    else
      ++Stats.GroupsPrefixDoubling;
  }

  // Step 3 (paper §3.3.3): rank candidates by the Fig. 2 benefit model and
  // claim occurrences greedily.
  Timer SelectTimer;
  struct Cand {
    int32_t Node;
    uint32_t Len;
    uint32_t Count;
    uint32_t First; ///< Earliest occurrence, for content-based ordering.
    int64_t Ben;
  };
  std::vector<Cand> Cands;
  Tree.forEachRepeat(Opts.MinSeqLen, Opts.MaxSeqLen, 2,
                     [&](const typename DetectorT::RepeatInfo &R) {
                       int64_t Ben = benefit(R.Length, R.Count);
                       if (Ben > 0)
                         Cands.push_back({R.Node, R.Length, R.Count, 0, Ben});
                     });
  Stats.CandidatesEvaluated += Cands.size();
  // One O(count) scan per candidate — no occurrence copy, no sort. The
  // old positionsOf()-per-candidate pass here was the k=32 select spike:
  // copying and sorting every candidate's full occurrence list just to
  // read its minimum made this loop superlinear in the candidate count.
  for (Cand &C : Cands)
    C.First = Tree.firstPositionOf(C.Node);
  const double EnumerateSeconds = SelectTimer.seconds();

  // The detect-phase working set peaks here: the full suffix structure
  // plus this group's sequence/provenance arrays. Record it, then drop the
  // structure's scratch — selection below reads occurrence positions and
  // method words only, never the stored text. Neither the sampling nor the
  // release is selection work, so both stay outside the selection timers
  // (releasing a multi-megabyte transition map is what made SelectSeconds
  // spike intermittently at high K).
  Stats.DetectPeakBytes =
      std::max(Stats.DetectPeakBytes,
               Tree.workingSetBytes() + Pos.capacity() * sizeof(PosInfo) +
                   Cands.capacity() * sizeof(Cand));
  Tree.releaseWorkingSet();
  // In view mode the sequence is still ours; the detector no longer reads
  // it, so drop it now (selection reads method words through Pos only).
  std::vector<st::Symbol>().swap(Seq);

  Timer ClaimTimer;
  // The tie-break is content-based ((first occurrence, length) names the
  // sequence uniquely), so every detection backend selects identically.
  std::sort(Cands.begin(), Cands.end(), [](const Cand &A, const Cand &B) {
    if (A.Ben != B.Ben)
      return A.Ben > B.Ben;
    if (A.Len != B.Len)
      return A.Len > B.Len;
    return A.First < B.First;
  });

  std::vector<bool> Claimed(TextSize, false);
  std::vector<std::vector<MethodOcc>> OccsByMethod(Rows.size());
  uint32_t LocalFuncs = 0;
  std::vector<uint32_t> PosBuf;
  std::vector<uint32_t> Selected;

  for (const Cand &C : Cands) {
    Selected.clear();
    uint32_t LastEnd = 0;
    Tree.positionsOf(C.Node, PosBuf);
    for (uint32_t P : PosBuf) {
      if (!Selected.empty() && P < LastEnd)
        continue; // Overlaps the previous selection of this candidate.
      bool Ok = true;
      for (uint32_t Q = P; Q < P + C.Len && Ok; ++Q)
        Ok = !Claimed[Q];
      // Interior branch targets invalidate an occurrence: after outlining,
      // nothing would exist at those addresses to jump to.
      if (Ok) {
        const PosInfo &PI = Pos[P];
        assert(PI.MethodRow >= 0 && "occurrence starts at a separator");
        const auto &TargetAt = Preps[PI.MethodRow]->Targets;
        for (uint32_t K = 1; K < C.Len && Ok; ++K)
          Ok = !TargetAt[PI.Word + K];
      }
      if (!Ok)
        continue;
      Selected.push_back(P);
      LastEnd = P + C.Len;
    }
    if (!isProfitable(C.Len, Selected.size()))
      continue;

    assert(LocalFuncs < (1u << 20) && "too many outlined functions in group");
    uint32_t FuncId = (GroupIdx << 20) | LocalFuncs++;

    OutlinedFunc Fn;
    Fn.Id = FuncId;
    Fn.SeqLength = C.Len;
    Fn.Occurrences = static_cast<uint32_t>(Selected.size());
    // The preserved copy comes from the first occurrence's method words
    // (the detector's stored text is already released). Each word emitted
    // exactly one sequence position, so the occurrence maps to contiguous
    // words of one method.
    uint32_t P0 = Selected.front();
    const PosInfo &PI0 = Pos[P0];
    const CompiledMethod &SrcM = Methods[Rows[PI0.MethodRow]];
    for (uint32_t K = 0; K < C.Len; ++K) {
      assert(!Preps[PI0.MethodRow]->Sep[PI0.Word + K] &&
             "separator inside a repeated sequence");
      Fn.Code.push_back(SrcM.Code[PI0.Word + K]);
    }
    a64::Insn RetBr{.Op = a64::Opcode::Br};
    RetBr.Rn = a64::LR;
    Fn.Code.push_back(a64::encode(RetBr));
    FuncsOut.push_back(std::move(Fn));

    const int64_t SelBen = benefit(C.Len, Selected.size());
    if (StoreOut) {
      cache::CachedSelection CS;
      CS.SeqLen = C.Len;
      CS.Benefit = static_cast<uint64_t>(SelBen);
      CS.Positions = Selected;
      StoreOut->Funcs.push_back(std::move(CS));
    }

    for (uint32_t P : Selected) {
      const PosInfo &PI = Pos[P];
      OccsByMethod[PI.MethodRow].push_back({PI.Word, C.Len, FuncId});
      for (uint32_t Q = P; Q < P + C.Len; ++Q)
        Claimed[Q] = true;
    }
    ++Stats.SequencesOutlined;
    Stats.OccurrencesReplaced += Selected.size();
    Stats.InsnsRemoved += static_cast<uint64_t>(SelBen);
  }
  Stats.SelectSeconds += EnumerateSeconds + ClaimTimer.seconds();

  // Hand the rewrites to Phase C instead of executing them here: every
  // method's rewrite is independent, so the fan-out parallelizes across ALL
  // groups' methods at once (and runs even when Partitions == 1).
  for (std::size_t GI = 0; GI < Rows.size(); ++GI)
    if (!OccsByMethod[GI].empty())
      WorkOut.push_back({Rows[GI], std::move(OccsByMethod[GI])});
}

/// Replays one group's cached canonical selection instead of running
/// detection (Phase B on a warm build). The cache is never an authority:
/// every invariant the cold selection path establishes is re-validated
/// against the LIVE methods — lengths inside [MinSeqLen, MaxSeqLen],
/// positions strictly ascending and inside one method, no separators or
/// claimed words in any occurrence, no interior branch targets, identical
/// words across all occurrences of a function, and the recorded benefit
/// matching the model. ANY violation rejects the replay with all outputs
/// untouched and the caller falls back to detection, so a stale or corrupt
/// entry can cost time but can never change output. On success the
/// emission order (and hence OutlinedFunc id assignment) is exactly the
/// cold path's, which is what keeps warm builds byte-identical.
bool replayGroup(const std::vector<CompiledMethod> &Methods,
                 const std::vector<std::size_t> &Rows,
                 const std::vector<const MethodPrep *> &Preps,
                 uint32_t GroupIdx, const OutlinerOptions &Opts,
                 const cache::GroupSelections &Cached,
                 std::vector<OutlinedFunc> &FuncsOut,
                 std::vector<RewriteWork> &WorkOut, OutlineStats &Stats) {
  if (Cached.Funcs.size() >= (1u << 20))
    return false;

  // Re-assemble the position provenance only (no symbols, no suffix
  // structure): separator-ness and word content are read through Pos.
  std::size_t TotalWords = 0;
  for (std::size_t Row : Rows)
    TotalWords += Methods[Row].Code.size() + 1;
  std::vector<PosInfo> Pos;
  Pos.reserve(TotalWords);
  for (std::size_t GI = 0; GI < Rows.size(); ++GI) {
    const CompiledMethod &M = Methods[Rows[GI]];
    for (std::size_t W = 0; W < M.Code.size(); ++W)
      Pos.push_back({static_cast<int32_t>(GI), static_cast<uint32_t>(W)});
    Pos.push_back({-1, 0});
  }
  const std::size_t TextSize = Pos.size();

  std::vector<bool> Claimed(TextSize, false);
  std::vector<OutlinedFunc> Funcs;
  std::vector<std::vector<MethodOcc>> OccsByMethod(Rows.size());
  std::size_t SequencesOutlined = 0, OccurrencesReplaced = 0;
  uint64_t InsnsRemoved = 0;
  uint32_t LocalFuncs = 0;

  for (const cache::CachedSelection &S : Cached.Funcs) {
    if (S.SeqLen < Opts.MinSeqLen || S.SeqLen > Opts.MaxSeqLen)
      return false;
    if (S.Positions.empty() || !isProfitable(S.SeqLen, S.Positions.size()))
      return false;
    if (S.Benefit !=
        static_cast<uint64_t>(benefit(S.SeqLen, S.Positions.size())))
      return false;

    const uint32_t P0 = S.Positions.front();
    if (P0 >= TextSize || Pos[P0].MethodRow < 0)
      return false;
    const PosInfo &PI0 = Pos[P0];
    uint32_t LastEnd = 0;
    for (std::size_t J = 0; J < S.Positions.size(); ++J) {
      const uint32_t P = S.Positions[J];
      if (J > 0 && P < LastEnd)
        return false; // Overlap inside the selection.
      if (P >= TextSize || TextSize - P < S.SeqLen)
        return false;
      const PosInfo &PI = Pos[P];
      if (PI.MethodRow < 0)
        return false;
      const MethodPrep &Prep = *Preps[PI.MethodRow];
      const CompiledMethod &M = Methods[Rows[PI.MethodRow]];
      const CompiledMethod &M0 = Methods[Rows[PI0.MethodRow]];
      for (uint32_t K = 0; K < S.SeqLen; ++K) {
        const PosInfo &QI = Pos[P + K];
        if (QI.MethodRow != PI.MethodRow)
          return false; // Crosses a method boundary.
        if (Prep.Sep[PI.Word + K] || Claimed[P + K])
          return false;
        if (K > 0 && Prep.Targets[PI.Word + K])
          return false; // Interior branch target.
        if (M.Code[PI.Word + K] != M0.Code[PI0.Word + K])
          return false; // Occurrences no longer share content.
      }
      LastEnd = P + S.SeqLen;
    }

    const uint32_t FuncId = (GroupIdx << 20) | LocalFuncs++;
    OutlinedFunc Fn;
    Fn.Id = FuncId;
    Fn.SeqLength = S.SeqLen;
    Fn.Occurrences = static_cast<uint32_t>(S.Positions.size());
    const CompiledMethod &M0 = Methods[Rows[PI0.MethodRow]];
    for (uint32_t K = 0; K < S.SeqLen; ++K)
      Fn.Code.push_back(M0.Code[PI0.Word + K]);
    a64::Insn RetBr{.Op = a64::Opcode::Br};
    RetBr.Rn = a64::LR;
    Fn.Code.push_back(a64::encode(RetBr));
    Funcs.push_back(std::move(Fn));

    for (uint32_t P : S.Positions) {
      const PosInfo &PI = Pos[P];
      OccsByMethod[PI.MethodRow].push_back({PI.Word, S.SeqLen, FuncId});
      for (uint32_t Q = P; Q < P + S.SeqLen; ++Q)
        Claimed[Q] = true;
    }
    ++SequencesOutlined;
    OccurrencesReplaced += S.Positions.size();
    InsnsRemoved += S.Benefit;
  }

  // All-or-nothing commit: nothing above touched the output parameters.
  Stats.SymbolCount += TextSize;
  Stats.SequencesOutlined += SequencesOutlined;
  Stats.OccurrencesReplaced += OccurrencesReplaced;
  Stats.InsnsRemoved += InsnsRemoved;
  FuncsOut = std::move(Funcs);
  for (std::size_t GI = 0; GI < Rows.size(); ++GI)
    if (!OccsByMethod[GI].empty())
      WorkOut.push_back({Rows[GI], std::move(OccsByMethod[GI])});
  return true;
}

} // namespace

std::size_t core::detectBytesPerWord(DetectorKind Kind) {
  // Per sequence word: 8 B text + 12 B PosInfo provenance, plus the suffix
  // structure at its construction peak — the SA-IS arrays and interval
  // table for the array backend, the node table and transition hash map
  // for the tree. Calibrated against table5_memory's DetectPeakBytes on
  // the paper-app corpus; deliberately a little high so a window's real
  // peak lands under, not over, its estimate.
  return Kind == DetectorKind::SuffixArray ? 64 : 224;
}

Expected<OutlineResult> core::runLtbo(std::vector<CompiledMethod> &Methods,
                                      const OutlinerOptions &Opts) {
  const bool Windowed = Opts.MemoryBudgetBytes > 0;
  if ((Opts.Partitions == 0 && !Windowed) || Opts.MinSeqLen < 2 ||
      Opts.MaxSeqLen < Opts.MinSeqLen)
    return makeError("runLtbo: invalid options");

  OutlineResult Result;

  // Step 1 (paper §3.3.1): choose candidate methods.
  std::vector<std::size_t> Candidates;
  for (std::size_t Row = 0; Row < Methods.size(); ++Row) {
    const auto &M = Methods[Row];
    if (M.Side.IsNative) {
      ++Result.Stats.ExcludedNative;
      continue;
    }
    if (M.Side.HasIndirectJump) {
      ++Result.Stats.ExcludedIndirectJump;
      continue;
    }
    if (Opts.PinnedMethods && Opts.PinnedMethods->count(M.MethodIdx)) {
      ++Result.Stats.ExcludedMergePinned;
      continue;
    }
    Candidates.push_back(Row);
  }
  Result.Stats.CandidateMethods = Candidates.size();

  // One pool serves every phase; group tasks never call back into it, so
  // there is no nested-wait deadlock. An effective thread count of 1 —
  // Threads == 1, or any request on a single-core machine — stays pool-free
  // and runs every phase inline on the calling thread: oversubscribing a
  // CPU-bound pipeline only buys scheduling overhead (the measured
  // 8-threads-slower-than-1 regression), never throughput. A daemon job
  // instead injects the service-wide pool (Opts.Pool) and its fairness
  // group, so concurrent links share one set of workers round-robin.
  std::unique_ptr<ThreadPool> OwnedPool;
  ThreadPool *Pool = Opts.Pool;
  const ThreadPool::GroupId PoolGroup = Pool ? Opts.PoolGroup : 0;
  if (!Pool && Opts.Threads > 1 &&
      ThreadPool::effectiveThreads(Opts.Threads) > 1) {
    OwnedPool = std::make_unique<ThreadPool>(Opts.Threads);
    Pool = OwnedPool.get();
  }
  if (Pool && Pool->numThreads() == 1)
    Pool = nullptr; // Inline path; a 1-worker pool adds only handshakes.

  // Phase A: per-method preprocessing — side-info validation first, then
  // separators + branch targets, the decode-heavy analysis — in parallel
  // over ALL candidates, before any sequence is assembled. Each candidate
  // writes only its own slot, and the degradation/error scan below walks
  // slots in candidate order afterwards, so rejections (and the strict-mode
  // error: the lowest candidate index's) are identical for any scheduling.
  Timer PreprocessTimer;
  std::vector<MethodPrep> Preps(Candidates.size());
  auto PrepOne = [&](std::size_t I) {
    const CompiledMethod &M = Methods[Candidates[I]];
    bool Hot = Opts.HotMethods && Opts.HotMethods->count(M.MethodIdx);
    MethodPrep &P = Preps[I];
    P.Diag = codegen::validateSideInfo(M);
    if (P.Diag)
      return; // Invalid: never fed to detection, links verbatim.
    P.Sep = computeSeparators(M, Hot);
    P.Targets = computeBranchTargets(M);
    // Windowed mode keys every group for the spill store even without a
    // user-configured cache.
    if (Opts.Cache || Windowed)
      P.Content = cache::methodContentDigest(M);
  };
  if (Pool) {
    Pool->parallelForIn(PoolGroup, Candidates.size(), PrepOne);
  } else {
    for (std::size_t I = 0; I < Candidates.size(); ++I)
      PrepOne(I);
  }
  // Graceful degradation (or strict fail-fast) over the validation
  // outcomes. Accepted keeps the surviving candidate indices in input
  // order; on a fully clean run it equals 0..Candidates.size()-1 and the
  // partition below is byte-identical to the no-validation pipeline.
  std::vector<std::size_t> Accepted;
  Accepted.reserve(Candidates.size());
  for (std::size_t I = 0; I < Candidates.size(); ++I) {
    const CompiledMethod &M = Methods[Candidates[I]];
    if (Preps[I].Diag) {
      const codegen::SideInfoDiag &D = Preps[I].Diag;
      if (Opts.Strict)
        return makeError(ErrCat::SideInfo,
                         "ltbo: method '" + M.Name + "': invalid side info: " +
                             codegen::sideInfoFaultName(D.Fault) + " " +
                             D.Detail);
      ++Result.Stats.MethodsRejected;
      ++Result.Stats.RejectedByFault[static_cast<std::size_t>(D.Fault)];
      Result.Rejected.push_back({M.MethodIdx, M.Name, D.Fault, D.Detail});
      continue;
    }
    if (Opts.HotMethods && Opts.HotMethods->count(M.MethodIdx))
      ++Result.Stats.HotFilteredMethods;
    Accepted.push_back(I);
  }
  Result.Stats.PreprocessSeconds = PreprocessTimer.seconds();
  Result.Stats.PreprocessThreads = Pool ? Pool->numThreads() : 1;

  // PlOpti (paper §3.4.1): simple even partition of the accepted candidate
  // methods. Groups hold candidate indices so Phase B can reach the Phase A
  // output. Partitions == 0 (auto, budget required) derives the smallest K
  // whose estimated per-group detect working set fits the budget — the
  // round-robin split is near-even in words, so TotalWords / K estimates a
  // group. Capped at 2^12: group index occupies the FuncId bits above 20.
  const std::size_t BytesPerWord = detectBytesPerWord(Opts.Detector);
  uint32_t K = Opts.Partitions;
  if (K == 0) {
    uint64_t TotalWords = 0;
    for (std::size_t I : Accepted)
      TotalWords += Methods[Candidates[I]].Code.size() + 1;
    uint64_t Need =
        (TotalWords * BytesPerWord + Opts.MemoryBudgetBytes - 1) /
        Opts.MemoryBudgetBytes;
    K = static_cast<uint32_t>(std::clamp<uint64_t>(Need, 1, 1u << 12));
  }
  Result.Stats.PartitionsUsed = K;
  std::vector<std::vector<std::size_t>> Groups(K);
  for (std::size_t A = 0; A < Accepted.size(); ++A)
    Groups[A % K].push_back(Accepted[A]);

  // Incremental reuse: key each group by the content digests of its member
  // set (plus the options that shape detection; the hot-bit changes a
  // member's separators, so it is part of the member's identity). All
  // stored selections are prefetched BEFORE Phase B, which makes hit/miss
  // a pure function of pre-existing cache state: two identically-keyed
  // groups in one run both replay or neither does, regardless of how Phase
  // B tasks interleave with this run's own stores. The detector kind is
  // deliberately absent from the key — both backends are required (and
  // tested) to select identically.
  std::vector<cache::Digest> GroupKeys(Opts.Cache || Windowed ? K : 0);
  std::vector<std::unique_ptr<cache::GroupSelections>> GroupCached(
      Opts.Cache ? K : 0);
  if (Opts.Cache || Windowed) {
    for (uint32_t G = 0; G < K; ++G) {
      if (Groups[G].empty())
        continue;
      cache::Hasher H;
      H.u32(cache::CacheFormatVersion);
      H.u32(Opts.MinSeqLen);
      H.u32(Opts.MaxSeqLen);
      for (std::size_t I : Groups[G]) {
        const CompiledMethod &M = Methods[Candidates[I]];
        H.digest(Preps[I].Content);
        H.u8(Opts.HotMethods && Opts.HotMethods->count(M.MethodIdx) ? 1 : 0);
      }
      GroupKeys[G] = H.finish();
      if (Opts.Cache)
        if (auto Sel = Opts.Cache->loadGroup(GroupKeys[G]))
          GroupCached[G] =
              std::make_unique<cache::GroupSelections>(std::move(*Sel));
    }
  }

  // Spill target of windowed mode: the user's cache when configured (the
  // blobs are ordinary group entries, so the next warm build reuses them),
  // else a private temp-dir store that dies with this run. Failing to
  // create one is not fatal — the merge pass then falls back to
  // re-detecting every group, which costs time but changes nothing.
  std::unique_ptr<cache::SpillStore> Spill;
  cache::BuildCache *SpillTarget = Opts.Cache;
  if (Windowed && !SpillTarget) {
    if (auto S = cache::SpillStore::create(Opts.SpillDir))
      SpillTarget = &(Spill = std::move(*S))->store();
  }

  // Phase B: detection + selection per group, concurrently across groups.
  // Each task touches only its own output slots and reads shared state, so
  // results are identical for any thread count.
  std::vector<OutlineStats> GroupStats(K);
  std::vector<std::vector<OutlinedFunc>> GroupFuncs(K);
  std::vector<std::vector<RewriteWork>> GroupWork(K);

  // Construction-scratch arenas for the suffix-array detector, shared
  // across groups through a pool: a worker that finishes one group hands
  // its (already-grown, coalesced) arena to the next, so steady-state
  // detection allocates nothing. The arena only shapes WHERE scratch
  // lives, never what is computed — output stays byte-identical.
  support::ArenaPool DetectArenas;

  auto GatherGroup = [&](std::size_t G, std::vector<std::size_t> &Rows,
                         std::vector<const MethodPrep *> &GroupPreps) {
    Rows.reserve(Groups[G].size());
    GroupPreps.reserve(Groups[G].size());
    for (std::size_t I : Groups[G]) {
      Rows.push_back(Candidates[I]);
      GroupPreps.push_back(&Preps[I]);
    }
  };

  auto RunOne = [&](std::size_t G) {
    if (Groups[G].empty())
      return;
    std::vector<std::size_t> Rows;
    std::vector<const MethodPrep *> GroupPreps;
    GatherGroup(G, Rows, GroupPreps);
    if (Opts.Cache && GroupCached[G] &&
        replayGroup(Methods, Rows, GroupPreps, static_cast<uint32_t>(G), Opts,
                    *GroupCached[G], GroupFuncs[G], GroupWork[G],
                    GroupStats[G])) {
      ++GroupStats[G].GroupsReused;
      return;
    }
    ++GroupStats[G].GroupsDetected;
    cache::GroupSelections Store;
    cache::GroupSelections *StorePtr = SpillTarget ? &Store : nullptr;
    if (Opts.Detector == DetectorKind::SuffixTree) {
      runGroupImpl<st::SuffixTree>(Methods, Rows, GroupPreps,
                                   static_cast<uint32_t>(G), Opts,
                                   GroupFuncs[G], GroupWork[G], GroupStats[G],
                                   StorePtr, nullptr, Windowed);
    } else {
      support::ArenaPool::Handle Scratch = DetectArenas.acquire();
      runGroupImpl<st::SuffixArray>(Methods, Rows, GroupPreps,
                                    static_cast<uint32_t>(G), Opts,
                                    GroupFuncs[G], GroupWork[G], GroupStats[G],
                                    StorePtr, Scratch.get(), Windowed);
      GroupStats[G].DetectScratchBytes = Scratch->bytesReserved();
    }
    // Store even an empty selection: "this group outlines nothing" is as
    // reusable as any other result.
    if (SpillTarget)
      SpillTarget->storeGroup(GroupKeys[G], Store);
  };

  if (!Windowed) {
    if (Pool && K > 1) {
      Pool->parallelForIn(PoolGroup, K, RunOne);
      Result.Stats.DetectThreads =
          std::min<std::size_t>(Pool->numThreads(), K);
    } else {
      for (std::size_t G = 0; G < K; ++G)
        RunOne(G);
    }
  } else {
    // Streamed Phase B: pack the non-empty groups, in ascending index
    // order, into windows whose summed estimated working set fits the
    // budget (greedy first-fit-in-order — order must be preserved so the
    // packing is a pure function of groups + budget, never of scheduling).
    // A single group that alone exceeds the budget still runs, by itself,
    // and is counted as an overrun instead of failing the link.
    std::vector<std::vector<std::size_t>> Windows;
    uint64_t CurBytes = 0;
    std::size_t MaxWindowGroups = 0;
    for (uint32_t G = 0; G < K; ++G) {
      if (Groups[G].empty())
        continue;
      uint64_t Words = 0;
      for (std::size_t I : Groups[G])
        Words += Methods[Candidates[I]].Code.size() + 1;
      uint64_t Est = Words * BytesPerWord;
      if (!Windows.empty() && CurBytes + Est <= Opts.MemoryBudgetBytes) {
        Windows.back().push_back(G);
        CurBytes += Est;
      } else {
        Windows.push_back({G});
        CurBytes = Est;
        if (Est > Opts.MemoryBudgetBytes)
          ++Result.Stats.DetectBudgetOverruns;
      }
      MaxWindowGroups = std::max(MaxWindowGroups, Windows.back().size());
    }
    Result.Stats.DetectWindows = Windows.size();

    for (const std::vector<std::size_t> &W : Windows) {
      if (Pool && W.size() > 1) {
        Pool->parallelForIn(PoolGroup, W.size(),
                            [&](std::size_t I) { RunOne(W[I]); });
      } else {
        for (std::size_t G : W)
          RunOne(G);
      }
      // The window is done: its selections are in the spill store, so the
      // in-memory outputs can go — the merge pass below reconstitutes them
      // one group at a time. Summed member peaks bound what this window
      // held at once (groups in one window run concurrently).
      std::size_t WindowPeak = 0;
      for (std::size_t G : W) {
        WindowPeak += GroupStats[G].DetectPeakBytes;
        std::vector<OutlinedFunc>().swap(GroupFuncs[G]);
        std::vector<RewriteWork>().swap(GroupWork[G]);
        ++Result.Stats.GroupsSpilled;
      }
      Result.Stats.DetectWindowPeakBytes =
          std::max(Result.Stats.DetectWindowPeakBytes, WindowPeak);
    }
    if (Pool)
      Result.Stats.DetectThreads =
          std::min<std::size_t>(Pool->numThreads(),
                                std::max<std::size_t>(MaxWindowGroups, 1));

    // Merge pass: reload every group's spilled selection and replay it —
    // serial and in ascending group index, so FuncId assignment and every
    // tie-break follow the same lowest-index rules as the unwindowed path.
    // Replay re-validates everything against the live methods; a missing
    // or rejected blob falls back to deterministic re-detection. Stats
    // were already counted when the group first ran in its window, so both
    // paths here discard theirs.
    Timer MergeTimer;
    for (uint32_t G = 0; G < K; ++G) {
      if (Groups[G].empty())
        continue;
      std::vector<std::size_t> Rows;
      std::vector<const MethodPrep *> GroupPreps;
      GatherGroup(G, Rows, GroupPreps);
      OutlineStats Discard;
      if (SpillTarget) {
        if (auto Sel = SpillTarget->loadGroup(GroupKeys[G]))
          if (replayGroup(Methods, Rows, GroupPreps, G, Opts, *Sel,
                          GroupFuncs[G], GroupWork[G], Discard))
            continue;
      }
      if (Opts.Detector == DetectorKind::SuffixTree) {
        runGroupImpl<st::SuffixTree>(Methods, Rows, GroupPreps, G, Opts,
                                     GroupFuncs[G], GroupWork[G], Discard,
                                     nullptr, nullptr, true);
      } else {
        support::ArenaPool::Handle Scratch = DetectArenas.acquire();
        runGroupImpl<st::SuffixArray>(Methods, Rows, GroupPreps, G, Opts,
                                      GroupFuncs[G], GroupWork[G], Discard,
                                      nullptr, Scratch.get(), true);
      }
    }
    Result.Stats.MergeSeconds = MergeTimer.seconds();
  }

  for (std::size_t G = 0; G < K; ++G) {
    auto &S = GroupStats[G];
    Result.Stats.SequencesOutlined += S.SequencesOutlined;
    Result.Stats.OccurrencesReplaced += S.OccurrencesReplaced;
    Result.Stats.CandidatesEvaluated += S.CandidatesEvaluated;
    Result.Stats.InsnsRemoved += S.InsnsRemoved;
    Result.Stats.SymbolCount += S.SymbolCount;
    Result.Stats.TreeNodes += S.TreeNodes;
    Result.Stats.BuildTreeSeconds += S.BuildTreeSeconds;
    Result.Stats.SelectSeconds += S.SelectSeconds;
    Result.Stats.GroupsReused += S.GroupsReused;
    Result.Stats.GroupsDetected += S.GroupsDetected;
    Result.Stats.GroupsSaIs += S.GroupsSaIs;
    Result.Stats.GroupsPrefixDoubling += S.GroupsPrefixDoubling;
    Result.Stats.DetectPeakBytes =
        std::max(Result.Stats.DetectPeakBytes, S.DetectPeakBytes);
    Result.Stats.DetectScratchBytes =
        std::max(Result.Stats.DetectScratchBytes, S.DetectScratchBytes);
    for (auto &F : GroupFuncs[G])
      Result.Funcs.push_back(std::move(F));
  }
  std::sort(Result.Funcs.begin(), Result.Funcs.end(),
            [](const OutlinedFunc &A, const OutlinedFunc &B) {
              return A.Id < B.Id;
            });

  // Phase C: rewrite fan-out across every selected method — even when
  // Partitions == 1. Work items are sorted by method row; each task rewrites
  // a distinct method and records any failure in its own slot, and the scan
  // below surfaces the LOWEST method index's error for any scheduling.
  Timer RewriteTimer;
  std::vector<RewriteWork> Work;
  for (auto &GW : GroupWork)
    for (auto &W : GW)
      Work.push_back(std::move(W));
  std::sort(Work.begin(), Work.end(),
            [](const RewriteWork &A, const RewriteWork &B) {
              return A.Row < B.Row;
            });
  std::vector<std::string> RewriteErrors(Work.size());
  auto RewriteOne = [&](std::size_t I) {
    if (auto E = rewriteMethod(Methods[Work[I].Row], std::move(Work[I].Occs)))
      RewriteErrors[I] = E.message();
  };
  if (Pool) {
    Pool->parallelForIn(PoolGroup, Work.size(), RewriteOne);
  } else {
    for (std::size_t I = 0; I < Work.size(); ++I)
      RewriteOne(I);
  }
  for (const std::string &E : RewriteErrors)
    if (!E.empty())
      return makeError(E);
  Result.Stats.RewriteSeconds = RewriteTimer.seconds();
  Result.Stats.RewriteThreads = Pool ? Pool->numThreads() : 1;

  return Result;
}
