//===- core/Calibro.h - The Calibro build driver ----------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: the dex2oat-style build pipeline
/// with Calibro's two stages wired in (paper Fig. 5).
///
///   apk (dex::App)
///     -> per method: HGraph -> opt passes -> CTO & LTBO.1 -> binary code
///     -> LTBO.2 (whole-program binary outlining)
///     -> linking -> OAT
///
/// Typical use:
/// \code
///   calibro::core::CalibroOptions Opts;
///   Opts.EnableCto = Opts.EnableLtbo = true;
///   Opts.LtboPartitions = 8;            // PlOpti
///   Opts.Profile = &ProfileFromLastRun; // enables HfOpti
///   auto Build = calibro::core::buildApp(App, Opts);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CORE_CALIBRO_H
#define CALIBRO_CORE_CALIBRO_H

#include "analysis/CallGraph.h"
#include "cache/BuildCache.h"
#include "core/Outliner.h"
#include "dex/Dex.h"
#include "oat/OatFile.h"
#include "profile/Profile.h"
#include "support/ThreadPool.h"

namespace calibro {
namespace core {

/// Build configuration. The paper's evaluated configurations map to:
///  * Baseline:            all fields default (HGraph opts always run).
///  * CTO:                 EnableCto.
///  * CTO+LTBO:            EnableCto + EnableLtbo (Partitions=1).
///  * CTO+LTBO+PlOpti:     ... + LtboPartitions=8, LtboThreads=N.
///  * CTO+LTBO+PlOpti+HfOpti: ... + Profile set (HotCoverage=0.8).
struct CalibroOptions {
  bool EnableCto = false;
  bool EnableLtbo = false;
  /// Worker threads for per-method compilation (dex2oat compiles methods
  /// concurrently; 0 = hardware concurrency). Builds are deterministic
  /// regardless of this value.
  uint32_t CompileThreads = 0;
  /// K detection partitions. 0 = automatic, legal only with a memory
  /// budget (see OutlinerOptions::Partitions).
  uint32_t LtboPartitions = 1;
  uint32_t LtboThreads = 1;
  /// Detect-phase memory budget in bytes (`calibro-dex2oat
  /// --memory-budget`); 0 = unbudgeted. See
  /// OutlinerOptions::MemoryBudgetBytes: bounds LTBO's peak working set by
  /// streaming detection in budget-sized windows, spilling finished group
  /// selections to the build cache (or an ephemeral temp store), with
  /// byte-identical output.
  uint64_t MemoryBudgetBytes = 0;
  DetectorKind LtboDetector = DetectorKind::SuffixTree;
  uint32_t MinSeqLen = 2;
  uint32_t MaxSeqLen = 64;
  /// When set, hot-function filtering (HfOpti) is applied with this
  /// profile.
  const profile::Profile *Profile = nullptr;
  double HotCoverage = 0.80;
  uint64_t BaseAddress = 0x10000000;
  /// Run the static OAT verifier (verify::OatVerifier) over the linked
  /// image and fail the build on any violation. Whole-text decode plus
  /// branch-target checking; cheap relative to compilation.
  bool VerifyOutput = false;
  /// Fail the build on the first method with invalid LTBO side info
  /// instead of degrading per method (`calibro-dex2oat --strict`). See
  /// OutlinerOptions::Strict.
  bool StrictSideInfo = false;
  /// Directory of the incremental build cache (`calibro-dex2oat
  /// --cache-dir`). Empty disables caching. Warm builds reuse
  /// compiled-method blobs and LTBO group selections for unchanged inputs;
  /// output is byte-identical to a cold build at the same inputs.
  std::string CacheDir;
  /// Closed-world reachability GC (`--no-gc` clears it): drop methods the
  /// entrypoint-rooted call-graph walk proves unreachable, before merging
  /// and outlining. Only armed when the app declares Entrypoints — an app
  /// without them is an open world and nothing is dropped.
  bool EnableGc = true;
  /// Global method merging (`--no-merge` clears it): alias identical
  /// bodies, thunk mov-immediate variants. Gated on the same closed-world
  /// declaration as the GC.
  bool EnableMerge = true;
  /// Fail the build on any call-graph anomaly (`--strict-gc`) instead of
  /// degrading to conservative edges/roots.
  bool StrictCallGraph = false;
  /// Profile-driven function layout (`--no-layout` clears it): after GC,
  /// merge and outlining, reorder the .text section by co-execution
  /// affinity (recursive balanced partitioning) so profiled startups touch
  /// fewer code pages. Self-gating: the stage only arms when a Profile is
  /// set AND the app is closed-world (declared entrypoints); otherwise the
  /// build is byte-identical to one without the stage.
  bool EnableLayout = true;
  /// Page granularity the layout stage optimizes for. The default matches
  /// ART's 4 KiB OAT text pages; benches shrink it to match the
  /// simulator's page size at small scales.
  uint32_t LayoutPageSize = 4096;
  /// Externally-owned worker pool (the compile daemon's shared pool). When
  /// set, per-method compilation and the whole LTBO link stage fan out on
  /// it under fairness group PoolGroup instead of constructing private
  /// pools, and CompileThreads / LtboThreads are ignored. Output is
  /// byte-identical either way.
  ThreadPool *Pool = nullptr;
  ThreadPool::GroupId PoolGroup = 0;
  /// Externally-owned build cache (the daemon's sharded store). When set it
  /// overrides CacheDir: both the compile-stage method probes and LTBO
  /// group replay go through this store, and windowed links spill into it.
  cache::BuildCache *SharedCache = nullptr;
};

/// Statistics of one build.
struct BuildStats {
  std::size_t NumMethods = 0;
  std::size_t NumNativeMethods = 0;
  std::size_t HirInsnsSimplified = 0; ///< By the HGraph pass pipeline.
  std::size_t CtoStubCount = 0;
  std::size_t CtoCallSites = 0;
  OutlineStats Ltbo;
  double CompileSeconds = 0; ///< dex -> HGraph -> opt -> binary.
  double LtboSeconds = 0;    ///< Whole-program outlining (LTBO.2).
  double LinkSeconds = 0;
  /// Layout-stage outputs (all zero when the stage did not arm).
  bool LayoutApplied = false;   ///< A reordering plan reached the linker.
  double LayoutSeconds = 0;     ///< Affinity graph + bisection wall time.
  std::size_t LayoutNodes = 0;  ///< Placeable items in the affinity graph.
  std::size_t LayoutEdges = 0;  ///< Distinct affinity edges.
  std::size_t LayoutWarmNodes = 0; ///< Nodes the bisection ordered.
  uint64_t LayoutCutBefore = 0; ///< Page-crossing affinity, input order.
  uint64_t LayoutCutAfter = 0;  ///< Same metric under the emitted plan.
  double TotalSeconds = 0;
  uint64_t TextBytes = 0;
  /// Incremental-build counters (all zero when CacheDir is unset). Hits
  /// and misses count compiled-method blob probes; GroupsReused counts
  /// LTBO partition groups whose detection was replayed from the cache.
  std::size_t CacheHits = 0;
  std::size_t CacheMisses = 0;
  std::size_t GroupsReused = 0;
};

/// One finished build.
struct BuildResult {
  oat::OatFile Oat;
  BuildStats Stats;
};

/// The output of the compilation half of the pipeline (dex -> HGraph ->
/// opts -> CTO & LTBO.1 -> binary code), before LTBO.2 and linking. This
/// is the boundary at which side info crosses from the compiler to the
/// linker — and therefore the surface the fault-injection harness mutates.
struct CompiledApp {
  std::string AppName;
  std::vector<codegen::CompiledMethod> Methods;
  std::vector<codegen::CtoStub> Stubs;
  /// Content digest of each compiled method (parallel to Methods),
  /// populated when a cache directory is configured. Purely observational:
  /// the outliner recomputes digests from the methods it actually links,
  /// so mutations between compile and link can never replay stale cache
  /// entries.
  std::vector<cache::Digest> MethodDigests;
  /// The dex-level call graph (invoke sites + CHA virtual fan-out),
  /// built by compileApp when HasAnalysis is set. linkApp refines it with
  /// binary cross-references before the reachability pass.
  analysis::CallGraph Graph;
  bool HasAnalysis = false;
  /// Compile-stage statistics; LTBO/link fields are still zero.
  BuildStats Stats;
};

/// Runs the compilation half of the pipeline over \p App.
Expected<CompiledApp> compileApp(const dex::App &App,
                                 const CalibroOptions &Opts);

/// Runs LTBO.2 and the link step over an already-compiled app, consuming
/// it. buildApp == compileApp + linkApp.
Expected<BuildResult> linkApp(CompiledApp App, const CalibroOptions &Opts);

/// Compiles and links \p App under \p Opts.
Expected<BuildResult> buildApp(const dex::App &App,
                               const CalibroOptions &Opts);

} // namespace core
} // namespace calibro

#endif // CALIBRO_CORE_CALIBRO_H
