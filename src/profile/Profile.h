//===- profile/Profile.h - Runtime profiles and hot-set selection -*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simpleperf-style runtime profile (paper §3.4.2, Fig. 6): per-method
/// execution cost collected from a run of the previous build, and the
/// hot-set selection that feeds the hot-function-filtering optimization —
/// "sort the functions by their execution time and choose the set of top
/// functions that account for 80% of the total execution time".
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_PROFILE_PROFILE_H
#define CALIBRO_PROFILE_PROFILE_H

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace calibro {
namespace profile {

/// Per-method cycle counts from one profiled run. The map is ordered on
/// purpose: consumers iterate it (hot-set selection, the layout stage's
/// affinity weights), and an unordered container would make their output
/// depend on hash-table iteration order.
struct Profile {
  std::map<uint32_t, uint64_t> CyclesByMethod;

  uint64_t totalCycles() const {
    uint64_t Total = 0;
    for (const auto &[Idx, Cycles] : CyclesByMethod)
      Total += Cycles;
    return Total;
  }

  void add(uint32_t MethodIdx, uint64_t Cycles) {
    CyclesByMethod[MethodIdx] += Cycles;
  }

  /// Merges another profile (e.g. from repeated script runs).
  void merge(const Profile &Other) {
    for (const auto &[Idx, Cycles] : Other.CyclesByMethod)
      CyclesByMethod[Idx] += Cycles;
  }
};

/// Returns the smallest set of methods that covers at least
/// \p CoverageFraction of the total profiled cycles, hottest first
/// (deterministic: ties break on method index). Sorted so that callers may
/// iterate the result directly without re-sorting.
std::set<uint32_t> selectHotMethods(const Profile &P, double CoverageFraction);

} // namespace profile
} // namespace calibro

#endif // CALIBRO_PROFILE_PROFILE_H
