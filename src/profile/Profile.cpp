//===- profile/Profile.cpp - Runtime profiles and hot-set selection --------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include <algorithm>

using namespace calibro;
using namespace calibro::profile;

std::set<uint32_t> profile::selectHotMethods(const Profile &P,
                                             double CoverageFraction) {
  std::vector<std::pair<uint32_t, uint64_t>> Sorted(P.CyclesByMethod.begin(),
                                                    P.CyclesByMethod.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });

  uint64_t Total = P.totalCycles();
  uint64_t Budget =
      static_cast<uint64_t>(static_cast<double>(Total) * CoverageFraction);
  std::set<uint32_t> Hot;
  uint64_t Acc = 0;
  for (const auto &[Idx, Cycles] : Sorted) {
    if (Acc >= Budget)
      break;
    Hot.insert(Idx);
    Acc += Cycles;
  }
  return Hot;
}
