//===- verify/Differential.cpp - Differential build/run harness ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "verify/Differential.h"

#include "oat/Serialize.h"
#include "sim/Simulator.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "verify/OatVerifier.h"

#include <algorithm>
#include <string>

using namespace calibro;
using namespace calibro::verify;

Expected<std::vector<Observation>>
verify::verifyAndObserve(const oat::OatFile &Oat, const std::string &Stage,
                         const std::vector<workload::Invocation> &Script) {
  if (auto E = verifyOatFile(Oat))
    return makeError(Stage + ": " + E.message());
  sim::Simulator Sim(Oat, {});
  std::vector<Observation> Out;
  Out.reserve(Script.size());
  for (const auto &Inv : Script) {
    auto R = Sim.call(Inv.MethodIdx, Inv.Args);
    if (!R)
      return makeError(ErrCat::Runtime,
                       Stage + ": simulator fault: " + R.message());
    Out.push_back({R->What, R->ReturnValue, R->TraceHash});
  }
  return Out;
}

namespace {

Error compareRuns(const std::vector<Observation> &Base,
                  const std::vector<Observation> &Other,
                  const std::string &Stage) {
  if (Base.size() != Other.size())
    return makeError(Stage + ": invocation count diverged");
  for (std::size_t I = 0; I < Base.size(); ++I)
    if (!(Base[I] == Other[I]))
      return makeError(Stage + ": behaviour diverged from baseline at " +
                       "invocation " + std::to_string(I));
  return Error::success();
}

} // namespace

Expected<DifferentialReport>
verify::runDifferential(const workload::AppSpec &Spec,
                        const DifferentialOptions &Opts) {
  dex::App App = workload::makeApp(Spec);
  auto Script = workload::makeScript(Spec, Opts.ScriptLength, Opts.ScriptSeed);

  DifferentialReport Report;
  Report.InvocationsPerStage = Script.size();

  // The ladder's first four stages are independent builds of the same app,
  // so they build + statically verify + execute concurrently. Stage 0 is
  // always baseline; comparisons against it happen after the barrier, in
  // fixed stage order — so the report, the StagesCompared count and the
  // surfaced error are identical for any LadderThreads value.
  core::CalibroOptions Cto;
  Cto.EnableCto = true;
  core::CalibroOptions Ltbo = Cto;
  Ltbo.EnableLtbo = true;
  Ltbo.LtboDetector = Opts.Detector;
  core::CalibroOptions Pl = Ltbo;
  Pl.LtboPartitions = Opts.Partitions;
  Pl.LtboThreads = Opts.Threads;

  struct Stage {
    std::string Name;
    core::CalibroOptions Build;
    // Outputs, each written only by this stage's task.
    std::string Err;
    uint64_t Bytes = 0;
    oat::OatFile Oat;
    std::vector<Observation> Obs;
  };
  std::vector<Stage> Stages;
  auto addStage = [&](const char *Name, const core::CalibroOptions &Build) {
    Stage S;
    S.Name = Name;
    S.Build = Build;
    Stages.push_back(std::move(S));
  };
  addStage("baseline", core::CalibroOptions{});
  addStage("cto", Cto);
  addStage("cto+ltbo", Ltbo);
  if (Opts.WithPlOpti)
    addStage("cto+ltbo+plopti", Pl);
  std::size_t PlIdx = Stages.size() - 1;
  std::size_t WinIdx = 0; // 0 = no windowed stage (0 is always baseline).
  if (Opts.WithPlOpti && Opts.MemoryBudgetBytes > 0) {
    core::CalibroOptions Win = Pl;
    Win.MemoryBudgetBytes = Opts.MemoryBudgetBytes;
    addStage("cto+ltbo+plopti+windowed", Win);
    WinIdx = Stages.size() - 1;
  }

  auto RunStage = [&](std::size_t I) {
    Stage &S = Stages[I];
    auto Build = core::buildApp(App, S.Build);
    if (!Build) {
      S.Err = S.Name + " build: " + Build.message();
      return;
    }
    auto Run = verifyAndObserve(Build->Oat, S.Name, Script);
    if (!Run) {
      S.Err = Run.message();
      return;
    }
    S.Bytes = Build->Oat.textBytes();
    S.Oat = std::move(Build->Oat);
    S.Obs = std::move(*Run);
  };
  if (Opts.LadderThreads > 1) {
    ThreadPool Pool(std::min<std::size_t>(Opts.LadderThreads, Stages.size()));
    Pool.parallelFor(Stages.size(), RunStage);
  } else {
    for (std::size_t I = 0; I < Stages.size(); ++I)
      RunStage(I);
  }

  for (const Stage &S : Stages)
    if (!S.Err.empty())
      return makeError(S.Err);
  for (std::size_t I = 1; I < Stages.size(); ++I) {
    if (auto E = compareRuns(Stages[0].Obs, Stages[I].Obs, Stages[I].Name))
      return E;
    ++Report.StagesCompared;
  }
  Report.BaselineBytes = Stages[0].Bytes;
  Report.CtoBytes = Stages[1].Bytes;
  Report.LtboBytes = Stages[2].Bytes;
  if (Opts.WithPlOpti)
    Report.PlOptiBytes = Stages[PlIdx].Bytes;
  if (WinIdx) {
    // Windowed linking promises more than behavioural equivalence: the
    // serialized image must be BYTE-identical to the unbudgeted build at
    // the same configuration.
    if (oat::serializeOat(Stages[WinIdx].Oat) !=
        oat::serializeOat(Stages[PlIdx].Oat))
      return makeError("windowed: image diverged from monolithic plopti");
    Report.WindowedBytes = Stages[WinIdx].Bytes;
  }

  // + HfOpti: profiles the previous stage's image, so it cannot join the
  // concurrent batch above — it runs after, sequentially.
  if (Opts.WithHfOpti) {
    const oat::OatFile &ProfileImage = Stages.back().Oat;
    sim::SimOptions ProfOpts;
    ProfOpts.CollectProfile = true;
    sim::Simulator ProfSim(ProfileImage, ProfOpts);
    for (const auto &Inv : Script) {
      auto R = ProfSim.call(Inv.MethodIdx, Inv.Args);
      if (!R)
        return makeError("hfopti profiling run: " + R.message());
    }
    profile::Profile Prof = ProfSim.profileData();
    core::CalibroOptions Hf = Opts.WithPlOpti ? Pl : Ltbo;
    Hf.Profile = &Prof;
    auto Build = core::buildApp(App, Hf);
    if (!Build)
      return makeError("cto+ltbo+hfopti build: " + Build.message());
    auto Run = verifyAndObserve(Build->Oat, "cto+ltbo+hfopti", Script);
    if (!Run)
      return Run.takeError();
    if (auto E = compareRuns(Stages[0].Obs, *Run, "cto+ltbo+hfopti"))
      return E;
    Report.HfOptiBytes = Build->Oat.textBytes();
    ++Report.StagesCompared;
  }

  if (Opts.RequireMonotoneSize) {
    // Table 4's shape: CTO shrinks baseline, LTBO shrinks CTO, and the two
    // production optimizations give back some reduction without ever
    // exceeding the baseline.
    if (Report.CtoBytes >= Report.BaselineBytes)
      return makeError("size: cto did not shrink baseline");
    if (Report.LtboBytes >= Report.CtoBytes)
      return makeError("size: ltbo did not shrink cto");
    if (Opts.WithPlOpti && (Report.PlOptiBytes < Report.LtboBytes ||
                            Report.PlOptiBytes >= Report.BaselineBytes))
      return makeError("size: plopti outside [ltbo, baseline)");
    if (Opts.WithHfOpti && Report.HfOptiBytes >= Report.BaselineBytes)
      return makeError("size: hfopti did not shrink baseline");
  }
  return Report;
}

workload::AppSpec verify::randomAppSpec(uint64_t Seed) {
  Rng R(Seed);
  workload::AppSpec S;
  S.Name = "fuzz" + std::to_string(Seed);
  S.Seed = Seed ^ 0x9e3779b97f4a7c15ULL;
  S.NumDexFiles = static_cast<uint32_t>(R.nextInRange(1, 4));
  S.NumEntries = static_cast<uint32_t>(R.nextInRange(2, 8));
  S.NumWorkers = static_cast<uint32_t>(R.nextInRange(8, 48));
  S.NumUtilities = static_cast<uint32_t>(R.nextInRange(4, 24));
  S.SwitchFraction = R.nextDouble() * 0.12;
  S.NativeFraction = R.nextDouble() * 0.10;
  S.ThrowFraction = R.nextDouble() * 0.25;
  S.NumIdioms = static_cast<uint32_t>(R.nextInRange(8, 96));
  S.IdiomZipfS = 0.5 + R.nextDouble();
  S.CalleeZipfS = 0.8 + R.nextDouble() * 0.6;
  return S;
}

Expected<DifferentialReport> verify::runRandomDifferential(uint64_t Seed) {
  workload::AppSpec Spec = randomAppSpec(Seed);
  Rng R(Seed * 0x2545f4914f6cdd1dULL + 1);

  dex::App App = workload::makeApp(Spec);
  auto Script = workload::makeScript(Spec, 6, Seed + 13);

  DifferentialReport Report;
  Report.InvocationsPerStage = Script.size();

  core::CalibroOptions Base;
  auto BaseBuild = core::buildApp(App, Base);
  if (!BaseBuild)
    return makeError("fuzz baseline build: " + BaseBuild.message());
  auto BaseRun = verifyAndObserve(BaseBuild->Oat, "fuzz baseline", Script);
  if (!BaseRun)
    return BaseRun.takeError();
  Report.BaselineBytes = BaseBuild->Oat.textBytes();

  core::CalibroOptions Full;
  Full.EnableCto = true;
  Full.EnableLtbo = true;
  Full.LtboDetector = R.nextBool(0.5) ? core::DetectorKind::SuffixTree
                                      : core::DetectorKind::SuffixArray;
  Full.LtboPartitions = static_cast<uint32_t>(R.nextInRange(1, 6));
  Full.LtboThreads = static_cast<uint32_t>(R.nextInRange(1, 3));
  // Half the corpus runs memory-budgeted (windowed) linking; a quarter of
  // those also let the budget choose the partition count. Output is
  // required to be byte-identical either way, so the fuzz oracle
  // (behavioural equivalence against baseline) is unchanged.
  if (R.nextBool(0.5)) {
    Full.MemoryBudgetBytes = R.nextInRange(1ull << 16, 1ull << 22);
    if (R.nextBool(0.25))
      Full.LtboPartitions = 0;
  }
  auto FullBuild = core::buildApp(App, Full);
  if (!FullBuild)
    return makeError("fuzz cto+ltbo build: " + FullBuild.message());
  auto FullRun = verifyAndObserve(FullBuild->Oat, "fuzz cto+ltbo", Script);
  if (!FullRun)
    return FullRun.takeError();
  if (auto E = compareRuns(*BaseRun, *FullRun, "fuzz cto+ltbo"))
    return E;
  Report.LtboBytes = FullBuild->Oat.textBytes();
  Report.StagesCompared = 1;
  return Report;
}

Expected<std::vector<DifferentialReport>>
verify::runRandomDifferentialBatch(uint64_t FirstSeed, std::size_t Count,
                                   uint32_t Threads) {
  // Each seed is a fully independent build-and-run, so the batch fans out
  // across the pool. Every iteration writes only its own slots; the error
  // scan below runs in seed order, so the lowest failing seed's error is
  // surfaced for any thread count or scheduling.
  std::vector<DifferentialReport> Reports(Count);
  std::vector<std::string> Errors(Count);
  auto RunOne = [&](std::size_t I) {
    auto R = runRandomDifferential(FirstSeed + I);
    if (!R)
      Errors[I] = "seed " + std::to_string(FirstSeed + I) + ": " + R.message();
    else
      Reports[I] = *R;
  };
  if (Threads > 1 && Count > 1) {
    ThreadPool Pool(std::min<std::size_t>(Threads, Count));
    Pool.parallelFor(Count, RunOne);
  } else {
    for (std::size_t I = 0; I < Count; ++I)
      RunOne(I);
  }
  for (const std::string &E : Errors)
    if (!E.empty())
      return makeError(E);
  return Reports;
}
