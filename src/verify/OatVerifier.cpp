//===- verify/OatVerifier.cpp - Static OAT image verifier ------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "verify/OatVerifier.h"

#include "aarch64/Decoder.h"
#include "aarch64/PcRel.h"

#include <string>

using namespace calibro;
using namespace calibro::verify;

namespace {

/// True when \p I reads or writes x30 — explicitly through a register field
/// or implicitly as a call. Mirrors the outliner's separator predicate: an
/// outlined body entered by `bl` must leave the produced return address
/// untouched until its final `br x30`.
bool touchesLr(const a64::Insn &I) {
  if (I.Op == a64::Opcode::Bl || I.Op == a64::Opcode::Blr)
    return true;
  return I.Rd == a64::LR || I.Rn == a64::LR || I.Rm == a64::LR ||
         I.Ra == a64::LR;
}

bool isDirectBranch(a64::Opcode Op) {
  switch (Op) {
  case a64::Opcode::B:
  case a64::Opcode::Bcond:
  case a64::Opcode::Cbz:
  case a64::Opcode::Cbnz:
  case a64::Opcode::Tbz:
  case a64::Opcode::Tbnz:
    return true;
  default:
    return false;
  }
}

Error failAt(const std::string &Where, uint32_t Off, const char *Msg) {
  return makeError("OatVerifier: " + Where + " at .text+" +
                   std::to_string(Off) + ": " + Msg);
}

} // namespace

Error verify::verifyOatFile(const oat::OatFile &Oat) {
  OatVerifier V(Oat);
  return V.run();
}

Error OatVerifier::run() {
  // Structural metadata invariants first (§3.5): range bounds, recorded
  // PC-relative targets, terminator offsets, StackMap placement.
  if (auto E = oat::validateOat(O))
    return E;
  if (auto E = buildCoverage())
    return E;
  if (auto E = checkTextAndBranches())
    return E;
  return checkOutlinedBodies();
}

Error OatVerifier::buildCoverage() {
  std::size_t NumWords = O.Text.size();
  IsData.assign(NumWords, false);
  RangeId.assign(NumWords, -1);
  IsEntry.assign(NumWords, false);
  RangeLo.clear();
  RangeHi.clear();

  auto cover = [&](uint32_t Off, uint32_t Size,
                   const std::string &Where) -> Error {
    // validateOat already proved bounds, alignment and disjointness.
    int32_t Id = static_cast<int32_t>(RangeLo.size());
    RangeLo.push_back(Off);
    RangeHi.push_back(Off + Size);
    if (Size != 0)
      IsEntry[Off / 4] = true;
    for (uint32_t W = Off / 4; W < (Off + Size) / 4; ++W) {
      if (RangeId[W] != -1)
        return failAt(Where, W * 4, "overlapping code ranges");
      RangeId[W] = Id;
    }
    return Error::success();
  };

  ThunkBranch.clear();
  for (const auto &M : O.Methods) {
    if (M.MergedInto != oat::NoMergeParent) {
      // validateOat already proved the canonical exists and the entry is
      // shape-correct.
      const oat::OatMethodEntry *Canon = O.findMethod(M.MergedInto);
      if (Canon && Canon->CodeOffset == M.CodeOffset)
        continue; // Alias: shares the canonical's range, covered once.
      if (Canon)
        ThunkBranch.emplace(M.CodeOffset + M.CodeSize - 4,
                            Canon->CodeOffset + M.MergedEntryOff);
    }
    if (auto E = cover(M.CodeOffset, M.CodeSize, "method " + M.Name))
      return E;
    for (const auto &D : M.Side.EmbeddedData)
      for (uint32_t W = (M.CodeOffset + D.Offset) / 4;
           W < (M.CodeOffset + D.Offset + D.Size) / 4; ++W)
        IsData[W] = true;
  }
  for (const auto &S : O.CtoStubs)
    if (auto E = cover(S.CodeOffset, S.CodeSize, "cto stub"))
      return E;
  std::vector<bool> SeenId;
  for (const auto &F : O.Outlined) {
    if (auto E = cover(F.CodeOffset, F.CodeSize,
                       "outlined fn " + std::to_string(F.Id)))
      return E;
    if (F.Id >= SeenId.size())
      SeenId.resize(F.Id + 1, false);
    if (SeenId[F.Id])
      return makeError("OatVerifier: duplicate outlined-function id " +
                       std::to_string(F.Id));
    SeenId[F.Id] = true;
  }

  // Every uncovered word must be inter-range alignment padding (NOP).
  for (std::size_t W = 0; W < NumWords; ++W) {
    if (RangeId[W] != -1)
      continue;
    auto I = a64::decode(O.Text[W]);
    if (!I || I->Op != a64::Opcode::Nop)
      return failAt("padding", static_cast<uint32_t>(W * 4),
                    "uncovered word is not a NOP");
    ++Stats.PaddingWords;
  }
  return Error::success();
}

Error OatVerifier::checkTextAndBranches() {
  uint64_t TextSize = O.textBytes();
  for (std::size_t W = 0; W < O.Text.size(); ++W) {
    if (IsData[W]) {
      ++Stats.DataWords;
      continue;
    }
    uint32_t Off = static_cast<uint32_t>(W * 4);
    auto I = a64::decode(O.Text[W]);
    if (!I)
      return failAt("decode", Off, "undecodable non-data word");
    ++Stats.WordsDecoded;

    if (!a64::isPcRelative(I->Op))
      continue;
    uint64_t Pc = O.BaseAddress + Off;
    auto Target = a64::pcRelTarget(*I, Pc);
    if (!Target)
      return failAt("pc-rel", Off, "pc-relative target not computable");
    if (I->Op == a64::Opcode::Adrp)
      continue; // Materializes a page address; no in-text target to check.
    int64_t TOff64 =
        static_cast<int64_t>(*Target) - static_cast<int64_t>(O.BaseAddress);
    if (TOff64 < 0 || TOff64 >= static_cast<int64_t>(TextSize))
      return failAt("pc-rel", Off, "target outside .text");
    uint32_t TOff = static_cast<uint32_t>(TOff64);

    if (isDirectBranch(I->Op)) {
      // Method-local control flow: same containing range, never into an
      // embedded-data island, always on an instruction boundary.
      if (TOff % 4 != 0)
        return failAt("branch", Off, "target not on an insn boundary");
      if (IsData[TOff / 4])
        return failAt("branch", Off, "target inside embedded data");
      if (RangeId[TOff / 4] != RangeId[W]) {
        // One sanctioned escape: a merge thunk's trailing `b` into its
        // canonical body at exactly the recorded entry offset.
        auto It = ThunkBranch.find(Off);
        if (It == ThunkBranch.end() || I->Op != a64::Opcode::B ||
            TOff != It->second)
          return failAt("branch", Off, "direct branch escapes its range");
      }
      ++Stats.BranchesChecked;
    } else if (I->Op == a64::Opcode::Bl) {
      if (TOff % 4 != 0)
        return failAt("call", Off, "target not on an insn boundary");
      if (IsData[TOff / 4])
        return failAt("call", Off, "target inside embedded data");
      // A linked bl either stays inside its own range or enters another
      // method/stub/outlined function at its first instruction.
      if (RangeId[TOff / 4] != RangeId[W] && !IsEntry[TOff / 4])
        return failAt("call", Off, "bl lands mid-body of another range");
      ++Stats.CallsChecked;
    } else if (I->Op == a64::Opcode::LdrLit) {
      // Literal loads read a pool slot of the same method.
      if (RangeId[TOff / 4] != RangeId[W])
        return failAt("ldr-literal", Off, "pool slot outside the method");
      if (!IsData[TOff / 4])
        return failAt("ldr-literal", Off, "pool slot is not embedded data");
      if (I->Is64 && TOff % 8 != 0)
        return failAt("ldr-literal", Off, "misaligned 64-bit pool slot");
    }
    // Adr: in-bounds is all that can be asserted generically.
  }
  return Error::success();
}

Error OatVerifier::checkOutlinedBodies() {
  for (const auto &F : O.Outlined) {
    std::string Where = "outlined fn " + std::to_string(F.Id);
    if (F.CodeSize < 8)
      return failAt(Where, F.CodeOffset, "too small for body + br x30");
    uint32_t LastW = (F.CodeOffset + F.CodeSize) / 4 - 1;
    auto Last = a64::decode(O.Text[LastW]);
    if (!Last || Last->Op != a64::Opcode::Br || Last->Rn != a64::LR)
      return failAt(Where, LastW * 4, "does not end in br x30");
    for (uint32_t W = F.CodeOffset / 4; W < LastW; ++W) {
      auto I = a64::decode(O.Text[W]);
      if (!I)
        return failAt(Where, W * 4, "undecodable word in outlined body");
      if (a64::isTerminator(I->Op))
        return failAt(Where, W * 4, "terminator inside outlined body");
      if (a64::isPcRelative(I->Op))
        return failAt(Where, W * 4, "pc-relative insn in outlined body");
      if (touchesLr(*I))
        return failAt(Where, W * 4, "outlined body touches x30");
    }
    ++Stats.OutlinedChecked;
  }
  return Error::success();
}
