//===- verify/OatVerifier.h - Static OAT image verifier ---------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent static checker over a linked oat::OatFile. Outlining is a
/// binary rewrite, so a latent bug in occurrence replacement, PC-relative
/// re-patching, literal-pool re-alignment or metadata remapping (paper
/// §3.3.4/§3.5) produces an image that still links and often still runs —
/// until the one input that executes the damaged path. The verifier decodes
/// the whole .text image and re-derives the invariants from the bits alone,
/// cross-checking them against the recorded metadata:
///
///  * every word outside an embedded-data range decodes as an instruction;
///  * every direct branch (b, b.cond, cbz/cbnz, tbz/tbnz) stays inside its
///    containing method and never lands in embedded data;
///  * every `bl` lands either inside its own range or exactly at the entry
///    of a method, CTO stub, or outlined function — never mid-body, never
///    in data, never in padding;
///  * every PC-relative instruction's target is inside .text, and 64-bit
///    literal loads hit 8-byte-aligned pool slots;
///  * every outlined function ends in `br x30` and contains no call,
///    terminator, PC-relative or LR-touching instruction before it;
///  * outlined-function ids are unique;
///  * methods, stubs and outlined functions cover .text without overlap,
///    and every uncovered word is alignment padding (NOP);
///  * everything oat::validateOat already asserts (range bounds/alignment,
///    recorded PcRel targets, terminator offsets, StackMap placement).
///
/// The checks are pure reads — the verifier never mutates the image — so it
/// can run after every build (CalibroOptions::VerifyOutput), from the CLI
/// tools (--verify), and inside tests.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_VERIFY_OATVERIFIER_H
#define CALIBRO_VERIFY_OATVERIFIER_H

#include "oat/OatFile.h"
#include "support/Error.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace calibro {
namespace verify {

/// What one verifier run looked at, for tests and tool output.
struct VerifyStats {
  std::size_t WordsDecoded = 0;    ///< Instruction words decoded.
  std::size_t DataWords = 0;       ///< Embedded-data words skipped.
  std::size_t PaddingWords = 0;    ///< Inter-range alignment NOPs.
  std::size_t BranchesChecked = 0; ///< Direct branches with verified targets.
  std::size_t CallsChecked = 0;    ///< bl sites with verified targets.
  std::size_t OutlinedChecked = 0; ///< Outlined function bodies verified.
};

/// Static checker for one linked image. Construct, run(), inspect stats().
class OatVerifier {
public:
  explicit OatVerifier(const oat::OatFile &Oat) : O(Oat) {}

  /// Runs every check; the first violation aborts with a located Error.
  Error run();

  /// Populated by run().
  const VerifyStats &stats() const { return Stats; }

private:
  Error buildCoverage();
  Error checkTextAndBranches();
  Error checkOutlinedBodies();

  const oat::OatFile &O;
  VerifyStats Stats;

  // Per text word, filled by buildCoverage().
  std::vector<bool> IsData;     ///< Inside some method's embedded data.
  std::vector<int32_t> RangeId; ///< Covering range handle; -1 = padding.
  std::vector<uint32_t> RangeLo; ///< Per range: first byte offset.
  std::vector<uint32_t> RangeHi; ///< Per range: one past the last byte.
  std::vector<bool> IsEntry;     ///< Per word: a range starts here.
  /// Merge-thunk tail branches: byte offset of the trailing `b` mapped to
  /// the one cross-range target it is allowed to take (canonical body +
  /// recorded entry offset).
  std::unordered_map<uint32_t, uint32_t> ThunkBranch;
};

/// Convenience wrapper: construct, run, discard stats.
Error verifyOatFile(const oat::OatFile &Oat);

} // namespace verify
} // namespace calibro

#endif // CALIBRO_VERIFY_OATVERIFIER_H
