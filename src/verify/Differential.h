//===- verify/Differential.h - Differential build/run harness ---*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the verification layer: build one app under the
/// paper's configuration ladder (Baseline, CTO, CTO+LTBO, +PlOpti,
/// +HfOpti), statically verify every linked image with OatVerifier, execute
/// the same driver script on each image in the simulator, and require
/// identical observable behaviour — outcome, return value and the
/// architectural trace hash (runtime-call events + heap stores) of every
/// invocation. A build that outlines, patches or remaps anything
/// incorrectly either fails the static verifier or diverges behaviourally
/// here.
///
/// Beyond the six workload presets, randomAppSpec() derives arbitrary app
/// shapes from a seed (method counts, idiom pools, switch/native/throw
/// densities, Zipf skews) so the harness can fuzz the whole pipeline over
/// hundreds of independently shaped apps (runRandomDifferential).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_VERIFY_DIFFERENTIAL_H
#define CALIBRO_VERIFY_DIFFERENTIAL_H

#include "core/Calibro.h"
#include "sim/Simulator.h"
#include "support/Error.h"
#include "workload/Workload.h"

namespace calibro {
namespace verify {

/// The observable result of one invocation. Cycle counts are deliberately
/// excluded: outlining legitimately changes them (Table 7), while outcome,
/// return value and the architectural trace hash may not change at all.
struct Observation {
  sim::Outcome What = sim::Outcome::Ok;
  int64_t ReturnValue = 0;
  uint64_t TraceHash = 0;

  bool operator==(const Observation &) const = default;
};

/// Verifies \p Oat statically (verify::verifyOatFile), then executes
/// \p Script in the simulator and collects one Observation per invocation.
/// \p Stage prefixes error messages. Shared by the differential ladder and
/// the fault-injection harness.
Expected<std::vector<Observation>>
verifyAndObserve(const oat::OatFile &Oat, const std::string &Stage,
                 const std::vector<workload::Invocation> &Script);

/// Configuration of one differential run.
struct DifferentialOptions {
  std::size_t ScriptLength = 10; ///< Invocations per image.
  uint64_t ScriptSeed = 77;
  /// Compare the partitioned-parallel (PlOpti) stage.
  bool WithPlOpti = true;
  /// Compare the profile-guided (HfOpti) stage; profiles the previous
  /// stage's image first.
  bool WithHfOpti = true;
  /// Require the paper's strict Table 4 size ordering (baseline > CTO >
  /// CTO+LTBO, with PlOpti/HfOpti between LTBO and baseline). Meaningful
  /// for app-sized workloads; tiny fuzz apps can outline so little that
  /// 16-byte method alignment absorbs the saving, so the random harness
  /// disables this and only requires behavioural equivalence.
  bool RequireMonotoneSize = true;
  uint32_t Partitions = 8;      ///< PlOpti partition count.
  uint32_t Threads = 2;         ///< PlOpti worker threads.
  /// Worker threads for the ladder itself: the Baseline/CTO/LTBO/PlOpti
  /// stages build, statically verify and execute concurrently (each stage
  /// is an independent build of the same app). Comparison against baseline
  /// happens afterwards in fixed stage order, so results and error
  /// reporting are identical for any value. 1 = serial ladder.
  uint32_t LadderThreads = 2;
  core::DetectorKind Detector = core::DetectorKind::SuffixTree;
  /// When non-zero and WithPlOpti is set, add a memory-budgeted (windowed)
  /// PlOpti stage to the ladder: the same build with
  /// OutlinerOptions::MemoryBudgetBytes set. Beyond behavioural
  /// equivalence, the harness requires this stage's serialized image to be
  /// BYTE-identical to the unbudgeted PlOpti stage — windowing may change
  /// where intermediates live, never what is produced.
  uint64_t MemoryBudgetBytes = 0;
};

/// Sizes and coverage of one differential run.
struct DifferentialReport {
  uint64_t BaselineBytes = 0;
  uint64_t CtoBytes = 0;
  uint64_t LtboBytes = 0;
  uint64_t PlOptiBytes = 0; ///< 0 when the stage was skipped.
  uint64_t HfOptiBytes = 0; ///< 0 when the stage was skipped.
  /// Size of the memory-budgeted stage; always equal to PlOptiBytes when
  /// present (the harness enforces full image byte-identity). 0 = skipped.
  uint64_t WindowedBytes = 0;
  std::size_t StagesCompared = 0;   ///< Outlined stages proven equivalent.
  std::size_t InvocationsPerStage = 0;
};

/// Builds \p Spec under the full configuration ladder and proves every
/// stage statically well-formed and behaviourally identical to baseline.
Expected<DifferentialReport> runDifferential(const workload::AppSpec &Spec,
                                             const DifferentialOptions &Opts);

/// Derives a randomized app shape from \p Seed (deterministically).
workload::AppSpec randomAppSpec(uint64_t Seed);

/// One fuzz iteration: a random app, Baseline vs CTO+LTBO with a
/// seed-chosen detector backend and partition count, equivalence-only.
Expected<DifferentialReport> runRandomDifferential(uint64_t Seed);

/// Runs runRandomDifferential for every seed in [FirstSeed, FirstSeed +
/// Count) across \p Threads worker threads (1 = serial). Reports come back
/// in seed order; on failure the LOWEST failing seed's error is returned,
/// prefixed with "seed N: ", for any thread count or scheduling.
Expected<std::vector<DifferentialReport>>
runRandomDifferentialBatch(uint64_t FirstSeed, std::size_t Count,
                           uint32_t Threads);

} // namespace verify
} // namespace calibro

#endif // CALIBRO_VERIFY_DIFFERENTIAL_H
