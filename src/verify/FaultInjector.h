//===- verify/FaultInjector.h - Seeded side-info fault injection -*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection for the compile→link boundary. The injector compiles an
/// app once, records the clean image's verifier verdict and simulator
/// observations, and then — per seed — applies one enumerable mutation to
/// the compiled artifacts (side info bit flips, dropped records, swapped
/// range endpoints, stale branch targets, truncated serialized sections,
/// duplicated outlined ids) and re-runs the back half of the pipeline.
///
/// Every mutated run must land in the trichotomy:
///   * Rejected  — a typed Error at parse, LTBO-strict, link or verify time;
///   * Degraded  — per-method graceful degradation: some methods excluded
///                 from outlining, the image verifier-clean, and simulator
///                 observations identical to the unmutated baseline;
///   * Harmless  — the mutation had no effect on the pipeline's decisions.
/// Anything else — a crash, a simulator fault on an accepted image, or
/// output that silently diverges from baseline — makes run() itself return
/// an Error: that is the bug the harness exists to catch.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_VERIFY_FAULTINJECTOR_H
#define CALIBRO_VERIFY_FAULTINJECTOR_H

#include "core/Calibro.h"
#include "support/Error.h"
#include "support/Random.h"
#include "verify/Differential.h"
#include "workload/Workload.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace calibro {
namespace verify {

/// The enumerable mutation kinds the injector can apply.
enum class MutationKind : uint8_t {
  BitFlipSideInfo,   ///< Flip one bit of one side-info scalar or flag.
  DropSideInfoEntry, ///< Remove one terminator/pc-rel/data/slow-path record.
  SwapRangeEndpoints,///< Swap Begin/End (slow path) or Offset/Size (data).
  StaleBranchTarget, ///< Shift one recorded PC-rel target off its insn.
  TruncateSection,   ///< Cut the serialized image short at a seeded point.
  DuplicateOutlinedId, ///< Feed the linker two outlined funcs with one id.
  CorruptCacheBlob,  ///< Flip one bit of one on-disk build-cache blob.
  TruncateCacheBlob, ///< Cut one on-disk build-cache blob short.
  DropCallEdge,      ///< Remove one edge from the call graph before GC.
  ForgeEntrypoint,   ///< Declare one extra (bogus) reachability root.
  CorruptInvokeIdx,  ///< Retarget one call edge at a seeded method index.
  CorruptProfile,    ///< Damage the runtime profile fed to HfOpti + layout.
};

/// Number of MutationKind values.
inline constexpr std::size_t NumMutationKinds = 12;

/// Returns a stable kebab-case name for \p K.
const char *mutationKindName(MutationKind K);

/// How one mutated run ended (the allowed trichotomy).
enum class FaultOutcome : uint8_t {
  Rejected, ///< Typed error; no image shipped.
  Degraded, ///< MethodsRejected > 0, image clean, behaviour == baseline.
  Harmless, ///< No rejection and behaviour == baseline.
};

/// Returns a stable name for \p O.
const char *faultOutcomeName(FaultOutcome O);

/// What happened on one mutated run.
struct FaultReport {
  MutationKind Kind = MutationKind::BitFlipSideInfo;
  FaultOutcome Outcome = FaultOutcome::Harmless;
  /// OutlineStats::MethodsRejected of the mutated run. Zero when the run
  /// was rejected before LTBO completed; it can be non-zero on a
  /// "verify"-stage rejection, where LTBO degraded around the corrupt
  /// method but its lying metadata still made the image unshippable.
  std::size_t MethodsRejected = 0;
  /// Pipeline stage that rejected ("parse", "ltbo", "link", "verify");
  /// empty unless Outcome == Rejected.
  std::string RejectStage;
  /// The typed error's message; empty unless Outcome == Rejected.
  std::string RejectMessage;
};

/// Injector configuration.
struct FaultInjectorOptions {
  std::size_t ScriptLength = 6; ///< Invocations observed per image.
  uint64_t ScriptSeed = 13;
  /// Partition count for the mutated LTBO runs. Defaults to 8, matching
  /// DifferentialOptions::Partitions, so both harnesses exercise the same
  /// PlOpti configuration out of the box.
  uint32_t LtboPartitions = 8;
  uint32_t LtboThreads = 1; ///< Worker threads for the mutated LTBO runs.
  /// Detect-phase memory budget for every LTBO run the harness performs
  /// (see OutlinerOptions::MemoryBudgetBytes); 0 = unbudgeted. Sweeping
  /// the fault corpus through windowed mode proves the spill/merge path
  /// degrades (and rejects) exactly like the single-pass pipeline.
  uint64_t MemoryBudgetBytes = 0;
  bool Strict = false;      ///< Run LTBO in fail-fast (--strict) mode.
  /// Build-cache directory for the cache-mutation kinds. When set, create()
  /// runs one cache-enabled cold build (asserting byte-identity with the
  /// cache-free baseline) and snapshots every blob; each cache-mutation run
  /// restores the pristine store, corrupts one seeded blob, and warm-rebuilds.
  /// A damaged entry must degrade to a cache miss — the warm image must stay
  /// byte-identical to baseline, so these kinds always end Harmless; a build
  /// failure or divergence is a harness Error. Empty disables the kinds.
  std::string CacheDir;
};

/// Compile-once, mutate-many fault-injection harness.
class FaultInjector {
public:
  /// Compiles \p Spec (CTO enabled), builds and runs the clean baseline,
  /// and fails if the clean pipeline is not verifier-clean and fault-free.
  static Expected<FaultInjector> create(const workload::AppSpec &Spec,
                                        const FaultInjectorOptions &Opts);

  /// Applies the \p Seed-selected mutation of \p Kind and runs the back
  /// half of the pipeline. Returns the classified outcome, or an Error if
  /// the run escaped the trichotomy (silent divergence, simulator fault on
  /// an accepted image, unexpected acceptance of garbage).
  /// \p ThreadsOverride, when non-zero, replaces Opts.LtboThreads for this
  /// run (for scheduling-determinism tests).
  Expected<FaultReport> run(uint64_t Seed, MutationKind Kind,
                            uint32_t ThreadsOverride = 0);

  /// The clean baseline's observations (one per script invocation).
  const std::vector<Observation> &baseline() const { return BaselineObs; }

  /// Methods eligible for metadata mutations (non-native, no indirect
  /// jump — the outlining candidates).
  std::size_t numCandidateMethods() const { return CandidateRows.size(); }

private:
  FaultInjector() = default;

  /// Links (analysis + LTBO + link) \p Methods and classifies the result.
  /// The run inherits the pristine call graph unless \p GraphOverride
  /// substitutes a mutated copy; \p ProfileOverride feeds the run a
  /// (possibly damaged) profile, arming hot-function filtering and the
  /// layout stage — the profile is advisory input, so garbage in it may
  /// only change WHICH optimizations fire, never the observed behaviour.
  Expected<FaultReport> classifyLinkRun(std::vector<codegen::CompiledMethod> Methods,
                                        MutationKind Kind,
                                        uint32_t ThreadsOverride,
                                        const analysis::CallGraph *GraphOverride = nullptr,
                                        const profile::Profile *ProfileOverride = nullptr);

  /// Rebuilds from the mutated cache store and checks byte-identity.
  Expected<FaultReport> runCacheMutation(MutationKind Kind, Rng &R,
                                         uint32_t ThreadsOverride);

  FaultInjectorOptions Opts;
  dex::App App;                        ///< Source app, for warm rebuilds.
  core::CompiledApp Compiled;          ///< Pristine compile-stage output.
  std::vector<std::size_t> CandidateRows; ///< Mutable-method indices.
  std::vector<workload::Invocation> Script;
  std::vector<Observation> BaselineObs;
  std::vector<uint8_t> CleanImageBytes; ///< Serialized clean OAT image.
  std::vector<codegen::OutlinedFunc> CleanFuncs; ///< Clean LTBO output.
  std::vector<codegen::CompiledMethod> CleanRewritten; ///< Post-LTBO methods.
  /// Per-method cycles collected from the clean baseline script — the
  /// pristine input the CorruptProfile kind damages.
  profile::Profile CleanProfile;
  /// Pristine cache store: (blob path, bytes) in sorted-path order, captured
  /// after the cold cache-enabled build. Empty when CacheDir is unset.
  std::vector<std::pair<std::string, std::vector<uint8_t>>> PristineCache;
};

} // namespace verify
} // namespace calibro

#endif // CALIBRO_VERIFY_FAULTINJECTOR_H
