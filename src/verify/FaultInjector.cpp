//===- verify/FaultInjector.cpp - Seeded side-info fault injection ---------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "verify/FaultInjector.h"

#include "core/Outliner.h"
#include "oat/Linker.h"
#include "oat/Serialize.h"
#include "sim/Simulator.h"
#include "support/Random.h"
#include "verify/OatVerifier.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <utility>

using namespace calibro;
using namespace calibro::verify;
using namespace calibro::codegen;

const char *verify::mutationKindName(MutationKind K) {
  switch (K) {
  case MutationKind::BitFlipSideInfo:
    return "bit-flip-side-info";
  case MutationKind::DropSideInfoEntry:
    return "drop-side-info-entry";
  case MutationKind::SwapRangeEndpoints:
    return "swap-range-endpoints";
  case MutationKind::StaleBranchTarget:
    return "stale-branch-target";
  case MutationKind::TruncateSection:
    return "truncate-section";
  case MutationKind::DuplicateOutlinedId:
    return "duplicate-outlined-id";
  case MutationKind::CorruptCacheBlob:
    return "corrupt-cache-blob";
  case MutationKind::TruncateCacheBlob:
    return "truncate-cache-blob";
  case MutationKind::DropCallEdge:
    return "drop-call-edge";
  case MutationKind::ForgeEntrypoint:
    return "forge-entrypoint";
  case MutationKind::CorruptInvokeIdx:
    return "corrupt-invoke-idx";
  case MutationKind::CorruptProfile:
    return "corrupt-profile";
  }
  return "unknown";
}

const char *verify::faultOutcomeName(FaultOutcome O) {
  switch (O) {
  case FaultOutcome::Rejected:
    return "rejected";
  case FaultOutcome::Degraded:
    return "degraded";
  case FaultOutcome::Harmless:
    return "harmless";
  }
  return "unknown";
}

namespace {

/// Build options for the back half of the pipeline (LTBO + link).
core::CalibroOptions linkOptions(const FaultInjectorOptions &Opts,
                                 uint32_t ThreadsOverride) {
  core::CalibroOptions L;
  L.EnableCto = true;
  L.EnableLtbo = true;
  L.LtboPartitions = Opts.LtboPartitions;
  L.LtboThreads = ThreadsOverride ? ThreadsOverride : Opts.LtboThreads;
  L.MemoryBudgetBytes = Opts.MemoryBudgetBytes;
  L.StrictSideInfo = Opts.Strict;
  L.StrictCallGraph = Opts.Strict;
  return L;
}

const char *stageOfCategory(ErrCat C) {
  switch (C) {
  case ErrCat::BadFormat:
    return "parse";
  case ErrCat::SideInfo:
    return "ltbo";
  case ErrCat::Link:
    return "link";
  default:
    return "build";
  }
}

/// Flips one seeded bit of one side-info scalar (or flag) of \p M.
void flipOneBit(MethodSideInfo &S, Rng &R) {
  std::size_t NumSlots = S.TerminatorOffsets.size() +
                         2 * S.PcRelRecords.size() + 2 * S.EmbeddedData.size() +
                         2 * S.SlowPathRanges.size() + 1;
  std::size_t Slot = static_cast<std::size_t>(R.nextBelow(NumSlots));
  auto FlipU32 = [&R](uint32_t &V) { V ^= 1u << R.nextBelow(32); };

  if (Slot < S.TerminatorOffsets.size())
    return FlipU32(S.TerminatorOffsets[Slot]);
  Slot -= S.TerminatorOffsets.size();
  if (Slot < 2 * S.PcRelRecords.size()) {
    PcRelRecord &P = S.PcRelRecords[Slot / 2];
    return FlipU32(Slot % 2 ? P.TargetOffset : P.InsnOffset);
  }
  Slot -= 2 * S.PcRelRecords.size();
  if (Slot < 2 * S.EmbeddedData.size()) {
    EmbeddedDataRange &D = S.EmbeddedData[Slot / 2];
    return FlipU32(Slot % 2 ? D.Size : D.Offset);
  }
  Slot -= 2 * S.EmbeddedData.size();
  if (Slot < 2 * S.SlowPathRanges.size()) {
    ByteRange &B = S.SlowPathRanges[Slot / 2];
    return FlipU32(Slot % 2 ? B.End : B.Begin);
  }
  // Flags byte: flip HasIndirectJump or IsNative.
  if (R.nextBelow(2) == 0)
    S.HasIndirectJump = !S.HasIndirectJump;
  else
    S.IsNative = !S.IsNative;
}

/// Removes one seeded record from \p S. Returns false when there is none.
bool dropOneEntry(MethodSideInfo &S, Rng &R) {
  std::size_t Num = S.TerminatorOffsets.size() + S.PcRelRecords.size() +
                    S.EmbeddedData.size() + S.SlowPathRanges.size();
  if (Num == 0)
    return false;
  std::size_t Pick = static_cast<std::size_t>(R.nextBelow(Num));
  if (Pick < S.TerminatorOffsets.size()) {
    S.TerminatorOffsets.erase(S.TerminatorOffsets.begin() + Pick);
    return true;
  }
  Pick -= S.TerminatorOffsets.size();
  if (Pick < S.PcRelRecords.size()) {
    S.PcRelRecords.erase(S.PcRelRecords.begin() + Pick);
    return true;
  }
  Pick -= S.PcRelRecords.size();
  if (Pick < S.EmbeddedData.size()) {
    S.EmbeddedData.erase(S.EmbeddedData.begin() + Pick);
    return true;
  }
  Pick -= S.EmbeddedData.size();
  S.SlowPathRanges.erase(S.SlowPathRanges.begin() + Pick);
  return true;
}

/// Swaps the endpoints of one seeded range of \p S. Returns false when the
/// method has no range to mutate.
bool swapOneRange(MethodSideInfo &S, Rng &R) {
  std::size_t Num = S.EmbeddedData.size() + S.SlowPathRanges.size();
  if (Num == 0)
    return false;
  std::size_t Pick = static_cast<std::size_t>(R.nextBelow(Num));
  if (Pick < S.EmbeddedData.size()) {
    EmbeddedDataRange &D = S.EmbeddedData[Pick];
    std::swap(D.Offset, D.Size);
  } else {
    ByteRange &B = S.SlowPathRanges[Pick - S.EmbeddedData.size()];
    std::swap(B.Begin, B.End);
  }
  return true;
}

/// Overwrites \p Path with \p Bytes (plain truncating write; the cache's
/// own atomic-rename discipline does not matter for the injector, which is
/// single-threaded per run).
Error writeBlobFile(const std::string &Path,
                    const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return makeError("fault injector: cannot write " + Path);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  if (!Out)
    return makeError("fault injector: short write to " + Path);
  return Error::success();
}

/// Shifts one seeded PC-rel record's target. Returns false when the method
/// has no PC-rel record.
bool staleOneTarget(MethodSideInfo &S, Rng &R) {
  if (S.PcRelRecords.empty())
    return false;
  PcRelRecord &P =
      S.PcRelRecords[static_cast<std::size_t>(R.nextBelow(S.PcRelRecords.size()))];
  uint32_t Delta = static_cast<uint32_t>(R.nextInRange(1, 16)) * 4;
  P.TargetOffset =
      R.nextBelow(2) ? P.TargetOffset + Delta : P.TargetOffset - Delta;
  return true;
}

} // namespace

Expected<FaultInjector> FaultInjector::create(const workload::AppSpec &Spec,
                                              const FaultInjectorOptions &Opts) {
  FaultInjector Inj;
  Inj.Opts = Opts;

  dex::App App = workload::makeApp(Spec);
  Inj.Script = workload::makeScript(Spec, Opts.ScriptLength, Opts.ScriptSeed);

  auto Compiled = core::compileApp(App, linkOptions(Opts, 0));
  if (!Compiled)
    return Compiled.takeError();
  Inj.Compiled = std::move(*Compiled);

  for (std::size_t Row = 0; Row < Inj.Compiled.Methods.size(); ++Row) {
    const MethodSideInfo &S = Inj.Compiled.Methods[Row].Side;
    if (!S.IsNative && !S.HasIndirectJump)
      Inj.CandidateRows.push_back(Row);
  }
  if (Inj.CandidateRows.empty())
    return makeError("fault injector: workload has no candidate methods");

  // Clean reference run: the unmutated pipeline must be verifier-clean,
  // fault-free and degradation-free, or every comparison below is void.
  auto Clean = core::linkApp(Inj.Compiled, linkOptions(Opts, 0));
  if (!Clean)
    return makeError("fault injector: clean build failed: " + Clean.message());
  if (Clean->Stats.Ltbo.MethodsRejected != 0)
    return makeError("fault injector: clean build rejected methods");
  auto Obs = verifyAndObserve(Clean->Oat, "clean baseline", Inj.Script);
  if (!Obs)
    return Obs.takeError();
  Inj.BaselineObs = std::move(*Obs);
  Inj.CleanImageBytes = oat::serializeOat(Clean->Oat);

  // Clean runtime profile for the CorruptProfile kind: the same script the
  // baseline observations came from, re-run with cycle attribution on.
  {
    sim::SimOptions SO;
    SO.CollectProfile = true;
    sim::Simulator Sim(Clean->Oat, SO);
    for (const auto &Inv : Inj.Script)
      if (auto R = Sim.call(Inv.MethodIdx, Inv.Args); !R)
        return makeError("fault injector: profiling run faulted: " +
                         R.message());
    Inj.CleanProfile = Sim.profileData();
  }

  // Clean LTBO artifacts, kept pre-link so DuplicateOutlinedId can feed the
  // linker a tampered outlined-function list directly.
  Inj.CleanRewritten = Inj.Compiled.Methods;
  core::OutlinerOptions OOpts;
  OOpts.Partitions = Opts.LtboPartitions;
  OOpts.Threads = Opts.LtboThreads;
  OOpts.MemoryBudgetBytes = Opts.MemoryBudgetBytes;
  auto Ltbo = core::runLtbo(Inj.CleanRewritten, OOpts);
  if (!Ltbo)
    return Ltbo.takeError();
  Inj.CleanFuncs = std::move(Ltbo->Funcs);

  // Cache-mutation kinds: populate the store with one cold cache-enabled
  // build (which must already be byte-identical to the cache-free baseline)
  // and snapshot every blob so each run starts from a pristine store.
  if (!Opts.CacheDir.empty()) {
    core::CalibroOptions B = linkOptions(Opts, 0);
    B.CacheDir = Opts.CacheDir;
    auto Cold = core::buildApp(App, B);
    if (!Cold)
      return makeError("fault injector: cold cache build failed: " +
                       Cold.message());
    if (oat::serializeOat(Cold->Oat) != Inj.CleanImageBytes)
      return makeError("fault injector: cache-enabled cold build diverges "
                       "from the cache-free baseline");
    namespace fs = std::filesystem;
    std::vector<std::string> Paths;
    for (const char *Sub : {"m", "g"}) {
      std::error_code Ec;
      for (const auto &E :
           fs::directory_iterator(fs::path(Opts.CacheDir) / Sub, Ec))
        if (E.is_regular_file())
          Paths.push_back(E.path().string());
    }
    std::sort(Paths.begin(), Paths.end());
    for (const auto &P : Paths) {
      std::ifstream In(P, std::ios::binary);
      std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                                 std::istreambuf_iterator<char>());
      Inj.PristineCache.emplace_back(P, std::move(Bytes));
    }
    if (Inj.PristineCache.empty())
      return makeError("fault injector: cache store empty after cold build");
  }

  Inj.App = std::move(App);
  return Inj;
}

Expected<FaultReport> FaultInjector::runCacheMutation(MutationKind Kind,
                                                      Rng &R,
                                                      uint32_t ThreadsOverride) {
  if (PristineCache.empty())
    return makeError("fault injector: cache mutations need "
                     "FaultInjectorOptions::CacheDir");

  // Restore the pristine store, then damage exactly one seeded blob. The
  // warm rebuild will overwrite the damaged entry (rejected load -> miss ->
  // recompute -> store), so restoring up front keeps runs independent.
  for (const auto &[Path, Bytes] : PristineCache)
    if (auto E = writeBlobFile(Path, Bytes))
      return E;
  const auto &[Path, Bytes] =
      PristineCache[static_cast<std::size_t>(R.nextBelow(PristineCache.size()))];
  std::vector<uint8_t> Mut = Bytes;
  if (Kind == MutationKind::CorruptCacheBlob)
    Mut[static_cast<std::size_t>(R.nextBelow(Mut.size()))] ^=
        uint8_t(1) << R.nextBelow(8);
  else
    Mut.resize(static_cast<std::size_t>(R.nextBelow(Mut.size())));
  if (auto E = writeBlobFile(Path, Mut))
    return E;

  // A damaged entry must behave exactly like a miss: the warm build must
  // succeed and its image must be byte-identical to the clean baseline.
  core::CalibroOptions B = linkOptions(Opts, ThreadsOverride);
  B.CacheDir = Opts.CacheDir;
  auto Warm = core::buildApp(App, B);
  if (!Warm)
    return makeError(std::string("fault injector: damaged cache entry "
                                 "failed the build instead of degrading to "
                                 "a miss (") +
                     mutationKindName(Kind) + "): " + Warm.message());
  if (oat::serializeOat(Warm->Oat) != CleanImageBytes)
    return makeError(std::string("fault injector: warm build over a damaged "
                                 "cache diverges from baseline (") +
                     mutationKindName(Kind) + ")");

  FaultReport Rep;
  Rep.Kind = Kind;
  Rep.Outcome = FaultOutcome::Harmless;
  return Rep;
}

Expected<FaultReport>
FaultInjector::classifyLinkRun(std::vector<CompiledMethod> Methods,
                               MutationKind Kind, uint32_t ThreadsOverride,
                               const analysis::CallGraph *GraphOverride,
                               const profile::Profile *ProfileOverride) {
  core::CompiledApp A;
  A.AppName = Compiled.AppName;
  A.Methods = std::move(Methods);
  A.Stubs = Compiled.Stubs;
  A.Graph = GraphOverride ? *GraphOverride : Compiled.Graph;
  A.HasAnalysis = Compiled.HasAnalysis;

  FaultReport Rep;
  Rep.Kind = Kind;

  core::CalibroOptions L = linkOptions(Opts, ThreadsOverride);
  L.Profile = ProfileOverride; // Arms HfOpti (+ layout when closed-world).
  auto Build = core::linkApp(std::move(A), L);
  if (!Build) {
    Rep.Outcome = FaultOutcome::Rejected;
    Rep.RejectStage = stageOfCategory(Build.category());
    Rep.RejectMessage = Build.message();
    return Rep;
  }
  Rep.MethodsRejected = Build->Stats.Ltbo.MethodsRejected;

  // An image that fails the static verifier would never ship: a clean,
  // typed rejection, even though the link step accepted the input.
  if (auto E = verifyOatFile(Build->Oat)) {
    Rep.Outcome = FaultOutcome::Rejected;
    Rep.RejectStage = "verify";
    Rep.RejectMessage = E.message();
    return Rep;
  }

  // The image shipped, so it must behave exactly like the clean baseline.
  // A simulator fault or any divergence here is a trichotomy violation —
  // the harness's own error, not a FaultReport.
  sim::Simulator Sim(Build->Oat, {});
  std::vector<Observation> Obs;
  Obs.reserve(Script.size());
  for (const auto &Inv : Script) {
    auto R = Sim.call(Inv.MethodIdx, Inv.Args);
    if (!R)
      return makeError(ErrCat::Runtime,
                       std::string("fault injector: simulator fault on an "
                                   "accepted image (") +
                           mutationKindName(Kind) + "): " + R.message());
    Obs.push_back({R->What, R->ReturnValue, R->TraceHash});
  }
  if (Obs != BaselineObs)
    return makeError(std::string("fault injector: accepted image silently "
                                 "diverges from baseline (") +
                     mutationKindName(Kind) + ")");

  Rep.Outcome = Rep.MethodsRejected ? FaultOutcome::Degraded
                                    : FaultOutcome::Harmless;
  return Rep;
}

Expected<FaultReport> FaultInjector::run(uint64_t Seed, MutationKind Kind,
                                         uint32_t ThreadsOverride) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL +
        static_cast<uint64_t>(Kind) * 0x2545f4914f6cdd1dULL + 1);

  switch (Kind) {
  case MutationKind::CorruptCacheBlob:
  case MutationKind::TruncateCacheBlob:
    return runCacheMutation(Kind, R, ThreadsOverride);

  case MutationKind::TruncateSection: {
    // The serialized container ends with the section header table, so any
    // proper prefix must fail to parse — acceptance would mean the parser
    // read past its input.
    std::size_t Cut = static_cast<std::size_t>(
        R.nextInRange(1, CleanImageBytes.size() - 1));
    auto Parsed = oat::deserializeOat(
        std::span<const uint8_t>(CleanImageBytes.data(), Cut));
    if (Parsed)
      return makeError("fault injector: truncated image (" +
                       std::to_string(Cut) + " of " +
                       std::to_string(CleanImageBytes.size()) +
                       " bytes) unexpectedly parsed");
    FaultReport Rep;
    Rep.Kind = Kind;
    Rep.Outcome = FaultOutcome::Rejected;
    Rep.RejectStage = "parse";
    Rep.RejectMessage = Parsed.message();
    return Rep;
  }

  case MutationKind::DuplicateOutlinedId: {
    FaultReport Rep;
    Rep.Kind = Kind;
    if (CleanFuncs.empty()) {
      Rep.Outcome = FaultOutcome::Harmless; // Nothing to duplicate.
      return Rep;
    }
    oat::LinkInput In;
    In.AppName = Compiled.AppName;
    In.BaseAddress = core::CalibroOptions{}.BaseAddress;
    In.Methods = CleanRewritten;
    In.Stubs = Compiled.Stubs;
    In.Outlined = CleanFuncs;
    In.Outlined.push_back(
        CleanFuncs[static_cast<std::size_t>(R.nextBelow(CleanFuncs.size()))]);
    auto Linked = oat::link(In);
    if (Linked)
      return makeError("fault injector: duplicate outlined-function id "
                       "accepted by the linker");
    Rep.Outcome = FaultOutcome::Rejected;
    Rep.RejectStage = "link";
    Rep.RejectMessage = Linked.message();
    return Rep;
  }

  case MutationKind::DropCallEdge:
  case MutationKind::ForgeEntrypoint:
  case MutationKind::CorruptInvokeIdx: {
    FaultReport Rep;
    Rep.Kind = Kind;
    // Open-world harness: the analyses never arm, so there is no graph
    // whose mutation could reach the pipeline.
    if (!Compiled.HasAnalysis || Compiled.Graph.Entrypoints.empty()) {
      Rep.Outcome = FaultOutcome::Harmless;
      return Rep;
    }
    analysis::CallGraph G = Compiled.Graph;
    bool Applied = false;
    if (Kind == MutationKind::ForgeEntrypoint) {
      uint32_t Forged = static_cast<uint32_t>(R.nextBelow(G.NumMethods));
      auto It = std::lower_bound(G.Entrypoints.begin(), G.Entrypoints.end(),
                                 Forged);
      if (It == G.Entrypoints.end() || *It != Forged) {
        G.Entrypoints.insert(It, Forged);
        Applied = true;
      }
    } else {
      // Probe callers from a seeded start until one has an edge to mutate.
      std::size_t Start = static_cast<std::size_t>(R.nextBelow(G.NumMethods));
      for (std::size_t K = 0; K < G.NumMethods && !Applied; ++K) {
        uint32_t From = static_cast<uint32_t>((Start + K) % G.NumMethods);
        auto &Out = G.Succ[From];
        if (Out.empty())
          continue;
        uint32_t To = Out[static_cast<std::size_t>(R.nextBelow(Out.size()))];
        G.dropEdge(From, To);
        if (Kind == MutationKind::CorruptInvokeIdx)
          // +4 lets the corrupted index land out of bounds sometimes,
          // exercising the reachability pass's skip.
          G.addEdge(From,
                    static_cast<uint32_t>(R.nextBelow(G.NumMethods + 4)));
        Applied = true;
      }
    }
    if (!Applied) {
      Rep.Outcome = FaultOutcome::Harmless;
      return Rep;
    }
    return classifyLinkRun(Compiled.Methods, Kind, ThreadsOverride, &G);
  }

  case MutationKind::CorruptProfile: {
    // The profile is advisory input to HfOpti and the layout stage: garbage
    // cycle counts or method indices may change which methods get filtered
    // or where code lands, but the shipped image must stay verifier-clean
    // and behave exactly like baseline — layout and outlining are
    // semantics-preserving regardless of what the profile claims.
    profile::Profile P = CleanProfile;
    const uint32_t NumMethods = static_cast<uint32_t>(Compiled.Methods.size());
    auto SeededEntry = [&] {
      auto It = P.CyclesByMethod.begin();
      std::advance(It, static_cast<std::ptrdiff_t>(
                           R.nextBelow(P.CyclesByMethod.size())));
      return It;
    };
    uint64_t Shape = P.CyclesByMethod.empty() ? 3 : R.nextBelow(4);
    switch (Shape) {
    case 0: { // Retarget one entry at a bogus (often out-of-range) index.
      auto It = SeededEntry();
      uint64_t Cycles = It->second;
      P.CyclesByMethod.erase(It);
      P.CyclesByMethod[NumMethods + static_cast<uint32_t>(R.nextBelow(64))] +=
          Cycles;
      break;
    }
    case 1: // Inflate one entry toward the counter's ceiling.
      SeededEntry()->second = ~uint64_t(0) / 2 + R.nextBelow(1024);
      break;
    case 2: // Zero one entry (a method that ran claims it never did).
      SeededEntry()->second = 0;
      break;
    default: // Insert an entry for a method the app does not have.
      P.CyclesByMethod[NumMethods + static_cast<uint32_t>(R.nextBelow(64))] =
          1 + R.nextBelow(1 << 20);
      break;
    }
    return classifyLinkRun(Compiled.Methods, Kind, ThreadsOverride, nullptr,
                           &P);
  }

  case MutationKind::BitFlipSideInfo:
  case MutationKind::DropSideInfoEntry:
  case MutationKind::SwapRangeEndpoints:
  case MutationKind::StaleBranchTarget: {
    std::vector<CompiledMethod> Methods = Compiled.Methods;
    // Probe candidate methods starting from a seeded row until the
    // mutation applies (some methods have no record of the needed kind).
    std::size_t Start =
        static_cast<std::size_t>(R.nextBelow(CandidateRows.size()));
    bool Applied = false;
    for (std::size_t K = 0; K < CandidateRows.size() && !Applied; ++K) {
      MethodSideInfo &S =
          Methods[CandidateRows[(Start + K) % CandidateRows.size()]].Side;
      switch (Kind) {
      case MutationKind::BitFlipSideInfo:
        flipOneBit(S, R);
        Applied = true;
        break;
      case MutationKind::DropSideInfoEntry:
        Applied = dropOneEntry(S, R);
        break;
      case MutationKind::SwapRangeEndpoints:
        Applied = swapOneRange(S, R);
        break;
      default:
        Applied = staleOneTarget(S, R);
        break;
      }
    }
    if (!Applied) {
      FaultReport Rep;
      Rep.Kind = Kind;
      Rep.Outcome = FaultOutcome::Harmless; // No record of this kind exists.
      return Rep;
    }
    return classifyLinkRun(std::move(Methods), Kind, ThreadsOverride);
  }
  }
  return makeError("fault injector: unknown mutation kind");
}
