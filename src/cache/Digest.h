//===- cache/Digest.h - Content digests for incremental builds --*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 128-bit content digests, the keying discipline of the
/// incremental build cache. Two keys exist, both free of pointers,
/// addresses and iteration-order artifacts:
///
///  * the SOURCE key of a dex method (bytecode + compilation-relevant
///    options), which addresses compiled-method blobs in the on-disk store:
///    an unchanged dex method re-uses its compiled artifact on a warm build;
///  * the CONTENT digest of a compiled method (code words + the full
///    MethodSideInfo), which keys LTBO detection-result reuse: a partition
///    group whose member digests are unchanged re-plays its cached
///    candidate selection instead of re-running detection.
///
/// The digest is a two-lane multiply-xor construction (splitmix-style
/// finalizers over accumulating lanes). It is not cryptographic; it only
/// needs to make accidental collisions vanishingly unlikely and to be
/// byte-stable across platforms and builds of the same format version.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CACHE_DIGEST_H
#define CALIBRO_CACHE_DIGEST_H

#include "codegen/CompiledMethod.h"
#include "dex/Dex.h"

#include <cstdint>
#include <string>

namespace calibro {
namespace cache {

/// A 128-bit content digest.
struct Digest {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const Digest &) const = default;

  /// 32 lowercase hex characters (Hi then Lo), used as store file names.
  std::string hex() const;
};

/// Streaming digest builder. Feed fixed-width values and strings; the
/// result depends only on the fed value sequence.
class Hasher {
public:
  void u8(uint8_t V) { word(V ^ 0xa5); }
  void u32(uint32_t V) { word(V); }
  void u64(uint64_t V) { word(V); }
  void i64(int64_t V) { word(static_cast<uint64_t>(V)); }
  void str(const std::string &S);
  void digest(const Digest &D) {
    word(D.Lo);
    word(D.Hi);
  }

  /// Finalizes over everything fed so far (the hasher stays usable).
  Digest finish() const;

private:
  void word(uint64_t V);

  uint64_t A = 0x9e3779b97f4a7c15ULL;
  uint64_t B = 0xc2b2ae3d27d4eb4fULL;
  uint64_t Count = 0;
};

/// The source key of \p M: every dex-level field that influences its
/// compilation, plus the compilation options that do (\p EnableCto) and the
/// cache format version. Two methods with equal keys compile to identical
/// CompiledMethods under this toolchain.
Digest methodSourceKey(const dex::Method &M, bool EnableCto);

/// The content digest of a compiled method: code words + the full
/// MethodSideInfo (offsets and sizes only — no pointers or addresses).
/// This is the unit digest LTBO group keys are combined from.
Digest methodContentDigest(const codegen::CompiledMethod &M);

/// The merge digest of a compiled method: the content digest's inputs plus
/// stack maps and relocations. Two methods with equal merge digests are
/// candidates for byte-identical body aliasing in the global method merger
/// (which still confirms full structural equality before aliasing).
Digest methodMergeDigest(const codegen::CompiledMethod &M);

} // namespace cache
} // namespace calibro

#endif // CALIBRO_CACHE_DIGEST_H
