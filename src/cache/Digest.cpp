//===- cache/Digest.cpp - Content digests for incremental builds ----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "cache/Digest.h"

#include "cache/BuildCache.h"

namespace calibro {
namespace cache {

namespace {

/// splitmix64 finalizer: full-avalanche mix of one 64-bit lane.
uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

} // namespace

std::string Digest::hex() const {
  static const char HexDigits[] = "0123456789abcdef";
  std::string S(32, '0');
  uint64_t W[2] = {Hi, Lo};
  for (int Lane = 0; Lane < 2; ++Lane)
    for (int I = 0; I < 16; ++I)
      S[Lane * 16 + I] = HexDigits[(W[Lane] >> (60 - 4 * I)) & 0xf];
  return S;
}

void Hasher::word(uint64_t V) {
  ++Count;
  // Two lanes with distinct odd multipliers; the position counter keeps
  // permutations of the same multiset of words from colliding.
  A = (A ^ mix64(V + Count * 0x9e3779b97f4a7c15ULL)) * 0xff51afd7ed558ccdULL;
  B = (B + mix64(V ^ (Count * 0xc2b2ae3d27d4eb4fULL))) * 0xc4ceb9fe1a85ec53ULL;
}

void Hasher::str(const std::string &S) {
  word(S.size());
  // Pack 8 bytes per fed word; the length word above disambiguates tails.
  uint64_t Acc = 0;
  unsigned N = 0;
  for (unsigned char C : S) {
    Acc |= static_cast<uint64_t>(C) << (8 * N);
    if (++N == 8) {
      word(Acc);
      Acc = 0;
      N = 0;
    }
  }
  if (N)
    word(Acc);
}

Digest Hasher::finish() const {
  Digest D;
  D.Lo = mix64(A ^ Count);
  D.Hi = mix64(B + 0x9e3779b97f4a7c15ULL * Count);
  return D;
}

Digest methodSourceKey(const dex::Method &M, bool EnableCto) {
  Hasher H;
  H.u32(CacheFormatVersion);
  H.u8(EnableCto ? 1 : 0);
  H.u32(M.Idx);
  H.str(M.Name);
  H.u32(M.NumRegs);
  H.u32(M.NumArgs);
  H.u8(M.ReturnsValue ? 1 : 0);
  H.u8(M.IsNative ? 1 : 0);
  H.u64(M.Code.size());
  for (const dex::Insn &I : M.Code) {
    H.u8(static_cast<uint8_t>(I.Opcode));
    H.u32(I.A);
    H.u32(I.B);
    H.u32(I.C);
    H.i64(I.Imm);
    H.u32(I.Target);
    H.u32(I.Idx);
    H.u8(I.NumArgs);
    for (uint16_t Arg : I.Args)
      H.u32(Arg);
  }
  H.u64(M.SwitchTables.size());
  for (const auto &Table : M.SwitchTables) {
    H.u64(Table.size());
    for (uint32_t T : Table)
      H.u32(T);
  }
  return H.finish();
}

Digest methodContentDigest(const codegen::CompiledMethod &M) {
  Hasher H;
  H.u32(CacheFormatVersion);
  H.u64(M.Code.size());
  for (uint32_t W : M.Code)
    H.u32(W);
  const codegen::MethodSideInfo &S = M.Side;
  H.u64(S.TerminatorOffsets.size());
  for (uint32_t Off : S.TerminatorOffsets)
    H.u32(Off);
  H.u64(S.PcRelRecords.size());
  for (const codegen::PcRelRecord &R : S.PcRelRecords) {
    H.u32(R.InsnOffset);
    H.u32(R.TargetOffset);
  }
  H.u64(S.EmbeddedData.size());
  for (const codegen::EmbeddedDataRange &R : S.EmbeddedData) {
    H.u32(R.Offset);
    H.u32(R.Size);
  }
  H.u64(S.SlowPathRanges.size());
  for (const codegen::ByteRange &R : S.SlowPathRanges) {
    H.u32(R.Begin);
    H.u32(R.End);
  }
  H.u8(S.HasIndirectJump ? 1 : 0);
  H.u8(S.IsNative ? 1 : 0);
  return H.finish();
}

Digest methodMergeDigest(const codegen::CompiledMethod &M) {
  Hasher H;
  H.digest(methodContentDigest(M));
  H.u64(M.Map.Entries.size());
  for (const codegen::StackMapEntry &E : M.Map.Entries) {
    H.u32(E.NativePcOffset);
    H.u32(E.DexPc);
  }
  H.u64(M.Relocs.size());
  for (const codegen::Relocation &R : M.Relocs) {
    H.u32(R.Offset);
    H.u8(static_cast<uint8_t>(R.Kind));
    H.u32(R.TargetId);
  }
  return H.finish();
}

} // namespace cache
} // namespace calibro
