//===- cache/BuildCache.h - On-disk incremental build cache -----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, versioned, content-addressed store that makes rebuild cost
/// proportional to the size of the change instead of the size of the app
/// (the incremental-build discipline of BOLT-style post-link optimizers).
/// Two entry kinds live under the cache directory:
///
///   <dir>/VERSION        format stamp; a mismatch empties the cache
///   <dir>/m/<key>.bin    compiled-method blob, keyed by the SOURCE digest
///                        of the dex method (cache::methodSourceKey) — a
///                        hit skips HIR construction and codegen entirely
///   <dir>/g/<key>.bin    canonical LTBO candidate selection of one
///                        partition group, keyed by the digest of the
///                        group's member CONTENT digests — a hit skips
///                        suffix-structure construction and detection
///
/// Correctness stance: the cache is an accelerator, never an authority.
/// Every blob carries a magic, the format version, and a trailing content
/// checksum; loads are bounds-checked, method blobs flow through
/// SideInfoValidator, and ANY anomaly — truncation, corruption, version
/// skew, validation failure — degrades to a miss so the cold path
/// recomputes. A corrupt cache can cost time; it can never crash the build
/// or change its output (verify::FaultInjector's cache-mutation kinds
/// enforce exactly this).
///
/// Writes go to a unique temp file followed by an atomic rename, so
/// concurrent builders (and the compile-phase thread pool) never observe a
/// half-written entry.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CACHE_BUILDCACHE_H
#define CALIBRO_CACHE_BUILDCACHE_H

#include "cache/Digest.h"
#include "codegen/CompiledMethod.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace calibro {
namespace cache {

/// Version of every on-disk encoding this subsystem owns (blob layouts,
/// digest recipes, the VERSION stamp). Bump on any change; old caches are
/// then discarded wholesale rather than misread.
inline constexpr uint32_t CacheFormatVersion = 1;

/// A compiled-method blob recovered from the store.
struct CachedMethod {
  codegen::CompiledMethod Method;
  /// HIR simplification count of the original compile, preserved so warm
  /// BuildStats match cold ones.
  uint32_t HirInsnsSimplified = 0;
};

/// One cached candidate of a group's canonical selection, in
/// selection-emission order (the order OutlinedFunc ids are assigned in).
struct CachedSelection {
  uint32_t SeqLen = 0;                 ///< Sequence length in instructions.
  uint64_t Benefit = 0;                ///< Benefit recorded at selection.
  std::vector<uint32_t> Positions;     ///< Claimed text positions, ascending.
};

/// The canonical selection of one partition group.
struct GroupSelections {
  std::vector<CachedSelection> Funcs;
};

/// Aggregate health report of a cache directory (calibro-oatdump
/// --cache-audit).
struct CacheAudit {
  uint64_t MethodEntries = 0;
  uint64_t MethodCorrupt = 0;
  uint64_t GroupEntries = 0;
  uint64_t GroupCorrupt = 0;
  uint64_t TotalBytes = 0;
};

/// Handle to one cache directory. Thread-safe: loads touch only immutable
/// renamed files, stores are temp-file + atomic-rename.
///
/// The entry operations are virtual so drop-in wrappers — the daemon's
/// sharded, size-bounded ShardedBuildCache — can stand in anywhere a
/// BuildCache flows (compile-stage method probes, LTBO group replay, the
/// windowed spill path) without those stages knowing about sharding.
class BuildCache {
public:
  /// Opens (creating if needed) the store at \p Dir. A missing or
  /// mismatched VERSION stamp empties the store and restamps it. Fails only
  /// when the directory cannot be created or written.
  static Expected<std::unique_ptr<BuildCache>> open(const std::string &Dir);

  virtual ~BuildCache() = default;

  const std::string &dir() const { return Root; }

  /// Loads the compiled-method blob keyed by \p Key. Returns nullopt on
  /// miss OR on any validation failure (corrupt, truncated, version-skewed,
  /// side info rejected by SideInfoValidator) — callers recompute.
  virtual std::optional<CachedMethod> loadMethod(const Digest &Key) const;

  /// Stores \p M (with its \p HirInsnsSimplified count) under \p Key.
  /// Best-effort: I/O failure is swallowed (the cache just stays cold).
  virtual void storeMethod(const Digest &Key, const codegen::CompiledMethod &M,
                           uint32_t HirInsnsSimplified) const;

  /// Loads a group-selection blob. Structural validation only — the
  /// outliner re-validates every position against the live text before
  /// replaying (and falls back to detection on any violation).
  virtual std::optional<GroupSelections> loadGroup(const Digest &Key) const;

  /// Stores a group's canonical selection under \p Key. Best-effort.
  virtual void storeGroup(const Digest &Key, const GroupSelections &G) const;

  /// Scans every entry, validating each blob end to end.
  virtual CacheAudit audit() const;

  /// On-disk path of the method / group blob for \p Key (whether or not an
  /// entry exists). Public so eviction bookkeeping (ShardedBuildCache) and
  /// tests can stat and remove entries without re-deriving the layout.
  std::string methodPath(const Digest &Key) const;
  std::string groupPath(const Digest &Key) const;

protected:
  explicit BuildCache(std::string Root) : Root(std::move(Root)) {}

private:
  std::string Root;
};

} // namespace cache
} // namespace calibro

#endif // CALIBRO_CACHE_BUILDCACHE_H
