//===- cache/SpillStore.cpp - Ephemeral windowed-linking spill ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "cache/SpillStore.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <system_error>
#include <unistd.h>

namespace fs = std::filesystem;

using namespace calibro;
using namespace calibro::cache;

Expected<std::unique_ptr<SpillStore>>
SpillStore::create(const std::string &DirOverride) {
  std::string Dir = DirOverride;
  bool Ephemeral = DirOverride.empty();
  if (Ephemeral) {
    // Unique per process AND per store: concurrent links in one process
    // (the differential harness runs several) must not share spill roots.
    static std::atomic<uint64_t> Counter{0};
    std::error_code Ec;
    fs::path Base = fs::temp_directory_path(Ec);
    if (Ec)
      Base = "/tmp";
    Dir = (Base / ("calibro-spill-" +
                   std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
                   std::to_string(Counter.fetch_add(1))))
              .string();
  }
  auto Store = BuildCache::open(Dir);
  if (!Store)
    return makeError("spill store: " + Store.message());
  return std::unique_ptr<SpillStore>(
      new SpillStore(std::move(*Store), Ephemeral));
}

SpillStore::~SpillStore() {
  if (!Ephemeral)
    return;
  // Best-effort: a leaked temp directory is untidy, never unsound.
  std::error_code Ec;
  fs::remove_all(Store->dir(), Ec);
}
