//===- cache/SpillStore.cpp - Ephemeral windowed-linking spill ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "cache/SpillStore.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <system_error>
#include <unistd.h>

namespace fs = std::filesystem;

using namespace calibro;
using namespace calibro::cache;

Expected<std::unique_ptr<SpillStore>>
SpillStore::create(const std::string &DirOverride) {
  std::string Dir = DirOverride;
  bool Ephemeral = DirOverride.empty();
  if (Ephemeral) {
    // Unique per process AND per store: concurrent links in one process
    // (daemon jobs, the differential harness) must not share spill roots.
    // A pid+counter name alone is not enough — the counter restarts at 0
    // every process, so a recycled pid (or a crash-leaked directory from an
    // earlier run) can leave the candidate path already occupied. The
    // directory is therefore CLAIMED with an exclusive create: only the
    // store that brought the directory into existence uses it, and an
    // occupied name just advances the counter.
    static std::atomic<uint64_t> Counter{0};
    std::error_code Ec;
    fs::path Base = fs::temp_directory_path(Ec);
    if (Ec)
      Base = "/tmp";
    bool Claimed = false;
    for (int Attempt = 0; Attempt < 1024 && !Claimed; ++Attempt) {
      Dir = (Base / ("calibro-spill-" +
                     std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
                     std::to_string(Counter.fetch_add(1))))
                .string();
      std::error_code CreateEc;
      Claimed = fs::create_directory(Dir, CreateEc) && !CreateEc;
    }
    if (!Claimed)
      return makeError("spill store: cannot claim a fresh directory under " +
                       Base.string());
  }
  auto Store = BuildCache::open(Dir);
  if (!Store)
    return makeError("spill store: " + Store.message());
  return std::unique_ptr<SpillStore>(
      new SpillStore(std::move(*Store), Ephemeral));
}

SpillStore::~SpillStore() {
  if (!Ephemeral)
    return;
  // Best-effort: a leaked temp directory is untidy, never unsound.
  std::error_code Ec;
  fs::remove_all(Store->dir(), Ec);
}
