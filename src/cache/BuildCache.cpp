//===- cache/BuildCache.cpp - On-disk incremental build cache -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "cache/BuildCache.h"

#include "codegen/SideInfoValidator.h"
#include "oat/Serialize.h"
#include "support/BinaryStream.h"
#include "support/MappedFile.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace calibro;
using namespace calibro::cache;

namespace fs = std::filesystem;

namespace {

constexpr uint32_t MethodBlobMagic = 0x31424d43;  // "CMB1"
constexpr uint32_t GroupBlobMagic = 0x31424743;   // "CGB1"
constexpr std::size_t ChecksumBytes = 16;

/// Guards against runaway counts in corrupt varint headers before any
/// allocation is sized from them.
constexpr uint64_t MaxReasonableCount = 1u << 28;

std::string versionStamp() {
  return "calibro-cache " + std::to_string(CacheFormatVersion) + "\n";
}

Digest payloadChecksum(std::span<const uint8_t> Buf, std::size_t End) {
  Hasher H;
  // 8 bytes per word keeps checksumming cheap relative to file I/O.
  uint64_t Acc = 0;
  unsigned N = 0;
  for (std::size_t I = 0; I < End; ++I) {
    Acc |= static_cast<uint64_t>(Buf[I]) << (8 * N);
    if (++N == 8) {
      H.u64(Acc);
      Acc = 0;
      N = 0;
    }
  }
  if (N)
    H.u64(Acc);
  H.u64(End);
  return H.finish();
}

std::optional<std::vector<uint8_t>> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof())
    return std::nullopt;
  return Bytes;
}

/// Writes \p Bytes to \p Path via a unique sibling temp file + rename, so a
/// reader never sees a partial entry and concurrent writers of the same key
/// race benignly (both contents are identical by construction).
bool writeFileAtomic(const std::string &Path,
                     const std::vector<uint8_t> &Bytes) {
  static std::atomic<uint64_t> TempCounter{0};
  std::string Tmp = Path + ".tmp." +
                    std::to_string(TempCounter.fetch_add(1)) + "." +
                    std::to_string(static_cast<uint64_t>(
                        reinterpret_cast<uintptr_t>(&TempCounter) >> 4));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out.good())
      return false;
  }
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

/// Seals a blob: verifies magic + version + trailing checksum and returns
/// the payload span (between the 8-byte header and the checksum trailer).
/// Span in, span out — the caller hands the mmap'd file image straight in
/// and decodes straight out of it; no copy anywhere on the load path.
std::optional<std::span<const uint8_t>>
openBlob(std::span<const uint8_t> Bytes, uint32_t Magic) {
  if (Bytes.size() < 8 + ChecksumBytes)
    return std::nullopt;
  ByteReader R(Bytes);
  auto GotMagic = R.u32();
  auto GotVersion = R.u32();
  if (!GotMagic || !GotVersion || *GotMagic != Magic ||
      *GotVersion != CacheFormatVersion)
    return std::nullopt;
  std::size_t PayloadEnd = Bytes.size() - ChecksumBytes;
  Digest Want = payloadChecksum(Bytes, PayloadEnd);
  uint64_t GotLo = 0, GotHi = 0;
  std::memcpy(&GotLo, Bytes.data() + PayloadEnd, 8);
  std::memcpy(&GotHi, Bytes.data() + PayloadEnd + 8, 8);
  if (GotLo != Want.Lo || GotHi != Want.Hi)
    return std::nullopt;
  return std::span<const uint8_t>(Bytes.data() + 8, PayloadEnd - 8);
}

/// Appends header + payload checksum around \p Payload.
std::vector<uint8_t> sealBlob(uint32_t Magic, std::vector<uint8_t> Payload) {
  ByteWriter W;
  W.u32(Magic);
  W.u32(CacheFormatVersion);
  W.bytes(Payload.data(), Payload.size());
  std::vector<uint8_t> Out = W.take();
  Digest Sum = payloadChecksum(Out, Out.size());
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(Sum.Lo >> (8 * I)));
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(Sum.Hi >> (8 * I)));
  return Out;
}

std::vector<uint8_t> encodeMethodBlob(const codegen::CompiledMethod &M,
                                      uint32_t HirInsnsSimplified) {
  ByteWriter W;
  W.uleb(M.MethodIdx);
  W.str(M.Name);
  W.uleb(HirInsnsSimplified);
  W.uleb(M.Code.size());
  for (uint32_t Word : M.Code)
    W.u32(Word);
  W.uleb(M.Relocs.size());
  for (const codegen::Relocation &R : M.Relocs) {
    W.uleb(R.Offset / 4);
    W.u8(static_cast<uint8_t>(R.Kind));
    W.uleb(R.TargetId);
  }
  oat::putStackMap(W, M.Map);
  oat::putSideInfo(W, M.Side);
  return W.take();
}

std::optional<CachedMethod> decodeMethodBlob(std::span<const uint8_t> Bytes) {
  ByteReader R(Bytes);
  CachedMethod CM;
  codegen::CompiledMethod &M = CM.Method;

  auto Idx = R.uleb();
  if (!Idx)
    return std::nullopt;
  M.MethodIdx = static_cast<uint32_t>(*Idx);
  auto Name = R.str();
  if (!Name)
    return std::nullopt;
  M.Name = std::move(*Name);
  auto Simplified = R.uleb();
  if (!Simplified)
    return std::nullopt;
  CM.HirInsnsSimplified = static_cast<uint32_t>(*Simplified);

  auto NumWords = R.uleb();
  if (!NumWords || *NumWords > MaxReasonableCount)
    return std::nullopt;
  M.Code.resize(static_cast<std::size_t>(*NumWords));
  for (uint32_t &Word : M.Code) {
    auto V = R.u32();
    if (!V)
      return std::nullopt;
    Word = *V;
  }

  auto NumRelocs = R.uleb();
  if (!NumRelocs || *NumRelocs > MaxReasonableCount)
    return std::nullopt;
  M.Relocs.reserve(static_cast<std::size_t>(*NumRelocs));
  for (uint64_t K = 0; K < *NumRelocs; ++K) {
    auto Off = R.uleb();
    auto Kind = R.u8();
    auto Target = R.uleb();
    if (!Off || !Kind || !Target)
      return std::nullopt;
    // Compiled-method blobs are stored straight out of codegen, before the
    // link-time outliner runs — only CTO stub relocations can exist. The
    // stub id space is pre-registered in a fixed order by the code
    // generator, which is what makes the ids content-stable across builds
    // (and hence cacheable at all).
    if (*Kind != static_cast<uint8_t>(codegen::RelocKind::CtoStub))
      return std::nullopt;
    codegen::Relocation Rel;
    Rel.Offset = static_cast<uint32_t>(*Off) * 4;
    Rel.Kind = codegen::RelocKind::CtoStub;
    Rel.TargetId = static_cast<uint32_t>(*Target);
    if (Rel.Offset + 4 > M.codeSizeBytes())
      return std::nullopt;
    M.Relocs.push_back(Rel);
  }

  if (auto E = oat::parseStackMap(R, M.Map)) {
    consumeError(std::move(E));
    return std::nullopt;
  }
  if (auto E = oat::parseSideInfo(R, M.Side)) {
    consumeError(std::move(E));
    return std::nullopt;
  }
  if (R.remaining() != 0)
    return std::nullopt;

  // The load boundary is where trust is established: everything the
  // outliner and linker assume about side info is re-checked here, exactly
  // as it is for methods deserialized from an OAT file.
  if (codegen::validateSideInfo(M))
    return std::nullopt;
  return CM;
}

std::vector<uint8_t> encodeGroupBlob(const GroupSelections &G) {
  ByteWriter W;
  W.uleb(G.Funcs.size());
  for (const CachedSelection &S : G.Funcs) {
    W.uleb(S.SeqLen);
    W.uleb(S.Benefit);
    W.uleb(S.Positions.size());
    uint32_t Prev = 0;
    for (uint32_t P : S.Positions) {
      W.uleb(P - Prev); // Ascending by construction; deltas stay small.
      Prev = P;
    }
  }
  return W.take();
}

std::optional<GroupSelections>
decodeGroupBlob(std::span<const uint8_t> Bytes) {
  ByteReader R(Bytes);
  GroupSelections G;
  auto NumFuncs = R.uleb();
  if (!NumFuncs || *NumFuncs > MaxReasonableCount)
    return std::nullopt;
  G.Funcs.reserve(static_cast<std::size_t>(*NumFuncs));
  for (uint64_t K = 0; K < *NumFuncs; ++K) {
    CachedSelection S;
    auto Len = R.uleb();
    auto Ben = R.uleb();
    auto NumPos = R.uleb();
    if (!Len || !Ben || !NumPos || *Len == 0 || *NumPos == 0 ||
        *NumPos > MaxReasonableCount)
      return std::nullopt;
    S.SeqLen = static_cast<uint32_t>(*Len);
    S.Benefit = *Ben;
    S.Positions.reserve(static_cast<std::size_t>(*NumPos));
    uint32_t Pos = 0;
    for (uint64_t J = 0; J < *NumPos; ++J) {
      auto Delta = R.uleb();
      if (!Delta)
        return std::nullopt;
      if (J > 0 && *Delta == 0)
        return std::nullopt; // Positions must be strictly ascending.
      Pos += static_cast<uint32_t>(*Delta);
      S.Positions.push_back(Pos);
    }
    G.Funcs.push_back(std::move(S));
  }
  if (R.remaining() != 0)
    return std::nullopt;
  return G;
}

} // namespace

std::string BuildCache::methodPath(const Digest &Key) const {
  return Root + "/m/" + Key.hex() + ".bin";
}

std::string BuildCache::groupPath(const Digest &Key) const {
  return Root + "/g/" + Key.hex() + ".bin";
}

Expected<std::unique_ptr<BuildCache>>
BuildCache::open(const std::string &Dir) {
  std::error_code Ec;
  fs::create_directories(Dir + "/m", Ec);
  if (Ec)
    return makeError("cache: cannot create " + Dir + "/m: " + Ec.message());
  fs::create_directories(Dir + "/g", Ec);
  if (Ec)
    return makeError("cache: cannot create " + Dir + "/g: " + Ec.message());

  std::string StampPath = Dir + "/VERSION";
  std::string Want = versionStamp();
  bool Stamped = false;
  if (auto Bytes = readFileBytes(StampPath))
    Stamped = std::string(Bytes->begin(), Bytes->end()) == Want;

  if (!Stamped) {
    // Unknown or version-skewed store: empty it rather than risk misreading
    // entries whose encoding this build does not speak.
    for (const char *Sub : {"/m", "/g"}) {
      for (const auto &Entry : fs::directory_iterator(Dir + Sub, Ec)) {
        std::error_code RmEc;
        fs::remove(Entry.path(), RmEc);
      }
    }
    std::vector<uint8_t> StampBytes(Want.begin(), Want.end());
    if (!writeFileAtomic(StampPath, StampBytes))
      return makeError("cache: cannot stamp " + StampPath);
  }
  return std::unique_ptr<BuildCache>(new BuildCache(Dir));
}

std::optional<CachedMethod> BuildCache::loadMethod(const Digest &Key) const {
  // Zero-copy load: checksum and decode straight out of the mapping. The
  // decoded CachedMethod owns its data, so the mapping's scope ends here.
  auto Map = support::MappedFile::open(methodPath(Key));
  if (!Map)
    return std::nullopt;
  auto Payload = openBlob(Map->bytes(), MethodBlobMagic);
  if (!Payload)
    return std::nullopt;
  return decodeMethodBlob(*Payload);
}

void BuildCache::storeMethod(const Digest &Key,
                             const codegen::CompiledMethod &M,
                             uint32_t HirInsnsSimplified) const {
  writeFileAtomic(methodPath(Key),
                  sealBlob(MethodBlobMagic,
                           encodeMethodBlob(M, HirInsnsSimplified)));
}

std::optional<GroupSelections> BuildCache::loadGroup(const Digest &Key) const {
  auto Map = support::MappedFile::open(groupPath(Key));
  if (!Map)
    return std::nullopt;
  auto Payload = openBlob(Map->bytes(), GroupBlobMagic);
  if (!Payload)
    return std::nullopt;
  return decodeGroupBlob(*Payload);
}

void BuildCache::storeGroup(const Digest &Key,
                            const GroupSelections &G) const {
  writeFileAtomic(groupPath(Key), sealBlob(GroupBlobMagic, encodeGroupBlob(G)));
}

CacheAudit BuildCache::audit() const {
  CacheAudit A;
  std::error_code Ec;
  for (const auto &Entry : fs::directory_iterator(Root + "/m", Ec)) {
    if (!Entry.is_regular_file() || Entry.path().extension() != ".bin")
      continue;
    ++A.MethodEntries;
    A.TotalBytes += Entry.file_size(Ec);
    auto Map = support::MappedFile::open(Entry.path().string());
    bool Ok = false;
    if (Map)
      if (auto Payload = openBlob(Map->bytes(), MethodBlobMagic))
        Ok = decodeMethodBlob(*Payload).has_value();
    if (!Ok)
      ++A.MethodCorrupt;
  }
  for (const auto &Entry : fs::directory_iterator(Root + "/g", Ec)) {
    if (!Entry.is_regular_file() || Entry.path().extension() != ".bin")
      continue;
    ++A.GroupEntries;
    A.TotalBytes += Entry.file_size(Ec);
    auto Map = support::MappedFile::open(Entry.path().string());
    bool Ok = false;
    if (Map)
      if (auto Payload = openBlob(Map->bytes(), GroupBlobMagic))
        Ok = decodeGroupBlob(*Payload).has_value();
    if (!Ok)
      ++A.GroupCorrupt;
  }
  return A;
}
