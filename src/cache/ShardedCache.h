//===- cache/ShardedCache.h - Sharded, size-bounded build cache -*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared store of the compile daemon (calibro-compiled): one
/// BuildCache-compatible front over N per-shard BuildCache stores, safe for
/// many concurrent builds. Three concerns the plain store does not have:
///
///  * Sharding + per-shard locking. Entries route by digest, so concurrent
///    jobs contend only when they touch the same shard, and the in-memory
///    bookkeeping (sizes, recency, pins) is guarded per shard rather than
///    by one global lock.
///  * LRU eviction under a byte budget. The fleet scenario reuses one cache
///    across thousands of app versions; without a bound it grows forever.
///    Each store that pushes a shard over its slice of the budget evicts
///    least-recently-touched entries — never a pinned one — until it fits.
///    Eviction can only cost future hits: a miss recomputes (and the
///    windowed-link merge pass re-detects), it never changes any output.
///  * Cross-job digest dedup. Content addressing makes equal inputs collide
///    on purpose: when a second job stores a key that is already resident,
///    the disk write is skipped entirely (the bytes are identical by
///    construction) and only the recency bookkeeping advances.
///
/// Everything is observable: hit/miss/dedup/eviction counters for the
/// daemon's job log and the table8 bench, and audit() aggregates the
/// shards' end-to-end blob validation.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CACHE_SHARDEDCACHE_H
#define CALIBRO_CACHE_SHARDEDCACHE_H

#include "cache/BuildCache.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace calibro {
namespace cache {

/// Aggregate counters of one ShardedBuildCache. Monotonic over the cache's
/// lifetime; snapshot with stats().
struct ShardedCacheStats {
  uint64_t MethodHits = 0;
  uint64_t MethodMisses = 0;
  uint64_t GroupHits = 0;
  uint64_t GroupMisses = 0;
  /// Stores skipped because the key was already resident (cross-job digest
  /// dedup: identical content, identical bytes, no second write).
  uint64_t StoresDeduped = 0;
  uint64_t Evictions = 0;
  uint64_t EvictedBytes = 0;
  /// Resident blob bytes across all shards right now.
  uint64_t ResidentBytes = 0;
  /// Resident entries across all shards right now.
  uint64_t ResidentEntries = 0;
};

/// A sharded, size-bounded, concurrency-hardened BuildCache.
class ShardedBuildCache : public BuildCache {
public:
  /// Opens (creating if needed) \p NumShards shard stores under \p Dir
  /// (<dir>/s00, <dir>/s01, ...). Existing shard contents are adopted: the
  /// resident index is rebuilt by scanning each shard, in sorted-path order
  /// so the initial recency ranking is deterministic. \p BudgetBytes caps
  /// the summed blob bytes (0 = unbounded), enforced per shard at
  /// BudgetBytes / NumShards on every store.
  static Expected<std::unique_ptr<ShardedBuildCache>>
  open(const std::string &Dir, uint32_t NumShards, uint64_t BudgetBytes = 0);

  std::optional<CachedMethod> loadMethod(const Digest &Key) const override;
  void storeMethod(const Digest &Key, const codegen::CompiledMethod &M,
                   uint32_t HirInsnsSimplified) const override;
  std::optional<GroupSelections> loadGroup(const Digest &Key) const override;
  void storeGroup(const Digest &Key, const GroupSelections &G) const override;

  /// Aggregates the shards' audits (entry/corrupt counts, total bytes).
  CacheAudit audit() const override;

  /// RAII eviction pin: while alive, the pinned entry cannot be evicted
  /// (loads of it still hit, stores still dedup). The windowed-link replay
  /// path pins a group blob for exactly the span between deciding to replay
  /// it and finishing the reload, so a concurrent job's stores can never
  /// evict a selection out from under an in-flight replay.
  class Pin {
  public:
    Pin() = default;
    Pin(Pin &&Other) noexcept { *this = std::move(Other); }
    Pin &operator=(Pin &&Other) noexcept {
      release();
      Owner = Other.Owner;
      ShardIdx = Other.ShardIdx;
      Key = std::move(Other.Key);
      Other.Owner = nullptr;
      return *this;
    }
    Pin(const Pin &) = delete;
    Pin &operator=(const Pin &) = delete;
    ~Pin() { release(); }

    void release();

  private:
    friend class ShardedBuildCache;
    Pin(const ShardedBuildCache *Owner, std::size_t ShardIdx, std::string Key)
        : Owner(Owner), ShardIdx(ShardIdx), Key(std::move(Key)) {}

    const ShardedBuildCache *Owner = nullptr;
    std::size_t ShardIdx = 0;
    std::string Key;
  };

  /// Pins the group / method entry for \p Key against eviction. Pinning a
  /// key with no resident entry is legal (the pin then only blocks a future
  /// entry's eviction while held).
  Pin pinGroup(const Digest &Key) const;
  Pin pinMethod(const Digest &Key) const;

  /// Counter snapshot (monotonic counters + current residency).
  ShardedCacheStats stats() const;

  uint32_t numShards() const { return static_cast<uint32_t>(Shards.size()); }
  uint64_t budgetBytes() const { return BudgetBytes; }

private:
  /// One resident entry: its on-disk size and last-touch tick.
  struct Entry {
    uint64_t Bytes = 0;
    uint64_t Tick = 0;
  };

  /// One shard: a plain BuildCache plus the bookkeeping the base class
  /// deliberately does not keep. std::map (not unordered) so eviction's
  /// recency ties break in deterministic key order.
  struct Shard {
    std::unique_ptr<BuildCache> Store;
    mutable std::mutex M;
    mutable std::map<std::string, Entry> Entries;
    mutable std::map<std::string, uint32_t> Pins;
    mutable uint64_t Bytes = 0;
  };

  ShardedBuildCache(std::string Root, uint64_t BudgetBytes)
      : BuildCache(std::move(Root)), BudgetBytes(BudgetBytes) {}

  const Shard &shardFor(const Digest &Key) const;
  Pin pinKey(const Digest &Key, char Kind) const;

  /// Records a completed store of \p Bytes under \p K and evicts
  /// least-recently-touched unpinned entries until the shard fits its
  /// budget slice again. Caller holds no lock.
  void recordStore(const Shard &S, const std::string &K, const Digest &Key,
                   uint64_t Bytes) const;

  /// Evicts until S.Bytes <= PerShardBudget or only pinned entries remain.
  /// Caller holds S.M.
  void evictLocked(const Shard &S) const;

  uint64_t BudgetBytes;
  uint64_t PerShardBudget = 0;
  std::vector<std::unique_ptr<Shard>> Shards;

  mutable std::atomic<uint64_t> Clock{0};
  mutable std::atomic<uint64_t> MethodHits{0}, MethodMisses{0};
  mutable std::atomic<uint64_t> GroupHits{0}, GroupMisses{0};
  mutable std::atomic<uint64_t> StoresDeduped{0};
  mutable std::atomic<uint64_t> Evictions{0}, EvictedBytes{0};
};

} // namespace cache
} // namespace calibro

#endif // CALIBRO_CACHE_SHARDEDCACHE_H
