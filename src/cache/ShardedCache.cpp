//===- cache/ShardedCache.cpp - Sharded, size-bounded build cache ---------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "cache/ShardedCache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace fs = std::filesystem;

using namespace calibro;
using namespace calibro::cache;

namespace {

/// Index key of one entry: the kind tag ('m'/'g') + the digest hex. One
/// namespace per shard keeps method and group entries in a single LRU
/// ranking — the budget bounds their SUM, so they must compete.
std::string entryKey(char Kind, const Digest &Key) {
  return std::string(1, Kind) + Key.hex();
}

/// On-disk path of the entry \p K names inside \p ShardDir.
std::string entryPath(const std::string &ShardDir, const std::string &K) {
  return ShardDir + (K[0] == 'm' ? "/m/" : "/g/") + K.substr(1) + ".bin";
}

uint64_t fileBytes(const std::string &Path) {
  std::error_code Ec;
  uint64_t N = fs::file_size(Path, Ec);
  return Ec ? 0 : N;
}

} // namespace

Expected<std::unique_ptr<ShardedBuildCache>>
ShardedBuildCache::open(const std::string &Dir, uint32_t NumShards,
                        uint64_t BudgetBytes) {
  if (NumShards == 0)
    return makeError("sharded cache: shard count must be positive");
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return makeError("sharded cache: cannot create " + Dir + ": " +
                     Ec.message());

  auto Cache = std::unique_ptr<ShardedBuildCache>(
      new ShardedBuildCache(Dir, BudgetBytes));
  Cache->PerShardBudget =
      BudgetBytes ? std::max<uint64_t>(1, BudgetBytes / NumShards) : 0;

  for (uint32_t I = 0; I < NumShards; ++I) {
    char Name[8];
    std::snprintf(Name, sizeof(Name), "s%02u", I);
    auto Store = BuildCache::open(Dir + "/" + Name);
    if (!Store)
      return Store.takeError();
    auto S = std::make_unique<Shard>();
    S->Store = std::move(*Store);

    // Adopt whatever the shard already holds (a daemon restart reuses the
    // fleet cache). Sorted-path order seeds the recency ranking
    // deterministically; real recency takes over from the first touch.
    std::vector<std::string> Keys;
    for (char Kind : {'m', 'g'}) {
      std::string Sub = S->Store->dir() + (Kind == 'm' ? "/m" : "/g");
      for (const auto &E : fs::directory_iterator(Sub, Ec)) {
        if (!E.is_regular_file() || E.path().extension() != ".bin")
          continue;
        Keys.push_back(std::string(1, Kind) + E.path().stem().string());
      }
    }
    std::sort(Keys.begin(), Keys.end());
    for (const std::string &K : Keys) {
      uint64_t Bytes = fileBytes(entryPath(S->Store->dir(), K));
      S->Entries.emplace(K, Entry{Bytes, Cache->Clock.fetch_add(1)});
      S->Bytes += Bytes;
    }
    Cache->Shards.push_back(std::move(S));
  }

  // Adopted shards may exceed a newly-tightened budget: trim immediately so
  // the bound holds from the first operation, not the first store.
  for (const auto &S : Cache->Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    Cache->evictLocked(*S);
  }
  return Cache;
}

const ShardedBuildCache::Shard &
ShardedBuildCache::shardFor(const Digest &Key) const {
  return *Shards[static_cast<std::size_t>(Key.Lo % Shards.size())];
}

void ShardedBuildCache::Pin::release() {
  if (!Owner)
    return;
  const Shard &S = *Owner->Shards[ShardIdx];
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Pins.find(Key);
  if (It != S.Pins.end() && --It->second == 0)
    S.Pins.erase(It);
  Owner = nullptr;
}

ShardedBuildCache::Pin ShardedBuildCache::pinKey(const Digest &Key,
                                                 char Kind) const {
  std::size_t Idx = static_cast<std::size_t>(Key.Lo % Shards.size());
  const Shard &S = *Shards[Idx];
  std::string K = entryKey(Kind, Key);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    ++S.Pins[K];
  }
  return Pin(this, Idx, std::move(K));
}

ShardedBuildCache::Pin ShardedBuildCache::pinGroup(const Digest &Key) const {
  return pinKey(Key, 'g');
}

ShardedBuildCache::Pin ShardedBuildCache::pinMethod(const Digest &Key) const {
  return pinKey(Key, 'm');
}

std::optional<CachedMethod>
ShardedBuildCache::loadMethod(const Digest &Key) const {
  const Shard &S = shardFor(Key);
  // Pin across the read: eviction triggered by a concurrent job's store
  // must never unlink the blob between our presence check and the load.
  Pin P = pinMethod(Key);
  auto CM = S.Store->loadMethod(Key);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Entries.find(entryKey('m', Key));
    if (It != S.Entries.end() && CM)
      It->second.Tick = Clock.fetch_add(1);
  }
  (CM ? MethodHits : MethodMisses).fetch_add(1);
  return CM;
}

std::optional<GroupSelections>
ShardedBuildCache::loadGroup(const Digest &Key) const {
  const Shard &S = shardFor(Key);
  Pin P = pinGroup(Key);
  auto G = S.Store->loadGroup(Key);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Entries.find(entryKey('g', Key));
    if (It != S.Entries.end() && G)
      It->second.Tick = Clock.fetch_add(1);
  }
  (G ? GroupHits : GroupMisses).fetch_add(1);
  return G;
}

void ShardedBuildCache::storeMethod(const Digest &Key,
                                    const codegen::CompiledMethod &M,
                                    uint32_t HirInsnsSimplified) const {
  const Shard &S = shardFor(Key);
  std::string K = entryKey('m', Key);
  {
    // Cross-job dedup: a resident key means identical bytes (content
    // addressing), so the second writer only refreshes recency.
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Entries.find(K);
    if (It != S.Entries.end()) {
      It->second.Tick = Clock.fetch_add(1);
      StoresDeduped.fetch_add(1);
      return;
    }
  }
  S.Store->storeMethod(Key, M, HirInsnsSimplified);
  recordStore(S, K, Key, fileBytes(S.Store->methodPath(Key)));
}

void ShardedBuildCache::storeGroup(const Digest &Key,
                                   const GroupSelections &G) const {
  const Shard &S = shardFor(Key);
  std::string K = entryKey('g', Key);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Entries.find(K);
    if (It != S.Entries.end()) {
      It->second.Tick = Clock.fetch_add(1);
      StoresDeduped.fetch_add(1);
      return;
    }
  }
  S.Store->storeGroup(Key, G);
  recordStore(S, K, Key, fileBytes(S.Store->groupPath(Key)));
}

void ShardedBuildCache::recordStore(const Shard &S, const std::string &K,
                                    const Digest &, uint64_t Bytes) const {
  if (Bytes == 0)
    return; // Best-effort store failed; nothing landed on disk.
  std::lock_guard<std::mutex> Lock(S.M);
  auto [It, Inserted] = S.Entries.emplace(K, Entry{Bytes, 0});
  if (!Inserted) {
    // Concurrent writers of one key: both wrote identical bytes, count the
    // size once and keep the newer recency.
    S.Bytes -= It->second.Bytes;
    It->second.Bytes = Bytes;
  }
  It->second.Tick = Clock.fetch_add(1);
  S.Bytes += Bytes;
  evictLocked(S);
}

void ShardedBuildCache::evictLocked(const Shard &S) const {
  if (PerShardBudget == 0)
    return;
  while (S.Bytes > PerShardBudget) {
    // Victim: the least-recently-touched unpinned entry; ties (adoption
    // seeds, bulk imports) break in key order because Entries is ordered.
    auto Victim = S.Entries.end();
    for (auto It = S.Entries.begin(); It != S.Entries.end(); ++It) {
      if (S.Pins.count(It->first))
        continue;
      if (Victim == S.Entries.end() ||
          It->second.Tick < Victim->second.Tick)
        Victim = It;
    }
    if (Victim == S.Entries.end())
      return; // Everything left is pinned: stay over budget, never stall.
    std::error_code Ec;
    fs::remove(entryPath(S.Store->dir(), Victim->first), Ec);
    S.Bytes -= Victim->second.Bytes;
    Evictions.fetch_add(1);
    EvictedBytes.fetch_add(Victim->second.Bytes);
    S.Entries.erase(Victim);
  }
}

CacheAudit ShardedBuildCache::audit() const {
  CacheAudit A;
  for (const auto &S : Shards) {
    CacheAudit Sa = S->Store->audit();
    A.MethodEntries += Sa.MethodEntries;
    A.MethodCorrupt += Sa.MethodCorrupt;
    A.GroupEntries += Sa.GroupEntries;
    A.GroupCorrupt += Sa.GroupCorrupt;
    A.TotalBytes += Sa.TotalBytes;
  }
  return A;
}

ShardedCacheStats ShardedBuildCache::stats() const {
  ShardedCacheStats St;
  St.MethodHits = MethodHits.load();
  St.MethodMisses = MethodMisses.load();
  St.GroupHits = GroupHits.load();
  St.GroupMisses = GroupMisses.load();
  St.StoresDeduped = StoresDeduped.load();
  St.Evictions = Evictions.load();
  St.EvictedBytes = EvictedBytes.load();
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    St.ResidentBytes += S->Bytes;
    St.ResidentEntries += S->Entries.size();
  }
  return St;
}
