//===- cache/SpillStore.h - Ephemeral windowed-linking spill ----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spill target of memory-budgeted (windowed) linking. When the
/// outliner runs under a --memory-budget it detects one window of
/// partition groups at a time and must park each finished group's
/// canonical selection somewhere that does not count against the budget;
/// the final merge pass reloads them one group at a time. A user-supplied
/// BuildCache doubles as that parking lot for free (the blobs ARE ordinary
/// group entries, so the next warm build reuses them), but windowed mode
/// must also work without any cache configured — this RAII wrapper then
/// provides a private BuildCache in a unique temp directory and removes
/// the directory when the link finishes.
///
/// Losing a spilled blob is never a correctness problem: the merge pass
/// treats a miss (or any replay violation) exactly like a cold cache and
/// deterministically re-runs detection for that group.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_CACHE_SPILLSTORE_H
#define CALIBRO_CACHE_SPILLSTORE_H

#include "cache/BuildCache.h"
#include "support/Error.h"

#include <memory>
#include <string>

namespace calibro {
namespace cache {

/// An ephemeral group-selection store for one windowed link.
class SpillStore {
public:
  /// Creates a store rooted at \p DirOverride when non-empty (kept on
  /// disk afterwards — used by tests to inspect the spill format), else at
  /// a fresh unique directory under the system temp root that the
  /// destructor removes. Fails only when no writable directory can be
  /// created.
  static Expected<std::unique_ptr<SpillStore>>
  create(const std::string &DirOverride = "");

  ~SpillStore();

  SpillStore(const SpillStore &) = delete;
  SpillStore &operator=(const SpillStore &) = delete;

  /// The underlying content-addressed store. Valid for this object's
  /// lifetime.
  BuildCache &store() { return *Store; }

  const std::string &dir() const { return Store->dir(); }

private:
  SpillStore(std::unique_ptr<BuildCache> Store, bool Ephemeral)
      : Store(std::move(Store)), Ephemeral(Ephemeral) {}

  std::unique_ptr<BuildCache> Store;
  bool Ephemeral; ///< Remove the directory on destruction.
};

} // namespace cache
} // namespace calibro

#endif // CALIBRO_CACHE_SPILLSTORE_H
