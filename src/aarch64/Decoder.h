//===- aarch64/Decoder.h - AArch64 instruction decoder ----------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes 32-bit A64 machine words back into Insn values. The decoder is
/// exact for the supported subset: every word produced by encode() decodes
/// to an equal Insn, and words outside the subset decode to std::nullopt
/// (which is how the linking-time outliner would notice embedded data if it
/// ever tried to disassemble it — Calibro avoids that via the side
/// information instead, see paper §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_AARCH64_DECODER_H
#define CALIBRO_AARCH64_DECODER_H

#include "aarch64/Insn.h"

#include <optional>

namespace calibro {
namespace a64 {

/// Decodes \p Word. Returns std::nullopt for words outside the subset.
std::optional<Insn> decode(uint32_t Word);

} // namespace a64
} // namespace calibro

#endif // CALIBRO_AARCH64_DECODER_H
