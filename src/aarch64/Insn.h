//===- aarch64/Insn.h - AArch64 instruction model ---------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded-instruction model for the AArch64 subset Calibro generates,
/// analyzes, outlines and simulates. The subset covers everything the ART-
/// style code generator emits: integer data processing, loads/stores
/// (including pairs and PC-relative literals), the full conditional/
/// unconditional branch family, ADR/ADRP, and a few system instructions.
///
/// Instructions are encoded to / decoded from genuine 32-bit AArch64 words
/// (see Encoder.h / Decoder.h), so the outliner's patch math operates on the
/// real immediate fields with the real range limits.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_AARCH64_INSN_H
#define CALIBRO_AARCH64_INSN_H

#include <cstdint>

namespace calibro {
namespace a64 {

/// General-purpose register numbers. 0-30 are X0-X30; 31 is XZR or SP
/// depending on the instruction (the usual AArch64 convention).
enum : uint8_t {
  // Named registers with an ABI or ART-specific role.
  ArtMethodReg = 0, ///< x0 holds the callee ArtMethod* at every Java call.
  IP0 = 16,         ///< First intra-procedure-call scratch register.
  IP1 = 17,         ///< Second intra-procedure-call scratch register.
  ThreadReg = 19,   ///< x19: ART reserves it for the Thread* (tr).
  FP = 29,          ///< Frame pointer.
  LR = 30,          ///< Link register (x30).
  SP = 31,          ///< Stack pointer (in address contexts).
  ZR = 31,          ///< Zero register (in operand contexts).
};

/// Condition codes for B.cond / CSEL / CSINC.
enum class Cond : uint8_t {
  EQ = 0x0,
  NE = 0x1,
  HS = 0x2,
  LO = 0x3,
  MI = 0x4,
  PL = 0x5,
  VS = 0x6,
  VC = 0x7,
  HI = 0x8,
  LS = 0x9,
  GE = 0xa,
  LT = 0xb,
  GT = 0xc,
  LE = 0xd,
  AL = 0xe,
};

/// Returns the condition with inverted sense (EQ <-> NE, ...).
inline Cond invert(Cond C) {
  return static_cast<Cond>(static_cast<uint8_t>(C) ^ 1);
}

/// Addressing mode for LDP/STP.
enum class IndexMode : uint8_t {
  Offset,   ///< [Xn, #imm]
  PreIndex, ///< [Xn, #imm]!
  PostIndex ///< [Xn], #imm
};

/// Opcodes of the supported AArch64 subset.
enum class Opcode : uint8_t {
  Invalid = 0,

  // Data-processing, immediate.
  AddImm,  ///< ADD  Rd, Rn, #imm12 {LSL #12}
  SubImm,  ///< SUB  Rd, Rn, #imm12 {LSL #12}
  AddsImm, ///< ADDS Rd, Rn, #imm12 (CMN when Rd=ZR)
  SubsImm, ///< SUBS Rd, Rn, #imm12 (CMP when Rd=ZR)
  MovZ,    ///< MOVZ Rd, #imm16, LSL #(16*hw)
  MovN,    ///< MOVN Rd, #imm16, LSL #(16*hw)
  MovK,    ///< MOVK Rd, #imm16, LSL #(16*hw)

  // Data-processing, register.
  AddReg,  ///< ADD  Rd, Rn, Rm {LSL #imm6}
  SubReg,  ///< SUB  Rd, Rn, Rm {LSL #imm6}
  AddsReg, ///< ADDS Rd, Rn, Rm
  SubsReg, ///< SUBS Rd, Rn, Rm (CMP when Rd=ZR)
  AndReg,  ///< AND  Rd, Rn, Rm
  OrrReg,  ///< ORR  Rd, Rn, Rm (MOV Rd, Rm when Rn=ZR)
  EorReg,  ///< EOR  Rd, Rn, Rm
  AndsReg, ///< ANDS Rd, Rn, Rm (TST when Rd=ZR)
  Lslv,    ///< LSLV Rd, Rn, Rm
  Lsrv,    ///< LSRV Rd, Rn, Rm
  Asrv,    ///< ASRV Rd, Rn, Rm
  Madd,    ///< MADD Rd, Rn, Rm, Ra (MUL when Ra=ZR)
  Msub,    ///< MSUB Rd, Rn, Rm, Ra
  Sdiv,    ///< SDIV Rd, Rn, Rm
  Udiv,    ///< UDIV Rd, Rn, Rm
  Csel,    ///< CSEL Rd, Rn, Rm, cond
  Csinc,   ///< CSINC Rd, Rn, Rm, cond (CSET when Rn=Rm=ZR, inverted cond)

  // Loads and stores.
  LdrImm,  ///< LDR  Rt, [Rn, #imm12*size]  (32/64-bit)
  StrImm,  ///< STR  Rt, [Rn, #imm12*size]
  LdrbImm, ///< LDRB Wt, [Rn, #imm12]
  StrbImm, ///< STRB Wt, [Rn, #imm12]
  Ldp,     ///< LDP  Rt, Rt2, [Rn, #imm7*size] with IndexMode
  Stp,     ///< STP  Rt, Rt2, [Rn, #imm7*size] with IndexMode
  LdrLit,  ///< LDR  Rt, label  (PC-relative literal load)

  // PC-relative address computation.
  Adr,  ///< ADR  Rd, label        (+-1 MiB)
  Adrp, ///< ADRP Rd, label        (+-4 GiB, 4 KiB pages)

  // Branches.
  B,     ///< B    label (imm26)
  Bl,    ///< BL   label (imm26)
  Bcond, ///< B.cond label (imm19)
  Cbz,   ///< CBZ  Rt, label (imm19)
  Cbnz,  ///< CBNZ Rt, label (imm19)
  Tbz,   ///< TBZ  Rt, #bit, label (imm14)
  Tbnz,  ///< TBNZ Rt, #bit, label (imm14)
  Br,    ///< BR   Rn
  Blr,   ///< BLR  Rn
  Ret,   ///< RET  Rn (defaults to x30)

  // System.
  Nop, ///< NOP
  Brk, ///< BRK #imm16
};

/// A decoded AArch64 instruction.
///
/// Field use depends on the opcode; unused fields are zero. \c Imm holds,
/// depending on the opcode: a zero-extended arithmetic immediate, a *byte*
/// offset for PC-relative instructions (relative to the instruction
/// address), a byte offset for memory operands, or the BRK payload.
struct Insn {
  Opcode Op = Opcode::Invalid;
  bool Is64 = true;      ///< sf bit: X (true) or W (false) operation width.
  uint8_t Rd = 0;        ///< Destination / transfer register (Rt).
  uint8_t Rn = 0;        ///< First source / base register.
  uint8_t Rm = 0;        ///< Second source register.
  uint8_t Ra = 0;        ///< Third source (MADD/MSUB) or Rt2 (LDP/STP).
  uint8_t Shift = 0;     ///< Shift amount (imm6) or hw*16 for MOVZ/N/K.
  uint8_t BitPos = 0;    ///< Tested bit for TBZ/TBNZ.
  Cond CC = Cond::AL;    ///< Condition for Bcond/Csel/Csinc.
  IndexMode Mode = IndexMode::Offset; ///< LDP/STP addressing mode.
  int64_t Imm = 0;       ///< See struct comment.

  bool operator==(const Insn &) const = default;
};

/// True for instructions that terminate a basic block (paper §3.2:
/// "terminator instructions ... such as jump and return instructions").
inline bool isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::B:
  case Opcode::Bcond:
  case Opcode::Cbz:
  case Opcode::Cbnz:
  case Opcode::Tbz:
  case Opcode::Tbnz:
  case Opcode::Br:
  case Opcode::Ret:
  case Opcode::Brk:
    return true;
  default:
    return false;
  }
}

/// True for call instructions (do not terminate a block; control returns).
inline bool isCall(Opcode Op) {
  return Op == Opcode::Bl || Op == Opcode::Blr;
}

/// True for instructions whose immediate is a PC-relative byte offset and
/// therefore needs repair whenever code moves (paper §3.3.4 lists b, bl,
/// cbz, cbnz, tbz, tbnz, adr, adrp and ldr; b.cond is the conditional form
/// of b).
inline bool isPcRelative(Opcode Op) {
  switch (Op) {
  case Opcode::B:
  case Opcode::Bl:
  case Opcode::Bcond:
  case Opcode::Cbz:
  case Opcode::Cbnz:
  case Opcode::Tbz:
  case Opcode::Tbnz:
  case Opcode::Adr:
  case Opcode::Adrp:
  case Opcode::LdrLit:
    return true;
  default:
    return false;
  }
}

/// True for the indirect-jump instruction (BR): methods containing one are
/// excluded from outlining (paper §3.2).
inline bool isIndirectJump(Opcode Op) { return Op == Opcode::Br; }

/// Instruction size: the subset is pure A64, fixed 4 bytes.
inline constexpr uint32_t InsnSize = 4;

} // namespace a64
} // namespace calibro

#endif // CALIBRO_AARCH64_INSN_H
