//===- aarch64/Encoder.h - AArch64 instruction encoder ----------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes Insn values into genuine 32-bit A64 machine words. Immediate
/// ranges are validated: encode() asserts on a violation, encodeChecked()
/// reports it as a recoverable error (used by tests and by the patcher,
/// where a branch pushed out of range is a real, reportable condition).
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_AARCH64_ENCODER_H
#define CALIBRO_AARCH64_ENCODER_H

#include "aarch64/Insn.h"
#include "support/Error.h"

namespace calibro {
namespace a64 {

/// Returns true (and no message) if \p I is encodable; otherwise a message
/// describing the violated constraint.
Error validate(const Insn &I);

/// Encodes \p I into its A64 machine word. Asserts that \p I is valid.
uint32_t encode(const Insn &I);

/// Encodes \p I, reporting range violations as errors instead of asserting.
Expected<uint32_t> encodeChecked(const Insn &I);

} // namespace a64
} // namespace calibro

#endif // CALIBRO_AARCH64_ENCODER_H
