//===- aarch64/PcRel.h - PC-relative target and patch math ------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arithmetic the linking-time outliner needs for PC-relative
/// instructions (paper §3.3.4): computing an instruction's absolute target
/// from its address, and re-encoding the instruction so that it points at a
/// target after code has moved. Works on both decoded Insn values and raw
/// machine words.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_AARCH64_PCREL_H
#define CALIBRO_AARCH64_PCREL_H

#include "aarch64/Insn.h"
#include "support/Error.h"

#include <optional>

namespace calibro {
namespace a64 {

/// Returns the absolute target of a PC-relative instruction at address
/// \p Pc, or std::nullopt if \p I is not PC-relative. For ADRP the target is
/// the (page-aligned) address the instruction materializes.
std::optional<uint64_t> pcRelTarget(const Insn &I, uint64_t Pc);

/// Rewrites \p I (assumed to sit at \p Pc) so that it targets
/// \p NewTarget. Fails when the displacement no longer fits the immediate
/// field. Non-PC-relative instructions are rejected.
Error retarget(Insn &I, uint64_t Pc, uint64_t NewTarget);

/// Word-level convenience: decode, retarget, re-encode. This is what the
/// binary patching step runs over the .text image.
Expected<uint32_t> retargetWord(uint32_t Word, uint64_t Pc,
                                uint64_t NewTarget);

} // namespace a64
} // namespace calibro

#endif // CALIBRO_AARCH64_PCREL_H
