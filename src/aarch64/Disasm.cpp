//===- aarch64/Disasm.cpp - Textual disassembly ---------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/Disasm.h"

#include "aarch64/PcRel.h"
#include "support/Compiler.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace calibro;
using namespace calibro::a64;

namespace {

const char *condName(Cond C) {
  switch (C) {
  case Cond::EQ:
    return "eq";
  case Cond::NE:
    return "ne";
  case Cond::HS:
    return "hs";
  case Cond::LO:
    return "lo";
  case Cond::MI:
    return "mi";
  case Cond::PL:
    return "pl";
  case Cond::VS:
    return "vs";
  case Cond::VC:
    return "vc";
  case Cond::HI:
    return "hi";
  case Cond::LS:
    return "ls";
  case Cond::GE:
    return "ge";
  case Cond::LT:
    return "lt";
  case Cond::GT:
    return "gt";
  case Cond::LE:
    return "le";
  case Cond::AL:
    return "al";
  }
  CALIBRO_UNREACHABLE("bad condition code");
}

std::string fmt(const char *Format, ...) {
  char Buf[160];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

/// Formats the branch offset operand, annotated with the target address when
/// the caller supplied the instruction's own address.
std::string branchOperand(const Insn &I, uint64_t Pc) {
  int64_t Off = I.Imm;
  std::string S =
      Off < 0 ? fmt("#-0x%" PRIx64, -Off) : fmt("#+0x%" PRIx64, Off);
  if (Pc != ~uint64_t(0)) {
    if (auto Target = pcRelTarget(I, Pc))
      S += fmt(" (addr 0x%" PRIx64 ")", *Target);
  }
  return S;
}

std::string memOperand(const Insn &I) {
  std::string Base = regName(I.Rn, /*Is64=*/true, /*SpContext=*/true);
  if (I.Imm == 0)
    return fmt("[%s]", Base.c_str());
  return fmt("[%s, #%" PRId64 "]", Base.c_str(), I.Imm);
}

std::string pairMemOperand(const Insn &I) {
  std::string Base = regName(I.Rn, /*Is64=*/true, /*SpContext=*/true);
  switch (I.Mode) {
  case IndexMode::Offset:
    if (I.Imm == 0)
      return fmt("[%s]", Base.c_str());
    return fmt("[%s, #%" PRId64 "]", Base.c_str(), I.Imm);
  case IndexMode::PreIndex:
    return fmt("[%s, #%" PRId64 "]!", Base.c_str(), I.Imm);
  case IndexMode::PostIndex:
    return fmt("[%s], #%" PRId64, Base.c_str(), I.Imm);
  }
  CALIBRO_UNREACHABLE("bad index mode");
}

std::string threeReg(const char *Mnemonic, const Insn &I) {
  std::string S = fmt("%s %s, %s, %s", Mnemonic,
                      regName(I.Rd, I.Is64).c_str(),
                      regName(I.Rn, I.Is64).c_str(),
                      regName(I.Rm, I.Is64).c_str());
  if (I.Shift != 0)
    S += fmt(", lsl #%u", I.Shift);
  return S;
}

std::string addSubImm(const char *Mnemonic, const Insn &I, bool SpOperands) {
  std::string S = fmt("%s %s, %s, #%" PRId64 " (%" PRId64 ")", Mnemonic,
                      regName(I.Rd, I.Is64, SpOperands).c_str(),
                      regName(I.Rn, I.Is64, SpOperands).c_str(),
                      I.Imm << (I.Shift == 12 ? 12 : 0),
                      I.Imm << (I.Shift == 12 ? 12 : 0));
  return S;
}

} // namespace

std::string a64::regName(uint8_t Reg, bool Is64, bool SpContext) {
  if (Reg == 31) {
    if (SpContext)
      return Is64 ? "sp" : "wsp";
    return Is64 ? "xzr" : "wzr";
  }
  return fmt("%c%u", Is64 ? 'x' : 'w', Reg);
}

std::string a64::toString(const Insn &I, uint64_t Pc) {
  switch (I.Op) {
  case Opcode::Invalid:
    return "<invalid>";

  case Opcode::AddImm: {
    // ADD with SP operands and #0 is the canonical `mov` alias; keep the raw
    // form for clarity (the paper's listings do too).
    int64_t V = I.Imm << (I.Shift == 12 ? 12 : 0);
    return fmt("add %s, %s, #0x%" PRIx64 " (%" PRId64 ")",
               regName(I.Rd, I.Is64, true).c_str(),
               regName(I.Rn, I.Is64, true).c_str(), V, V);
  }
  case Opcode::SubImm: {
    int64_t V = I.Imm << (I.Shift == 12 ? 12 : 0);
    return fmt("sub %s, %s, #0x%" PRIx64 " (%" PRId64 ")",
               regName(I.Rd, I.Is64, true).c_str(),
               regName(I.Rn, I.Is64, true).c_str(), V, V);
  }
  case Opcode::AddsImm:
    return addSubImm("adds", I, false);
  case Opcode::SubsImm:
    if (I.Rd == ZR)
      return fmt("cmp %s, #%" PRId64,
                 regName(I.Rn, I.Is64).c_str(),
                 I.Imm << (I.Shift == 12 ? 12 : 0));
    return addSubImm("subs", I, false);

  case Opcode::MovZ:
  case Opcode::MovN:
  case Opcode::MovK: {
    const char *M = I.Op == Opcode::MovZ
                        ? "movz"
                        : (I.Op == Opcode::MovN ? "movn" : "movk");
    if (I.Shift == 0)
      return fmt("%s %s, #0x%" PRIx64, M, regName(I.Rd, I.Is64).c_str(),
                 I.Imm);
    return fmt("%s %s, #0x%" PRIx64 ", lsl #%u", M,
               regName(I.Rd, I.Is64).c_str(), I.Imm, I.Shift);
  }

  case Opcode::AddReg:
    return threeReg("add", I);
  case Opcode::SubReg:
    return threeReg("sub", I);
  case Opcode::AddsReg:
    return threeReg("adds", I);
  case Opcode::SubsReg:
    if (I.Rd == ZR && I.Shift == 0)
      return fmt("cmp %s, %s", regName(I.Rn, I.Is64).c_str(),
                 regName(I.Rm, I.Is64).c_str());
    return threeReg("subs", I);
  case Opcode::AndReg:
    return threeReg("and", I);
  case Opcode::OrrReg:
    if (I.Rn == ZR && I.Shift == 0)
      return fmt("mov %s, %s", regName(I.Rd, I.Is64).c_str(),
                 regName(I.Rm, I.Is64).c_str());
    return threeReg("orr", I);
  case Opcode::EorReg:
    return threeReg("eor", I);
  case Opcode::AndsReg:
    if (I.Rd == ZR && I.Shift == 0)
      return fmt("tst %s, %s", regName(I.Rn, I.Is64).c_str(),
                 regName(I.Rm, I.Is64).c_str());
    return threeReg("ands", I);
  case Opcode::Lslv:
    return threeReg("lsl", I);
  case Opcode::Lsrv:
    return threeReg("lsr", I);
  case Opcode::Asrv:
    return threeReg("asr", I);

  case Opcode::Madd:
    if (I.Ra == ZR)
      return threeReg("mul", I);
    return fmt("madd %s, %s, %s, %s", regName(I.Rd, I.Is64).c_str(),
               regName(I.Rn, I.Is64).c_str(), regName(I.Rm, I.Is64).c_str(),
               regName(I.Ra, I.Is64).c_str());
  case Opcode::Msub:
    return fmt("msub %s, %s, %s, %s", regName(I.Rd, I.Is64).c_str(),
               regName(I.Rn, I.Is64).c_str(), regName(I.Rm, I.Is64).c_str(),
               regName(I.Ra, I.Is64).c_str());
  case Opcode::Sdiv:
    return threeReg("sdiv", I);
  case Opcode::Udiv:
    return threeReg("udiv", I);

  case Opcode::Csel:
    return fmt("csel %s, %s, %s, %s", regName(I.Rd, I.Is64).c_str(),
               regName(I.Rn, I.Is64).c_str(), regName(I.Rm, I.Is64).c_str(),
               condName(I.CC));
  case Opcode::Csinc:
    if (I.Rn == ZR && I.Rm == ZR)
      return fmt("cset %s, %s", regName(I.Rd, I.Is64).c_str(),
                 condName(invert(I.CC)));
    return fmt("csinc %s, %s, %s, %s", regName(I.Rd, I.Is64).c_str(),
               regName(I.Rn, I.Is64).c_str(), regName(I.Rm, I.Is64).c_str(),
               condName(I.CC));

  case Opcode::LdrImm:
    return fmt("ldr %s, %s", regName(I.Rd, I.Is64).c_str(),
               memOperand(I).c_str());
  case Opcode::StrImm:
    return fmt("str %s, %s", regName(I.Rd, I.Is64).c_str(),
               memOperand(I).c_str());
  case Opcode::LdrbImm:
    return fmt("ldrb %s, %s", regName(I.Rd, false).c_str(),
               memOperand(I).c_str());
  case Opcode::StrbImm:
    return fmt("strb %s, %s", regName(I.Rd, false).c_str(),
               memOperand(I).c_str());
  case Opcode::Ldp:
    return fmt("ldp %s, %s, %s", regName(I.Rd, I.Is64).c_str(),
               regName(I.Ra, I.Is64).c_str(), pairMemOperand(I).c_str());
  case Opcode::Stp:
    return fmt("stp %s, %s, %s", regName(I.Rd, I.Is64).c_str(),
               regName(I.Ra, I.Is64).c_str(), pairMemOperand(I).c_str());
  case Opcode::LdrLit:
    return fmt("ldr %s, %s", regName(I.Rd, I.Is64).c_str(),
               branchOperand(I, Pc).c_str());

  case Opcode::Adr:
    return fmt("adr %s, %s", regName(I.Rd, true).c_str(),
               branchOperand(I, Pc).c_str());
  case Opcode::Adrp:
    return fmt("adrp %s, %s", regName(I.Rd, true).c_str(),
               branchOperand(I, Pc).c_str());

  case Opcode::B:
    return fmt("b %s", branchOperand(I, Pc).c_str());
  case Opcode::Bl:
    return fmt("bl %s", branchOperand(I, Pc).c_str());
  case Opcode::Bcond:
    return fmt("b.%s %s", condName(I.CC), branchOperand(I, Pc).c_str());
  case Opcode::Cbz:
    return fmt("cbz %s, %s", regName(I.Rd, I.Is64).c_str(),
               branchOperand(I, Pc).c_str());
  case Opcode::Cbnz:
    return fmt("cbnz %s, %s", regName(I.Rd, I.Is64).c_str(),
               branchOperand(I, Pc).c_str());
  case Opcode::Tbz:
    return fmt("tbz %s, #%u, %s", regName(I.Rd, I.Is64).c_str(), I.BitPos,
               branchOperand(I, Pc).c_str());
  case Opcode::Tbnz:
    return fmt("tbnz %s, #%u, %s", regName(I.Rd, I.Is64).c_str(), I.BitPos,
               branchOperand(I, Pc).c_str());

  case Opcode::Br:
    return fmt("br %s", regName(I.Rn, true).c_str());
  case Opcode::Blr:
    return fmt("blr %s", regName(I.Rn, true).c_str());
  case Opcode::Ret:
    if (I.Rn == LR)
      return "ret";
    return fmt("ret %s", regName(I.Rn, true).c_str());

  case Opcode::Nop:
    return "nop";
  case Opcode::Brk:
    return fmt("brk #0x%" PRIx64, I.Imm);
  }
  CALIBRO_UNREACHABLE("unknown opcode in toString");
}
