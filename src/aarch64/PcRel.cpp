//===- aarch64/PcRel.cpp - PC-relative target and patch math --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/PcRel.h"

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"

using namespace calibro;
using namespace calibro::a64;

std::optional<uint64_t> a64::pcRelTarget(const Insn &I, uint64_t Pc) {
  if (!isPcRelative(I.Op))
    return std::nullopt;
  if (I.Op == Opcode::Adrp)
    return (Pc & ~uint64_t(0xfff)) + static_cast<uint64_t>(I.Imm);
  return Pc + static_cast<uint64_t>(I.Imm);
}

Error a64::retarget(Insn &I, uint64_t Pc, uint64_t NewTarget) {
  if (!isPcRelative(I.Op))
    return makeError("retarget on a non-PC-relative instruction");
  int64_t NewImm;
  if (I.Op == Opcode::Adrp) {
    NewImm = static_cast<int64_t>((NewTarget & ~uint64_t(0xfff)) -
                                  (Pc & ~uint64_t(0xfff)));
  } else {
    NewImm = static_cast<int64_t>(NewTarget - Pc);
  }
  Insn Patched = I;
  Patched.Imm = NewImm;
  if (auto E = validate(Patched))
    return E;
  I = Patched;
  return Error::success();
}

Expected<uint32_t> a64::retargetWord(uint32_t Word, uint64_t Pc,
                                     uint64_t NewTarget) {
  auto I = decode(Word);
  if (!I)
    return makeError("retargetWord: undecodable word");
  if (auto E = retarget(*I, Pc, NewTarget))
    return E;
  return encode(*I);
}
