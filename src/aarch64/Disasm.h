//===- aarch64/Disasm.h - Textual disassembly -------------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders Insn values as human-readable assembly, objdump-style. Used by
/// the OAT dumper, the Table-2 walkthrough example and test diagnostics.
/// PC-relative operands are printed with both the raw offset and, when the
/// instruction address is supplied, the resolved target address — matching
/// the paper's listing style: `cbz w0, #+0xc (addr 0x13832c)`.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_AARCH64_DISASM_H
#define CALIBRO_AARCH64_DISASM_H

#include "aarch64/Insn.h"

#include <string>

namespace calibro {
namespace a64 {

/// Renders the register name: x5/w5, sp/wsp, xzr/wzr.
std::string regName(uint8_t Reg, bool Is64, bool SpContext = false);

/// Renders \p I as assembly text. If \p Pc is provided, PC-relative operands
/// are annotated with the resolved absolute target.
std::string toString(const Insn &I, uint64_t Pc = ~uint64_t(0));

} // namespace a64
} // namespace calibro

#endif // CALIBRO_AARCH64_DISASM_H
