//===- aarch64/Decoder.cpp - AArch64 instruction decoder -----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"

#include "support/MathExtras.h"

using namespace calibro;
using namespace calibro::a64;

namespace {

bool matches(uint32_t Word, uint32_t Mask, uint32_t Value) {
  return (Word & Mask) == Value;
}

std::optional<Insn> decodeAddSubImm(uint32_t W) {
  Insn I;
  I.Is64 = (W >> 31) & 1;
  bool OpBit = (W >> 30) & 1;
  bool SBit = (W >> 29) & 1;
  I.Op = OpBit ? (SBit ? Opcode::SubsImm : Opcode::SubImm)
               : (SBit ? Opcode::AddsImm : Opcode::AddImm);
  I.Shift = ((W >> 22) & 1) ? 12 : 0;
  I.Imm = extractBits(W, 10, 12);
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeMovWide(uint32_t W) {
  uint32_t Opc = extractBits(W, 29, 2);
  if (Opc == 0b01)
    return std::nullopt; // Unallocated.
  Insn I;
  I.Is64 = (W >> 31) & 1;
  I.Op = Opc == 0b00 ? Opcode::MovN
                     : (Opc == 0b10 ? Opcode::MovZ : Opcode::MovK);
  uint32_t Hw = extractBits(W, 21, 2);
  if (!I.Is64 && Hw > 1)
    return std::nullopt;
  I.Shift = static_cast<uint8_t>(Hw * 16);
  I.Imm = extractBits(W, 5, 16);
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeAddSubReg(uint32_t W) {
  if (extractBits(W, 22, 2) != 0)
    return std::nullopt; // Only LSL shifts in the subset.
  Insn I;
  I.Is64 = (W >> 31) & 1;
  bool OpBit = (W >> 30) & 1;
  bool SBit = (W >> 29) & 1;
  I.Op = OpBit ? (SBit ? Opcode::SubsReg : Opcode::SubReg)
               : (SBit ? Opcode::AddsReg : Opcode::AddReg);
  I.Rm = extractBits(W, 16, 5);
  I.Shift = static_cast<uint8_t>(extractBits(W, 10, 6));
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  if (I.Shift >= (I.Is64 ? 64 : 32))
    return std::nullopt;
  return I;
}

std::optional<Insn> decodeLogicalReg(uint32_t W) {
  if (extractBits(W, 22, 2) != 0)
    return std::nullopt; // Only LSL shifts in the subset.
  Insn I;
  I.Is64 = (W >> 31) & 1;
  switch (extractBits(W, 29, 2)) {
  case 0b00:
    I.Op = Opcode::AndReg;
    break;
  case 0b01:
    I.Op = Opcode::OrrReg;
    break;
  case 0b10:
    I.Op = Opcode::EorReg;
    break;
  case 0b11:
    I.Op = Opcode::AndsReg;
    break;
  }
  I.Rm = extractBits(W, 16, 5);
  I.Shift = static_cast<uint8_t>(extractBits(W, 10, 6));
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  if (I.Shift >= (I.Is64 ? 64 : 32))
    return std::nullopt;
  return I;
}

std::optional<Insn> decodeDp2Src(uint32_t W) {
  Insn I;
  I.Is64 = (W >> 31) & 1;
  switch (extractBits(W, 10, 6)) {
  case 0b000010:
    I.Op = Opcode::Udiv;
    break;
  case 0b000011:
    I.Op = Opcode::Sdiv;
    break;
  case 0b001000:
    I.Op = Opcode::Lslv;
    break;
  case 0b001001:
    I.Op = Opcode::Lsrv;
    break;
  case 0b001010:
    I.Op = Opcode::Asrv;
    break;
  default:
    return std::nullopt;
  }
  I.Rm = extractBits(W, 16, 5);
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeDp3Src(uint32_t W) {
  Insn I;
  I.Is64 = (W >> 31) & 1;
  I.Op = ((W >> 15) & 1) ? Opcode::Msub : Opcode::Madd;
  I.Rm = extractBits(W, 16, 5);
  I.Ra = extractBits(W, 10, 5);
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeCondSelect(uint32_t W) {
  Insn I;
  I.Is64 = (W >> 31) & 1;
  switch (extractBits(W, 10, 2)) {
  case 0b00:
    I.Op = Opcode::Csel;
    break;
  case 0b01:
    I.Op = Opcode::Csinc;
    break;
  default:
    return std::nullopt;
  }
  I.Rm = extractBits(W, 16, 5);
  I.CC = static_cast<Cond>(extractBits(W, 12, 4));
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeLoadStoreUImm(uint32_t W) {
  uint32_t Size = extractBits(W, 30, 2);
  uint32_t Opc = extractBits(W, 22, 2);
  if (Opc > 0b01)
    return std::nullopt; // No sign-extending loads in the subset.
  bool IsLoad = Opc == 0b01;
  Insn I;
  switch (Size) {
  case 0b00:
    I.Op = IsLoad ? Opcode::LdrbImm : Opcode::StrbImm;
    I.Is64 = false;
    I.Imm = extractBits(W, 10, 12);
    break;
  case 0b10:
  case 0b11:
    I.Op = IsLoad ? Opcode::LdrImm : Opcode::StrImm;
    I.Is64 = Size == 0b11;
    I.Imm = static_cast<int64_t>(extractBits(W, 10, 12)) << Size;
    break;
  default:
    return std::nullopt; // 16-bit accesses are outside the subset.
  }
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeLdpStp(uint32_t W) {
  uint32_t Opc = extractBits(W, 30, 2);
  if (Opc != 0b00 && Opc != 0b10)
    return std::nullopt;
  Insn I;
  I.Is64 = Opc == 0b10;
  switch (extractBits(W, 23, 3)) {
  case 0b001:
    I.Mode = IndexMode::PostIndex;
    break;
  case 0b010:
    I.Mode = IndexMode::Offset;
    break;
  case 0b011:
    I.Mode = IndexMode::PreIndex;
    break;
  default:
    return std::nullopt;
  }
  I.Op = ((W >> 22) & 1) ? Opcode::Ldp : Opcode::Stp;
  unsigned Scale = I.Is64 ? 3 : 2;
  I.Imm = signExtend(extractBits(W, 15, 7), 7) << Scale;
  I.Ra = extractBits(W, 10, 5);
  I.Rn = extractBits(W, 5, 5);
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeLdrLit(uint32_t W) {
  uint32_t Opc = extractBits(W, 30, 2);
  if (Opc > 0b01)
    return std::nullopt;
  Insn I;
  I.Op = Opcode::LdrLit;
  I.Is64 = Opc == 0b01;
  I.Imm = signExtend(extractBits(W, 5, 19), 19) << 2;
  I.Rd = extractBits(W, 0, 5);
  return I;
}

std::optional<Insn> decodeAdr(uint32_t W) {
  Insn I;
  bool IsAdrp = (W >> 31) & 1;
  I.Op = IsAdrp ? Opcode::Adrp : Opcode::Adr;
  uint32_t ImmLo = extractBits(W, 29, 2);
  uint32_t ImmHi = extractBits(W, 5, 19);
  int64_t Raw = signExtend((static_cast<uint64_t>(ImmHi) << 2) | ImmLo, 21);
  I.Imm = IsAdrp ? (Raw << 12) : Raw;
  I.Rd = extractBits(W, 0, 5);
  return I;
}

} // namespace

std::optional<Insn> a64::decode(uint32_t W) {
  // System and register-branch instructions: exact patterns first.
  if (W == 0xD503201Fu)
    return Insn{.Op = Opcode::Nop};
  if (matches(W, 0xFFFFFC1F, 0xD61F0000)) {
    Insn I{.Op = Opcode::Br};
    I.Rn = extractBits(W, 5, 5);
    return I;
  }
  if (matches(W, 0xFFFFFC1F, 0xD63F0000)) {
    Insn I{.Op = Opcode::Blr};
    I.Rn = extractBits(W, 5, 5);
    return I;
  }
  if (matches(W, 0xFFFFFC1F, 0xD65F0000)) {
    Insn I{.Op = Opcode::Ret};
    I.Rn = extractBits(W, 5, 5);
    return I;
  }
  if (matches(W, 0xFFE0001F, 0xD4200000)) {
    Insn I{.Op = Opcode::Brk};
    I.Imm = extractBits(W, 5, 16);
    return I;
  }

  // Immediate branches.
  if (matches(W, 0x7C000000, 0x14000000)) {
    Insn I;
    I.Op = (W >> 31) ? Opcode::Bl : Opcode::B;
    I.Imm = signExtend(extractBits(W, 0, 26), 26) << 2;
    return I;
  }
  if (matches(W, 0xFF000010, 0x54000000)) {
    Insn I{.Op = Opcode::Bcond};
    I.CC = static_cast<Cond>(extractBits(W, 0, 4));
    I.Imm = signExtend(extractBits(W, 5, 19), 19) << 2;
    return I;
  }
  if (matches(W, 0x7E000000, 0x34000000)) {
    Insn I;
    I.Op = ((W >> 24) & 1) ? Opcode::Cbnz : Opcode::Cbz;
    I.Is64 = (W >> 31) & 1;
    I.Imm = signExtend(extractBits(W, 5, 19), 19) << 2;
    I.Rd = extractBits(W, 0, 5);
    return I;
  }
  if (matches(W, 0x7E000000, 0x36000000)) {
    Insn I;
    I.Op = ((W >> 24) & 1) ? Opcode::Tbnz : Opcode::Tbz;
    I.BitPos =
        static_cast<uint8_t>((extractBits(W, 31, 1) << 5) | extractBits(W, 19, 5));
    I.Is64 = I.BitPos >= 32;
    I.Imm = signExtend(extractBits(W, 5, 14), 14) << 2;
    I.Rd = extractBits(W, 0, 5);
    return I;
  }

  // PC-relative address computation.
  if (matches(W, 0x1F000000, 0x10000000))
    return decodeAdr(W);

  // Data-processing, immediate.
  if (matches(W, 0x1F800000, 0x11000000))
    return decodeAddSubImm(W);
  if (matches(W, 0x1F800000, 0x12800000))
    return decodeMovWide(W);

  // Data-processing, register.
  if (matches(W, 0x1F200000, 0x0B000000))
    return decodeAddSubReg(W);
  if (matches(W, 0x1F200000, 0x0A000000))
    return decodeLogicalReg(W);
  if (matches(W, 0x7FE00000, 0x1AC00000))
    return decodeDp2Src(W);
  if (matches(W, 0x7FE00000, 0x1B000000))
    return decodeDp3Src(W);
  if (matches(W, 0x7FE00000, 0x1A800000))
    return decodeCondSelect(W);

  // Loads and stores.
  if (matches(W, 0x3F000000, 0x39000000))
    return decodeLoadStoreUImm(W);
  if (matches(W, 0x3C000000, 0x28000000))
    return decodeLdpStp(W);
  if (matches(W, 0x3F000000, 0x18000000))
    return decodeLdrLit(W);

  return std::nullopt;
}
