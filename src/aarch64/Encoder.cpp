//===- aarch64/Encoder.cpp - AArch64 instruction encoder -----------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/Encoder.h"

#include "support/Compiler.h"
#include "support/MathExtras.h"

#include <string>

using namespace calibro;
using namespace calibro::a64;

namespace {

/// Byte scale (log2) of a 32/64-bit scalar memory access.
unsigned scaleOf(bool Is64) { return Is64 ? 3 : 2; }

std::string rangeMsg(const char *What) {
  return std::string("immediate out of range for ") + What;
}

/// Validation result for one instruction; empty string means OK.
std::string checkImpl(const Insn &I) {
  switch (I.Op) {
  case Opcode::Invalid:
    return "cannot encode Opcode::Invalid";

  case Opcode::AddImm:
  case Opcode::SubImm:
  case Opcode::AddsImm:
  case Opcode::SubsImm:
    if (!isUInt<12>(static_cast<uint64_t>(I.Imm)))
      return rangeMsg("add/sub imm12");
    if (I.Shift != 0 && I.Shift != 12)
      return "add/sub immediate shift must be 0 or 12";
    return {};

  case Opcode::MovZ:
  case Opcode::MovN:
  case Opcode::MovK:
    if (!isUInt<16>(static_cast<uint64_t>(I.Imm)))
      return rangeMsg("mov imm16");
    if (I.Shift % 16 != 0 || I.Shift > (I.Is64 ? 48 : 16))
      return "mov wide shift must be 0/16/32/48 (0/16 for W)";
    return {};

  case Opcode::AddReg:
  case Opcode::SubReg:
  case Opcode::AddsReg:
  case Opcode::SubsReg:
  case Opcode::AndReg:
  case Opcode::OrrReg:
  case Opcode::EorReg:
  case Opcode::AndsReg:
    if (I.Shift >= (I.Is64 ? 64 : 32))
      return "register shift amount out of range";
    return {};

  case Opcode::Lslv:
  case Opcode::Lsrv:
  case Opcode::Asrv:
  case Opcode::Madd:
  case Opcode::Msub:
  case Opcode::Sdiv:
  case Opcode::Udiv:
  case Opcode::Csel:
  case Opcode::Csinc:
    return {};

  case Opcode::LdrImm:
  case Opcode::StrImm: {
    unsigned Scale = scaleOf(I.Is64);
    if (I.Imm < 0 || (I.Imm & ((1 << Scale) - 1)) != 0 ||
        !isUInt<12>(static_cast<uint64_t>(I.Imm) >> Scale))
      return rangeMsg("ldr/str scaled imm12");
    return {};
  }

  case Opcode::LdrbImm:
  case Opcode::StrbImm:
    if (I.Imm < 0 || !isUInt<12>(static_cast<uint64_t>(I.Imm)))
      return rangeMsg("ldrb/strb imm12");
    return {};

  case Opcode::Ldp:
  case Opcode::Stp: {
    unsigned Scale = scaleOf(I.Is64);
    if (!isShiftedInt<7, 3>(I.Imm) && I.Is64)
      return rangeMsg("ldp/stp scaled imm7");
    if (!I.Is64 && !isShiftedInt<7, 2>(I.Imm))
      return rangeMsg("ldp/stp scaled imm7");
    (void)Scale;
    return {};
  }

  case Opcode::LdrLit:
    if (!isShiftedInt<19, 2>(I.Imm))
      return rangeMsg("ldr literal imm19");
    return {};

  case Opcode::Adr:
    if (!isInt<21>(I.Imm))
      return rangeMsg("adr imm21");
    return {};

  case Opcode::Adrp:
    if ((I.Imm & 0xfff) != 0 || !isInt<33>(I.Imm))
      return rangeMsg("adrp page imm21");
    return {};

  case Opcode::B:
  case Opcode::Bl:
    if (!isShiftedInt<26, 2>(I.Imm))
      return rangeMsg("b/bl imm26");
    return {};

  case Opcode::Bcond:
  case Opcode::Cbz:
  case Opcode::Cbnz:
    if (!isShiftedInt<19, 2>(I.Imm))
      return rangeMsg("imm19 branch");
    return {};

  case Opcode::Tbz:
  case Opcode::Tbnz:
    if (!isShiftedInt<14, 2>(I.Imm))
      return rangeMsg("tbz/tbnz imm14");
    if (I.BitPos >= 64)
      return "tbz/tbnz bit position out of range";
    // Canonical form: the register width is implied by the tested bit, so a
    // decode(encode(I)) round trip reproduces I exactly.
    if (I.Is64 != (I.BitPos >= 32))
      return "tbz/tbnz width must match tested bit (Is64 iff bit >= 32)";
    return {};

  case Opcode::Br:
  case Opcode::Blr:
  case Opcode::Ret:
  case Opcode::Nop:
    return {};

  case Opcode::Brk:
    if (!isUInt<16>(static_cast<uint64_t>(I.Imm)))
      return rangeMsg("brk imm16");
    return {};
  }
  CALIBRO_UNREACHABLE("unknown opcode in checkImpl");
}

uint32_t sf(const Insn &I) { return I.Is64 ? (1u << 31) : 0; }

uint32_t encodeAddSubImm(const Insn &I, uint32_t OpBit, uint32_t SBit) {
  uint32_t W = sf(I) | (OpBit << 30) | (SBit << 29) | (0b100010u << 23);
  if (I.Shift == 12)
    W |= 1u << 22;
  W |= static_cast<uint32_t>(I.Imm) << 10;
  W |= uint32_t(I.Rn) << 5;
  W |= I.Rd;
  return W;
}

uint32_t encodeAddSubReg(const Insn &I, uint32_t OpBit, uint32_t SBit) {
  return sf(I) | (OpBit << 30) | (SBit << 29) | (0b01011u << 24) |
         (uint32_t(I.Rm) << 16) | (uint32_t(I.Shift) << 10) |
         (uint32_t(I.Rn) << 5) | I.Rd;
}

uint32_t encodeLogicalReg(const Insn &I, uint32_t Opc) {
  return sf(I) | (Opc << 29) | (0b01010u << 24) | (uint32_t(I.Rm) << 16) |
         (uint32_t(I.Shift) << 10) | (uint32_t(I.Rn) << 5) | I.Rd;
}

uint32_t encodeMovWide(const Insn &I, uint32_t Opc) {
  uint32_t Hw = I.Shift / 16;
  return sf(I) | (Opc << 29) | (0b100101u << 23) | (Hw << 21) |
         (static_cast<uint32_t>(I.Imm) << 5) | I.Rd;
}

uint32_t encodeDp2Src(const Insn &I, uint32_t SubOp) {
  return sf(I) | (0b11010110u << 21) | (uint32_t(I.Rm) << 16) |
         (SubOp << 10) | (uint32_t(I.Rn) << 5) | I.Rd;
}

uint32_t encodeDp3Src(const Insn &I, uint32_t O0) {
  return sf(I) | (0b11011u << 24) | (uint32_t(I.Rm) << 16) | (O0 << 15) |
         (uint32_t(I.Ra) << 10) | (uint32_t(I.Rn) << 5) | I.Rd;
}

uint32_t encodeCondSelect(const Insn &I, uint32_t Op2) {
  return sf(I) | (0b11010100u << 21) | (uint32_t(I.Rm) << 16) |
         (static_cast<uint32_t>(I.CC) << 12) | (Op2 << 10) |
         (uint32_t(I.Rn) << 5) | I.Rd;
}

uint32_t encodeLoadStoreUImm(const Insn &I, uint32_t Size, uint32_t Opc) {
  uint32_t Imm12 = static_cast<uint32_t>(I.Imm) >> Size;
  return (Size << 30) | (0b111u << 27) | (0b01u << 24) | (Opc << 22) |
         (Imm12 << 10) | (uint32_t(I.Rn) << 5) | I.Rd;
}

uint32_t encodeLdpStp(const Insn &I, bool IsLoad) {
  uint32_t Opc = I.Is64 ? 0b10u : 0b00u;
  uint32_t ModeBits = 0b010;
  switch (I.Mode) {
  case IndexMode::Offset:
    ModeBits = 0b010;
    break;
  case IndexMode::PreIndex:
    ModeBits = 0b011;
    break;
  case IndexMode::PostIndex:
    ModeBits = 0b001;
    break;
  }
  uint32_t Imm7 =
      static_cast<uint32_t>((I.Imm >> scaleOf(I.Is64)) & 0x7f);
  return (Opc << 30) | (0b101u << 27) | (ModeBits << 23) |
         ((IsLoad ? 1u : 0u) << 22) | (Imm7 << 15) | (uint32_t(I.Ra) << 10) |
         (uint32_t(I.Rn) << 5) | I.Rd;
}

uint32_t encodeImm19Branch(const Insn &I, uint32_t Base) {
  uint32_t Imm19 = static_cast<uint32_t>((I.Imm >> 2) & 0x7ffff);
  return Base | (Imm19 << 5);
}

} // namespace

Error a64::validate(const Insn &I) {
  std::string Msg = checkImpl(I);
  if (Msg.empty())
    return Error::success();
  return makeError(Msg);
}

Expected<uint32_t> a64::encodeChecked(const Insn &I) {
  if (auto E = validate(I))
    return E;
  return encode(I);
}

uint32_t a64::encode(const Insn &I) {
  assert(checkImpl(I).empty() && "encoding an invalid instruction");
  switch (I.Op) {
  case Opcode::Invalid:
    break;

  case Opcode::AddImm:
    return encodeAddSubImm(I, /*OpBit=*/0, /*SBit=*/0);
  case Opcode::SubImm:
    return encodeAddSubImm(I, 1, 0);
  case Opcode::AddsImm:
    return encodeAddSubImm(I, 0, 1);
  case Opcode::SubsImm:
    return encodeAddSubImm(I, 1, 1);

  case Opcode::MovN:
    return encodeMovWide(I, 0b00);
  case Opcode::MovZ:
    return encodeMovWide(I, 0b10);
  case Opcode::MovK:
    return encodeMovWide(I, 0b11);

  case Opcode::AddReg:
    return encodeAddSubReg(I, 0, 0);
  case Opcode::SubReg:
    return encodeAddSubReg(I, 1, 0);
  case Opcode::AddsReg:
    return encodeAddSubReg(I, 0, 1);
  case Opcode::SubsReg:
    return encodeAddSubReg(I, 1, 1);

  case Opcode::AndReg:
    return encodeLogicalReg(I, 0b00);
  case Opcode::OrrReg:
    return encodeLogicalReg(I, 0b01);
  case Opcode::EorReg:
    return encodeLogicalReg(I, 0b10);
  case Opcode::AndsReg:
    return encodeLogicalReg(I, 0b11);

  case Opcode::Udiv:
    return encodeDp2Src(I, 0b000010);
  case Opcode::Sdiv:
    return encodeDp2Src(I, 0b000011);
  case Opcode::Lslv:
    return encodeDp2Src(I, 0b001000);
  case Opcode::Lsrv:
    return encodeDp2Src(I, 0b001001);
  case Opcode::Asrv:
    return encodeDp2Src(I, 0b001010);

  case Opcode::Madd:
    return encodeDp3Src(I, 0);
  case Opcode::Msub:
    return encodeDp3Src(I, 1);

  case Opcode::Csel:
    return encodeCondSelect(I, 0b00);
  case Opcode::Csinc:
    return encodeCondSelect(I, 0b01);

  case Opcode::LdrImm:
    return encodeLoadStoreUImm(I, I.Is64 ? 0b11 : 0b10, 0b01);
  case Opcode::StrImm:
    return encodeLoadStoreUImm(I, I.Is64 ? 0b11 : 0b10, 0b00);
  case Opcode::LdrbImm:
    return encodeLoadStoreUImm(I, 0b00, 0b01);
  case Opcode::StrbImm:
    return encodeLoadStoreUImm(I, 0b00, 0b00);

  case Opcode::Ldp:
    return encodeLdpStp(I, /*IsLoad=*/true);
  case Opcode::Stp:
    return encodeLdpStp(I, /*IsLoad=*/false);

  case Opcode::LdrLit: {
    uint32_t Opc = I.Is64 ? 0b01u : 0b00u;
    uint32_t Imm19 = static_cast<uint32_t>((I.Imm >> 2) & 0x7ffff);
    return (Opc << 30) | (0b011u << 27) | (Imm19 << 5) | I.Rd;
  }

  case Opcode::Adr:
  case Opcode::Adrp: {
    bool IsAdrp = I.Op == Opcode::Adrp;
    int64_t Raw = IsAdrp ? (I.Imm >> 12) : I.Imm;
    uint32_t ImmLo = static_cast<uint32_t>(Raw & 0x3);
    uint32_t ImmHi = static_cast<uint32_t>((Raw >> 2) & 0x7ffff);
    return (IsAdrp ? (1u << 31) : 0u) | (ImmLo << 29) | (0b10000u << 24) |
           (ImmHi << 5) | I.Rd;
  }

  case Opcode::B:
    return 0x14000000u | (static_cast<uint32_t>(I.Imm >> 2) & 0x3ffffff);
  case Opcode::Bl:
    return 0x94000000u | (static_cast<uint32_t>(I.Imm >> 2) & 0x3ffffff);

  case Opcode::Bcond:
    return encodeImm19Branch(I, 0x54000000u) |
           static_cast<uint32_t>(I.CC);
  case Opcode::Cbz:
    return encodeImm19Branch(I, sf(I) | 0x34000000u) | I.Rd;
  case Opcode::Cbnz:
    return encodeImm19Branch(I, sf(I) | 0x35000000u) | I.Rd;

  case Opcode::Tbz:
  case Opcode::Tbnz: {
    uint32_t Base = I.Op == Opcode::Tbz ? 0x36000000u : 0x37000000u;
    uint32_t B5 = (I.BitPos >> 5) & 1;
    uint32_t B40 = I.BitPos & 0x1f;
    uint32_t Imm14 = static_cast<uint32_t>((I.Imm >> 2) & 0x3fff);
    return Base | (B5 << 31) | (B40 << 19) | (Imm14 << 5) | I.Rd;
  }

  case Opcode::Br:
    return 0xD61F0000u | (uint32_t(I.Rn) << 5);
  case Opcode::Blr:
    return 0xD63F0000u | (uint32_t(I.Rn) << 5);
  case Opcode::Ret:
    return 0xD65F0000u | (uint32_t(I.Rn) << 5);

  case Opcode::Nop:
    return 0xD503201Fu;
  case Opcode::Brk:
    return 0xD4200000u | (static_cast<uint32_t>(I.Imm) << 5);
  }
  CALIBRO_UNREACHABLE("unknown opcode in encode");
}
