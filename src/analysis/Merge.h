//===- analysis/Merge.h - Optimistic global method merging ------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global method merging over compiled bodies, run after the reachability
/// GC and before the link-time outliner ("optimistic function merging",
/// Lee et al.). Two tiers:
///
///  * IDENTICAL merge: methods whose code, side info, stack map and
///    relocations are all equal collapse to one body. The canonical method
///    (lowest index) keeps its body; the others become ALIASES — their OAT
///    entries point at the canonical code. Because dispatch goes through
///    the per-method table slot, no call site needs patching.
///  * THUNK merge: methods that are byte-identical except for mov-immediate
///    words confined to a prefix [0, D) keep that prefix (their own
///    immediates) and replace the shared tail with a single `b` into the
///    canonical body at byte offset D*4 (a RelocKind::MergedBody
///    relocation bound by the linker).
///
/// Merge legality for thunks is strict: equal sizes, side info, stack maps
/// and relocations; every differing word decodes as MOVZ/MOVN/MOVK to the
/// same register and width; no PC-relative instruction, embedded-data
/// range or slow-path range may cross the cut in a way that would make the
/// variant execute the canonical prefix (wrong immediates) or read the
/// thunk's branch word as data. Canonical bodies of thunks are pinned out
/// of outlining so the branch-target offset stays valid.
///
/// Planning is single-threaded and index-ordered, so the plan — like the
/// GC verdict — is independent of the build's thread count.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_ANALYSIS_MERGE_H
#define CALIBRO_ANALYSIS_MERGE_H

#include "codegen/CompiledMethod.h"

#include <cstdint>
#include <vector>

namespace calibro {
namespace analysis {

/// Options for the global method merger.
struct MergeOptions {
  bool EnableThunks = true;
  /// A thunk must save at least this many words (tail length minus the
  /// branch word) to be worth the extra OAT entry metadata.
  uint32_t MinTailWords = 2;
};

/// One identical-body merge: \p MethodIdx's OAT entry aliases the body of
/// \p CanonMethodIdx.
struct MergeAlias {
  uint32_t MethodIdx = 0;
  uint32_t CanonMethodIdx = 0;
};

/// One thunk merge: \p MethodIdx keeps words [0, EntryByteOff/4) and then
/// branches to CanonMethodIdx's body at byte \p EntryByteOff.
struct MergeThunk {
  uint32_t MethodIdx = 0;
  uint32_t CanonMethodIdx = 0;
  uint32_t EntryByteOff = 0;
};

/// The merge plan over one compiled-method set.
struct MergePlan {
  std::vector<MergeAlias> Aliases; ///< Sorted by MethodIdx.
  std::vector<MergeThunk> Thunks;  ///< Sorted by MethodIdx.
  /// Methods that must be excluded from outlining: thunk canonicals (their
  /// tail offset must stay fixed) and the thunks themselves (their side
  /// info intentionally under-describes the branch word). Sorted.
  std::vector<uint32_t> Pinned;
  uint64_t SavedBytes = 0; ///< Alias bodies + thunk tail bytes dropped.
};

/// Plans merges over \p Methods (the post-GC set). Deterministic: bucketing
/// keys on content digests, canonicals are the lowest method index per
/// bucket, and all output vectors are index-sorted.
MergePlan planMerge(const std::vector<codegen::CompiledMethod> &Methods,
                    const MergeOptions &Opts = {});

/// Rewrites \p M in place into a thunk that keeps words [0, DWords) and
/// branches into its canonical body: code becomes the prefix plus one `b`
/// placeholder carrying a MergedBody relocation with TargetId
/// \p ThunkTableIdx; side info, stack map and relocations are trimmed to
/// the prefix. planMerge has already proven this legal.
void makeThunk(codegen::CompiledMethod &M, uint32_t DWords,
               uint32_t ThunkTableIdx);

} // namespace analysis
} // namespace calibro

#endif // CALIBRO_ANALYSIS_MERGE_H
