//===- analysis/CallGraph.h - Closed-world call graph + GC ------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-analysis front-end of the link stage: a conservative
/// whole-app call graph and the entrypoint-rooted reachability pass that
/// drives dead-method elimination before outlining (ROADMAP item 4, in the
/// spirit of libosuction's closed-world ELF pruning).
///
/// The graph has two edge sources:
///
///  * DEX edges: every InvokeStatic/InvokeVirtual site contributes an edge
///    to its exact callee index. Virtual sites additionally fan out to
///    every same-selector method on a subtype of the receiver's class
///    (class-hierarchy closure over dex::App::Hierarchy) — the conservative
///    over-approximation that keeps overriding implementations alive.
///  * BINARY edges: the compiled code's method-table resolve sequences are
///    pattern-matched back to callee indices (side-info cross-reference).
///    On a clean build these are a subset of the dex edges; a binary edge
///    with no dex counterpart is an anomaly, repaired in lenient mode and
///    fatal under --strict-gc.
///
/// Reachability is a deterministic worklist BFS from the sorted entrypoint
/// set; its live/dead verdict is independent of thread count because the
/// graph is built single-threaded from already-deterministic inputs.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_ANALYSIS_CALLGRAPH_H
#define CALIBRO_ANALYSIS_CALLGRAPH_H

#include "codegen/CompiledMethod.h"
#include "dex/Dex.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace calibro {
namespace analysis {

/// Options for call-graph construction and binary-edge binding.
struct CallGraphOptions {
  /// Fail fast on any anomaly instead of recording and repairing it.
  bool Strict = false;
};

/// The ways a call graph can disagree with itself or with the binary.
enum class AnomalyKind : uint8_t {
  EntrypointOutOfBounds, ///< A declared entrypoint names no method.
  CalleeOutOfBounds,     ///< An edge target exceeds the method count.
  UnparseableName,       ///< A method name defeats class/selector parsing.
  BinaryOnlyCallee,      ///< A binary resolve site with no dex edge.
};

/// Returns the identifier-style name of \p K.
const char *anomalyKindName(AnomalyKind K);

/// One recorded call-graph anomaly.
struct Anomaly {
  AnomalyKind Kind;
  uint32_t MethodIdx = 0; ///< The offending site (or entrypoint value).
  std::string Detail;
};

/// The whole-app call graph. Node ids are global dex method indices.
struct CallGraph {
  uint32_t NumMethods = 0;
  std::vector<uint8_t> Present;  ///< Present[I]: a method with idx I exists.
  std::vector<uint32_t> Entrypoints;        ///< Sorted, unique, in bounds.
  std::vector<std::vector<uint32_t>> Succ;  ///< Sorted, unique per node.
  std::vector<Anomaly> Anomalies;

  /// Total directed edge count.
  uint64_t numEdges() const {
    uint64_t N = 0;
    for (const auto &S : Succ)
      N += S.size();
    return N;
  }

  /// Inserts From -> To keeping Succ[From] sorted and unique. Returns true
  /// when the edge is new. Out-of-bounds endpoints are ignored.
  bool addEdge(uint32_t From, uint32_t To);

  /// Removes From -> To if present. Returns true when an edge was removed.
  bool dropEdge(uint32_t From, uint32_t To);
};

/// Builds the dex-level call graph of \p A (invoke edges + class-hierarchy
/// closure for virtual sites). In strict mode any anomaly is an error; in
/// lenient mode anomalies are recorded on the graph and construction
/// proceeds conservatively.
Expected<CallGraph> buildCallGraph(const dex::App &A,
                                   const CallGraphOptions &Opts = {});

/// Result counters of bindBinaryEdges.
struct BindStats {
  uint64_t SitesMatched = 0;  ///< Resolve sequences found in method code.
  uint64_t RepairedEdges = 0; ///< Binary edges missing from the dex graph.
  uint64_t NewAnomalies = 0;  ///< Anomalies recorded by this pass.
};

/// Cross-references the compiled methods against \p G: pattern-matches the
/// method-table resolve sequence (ldr x0, [x19]; add?; ldr x0, [x0, #off])
/// in every method body, skipping embedded-data words, and checks each
/// matched callee against the dex edges. Missing edges are repaired in
/// lenient mode (recorded as BinaryOnlyCallee anomalies) and fatal in
/// strict mode. Binding is deterministic: methods are scanned in order.
Expected<BindStats>
bindBinaryEdges(CallGraph &G,
                const std::vector<codegen::CompiledMethod> &Methods,
                bool Strict);

/// The verdict of the reachability pass.
struct Reachability {
  std::vector<uint8_t> Live;  ///< Live[I]: method I is entrypoint-reachable.
  std::vector<uint32_t> Dead; ///< Present but unreachable, sorted ascending.
  uint32_t LiveCount = 0;
};

/// Entrypoint-rooted worklist BFS over \p G. Deterministic: roots are the
/// sorted entrypoint set and successors are visited in sorted order.
/// Out-of-bounds successors (possible only on mutated graphs) are skipped.
Reachability computeReachability(const CallGraph &G);

/// Splits a dex method name "Lpkg/Class;->selector" into its class and
/// selector parts, stripping any "!jni" suffix from the selector. Returns
/// false (leaving the outputs empty) when the name does not parse.
bool splitMethodName(const std::string &Name, std::string &Class,
                     std::string &Selector);

} // namespace analysis
} // namespace calibro

#endif // CALIBRO_ANALYSIS_CALLGRAPH_H
