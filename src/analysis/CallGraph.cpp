//===- analysis/CallGraph.cpp - Closed-world call graph + GC --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "aarch64/Decoder.h"
#include "codegen/ArtAbi.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace calibro;
using namespace calibro::analysis;

const char *analysis::anomalyKindName(AnomalyKind K) {
  switch (K) {
  case AnomalyKind::EntrypointOutOfBounds:
    return "entrypoint_out_of_bounds";
  case AnomalyKind::CalleeOutOfBounds:
    return "callee_out_of_bounds";
  case AnomalyKind::UnparseableName:
    return "unparseable_name";
  case AnomalyKind::BinaryOnlyCallee:
    return "binary_only_callee";
  }
  CALIBRO_UNREACHABLE("unknown anomaly kind");
}

bool CallGraph::addEdge(uint32_t From, uint32_t To) {
  if (From >= NumMethods || To >= NumMethods)
    return false;
  auto &S = Succ[From];
  auto It = std::lower_bound(S.begin(), S.end(), To);
  if (It != S.end() && *It == To)
    return false;
  S.insert(It, To);
  return true;
}

bool CallGraph::dropEdge(uint32_t From, uint32_t To) {
  if (From >= NumMethods)
    return false;
  auto &S = Succ[From];
  auto It = std::lower_bound(S.begin(), S.end(), To);
  if (It == S.end() || *It != To)
    return false;
  S.erase(It);
  return true;
}

bool analysis::splitMethodName(const std::string &Name, std::string &Class,
                               std::string &Selector) {
  Class.clear();
  Selector.clear();
  std::size_t Arrow = Name.find("->");
  if (Arrow == std::string::npos || Arrow == 0 || Arrow + 2 >= Name.size())
    return false;
  std::string C = Name.substr(0, Arrow);
  std::string S = Name.substr(Arrow + 2);
  if (C.front() != 'L' || C.back() != ';')
    return false;
  // JNI methods are tagged "selector!jni" by the workload generator; the
  // tag is not part of the dispatch selector.
  static const std::string JniTag = "!jni";
  if (S.size() > JniTag.size() &&
      S.compare(S.size() - JniTag.size(), JniTag.size(), JniTag) == 0)
    S.resize(S.size() - JniTag.size());
  if (S.empty())
    return false;
  Class = std::move(C);
  Selector = std::move(S);
  return true;
}

namespace {

Error anomalyError(const Anomaly &A) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "call graph: %s (method idx %u): %s",
                anomalyKindName(A.Kind), A.MethodIdx, A.Detail.c_str());
  return makeError(Buf);
}

/// Records \p A on the graph, or turns it into an error in strict mode.
Error note(CallGraph &G, bool Strict, Anomaly A) {
  if (Strict)
    return anomalyError(A);
  G.Anomalies.push_back(std::move(A));
  return Error::success();
}

} // namespace

Expected<CallGraph> analysis::buildCallGraph(const dex::App &A,
                                             const CallGraphOptions &Opts) {
  CallGraph G;
  G.NumMethods = static_cast<uint32_t>(A.numMethods());
  G.Present.assign(G.NumMethods, 0);
  G.Succ.assign(G.NumMethods, {});

  // Index methods by idx, classes by name, and selectors within classes.
  std::vector<const dex::Method *> ByIdx(G.NumMethods, nullptr);
  A.forEachMethod([&](const dex::Method &M) {
    if (M.Idx < G.NumMethods) {
      G.Present[M.Idx] = 1;
      ByIdx[M.Idx] = &M;
    }
  });

  struct ClassInfo {
    std::vector<uint32_t> Children; ///< Direct subclasses, as class ids.
    std::unordered_map<std::string, std::vector<uint32_t>> BySelector;
  };
  std::unordered_map<std::string, uint32_t> ClassId;
  std::vector<ClassInfo> Classes;
  auto classOf = [&](const std::string &Name) -> uint32_t {
    auto [It, New] = ClassId.try_emplace(Name, Classes.size());
    if (New)
      Classes.emplace_back();
    return It->second;
  };

  for (uint32_t Idx = 0; Idx < G.NumMethods; ++Idx) {
    const dex::Method *M = ByIdx[Idx];
    if (!M)
      continue;
    std::string Class, Selector;
    if (!splitMethodName(M->Name, Class, Selector)) {
      if (auto E = note(G, Opts.Strict,
                        {AnomalyKind::UnparseableName, Idx, M->Name}))
        return E;
      continue;
    }
    Classes[classOf(Class)].BySelector[Selector].push_back(Idx);
  }
  for (const dex::TypeLink &L : A.Hierarchy)
    Classes[classOf(L.Super)].Children.push_back(classOf(L.Class));

  // Entrypoints: sorted, unique, in bounds.
  for (uint32_t E : A.Entrypoints) {
    if (E >= G.NumMethods || !G.Present[E]) {
      if (auto Err = note(G, Opts.Strict,
                          {AnomalyKind::EntrypointOutOfBounds, E,
                           "no method with this index"}))
        return Err;
      continue;
    }
    G.Entrypoints.push_back(E);
  }
  std::sort(G.Entrypoints.begin(), G.Entrypoints.end());
  G.Entrypoints.erase(
      std::unique(G.Entrypoints.begin(), G.Entrypoints.end()),
      G.Entrypoints.end());

  // The subtype closure of a class, memoized. Cycle-safe: the visited set
  // is checked before descending.
  std::unordered_map<uint32_t, std::vector<uint32_t>> ClosureCache;
  auto subtypeClosure =
      [&](uint32_t Root) -> const std::vector<uint32_t> & {
    auto It = ClosureCache.find(Root);
    if (It != ClosureCache.end())
      return It->second;
    std::vector<uint32_t> Out;
    std::vector<uint32_t> Stack{Root};
    std::unordered_set<uint32_t> Seen{Root};
    while (!Stack.empty()) {
      uint32_t C = Stack.back();
      Stack.pop_back();
      Out.push_back(C);
      for (uint32_t Child : Classes[C].Children)
        if (Seen.insert(Child).second)
          Stack.push_back(Child);
    }
    return ClosureCache.emplace(Root, std::move(Out)).first->second;
  };

  // Virtual fan-out of a callee idx, memoized: every same-selector method
  // on a subtype of the callee's class.
  std::unordered_map<uint32_t, std::vector<uint32_t>> FanoutCache;

  A.forEachMethod([&](const dex::Method &M) {
    for (const dex::Insn &I : M.Code) {
      if (I.Opcode != dex::Op::InvokeStatic &&
          I.Opcode != dex::Op::InvokeVirtual)
        continue;
      if (I.Idx >= G.NumMethods || !G.Present[I.Idx]) {
        G.Anomalies.push_back({AnomalyKind::CalleeOutOfBounds, M.Idx,
                               "callee idx " + std::to_string(I.Idx)});
        continue;
      }
      G.addEdge(M.Idx, I.Idx);
      if (I.Opcode != dex::Op::InvokeVirtual)
        continue;
      auto Cached = FanoutCache.find(I.Idx);
      if (Cached == FanoutCache.end()) {
        std::vector<uint32_t> Fanout;
        std::string Class, Selector;
        if (splitMethodName(ByIdx[I.Idx]->Name, Class, Selector)) {
          for (uint32_t C : subtypeClosure(classOf(Class))) {
            auto SelIt = Classes[C].BySelector.find(Selector);
            if (SelIt != Classes[C].BySelector.end())
              Fanout.insert(Fanout.end(), SelIt->second.begin(),
                            SelIt->second.end());
          }
          std::sort(Fanout.begin(), Fanout.end());
        }
        Cached = FanoutCache.emplace(I.Idx, std::move(Fanout)).first;
      }
      for (uint32_t Override : Cached->second)
        G.addEdge(M.Idx, Override);
    }
  });

  // Strict mode tolerates no anomalies; the ones recorded above (callee
  // bounds are checked inside forEachMethod where we cannot early-return)
  // surface here.
  if (Opts.Strict && !G.Anomalies.empty())
    return anomalyError(G.Anomalies.front());
  return G;
}

Expected<BindStats> analysis::bindBinaryEdges(
    CallGraph &G, const std::vector<codegen::CompiledMethod> &Methods,
    bool Strict) {
  BindStats Stats;
  std::vector<uint8_t> IsData;
  for (const codegen::CompiledMethod &M : Methods) {
    if (M.MethodIdx >= G.NumMethods || M.Side.IsNative)
      continue;
    IsData.assign(M.Code.size(), 0);
    for (const codegen::EmbeddedDataRange &R : M.Side.EmbeddedData)
      for (uint32_t W = R.Offset / 4;
           W < (R.Offset + R.Size) / 4 && W < M.Code.size(); ++W)
        IsData[W] = 1;

    auto decodeAt = [&](std::size_t W) -> std::optional<a64::Insn> {
      if (W >= M.Code.size() || IsData[W])
        return std::nullopt;
      return a64::decode(M.Code[W]);
    };

    for (std::size_t W = 0; W < M.Code.size(); ++W) {
      // Anchor: ldr x0, [x19, #ThreadMethodTableOffset] — emitted only by
      // emitResolveMethod (entrypoint loads sit at offset >= 8).
      auto Table = decodeAt(W);
      if (!Table || Table->Op != a64::Opcode::LdrImm || !Table->Is64 ||
          Table->Rd != a64::ArtMethodReg || Table->Rn != a64::ThreadReg ||
          Table->Imm != art::ThreadMethodTableOffset)
        continue;
      std::size_t Next = W + 1;
      uint64_t ByteOff = 0;
      auto Hi = decodeAt(Next);
      if (Hi && Hi->Op == a64::Opcode::AddImm &&
          Hi->Rd == a64::ArtMethodReg && Hi->Rn == a64::ArtMethodReg &&
          Hi->Shift == 12) {
        ByteOff = static_cast<uint64_t>(Hi->Imm) << 12;
        ++Next;
      }
      auto Lo = decodeAt(Next);
      if (!Lo || Lo->Op != a64::Opcode::LdrImm || !Lo->Is64 ||
          Lo->Rd != a64::ArtMethodReg || Lo->Rn != a64::ArtMethodReg)
        continue;
      ByteOff += static_cast<uint64_t>(Lo->Imm);
      if (ByteOff % 8 != 0)
        continue;
      ++Stats.SitesMatched;
      W = Next; // The matched words cannot anchor another sequence.
      uint64_t Callee = ByteOff / 8;
      if (Callee >= G.NumMethods) {
        Anomaly A{AnomalyKind::CalleeOutOfBounds, M.MethodIdx,
                  "binary callee idx " + std::to_string(Callee)};
        if (Strict)
          return anomalyError(A);
        G.Anomalies.push_back(std::move(A));
        ++Stats.NewAnomalies;
        continue;
      }
      const auto &S = G.Succ[M.MethodIdx];
      if (!std::binary_search(S.begin(), S.end(),
                              static_cast<uint32_t>(Callee))) {
        Anomaly A{AnomalyKind::BinaryOnlyCallee, M.MethodIdx,
                  "binary edge to idx " + std::to_string(Callee) +
                      " missing from dex graph"};
        if (Strict)
          return anomalyError(A);
        G.Anomalies.push_back(std::move(A));
        ++Stats.NewAnomalies;
        G.addEdge(M.MethodIdx, static_cast<uint32_t>(Callee));
        ++Stats.RepairedEdges;
      }
    }
  }
  return Stats;
}

Reachability analysis::computeReachability(const CallGraph &G) {
  Reachability R;
  R.Live.assign(G.NumMethods, 0);
  std::deque<uint32_t> Work;
  for (uint32_t E : G.Entrypoints) {
    if (E >= G.NumMethods || R.Live[E])
      continue;
    R.Live[E] = 1;
    Work.push_back(E);
  }
  while (!Work.empty()) {
    uint32_t N = Work.front();
    Work.pop_front();
    for (uint32_t S : G.Succ[N]) {
      if (S >= G.NumMethods || R.Live[S])
        continue;
      R.Live[S] = 1;
      Work.push_back(S);
    }
  }
  for (uint32_t I = 0; I < G.NumMethods; ++I) {
    if (!G.Present[I])
      continue;
    if (R.Live[I])
      ++R.LiveCount;
    else
      R.Dead.push_back(I);
  }
  return R;
}
