//===- analysis/Merge.cpp - Optimistic global method merging --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Merge.h"

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "cache/Digest.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace calibro;
using namespace calibro::analysis;

namespace {

bool isMovImm(a64::Opcode Op) {
  return Op == a64::Opcode::MovZ || Op == a64::Opcode::MovN ||
         Op == a64::Opcode::MovK;
}

bool isDirectBranch(a64::Opcode Op) {
  switch (Op) {
  case a64::Opcode::B:
  case a64::Opcode::Bcond:
  case a64::Opcode::Cbz:
  case a64::Opcode::Cbnz:
  case a64::Opcode::Tbz:
  case a64::Opcode::Tbnz:
    return true;
  default:
    return false;
  }
}

/// Marks the words of \p M covered by embedded-data ranges.
std::vector<uint8_t> dataWords(const codegen::CompiledMethod &M) {
  std::vector<uint8_t> IsData(M.Code.size(), 0);
  for (const codegen::EmbeddedDataRange &R : M.Side.EmbeddedData)
    for (uint32_t W = R.Offset / 4;
         W < (R.Offset + R.Size) / 4 && W < M.Code.size(); ++W)
      IsData[W] = 1;
  return IsData;
}

/// The shape digest of \p M: its merge digest with every mov-immediate
/// instruction word reduced to (class, Rd, width). Methods that differ only
/// in mov immediates land in the same bucket.
cache::Digest shapeDigest(const codegen::CompiledMethod &M,
                          const std::vector<uint8_t> &IsData) {
  cache::Hasher H;
  H.u64(M.Code.size());
  for (std::size_t W = 0; W < M.Code.size(); ++W) {
    if (!IsData[W]) {
      if (auto I = a64::decode(M.Code[W]); I && isMovImm(I->Op)) {
        H.u8(1);
        H.u8(I->Rd);
        H.u8(I->Is64 ? 1 : 0);
        continue;
      }
    }
    H.u8(0);
    H.u32(M.Code[W]);
  }
  // Side info, stack map and relocations must match exactly, so they feed
  // the bucket key verbatim via the structural merge digest of an
  // immaterial copy with the code blanked out.
  codegen::CompiledMethod Shape;
  Shape.Side = M.Side;
  Shape.Map = M.Map;
  Shape.Relocs = M.Relocs;
  H.digest(cache::methodMergeDigest(Shape));
  return H.finish();
}

/// Structural equality over everything merging cares about (not index or
/// name).
bool bodiesEqual(const codegen::CompiledMethod &A,
                 const codegen::CompiledMethod &B) {
  return A.Code == B.Code && A.Side == B.Side && A.Map == B.Map &&
         A.Relocs == B.Relocs;
}

/// Checks whether \p V can legally become a thunk into \p C, writing the
/// cut (in words) to \p DWords. See the header comment for the rules.
bool thunkLegal(const codegen::CompiledMethod &V,
                const codegen::CompiledMethod &C,
                const std::vector<uint8_t> &IsData, uint32_t MinTailWords,
                uint32_t &DWords) {
  if (V.Code.size() != C.Code.size() || !(V.Side == C.Side) ||
      !(V.Map == C.Map) || V.Relocs != C.Relocs)
    return false;
  uint32_t LastDiff = 0;
  bool AnyDiff = false;
  for (std::size_t W = 0; W < V.Code.size(); ++W) {
    if (V.Code[W] == C.Code[W])
      continue;
    if (IsData[W])
      return false;
    auto VI = a64::decode(V.Code[W]);
    auto CI = a64::decode(C.Code[W]);
    if (!VI || !CI || !isMovImm(VI->Op) || !isMovImm(CI->Op) ||
        VI->Rd != CI->Rd || VI->Is64 != CI->Is64)
      return false;
    LastDiff = static_cast<uint32_t>(W);
    AnyDiff = true;
  }
  if (!AnyDiff)
    return false; // Byte-identical: the alias tier's job, not a thunk.
  uint32_t D = LastDiff + 1;
  uint32_t N = static_cast<uint32_t>(V.Code.size());
  if (N < D + 1 || N - (D + 1) < MinTailWords)
    return false;
  uint32_t CutOff = D * 4;
  // The tail runs inside the canonical body: it must never branch back
  // into (or load from) the prefix, whose immediates differ. The prefix
  // runs inside the thunk: it must never reference past the cut, and a
  // reference to exactly the cut is legal only for a direct branch (it
  // lands on the thunk's `b`, which forwards to the canonical tail — a
  // literal load there would read the branch encoding as data).
  for (const codegen::PcRelRecord &R : V.Side.PcRelRecords) {
    if (R.InsnOffset >= CutOff) {
      if (R.TargetOffset < CutOff)
        return false;
    } else {
      if (R.TargetOffset > CutOff)
        return false;
      if (R.TargetOffset == CutOff) {
        auto I = a64::decode(V.Code[R.InsnOffset / 4]);
        if (!I || !isDirectBranch(I->Op))
          return false;
      }
    }
  }
  for (const codegen::EmbeddedDataRange &R : V.Side.EmbeddedData)
    if (R.Offset < CutOff && R.Offset + R.Size > CutOff)
      return false;
  for (const codegen::ByteRange &R : V.Side.SlowPathRanges)
    if (R.Begin < CutOff && R.End > CutOff)
      return false;
  DWords = D;
  return true;
}

} // namespace

MergePlan
analysis::planMerge(const std::vector<codegen::CompiledMethod> &Methods,
                    const MergeOptions &Opts) {
  MergePlan Plan;

  // Candidate vector positions, ordered by method index so every bucket's
  // canonical is the lowest index.
  std::vector<std::size_t> Candidates;
  for (std::size_t I = 0; I < Methods.size(); ++I) {
    const codegen::CompiledMethod &M = Methods[I];
    if (!M.Side.IsNative && !M.Side.HasIndirectJump && !M.Code.empty())
      Candidates.push_back(I);
  }
  std::sort(Candidates.begin(), Candidates.end(),
            [&](std::size_t A, std::size_t B) {
              return Methods[A].MethodIdx < Methods[B].MethodIdx;
            });

  // Tier 1: identical bodies -> aliases.
  std::unordered_map<std::string, std::vector<std::size_t>> Identical;
  std::vector<std::string> IdenticalKeys; // Insertion order for determinism.
  for (std::size_t I : Candidates) {
    std::string Key = cache::methodMergeDigest(Methods[I]).hex();
    auto [It, New] = Identical.try_emplace(std::move(Key));
    if (New)
      IdenticalKeys.push_back(It->first);
    It->second.push_back(I);
  }
  // Alias victims leave the candidate pool; alias canonicals stay in it
  // but may only serve the thunk tier as canonicals — turning one into a
  // thunk would cut the body its aliases share.
  std::unordered_set<std::size_t> AliasVictims, AliasCanons;
  for (const std::string &Key : IdenticalKeys) {
    const std::vector<std::size_t> &Bucket = Identical[Key];
    if (Bucket.size() < 2)
      continue;
    std::size_t Canon = Bucket.front();
    for (std::size_t K = 1; K < Bucket.size(); ++K) {
      std::size_t V = Bucket[K];
      if (!bodiesEqual(Methods[V], Methods[Canon]))
        continue; // Digest collision: leave it for the thunk tier.
      Plan.Aliases.push_back(
          {Methods[V].MethodIdx, Methods[Canon].MethodIdx});
      Plan.SavedBytes += Methods[V].codeSizeBytes();
      AliasVictims.insert(V);
      AliasCanons.insert(Canon);
    }
  }

  // Tier 2: mov-immediate variants -> thunks.
  if (Opts.EnableThunks) {
    std::unordered_map<std::string, std::vector<std::size_t>> Shapes;
    std::vector<std::string> ShapeKeys;
    std::unordered_map<std::size_t, std::vector<uint8_t>> DataCache;
    for (std::size_t I : Candidates) {
      if (AliasVictims.count(I))
        continue;
      auto &IsData =
          DataCache.try_emplace(I, dataWords(Methods[I])).first->second;
      std::string Key = shapeDigest(Methods[I], IsData).hex();
      auto [It, New] = Shapes.try_emplace(std::move(Key));
      if (New)
        ShapeKeys.push_back(It->first);
      It->second.push_back(I);
    }
    for (const std::string &Key : ShapeKeys) {
      const std::vector<std::size_t> &Bucket = Shapes[Key];
      if (Bucket.size() < 2)
        continue;
      std::size_t Canon = Bucket.front();
      bool CanonUsed = false;
      for (std::size_t K = 1; K < Bucket.size(); ++K) {
        std::size_t V = Bucket[K];
        if (AliasCanons.count(V))
          continue; // Its aliases need the full body intact.
        uint32_t DWords = 0;
        if (!thunkLegal(Methods[V], Methods[Canon], DataCache[V],
                        Opts.MinTailWords, DWords))
          continue;
        uint32_t N = static_cast<uint32_t>(Methods[V].Code.size());
        Plan.Thunks.push_back(
            {Methods[V].MethodIdx, Methods[Canon].MethodIdx, DWords * 4});
        Plan.SavedBytes += static_cast<uint64_t>(N - (DWords + 1)) * 4;
        Plan.Pinned.push_back(Methods[V].MethodIdx);
        CanonUsed = true;
      }
      if (CanonUsed)
        Plan.Pinned.push_back(Methods[Canon].MethodIdx);
    }
  }

  auto ByIdx = [](const auto &A, const auto &B) {
    return A.MethodIdx < B.MethodIdx;
  };
  std::sort(Plan.Aliases.begin(), Plan.Aliases.end(), ByIdx);
  std::sort(Plan.Thunks.begin(), Plan.Thunks.end(), ByIdx);
  std::sort(Plan.Pinned.begin(), Plan.Pinned.end());
  Plan.Pinned.erase(std::unique(Plan.Pinned.begin(), Plan.Pinned.end()),
                    Plan.Pinned.end());
  return Plan;
}

void analysis::makeThunk(codegen::CompiledMethod &M, uint32_t DWords,
                         uint32_t ThunkTableIdx) {
  uint32_t CutOff = DWords * 4;
  M.Code.resize(DWords);
  a64::Insn Branch{.Op = a64::Opcode::B};
  Branch.Imm = 0; // Placeholder; the linker binds the MergedBody reloc.
  M.Code.push_back(a64::encode(Branch));

  auto &Side = M.Side;
  std::erase_if(Side.TerminatorOffsets,
                [&](uint32_t Off) { return Off >= CutOff; });
  Side.TerminatorOffsets.push_back(CutOff);
  std::erase_if(Side.PcRelRecords, [&](const codegen::PcRelRecord &R) {
    return R.InsnOffset >= CutOff;
  });
  std::erase_if(Side.EmbeddedData, [&](const codegen::EmbeddedDataRange &R) {
    return R.Offset + R.Size > CutOff;
  });
  std::erase_if(Side.SlowPathRanges, [&](const codegen::ByteRange &R) {
    return R.End > CutOff;
  });
  std::erase_if(M.Map.Entries, [&](const codegen::StackMapEntry &E) {
    return E.NativePcOffset > CutOff;
  });
  std::erase_if(M.Relocs, [&](const codegen::Relocation &R) {
    return R.Offset >= CutOff;
  });
  M.Relocs.push_back(
      {CutOff, codegen::RelocKind::MergedBody, ThunkTableIdx});
}
