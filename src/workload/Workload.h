//===- workload/Workload.h - Synthetic application generator ----*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stand-in for the paper's test set (top-downloaded commercial apps
/// from the OPPO App Market, Table 3). Real APKs are not available offline,
/// so this generator synthesizes dex applications whose *binary redundancy
/// statistics* match what the paper measures:
///
///  * a Zipf-distributed pool of code idioms shared across methods
///    (Observation 2: short sequences repeat very often — reuse of the
///    same libraries, code templates and compiler expansions);
///  * dense Java calls, allocations and implicit checks, so the three
///    ART-specific patterns of Observation 3 dominate the repeat ranking;
///  * a sprinkling of switch methods (indirect jumps) and JNI methods,
///    exercising the §3.3.1 candidate exclusions;
///  * a three-layer call DAG (entries -> workers -> utilities) with skewed
///    popularity, so runtime cycles concentrate in a hot subset (the
///    precondition for §3.4.2's hot-function filtering).
///
/// Everything is seeded and deterministic; the six paper apps are presets
/// whose method counts are proportional to Table 4's baseline sizes.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_WORKLOAD_WORKLOAD_H
#define CALIBRO_WORKLOAD_WORKLOAD_H

#include "dex/Dex.h"

#include <cstdint>
#include <string>
#include <vector>

namespace calibro {
namespace workload {

/// Parameters of one synthetic application.
struct AppSpec {
  std::string Name = "app";
  uint64_t Seed = 1;
  uint32_t NumDexFiles = 4;
  uint32_t NumEntries = 8;     ///< Top-level handlers the driver script calls.
  uint32_t NumWorkers = 400;
  uint32_t NumUtilities = 200; ///< Popular leaf-layer callees.
  double SwitchFraction = 0.04; ///< Workers compiled with a jump table.
  double NativeFraction = 0.03; ///< Utilities that are JNI methods.
  double ThrowFraction = 0.10;  ///< Methods with a (never-taken) throw.
  uint32_t NumIdioms = 96;      ///< Size of the shared idiom pool.
  double IdiomZipfS = 0.9;      ///< Idiom popularity skew.
  double CalleeZipfS = 1.10;    ///< Callee popularity skew.

  // Closed-world knobs (all default-off; the generated app is then
  // byte-identical to what this generator always produced). With
  // ClosedWorld set, the app declares Entrypoints — every entry method
  // plus a KeepFraction sample of workers and utilities (modeling exported
  // components) — which arms the reachability GC in the link pipeline.
  bool ClosedWorld = false;
  double KeepFraction = 0.85; ///< Worker/utility root probability.
  /// Never-rooted, never-called methods forming a call cycle among
  /// themselves (plus dead->live edges into utilities): guaranteed GC food.
  uint32_t NumDeadMethods = 0;
  /// Families of structurally identical "clone" methods, the merge corpus.
  /// Each family shares one body; some siblings differ in exactly one
  /// mov-immediate (thunk candidates), the rest are byte-identical (alias
  /// candidates). Entries call into the families, so clones execute and
  /// the differential harness observes their results.
  uint32_t CloneFamilies = 0;
  uint32_t CloneSiblings = 3;        ///< Clamped to at least 2.
  double CloneImmVariantFraction = 0.5; ///< Sibling immediate-variant rate.
};

/// Arms the closed-world knobs of \p S with amounts calibrated to the
/// app's size, so the corpus contains both garbage to collect and clones
/// to merge. The entry layer and driver script are unchanged.
void enableDeadCode(AppSpec &S);

/// One scripted invocation for the runtime driver (the uiautomator
/// substitute).
struct Invocation {
  uint32_t MethodIdx = 0;
  std::vector<int64_t> Args;
};

/// Generates the application. The result passes dex::verifyApp and every
/// generated entry terminates when executed (loops are counted, division
/// guards its operands, throws are behind never-taken branches).
dex::App makeApp(const AppSpec &Spec);

/// Generates the deterministic driver script: \p Length invocations of the
/// app's entry methods with skewed entry popularity.
std::vector<Invocation> makeScript(const AppSpec &Spec, std::size_t Length,
                                   uint64_t Seed);

/// The six paper apps (Table 3/4), with method counts proportional to the
/// baseline OAT sizes and scaled by \p Scale (1.0 gives roughly 1-3 MiB of
/// .text per app).
std::vector<AppSpec> paperApps(double Scale = 1.0);

} // namespace workload
} // namespace calibro

#endif // CALIBRO_WORKLOAD_WORKLOAD_H
