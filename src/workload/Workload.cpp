//===- workload/Workload.cpp - Synthetic application generator -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "support/Compiler.h"
#include "support/Random.h"

#include <cassert>

using namespace calibro;
using namespace calibro::workload;
using namespace calibro::dex;

namespace {

// Register conventions inside generated methods. Keeping idioms on a fixed
// register window (v1..v7, all "home" registers in the code generator)
// makes every instantiation of an idiom byte-identical in the binary, which
// is what produces cross-method binary redundancy.
constexpr uint16_t IdiomRegLo = 1;
constexpr uint16_t IdiomRegHi = 5;
constexpr uint16_t ObjReg = 8;   ///< Holds the method's allocated object.
constexpr uint16_t TempReg = 6;  ///< Guards, switch selector (home).
/// Loop counters live in a home register (v7, i.e. x27), like any real
/// register allocator keeps hot induction variables: the loop machinery is
/// then single instructions and never an outlining candidate.
constexpr uint16_t LoopRegs[] = {7};

/// Big constants that force literal-pool embedding (3+ movz chunks).
constexpr int64_t BigConsts[] = {
    0x123456789abLL,
    0x0fedcba98765LL,
    0x7777000011112222LL,
    -0x123456789abcdLL,
};

struct Idiom {
  std::vector<Insn> Insns;
};

uint16_t pickReg(Rng &R) {
  return static_cast<uint16_t>(R.nextInRange(IdiomRegLo, IdiomRegHi));
}

/// Generates one straight-line idiom over the fixed register window. With
/// \p Diverse, immediates are drawn from wide ranges so that independently
/// generated code rarely coincides (used for per-method unique filler);
/// without it, immediates are small and heavily shared (the idiom pool).
Idiom genIdiom(Rng &R, bool Diverse = false) {
  Idiom I;
  std::size_t Len = Diverse ? R.nextInRange(6, 16) : R.nextInRange(2, 7);
  while (I.Insns.size() < Len) {
    Insn X;
    switch (R.nextBelow(12)) {
    case 0:
      X.Opcode = Op::Add;
      break;
    case 1:
      X.Opcode = Op::Sub;
      break;
    case 2:
      X.Opcode = Op::Mul;
      break;
    case 3:
      X.Opcode = Op::And;
      break;
    case 4:
      X.Opcode = Op::Or;
      break;
    case 5:
      X.Opcode = Op::Xor;
      break;
    case 6:
      X.Opcode = Op::AddImm;
      X.A = pickReg(R);
      X.B = pickReg(R);
      X.Imm = Diverse
                  ? static_cast<int64_t>(R.nextInRange(0, 4000)) - 2000
                  : static_cast<int64_t>(R.nextInRange(0, 200)) - 100;
      I.Insns.push_back(X);
      continue;
    case 7:
    case 8:
      X.Opcode = Op::ConstInt;
      X.A = pickReg(R);
      // Diverse constants span 32 bits (a movz+movk pair in the binary),
      // making independently generated filler essentially unique.
      X.Imm = Diverse ? static_cast<int64_t>(R.next() & 0xffffffffu)
                      : static_cast<int64_t>(R.nextBelow(256));
      I.Insns.push_back(X);
      continue;
    case 9:
      X.Opcode = Op::ConstInt;
      X.A = pickReg(R);
      X.Imm = BigConsts[R.nextBelow(std::size(BigConsts))];
      I.Insns.push_back(X);
      continue;
    case 10:
      X.Opcode = Op::Move;
      X.A = pickReg(R);
      X.B = pickReg(R);
      I.Insns.push_back(X);
      continue;
    case 11: {
      // Guarded division: constant non-zero divisor.
      Insn C;
      C.Opcode = Op::ConstInt;
      C.A = pickReg(R);
      C.Imm = static_cast<int64_t>(R.nextInRange(1, 9));
      I.Insns.push_back(C);
      X.Opcode = Op::Div;
      X.A = pickReg(R);
      X.B = pickReg(R);
      X.C = C.A;
      I.Insns.push_back(X);
      continue;
    }
    }
    X.A = pickReg(R);
    X.B = pickReg(R);
    X.C = pickReg(R);
    I.Insns.push_back(X);
  }
  return I;
}

/// The whole generation context for one app.
struct Gen {
  const AppSpec &Spec;
  Rng R;
  std::vector<Idiom> Idioms;
  ZipfSampler IdiomPick;
  ZipfSampler UtilityPick;
  ZipfSampler WorkerPick;

  uint32_t NumEntries, NumWorkers, NumUtilities, Total;

  explicit Gen(const AppSpec &S)
      : Spec(S), R(S.Seed), IdiomPick(S.NumIdioms, S.IdiomZipfS),
        UtilityPick(S.NumUtilities, S.CalleeZipfS),
        WorkerPick(S.NumWorkers, S.CalleeZipfS) {
    NumEntries = S.NumEntries;
    NumWorkers = S.NumWorkers;
    NumUtilities = S.NumUtilities;
    Total = NumEntries + NumWorkers + NumUtilities;
    Idioms.reserve(S.NumIdioms);
    for (uint32_t I = 0; I < S.NumIdioms; ++I)
      Idioms.push_back(genIdiom(R));
  }

  uint32_t utilityIdx(std::size_t K) const {
    return NumEntries + NumWorkers + static_cast<uint32_t>(K);
  }
  uint32_t workerIdx(std::size_t K) const {
    return NumEntries + static_cast<uint32_t>(K);
  }

  void appendIdiom(Method &M) {
    const Idiom &I = Idioms[IdiomPick.sample(R)];
    M.Code.insert(M.Code.end(), I.Insns.begin(), I.Insns.end());
  }

  /// Fresh, method-unique straight-line code (the non-redundant filler).
  void appendFresh(Method &M) {
    Idiom I = genIdiom(R, /*Diverse=*/true);
    M.Code.insert(M.Code.end(), I.Insns.begin(), I.Insns.end());
  }

  /// new-instance into ObjReg plus one or two shared field templates.
  void appendAllocAndFields(Method &M) {
    Insn A;
    A.Opcode = Op::NewInstance;
    A.A = ObjReg;
    A.Idx = static_cast<uint32_t>(R.nextBelow(32));
    M.Code.push_back(A);
    std::size_t Fields = R.nextInRange(1, 2);
    for (std::size_t F = 0; F < Fields; ++F) {
      int64_t Off = 8 * static_cast<int64_t>(R.nextInRange(1, 3));
      Insn Get;
      Get.Opcode = Op::IGet;
      Get.A = 4;
      Get.B = ObjReg;
      Get.Imm = Off;
      M.Code.push_back(Get);
      Insn Upd;
      Upd.Opcode = Op::AddImm;
      Upd.A = 4;
      Upd.B = 4;
      Upd.Imm = 1;
      M.Code.push_back(Upd);
      Insn Put;
      Put.Opcode = Op::IPut;
      Put.A = 4;
      Put.B = ObjReg;
      Put.Imm = Off;
      M.Code.push_back(Put);
    }
  }

  /// A never-executed cold block carrying shared idioms: `if (1) goto skip;
  /// <idioms>; return v1; skip:`. This is where most cross-method
  /// redundancy lives, mirroring real apps whose error/fallback paths share
  /// library code — and it is exactly the code outlining can take without
  /// runtime cost (paper §3.4.2's observation).
  void appendColdBlock(Method &M) {
    Insn C;
    C.Opcode = Op::ConstInt;
    C.A = TempReg;
    C.Imm = 1;
    M.Code.push_back(C);
    Insn Skip;
    Skip.Opcode = Op::IfNez;
    Skip.A = TempReg;
    std::size_t SkipPc = M.Code.size();
    M.Code.push_back(Skip);
    std::size_t NumIdioms = R.nextInRange(1, 3);
    for (std::size_t K = 0; K < NumIdioms; ++K)
      appendIdiom(M);
    Insn Ret;
    Ret.Opcode = Op::Return;
    Ret.A = 1;
    M.Code.push_back(Ret);
    M.Code[SkipPc].Target = static_cast<uint32_t>(M.Code.size());
  }

  /// A never-taken throw: cold code that still occupies space.
  void appendGuardedThrow(Method &M) {
    Insn C;
    C.Opcode = Op::ConstInt;
    C.A = TempReg;
    C.Imm = 1;
    M.Code.push_back(C);
    Insn Skip;
    Skip.Opcode = Op::IfNez;
    Skip.A = TempReg;
    Skip.Target = static_cast<uint32_t>(M.Code.size()) + 2;
    M.Code.push_back(Skip);
    Insn T;
    T.Opcode = Op::Throw;
    T.A = TempReg;
    M.Code.push_back(T);
  }

  /// invoke-static (or invoke-virtual when \p Virtual and the method has an
  /// object) of \p Callee; result accumulated into v1. Argument and result
  /// registers vary between sites like real register allocation does.
  void appendCall(Method &M, uint32_t Callee, bool Virtual) {
    uint16_t ArgA = static_cast<uint16_t>(1 + R.nextBelow(3));
    uint16_t ArgB = static_cast<uint16_t>(ArgA + 1);
    uint16_t Res = R.nextBool(0.5) ? 4 : 5;
    Insn Call;
    Call.Opcode = Virtual ? Op::InvokeVirtual : Op::InvokeStatic;
    Call.A = Res;
    Call.Idx = Callee;
    if (Virtual) {
      Call.Args = {ObjReg, ArgA, NoReg, NoReg};
      Call.NumArgs = 2;
    } else {
      Call.Args = {ArgA, ArgB, NoReg, NoReg};
      Call.NumArgs = 2;
    }
    M.Code.push_back(Call);
    Insn Acc;
    Acc.Opcode = Op::Add;
    Acc.A = 1;
    Acc.B = 1;
    Acc.C = Res;
    M.Code.push_back(Acc);
  }

  /// Shared method header: seed the accumulator registers.
  void appendHeader(Method &M) {
    Insn C1;
    C1.Opcode = Op::ConstInt;
    C1.A = 1;
    C1.Imm = static_cast<int64_t>((M.Idx * 7 + 1) & 0x3ff);
    M.Code.push_back(C1);
    Insn C2;
    C2.Opcode = Op::ConstInt;
    C2.A = 2;
    C2.Imm = static_cast<int64_t>((M.Idx * 13 + 3) & 0x3ff);
    M.Code.push_back(C2);
    Insn C3;
    C3.Opcode = Op::ConstInt;
    C3.A = 3;
    C3.Imm = 5;
    M.Code.push_back(C3);
  }

  void appendReturn(Method &M) {
    Insn Ret;
    Ret.Opcode = Op::Return;
    Ret.A = 1;
    M.Code.push_back(Ret);
  }

  uint16_t CurLoopReg = LoopRegs[0];

  /// Emits `for (vLoop = N; vLoop != 0; --vLoop) { Body(); }`.
  template <typename BodyFn>
  void appendLoop(Method &M, uint64_t Iterations, BodyFn &&Body) {
    Insn Init;
    Init.Opcode = Op::ConstInt;
    Init.A = CurLoopReg;
    Init.Imm = static_cast<int64_t>(Iterations);
    M.Code.push_back(Init);
    uint32_t Top = static_cast<uint32_t>(M.Code.size());
    Body();
    Insn Dec;
    Dec.Opcode = Op::AddImm;
    Dec.A = CurLoopReg;
    Dec.B = CurLoopReg;
    Dec.Imm = -1;
    M.Code.push_back(Dec);
    Insn Back;
    Back.Opcode = Op::IfNez;
    Back.A = CurLoopReg;
    Back.Target = Top;
    M.Code.push_back(Back);
  }

  Method makeUtility(uint32_t Idx, bool Native) {
    Method M;
    M.Idx = Idx;
    M.Name = "Lutil/U" + std::to_string(Idx) + ";->run";
    M.NumArgs = 2;
    M.NumRegs = static_cast<uint16_t>(R.nextInRange(13, 17));
    M.ReturnsValue = true;
    if (Native) {
      M.IsNative = true;
      M.Name += "!jni";
      return M;
    }
    CurLoopReg = LoopRegs[R.nextBelow(std::size(LoopRegs))];
    appendHeader(M);
    // The executed body is mostly method-unique work in a small loop; a
    // sprinkle of hot idioms remains (what HfOpti later protects). The
    // shared redundancy sits in never-executed cold blocks.
    std::size_t Segments = R.nextInRange(4, 8);
    appendLoop(M, R.nextInRange(12, 24), [&] {
      for (std::size_t S = 0; S < Segments; ++S) {
        if (R.nextBool(0.05))
          appendIdiom(M);
        else
          appendFresh(M);
      }
    });
    if (R.nextBool(0.25))
      appendAllocAndFields(M);
    std::size_t ColdBlocks = R.nextInRange(1, 2);
    for (std::size_t K = 0; K < ColdBlocks; ++K)
      appendColdBlock(M);
    if (R.nextBool(Spec.ThrowFraction))
      appendGuardedThrow(M);
    appendReturn(M);
    return M;
  }

  void appendSwitch(Method &M) {
    uint32_t NumCases = static_cast<uint32_t>(R.nextInRange(4, 8));
    uint32_t Mask = 7; // Selector in [0, 8); tables may be smaller.
    Insn C;
    C.Opcode = Op::ConstInt;
    C.A = TempReg;
    C.Imm = Mask;
    M.Code.push_back(C);
    Insn AndI;
    AndI.Opcode = Op::And;
    AndI.A = TempReg;
    AndI.B = 0;
    AndI.C = TempReg;
    M.Code.push_back(AndI);
    Insn Sw;
    Sw.Opcode = Op::Switch;
    Sw.A = TempReg;
    Sw.Imm = static_cast<int64_t>(M.SwitchTables.size());
    uint32_t SwPc = static_cast<uint32_t>(M.Code.size());
    M.Code.push_back(Sw);
    // Default (fallthrough) case.
    Insn Def;
    Def.Opcode = Op::ConstInt;
    Def.A = 1;
    Def.Imm = 999;
    M.Code.push_back(Def);
    Insn DefGoto;
    DefGoto.Opcode = Op::Goto;
    uint32_t DefGotoPc = static_cast<uint32_t>(M.Code.size());
    M.Code.push_back(DefGoto);
    std::vector<uint32_t> Table;
    std::vector<uint32_t> CaseGotos;
    for (uint32_t K = 0; K < NumCases; ++K) {
      Table.push_back(static_cast<uint32_t>(M.Code.size()));
      Insn CV;
      CV.Opcode = Op::ConstInt;
      CV.A = 1;
      CV.Imm = static_cast<int64_t>(K) * 17 + 1;
      M.Code.push_back(CV);
      Insn G;
      G.Opcode = Op::Goto;
      CaseGotos.push_back(static_cast<uint32_t>(M.Code.size()));
      M.Code.push_back(G);
    }
    uint32_t End = static_cast<uint32_t>(M.Code.size());
    M.Code[DefGotoPc].Target = End;
    for (uint32_t GPc : CaseGotos)
      M.Code[GPc].Target = End;
    M.SwitchTables.push_back(std::move(Table));
    (void)SwPc;
  }

  Method makeWorker(uint32_t Idx, bool WithSwitch) {
    Method M;
    M.Idx = Idx;
    M.Name = "Lapp/W" + std::to_string(Idx) + ";->work";
    M.NumArgs = 2;
    M.NumRegs = static_cast<uint16_t>(R.nextInRange(14, 20));
    M.ReturnsValue = true;
    CurLoopReg = LoopRegs[R.nextBelow(std::size(LoopRegs))];
    appendHeader(M);
    bool HasObj = R.nextBool(0.5);
    if (HasObj)
      appendAllocAndFields(M);
    if (WithSwitch)
      appendSwitch(M);

    // Hot loop: unique code plus calls; the occasional hot idiom.
    std::size_t Segments = R.nextInRange(5, 9);
    appendLoop(M, R.nextInRange(2, 4), [&] {
      for (std::size_t S = 0; S < Segments; ++S) {
        double P = R.nextDouble();
        if (P < 0.04) {
          appendIdiom(M);
        } else if (P < 0.20) {
          uint32_t Callee = utilityIdx(UtilityPick.sample(R));
          appendCall(M, Callee, HasObj && R.nextBool(0.3));
        } else {
          appendFresh(M);
        }
      }
    });
    // Warm, once-per-invocation idioms and the cold shared tail.
    std::size_t WarmIdioms = R.nextInRange(1, 3);
    for (std::size_t K = 0; K < WarmIdioms; ++K)
      appendIdiom(M);
    std::size_t ColdBlocks = R.nextInRange(1, 3);
    for (std::size_t K = 0; K < ColdBlocks; ++K)
      appendColdBlock(M);
    if (R.nextBool(Spec.ThrowFraction))
      appendGuardedThrow(M);
    appendReturn(M);
    return M;
  }

  Method makeEntry(uint32_t Idx) {
    Method M;
    M.Idx = Idx;
    M.Name = "Lapp/Entry" + std::to_string(Idx) + ";->handle";
    M.NumArgs = 1;
    M.NumRegs = 14;
    M.ReturnsValue = true;
    CurLoopReg = LoopRegs[R.nextBelow(std::size(LoopRegs))];
    appendHeader(M);
    std::size_t Calls = R.nextInRange(2, 4);
    appendLoop(M, R.nextInRange(2, 4), [&] {
      for (std::size_t C = 0; C < Calls; ++C) {
        uint32_t Callee = workerIdx(WorkerPick.sample(R));
        appendCall(M, Callee, false);
      }
      appendIdiom(M);
    });
    appendReturn(M);
    return M;
  }
};

/// One clone-family method. Every random decision is drawn from a
/// family-seeded stream that restarts identically for each sibling, so
/// siblings compile to byte-identical bodies — except for the single
/// parameterizing mov-immediate of "variant" siblings, which the variant
/// decision (a separate per-sibling stream) perturbs.
Method makeClone(const AppSpec &Spec, uint32_t Family, uint32_t Sibling,
                 uint32_t Idx, uint32_t UtilityBase, uint32_t NumUtilities) {
  uint64_t FamSeed = Spec.Seed * 0x9e3779b97f4a7c15ULL + 0xc107e +
                     Family * 0x632be59bd9b4e019ULL;
  Rng FR(FamSeed);
  Method M;
  M.Idx = Idx;
  M.Name = "Lclone/F" + std::to_string(Family) + "S" +
           std::to_string(Sibling) + ";->apply";
  M.NumArgs = 2;
  M.NumRegs = 12;
  M.ReturnsValue = true;

  auto constInt = [&](uint16_t Reg, int64_t Imm) {
    Insn C;
    C.Opcode = Op::ConstInt;
    C.A = Reg;
    C.Imm = Imm;
    M.Code.push_back(C);
  };
  constInt(1, static_cast<int64_t>(FR.nextInRange(1, 900)));
  constInt(2, static_cast<int64_t>(FR.nextInRange(1, 900)));

  // The parameterizing immediate: one movz in the compiled body. Variants
  // shift it by a sibling-dependent amount, keeping it a single movz.
  int64_t Base = 16 + 2 * static_cast<int64_t>(FR.nextInRange(0, 512));
  bool Variant =
      Sibling > 0 && Rng(FamSeed ^ (0x51b1 + Sibling))
                         .nextBool(Spec.CloneImmVariantFraction);
  constInt(4, Variant ? Base + 16 * static_cast<int64_t>(Sibling) : Base);

  // Family-shared arithmetic mixing the parameter into the result, so a
  // thunk bound to the wrong immediate changes the observed return value.
  std::size_t Len = FR.nextInRange(6, 12);
  for (std::size_t K = 0; K < Len; ++K) {
    Insn X;
    switch (FR.nextBelow(4)) {
    case 0:
      X.Opcode = Op::Add;
      X.A = 1;
      X.B = 1;
      X.C = 4;
      break;
    case 1:
      X.Opcode = Op::Xor;
      X.A = 2;
      X.B = 2;
      X.C = 4;
      break;
    case 2:
      X.Opcode = Op::Mul;
      X.A = 1;
      X.B = 1;
      X.C = 2;
      break;
    default:
      X.Opcode = Op::AddImm;
      X.A = 1;
      X.B = 1;
      X.Imm = static_cast<int64_t>(FR.nextInRange(0, 50));
      break;
    }
    M.Code.push_back(X);
  }

  // Family-shared utility calls, so merged bodies carry relocations.
  std::size_t Calls = FR.nextInRange(1, 2);
  for (std::size_t K = 0; K < Calls; ++K) {
    Insn Call;
    Call.Opcode = Op::InvokeStatic;
    Call.A = 5;
    Call.Idx = UtilityBase + static_cast<uint32_t>(FR.nextBelow(NumUtilities));
    Call.Args = {1, 2, NoReg, NoReg};
    Call.NumArgs = 2;
    M.Code.push_back(Call);
    Insn Acc;
    Acc.Opcode = Op::Add;
    Acc.A = 1;
    Acc.B = 1;
    Acc.C = 5;
    M.Code.push_back(Acc);
  }
  Insn Ret;
  Ret.Opcode = Op::Return;
  Ret.A = 1;
  M.Code.push_back(Ret);
  return M;
}

/// One never-rooted method: part of a zombie call cycle with dead->live
/// edges into the utility layer. Never executed; exists to be collected.
Method makeZombie(const AppSpec &Spec, uint32_t K, uint32_t Idx,
                  uint32_t ZombieBase, uint32_t NumDead,
                  uint32_t UtilityBase, uint32_t NumUtilities) {
  Rng ZR(Spec.Seed ^ (0xdeadbeefULL + K * 0x9e3779b97f4a7c15ULL));
  Method M;
  M.Idx = Idx;
  M.Name = "Lzombie/Z" + std::to_string(K) + ";->stale";
  M.NumArgs = 2;
  M.NumRegs = 10;
  M.ReturnsValue = true;

  Insn C;
  C.Opcode = Op::ConstInt;
  C.A = 1;
  C.Imm = static_cast<int64_t>(ZR.nextBelow(1000));
  M.Code.push_back(C);

  auto call = [&](uint32_t Callee) {
    Insn Call;
    Call.Opcode = Op::InvokeStatic;
    Call.A = 4;
    Call.Idx = Callee;
    Call.Args = {1, 2, NoReg, NoReg};
    Call.NumArgs = 2;
    M.Code.push_back(Call);
    Insn Acc;
    Acc.Opcode = Op::Add;
    Acc.A = 1;
    Acc.B = 1;
    Acc.C = 4;
    M.Code.push_back(Acc);
  };
  call(ZombieBase + (K + 1) % NumDead); // The cycle: dead calling dead.
  call(UtilityBase + static_cast<uint32_t>(ZR.nextBelow(NumUtilities)));

  // Bulk, so collecting zombies saves measurable bytes.
  std::size_t Filler = ZR.nextInRange(12, 28);
  for (std::size_t F = 0; F < Filler; ++F) {
    Insn X;
    if (ZR.nextBool(0.4)) {
      X.Opcode = Op::ConstInt;
      X.A = static_cast<uint16_t>(2 + ZR.nextBelow(4));
      X.Imm = static_cast<int64_t>(ZR.next() & 0xffffffffu);
    } else {
      X.Opcode = Op::Add;
      X.A = 1;
      X.B = 1;
      X.C = static_cast<uint16_t>(2 + ZR.nextBelow(4));
    }
    M.Code.push_back(X);
  }
  Insn Ret;
  Ret.Opcode = Op::Return;
  Ret.A = 1;
  M.Code.push_back(Ret);
  return M;
}

/// Reroutes an entry's final return through an appended block that
/// allocates a receiver, virtual-calls a clone-family base (the CHA
/// fan-out keeps every sibling live) and static-calls specific siblings
/// (so immediate variants actually execute), all drawn from a dedicated
/// per-entry stream that leaves the main generator stream untouched.
void appendCloneCalls(const AppSpec &Spec, Method &M, uint32_t EntryIdx,
                      uint32_t CloneBase, uint32_t Families,
                      uint32_t Siblings) {
  Rng CR(Spec.Seed * 0x9e3779b97f4a7c15ULL + 0xc10e + EntryIdx);
  assert(!M.Code.empty() && M.Code.back().Opcode == Op::Return);
  uint32_t BlockStart = static_cast<uint32_t>(M.Code.size());
  Insn &Tail = M.Code.back();
  Tail = Insn{};
  Tail.Opcode = Op::Goto;
  Tail.Target = BlockStart;

  Insn Alloc;
  Alloc.Opcode = Op::NewInstance;
  Alloc.A = ObjReg;
  Alloc.Idx = static_cast<uint32_t>(CR.nextBelow(32));
  M.Code.push_back(Alloc);

  auto accumulate = [&] {
    Insn Acc;
    Acc.Opcode = Op::Add;
    Acc.A = 1;
    Acc.B = 1;
    Acc.C = 4;
    M.Code.push_back(Acc);
  };
  Insn VCall;
  VCall.Opcode = Op::InvokeVirtual;
  VCall.A = 4;
  VCall.Idx = CloneBase + static_cast<uint32_t>(CR.nextBelow(Families)) *
                              Siblings; // Sibling 0: the family base.
  VCall.Args = {ObjReg, 2, NoReg, NoReg};
  VCall.NumArgs = 2;
  M.Code.push_back(VCall);
  accumulate();

  std::size_t Statics = CR.nextInRange(1, 2);
  for (std::size_t K = 0; K < Statics; ++K) {
    Insn SCall;
    SCall.Opcode = Op::InvokeStatic;
    SCall.A = 4;
    SCall.Idx = CloneBase +
                static_cast<uint32_t>(CR.nextBelow(Families)) * Siblings +
                static_cast<uint32_t>(CR.nextBelow(Siblings));
    SCall.Args = {1, 2, NoReg, NoReg};
    SCall.NumArgs = 2;
    M.Code.push_back(SCall);
    accumulate();
  }
  Insn Ret;
  Ret.Opcode = Op::Return;
  Ret.A = 1;
  M.Code.push_back(Ret);
}

} // namespace

dex::App workload::makeApp(const AppSpec &Spec) {
  Gen G(Spec);
  App A;
  A.Name = Spec.Name;
  A.Files.resize(Spec.NumDexFiles == 0 ? 1 : Spec.NumDexFiles);

  auto fileOf = [&](uint32_t Idx) -> File & {
    return A.Files[Idx % A.Files.size()];
  };

  for (uint32_t E = 0; E < G.NumEntries; ++E)
    fileOf(E).Methods.push_back(G.makeEntry(E));
  for (uint32_t W = 0; W < G.NumWorkers; ++W) {
    bool WithSwitch = G.R.nextBool(Spec.SwitchFraction);
    uint32_t Idx = G.workerIdx(W);
    fileOf(Idx).Methods.push_back(G.makeWorker(Idx, WithSwitch));
  }
  for (uint32_t U = 0; U < G.NumUtilities; ++U) {
    bool Native = G.R.nextBool(Spec.NativeFraction);
    uint32_t Idx = G.utilityIdx(U);
    fileOf(Idx).Methods.push_back(G.makeUtility(Idx, Native));
  }

  // Everything below draws only from dedicated streams, so the methods
  // generated above are byte-for-byte what they always were.
  uint32_t CloneBase = G.Total;
  uint32_t Siblings = Spec.CloneSiblings < 2 ? 2 : Spec.CloneSiblings;
  if (Spec.CloneFamilies > 0) {
    for (uint32_t F = 0; F < Spec.CloneFamilies; ++F) {
      for (uint32_t S = 0; S < Siblings; ++S) {
        uint32_t Idx = CloneBase + F * Siblings + S;
        fileOf(Idx).Methods.push_back(makeClone(
            Spec, F, S, Idx, G.utilityIdx(0), G.NumUtilities));
        if (S > 0)
          A.Hierarchy.push_back(
              {"Lclone/F" + std::to_string(F) + "S" + std::to_string(S) + ";",
               "Lclone/F" + std::to_string(F) + "S0;"});
      }
    }
    for (uint32_t E = 0; E < G.NumEntries; ++E)
      for (Method &M : fileOf(E).Methods)
        if (M.Idx == E)
          appendCloneCalls(Spec, M, E, CloneBase, Spec.CloneFamilies,
                           Siblings);
  }

  uint32_t ZombieBase =
      CloneBase + (Spec.CloneFamilies > 0 ? Spec.CloneFamilies * Siblings : 0);
  for (uint32_t K = 0; K < Spec.NumDeadMethods; ++K) {
    uint32_t Idx = ZombieBase + K;
    fileOf(Idx).Methods.push_back(makeZombie(Spec, K, Idx, ZombieBase,
                                             Spec.NumDeadMethods,
                                             G.utilityIdx(0),
                                             G.NumUtilities));
  }

  if (Spec.ClosedWorld) {
    Rng ER(Spec.Seed * 0x9e3779b97f4a7c15ULL + 0x5eed);
    for (uint32_t E = 0; E < G.NumEntries; ++E)
      A.Entrypoints.push_back(E);
    // Exported-component sample over workers and utilities. Clones stay
    // reachable through the entry calls; zombies are never rooted.
    for (uint32_t Idx = G.NumEntries; Idx < G.Total; ++Idx)
      if (ER.nextBool(Spec.KeepFraction))
        A.Entrypoints.push_back(Idx);
  }
  return A;
}

void workload::enableDeadCode(AppSpec &S) {
  S.ClosedWorld = true;
  uint32_t Bulk = S.NumWorkers + S.NumUtilities;
  S.NumDeadMethods = Bulk / 12 < 4 ? 4 : Bulk / 12;
  S.CloneFamilies = S.NumUtilities / 12 < 2 ? 2 : S.NumUtilities / 12;
}

std::vector<Invocation> workload::makeScript(const AppSpec &Spec,
                                             std::size_t Length,
                                             uint64_t Seed) {
  Rng R(Seed ^ Spec.Seed);
  ZipfSampler EntryPick(Spec.NumEntries, 1.0);
  std::vector<Invocation> Script;
  Script.reserve(Length);
  for (std::size_t K = 0; K < Length; ++K) {
    Invocation I;
    I.MethodIdx = static_cast<uint32_t>(EntryPick.sample(R));
    I.Args = {static_cast<int64_t>(R.nextBelow(100))};
    Script.push_back(std::move(I));
  }
  return Script;
}

std::vector<AppSpec> workload::paperApps(double Scale) {
  // Proportional to Table 4's baseline OAT sizes (in MB).
  struct Row {
    const char *Name;
    double SizeMb;
    uint64_t Seed;
  };
  static const Row Rows[] = {
      {"Toutiao", 357, 0x101}, {"Taobao", 225, 0x202},
      {"Fanqie", 264, 0x303},  {"Meituan", 247, 0x404},
      {"Kuaishou", 612, 0x505}, {"Wechat", 388, 0x606},
  };
  std::vector<AppSpec> Specs;
  for (const Row &R : Rows) {
    AppSpec S;
    S.Name = R.Name;
    S.Seed = R.Seed;
    double Factor = R.SizeMb / 357.0 * Scale;
    S.NumWorkers = static_cast<uint32_t>(300 * Factor);
    S.NumUtilities = static_cast<uint32_t>(150 * Factor);
    if (S.NumWorkers < 20)
      S.NumWorkers = 20;
    if (S.NumUtilities < 10)
      S.NumUtilities = 10;
    Specs.push_back(std::move(S));
  }
  return Specs;
}
