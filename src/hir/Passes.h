//===- hir/Passes.h - HGraph optimization passes ----------------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-method optimization pipeline that runs on HGraph before code
/// generation (paper Fig. 5, "opt passes"). These are the classic dex2oat
/// size/speed passes the paper lists in §5 ("Code Size Reduction in
/// Android"): constant folding with copy propagation, dead code
/// elimination, unreachable-block removal with block merging, and return
/// merging. They operate strictly within one method — by design they cannot
/// remove the cross-method binary redundancy that Calibro targets.
///
/// Every pass returns the number of instructions it removed or simplified so
/// the pipeline's effect is observable in statistics and tests.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_HIR_PASSES_H
#define CALIBRO_HIR_PASSES_H

#include "hir/HGraph.h"

#include <cstddef>
#include <string>
#include <vector>

namespace calibro {
namespace hir {

/// Folds constant expressions and propagates copies within each block:
/// Const feeding a binary op folds to a Const; Move from a known-constant
/// register rewrites to Const. Returns the number of simplified
/// instructions.
std::size_t runConstantFolding(HGraph &G);

/// Removes side-effect-free instructions whose destination register is dead
/// (backward liveness over the CFG). Returns the number removed.
std::size_t runDeadCodeElim(HGraph &G);

/// Local copy propagation: within each block, uses of a register that holds
/// a copy are rewritten to the copy's source, and moves that become
/// self-assignments are dropped. Returns the number of rewritten uses plus
/// dropped moves.
std::size_t runCopyPropagation(HGraph &G);

/// Local common subexpression elimination by value numbering: within each
/// block, a pure expression computed twice over unchanged operands is
/// replaced by a move from the earlier result. Division is included — if
/// the first division did not throw, an identical one cannot. Returns the
/// number of expressions eliminated.
std::size_t runLocalCse(HGraph &G);

/// Removes blocks unreachable from the entry and merges straight-line
/// Goto-connected block pairs (single successor / single predecessor).
/// Returns the number of blocks eliminated.
std::size_t runBlockMerge(HGraph &G);

/// Redirects all predecessors of structurally identical single-instruction
/// return blocks to one canonical copy (dex2oat's "return merging").
/// Returns the number of blocks eliminated.
std::size_t runReturnMerge(HGraph &G);

/// One pipeline entry: a named pass.
struct Pass {
  std::string Name;
  std::size_t (*Run)(HGraph &);
};

/// Per-pass statistics from one pipeline run.
struct PassStats {
  std::string Name;
  std::size_t Simplified = 0;
};

/// The default pipeline in dex2oat order (the §5 "Code Size Reduction in
/// Android" list: constant/copy propagation, CSE, dead code elimination,
/// unreachable-code removal, return merging).
std::vector<Pass> defaultPipeline();

/// Runs \p Pipeline over \p G, verifying the graph after every pass in
/// asserts builds. Returns per-pass statistics.
std::vector<PassStats> runPipeline(HGraph &G, const std::vector<Pass> &Pipeline);

} // namespace hir
} // namespace calibro

#endif // CALIBRO_HIR_PASSES_H
