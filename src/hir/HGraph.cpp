//===- hir/HGraph.cpp - HGraph construction and verification --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "hir/HGraph.h"

#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace calibro;
using namespace calibro::hir;

bool hir::isBlockTerminator(HOp Op) {
  switch (Op) {
  case HOp::If:
  case HOp::Goto:
  case HOp::Switch:
  case HOp::Return:
  case HOp::ReturnVoid:
  case HOp::Throw:
    return true;
  default:
    return false;
  }
}

bool hir::isRemovableIfDead(HOp Op) {
  switch (Op) {
  case HOp::Const:
  case HOp::Move:
  case HOp::Add:
  case HOp::Sub:
  case HOp::Mul:
  case HOp::And:
  case HOp::Or:
  case HOp::Xor:
  case HOp::Shl:
  case HOp::Shr:
  case HOp::AddImm:
    return true;
  default:
    return false;
  }
}

namespace {

/// Translates a dex conditional-branch op to (CondKind, compares-to-zero).
std::pair<CondKind, bool> condOf(dex::Op Op) {
  switch (Op) {
  case dex::Op::IfEq:
    return {CondKind::Eq, false};
  case dex::Op::IfNe:
    return {CondKind::Ne, false};
  case dex::Op::IfLt:
    return {CondKind::Lt, false};
  case dex::Op::IfGe:
    return {CondKind::Ge, false};
  case dex::Op::IfGt:
    return {CondKind::Gt, false};
  case dex::Op::IfLe:
    return {CondKind::Le, false};
  case dex::Op::IfEqz:
    return {CondKind::Eq, true};
  case dex::Op::IfNez:
    return {CondKind::Ne, true};
  case dex::Op::IfLtz:
    return {CondKind::Lt, true};
  case dex::Op::IfGez:
    return {CondKind::Ge, true};
  default:
    CALIBRO_UNREACHABLE("not a dex conditional branch");
  }
}

bool isDexBranch(dex::Op Op) {
  switch (Op) {
  case dex::Op::IfEq:
  case dex::Op::IfNe:
  case dex::Op::IfLt:
  case dex::Op::IfGe:
  case dex::Op::IfGt:
  case dex::Op::IfLe:
  case dex::Op::IfEqz:
  case dex::Op::IfNez:
  case dex::Op::IfLtz:
  case dex::Op::IfGez:
    return true;
  default:
    return false;
  }
}

HOp binOpOf(dex::Op Op) {
  switch (Op) {
  case dex::Op::Add:
    return HOp::Add;
  case dex::Op::Sub:
    return HOp::Sub;
  case dex::Op::Mul:
    return HOp::Mul;
  case dex::Op::Div:
    return HOp::Div;
  case dex::Op::And:
    return HOp::And;
  case dex::Op::Or:
    return HOp::Or;
  case dex::Op::Xor:
    return HOp::Xor;
  case dex::Op::Shl:
    return HOp::Shl;
  case dex::Op::Shr:
    return HOp::Shr;
  default:
    CALIBRO_UNREACHABLE("not a dex binary op");
  }
}

} // namespace

Expected<HGraph> hir::buildHGraph(const dex::Method &M) {
  if (M.IsNative)
    return makeError("buildHGraph: native method '" + M.Name + "'");
  if (auto E = dex::verifyMethod(M, ~uint32_t(0)))
    return E;

  std::size_t N = M.Code.size();

  // Pass 1: find block leaders.
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (std::size_t Pc = 0; Pc < N; ++Pc) {
    const dex::Insn &I = M.Code[Pc];
    if (isDexBranch(I.Opcode)) {
      Leader[I.Target] = true;
      if (Pc + 1 < N)
        Leader[Pc + 1] = true;
    } else if (I.Opcode == dex::Op::Goto) {
      Leader[I.Target] = true;
      if (Pc + 1 < N)
        Leader[Pc + 1] = true;
    } else if (I.Opcode == dex::Op::Switch) {
      for (uint32_t T : M.SwitchTables[static_cast<std::size_t>(I.Imm)])
        Leader[T] = true;
      if (Pc + 1 < N)
        Leader[Pc + 1] = true;
    } else if (dex::endsBlock(I.Opcode)) {
      if (Pc + 1 < N)
        Leader[Pc + 1] = true;
    }
  }

  // Map every leader pc to its block id.
  std::map<uint32_t, uint32_t> BlockOf;
  uint32_t NumBlocks = 0;
  for (std::size_t Pc = 0; Pc < N; ++Pc)
    if (Leader[Pc])
      BlockOf[static_cast<uint32_t>(Pc)] = NumBlocks++;

  HGraph G;
  G.MethodIdx = M.Idx;
  G.Name = M.Name;
  G.NumRegs = M.NumRegs;
  G.NumArgs = M.NumArgs;
  G.ReturnsValue = M.ReturnsValue;
  G.Blocks.resize(NumBlocks);
  for (uint32_t B = 0; B < NumBlocks; ++B)
    G.Blocks[B].Id = B;

  // Pass 2: translate instructions block by block.
  uint32_t Cur = ~uint32_t(0);
  for (std::size_t Pc = 0; Pc < N; ++Pc) {
    if (Leader[Pc])
      Cur = BlockOf.at(static_cast<uint32_t>(Pc));
    HBlock &BB = G.Blocks[Cur];
    const dex::Insn &I = M.Code[Pc];
    HInsn H;
    H.DexPc = static_cast<uint32_t>(Pc);

    switch (I.Opcode) {
    case dex::Op::Nop:
      continue; // Dropped during construction.

    case dex::Op::ConstInt:
      H.Op = HOp::Const;
      H.A = I.A;
      H.Imm = I.Imm;
      break;
    case dex::Op::Move:
      H.Op = HOp::Move;
      H.A = I.A;
      H.B = I.B;
      break;

    case dex::Op::Add:
    case dex::Op::Sub:
    case dex::Op::Mul:
    case dex::Op::Div:
    case dex::Op::And:
    case dex::Op::Or:
    case dex::Op::Xor:
    case dex::Op::Shl:
    case dex::Op::Shr:
      H.Op = binOpOf(I.Opcode);
      H.A = I.A;
      H.B = I.B;
      H.C = I.C;
      break;

    case dex::Op::AddImm:
      H.Op = HOp::AddImm;
      H.A = I.A;
      H.B = I.B;
      H.Imm = I.Imm;
      break;

    case dex::Op::IfEq:
    case dex::Op::IfNe:
    case dex::Op::IfLt:
    case dex::Op::IfGe:
    case dex::Op::IfGt:
    case dex::Op::IfLe:
    case dex::Op::IfEqz:
    case dex::Op::IfNez:
    case dex::Op::IfLtz:
    case dex::Op::IfGez: {
      auto [CC, Zero] = condOf(I.Opcode);
      H.Op = HOp::If;
      H.CC = CC;
      H.A = I.A;
      H.B = Zero ? dex::NoReg : I.B;
      BB.Insns.push_back(H);
      BB.Succs.push_back(BlockOf.at(I.Target));                 // Taken.
      BB.Succs.push_back(BlockOf.at(static_cast<uint32_t>(Pc) + 1)); // Fall.
      continue;
    }

    case dex::Op::Goto:
      H.Op = HOp::Goto;
      BB.Insns.push_back(H);
      BB.Succs.push_back(BlockOf.at(I.Target));
      continue;

    case dex::Op::Switch: {
      H.Op = HOp::Switch;
      H.A = I.A;
      BB.Insns.push_back(H);
      for (uint32_t T : M.SwitchTables[static_cast<std::size_t>(I.Imm)])
        BB.Succs.push_back(BlockOf.at(T));
      BB.Succs.push_back(BlockOf.at(static_cast<uint32_t>(Pc) + 1)); // Default.
      continue;
    }

    case dex::Op::Return:
      H.Op = HOp::Return;
      H.A = I.A;
      BB.Insns.push_back(H);
      continue;
    case dex::Op::ReturnVoid:
      H.Op = HOp::ReturnVoid;
      BB.Insns.push_back(H);
      continue;
    case dex::Op::Throw:
      H.Op = HOp::Throw;
      H.A = I.A;
      BB.Insns.push_back(H);
      continue;

    case dex::Op::InvokeStatic:
    case dex::Op::InvokeVirtual:
      H.Op = I.Opcode == dex::Op::InvokeStatic ? HOp::InvokeStatic
                                               : HOp::InvokeVirtual;
      H.A = I.A;
      H.Idx = I.Idx;
      H.Args = I.Args;
      H.NumArgs = I.NumArgs;
      break;

    case dex::Op::NewInstance:
      H.Op = HOp::NewInstance;
      H.A = I.A;
      H.Idx = I.Idx;
      break;

    case dex::Op::IGet:
      H.Op = HOp::IGet;
      H.A = I.A;
      H.B = I.B;
      H.Imm = I.Imm;
      break;
    case dex::Op::IPut:
      H.Op = HOp::IPut;
      H.A = I.A;
      H.B = I.B;
      H.Imm = I.Imm;
      break;
    }

    BB.Insns.push_back(H);
    // A non-terminating instruction right before a leader needs an explicit
    // fallthrough Goto to keep blocks self-contained.
    if (Pc + 1 < N && Leader[Pc + 1]) {
      HInsn Jump;
      Jump.Op = HOp::Goto;
      Jump.DexPc = static_cast<uint32_t>(Pc);
      BB.Insns.push_back(Jump);
      BB.Succs.push_back(BlockOf.at(static_cast<uint32_t>(Pc) + 1));
    }
  }

  // Pass 3: predecessor edges.
  for (auto &B : G.Blocks)
    for (uint32_t S : B.Succs)
      G.Blocks[S].Preds.push_back(B.Id);

  if (auto E = verifyHGraph(G))
    return E;
  return G;
}

Error hir::verifyHGraph(const HGraph &G) {
  auto Fail = [&](uint32_t B, const char *Msg) {
    return makeError("HGraph '" + G.Name + "' block " + std::to_string(B) +
                     ": " + Msg);
  };
  if (G.Blocks.empty())
    return makeError("HGraph '" + G.Name + "': no blocks");

  for (const auto &B : G.Blocks) {
    if (B.Insns.empty())
      return Fail(B.Id, "empty block");
    for (std::size_t K = 0; K + 1 < B.Insns.size(); ++K)
      if (isBlockTerminator(B.Insns[K].Op))
        return Fail(B.Id, "terminator before the end of the block");
    const HInsn &Last = B.Insns.back();
    if (!isBlockTerminator(Last.Op))
      return Fail(B.Id, "block does not end with a terminator");
    switch (Last.Op) {
    case HOp::If:
      if (B.Succs.size() != 2)
        return Fail(B.Id, "If must have exactly two successors");
      break;
    case HOp::Goto:
      if (B.Succs.size() != 1)
        return Fail(B.Id, "Goto must have exactly one successor");
      break;
    case HOp::Switch:
      if (B.Succs.size() < 2)
        return Fail(B.Id, "Switch needs at least one case plus default");
      break;
    case HOp::Return:
    case HOp::ReturnVoid:
    case HOp::Throw:
      if (!B.Succs.empty())
        return Fail(B.Id, "exit block must have no successors");
      break;
    default:
      CALIBRO_UNREACHABLE("non-terminator classified as terminator");
    }
    for (uint32_t S : B.Succs)
      if (S >= G.Blocks.size())
        return Fail(B.Id, "successor id out of range");
  }

  // Pred/Succ symmetry (as multisets).
  for (const auto &B : G.Blocks) {
    for (uint32_t S : B.Succs) {
      const auto &P = G.Blocks[S].Preds;
      auto CountSucc = std::count(B.Succs.begin(), B.Succs.end(), S);
      auto CountPred = std::count(P.begin(), P.end(), B.Id);
      if (CountSucc != CountPred)
        return Fail(B.Id, "Pred/Succ edge mismatch");
    }
  }
  return Error::success();
}
