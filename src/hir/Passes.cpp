//===- hir/Passes.cpp - HGraph optimization passes -------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "hir/Passes.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>

using namespace calibro;
using namespace calibro::hir;

std::optional<uint16_t> hir::defOf(const HInsn &I) {
  switch (I.Op) {
  case HOp::Const:
  case HOp::Move:
  case HOp::Add:
  case HOp::Sub:
  case HOp::Mul:
  case HOp::Div:
  case HOp::And:
  case HOp::Or:
  case HOp::Xor:
  case HOp::Shl:
  case HOp::Shr:
  case HOp::AddImm:
  case HOp::NewInstance:
  case HOp::IGet:
    return I.A;
  case HOp::InvokeStatic:
  case HOp::InvokeVirtual:
    if (I.A != dex::NoReg)
      return I.A;
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

void hir::usesOf(const HInsn &I, std::vector<uint16_t> &Uses) {
  switch (I.Op) {
  case HOp::Const:
  case HOp::Goto:
  case HOp::ReturnVoid:
  case HOp::NewInstance:
    return;
  case HOp::Move:
  case HOp::AddImm:
    Uses.push_back(I.B);
    return;
  case HOp::Add:
  case HOp::Sub:
  case HOp::Mul:
  case HOp::Div:
  case HOp::And:
  case HOp::Or:
  case HOp::Xor:
  case HOp::Shl:
  case HOp::Shr:
    Uses.push_back(I.B);
    Uses.push_back(I.C);
    return;
  case HOp::If:
    Uses.push_back(I.A);
    if (I.B != dex::NoReg)
      Uses.push_back(I.B);
    return;
  case HOp::Switch:
  case HOp::Return:
  case HOp::Throw:
    Uses.push_back(I.A);
    return;
  case HOp::InvokeStatic:
  case HOp::InvokeVirtual:
    for (uint8_t K = 0; K < I.NumArgs; ++K)
      Uses.push_back(I.Args[K]);
    return;
  case HOp::IGet:
    Uses.push_back(I.B);
    return;
  case HOp::IPut:
    Uses.push_back(I.A);
    Uses.push_back(I.B);
    return;
  }
  CALIBRO_UNREACHABLE("unknown HOp in usesOf");
}

namespace {

/// AArch64-consistent evaluation of a folded binary op. Returns nullopt when
/// folding must be suppressed (division by zero keeps its throwing check).
std::optional<int64_t> evalBinOp(HOp Op, int64_t L, int64_t R) {
  switch (Op) {
  case HOp::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(L) +
                                static_cast<uint64_t>(R));
  case HOp::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(L) -
                                static_cast<uint64_t>(R));
  case HOp::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(L) *
                                static_cast<uint64_t>(R));
  case HOp::Div:
    if (R == 0)
      return std::nullopt; // The implicit check must stay.
    if (L == INT64_MIN && R == -1)
      return INT64_MIN; // AArch64 sdiv overflow result.
    return L / R;
  case HOp::And:
    return L & R;
  case HOp::Or:
    return L | R;
  case HOp::Xor:
    return L ^ R;
  case HOp::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(L) << (R & 63));
  case HOp::Shr:
    return L >> (R & 63); // Arithmetic, like lowered ASRV.
  default:
    CALIBRO_UNREACHABLE("not a binary op");
  }
}

/// Removes unreachable blocks, renumbers the survivors and rebuilds
/// predecessor lists. Returns the number of blocks removed.
std::size_t compactAndRemap(HGraph &G) {
  std::vector<bool> Reachable(G.Blocks.size(), false);
  std::vector<uint32_t> Work = {0};
  Reachable[0] = true;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : G.Blocks[B].Succs)
      if (!Reachable[S]) {
        Reachable[S] = true;
        Work.push_back(S);
      }
  }

  std::vector<uint32_t> Remap(G.Blocks.size(), ~uint32_t(0));
  std::vector<HBlock> Kept;
  Kept.reserve(G.Blocks.size());
  for (uint32_t B = 0; B < G.Blocks.size(); ++B) {
    if (!Reachable[B])
      continue;
    Remap[B] = static_cast<uint32_t>(Kept.size());
    Kept.push_back(std::move(G.Blocks[B]));
  }
  std::size_t Removed = G.Blocks.size() - Kept.size();
  G.Blocks = std::move(Kept);

  for (uint32_t B = 0; B < G.Blocks.size(); ++B) {
    HBlock &BB = G.Blocks[B];
    BB.Id = B;
    for (uint32_t &S : BB.Succs)
      S = Remap[S];
    BB.Preds.clear();
  }
  for (const auto &BB : G.Blocks)
    for (uint32_t S : BB.Succs)
      G.Blocks[S].Preds.push_back(BB.Id);
  return Removed;
}

} // namespace

std::size_t hir::runConstantFolding(HGraph &G) {
  assert(G.NumRegs <= 64 && "register file too large for bitmask liveness");
  std::size_t Simplified = 0;
  for (auto &B : G.Blocks) {
    std::unordered_map<uint16_t, int64_t> Known;
    // Arguments arrive in v0..vNumArgs-1 of the entry block; they are not
    // constants. Everything else starts unknown too, so no seeding needed.
    for (auto &I : B.Insns) {
      switch (I.Op) {
      case HOp::Const:
        Known[I.A] = I.Imm;
        continue;
      case HOp::Move: {
        auto It = Known.find(I.B);
        if (It != Known.end()) {
          I.Op = HOp::Const;
          I.Imm = It->second;
          I.B = 0;
          Known[I.A] = I.Imm;
          ++Simplified;
        } else {
          Known.erase(I.A);
        }
        continue;
      }
      case HOp::AddImm: {
        auto It = Known.find(I.B);
        if (It != Known.end()) {
          I.Op = HOp::Const;
          I.Imm = static_cast<int64_t>(static_cast<uint64_t>(It->second) +
                                       static_cast<uint64_t>(I.Imm));
          I.B = 0;
          Known[I.A] = I.Imm;
          ++Simplified;
        } else {
          Known.erase(I.A);
        }
        continue;
      }
      case HOp::Add:
      case HOp::Sub:
      case HOp::Mul:
      case HOp::Div:
      case HOp::And:
      case HOp::Or:
      case HOp::Xor:
      case HOp::Shl:
      case HOp::Shr: {
        auto ItB = Known.find(I.B);
        auto ItC = Known.find(I.C);
        if (ItB != Known.end() && ItC != Known.end()) {
          if (auto Val = evalBinOp(I.Op, ItB->second, ItC->second)) {
            I.Op = HOp::Const;
            I.Imm = *Val;
            I.B = I.C = 0;
            Known[I.A] = *Val;
            ++Simplified;
            continue;
          }
        }
        Known.erase(I.A);
        continue;
      }
      default:
        if (auto D = defOf(I))
          Known.erase(*D);
        continue;
      }
    }
  }
  return Simplified;
}

std::size_t hir::runDeadCodeElim(HGraph &G) {
  assert(G.NumRegs <= 64 && "register file too large for bitmask liveness");
  std::size_t NB = G.Blocks.size();
  std::vector<uint64_t> LiveIn(NB, 0), LiveOut(NB, 0);

  auto transfer = [&](const HBlock &B, uint64_t Live) {
    std::vector<uint16_t> Uses;
    for (auto It = B.Insns.rbegin(); It != B.Insns.rend(); ++It) {
      if (auto D = defOf(*It))
        Live &= ~(uint64_t(1) << *D);
      Uses.clear();
      usesOf(*It, Uses);
      for (uint16_t U : Uses)
        Live |= uint64_t(1) << U;
    }
    return Live;
  };

  // Backward fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t B = NB; B-- > 0;) {
      uint64_t Out = 0;
      for (uint32_t S : G.Blocks[B].Succs)
        Out |= LiveIn[S];
      uint64_t In = transfer(G.Blocks[B], Out);
      if (Out != LiveOut[B] || In != LiveIn[B]) {
        LiveOut[B] = Out;
        LiveIn[B] = In;
        Changed = true;
      }
    }
  }

  // Sweep: delete removable instructions with dead destinations.
  std::size_t Removed = 0;
  std::vector<uint16_t> Uses;
  for (std::size_t B = 0; B < NB; ++B) {
    HBlock &BB = G.Blocks[B];
    uint64_t Live = LiveOut[B];
    std::vector<HInsn> Kept;
    Kept.reserve(BB.Insns.size());
    for (auto It = BB.Insns.rbegin(); It != BB.Insns.rend(); ++It) {
      auto D = defOf(*It);
      bool Dead = D && isRemovableIfDead(It->Op) &&
                  (Live & (uint64_t(1) << *D)) == 0;
      if (Dead) {
        ++Removed;
        continue;
      }
      if (D)
        Live &= ~(uint64_t(1) << *D);
      Uses.clear();
      usesOf(*It, Uses);
      for (uint16_t U : Uses)
        Live |= uint64_t(1) << U;
      Kept.push_back(*It);
    }
    std::reverse(Kept.begin(), Kept.end());
    BB.Insns = std::move(Kept);
  }
  return Removed;
}

namespace {

/// Applies \p Fn to every register-use field of \p I (mutable).
template <typename FnT> void forEachUseReg(HInsn &I, FnT &&Fn) {
  switch (I.Op) {
  case HOp::Const:
  case HOp::Goto:
  case HOp::ReturnVoid:
  case HOp::NewInstance:
    return;
  case HOp::Move:
  case HOp::AddImm:
    Fn(I.B);
    return;
  case HOp::Add:
  case HOp::Sub:
  case HOp::Mul:
  case HOp::Div:
  case HOp::And:
  case HOp::Or:
  case HOp::Xor:
  case HOp::Shl:
  case HOp::Shr:
    Fn(I.B);
    Fn(I.C);
    return;
  case HOp::If:
    Fn(I.A);
    if (I.B != dex::NoReg)
      Fn(I.B);
    return;
  case HOp::Switch:
  case HOp::Return:
  case HOp::Throw:
    Fn(I.A);
    return;
  case HOp::InvokeStatic:
  case HOp::InvokeVirtual:
    for (uint8_t K = 0; K < I.NumArgs; ++K)
      Fn(I.Args[K]);
    return;
  case HOp::IGet:
    Fn(I.B);
    return;
  case HOp::IPut:
    Fn(I.A);
    Fn(I.B);
    return;
  }
  CALIBRO_UNREACHABLE("unknown HOp in forEachUseReg");
}

} // namespace

std::size_t hir::runCopyPropagation(HGraph &G) {
  std::size_t Changed = 0;
  for (auto &B : G.Blocks) {
    // CopyOf[r] = the register r currently mirrors; NoReg = none.
    std::vector<uint16_t> CopyOf(G.NumRegs, dex::NoReg);
    auto resolve = [&](uint16_t R) {
      return CopyOf[R] != dex::NoReg ? CopyOf[R] : R;
    };
    auto killReg = [&](uint16_t R) {
      CopyOf[R] = dex::NoReg;
      for (auto &C : CopyOf)
        if (C == R)
          C = dex::NoReg;
    };

    std::vector<HInsn> Kept;
    Kept.reserve(B.Insns.size());
    for (HInsn &I : B.Insns) {
      forEachUseReg(I, [&](uint16_t &R) {
        uint16_t Src = resolve(R);
        if (Src != R) {
          R = Src;
          ++Changed;
        }
      });
      if (I.Op == HOp::Move) {
        if (I.A == I.B) {
          ++Changed; // Self-assignment: drop it.
          continue;
        }
        killReg(I.A);
        CopyOf[I.A] = I.B;
      } else if (auto D = defOf(I)) {
        killReg(*D);
      }
      Kept.push_back(I);
    }
    B.Insns = std::move(Kept);
  }
  return Changed;
}

std::size_t hir::runLocalCse(HGraph &G) {
  std::size_t Eliminated = 0;
  for (auto &B : G.Blocks) {
    // Classic local value numbering. A register's value number changes on
    // every definition, so stale expression entries self-invalidate.
    std::vector<uint32_t> RegVn(G.NumRegs, 0);
    uint32_t NextVn = G.NumRegs;
    struct Available {
      uint16_t Reg;
      uint32_t RegVnAtDef;
    };
    std::map<std::tuple<uint8_t, uint32_t, uint32_t, int64_t>, Available>
        Exprs;
    for (uint16_t R = 0; R < G.NumRegs; ++R)
      RegVn[R] = R; // Initial distinct value numbers.

    for (HInsn &I : B.Insns) {
      bool Pure = false;
      std::tuple<uint8_t, uint32_t, uint32_t, int64_t> Key;
      switch (I.Op) {
      case HOp::Const:
        Pure = true;
        Key = {static_cast<uint8_t>(I.Op), 0, 0, I.Imm};
        break;
      case HOp::AddImm:
        Pure = true;
        Key = {static_cast<uint8_t>(I.Op), RegVn[I.B], 0, I.Imm};
        break;
      case HOp::Add:
      case HOp::Sub:
      case HOp::Mul:
      case HOp::Div:
      case HOp::And:
      case HOp::Or:
      case HOp::Xor:
      case HOp::Shl:
      case HOp::Shr:
        Pure = true;
        Key = {static_cast<uint8_t>(I.Op), RegVn[I.B], RegVn[I.C], 0};
        break;
      default:
        break;
      }

      if (Pure) {
        auto It = Exprs.find(Key);
        if (It != Exprs.end() &&
            RegVn[It->second.Reg] == It->second.RegVnAtDef &&
            It->second.Reg != I.A) {
          // Same value is live in another register: reuse it.
          uint16_t Holder = It->second.Reg;
          I.Op = HOp::Move;
          I.B = Holder;
          I.C = 0;
          I.Imm = 0;
          ++Eliminated;
          // The destination now shares the holder's value number.
          RegVn[I.A] = RegVn[Holder];
          continue;
        }
        RegVn[I.A] = NextVn++;
        Exprs[Key] = {I.A, RegVn[I.A]};
        continue;
      }
      if (I.Op == HOp::Move) {
        RegVn[I.A] = RegVn[I.B]; // Copies share a value number.
        continue;
      }
      if (auto D = defOf(I))
        RegVn[*D] = NextVn++;
    }
  }
  return Eliminated;
}

std::size_t hir::runBlockMerge(HGraph &G) {
  // Merge Goto-connected pairs until a fixpoint, then compact.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &B : G.Blocks) {
      if (B.Insns.empty())
        continue; // Already merged away.
      if (B.Insns.back().Op != HOp::Goto)
        continue;
      uint32_t S = B.Succs[0];
      if (S == B.Id)
        continue;
      HBlock &SB = G.Blocks[S];
      if (SB.Preds.size() != 1 || SB.Insns.empty() || S == 0)
        continue;
      // Splice SB into B.
      B.Insns.pop_back();
      B.Insns.insert(B.Insns.end(), SB.Insns.begin(), SB.Insns.end());
      B.Succs = SB.Succs;
      for (uint32_t SS : B.Succs) {
        for (uint32_t &P : G.Blocks[SS].Preds)
          if (P == S)
            P = B.Id;
      }
      SB.Insns.clear();
      SB.Succs.clear();
      SB.Preds.clear();
      Changed = true;
    }
  }
  // Emptied blocks are unreachable now (no edges lead to them).
  return compactAndRemap(G);
}

std::size_t hir::runReturnMerge(HGraph &G) {
  // Group single-instruction return blocks by (kind, register).
  std::unordered_map<uint32_t, uint32_t> Canonical; // Key -> block id.
  auto keyOf = [](const HInsn &I) {
    return (I.Op == HOp::ReturnVoid ? 0x10000u : 0u) | I.A;
  };
  bool Redirected = false;
  for (auto &B : G.Blocks) {
    if (B.Insns.size() != 1)
      continue;
    const HInsn &I = B.Insns[0];
    if (I.Op != HOp::Return && I.Op != HOp::ReturnVoid)
      continue;
    auto [It, Inserted] = Canonical.emplace(keyOf(I), B.Id);
    if (Inserted || It->second == B.Id)
      continue;
    // Redirect every predecessor edge to the canonical block.
    for (uint32_t P : B.Preds)
      for (uint32_t &S : G.Blocks[P].Succs)
        if (S == B.Id)
          S = It->second;
    Redirected = true;
  }
  if (!Redirected)
    return 0;
  // Rebuild preds, then drop the now-unreachable duplicates.
  for (auto &B : G.Blocks)
    B.Preds.clear();
  for (const auto &B : G.Blocks)
    for (uint32_t S : B.Succs)
      G.Blocks[S].Preds.push_back(B.Id);
  return compactAndRemap(G);
}

std::vector<Pass> hir::defaultPipeline() {
  return {
      {"constant-folding", runConstantFolding},
      {"local-cse", runLocalCse},
      {"copy-propagation", runCopyPropagation},
      {"dead-code-elim", runDeadCodeElim},
      {"block-merge", runBlockMerge},
      {"return-merge", runReturnMerge},
  };
}

std::vector<PassStats> hir::runPipeline(HGraph &G,
                                        const std::vector<Pass> &Pipeline) {
  std::vector<PassStats> Stats;
  Stats.reserve(Pipeline.size());
  for (const auto &P : Pipeline) {
    PassStats S;
    S.Name = P.Name;
    S.Simplified = P.Run(G);
    Stats.push_back(std::move(S));
#ifndef NDEBUG
    if (auto E = verifyHGraph(G)) {
      std::fprintf(stderr, "pass '%s' broke '%s': %s\n", P.Name.c_str(),
                   G.Name.c_str(), E.message().c_str());
      std::abort();
    }
#endif
  }
  return Stats;
}
