//===- hir/HGraph.h - HGraph intermediate representation --------*- C++ -*-===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HGraph IR: the per-method, block-structured representation that
/// dex2oat-style compilation optimizes before code generation (paper Fig. 5,
/// "methodN.M -> HgraphN.M -> opt passes"). Deliberately per-method: the
/// paper's Motivation (§2.4) is that HGraph-level optimization cannot see
/// cross-method binary redundancy, which is exactly what Calibro's link-time
/// stage then removes.
///
/// The IR keeps dex's virtual-register style (it is not SSA), mirroring how
/// the block structure, not the value graph, is what code generation and the
/// later outlining care about.
///
//===----------------------------------------------------------------------===//

#ifndef CALIBRO_HIR_HGRAPH_H
#define CALIBRO_HIR_HGRAPH_H

#include "dex/Dex.h"
#include "support/Error.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace calibro {
namespace hir {

/// HGraph operations. Mostly 1:1 with dex ops; conditional branches are
/// unified under HOp::If with a condition kind.
enum class HOp : uint8_t {
  Const,
  Move,
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  AddImm,
  If,     ///< Conditional branch; CC + (B==dex::NoReg means compare to 0).
  Goto,
  Switch,
  Return,
  ReturnVoid,
  InvokeStatic,
  InvokeVirtual,
  NewInstance,
  Throw,
  IGet,
  IPut,
};

/// Condition kinds for HOp::If.
enum class CondKind : uint8_t { Eq, Ne, Lt, Ge, Gt, Le };

/// One HGraph instruction.
struct HInsn {
  HOp Op = HOp::Goto;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int64_t Imm = 0;
  uint32_t Idx = 0;
  CondKind CC = CondKind::Eq;
  std::array<uint16_t, 4> Args = {dex::NoReg, dex::NoReg, dex::NoReg,
                                  dex::NoReg};
  uint8_t NumArgs = 0;
  uint32_t DexPc = 0; ///< Originating bytecode index, kept for StackMaps.
};

/// True when \p Op must be the last instruction of its block.
bool isBlockTerminator(HOp Op);

/// True when removing an instruction with this op cannot change observable
/// behaviour as long as its destination is dead. Div is excluded (implicit
/// divide-by-zero check), as are loads/stores (implicit null checks) and
/// everything with control-flow or call semantics.
bool isRemovableIfDead(HOp Op);

/// Returns the virtual register defined by \p I, if any.
std::optional<uint16_t> defOf(const HInsn &I);

/// Appends the virtual registers read by \p I to \p Uses.
void usesOf(const HInsn &I, std::vector<uint16_t> &Uses);

/// A basic block: straight-line instructions ending in a terminator, plus
/// explicit successor edges.
///
/// Successor conventions: If -> {taken, fallthrough}; Goto -> {target};
/// Switch -> {case0..caseN-1, default}; Return/ReturnVoid/Throw -> {}.
struct HBlock {
  uint32_t Id = 0;
  std::vector<HInsn> Insns;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

/// One method's HGraph plus the method facts code generation needs.
struct HGraph {
  uint32_t MethodIdx = 0;
  std::string Name;
  uint16_t NumRegs = 0;
  uint16_t NumArgs = 0;
  bool ReturnsValue = false;
  std::vector<HBlock> Blocks; ///< Block 0 is the entry block.

  /// Total instruction count across blocks (pass statistics).
  std::size_t numInsns() const {
    std::size_t N = 0;
    for (const auto &B : Blocks)
      N += B.Insns.size();
    return N;
  }
};

/// Builds an HGraph from dex bytecode: finds block leaders, splits code at
/// them, rewrites bytecode targets into block ids, and inserts explicit
/// Gotos for fallthrough edges. Native methods are rejected (they have no
/// bytecode; code generation handles them directly).
Expected<HGraph> buildHGraph(const dex::Method &M);

/// Checks HGraph invariants: terminator placement, successor-shape per
/// terminator kind, and Pred/Succ symmetry.
Error verifyHGraph(const HGraph &G);

} // namespace hir
} // namespace calibro

#endif // CALIBRO_HIR_HGRAPH_H
