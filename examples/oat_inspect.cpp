//===- examples/oat_inspect.cpp - oatdump-style image inspector -------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a small app with full Calibro and dumps the resulting OAT image:
/// header summary, per-method disassembly with embedded data rendered as
/// data (thanks to the recorded side information), the CTO stubs and the
/// outlined functions. Pass a method name fragment to dump only matching
/// methods.
///
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "oat/Dump.h"
#include "workload/Workload.h"

#include <cstdio>
#include <cstring>

using namespace calibro;

int main(int argc, char **argv) {
  const char *Filter = argc > 1 ? argv[1] : nullptr;

  workload::AppSpec Spec;
  Spec.Name = "inspect";
  Spec.Seed = 42;
  Spec.NumWorkers = 24;
  Spec.NumUtilities = 12;
  dex::App App = workload::makeApp(Spec);

  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  auto B = core::buildApp(App, Opts);
  if (!B) {
    std::fprintf(stderr, "build failed: %s\n", B.message().c_str());
    return 1;
  }

  if (!Filter) {
    std::fputs(oat::dumpOat(B->Oat, /*Disassemble=*/true).c_str(), stdout);
    return 0;
  }
  std::fputs(oat::dumpOat(B->Oat, /*Disassemble=*/false).c_str(), stdout);
  for (const auto &M : B->Oat.Methods)
    if (M.Name.find(Filter) != std::string::npos) {
      std::fputs("\n", stdout);
      std::fputs(oat::dumpMethod(B->Oat, M).c_str(), stdout);
    }
  return 0;
}
