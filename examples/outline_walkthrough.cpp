//===- examples/outline_walkthrough.cpp - Paper Table 2, live ---------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Table 2 end to end with the real encoder and
/// patch math: the original five-instruction sequence at 0x138320, the
/// outlined function at 0x145224, the naive replacement with the outdated
/// cbz offset (code 3), and the patched final form (code 4).
///
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/Disasm.h"
#include "aarch64/Encoder.h"
#include "aarch64/PcRel.h"

#include <cstdio>
#include <vector>

using namespace calibro;
using namespace calibro::a64;

namespace {

void show(const char *Title, const std::vector<uint32_t> &Words,
          uint64_t Base) {
  std::printf("// %s\n", Title);
  for (std::size_t K = 0; K < Words.size(); ++K) {
    uint64_t Addr = Base + K * 4;
    auto I = decode(Words[K]);
    std::printf("0x%llx: %s\n", (unsigned long long)Addr,
                I ? toString(*I, Addr).c_str() : ".word");
  }
  std::printf("\n");
}

} // namespace

int main() {
  constexpr uint64_t CodeBase = 0x138320;
  constexpr uint64_t OutlinedBase = 0x145224;

  // Code 1: the original sequence. The middle two instructions (ldr/cmp)
  // are the repetitive pair to be outlined.
  Insn Cbz{.Op = Opcode::Cbz, .Is64 = false, .Rd = 0};
  Cbz.Imm = 0xc; // -> 0x13832c
  Insn LdrW2{.Op = Opcode::LdrImm, .Is64 = false, .Rd = 2, .Rn = 0};
  Insn CmpW{.Op = Opcode::SubsReg, .Is64 = false, .Rd = ZR, .Rn = 2, .Rm = 1};
  Insn MovX3{.Op = Opcode::OrrReg, .Rd = 3, .Rn = ZR, .Rm = 4};
  Insn LdrX3{.Op = Opcode::LdrImm, .Rd = 3, .Rn = 0};

  std::vector<uint32_t> Code1 = {encode(Cbz), encode(LdrW2), encode(CmpW),
                                 encode(MovX3), encode(LdrX3)};
  show("Code 1: Original Code Sequence", Code1, CodeBase);

  // Code 2: the outlined function <MethodOutliner>: the sequence plus the
  // extra return, br x30 (paper §3.3.3).
  Insn BrLr{.Op = Opcode::Br};
  BrLr.Rn = LR;
  std::vector<uint32_t> Code2 = {encode(LdrW2), encode(CmpW), encode(BrLr)};
  show("Code 2: Outlined Function <MethodOutliner>", Code2, OutlinedBase);

  // Code 3: occurrences replaced by `bl <MethodOutliner>` — the cbz target
  // is now stale: it still says +0xc although the code shrank.
  Insn Bl{.Op = Opcode::Bl};
  Bl.Imm = static_cast<int64_t>(OutlinedBase) -
           static_cast<int64_t>(CodeBase + 4);
  std::vector<uint32_t> Code3 = {encode(Cbz), encode(Bl), encode(MovX3),
                                 encode(LdrX3)};
  show("Code 3: Replaced, with the outdated cbz offset", Code3, CodeBase);

  // Code 4: patch the PC-relative cbz with the recorded target (the mov,
  // which now lives at 0x138328) — paper §3.3.4.
  auto Patched = retargetWord(Code3[0], CodeBase, CodeBase + 8);
  if (!Patched) {
    std::fprintf(stderr, "patch failed: %s\n", Patched.message().c_str());
    return 1;
  }
  std::vector<uint32_t> Code4 = Code3;
  Code4[0] = *Patched;
  show("Code 4: Patched, offsets updated", Code4, CodeBase);

  // Check the arithmetic matches the paper exactly.
  auto Final = decode(Code4[0]);
  if (!Final || Final->Imm != 0x8) {
    std::fprintf(stderr, "unexpected patched offset\n");
    return 1;
  }
  std::printf("cbz offset updated from #+0xc to #+0x8, as in Table 2.\n");
  return 0;
}
