//===- examples/app_pipeline.cpp - Full dex2oat+Calibro pipeline ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the whole pipeline on one synthetic commercial-app workload (a
/// WeChat-class app by default): builds every configuration from the
/// paper's evaluation, differentially executes the driver script on each
/// image, and prints a one-app summary in the style of Table 4.
///
/// Usage: app_pipeline [app-name] [scale]
///        app-name in {Toutiao, Taobao, Fanqie, Meituan, Kuaishou, Wechat}
///
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace calibro;

namespace {

struct RunSummary {
  uint64_t Cycles = 0;
  uint64_t Hash = 0;
  bool Ok = true;
};

RunSummary runScript(const oat::OatFile &Oat,
                     const std::vector<workload::Invocation> &Script) {
  sim::Simulator Sim(Oat, {});
  RunSummary S;
  for (const auto &Inv : Script) {
    auto R = Sim.call(Inv.MethodIdx, Inv.Args);
    if (!R) {
      std::fprintf(stderr, "run fault: %s\n", R.message().c_str());
      S.Ok = false;
      return S;
    }
    S.Cycles += R->Cycles;
    S.Hash = S.Hash * 1099511628211ULL ^ R->TraceHash;
  }
  return S;
}

} // namespace

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "Wechat";
  double Scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  workload::AppSpec Spec;
  bool Found = false;
  for (const auto &S : workload::paperApps(Scale))
    if (S.Name == Name) {
      Spec = S;
      Found = true;
    }
  if (!Found) {
    std::fprintf(stderr, "unknown app '%s'\n", Name);
    return 1;
  }

  std::printf("generating %s (scale %.2f)...\n", Name, Scale);
  dex::App App = workload::makeApp(Spec);
  auto Script = workload::makeScript(Spec, 30, 2024);
  std::printf("  %zu methods in %zu dex files\n\n", App.numMethods(),
              App.Files.size());

  struct Config {
    const char *Label;
    core::CalibroOptions Opts;
  };
  core::CalibroOptions Cto;
  Cto.EnableCto = true;
  core::CalibroOptions Full = Cto;
  Full.EnableLtbo = true;
  core::CalibroOptions Par = Full;
  Par.LtboPartitions = 8;
  Par.LtboThreads = 2;
  Config Configs[] = {
      {"Baseline", {}},
      {"CTO", Cto},
      {"CTO+LTBO", Full},
      {"CTO+LTBO+PlOpti", Par},
  };

  uint64_t BaseBytes = 0;
  uint64_t BaseHash = 0;
  std::printf("%-18s %10s %9s %10s %9s %8s\n", "config", ".text", "saved",
              "cycles", "build(s)", "outlined");
  for (const auto &C : Configs) {
    auto B = core::buildApp(App, C.Opts);
    if (!B) {
      std::fprintf(stderr, "build failed: %s\n", B.message().c_str());
      return 1;
    }
    RunSummary S = runScript(B->Oat, Script);
    if (!S.Ok)
      return 1;
    if (BaseBytes == 0) {
      BaseBytes = B->Oat.textBytes();
      BaseHash = S.Hash;
    }
    if (S.Hash != BaseHash) {
      std::fprintf(stderr, "behaviour diverged under %s!\n", C.Label);
      return 1;
    }
    std::printf("%-18s %9lluB %8.2f%% %10llu %9.3f %8zu\n", C.Label,
                (unsigned long long)B->Oat.textBytes(),
                100.0 * (1.0 - double(B->Oat.textBytes()) / double(BaseBytes)),
                (unsigned long long)S.Cycles, B->Stats.TotalSeconds,
                B->Stats.Ltbo.SequencesOutlined);
  }
  std::printf("\nall configurations are behaviour-identical "
              "(architectural traces match)\n");
  return 0;
}
