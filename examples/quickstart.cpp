//===- examples/quickstart.cpp - Five-minute Calibro tour -------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The README's quickstart: build a tiny dex application, compile it twice
/// (baseline vs. full Calibro), execute both images on the simulator to
/// show they behave identically, and print the size difference.
///
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "oat/Dump.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace calibro;

namespace {

dex::Insn op(dex::Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
             int64_t Imm = 0) {
  dex::Insn I;
  I.Opcode = O;
  I.A = A;
  I.B = B;
  I.C = C;
  I.Imm = Imm;
  return I;
}

/// A little "library" method: f(a, b) = (a + b) * (a ^ b).
dex::Method helper(uint32_t Idx) {
  dex::Method M;
  M.Idx = Idx;
  M.Name = "LQuick;->helper" + std::to_string(Idx);
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Add, 2, 0, 1), op(dex::Op::Xor, 3, 0, 1),
            op(dex::Op::Mul, 2, 2, 3), op(dex::Op::Return, 2)};
  return M;
}

/// main(a): calls every helper and an allocation, sums the results.
dex::Method mainMethod(uint32_t NumHelpers) {
  dex::Method M;
  M.Idx = 0;
  M.Name = "LQuick;->main";
  M.NumRegs = 10;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  M.Code.push_back(op(dex::Op::ConstInt, 1, 0, 0, 1));
  for (uint32_t H = 1; H <= NumHelpers; ++H) {
    dex::Insn Call = op(dex::Op::InvokeStatic, 4);
    Call.Idx = H;
    Call.Args = {0, 1, dex::NoReg, dex::NoReg};
    Call.NumArgs = 2;
    M.Code.push_back(Call);
    M.Code.push_back(op(dex::Op::Add, 1, 1, 4));
  }
  dex::Insn Alloc = op(dex::Op::NewInstance, 5);
  Alloc.Idx = 1;
  M.Code.push_back(Alloc);
  M.Code.push_back(op(dex::Op::IPut, 1, 5, 0, 8));
  M.Code.push_back(op(dex::Op::IGet, 2, 5, 0, 8));
  M.Code.push_back(op(dex::Op::Return, 2));
  return M;
}

} // namespace

int main() {
  // 1. Assemble an application package (one dex file, 9 methods).
  dex::App App;
  App.Name = "quickstart";
  App.Files.resize(1);
  App.Files[0].Methods.push_back(mainMethod(8));
  for (uint32_t H = 1; H <= 8; ++H)
    App.Files[0].Methods.push_back(helper(H));

  // 2. Build it twice: plain dex2oat-style, and with Calibro's CTO + LTBO.
  core::CalibroOptions Baseline;
  core::CalibroOptions Full;
  Full.EnableCto = true;
  Full.EnableLtbo = true;

  auto B = core::buildApp(App, Baseline);
  auto C = core::buildApp(App, Full);
  if (!B || !C) {
    std::fprintf(stderr, "build failed: %s\n",
                 (!B ? B.message() : C.message()).c_str());
    return 1;
  }

  std::printf("== baseline OAT ==\n%s\n",
              oat::dumpOat(B->Oat, /*Disassemble=*/false).c_str());
  std::printf("== Calibro OAT (CTO+LTBO) ==\n%s\n",
              oat::dumpOat(C->Oat, /*Disassemble=*/false).c_str());
  double Saved = 100.0 * (1.0 - double(C->Oat.textBytes()) /
                                    double(B->Oat.textBytes()));
  std::printf("code size reduction: %.2f%% (%llu -> %llu bytes)\n\n", Saved,
              (unsigned long long)B->Oat.textBytes(),
              (unsigned long long)C->Oat.textBytes());

  // 3. Run both images; behaviour must be identical.
  sim::Simulator SimB(B->Oat, {});
  sim::Simulator SimC(C->Oat, {});
  for (int64_t Arg : {3, 10, 255}) {
    int64_t Args[1] = {Arg};
    auto RB = SimB.call(0, Args);
    auto RC = SimC.call(0, Args);
    if (!RB || !RC) {
      std::fprintf(stderr, "run failed: %s\n",
                   (!RB ? RB.message() : RC.message()).c_str());
      return 1;
    }
    std::printf("main(%lld) = %lld   [baseline %llu insns, calibro %llu "
                "insns, traces %s]\n",
                (long long)Arg, (long long)RB->ReturnValue,
                (unsigned long long)RB->Insns,
                (unsigned long long)RC->Insns,
                RB->TraceHash == RC->TraceHash ? "match" : "MISMATCH");
    if (RB->TraceHash != RC->TraceHash || RB->ReturnValue != RC->ReturnValue)
      return 1;
  }

  std::printf("\nLTBO outlined %zu sequences (%zu occurrences replaced)\n",
              C->Stats.Ltbo.SequencesOutlined,
              C->Stats.Ltbo.OccurrencesReplaced);
  return 0;
}
