//===- examples/profile_guided.cpp - Hot-function filtering (Fig. 6) --------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 6 workflow: build with outlining, run the app under
/// the profiler (the simpleperf substitute), select the hot set covering
/// 80 % of cycles, rebuild with hot-function filtering, and compare both
/// size and runtime against the unfiltered build.
///
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <cstdio>

using namespace calibro;

namespace {

uint64_t scriptCycles(const oat::OatFile &Oat,
                      const std::vector<workload::Invocation> &Script,
                      profile::Profile *ProfOut) {
  sim::SimOptions Opts;
  Opts.CollectProfile = ProfOut != nullptr;
  sim::Simulator Sim(Oat, Opts);
  uint64_t Cycles = 0;
  for (const auto &Inv : Script) {
    auto R = Sim.call(Inv.MethodIdx, Inv.Args);
    if (!R) {
      std::fprintf(stderr, "fault: %s\n", R.message().c_str());
      std::exit(1);
    }
    Cycles += R->Cycles;
  }
  if (ProfOut)
    *ProfOut = Sim.profileData();
  return Cycles;
}

} // namespace

int main() {
  auto Specs = workload::paperApps(0.4);
  const auto &Spec = Specs[5]; // Wechat.
  dex::App App = workload::makeApp(Spec);
  auto Script = workload::makeScript(Spec, 40, 7);

  // Step 1: build with CTO+LTBO+PlOpti (no filtering yet).
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  Opts.LtboPartitions = 8;
  Opts.LtboThreads = 2;
  auto Unfiltered = core::buildApp(App, Opts);
  if (!Unfiltered) {
    std::fprintf(stderr, "%s\n", Unfiltered.message().c_str());
    return 1;
  }

  // Step 2: run it and collect the per-method profile (Fig. 6's
  // "Profiling by simpleperf").
  profile::Profile Prof;
  uint64_t UnfilteredCycles = scriptCycles(Unfiltered->Oat, Script, &Prof);
  auto Hot = profile::selectHotMethods(Prof, 0.80);
  std::printf("profiled %zu methods, %zu are hot (80%% of %llu cycles)\n",
              Prof.CyclesByMethod.size(), Hot.size(),
              (unsigned long long)Prof.totalCycles());

  // Step 3: rebuild with the profile guiding hot-function filtering.
  core::CalibroOptions HfOpts = Opts;
  HfOpts.Profile = &Prof;
  auto Filtered = core::buildApp(App, HfOpts);
  if (!Filtered) {
    std::fprintf(stderr, "%s\n", Filtered.message().c_str());
    return 1;
  }
  uint64_t FilteredCycles = scriptCycles(Filtered->Oat, Script, nullptr);

  // Step 4: compare (the paper's Table 4 last row vs. Table 7 last row).
  auto Baseline = core::buildApp(App, {});
  uint64_t BaseBytes = Baseline ? (*Baseline).Oat.textBytes() : 0;
  uint64_t BaseCycles = Baseline ? scriptCycles((*Baseline).Oat, Script, nullptr) : 0;

  std::printf("\n%-22s %12s %14s\n", "config", ".text bytes", "script cycles");
  std::printf("%-22s %12llu %14llu\n", "baseline",
              (unsigned long long)BaseBytes, (unsigned long long)BaseCycles);
  std::printf("%-22s %12llu %14llu\n", "outlined (no HfOpti)",
              (unsigned long long)Unfiltered->Oat.textBytes(),
              (unsigned long long)UnfilteredCycles);
  std::printf("%-22s %12llu %14llu\n", "outlined + HfOpti",
              (unsigned long long)Filtered->Oat.textBytes(),
              (unsigned long long)FilteredCycles);

  double SlowdownNoHf =
      100.0 * (double(UnfilteredCycles) / double(BaseCycles) - 1.0);
  double SlowdownHf =
      100.0 * (double(FilteredCycles) / double(BaseCycles) - 1.0);
  std::printf("\nruntime degradation: %.2f%% without HfOpti, %.2f%% with "
              "(paper: 1.51%% -> 0.90%%)\n",
              SlowdownNoHf, SlowdownHf);
  std::printf("hot methods excluded from outlining: %zu\n",
              Filtered->Stats.Ltbo.HotFilteredMethods);
  return 0;
}
