//===- tests/test_layout.cpp - Profile-driven layout stage tests ------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout stage's contract, end to end:
///
///  * a reordered image is a valid permutation — every method placed
///    exactly once, validateOat clean, behaviour unchanged;
///  * the plan is byte-deterministic for any solver thread count;
///  * without a profile, or on an open-world app, the stage is a
///    byte-identical no-op;
///  * the simulated startup working set never grows, and shrinks on the
///    profiled corpus;
///  * the linker rejects malformed layout plans.
///
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "layout/Layout.h"
#include "oat/Linker.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace calibro;

namespace {

workload::AppSpec closedSpec(uint64_t Seed) {
  workload::AppSpec S;
  S.Name = "laytest";
  S.Seed = Seed;
  S.NumWorkers = 60;
  S.NumUtilities = 30;
  workload::enableDeadCode(S); // Declares entrypoints: closed world.
  return S;
}

core::CalibroOptions plOpts() {
  core::CalibroOptions O;
  O.EnableCto = true;
  O.EnableLtbo = true;
  O.LtboPartitions = 4;
  O.LtboThreads = 2;
  O.LayoutPageSize = 256; // Match the small simulated pages below.
  return O;
}

/// Runs \p Script against \p Oat; returns (trace hashes, touched pages).
struct RunResult {
  std::vector<uint64_t> Hashes;
  std::vector<int64_t> Returns;
  std::size_t Pages = 0;
  profile::Profile Prof;
};

RunResult runScript(const oat::OatFile &Oat,
                    const std::vector<workload::Invocation> &Script,
                    bool CollectProfile = false) {
  sim::SimOptions SOpts;
  SOpts.PageShift = 8; // 256-byte pages: meaningful counts at test scale.
  SOpts.CollectProfile = CollectProfile;
  sim::Simulator Sim(Oat, SOpts);
  RunResult R;
  for (const auto &Inv : Script) {
    auto Res = Sim.call(Inv.MethodIdx, Inv.Args);
    EXPECT_TRUE(bool(Res)) << Res.message();
    if (!Res)
      return R;
    R.Hashes.push_back(Res->TraceHash);
    R.Returns.push_back(Res->ReturnValue);
  }
  R.Pages = Sim.touchedTextPages();
  if (CollectProfile)
    R.Prof = Sim.profileData();
  return R;
}

/// The Fig. 6-style workflow the layout stage rides on: build without a
/// profile, run the startup script to collect one, rebuild with it.
struct ProfiledPair {
  dex::App App;
  std::vector<workload::Invocation> Script;
  profile::Profile Prof;
  core::BuildResult Unlaid; ///< Profile set, layout disabled.
};

ProfiledPair makeProfiledPair(uint64_t Seed) {
  ProfiledPair P;
  auto Spec = closedSpec(Seed);
  P.App = workload::makeApp(Spec);
  P.Script = workload::makeScript(Spec, 16, 99);

  auto Opts = plOpts();
  Opts.EnableLayout = false;
  auto Cold = core::buildApp(P.App, Opts);
  EXPECT_TRUE(bool(Cold)) << Cold.message();
  P.Prof = runScript(Cold->Oat, P.Script, /*CollectProfile=*/true).Prof;
  EXPECT_GT(P.Prof.totalCycles(), 0u);

  Opts.Profile = &P.Prof;
  auto Unlaid = core::buildApp(P.App, Opts);
  EXPECT_TRUE(bool(Unlaid)) << Unlaid.message();
  P.Unlaid = std::move(*Unlaid);
  return P;
}

core::BuildResult buildLaid(const ProfiledPair &P, uint32_t Threads) {
  auto Opts = plOpts();
  Opts.Profile = &P.Prof;
  Opts.LtboThreads = Threads;
  auto R = core::buildApp(P.App, Opts);
  EXPECT_TRUE(bool(R)) << R.message();
  return std::move(*R);
}

TEST(Layout, PermutationIsValidAndBehaviourPreserved) {
  ProfiledPair P = makeProfiledPair(31);
  core::BuildResult Laid = buildLaid(P, 2);

  EXPECT_TRUE(Laid.Stats.LayoutApplied);
  EXPECT_GT(Laid.Stats.LayoutNodes, 0u);
  EXPECT_GT(Laid.Stats.LayoutWarmNodes, 0u);
  EXPECT_LE(Laid.Stats.LayoutCutAfter, Laid.Stats.LayoutCutBefore);

  // The reordered image still parses and validates.
  ASSERT_FALSE(bool(oat::validateOat(Laid.Oat)));

  // Every method of the unlaid image appears exactly once, same metadata.
  ASSERT_EQ(Laid.Oat.Methods.size(), P.Unlaid.Oat.Methods.size());
  auto Key = [](const oat::OatMethodEntry &M) {
    return std::make_tuple(M.MethodIdx, M.Name, M.CodeSize);
  };
  std::vector<std::tuple<uint32_t, std::string, uint32_t>> A, B;
  for (const auto &M : Laid.Oat.Methods)
    A.push_back(Key(M));
  for (const auto &M : P.Unlaid.Oat.Methods)
    B.push_back(Key(M));
  std::sort(A.begin(), A.end());
  std::sort(B.begin(), B.end());
  EXPECT_EQ(A, B);

  // Same stub/outlined population too.
  EXPECT_EQ(Laid.Oat.CtoStubs.size(), P.Unlaid.Oat.CtoStubs.size());
  EXPECT_EQ(Laid.Oat.Outlined.size(), P.Unlaid.Oat.Outlined.size());

  // Architectural behaviour is untouched by placement.
  RunResult Before = runScript(P.Unlaid.Oat, P.Script);
  RunResult After = runScript(Laid.Oat, P.Script);
  EXPECT_EQ(Before.Hashes, After.Hashes);
  EXPECT_EQ(Before.Returns, After.Returns);
}

TEST(Layout, StartupWorkingSetDoesNotGrow) {
  ProfiledPair P = makeProfiledPair(47);
  core::BuildResult Laid = buildLaid(P, 2);
  RunResult Before = runScript(P.Unlaid.Oat, P.Script);
  RunResult After = runScript(Laid.Oat, P.Script);
  // The no-regression fallback inside computeLayout makes <= a hard
  // guarantee; the bench gates the strict improvement on the full corpus.
  EXPECT_LE(After.Pages, Before.Pages);
}

TEST(Layout, ByteDeterministicAcrossThreadCounts) {
  ProfiledPair P = makeProfiledPair(53);
  core::BuildResult T1 = buildLaid(P, 1);
  core::BuildResult T4 = buildLaid(P, 4);
  core::BuildResult T8 = buildLaid(P, 8);
  EXPECT_EQ(T1.Oat.Text, T4.Oat.Text);
  EXPECT_EQ(T1.Oat.Text, T8.Oat.Text);
  ASSERT_EQ(T1.Oat.Methods.size(), T8.Oat.Methods.size());
  for (std::size_t I = 0; I < T1.Oat.Methods.size(); ++I)
    EXPECT_EQ(T1.Oat.Methods[I].CodeOffset, T8.Oat.Methods[I].CodeOffset);
}

TEST(Layout, NoProfileIsByteIdenticalNoOp) {
  auto Spec = closedSpec(61);
  dex::App App = workload::makeApp(Spec);
  auto On = plOpts(); // EnableLayout defaults to true, but no Profile.
  auto Off = plOpts();
  Off.EnableLayout = false;
  auto A = core::buildApp(App, On);
  auto B = core::buildApp(App, Off);
  ASSERT_TRUE(bool(A)) << A.message();
  ASSERT_TRUE(bool(B)) << B.message();
  EXPECT_FALSE(A->Stats.LayoutApplied);
  EXPECT_EQ(A->Oat.Text, B->Oat.Text);
}

TEST(Layout, OpenWorldIsByteIdenticalNoOp) {
  workload::AppSpec Spec; // No enableDeadCode: no entrypoints, open world.
  Spec.Name = "openlay";
  Spec.Seed = 67;
  Spec.NumWorkers = 50;
  Spec.NumUtilities = 25;
  dex::App App = workload::makeApp(Spec);
  auto Script = workload::makeScript(Spec, 12, 7);

  auto Opts = plOpts();
  auto Cold = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.message();
  profile::Profile Prof =
      runScript(Cold->Oat, Script, /*CollectProfile=*/true).Prof;
  ASSERT_GT(Prof.totalCycles(), 0u);

  auto On = plOpts();
  On.Profile = &Prof;
  auto Off = plOpts();
  Off.Profile = &Prof;
  Off.EnableLayout = false;
  auto A = core::buildApp(App, On);
  auto B = core::buildApp(App, Off);
  ASSERT_TRUE(bool(A)) << A.message();
  ASSERT_TRUE(bool(B)) << B.message();
  EXPECT_FALSE(A->Stats.LayoutApplied);
  EXPECT_EQ(A->Oat.Text, B->Oat.Text);
}

// --- Direct solver unit coverage ----------------------------------------

layout::AffinityGraph chainGraph(uint32_t N) {
  layout::AffinityGraph G;
  for (uint32_t I = 0; I < N; ++I) {
    layout::AffinityNode Node;
    Node.Item = {oat::LayoutItemKind::Method, I};
    Node.SizeBytes = 64;
    Node.Heat = 100 + I;
    G.Nodes.push_back(Node);
  }
  // A chain with one heavy long-range edge the bisection must respect.
  for (uint32_t I = 0; I + 1 < N; ++I)
    G.Edges.push_back({I, I + 1, 10});
  if (N > 8)
    G.Edges.push_back({0, N - 1, 1000});
  return G;
}

TEST(LayoutSolver, PlanCoversEveryNodeOnce) {
  auto G = chainGraph(33);
  layout::LayoutOptions Opts;
  Opts.PageSize = 256;
  auto R = layout::computeLayout(G, Opts);
  ASSERT_EQ(R.Plan.size(), G.Nodes.size());
  std::vector<uint8_t> Seen(G.Nodes.size(), 0);
  for (const auto &It : R.Plan) {
    ASSERT_EQ(It.Kind, oat::LayoutItemKind::Method);
    ASSERT_LT(It.Index, G.Nodes.size());
    EXPECT_FALSE(Seen[It.Index]++);
  }
  EXPECT_LE(R.CutAfter, R.CutBefore);
}

TEST(LayoutSolver, ThreadCountInvariantPlan) {
  auto G = chainGraph(120);
  layout::LayoutOptions Serial;
  Serial.PageSize = 256;
  Serial.Threads = 1;
  layout::LayoutOptions Par = Serial;
  Par.Threads = 8;
  auto A = layout::computeLayout(G, Serial);
  auto B = layout::computeLayout(G, Par);
  ASSERT_EQ(A.Plan.size(), B.Plan.size());
  for (std::size_t I = 0; I < A.Plan.size(); ++I)
    EXPECT_TRUE(A.Plan[I] == B.Plan[I]) << "diverged at slot " << I;
  EXPECT_EQ(A.CutAfter, B.CutAfter);
}

TEST(LayoutSolver, DominantTrailingNodeTerminates) {
  // Regression: a range whose LAST node outweighs the rest of the range
  // put the initial split point past the end, handing solve() its own
  // range back forever. Small sizes ahead of one huge node reproduce the
  // shape at every recursion level.
  layout::AffinityGraph G;
  for (uint32_t I = 0; I < 9; ++I) {
    layout::AffinityNode Node;
    Node.Item = {oat::LayoutItemKind::Method, I};
    Node.SizeBytes = I + 1 == 9 ? 4096 : 32;
    Node.Heat = 50;
    G.Nodes.push_back(Node);
  }
  for (uint32_t I = 0; I + 1 < 9; ++I)
    G.Edges.push_back({I, I + 1, 5});
  layout::LayoutOptions Opts;
  Opts.PageSize = 256;
  auto R = layout::computeLayout(G, Opts);
  ASSERT_EQ(R.Plan.size(), G.Nodes.size());
  std::vector<uint8_t> Seen(G.Nodes.size(), 0);
  for (const auto &It : R.Plan)
    EXPECT_FALSE(Seen[It.Index]++);
  EXPECT_LE(R.CutAfter, R.CutBefore);
}

// --- Linker-side plan validation ----------------------------------------

TEST(Linker, RejectsMalformedLayoutPlans) {
  // A tiny hand-built input: two 2-insn methods, no stubs or outlined.
  oat::LinkInput In;
  In.AppName = "plancheck";
  for (uint32_t I = 0; I < 2; ++I) {
    codegen::CompiledMethod M;
    M.MethodIdx = I;
    M.Name = "m" + std::to_string(I);
    M.Code = {0xD503201Fu, 0xD65F03C0u}; // nop; ret
    In.Methods.push_back(std::move(M));
  }

  auto WithPlan = [&](std::vector<oat::LayoutItem> Plan) {
    oat::LinkInput Copy = In;
    Copy.Layout = std::move(Plan);
    return oat::link(Copy);
  };

  // Valid permutation: reversed order links fine and swaps the offsets.
  auto Rev = WithPlan({{oat::LayoutItemKind::Method, 1},
                       {oat::LayoutItemKind::Method, 0}});
  ASSERT_TRUE(bool(Rev)) << Rev.message();
  EXPECT_GT(Rev->Methods[0].CodeOffset, Rev->Methods[1].CodeOffset);
  EXPECT_FALSE(bool(oat::validateOat(*Rev)));

  // Too short: an item is missing.
  EXPECT_FALSE(bool(WithPlan({{oat::LayoutItemKind::Method, 0}})));
  // Duplicate placement.
  EXPECT_FALSE(bool(WithPlan({{oat::LayoutItemKind::Method, 0},
                              {oat::LayoutItemKind::Method, 0}})));
  // Out-of-range slot.
  EXPECT_FALSE(bool(WithPlan({{oat::LayoutItemKind::Method, 0},
                              {oat::LayoutItemKind::Method, 7}})));
  // Wrong kind: names a stub the input does not have.
  EXPECT_FALSE(bool(WithPlan({{oat::LayoutItemKind::Method, 0},
                              {oat::LayoutItemKind::Stub, 0}})));
}

} // namespace
