//===- tests/test_support.cpp - Support library tests ----------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Error.h"
#include "support/MappedFile.h"
#include "support/MathExtras.h"
#include "support/Memory.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

using namespace calibro;

namespace {

TEST(Error, SuccessAndFailure) {
  Error Ok = Error::success();
  EXPECT_FALSE(bool(Ok));

  Error Bad = makeError("boom");
  EXPECT_TRUE(bool(Bad));
  EXPECT_EQ(Bad.message(), "boom");
}

TEST(Error, MoveTransfersCheckedState) {
  Error E = makeError("x");
  Error F = std::move(E);
  EXPECT_TRUE(bool(F));
}

TEST(Expected, ValueAndError) {
  Expected<int> V(42);
  ASSERT_TRUE(bool(V));
  EXPECT_EQ(*V, 42);

  Expected<int> E(makeError("nope"));
  ASSERT_FALSE(bool(E));
  EXPECT_EQ(E.message(), "nope");
  consumeError(E.takeError());
}

TEST(Expected, NonDefaultConstructibleType) {
  struct NoDefault {
    explicit NoDefault(int X) : X(X) {}
    int X;
  };
  Expected<NoDefault> V(NoDefault(7));
  ASSERT_TRUE(bool(V));
  EXPECT_EQ(V->X, 7);
}

TEST(Rng, DeterministicForSeed) {
  Rng A(123), B(123), C(124);
  bool Differs = false;
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    uint64_t V = R.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Zipf, SkewsTowardsSmallIndices) {
  Rng R(99);
  ZipfSampler Z(100, 1.2);
  std::vector<int> Counts(100, 0);
  for (int I = 0; I < 20000; ++I)
    ++Counts[Z.sample(R)];
  // Index 0 must dominate the tail by a wide margin.
  EXPECT_GT(Counts[0], Counts[50] * 5);
  EXPECT_GT(Counts[0], 0);
  int Total = std::accumulate(Counts.begin(), Counts.end(), 0);
  EXPECT_EQ(Total, 20000);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(1000, [&](std::size_t I) { ++Hits[I]; });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsGrain) {
  // With Grain = 256 over 1000 indices the pool may enqueue at most
  // ceil(1000/256) = 4 chunk tasks; count distinct executing chunks by
  // watching for index discontinuities per thread. The observable contract
  // is simpler: every index still runs exactly once.
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(1000, [&](std::size_t I) { ++Hits[I]; }, 256);
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesLowestIndexException) {
  // Several indices throw; the rethrown exception must be the lowest
  // failing index's, for every thread count — the determinism contract the
  // outliner's error reporting is built on.
  for (std::size_t Threads : {1u, 2u, 8u}) {
    ThreadPool Pool(Threads);
    std::atomic<int> Ran{0};
    bool Caught = false;
    try {
      Pool.parallelFor(500, [&](std::size_t I) {
        ++Ran;
        if (I == 137 || I == 138 || I == 400)
          throw std::runtime_error("fail at " + std::to_string(I));
      });
    } catch (const std::runtime_error &E) {
      Caught = true;
      EXPECT_STREQ(E.what(), "fail at 137") << "threads=" << Threads;
    }
    EXPECT_TRUE(Caught) << "threads=" << Threads;
    EXPECT_GT(Ran.load(), 0);
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleIndex) {
  ThreadPool Pool(3);
  int Calls = 0;
  Pool.parallelFor(0, [&](std::size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  std::atomic<int> One{0};
  Pool.parallelFor(1, [&](std::size_t I) {
    EXPECT_EQ(I, 0u);
    ++One;
  });
  EXPECT_EQ(One.load(), 1);
}

TEST(ThreadPool, EffectiveThreadsClampsToMachine) {
  std::size_t Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  EXPECT_EQ(ThreadPool::effectiveThreads(0), Hw);
  EXPECT_EQ(ThreadPool::effectiveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::effectiveThreads(Hw), Hw);
  EXPECT_EQ(ThreadPool::effectiveThreads(Hw + 100), Hw)
      << "oversubscription requests must be clamped";
  // The pool itself honors the clamp.
  ThreadPool Pool(Hw + 100);
  EXPECT_EQ(Pool.numThreads(), Hw);
}

TEST(ThreadPool, WaitDrainsQueue) {
  ThreadPool Pool(2);
  std::atomic<int> Done{0};
  for (int I = 0; I < 64; ++I)
    Pool.enqueue([&] { ++Done; });
  Pool.wait();
  EXPECT_EQ(Done.load(), 64);
}

TEST(Timer, Monotonic) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  EXPECT_GE(A, 0.0);
}

TEST(MathExtras, IsInt) {
  EXPECT_TRUE(isInt<8>(127));
  EXPECT_TRUE(isInt<8>(-128));
  EXPECT_FALSE(isInt<8>(128));
  EXPECT_FALSE(isInt<8>(-129));
  EXPECT_TRUE(isInt<26>((1 << 25) - 1));
  EXPECT_FALSE(isInt<26>(1 << 25));
}

TEST(MathExtras, IsShiftedInt) {
  // The b/bl imm26 constraint: multiple of 4, 28-bit span.
  EXPECT_TRUE((isShiftedInt<26, 2>(4)));
  EXPECT_FALSE((isShiftedInt<26, 2>(2)));
  EXPECT_TRUE((isShiftedInt<26, 2>(-(int64_t(1) << 27))));
  EXPECT_FALSE((isShiftedInt<26, 2>(int64_t(1) << 27)));
}

TEST(MathExtras, BitFields) {
  uint32_t W = 0xDEADBEEF;
  EXPECT_EQ(extractBits(W, 0, 8), 0xEFu);
  EXPECT_EQ(extractBits(W, 28, 4), 0xDu);
  EXPECT_EQ(insertBits(0, 0x1F, 5, 5), 0x3E0u);
  EXPECT_EQ(extractBits(insertBits(W, 0x5, 8, 4), 8, 4), 0x5u);
}

TEST(MathExtras, SignExtend) {
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(0xFFFFFFFF, 32), -1);
}

TEST(MathExtras, AlignTo) {
  EXPECT_EQ(alignTo(0, 16), 0u);
  EXPECT_EQ(alignTo(1, 16), 16u);
  EXPECT_EQ(alignTo(16, 16), 16u);
  EXPECT_EQ(alignTo(17, 8), 24u);
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocationsAreDisjointAndAligned) {
  support::Arena A;
  auto S1 = A.allocSpan<uint32_t>(100);
  auto S2 = A.allocSpan<uint64_t>(50);
  auto S3 = A.allocSpan<uint8_t>(7);
  EXPECT_EQ(S1.size(), 100u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(S1.data()) % alignof(uint32_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(S2.data()) % alignof(uint64_t), 0u);
  // Writing every byte of each span must not disturb the others.
  std::fill(S1.begin(), S1.end(), 0x11111111u);
  std::fill(S2.begin(), S2.end(), uint64_t(0x2222222222222222));
  std::fill(S3.begin(), S3.end(), uint8_t(0x33));
  EXPECT_EQ(S1.front(), 0x11111111u);
  EXPECT_EQ(S1.back(), 0x11111111u);
  EXPECT_EQ(S2.front(), uint64_t(0x2222222222222222));
  EXPECT_EQ(S3.back(), uint8_t(0x33));
  EXPECT_GE(A.bytesUsed(), 100 * 4 + 50 * 8 + 7u);
}

TEST(Arena, ResetKeepsMemoryAndCoalesces) {
  support::Arena A;
  // Force multiple blocks: allocate well past the first block's 64 KiB.
  for (int I = 0; I < 10; ++I)
    A.allocSpan<uint8_t>(100 << 10);
  std::size_t Reserved = A.bytesReserved();
  EXPECT_GT(Reserved, 1000u << 10);
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  // Coalesced: still covers the high-water mark, so the same shape of
  // cycle does not spill again...
  EXPECT_GE(A.bytesReserved(), 1000u << 10);
  // ...but the chain of doubling blocks did not survive verbatim.
  std::size_t Coalesced = A.bytesReserved();
  for (int I = 0; I < 10; ++I)
    A.allocSpan<uint8_t>(100 << 10);
  EXPECT_EQ(A.bytesReserved(), Coalesced) << "steady state must not grow";
  A.releaseMemory();
  EXPECT_EQ(A.bytesReserved(), 0u);
}

TEST(Arena, OversizedCycleDecaysBackToSteadyState) {
  support::Arena A;
  // Steady state first: identical small cycles settle on one warm block.
  for (int I = 0; I < 4; ++I) {
    A.allocSpan<uint8_t>(64 << 10);
    A.reset();
  }
  std::size_t Steady = A.bytesReserved();
  ASSERT_GT(Steady, 0u);

  // One oversized outlier cycle (an order of magnitude larger).
  A.allocSpan<uint8_t>(8 << 20);
  A.reset();
  std::size_t AfterSpike = A.bytesReserved();
  EXPECT_GE(AfterSpike, 8u << 20) << "the spike itself must stay warm once";

  // Back to the small cycles: the watermark decays a quarter per reset, so
  // the spike's reserve is returned to the allocator instead of being
  // pinned for the arena's lifetime.
  for (int I = 0; I < 40; ++I) {
    A.allocSpan<uint8_t>(64 << 10);
    A.reset();
  }
  EXPECT_LT(A.bytesReserved(), AfterSpike / 4)
      << "oversized one-off block was never given back";
  // Still warm enough for the small cycle.
  EXPECT_GE(A.bytesReserved(), 64u << 10);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  support::Arena A;
  void *P = A.allocate(0, 1);
  EXPECT_NE(P, nullptr);
}

TEST(ArenaPool, HandlesRecycleWarmArenas) {
  support::ArenaPool Pool;
  const void *FirstBlock = nullptr;
  {
    auto H = Pool.acquire();
    FirstBlock = H->allocate(1000, 8);
    EXPECT_GT(H->bytesReserved(), 0u);
  } // Returned to the pool here.
  {
    auto H = Pool.acquire();
    // The recycled arena is reset but keeps its warm block, so the same
    // allocation lands on the same memory.
    EXPECT_EQ(H->bytesUsed(), 0u);
    EXPECT_EQ(H->allocate(1000, 8), FirstBlock);
  }
}

TEST(ArenaPool, ConcurrentAcquireIsExclusive) {
  support::ArenaPool Pool;
  ThreadPool Workers(4);
  std::atomic<int> Failures{0};
  Workers.parallelFor(32, [&](std::size_t I) {
    auto H = Pool.acquire();
    auto Span = H->allocSpan<uint64_t>(512);
    std::fill(Span.begin(), Span.end(), I);
    for (uint64_t V : Span)
      if (V != I)
        Failures.fetch_add(1);
  });
  EXPECT_EQ(Failures.load(), 0);
}

TEST(SampleRss, CoherentOnProcPlatforms) {
  support::RssSample S = support::sampleRss();
  // Zero means "no /proc here" and is legal; where the sample exists it
  // must be internally coherent.
  if (S.CurrentBytes == 0)
    GTEST_SKIP() << "no /proc/self/status on this platform";
  EXPECT_GE(S.PeakBytes, S.CurrentBytes);
  EXPECT_GT(S.CurrentBytes, 1u << 20) << "a live test process exceeds 1 MiB";
}

//===----------------------------------------------------------------------===//
// MappedFile
//===----------------------------------------------------------------------===//

TEST(MappedFile, ReadsBackWrittenBytes) {
  std::string Path = ::testing::TempDir() + "/calibro_mapped_support.bin";
  std::vector<uint8_t> Want(4096 + 17);
  for (std::size_t I = 0; I < Want.size(); ++I)
    Want[I] = static_cast<uint8_t>(I * 31);
  {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fwrite(Want.data(), 1, Want.size(), F), Want.size());
    std::fclose(F);
  }
  auto M = support::MappedFile::open(Path);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->size(), Want.size());
  EXPECT_TRUE(std::equal(Want.begin(), Want.end(), M->bytes().begin()));

  // Move transfers the view.
  support::MappedFile M2 = std::move(*M);
  EXPECT_EQ(M2.size(), Want.size());
  EXPECT_TRUE(std::equal(Want.begin(), Want.end(), M2.bytes().begin()));
  std::remove(Path.c_str());
}

TEST(MappedFile, EmptyAndMissingFiles) {
  std::string Path = ::testing::TempDir() + "/calibro_mapped_empty.bin";
  { std::fclose(std::fopen(Path.c_str(), "wb")); }
  auto Empty = support::MappedFile::open(Path);
  ASSERT_TRUE(Empty.has_value());
  EXPECT_EQ(Empty->size(), 0u);
  std::remove(Path.c_str());

  EXPECT_FALSE(
      support::MappedFile::open(Path + ".does-not-exist").has_value());
}

} // namespace
