//===- tests/test_service.cpp - Compile-daemon determinism under concurrency =//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-service contract (ISSUE 9): every job a CompileService runs
/// concurrently — over one shared pool, one shared sharded cache, one
/// arbitrated memory budget — produces an OAT byte-identical to the same
/// build run serially in isolation; shared-cache counters are deterministic
/// across shard counts; a full queue rejects with ErrCat::Service without
/// corrupting any in-flight job; and a corrupted job degrades alone while
/// its neighbors stay byte-identical. Plus the MemoryArbiter unit contract:
/// deterministic grants whose outstanding sum never exceeds the global
/// budget.
///
//===----------------------------------------------------------------------===//

#include "oat/Serialize.h"
#include "service/CompileService.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace calibro;
using namespace calibro::service;

namespace {

namespace fs = std::filesystem;

/// Self-cleaning directory under the system temp dir.
struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Tag)
      : Path(fs::temp_directory_path() /
             ("calibro-test-svc-" + Tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(Path);
  }
  ~TempDir() { fs::remove_all(Path); }
  std::string str() const { return Path.string(); }
};

/// A small synthetic app per seed — big enough to outline, small enough
/// that a test builds dozens of them.
workload::AppSpec jobSpec(uint64_t Seed) {
  workload::AppSpec Spec;
  Spec.Name = "svc" + std::to_string(Seed);
  Spec.Seed = 1000 + Seed;
  Spec.NumWorkers = 40;
  Spec.NumUtilities = 20;
  return Spec;
}

core::CalibroOptions buildOpts() {
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  Opts.LtboPartitions = 4;
  return Opts;
}

/// The serial oracle: the job's effective configuration run in isolation
/// through the plain library pipeline — no pool, no shared cache, no
/// daemon. GrantedBudget reproduces the arbiter's (deterministic) lease.
std::vector<uint8_t> serialImage(const dex::App &App,
                                 core::CalibroOptions Opts,
                                 uint64_t GrantedBudget) {
  Opts.Pool = nullptr;
  Opts.SharedCache = nullptr;
  Opts.CacheDir.clear();
  Opts.MemoryBudgetBytes = GrantedBudget;
  auto B = core::buildApp(App, Opts);
  EXPECT_TRUE(bool(B)) << B.message();
  return B ? oat::serializeOat(B->Oat) : std::vector<uint8_t>{};
}

} // namespace

//===----------------------------------------------------------------------===//
// Concurrent jobs are byte-identical to serial builds
//===----------------------------------------------------------------------===//

TEST(ServiceDeterminism, ConcurrentJobsByteIdenticalToSerial) {
  // Six distinct apps with mixed per-job budgets, raced through the daemon
  // at several pool widths. Every resulting image must equal the serial
  // rebuild of the same spec — threads, queue interleavings, budget leases
  // and cache state shape only the wall clock.
  const uint64_t Budgets[] = {0, 1 << 14, 0, 1 << 16, 1 << 15, 0};
  std::vector<dex::App> Apps;
  std::vector<std::vector<uint8_t>> Serial;
  for (uint64_t I = 0; I < 6; ++I) {
    Apps.push_back(workload::makeApp(jobSpec(I)));
    // No global budget below, so the lease equals the request verbatim.
    Serial.push_back(serialImage(Apps.back(), buildOpts(), Budgets[I]));
    ASSERT_FALSE(Serial.back().empty());
  }

  for (uint32_t Threads : {1u, 4u, 8u}) {
    TempDir Dir("ident-" + std::to_string(Threads));
    ServiceOptions SOpts;
    SOpts.JobSlots = 3;
    SOpts.QueueDepth = 8;
    SOpts.Threads = Threads;
    SOpts.CacheDir = Dir.str();
    SOpts.CacheShards = 4;
    auto Svc = CompileService::create(SOpts);
    ASSERT_TRUE(bool(Svc)) << Svc.message();

    std::vector<std::shared_ptr<JobHandle>> Handles;
    for (uint64_t I = 0; I < 6; ++I) {
      JobSpec Job;
      Job.Name = "job" + std::to_string(I);
      Job.App = &Apps[I];
      Job.Build = buildOpts();
      Job.MemoryBudgetBytes = Budgets[I];
      auto H = (*Svc)->submit(std::move(Job));
      ASSERT_TRUE(bool(H)) << H.message();
      Handles.push_back(std::move(*H));
    }
    for (uint64_t I = 0; I < 6; ++I) {
      const JobRecord &R = Handles[I]->wait();
      ASSERT_TRUE(R.Ok) << "threads=" << Threads << " job " << I << ": "
                        << R.ErrorMessage;
      EXPECT_EQ(R.GrantedBudgetBytes, Budgets[I]) << I;
      EXPECT_EQ(oat::serializeOat(Handles[I]->oat()), Serial[I])
          << "threads=" << Threads << " job " << I;
    }
    (*Svc)->shutdown();
    ServiceStats St = (*Svc)->stats();
    EXPECT_EQ(St.JobsAccepted, 6u);
    EXPECT_EQ(St.JobsSucceeded, 6u);
    EXPECT_EQ(St.JobsFailed, 0u);
  }
}

TEST(ServiceDeterminism, WarmResubmissionHitsSharedCacheAndStaysIdentical) {
  // The same app submitted twice: the rerun rides the first run's entries
  // (method hits, group replays, deduped stores) and still reproduces the
  // identical image.
  dex::App App = workload::makeApp(jobSpec(40));
  std::vector<uint8_t> Ref = serialImage(App, buildOpts(), 0);

  TempDir Dir("warm");
  ServiceOptions SOpts;
  SOpts.JobSlots = 2;
  SOpts.Threads = 4;
  SOpts.CacheDir = Dir.str();
  SOpts.CacheShards = 4;
  auto Svc = CompileService::create(SOpts);
  ASSERT_TRUE(bool(Svc)) << Svc.message();

  auto Submit = [&] {
    JobSpec Job;
    Job.Name = "warm";
    Job.App = &App;
    Job.Build = buildOpts();
    auto H = (*Svc)->submit(std::move(Job));
    EXPECT_TRUE(bool(H)) << H.message();
    return std::move(*H);
  };

  auto Cold = Submit();
  const JobRecord &ColdR = Cold->wait();
  ASSERT_TRUE(ColdR.Ok) << ColdR.ErrorMessage;
  EXPECT_EQ(ColdR.Stats.CacheHits, 0u);
  EXPECT_EQ(oat::serializeOat(Cold->oat()), Ref);

  auto Warm = Submit();
  const JobRecord &WarmR = Warm->wait();
  ASSERT_TRUE(WarmR.Ok) << WarmR.ErrorMessage;
  EXPECT_EQ(WarmR.Stats.CacheHits, App.numMethods());
  EXPECT_EQ(WarmR.Stats.CacheMisses, 0u);
  EXPECT_GT(WarmR.Stats.GroupsReused, 0u);
  EXPECT_EQ(oat::serializeOat(Warm->oat()), Ref);

  cache::ShardedCacheStats CS = (*Svc)->sharedCache()->stats();
  EXPECT_EQ(CS.MethodHits, App.numMethods());
  EXPECT_EQ(CS.Evictions, 0u);
}

//===----------------------------------------------------------------------===//
// Shared-cache counters are deterministic across shard counts
//===----------------------------------------------------------------------===//

TEST(ServiceCache, CountersDeterministicAcrossShardCounts) {
  // A fixed job sequence (two apps, each submitted twice, serialized so the
  // probe order is fixed) must produce identical hit/miss/dedup counters no
  // matter how the key space is sharded — routing changes WHERE an entry
  // lives, never WHETHER it hits.
  std::vector<dex::App> Apps;
  Apps.push_back(workload::makeApp(jobSpec(50)));
  Apps.push_back(workload::makeApp(jobSpec(51)));

  std::optional<cache::ShardedCacheStats> First;
  for (uint32_t Shards : {1u, 4u, 8u}) {
    TempDir Dir("shards-" + std::to_string(Shards));
    ServiceOptions SOpts;
    SOpts.JobSlots = 2;
    SOpts.Threads = 4;
    SOpts.CacheDir = Dir.str();
    SOpts.CacheShards = Shards;
    auto Svc = CompileService::create(SOpts);
    ASSERT_TRUE(bool(Svc)) << Svc.message();
    ASSERT_EQ((*Svc)->sharedCache()->numShards(), Shards);

    for (int Round = 0; Round < 2; ++Round)
      for (std::size_t A = 0; A < Apps.size(); ++A) {
        JobSpec Job;
        Job.Name = "r" + std::to_string(Round) + "a" + std::to_string(A);
        Job.App = &Apps[A];
        Job.Build = buildOpts();
        auto H = (*Svc)->submit(std::move(Job));
        ASSERT_TRUE(bool(H)) << H.message();
        const JobRecord &R = (*H)->wait();
        ASSERT_TRUE(R.Ok) << R.ErrorMessage;
      }

    cache::ShardedCacheStats CS = (*Svc)->sharedCache()->stats();
    if (!First) {
      First = CS;
      EXPECT_GT(CS.MethodHits, 0u);
      EXPECT_GT(CS.MethodMisses, 0u);
      continue;
    }
    EXPECT_EQ(CS.MethodHits, First->MethodHits) << Shards;
    EXPECT_EQ(CS.MethodMisses, First->MethodMisses) << Shards;
    EXPECT_EQ(CS.GroupHits, First->GroupHits) << Shards;
    EXPECT_EQ(CS.GroupMisses, First->GroupMisses) << Shards;
    EXPECT_EQ(CS.StoresDeduped, First->StoresDeduped) << Shards;
    EXPECT_EQ(CS.ResidentEntries, First->ResidentEntries) << Shards;
    EXPECT_EQ(CS.ResidentBytes, First->ResidentBytes) << Shards;
  }
}

//===----------------------------------------------------------------------===//
// Admission control: queue-full rejection without collateral damage
//===----------------------------------------------------------------------===//

TEST(ServiceAdmission, QueueFullRejectsWithServiceCategory) {
  dex::App App = workload::makeApp(jobSpec(60));
  std::vector<uint8_t> Ref = serialImage(App, buildOpts(), 0);

  ServiceOptions SOpts;
  SOpts.JobSlots = 1;
  SOpts.QueueDepth = 1;
  SOpts.Threads = 2;
  auto Svc = CompileService::create(SOpts);
  ASSERT_TRUE(bool(Svc)) << Svc.message();

  // Job A blocks mid-build (between compile and link) until released, so
  // the single slot stays busy while the test probes admission.
  std::mutex M;
  std::condition_variable Cv;
  bool Started = false, Release = false;
  JobSpec A;
  A.Name = "blocker";
  A.App = &App;
  A.Build = buildOpts();
  A.MutateCompiled = [&](core::CompiledApp &) {
    std::unique_lock<std::mutex> Lock(M);
    Started = true;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Release; });
  };
  auto HA = (*Svc)->submit(std::move(A));
  ASSERT_TRUE(bool(HA)) << HA.message();
  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Started; });
  }

  // Job B fills the one queue slot.
  JobSpec B;
  B.Name = "waiter";
  B.App = &App;
  B.Build = buildOpts();
  auto HB = (*Svc)->submit(std::move(B));
  ASSERT_TRUE(bool(HB)) << HB.message();

  // Job C must bounce with the typed Service category.
  JobSpec C;
  C.Name = "rejected";
  C.App = &App;
  C.Build = buildOpts();
  auto HC = (*Svc)->submit(std::move(C));
  ASSERT_FALSE(bool(HC));
  EXPECT_EQ(HC.category(), ErrCat::Service) << HC.message();
  { // Not just any Service error — the queue-full one.
    auto E = HC.takeError();
    EXPECT_NE(E.message().find("queue full"), std::string::npos);
    consumeError(std::move(E));
  }

  // Unblock; both in-flight jobs must finish untouched by the rejection.
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  Cv.notify_all();
  const JobRecord &RA = (*HA)->wait();
  const JobRecord &RB = (*HB)->wait();
  ASSERT_TRUE(RA.Ok) << RA.ErrorMessage;
  ASSERT_TRUE(RB.Ok) << RB.ErrorMessage;
  EXPECT_EQ(oat::serializeOat((*HA)->oat()), Ref);
  EXPECT_EQ(oat::serializeOat((*HB)->oat()), Ref);

  ServiceStats St = (*Svc)->stats();
  EXPECT_EQ(St.JobsAccepted, 2u);
  EXPECT_EQ(St.JobsRejected, 1u);
  EXPECT_EQ(St.JobsSucceeded, 2u);

  // After shutdown, submission rejects with the same category.
  (*Svc)->shutdown();
  JobSpec D;
  D.Name = "late";
  D.App = &App;
  D.Build = buildOpts();
  auto HD = (*Svc)->submit(std::move(D));
  ASSERT_FALSE(bool(HD));
  EXPECT_EQ(HD.category(), ErrCat::Service);
  consumeError(HD.takeError());
}

//===----------------------------------------------------------------------===//
// Fault isolation: one corrupted job degrades alone
//===----------------------------------------------------------------------===//

TEST(ServiceFaults, MutatedJobDegradesAloneInEverySweepPosition) {
  // Four concurrent jobs; in each sweep round exactly one gets its side
  // info corrupted between compile and link (the fault-injection surface:
  // an inverted slow-path range fails SideInfoValidator deterministically).
  // The mutated job must degrade gracefully — methods rejected from
  // outlining, build still Ok — and every OTHER job must stay byte-
  // identical to its serial build, fault or no fault next door.
  std::vector<dex::App> Apps;
  std::vector<std::vector<uint8_t>> Serial;
  for (uint64_t I = 0; I < 4; ++I) {
    Apps.push_back(workload::makeApp(jobSpec(70 + I)));
    Serial.push_back(serialImage(Apps.back(), buildOpts(), 0));
  }

  auto CorruptOne = [](core::CompiledApp &App) {
    for (auto &M : App.Methods) {
      if (M.Side.IsNative || M.Code.empty())
        continue;
      // An inverted range is invalid in any method: Begin > End.
      M.Side.SlowPathRanges.push_back(
          {static_cast<uint32_t>(M.Code.size() * 4), 0});
      return;
    }
  };

  for (std::size_t Faulty = 0; Faulty < 4; ++Faulty) {
    TempDir Dir("fault-" + std::to_string(Faulty));
    ServiceOptions SOpts;
    SOpts.JobSlots = 4;
    SOpts.Threads = 4;
    SOpts.CacheDir = Dir.str();
    SOpts.CacheShards = 4;
    auto Svc = CompileService::create(SOpts);
    ASSERT_TRUE(bool(Svc)) << Svc.message();

    std::vector<std::shared_ptr<JobHandle>> Handles;
    for (std::size_t I = 0; I < 4; ++I) {
      JobSpec Job;
      Job.Name = "job" + std::to_string(I);
      Job.App = &Apps[I];
      Job.Build = buildOpts();
      if (I == Faulty)
        Job.MutateCompiled = CorruptOne;
      auto H = (*Svc)->submit(std::move(Job));
      ASSERT_TRUE(bool(H)) << H.message();
      Handles.push_back(std::move(*H));
    }
    for (std::size_t I = 0; I < 4; ++I) {
      const JobRecord &R = Handles[I]->wait();
      ASSERT_TRUE(R.Ok) << "faulty=" << Faulty << " job " << I << ": "
                        << R.ErrorMessage;
      if (I == Faulty) {
        EXPECT_GT(R.Stats.Ltbo.MethodsRejected, 0u) << "faulty=" << Faulty;
      } else {
        EXPECT_EQ(R.Stats.Ltbo.MethodsRejected, 0u)
            << "faulty=" << Faulty << " job " << I;
        EXPECT_EQ(oat::serializeOat(Handles[I]->oat()), Serial[I])
            << "faulty=" << Faulty << " job " << I;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// MemoryArbiter unit contract
//===----------------------------------------------------------------------===//

TEST(MemoryArbiter, GrantsAreDeterministicAndClamped) {
  { // No global budget: requests pass through verbatim, including zero.
    MemoryArbiter A(0, 4);
    EXPECT_EQ(A.acquire(0).bytes(), 0u);
    EXPECT_EQ(A.acquire(12345).bytes(), 12345u);
    EXPECT_EQ(A.fairShareBytes(), 0u);
  }
  MemoryArbiter A(1000, 4);
  EXPECT_EQ(A.fairShareBytes(), 250u);
  // Under the fair share the request stands; above it, it clamps; an
  // unbudgeted job is clamped outright (every job must be windowed or the
  // global sum could not be bounded).
  auto Under = A.acquire(100);
  auto Over = A.acquire(9999);
  auto None = A.acquire(0);
  EXPECT_EQ(Under.bytes(), 100u);
  EXPECT_EQ(Over.bytes(), 250u);
  EXPECT_EQ(None.bytes(), 250u);
  EXPECT_EQ(A.outstandingBytes(), 600u);
  Under.release();
  EXPECT_EQ(A.outstandingBytes(), 500u);
}

TEST(MemoryArbiter, OutstandingSumNeverExceedsGlobalBudget) {
  const uint64_t Global = 1 << 20;
  const uint32_t Slots = 4;
  MemoryArbiter A(Global, Slots);

  // 4 threads, 25 leases each, random-ish hold pattern. The arbiter's own
  // peak accounting is exact (updated under its lock), so the assertion is
  // race-free even though the holders are not synchronized.
  std::vector<std::thread> Holders;
  for (uint32_t T = 0; T < Slots; ++T)
    Holders.emplace_back([&A, T] {
      for (int I = 0; I < 25; ++I) {
        auto L = A.acquire((T + 1) * 100000 + I);
        std::this_thread::yield();
      }
    });
  for (auto &T : Holders)
    T.join();

  EXPECT_LE(A.peakOutstandingBytes(), Global);
  EXPECT_GT(A.peakOutstandingBytes(), 0u);
  EXPECT_EQ(A.outstandingBytes(), 0u);
}

TEST(MemoryArbiter, BlocksUntilBytesReturn) {
  // One slot: the fair share is the whole budget, so a second acquire must
  // wait for the first lease to die.
  MemoryArbiter A(500, 1);
  std::atomic<bool> SecondGranted{false};

  auto First = A.acquire(0);
  EXPECT_EQ(First.bytes(), 500u);
  std::thread Second([&] {
    auto L = A.acquire(0);
    SecondGranted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(SecondGranted.load());
  First.release();
  Second.join();
  EXPECT_TRUE(SecondGranted.load());
  EXPECT_LE(A.peakOutstandingBytes(), 500u);
}
