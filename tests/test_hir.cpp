//===- tests/test_hir.cpp - HGraph construction and pass tests --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "hir/HGraph.h"
#include "hir/Passes.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::hir;

namespace {

dex::Insn makeConst(uint16_t A, int64_t Imm) {
  dex::Insn I;
  I.Opcode = dex::Op::ConstInt;
  I.A = A;
  I.Imm = Imm;
  return I;
}

dex::Insn makeBin(dex::Op Op, uint16_t A, uint16_t B, uint16_t C) {
  dex::Insn I;
  I.Opcode = Op;
  I.A = A;
  I.B = B;
  I.C = C;
  return I;
}

dex::Insn makeRet(uint16_t A) {
  dex::Insn I;
  I.Opcode = dex::Op::Return;
  I.A = A;
  return I;
}

dex::Method straightLine() {
  dex::Method M;
  M.Name = "straight";
  M.NumRegs = 8;
  M.NumArgs = 0;
  M.ReturnsValue = true;
  M.Code = {makeConst(1, 10), makeConst(2, 20),
            makeBin(dex::Op::Add, 3, 1, 2), makeRet(3)};
  return M;
}

TEST(HGraphBuild, StraightLineIsOneBlock) {
  auto G = buildHGraph(straightLine());
  ASSERT_TRUE(bool(G)) << G.message();
  EXPECT_EQ(G->Blocks.size(), 1u);
  EXPECT_EQ(G->Blocks[0].Insns.size(), 4u);
  EXPECT_EQ(G->Blocks[0].Insns.back().Op, HOp::Return);
}

TEST(HGraphBuild, DiamondControlFlow) {
  // if (v0 == 0) v1 = 1 else v1 = 2; return v1
  dex::Method M;
  M.Name = "diamond";
  M.NumRegs = 4;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn If;
  If.Opcode = dex::Op::IfEqz;
  If.A = 0;
  If.Target = 3;
  dex::Insn Go;
  Go.Opcode = dex::Op::Goto;
  Go.Target = 4;
  M.Code = {If, makeConst(1, 2), Go, makeConst(1, 1), makeRet(1)};
  // Layout: 0:if 1:const2 2:goto 3:const1 4:ret

  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G)) << G.message();
  EXPECT_EQ(G->Blocks.size(), 4u);
  // Entry ends with If: two successors, taken first.
  const HBlock &Entry = G->Blocks[0];
  ASSERT_EQ(Entry.Succs.size(), 2u);
  EXPECT_EQ(Entry.Insns.back().Op, HOp::If);
  // Both arms converge on the return block.
  uint32_t Taken = Entry.Succs[0], Fall = Entry.Succs[1];
  EXPECT_NE(Taken, Fall);
  EXPECT_FALSE(bool(verifyHGraph(*G)));
}

TEST(HGraphBuild, LoopBackEdge) {
  // v1 = 3; do { v1 += -1 } while (v1 != 0); return v1
  dex::Method M;
  M.Name = "loop";
  M.NumRegs = 4;
  M.ReturnsValue = true;
  dex::Insn Dec;
  Dec.Opcode = dex::Op::AddImm;
  Dec.A = 1;
  Dec.B = 1;
  Dec.Imm = -1;
  dex::Insn Back;
  Back.Opcode = dex::Op::IfNez;
  Back.A = 1;
  Back.Target = 1;
  M.Code = {makeConst(1, 3), Dec, Back, makeRet(1)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G)) << G.message();
  // Loop block branches back to itself.
  bool HasBackEdge = false;
  for (const auto &B : G->Blocks)
    for (uint32_t S : B.Succs)
      if (S <= B.Id)
        HasBackEdge = true;
  EXPECT_TRUE(HasBackEdge);
}

TEST(HGraphBuild, FallthroughGetsExplicitGoto) {
  // Block boundary created by a branch TARGET mid-stream, without a
  // terminator before it: builder must add a Goto.
  dex::Method M;
  M.Name = "fall";
  M.NumRegs = 4;
  M.ReturnsValue = true;
  dex::Insn If;
  If.Opcode = dex::Op::IfEqz;
  If.A = 1;
  If.Target = 2; // Jumps to the middle const.
  M.Code = {makeConst(1, 0), If, makeConst(2, 5), makeRet(2)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G)) << G.message();
  EXPECT_FALSE(bool(verifyHGraph(*G)));
  for (const auto &B : G->Blocks)
    EXPECT_TRUE(isBlockTerminator(B.Insns.back().Op));
}

TEST(HGraphBuild, RejectsNative) {
  dex::Method M;
  M.IsNative = true;
  auto G = buildHGraph(M);
  EXPECT_FALSE(bool(G));
  consumeError(G.takeError());
}

TEST(ConstantFolding, FoldsChains) {
  auto G = buildHGraph(straightLine());
  ASSERT_TRUE(bool(G));
  std::size_t N = runConstantFolding(*G);
  EXPECT_GE(N, 1u);
  // add v3, v1, v2 became const v3, 30.
  const HInsn &Folded = G->Blocks[0].Insns[2];
  EXPECT_EQ(Folded.Op, HOp::Const);
  EXPECT_EQ(Folded.Imm, 30);
}

TEST(ConstantFolding, DoesNotFoldDivByZero) {
  dex::Method M;
  M.Name = "div0";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  M.Code = {makeConst(1, 10), makeConst(2, 0),
            makeBin(dex::Op::Div, 3, 1, 2), makeRet(3)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  runConstantFolding(*G);
  EXPECT_EQ(G->Blocks[0].Insns[2].Op, HOp::Div)
      << "division by a zero constant must keep its throwing check";
}

TEST(ConstantFolding, SdivOverflowSemantics) {
  dex::Method M;
  M.Name = "ovf";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  M.Code = {makeConst(1, INT64_MIN), makeConst(2, -1),
            makeBin(dex::Op::Div, 3, 1, 2), makeRet(3)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  runConstantFolding(*G);
  const HInsn &Folded = G->Blocks[0].Insns[2];
  ASSERT_EQ(Folded.Op, HOp::Const);
  EXPECT_EQ(Folded.Imm, INT64_MIN) << "must match AArch64 sdiv overflow";
}

TEST(DeadCodeElim, RemovesDeadKeepsLive) {
  dex::Method M;
  M.Name = "dce";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  M.Code = {makeConst(1, 1), makeConst(2, 2) /* dead */, makeRet(1)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  std::size_t N = runDeadCodeElim(*G);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(G->Blocks[0].Insns.size(), 2u);
}

TEST(DeadCodeElim, KeepsDivForItsCheck) {
  dex::Method M;
  M.Name = "divkeep";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {makeBin(dex::Op::Div, 3, 0, 1) /* dest dead, check live */,
            makeConst(2, 7), makeRet(2)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  runDeadCodeElim(*G);
  bool DivKept = false;
  for (const auto &I : G->Blocks[0].Insns)
    DivKept |= I.Op == HOp::Div;
  EXPECT_TRUE(DivKept);
}

TEST(DeadCodeElim, LivenessAcrossBlocks) {
  // v2 defined in entry, used only after a branch: must survive.
  dex::Method M;
  M.Name = "cross";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn If;
  If.Opcode = dex::Op::IfEqz;
  If.A = 0;
  If.Target = 3;
  M.Code = {makeConst(2, 9), If, makeRet(0), makeRet(2)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(runDeadCodeElim(*G), 0u);
}

TEST(BlockMerge, MergesLinearChains) {
  // if splits then both arms goto a chain of blocks.
  dex::Method M;
  M.Name = "merge";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  dex::Insn Go1;
  Go1.Opcode = dex::Op::Goto;
  Go1.Target = 1;
  dex::Insn Go2;
  Go2.Opcode = dex::Op::Goto;
  Go2.Target = 2;
  M.Code = {Go1, Go2, makeConst(1, 4), makeRet(1)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  std::size_t Before = G->Blocks.size();
  std::size_t Removed = runBlockMerge(*G);
  EXPECT_GT(Removed, 0u);
  EXPECT_LT(G->Blocks.size(), Before);
  EXPECT_FALSE(bool(verifyHGraph(*G)));
}

TEST(BlockMerge, RemovesUnreachable) {
  dex::Method M;
  M.Name = "unreach";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  dex::Insn Go;
  Go.Opcode = dex::Op::Goto;
  Go.Target = 3;
  M.Code = {makeConst(1, 1), Go, makeRet(1) /* unreachable */, makeRet(1)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  runBlockMerge(*G);
  EXPECT_FALSE(bool(verifyHGraph(*G)));
  // The unreachable return block is gone; graph still returns.
  std::size_t Returns = 0;
  for (const auto &B : G->Blocks)
    for (const auto &I : B.Insns)
      if (I.Op == HOp::Return)
        ++Returns;
  EXPECT_EQ(Returns, 1u);
}

TEST(ReturnMerge, DeduplicatesIdenticalReturns) {
  dex::Method M;
  M.Name = "retmerge";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn If;
  If.Opcode = dex::Op::IfEqz;
  If.A = 0;
  If.Target = 2;
  // Three structurally identical `return v0` blocks.
  M.Code = {If, makeRet(0), makeRet(0), makeRet(0)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  std::size_t Blocks = G->Blocks.size();
  std::size_t Removed = runReturnMerge(*G);
  EXPECT_GT(Removed, 0u);
  EXPECT_LT(G->Blocks.size(), Blocks);
  EXPECT_FALSE(bool(verifyHGraph(*G)));
}

TEST(CopyPropagation, RewritesUsesAndDropsSelfMoves) {
  // v1 = v0; v2 = v1 + v1; return v2  -->  v2 = v0 + v0.
  dex::Method M;
  M.Name = "copyprop";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Mv;
  Mv.Opcode = dex::Op::Move;
  Mv.A = 1;
  Mv.B = 0;
  M.Code = {Mv, makeBin(dex::Op::Add, 2, 1, 1), makeRet(2)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  std::size_t N = runCopyPropagation(*G);
  EXPECT_GE(N, 2u);
  const HInsn &Add = G->Blocks[0].Insns[1];
  EXPECT_EQ(Add.B, 0);
  EXPECT_EQ(Add.C, 0);
  // The move is now dead; DCE finishes the job.
  EXPECT_EQ(runDeadCodeElim(*G), 1u);
}

TEST(CopyPropagation, StopsAtRedefinition) {
  // v1 = v0; v0 = 5; v2 = v1  --  v1 still holds the OLD v0; the use of v1
  // must NOT be rewritten to v0.
  dex::Method M;
  M.Name = "copykill";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Mv;
  Mv.Opcode = dex::Op::Move;
  Mv.A = 1;
  Mv.B = 0;
  dex::Insn Mv2;
  Mv2.Opcode = dex::Op::Move;
  Mv2.A = 2;
  Mv2.B = 1;
  M.Code = {Mv, makeConst(0, 5), Mv2, makeRet(2)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  runCopyPropagation(*G);
  const HInsn &Second = G->Blocks[0].Insns[2];
  EXPECT_EQ(Second.Op, HOp::Move);
  EXPECT_EQ(Second.B, 1) << "copy through a clobbered source is illegal";
}

TEST(LocalCse, ReusesPureExpressions) {
  // v2 = v0 + v1; v3 = v0 + v1  -->  v3 = move v2.
  dex::Method M;
  M.Name = "cse";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {makeBin(dex::Op::Add, 2, 0, 1), makeBin(dex::Op::Add, 3, 0, 1),
            makeBin(dex::Op::Xor, 2, 2, 3), makeRet(2)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(runLocalCse(*G), 1u);
  EXPECT_EQ(G->Blocks[0].Insns[1].Op, HOp::Move);
  EXPECT_EQ(G->Blocks[0].Insns[1].B, 2);
}

TEST(LocalCse, InvalidatedByOperandRedefinition) {
  // v2 = v0 + v1; v0 = 7; v3 = v0 + v1  --  NOT a common subexpression.
  dex::Method M;
  M.Name = "csekill";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {makeBin(dex::Op::Add, 2, 0, 1), makeConst(0, 7),
            makeBin(dex::Op::Add, 3, 0, 1), makeRet(3)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(runLocalCse(*G), 0u);
  EXPECT_EQ(G->Blocks[0].Insns[2].Op, HOp::Add);
}

TEST(LocalCse, HolderClobberInvalidates) {
  // v2 = v0 + v1; v2 = 9; v3 = v0 + v1  --  the holder v2 was clobbered,
  // so the second add cannot become a move from it.
  dex::Method M;
  M.Name = "cseholder";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {makeBin(dex::Op::Add, 2, 0, 1), makeConst(2, 9),
            makeBin(dex::Op::Add, 3, 0, 1), makeRet(3)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(runLocalCse(*G), 0u);
}

TEST(LocalCse, DivisionIsEligible) {
  // Two identical divisions: if the first did not throw, neither can the
  // second, so reusing the quotient is sound.
  dex::Method M;
  M.Name = "csediv";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {makeBin(dex::Op::Div, 2, 0, 1), makeBin(dex::Op::Div, 3, 0, 1),
            makeBin(dex::Op::Add, 2, 2, 3), makeRet(2)};
  auto G = buildHGraph(M);
  ASSERT_TRUE(bool(G));
  EXPECT_EQ(runLocalCse(*G), 1u);
}

TEST(Pipeline, RunsAllPassesAndVerifies) {
  auto G = buildHGraph(straightLine());
  ASSERT_TRUE(bool(G));
  auto Stats = runPipeline(*G, defaultPipeline());
  EXPECT_EQ(Stats.size(), 6u);
  EXPECT_EQ(Stats[0].Name, "constant-folding");
  EXPECT_FALSE(bool(verifyHGraph(*G)));
}

} // namespace
