//===- tests/test_integration.cpp - End-to-end pipeline tests --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-equivalence harness: build one synthetic app under
/// every Calibro configuration from the paper's evaluation (Baseline, CTO,
/// CTO+LTBO, +PlOpti, +HfOpti), execute the same driver script on each
/// image, and require identical architectural behaviour (outcome, return
/// values, trace hash). This is the repo's strongest correctness statement:
/// outlining, patching and StackMap updates must all be right for the
/// traces to agree, because the simulator validates safepoints at every
/// allocation.
///
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "sim/Simulator.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace calibro;

namespace {

workload::AppSpec smallSpec(uint64_t Seed) {
  workload::AppSpec S;
  S.Name = "itest";
  S.Seed = Seed;
  S.NumWorkers = 60;
  S.NumUtilities = 30;
  return S;
}

struct RunDigest {
  std::vector<uint64_t> Hashes;
  std::vector<int64_t> Returns;
  uint64_t Cycles = 0;

  bool sameBehaviour(const RunDigest &O) const {
    return Hashes == O.Hashes && Returns == O.Returns;
  }
};

RunDigest runScript(const oat::OatFile &Oat,
                    const std::vector<workload::Invocation> &Script) {
  sim::SimOptions SOpts;
  sim::Simulator Sim(Oat, SOpts);
  RunDigest D;
  for (const auto &Inv : Script) {
    auto R = Sim.call(Inv.MethodIdx, Inv.Args);
    EXPECT_TRUE(bool(R)) << R.message();
    if (!R)
      return D;
    D.Hashes.push_back(R->TraceHash);
    D.Returns.push_back(R->ReturnValue);
    D.Cycles += R->Cycles;
  }
  return D;
}

class Pipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Pipeline, AllConfigurationsBehaveIdentically) {
  auto Spec = smallSpec(GetParam());
  dex::App App = workload::makeApp(Spec);
  ASSERT_FALSE(bool(dex::verifyApp(App)));
  auto Script = workload::makeScript(Spec, 12, 77);

  // Baseline.
  core::CalibroOptions Base;
  auto BaseBuild = core::buildApp(App, Base);
  ASSERT_TRUE(bool(BaseBuild)) << BaseBuild.message();
  ASSERT_FALSE(bool(oat::validateOat(BaseBuild->Oat)));
  RunDigest BaseRun = runScript(BaseBuild->Oat, Script);

  // CTO only.
  core::CalibroOptions Cto;
  Cto.EnableCto = true;
  auto CtoBuild = core::buildApp(App, Cto);
  ASSERT_TRUE(bool(CtoBuild)) << CtoBuild.message();
  ASSERT_FALSE(bool(oat::validateOat(CtoBuild->Oat)));
  EXPECT_LT(CtoBuild->Oat.textBytes(), BaseBuild->Oat.textBytes());
  RunDigest CtoRun = runScript(CtoBuild->Oat, Script);
  EXPECT_TRUE(BaseRun.sameBehaviour(CtoRun));

  // CTO + LTBO (single global suffix tree).
  core::CalibroOptions Full = Cto;
  Full.EnableLtbo = true;
  auto FullBuild = core::buildApp(App, Full);
  ASSERT_TRUE(bool(FullBuild)) << FullBuild.message();
  ASSERT_FALSE(bool(oat::validateOat(FullBuild->Oat)));
  EXPECT_LT(FullBuild->Oat.textBytes(), CtoBuild->Oat.textBytes());
  EXPECT_GT(FullBuild->Stats.Ltbo.SequencesOutlined, 0u);
  RunDigest FullRun = runScript(FullBuild->Oat, Script);
  EXPECT_TRUE(BaseRun.sameBehaviour(FullRun));

  // + PlOpti (partitioned parallel suffix trees).
  core::CalibroOptions Par = Full;
  Par.LtboPartitions = 8;
  Par.LtboThreads = 2;
  auto ParBuild = core::buildApp(App, Par);
  ASSERT_TRUE(bool(ParBuild)) << ParBuild.message();
  ASSERT_FALSE(bool(oat::validateOat(ParBuild->Oat)));
  // Partitioning loses some cross-partition redundancy (paper Table 4).
  EXPECT_GE(ParBuild->Oat.textBytes(), FullBuild->Oat.textBytes());
  EXPECT_LT(ParBuild->Oat.textBytes(), BaseBuild->Oat.textBytes());
  RunDigest ParRun = runScript(ParBuild->Oat, Script);
  EXPECT_TRUE(BaseRun.sameBehaviour(ParRun));

  // + HfOpti (profile-guided hot-function filtering).
  sim::SimOptions ProfOpts;
  ProfOpts.CollectProfile = true;
  sim::Simulator ProfSim(ParBuild->Oat, ProfOpts);
  for (const auto &Inv : Script) {
    auto R = ProfSim.call(Inv.MethodIdx, Inv.Args);
    ASSERT_TRUE(bool(R)) << R.message();
  }
  profile::Profile Prof = ProfSim.profileData();
  ASSERT_GT(Prof.totalCycles(), 0u);

  core::CalibroOptions Hf = Par;
  Hf.Profile = &Prof;
  auto HfBuild = core::buildApp(App, Hf);
  ASSERT_TRUE(bool(HfBuild)) << HfBuild.message();
  ASSERT_FALSE(bool(oat::validateOat(HfBuild->Oat)));
  EXPECT_GT(HfBuild->Stats.Ltbo.HotFilteredMethods, 0u);
  // Less outlining -> larger text than without filtering, still smaller
  // than baseline.
  EXPECT_GE(HfBuild->Oat.textBytes(), ParBuild->Oat.textBytes());
  EXPECT_LT(HfBuild->Oat.textBytes(), BaseBuild->Oat.textBytes());
  RunDigest HfRun = runScript(HfBuild->Oat, Script);
  EXPECT_TRUE(BaseRun.sameBehaviour(HfRun));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pipeline,
                         ::testing::Values(11, 22, 33));

TEST(Integration, DeterministicBuilds) {
  auto Spec = smallSpec(5);
  dex::App App = workload::makeApp(Spec);
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  Opts.LtboPartitions = 4;
  Opts.LtboThreads = 2;
  auto A = core::buildApp(App, Opts);
  auto B = core::buildApp(App, Opts);
  ASSERT_TRUE(bool(A)) << A.message();
  ASSERT_TRUE(bool(B)) << B.message();
  EXPECT_EQ(A->Oat.Text, B->Oat.Text)
      << "parallel outlining must be deterministic";
}

} // namespace
