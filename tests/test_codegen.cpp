//===- tests/test_codegen.cpp - Code generation tests -----------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/PcRel.h"
#include "codegen/ArtAbi.h"
#include "codegen/CodeGenerator.h"
#include "hir/HGraph.h"
#include "hir/Passes.h"

#include <gtest/gtest.h>

#include <set>

using namespace calibro;
using namespace calibro::codegen;

namespace {

dex::Insn op(dex::Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
             int64_t Imm = 0) {
  dex::Insn I;
  I.Opcode = O;
  I.A = A;
  I.B = B;
  I.C = C;
  I.Imm = Imm;
  return I;
}

CompiledMethod compileOne(const dex::Method &M, bool EnableCto = false,
                          CtoStubCache *Shared = nullptr) {
  CtoStubCache Local;
  CtoStubCache &Cache = Shared ? *Shared : Local;
  CodeGenerator Gen({.EnableCto = EnableCto}, Cache);
  if (M.IsNative)
    return Gen.compileNative(M);
  auto G = hir::buildHGraph(M);
  EXPECT_TRUE(bool(G)) << G.message();
  return Gen.compile(*G);
}

/// Counts the occurrences of a decoded-opcode predicate in method code,
/// skipping embedded data.
template <typename Pred>
std::size_t countInsns(const CompiledMethod &M, Pred &&P) {
  std::size_t N = 0;
  for (std::size_t W = 0; W < M.Code.size(); ++W) {
    bool IsData = false;
    for (const auto &D : M.Side.EmbeddedData)
      IsData |= W * 4 >= D.Offset && W * 4 < D.Offset + D.Size;
    if (IsData)
      continue;
    auto I = a64::decode(M.Code[W]);
    if (I && P(*I))
      ++N;
  }
  return N;
}

dex::Method leafMethod() {
  dex::Method M;
  M.Name = "leaf";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Add, 2, 0, 1), op(dex::Op::Return, 2)};
  return M;
}

dex::Method allocMethod() {
  dex::Method M;
  M.Name = "alloc";
  M.NumRegs = 8;
  M.NumArgs = 0;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::NewInstance, 1, 0, 0), op(dex::Op::IGet, 2, 1, 0, 8),
            op(dex::Op::Return, 2)};
  M.Code[0].Idx = 5;
  return M;
}

TEST(CodeGen, LeafMethodHasNoStackCheck) {
  CompiledMethod M = compileOne(leafMethod());
  // The Fig. 4c probe is `sub x16, sp, #0x2000`.
  std::size_t Probes = countInsns(M, [](const a64::Insn &I) {
    return I.Op == a64::Opcode::SubImm && I.Rd == a64::IP0 &&
           I.Rn == a64::SP && I.Shift == 12 && I.Imm == 2;
  });
  EXPECT_EQ(Probes, 0u);
}

TEST(CodeGen, NonLeafHasStackCheckAndArtPatterns) {
  CompiledMethod M = compileOne(allocMethod());
  std::size_t Probes = countInsns(M, [](const a64::Insn &I) {
    return I.Op == a64::Opcode::SubImm && I.Rd == a64::IP0 &&
           I.Rn == a64::SP && I.Shift == 12 && I.Imm == 2;
  });
  EXPECT_EQ(Probes, 1u);
  // The Fig. 4b entrypoint-call pattern: ldr x30, [x19, #off].
  std::size_t RtLoads = countInsns(M, [](const a64::Insn &I) {
    return I.Op == a64::Opcode::LdrImm && I.Rd == a64::LR &&
           I.Rn == a64::ThreadReg;
  });
  EXPECT_GE(RtLoads, 2u); // Alloc + the NPE slow path.
}

TEST(CodeGen, JavaCallPattern) {
  dex::Method M;
  M.Name = "caller";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Call = op(dex::Op::InvokeStatic, 2);
  Call.Idx = 3;
  Call.Args = {0, dex::NoReg, dex::NoReg, dex::NoReg};
  Call.NumArgs = 1;
  M.Code = {Call, op(dex::Op::Return, 2)};
  CompiledMethod C = compileOne(M);
  // Fig. 4a: ldr x30, [x0, #ArtMethodEntryPointOffset]; blr x30.
  std::size_t Pattern = countInsns(C, [](const a64::Insn &I) {
    return I.Op == a64::Opcode::LdrImm && I.Rd == a64::LR && I.Rn == 0 &&
           I.Imm == art::ArtMethodEntryPointOffset;
  });
  EXPECT_EQ(Pattern, 1u);
  EXPECT_EQ(countInsns(C, [](const a64::Insn &I) {
              return I.Op == a64::Opcode::Blr;
            }),
            1u);
  // One safepoint recorded right after the call.
  ASSERT_EQ(C.Map.Entries.size(), 1u);
  auto After = a64::decode(C.Code[C.Map.Entries[0].NativePcOffset / 4 - 1]);
  ASSERT_TRUE(After.has_value());
  EXPECT_TRUE(a64::isCall(After->Op));
}

TEST(CodeGen, CtoReplacesPatternsWithCalls) {
  CtoStubCache Cache;
  CompiledMethod M = compileOne(allocMethod(), /*EnableCto=*/true, &Cache);
  // No inline patterns remain.
  EXPECT_EQ(countInsns(M, [](const a64::Insn &I) {
              return I.Op == a64::Opcode::LdrImm && I.Rd == a64::LR;
            }),
            0u);
  EXPECT_EQ(countInsns(M, [](const a64::Insn &I) {
              return I.Op == a64::Opcode::Blr;
            }),
            0u);
  // Each replaced site is a bl with a CtoStub relocation.
  EXPECT_GE(M.Relocs.size(), 3u); // Stack check + alloc + slow paths.
  for (const auto &R : M.Relocs)
    EXPECT_EQ(R.Kind, RelocKind::CtoStub);
  // The cache holds the full pre-registered stub set (stack check, Java
  // call, one per entrypoint) exactly once, regardless of how many sites
  // used each stub.
  EXPECT_EQ(Cache.size(), std::size_t(2 + art::NumEntrypoints));
  // The three stubs this method actually calls are distinct.
  std::set<uint32_t> UsedStubs;
  for (const auto &R : M.Relocs)
    UsedStubs.insert(R.TargetId);
  EXPECT_EQ(UsedStubs.size(), 3u);
}

TEST(CodeGen, CtoCacheSharesAcrossMethods) {
  CtoStubCache Cache;
  compileOne(allocMethod(), true, &Cache);
  std::size_t After1 = Cache.size();
  compileOne(allocMethod(), true, &Cache);
  EXPECT_EQ(Cache.size(), After1) << "same patterns must reuse stubs";
}

TEST(CodeGen, CtoStubBodies) {
  auto Java = buildCtoStubCode(CtoStubKind::JavaCall, 24);
  ASSERT_EQ(Java.size(), 2u);
  auto I0 = a64::decode(Java[0]);
  auto I1 = a64::decode(Java[1]);
  ASSERT_TRUE(I0 && I1);
  EXPECT_EQ(I0->Op, a64::Opcode::LdrImm);
  EXPECT_EQ(I0->Rd, a64::IP0);
  EXPECT_EQ(I0->Rn, 0);
  EXPECT_EQ(I0->Imm, 24);
  EXPECT_EQ(I1->Op, a64::Opcode::Br);
  EXPECT_EQ(I1->Rn, a64::IP0);

  auto Check = buildCtoStubCode(CtoStubKind::StackCheck, 0);
  ASSERT_EQ(Check.size(), 3u);
  EXPECT_EQ(a64::decode(Check[2])->Op, a64::Opcode::Ret);
}

TEST(CodeGen, SideInfoTerminatorsAndPcRel) {
  dex::Method M;
  M.Name = "branchy";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn If = op(dex::Op::IfLtz, 0);
  If.Target = 2;
  M.Code = {If, op(dex::Op::ConstInt, 1, 0, 0, 7), op(dex::Op::Return, 1)};
  M.Code[2].A = 1;
  CompiledMethod C = compileOne(M);
  ASSERT_FALSE(C.Side.TerminatorOffsets.empty());
  for (uint32_t T : C.Side.TerminatorOffsets) {
    auto I = a64::decode(C.Code[T / 4]);
    ASSERT_TRUE(I.has_value());
    EXPECT_TRUE(a64::isTerminator(I->Op));
  }
  ASSERT_FALSE(C.Side.PcRelRecords.empty());
  for (const auto &R : C.Side.PcRelRecords) {
    auto I = a64::decode(C.Code[R.InsnOffset / 4]);
    ASSERT_TRUE(I.has_value());
    ASSERT_TRUE(a64::isPcRelative(I->Op));
    auto Target = a64::pcRelTarget(*I, R.InsnOffset);
    ASSERT_TRUE(Target.has_value());
    EXPECT_EQ(*Target, R.TargetOffset);
  }
}

TEST(CodeGen, BigConstantsUseLiteralPool) {
  dex::Method M;
  M.Name = "bigconst";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::ConstInt, 1, 0, 0, 0x123456789abLL),
            op(dex::Op::Return, 1)};
  CompiledMethod C = compileOne(M);
  ASSERT_EQ(C.Side.EmbeddedData.size(), 1u);
  const auto &D = C.Side.EmbeddedData[0];
  EXPECT_EQ(D.Size, 8u);
  EXPECT_EQ(D.Offset % 8, 0u);
  // The pool holds the value.
  uint64_t Lo = C.Code[D.Offset / 4];
  uint64_t Hi = C.Code[D.Offset / 4 + 1];
  EXPECT_EQ((Hi << 32) | Lo, 0x123456789abULL);
  // And an ldr-literal references it.
  EXPECT_EQ(countInsns(C, [](const a64::Insn &I) {
              return I.Op == a64::Opcode::LdrLit;
            }),
            1u);
}

TEST(CodeGen, PoolDeduplicatesValues) {
  dex::Method M;
  M.Name = "dedup";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::ConstInt, 1, 0, 0, 0x123456789abLL),
            op(dex::Op::ConstInt, 2, 0, 0, 0x123456789abLL),
            op(dex::Op::Return, 1)};
  CompiledMethod C = compileOne(M);
  ASSERT_EQ(C.Side.EmbeddedData.size(), 1u);
  EXPECT_EQ(C.Side.EmbeddedData[0].Size, 8u) << "same value, one pool slot";
}

TEST(CodeGen, SwitchSetsIndirectJumpFlag) {
  dex::Method M;
  M.Name = "switchy";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Sw = op(dex::Op::Switch, 0);
  Sw.Imm = 0;
  M.SwitchTables.push_back({2u, 3u});
  M.Code = {Sw, op(dex::Op::ConstInt, 1, 0, 0, 0), op(dex::Op::Return, 1),
            op(dex::Op::Return, 1)};
  CompiledMethod C = compileOne(M);
  EXPECT_TRUE(C.Side.HasIndirectJump);
  EXPECT_EQ(countInsns(C, [](const a64::Insn &I) {
              return I.Op == a64::Opcode::Br;
            }),
            1u);
  EXPECT_EQ(countInsns(C, [](const a64::Insn &I) {
              return I.Op == a64::Opcode::Adr;
            }),
            1u);
}

TEST(CodeGen, NativeTrampoline) {
  dex::Method M;
  M.Name = "jni";
  M.Idx = 9;
  M.IsNative = true;
  CompiledMethod C = compileOne(M);
  EXPECT_TRUE(C.Side.IsNative);
  EXPECT_FALSE(C.Map.Entries.empty());
  // Calls JniStart and JniEnd.
  EXPECT_EQ(countInsns(C, [](const a64::Insn &I) {
              return I.Op == a64::Opcode::Blr;
            }),
            2u);
}

TEST(CodeGen, SlowPathRangesCoverThrowHelpers) {
  CompiledMethod C = compileOne(allocMethod());
  ASSERT_EQ(C.Side.SlowPathRanges.size(), 1u); // NPE from the IGet.
  const auto &R = C.Side.SlowPathRanges[0];
  EXPECT_LT(R.Begin, R.End);
  // The slow path ends with brk.
  auto Last = a64::decode(C.Code[R.End / 4 - 1]);
  ASSERT_TRUE(Last.has_value());
  EXPECT_EQ(Last->Op, a64::Opcode::Brk);
}

TEST(CodeGen, SavesOnlyUsedHomeRegisters) {
  // leafMethod uses v0..v2 -> saves x20..x22 (3 homes), not all nine.
  CompiledMethod C = compileOne(leafMethod());
  std::size_t Saves = countInsns(C, [](const a64::Insn &I) {
    return (I.Op == a64::Opcode::Stp || I.Op == a64::Opcode::StrImm) &&
           I.Rd >= 20 && I.Rd <= 28 && I.Rn == a64::SP;
  });
  EXPECT_EQ(Saves, 2u); // stp x20,x21 + str x22.
}

} // namespace
