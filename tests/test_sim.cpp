//===- tests/test_sim.cpp - Simulator tests ---------------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::sim;

namespace {

dex::Insn op(dex::Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
             int64_t Imm = 0) {
  dex::Insn I;
  I.Opcode = O;
  I.A = A;
  I.B = B;
  I.C = C;
  I.Imm = Imm;
  return I;
}

dex::Insn ret(uint16_t A) { return op(dex::Op::Return, A); }

/// Builds a one-file app from the given methods and links it baseline.
oat::OatFile buildApp(std::vector<dex::Method> Methods) {
  dex::App A;
  A.Name = "simtest";
  A.Files.resize(1);
  for (uint32_t I = 0; I < Methods.size(); ++I)
    Methods[I].Idx = I;
  A.Files[0].Methods = std::move(Methods);
  core::CalibroOptions Opts;
  auto B = core::buildApp(A, Opts);
  EXPECT_TRUE(bool(B)) << B.message();
  return std::move(B->Oat);
}

dex::Method arithMethod() {
  // return (v0 + v1) * 3 - v1
  dex::Method M;
  M.Name = "arith";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Add, 2, 0, 1),
            op(dex::Op::ConstInt, 3, 0, 0, 3),
            op(dex::Op::Mul, 2, 2, 3),
            op(dex::Op::Sub, 2, 2, 1),
            ret(2)};
  return M;
}

TEST(Sim, ArithmeticMatchesReference) {
  auto Oat = buildApp({arithMethod()});
  Simulator Sim(Oat, {});
  for (int64_t A : {0LL, 5LL, -7LL, 1LL << 40}) {
    for (int64_t B : {1LL, -3LL, 100LL}) {
      int64_t Args[2] = {A, B};
      auto R = Sim.call(0, Args);
      ASSERT_TRUE(bool(R)) << R.message();
      EXPECT_EQ(R->What, Outcome::Ok);
      EXPECT_EQ(R->ReturnValue, (A + B) * 3 - B);
    }
  }
}

TEST(Sim, ShiftAndLogicSemantics) {
  // return ((v0 << v1) ^ v0) & (v0 >> 1)  -- Shr is arithmetic.
  dex::Method M;
  M.Name = "bits";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Shl, 2, 0, 1),
            op(dex::Op::Xor, 2, 2, 0),
            op(dex::Op::ConstInt, 3, 0, 0, 1),
            op(dex::Op::Shr, 4, 0, 3),
            op(dex::Op::And, 2, 2, 4),
            ret(2)};
  auto Oat = buildApp({M});
  Simulator Sim(Oat, {});
  for (int64_t A : {3LL, -9LL, 0x7fffffffffffLL}) {
    for (int64_t B : {0LL, 1LL, 17LL, 63LL}) {
      int64_t Args[2] = {A, B};
      auto R = Sim.call(0, Args);
      ASSERT_TRUE(bool(R)) << R.message();
      int64_t Expect =
          ((int64_t)((uint64_t)A << (B & 63)) ^ A) & (A >> 1);
      EXPECT_EQ(R->ReturnValue, Expect);
    }
  }
}

TEST(Sim, DivisionSemantics) {
  dex::Method M;
  M.Name = "div";
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Div, 2, 0, 1), ret(2)};
  auto Oat = buildApp({M});
  Simulator Sim(Oat, {});

  int64_t Args[2] = {100, 7};
  auto R = Sim.call(0, Args);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->ReturnValue, 14);

  int64_t ZeroArgs[2] = {100, 0};
  auto RZ = Sim.call(0, ZeroArgs);
  ASSERT_TRUE(bool(RZ));
  EXPECT_EQ(RZ->What, Outcome::DivZeroException);

  int64_t OvfArgs[2] = {INT64_MIN, -1};
  auto RO = Sim.call(0, OvfArgs);
  ASSERT_TRUE(bool(RO));
  EXPECT_EQ(RO->ReturnValue, INT64_MIN) << "sdiv overflow semantics";
}

TEST(Sim, NullPointerException) {
  dex::Method M;
  M.Name = "npe";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  // IGet on the argument; calling with 0 must throw.
  M.Code = {op(dex::Op::IGet, 1, 0, 0, 8), ret(1)};
  auto Oat = buildApp({M});
  Simulator Sim(Oat, {});
  int64_t Null[1] = {0};
  auto R = Sim.call(0, Null);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->What, Outcome::NullPointerException);
}

TEST(Sim, AllocFieldRoundTrip) {
  // obj = new; obj.f8 = v0; return obj.f8 + 1
  dex::Method M;
  M.Name = "fields";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Alloc = op(dex::Op::NewInstance, 1);
  Alloc.Idx = 4;
  M.Code = {Alloc,
            op(dex::Op::IPut, 0, 1, 0, 8),
            op(dex::Op::IGet, 2, 1, 0, 8),
            op(dex::Op::AddImm, 2, 2, 0, 1),
            ret(2)};
  auto Oat = buildApp({M});
  Simulator Sim(Oat, {});
  int64_t Args[1] = {41};
  auto R = Sim.call(0, Args);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->ReturnValue, 42);
}

TEST(Sim, CallsPropagateValues) {
  dex::Method Callee = arithMethod(); // Will be idx 1.
  dex::Method Caller;
  Caller.Name = "caller";
  Caller.NumRegs = 8;
  Caller.NumArgs = 2;
  Caller.ReturnsValue = true;
  dex::Insn Call = op(dex::Op::InvokeStatic, 3);
  Call.Idx = 1;
  Call.Args = {0, 1, dex::NoReg, dex::NoReg};
  Call.NumArgs = 2;
  Caller.Code = {Call, op(dex::Op::AddImm, 3, 3, 0, 5), ret(3)};
  auto Oat = buildApp({Caller, Callee});
  Simulator Sim(Oat, {});
  int64_t Args[2] = {10, 4};
  auto R = Sim.call(0, Args);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->ReturnValue, (10 + 4) * 3 - 4 + 5);
  EXPECT_GE(R->Calls, 1u);
}

TEST(Sim, ThrowDeliversException) {
  dex::Method M;
  M.Name = "thrower";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Throw, 0), ret(0)};
  auto Oat = buildApp({M});
  Simulator Sim(Oat, {});
  int64_t Args[1] = {7};
  auto R = Sim.call(0, Args);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->What, Outcome::Exception);
}

TEST(Sim, SwitchDispatch) {
  dex::Method M;
  M.Name = "switchy";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Sw = op(dex::Op::Switch, 0);
  Sw.Imm = 0;
  M.SwitchTables.push_back({3u, 5u, 7u});
  // 0: switch 1: const v1=99 (default) 2: goto end
  // 3: const v1=10; goto gone? -- build: each case returns directly.
  dex::Insn DefC = op(dex::Op::ConstInt, 1, 0, 0, 99);
  M.Code = {Sw,
            DefC,
            op(dex::Op::Goto, 0, 0, 0),
            op(dex::Op::ConstInt, 1, 0, 0, 10),
            op(dex::Op::Goto, 0, 0, 0),
            op(dex::Op::ConstInt, 1, 0, 0, 20),
            op(dex::Op::Goto, 0, 0, 0),
            op(dex::Op::ConstInt, 1, 0, 0, 30),
            ret(1)};
  M.Code[2].Target = 8;
  M.Code[4].Target = 8;
  M.Code[6].Target = 8;
  auto Oat = buildApp({M});
  Simulator Sim(Oat, {});
  auto Run = [&](int64_t V) {
    int64_t Args[1] = {V};
    auto R = Sim.call(0, Args);
    EXPECT_TRUE(bool(R)) << R.message();
    return R ? R->ReturnValue : -1;
  };
  EXPECT_EQ(Run(0), 10);
  EXPECT_EQ(Run(1), 20);
  EXPECT_EQ(Run(2), 30);
  EXPECT_EQ(Run(3), 99);   // Out of range -> default.
  EXPECT_EQ(Run(-1), 99);  // Negative -> default (unsigned compare).
}

TEST(Sim, StackOverflowDetected) {
  // Infinite recursion trips the Fig. 4c probe once the guard is reached.
  dex::Method M;
  M.Name = "recurse";
  M.NumRegs = 8;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  dex::Insn Call = op(dex::Op::InvokeStatic, 1);
  Call.Idx = 0; // Self.
  Call.Args = {0, dex::NoReg, dex::NoReg, dex::NoReg};
  Call.NumArgs = 1;
  M.Code = {Call, ret(1)};
  auto Oat = buildApp({M});
  Simulator Sim(Oat, {});
  int64_t Args[1] = {1};
  auto R = Sim.call(0, Args);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->What, Outcome::StackOverflow);
}

TEST(Sim, JniIsDeterministic) {
  dex::Method N;
  N.Name = "native";
  N.IsNative = true;
  auto Oat = buildApp({N});
  Simulator Sim(Oat, {});
  auto R1 = Sim.call(0, {});
  auto R2 = Sim.call(0, {});
  ASSERT_TRUE(bool(R1) && bool(R2));
  EXPECT_EQ(R1->ReturnValue, R2->ReturnValue);
  EXPECT_EQ(R1->TraceHash, R2->TraceHash);
}

TEST(Sim, TraceHashSensitiveToBehaviour) {
  auto Oat = buildApp({arithMethod()});
  Simulator Sim(Oat, {});
  int64_t A1[2] = {1, 2};
  int64_t A2[2] = {3, 4};
  auto R1 = Sim.call(0, A1);
  auto R2 = Sim.call(0, A2);
  ASSERT_TRUE(bool(R1) && bool(R2));
  EXPECT_NE(R1->TraceHash, R2->TraceHash);
}

TEST(Sim, MissingSafepointIsAFault) {
  dex::Method M;
  M.Name = "alloc";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  dex::Insn Alloc = op(dex::Op::NewInstance, 1);
  Alloc.Idx = 0;
  M.Code = {Alloc, ret(1)};
  auto Oat = buildApp({M});
  // Corrupt the StackMap: drop every entry.
  Oat.Methods[0].Map.Entries.clear();
  Simulator Sim(Oat, {});
  auto R = Sim.call(0, {});
  EXPECT_FALSE(bool(R)) << "allocation without a safepoint must fault";
  consumeError(R.takeError());
}

TEST(Sim, StatisticsAccumulate) {
  auto Oat = buildApp({arithMethod()});
  SimOptions Opts;
  Opts.CollectProfile = true;
  Simulator Sim(Oat, Opts);
  int64_t Args[2] = {1, 2};
  auto R = Sim.call(0, Args);
  ASSERT_TRUE(bool(R));
  EXPECT_GT(R->Insns, 0u);
  EXPECT_GT(R->Cycles, R->Insns); // Cycle model adds penalties.
  EXPECT_GT(R->ICacheMisses, 0u); // Cold cache.
  EXPECT_GT(Sim.touchedTextPages(), 0u);
  EXPECT_GT(Sim.profileData().totalCycles(), 0u);

  Sim.reset();
  EXPECT_EQ(Sim.touchedTextPages(), 0u);
  EXPECT_EQ(Sim.profileData().totalCycles(), 0u);
}

TEST(Sim, InstructionBudgetGuards) {
  // An infinite loop trips MaxInsns as a fault, not a hang.
  dex::Method M;
  M.Name = "spin";
  M.NumRegs = 8;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Goto, 0, 0, 0), ret(1)};
  M.Code[0].Target = 0;
  auto Oat = buildApp({M});
  SimOptions Opts;
  Opts.MaxInsns = 1000;
  Simulator Sim(Oat, Opts);
  auto R = Sim.call(0, {});
  EXPECT_FALSE(bool(R));
  consumeError(R.takeError());
}

} // namespace
