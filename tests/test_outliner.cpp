//===- tests/test_outliner.cpp - LTBO outliner tests ------------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "codegen/CodeGenerator.h"
#include "core/BenefitModel.h"
#include "core/Outliner.h"
#include "core/RedundancyAnalysis.h"
#include "hir/HGraph.h"
#include "oat/Linker.h"
#include "sim/Simulator.h"
#include "verify/OatVerifier.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::codegen;
using namespace calibro::core;

namespace {

dex::Insn op(dex::Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
             int64_t Imm = 0) {
  dex::Insn I;
  I.Opcode = O;
  I.A = A;
  I.B = B;
  I.C = C;
  I.Imm = Imm;
  return I;
}

/// A method whose body is a fixed arithmetic chain — compiling it twice
/// under different names yields byte-identical bodies, i.e. cross-method
/// binary redundancy.
dex::Method chainMethod(uint32_t Idx, const std::string &Name) {
  dex::Method M;
  M.Idx = Idx;
  M.Name = Name;
  M.NumRegs = 8;
  M.NumArgs = 2;
  M.ReturnsValue = true;
  M.Code = {op(dex::Op::Add, 2, 0, 1),    op(dex::Op::Xor, 3, 2, 0),
            op(dex::Op::Mul, 2, 2, 3),    op(dex::Op::And, 3, 2, 1),
            op(dex::Op::Sub, 2, 2, 3),    op(dex::Op::Or, 3, 2, 0),
            op(dex::Op::Add, 2, 2, 3),    op(dex::Op::Return, 2)};
  return M;
}

std::vector<CompiledMethod> compileMethods(std::vector<dex::Method> Ms,
                                           bool Cto = false) {
  CtoStubCache Cache;
  CodeGenerator Gen({.EnableCto = Cto}, Cache);
  std::vector<CompiledMethod> Out;
  for (const auto &M : Ms) {
    if (M.IsNative) {
      Out.push_back(Gen.compileNative(M));
      continue;
    }
    auto G = hir::buildHGraph(M);
    EXPECT_TRUE(bool(G)) << G.message();
    Out.push_back(Gen.compile(*G));
  }
  return Out;
}

TEST(Outliner, OutlinesCrossMethodRedundancy) {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 6; ++I)
    Ms.push_back(chainMethod(I, "chain" + std::to_string(I)));
  auto Compiled = compileMethods(Ms);
  uint64_t Before = 0;
  for (const auto &M : Compiled)
    Before += M.Code.size();

  auto R = runLtbo(Compiled, {});
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_GT(R->Stats.SequencesOutlined, 0u);
  EXPECT_GT(R->Stats.InsnsRemoved, 0u);
  EXPECT_EQ(R->Stats.CandidateMethods, 6u);

  uint64_t After = 0;
  for (const auto &M : Compiled)
    After += M.Code.size();
  uint64_t OutlinedWords = 0;
  for (const auto &F : R->Funcs)
    OutlinedWords += F.Code.size();
  // Net saving accounting (Fig. 2): the words removed from method bodies,
  // minus the outlined copies (sequence + br x30), equal the reported net.
  EXPECT_EQ(R->Stats.InsnsRemoved, Before - After - OutlinedWords);

  // Every outlined function ends in br x30 and contains no LR-touching,
  // PC-relative or terminator instructions before it.
  for (const auto &F : R->Funcs) {
    ASSERT_GE(F.Code.size(), 2u);
    auto Last = a64::decode(F.Code.back());
    ASSERT_TRUE(Last.has_value());
    EXPECT_EQ(Last->Op, a64::Opcode::Br);
    EXPECT_EQ(Last->Rn, a64::LR);
    for (std::size_t W = 0; W + 1 < F.Code.size(); ++W) {
      auto I = a64::decode(F.Code[W]);
      ASSERT_TRUE(I.has_value());
      EXPECT_FALSE(a64::isTerminator(I->Op));
      EXPECT_FALSE(a64::isPcRelative(I->Op));
      EXPECT_FALSE(a64::isCall(I->Op));
      EXPECT_NE(I->Rd, a64::LR);
    }
  }
}

TEST(Outliner, ReplacedOccurrencesCarryRelocations) {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 6; ++I)
    Ms.push_back(chainMethod(I, "c" + std::to_string(I)));
  auto Compiled = compileMethods(Ms);
  auto R = runLtbo(Compiled, {});
  ASSERT_TRUE(bool(R));
  std::size_t OutlinedCalls = 0;
  for (const auto &M : Compiled)
    for (const auto &Rel : M.Relocs)
      if (Rel.Kind == RelocKind::OutlinedFunc) {
        ++OutlinedCalls;
        auto I = a64::decode(M.Code[Rel.Offset / 4]);
        ASSERT_TRUE(I.has_value());
        EXPECT_EQ(I->Op, a64::Opcode::Bl);
      }
  EXPECT_EQ(OutlinedCalls, R->Stats.OccurrencesReplaced);
}

TEST(Outliner, ExcludesIndirectJumpAndNativeMethods) {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 4; ++I)
    Ms.push_back(chainMethod(I, "c" + std::to_string(I)));
  // A switch method (indirect jump).
  dex::Method Sw;
  Sw.Idx = 4;
  Sw.Name = "switchy";
  Sw.NumRegs = 8;
  Sw.NumArgs = 1;
  Sw.ReturnsValue = true;
  dex::Insn S = op(dex::Op::Switch, 0);
  S.Imm = 0;
  Sw.SwitchTables.push_back({2u});
  Sw.Code = {S, op(dex::Op::ConstInt, 1, 0, 0, 9), op(dex::Op::Return, 1)};
  Ms.push_back(Sw);
  // A native method.
  dex::Method N;
  N.Idx = 5;
  N.Name = "jni";
  N.IsNative = true;
  Ms.push_back(N);

  auto Compiled = compileMethods(Ms);
  std::vector<uint32_t> SwitchWords = Compiled[4].Code;
  std::vector<uint32_t> NativeWords = Compiled[5].Code;

  auto R = runLtbo(Compiled, {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Stats.CandidateMethods, 4u);
  EXPECT_EQ(R->Stats.ExcludedIndirectJump, 1u);
  EXPECT_EQ(R->Stats.ExcludedNative, 1u);
  EXPECT_EQ(Compiled[4].Code, SwitchWords) << "switch method untouched";
  EXPECT_EQ(Compiled[5].Code, NativeWords) << "native method untouched";
}

TEST(Outliner, BenefitModelGatesSelection) {
  // Two identical methods: their shared body appears twice. For a repeat
  // of length L with N=2, benefit = 2L - (L + 3) = L - 3, so only
  // sequences longer than 3 instructions get outlined.
  auto Compiled = compileMethods({chainMethod(0, "a"), chainMethod(1, "b")});
  auto R = runLtbo(Compiled, {});
  ASSERT_TRUE(bool(R));
  for (const auto &F : R->Funcs) {
    EXPECT_TRUE(isProfitable(F.SeqLength, F.Occurrences))
        << "len " << F.SeqLength << " x " << F.Occurrences;
  }
}

TEST(Outliner, HotFilteringRestrictsToSlowPaths) {
  // Methods with an IGet have an NPE slow path; make them hot.
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 6; ++I) {
    dex::Method M = chainMethod(I, "hot" + std::to_string(I));
    M.Code.insert(M.Code.begin(), op(dex::Op::IGet, 4, 0, 0, 8));
    Ms.push_back(M);
  }
  auto Unfiltered = compileMethods(Ms);
  auto FilteredIn = Unfiltered; // Copy for the second run.

  auto RAll = runLtbo(Unfiltered, {});
  ASSERT_TRUE(bool(RAll));

  std::set<uint32_t> Hot = {0, 1, 2, 3, 4, 5};
  OutlinerOptions HotOpts;
  HotOpts.HotMethods = &Hot;
  auto RHot = runLtbo(FilteredIn, HotOpts);
  ASSERT_TRUE(bool(RHot));
  EXPECT_EQ(RHot->Stats.HotFilteredMethods, 6u);
  EXPECT_LT(RHot->Stats.InsnsRemoved, RAll->Stats.InsnsRemoved)
      << "hot filtering must cost some size reduction";
  // Whatever is outlined in the hot methods must come from slow paths:
  // every replaced bl must sit inside a recorded slow-path range.
  for (const auto &M : FilteredIn) {
    for (const auto &Rel : M.Relocs) {
      if (Rel.Kind != RelocKind::OutlinedFunc)
        continue;
      bool InSlow = false;
      for (const auto &SP : M.Side.SlowPathRanges)
        InSlow |= SP.contains(Rel.Offset);
      EXPECT_TRUE(InSlow) << "outlined non-slow-path code in a hot method";
    }
  }
  // The shared slow-path context pair still outlines (paper §3.4.2).
  EXPECT_GT(RHot->Stats.SequencesOutlined, 0u);
}

TEST(Outliner, PartitioningLosesSomeReduction) {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 12; ++I)
    Ms.push_back(chainMethod(I, "p" + std::to_string(I)));
  auto Single = compileMethods(Ms);
  auto Parted = Single;

  auto R1 = runLtbo(Single, {});
  OutlinerOptions POpts;
  POpts.Partitions = 4;
  auto R4 = runLtbo(Parted, POpts);
  ASSERT_TRUE(bool(R1) && bool(R4));
  // With 12 identical methods split 4 ways, each partition still finds the
  // repeats among its 3 methods, but pays for 4 outlined copies.
  EXPECT_GE(R1->Stats.InsnsRemoved, R4->Stats.InsnsRemoved);
  EXPECT_GT(R4->Stats.SequencesOutlined, 0u);
}

TEST(Outliner, RewrittenMethodsLinkAndValidate) {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 6; ++I)
    Ms.push_back(chainMethod(I, "v" + std::to_string(I)));
  auto Compiled = compileMethods(Ms);
  auto R = runLtbo(Compiled, {});
  ASSERT_TRUE(bool(R));
  oat::LinkInput In;
  In.AppName = "outline-validate";
  In.Methods = std::move(Compiled);
  In.Outlined = std::move(R->Funcs);
  auto O = oat::link(In);
  ASSERT_TRUE(bool(O)) << O.message();
  EXPECT_FALSE(bool(oat::validateOat(*O)));
}

TEST(Outliner, SuffixArrayBackendMatchesSuffixTree) {
  // Both detection backends enumerate the same maximal repeats, so the
  // whole outlining pipeline must produce identical methods and functions.
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 10; ++I)
    Ms.push_back(chainMethod(I, "d" + std::to_string(I)));
  auto ViaTree = compileMethods(Ms);
  auto ViaArray = ViaTree;

  OutlinerOptions TreeOpts;
  auto RT = runLtbo(ViaTree, TreeOpts);
  OutlinerOptions ArrayOpts;
  ArrayOpts.Detector = DetectorKind::SuffixArray;
  auto RA = runLtbo(ViaArray, ArrayOpts);
  ASSERT_TRUE(bool(RT) && bool(RA));

  EXPECT_EQ(RT->Stats.InsnsRemoved, RA->Stats.InsnsRemoved);
  EXPECT_EQ(RT->Stats.OccurrencesReplaced, RA->Stats.OccurrencesReplaced);
  ASSERT_EQ(ViaTree.size(), ViaArray.size());
  for (std::size_t M = 0; M < ViaTree.size(); ++M)
    EXPECT_EQ(ViaTree[M].Code, ViaArray[M].Code) << "method " << M;
  ASSERT_EQ(RT->Funcs.size(), RA->Funcs.size());
  for (std::size_t F = 0; F < RT->Funcs.size(); ++F)
    EXPECT_EQ(RT->Funcs[F].Code, RA->Funcs[F].Code);
}

TEST(Outliner, FailureInjectionCorruptSideInfo) {
  // Drop the recorded terminators and PC-relative instructions from every
  // method. Pre-validation the outliner would trust the lying records and
  // move branches into shared copies without re-patching them; now the
  // deep side-info validator notices the unrecorded instructions and the
  // methods degrade: excluded from outlining, linked verbatim, and the
  // resulting image still runs exactly like an unoutlined build.
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 6; ++I) {
    dex::Method M = chainMethod(I, "f" + std::to_string(I));
    // Branch over the whole outlinable chain to the return: if outlining
    // ever shrank the chain anyway, the unpatched branch would overshoot.
    dex::Insn If = op(dex::Op::IfLtz, 0);
    // After the insertion below, the Return lands at index Code.size().
    If.Target = static_cast<uint32_t>(M.Code.size());
    M.Code.insert(M.Code.begin(), If);
    M.NumRegs = static_cast<uint16_t>(10 + 2 * I);
    Ms.push_back(M);
  }

  auto Reference = compileMethods(Ms);
  auto Corrupt = Reference;
  for (auto &M : Corrupt) {
    M.Side.PcRelRecords.clear();
    M.Side.TerminatorOffsets.clear();
  }

  // Strict mode: fail fast, naming the first (lowest-index) bad method.
  {
    auto Copy = Corrupt;
    OutlinerOptions Strict;
    Strict.Strict = true;
    auto R = runLtbo(Copy, Strict);
    ASSERT_FALSE(bool(R));
    std::string Message = R.message();
    EXPECT_NE(Message.find("f0"), std::string::npos) << Message;
    EXPECT_EQ(R.category(), ErrCat::SideInfo);
  }

  // Default mode: every corrupt method is rejected and left untouched.
  auto RCorrupt = runLtbo(Corrupt, {});
  ASSERT_TRUE(bool(RCorrupt)) << RCorrupt.message();
  EXPECT_EQ(RCorrupt->Stats.MethodsRejected, 6u);
  EXPECT_EQ(RCorrupt->Rejected.size(), 6u);
  EXPECT_EQ(RCorrupt->Stats.SequencesOutlined, 0u);
  EXPECT_TRUE(RCorrupt->Funcs.empty());
  std::size_t ByFault = 0;
  for (std::size_t F = 0; F < codegen::NumSideInfoFaults; ++F)
    ByFault += RCorrupt->Stats.RejectedByFault[F];
  EXPECT_EQ(ByFault, 6u);
  for (const auto &RM : RCorrupt->Rejected)
    EXPECT_TRUE(RM.Fault == codegen::SideInfoFault::TerminatorUnrecorded ||
                RM.Fault == codegen::SideInfoFault::PcRelUnrecorded)
        << codegen::sideInfoFaultName(RM.Fault);
  for (std::size_t M = 0; M < Corrupt.size(); ++M)
    EXPECT_EQ(Corrupt[M].Code, Reference[M].Code)
        << "rejected method " << M << " was rewritten";

  // The degraded image links verbatim and behaves like an unoutlined one.
  oat::LinkInput In;
  In.AppName = "inject";
  In.Methods = std::move(Corrupt);
  In.Outlined = std::move(RCorrupt->Funcs);
  auto O = oat::link(In);
  ASSERT_TRUE(bool(O)) << O.message();
  sim::Simulator Sim(*O, {});
  for (uint32_t M = 0; M < 6; ++M) {
    int64_t Args[2] = {-7, 5};
    auto RA = Sim.call(M, Args);
    ASSERT_TRUE(bool(RA)) << RA.message();
    EXPECT_EQ(RA->What, sim::Outcome::Ok);
  }
}

TEST(Outliner, EmbeddedDataIsNeverOutlined) {
  // Give two methods identical literal pools; the pool words must stay in
  // place (they are separators) even though they repeat.
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 6; ++I) {
    dex::Method M = chainMethod(I, "pool" + std::to_string(I));
    dex::Insn C = op(dex::Op::ConstInt, 3, 0, 0, 0x123456789abLL);
    M.Code.insert(M.Code.begin(), C);
    Ms.push_back(M);
  }
  auto Compiled = compileMethods(Ms);
  auto R = runLtbo(Compiled, {});
  ASSERT_TRUE(bool(R));
  for (const auto &M : Compiled) {
    ASSERT_EQ(M.Side.EmbeddedData.size(), 1u);
    const auto &D = M.Side.EmbeddedData[0];
    uint64_t Lo = M.Code[D.Offset / 4];
    uint64_t Hi = M.Code[D.Offset / 4 + 1];
    EXPECT_EQ((Hi << 32) | Lo, 0x123456789abULL)
        << "literal pool moved or vanished";
  }
}

TEST(Outliner, RejectsBadOptions) {
  std::vector<CompiledMethod> None;
  OutlinerOptions Bad;
  Bad.Partitions = 0;
  auto R = runLtbo(None, Bad);
  EXPECT_FALSE(bool(R));
  consumeError(R.takeError());

  OutlinerOptions Bad2;
  Bad2.MinSeqLen = 1;
  auto R2 = runLtbo(None, Bad2);
  EXPECT_FALSE(bool(R2));
  consumeError(R2.takeError());
}

//===----------------------------------------------------------------------===//
// Memory-budgeted (windowed) streaming
//===----------------------------------------------------------------------===//

/// A corpus with enough shape variety that the 8 round-robin groups hold
/// different content: three method families, several members each.
std::vector<dex::Method> windowedCorpus() {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 24; ++I) {
    dex::Method M = chainMethod(I, "w" + std::to_string(I));
    if (I % 3 == 1)
      M.Code.insert(M.Code.begin(), op(dex::Op::Mul, 4, 1, 1));
    if (I % 3 == 2) {
      M.Code.insert(M.Code.begin(), op(dex::Op::Sub, 5, 1, 0));
      M.Code.insert(M.Code.begin(), op(dex::Op::Xor, 4, 0, 1));
    }
    Ms.push_back(M);
  }
  return Ms;
}

/// Full-result equality: rewritten method bodies, outlined functions (ids
/// and bodies), and the scheduling-invariant stats.
void expectSameOutcome(const std::vector<CompiledMethod> &MA,
                       const OutlineResult &RA,
                       const std::vector<CompiledMethod> &MB,
                       const OutlineResult &RB, const std::string &Label) {
  ASSERT_EQ(MA.size(), MB.size()) << Label;
  for (std::size_t M = 0; M < MA.size(); ++M)
    ASSERT_EQ(MA[M].Code, MB[M].Code) << Label << ": method " << M;
  ASSERT_EQ(RA.Funcs.size(), RB.Funcs.size()) << Label;
  for (std::size_t F = 0; F < RA.Funcs.size(); ++F) {
    EXPECT_EQ(RA.Funcs[F].Id, RB.Funcs[F].Id) << Label << ": func " << F;
    EXPECT_EQ(RA.Funcs[F].Code, RB.Funcs[F].Code) << Label << ": func " << F;
  }
  EXPECT_EQ(RA.Stats.SequencesOutlined, RB.Stats.SequencesOutlined) << Label;
  EXPECT_EQ(RA.Stats.OccurrencesReplaced, RB.Stats.OccurrencesReplaced)
      << Label;
  EXPECT_EQ(RA.Stats.InsnsRemoved, RB.Stats.InsnsRemoved) << Label;
}

TEST(Outliner, WindowedMatchesMonolithicAcrossThreadsAndBudgets) {
  // The byte-identity oracle: for any thread count and any window size
  // (budget), the windowed pipeline must reproduce the unbudgeted result
  // exactly — same rewritten methods, same functions, same ids.
  auto Ms = windowedCorpus();
  auto Reference = compileMethods(Ms);
  OutlinerOptions MonoOpts;
  MonoOpts.Partitions = 8;
  MonoOpts.Threads = 2;
  auto RMono = runLtbo(Reference, MonoOpts);
  ASSERT_TRUE(bool(RMono)) << RMono.message();
  EXPECT_GT(RMono->Stats.SequencesOutlined, 0u);

  for (uint32_t Threads : {1u, 4u, 8u}) {
    // Three window shapes: everything in one window, a few groups per
    // window, and one group (or an overrunning single) per window.
    for (uint64_t Budget : {uint64_t(1) << 22, uint64_t(1) << 15,
                            uint64_t(1) << 12}) {
      auto Win = compileMethods(Ms);
      OutlinerOptions WOpts = MonoOpts;
      WOpts.Threads = Threads;
      WOpts.MemoryBudgetBytes = Budget;
      auto RWin = runLtbo(Win, WOpts);
      std::string Label = "threads " + std::to_string(Threads) + " budget " +
                          std::to_string(Budget);
      ASSERT_TRUE(bool(RWin)) << Label << ": " << RWin.message();
      expectSameOutcome(Reference, *RMono, Win, *RWin, Label);

      const auto &S = RWin->Stats;
      EXPECT_EQ(S.PartitionsUsed, 8u) << Label;
      EXPECT_GE(S.DetectWindows, 1u) << Label;
      EXPECT_LE(S.DetectWindows, 8u) << Label;
      // Every window's estimated footprint fits the budget unless it is a
      // single group that alone exceeds it — then the overrun is counted.
      EXPECT_TRUE(S.DetectWindowPeakBytes <= Budget ||
                  S.DetectBudgetOverruns > 0)
          << Label << ": unflagged overrun";
    }
  }
}

TEST(Outliner, WindowedSmallestBudgetUsesOneWindowPerGroup) {
  auto Ms = windowedCorpus();
  auto Win = compileMethods(Ms);
  OutlinerOptions Opts;
  Opts.Partitions = 8;
  Opts.MemoryBudgetBytes = 1; // Nothing fits: every group overruns alone.
  auto R = runLtbo(Win, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  const auto &S = R->Stats;
  EXPECT_EQ(S.DetectWindows, S.PartitionsUsed);
  EXPECT_EQ(S.DetectBudgetOverruns, S.DetectWindows);
  EXPECT_GT(S.GroupsSpilled, 0u);
}

TEST(Outliner, AutoPartitionsDerivedFromBudget) {
  auto Ms = windowedCorpus();

  // Partitions = 0 without a budget stays invalid...
  auto None = compileMethods(Ms);
  OutlinerOptions Bad;
  Bad.Partitions = 0;
  auto RBad = runLtbo(None, Bad);
  EXPECT_FALSE(bool(RBad));
  consumeError(RBad.takeError());

  // ...and with one, K is the smallest count whose per-group estimate
  // fits: a tighter budget must not choose fewer partitions.
  std::size_t PrevK = 0;
  for (uint64_t Budget :
       {uint64_t(1) << 22, uint64_t(1) << 16, uint64_t(1) << 13}) {
    auto Win = compileMethods(Ms);
    OutlinerOptions Opts;
    Opts.Partitions = 0;
    Opts.MemoryBudgetBytes = Budget;
    auto R = runLtbo(Win, Opts);
    ASSERT_TRUE(bool(R)) << R.message();
    EXPECT_GE(R->Stats.PartitionsUsed, 1u);
    EXPECT_GE(R->Stats.PartitionsUsed, PrevK)
        << "tighter budget chose fewer partitions";
    PrevK = R->Stats.PartitionsUsed;
    EXPECT_GT(R->Stats.SequencesOutlined, 0u);
  }
  EXPECT_GT(PrevK, 1u) << "the tightest budget should force a real split";
}

/// Hand-assembled method with a known byte layout:
///
///   word  0      stp x29, x30, [sp, #-16]!   (prologue; LR separator)
///   words 1..6   six distinct LR-free adds   (the outlinable run)
///   word  7      ldr x0, pool                (PC-relative; separator)
///   word  8      ldp x29, x30, [sp], #16     (epilogue; LR separator)
///   word  9      ret                         (terminator)
///   words 10..11 the 8-byte literal pool at byte 40 (8-aligned)
///
/// Two instances share only the run, so outlining removes exactly those six
/// words — an odd multiple of 4 bytes, which un-aligns the pool and forces
/// rewriteMethod's re-alignment NOP (PoolShift) path.
CompiledMethod poolMethod(uint32_t Idx, int64_t Literal) {
  CompiledMethod M;
  M.MethodIdx = Idx;
  M.Name = "pool" + std::to_string(Idx);
  a64::Insn Stp{.Op = a64::Opcode::Stp};
  Stp.Rd = a64::FP;
  Stp.Ra = a64::LR;
  Stp.Rn = a64::SP;
  Stp.Mode = a64::IndexMode::PreIndex;
  Stp.Imm = -16;
  M.Code.push_back(a64::encode(Stp));
  for (int K = 1; K <= 6; ++K) {
    a64::Insn A{.Op = a64::Opcode::AddImm};
    A.Rd = A.Rn = 1;
    A.Imm = K;
    M.Code.push_back(a64::encode(A));
  }
  a64::Insn L{.Op = a64::Opcode::LdrLit};
  L.Rd = 0;
  L.Imm = 12; // Byte 28 + 12 = the pool at byte 40.
  M.Code.push_back(a64::encode(L));
  a64::Insn Ldp{.Op = a64::Opcode::Ldp};
  Ldp.Rd = a64::FP;
  Ldp.Ra = a64::LR;
  Ldp.Rn = a64::SP;
  Ldp.Mode = a64::IndexMode::PostIndex;
  Ldp.Imm = 16;
  M.Code.push_back(a64::encode(Ldp));
  a64::Insn Ret{.Op = a64::Opcode::Ret};
  Ret.Rn = a64::LR;
  M.Code.push_back(a64::encode(Ret));
  uint64_t U = static_cast<uint64_t>(Literal);
  M.Code.push_back(static_cast<uint32_t>(U));
  M.Code.push_back(static_cast<uint32_t>(U >> 32));
  M.Side.EmbeddedData = {{40, 8}};
  M.Side.PcRelRecords = {{28, 40}};
  M.Side.TerminatorOffsets = {36};
  return M;
}

TEST(Outliner, PoolShiftRealignsLiteralPool) {
  const int64_t Lit = 0x0123456789abcdefLL;
  std::vector<CompiledMethod> Ms = {poolMethod(0, Lit), poolMethod(1, Lit)};
  auto R = runLtbo(Ms, {});
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_EQ(R->Stats.SequencesOutlined, 1u);
  EXPECT_EQ(R->Stats.OccurrencesReplaced, 2u);

  for (const auto &M : Ms) {
    // stp, bl, ldr-lit, ldp, ret, re-alignment NOP, 8-byte pool.
    ASSERT_EQ(M.Code.size(), 8u);
    ASSERT_EQ(M.Side.EmbeddedData.size(), 1u);
    EXPECT_EQ(M.Side.EmbeddedData[0].Offset, 24u);
    EXPECT_EQ(M.Side.EmbeddedData[0].Size, 8u);
    ASSERT_EQ(M.Side.PcRelRecords.size(), 1u);
    EXPECT_EQ(M.Side.PcRelRecords[0].InsnOffset, 8u);
    EXPECT_EQ(M.Side.PcRelRecords[0].TargetOffset, 24u);
    ASSERT_EQ(M.Side.TerminatorOffsets.size(), 1u);
    EXPECT_EQ(M.Side.TerminatorOffsets[0], 16u);
    auto Nop = a64::decode(M.Code[5]);
    ASSERT_TRUE(Nop.has_value());
    EXPECT_EQ(Nop->Op, a64::Opcode::Nop) << "re-alignment NOP missing";
    auto L = a64::decode(M.Code[2]);
    ASSERT_TRUE(L.has_value());
    ASSERT_EQ(L->Op, a64::Opcode::LdrLit);
    EXPECT_EQ(L->Imm, 16) << "literal load not retargeted through the shift";
  }

  // The rewritten image must survive the full static verifier (including
  // the 8-alignment check on the 64-bit pool slot) and still return the
  // literal when executed.
  oat::LinkInput In;
  In.AppName = "poolshift";
  In.Methods = Ms;
  In.Outlined = R->Funcs;
  auto O = oat::link(In);
  ASSERT_TRUE(bool(O)) << O.message();
  ASSERT_FALSE(bool(verify::verifyOatFile(*O)));
  sim::Simulator Sim(*O, {});
  for (uint32_t M = 0; M < 2; ++M) {
    auto RR = Sim.call(M, {});
    ASSERT_TRUE(bool(RR)) << RR.message();
    EXPECT_EQ(RR->What, sim::Outcome::Ok);
    EXPECT_EQ(RR->ReturnValue, Lit);
  }
}

TEST(Outliner, SlowPathEndOfCodeRemapTracksPoolShift) {
  // A slow-path range ending exactly at codeSizeBytes() must still end at
  // codeSizeBytes() after the rewrite shrinks the method AND inserts the
  // pool re-alignment NOP. (The old end-of-code special case skipped the
  // PoolShift and left the range 4 bytes short.)
  const int64_t Lit = 0x7766554433221100LL;
  std::vector<CompiledMethod> Ms = {poolMethod(0, Lit), poolMethod(1, Lit)};
  for (auto &M : Ms)
    M.Side.SlowPathRanges = {{4, M.codeSizeBytes()}};
  auto R = runLtbo(Ms, {});
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_GT(R->Stats.SequencesOutlined, 0u);
  for (const auto &M : Ms) {
    ASSERT_EQ(M.Side.SlowPathRanges.size(), 1u);
    EXPECT_EQ(M.Side.SlowPathRanges[0].Begin, 4u);
    EXPECT_EQ(M.Side.SlowPathRanges[0].End, M.codeSizeBytes());
  }
  oat::LinkInput In;
  In.AppName = "slowpath-end";
  In.Methods = Ms;
  In.Outlined = R->Funcs;
  auto O = oat::link(In);
  ASSERT_TRUE(bool(O)) << O.message();
  EXPECT_FALSE(bool(verify::verifyOatFile(*O)));
}

/// A method that is one long run of the same word: the worst case for
/// clamped-candidate duplication in the detectors.
CompiledMethod flatRunMethod(uint32_t Idx, std::size_t N) {
  CompiledMethod M;
  M.MethodIdx = Idx;
  M.Name = "flat" + std::to_string(Idx);
  a64::Insn A{.Op = a64::Opcode::AddImm};
  A.Rd = A.Rn = 1;
  A.Imm = 1;
  for (std::size_t K = 0; K < N; ++K)
    M.Code.push_back(a64::encode(A));
  a64::Insn Ret{.Op = a64::Opcode::Ret};
  Ret.Rn = a64::LR;
  M.Code.push_back(a64::encode(Ret));
  M.Side.TerminatorOffsets = {static_cast<uint32_t>(N * 4)};
  return M;
}

TEST(Outliner, ClampedCandidatesAreDeduplicated) {
  // Two 40-word runs of one repeated instruction. Every suffix-tree node
  // deeper than MaxSeqLen describes the same clamped 8-word content, so
  // without dedup the selection loop would rank 39 candidates; with it,
  // exactly one per distinct content survives: lengths 2..8, i.e. 7.
  OutlinerOptions Opts;
  Opts.MaxSeqLen = 8;
  std::vector<CompiledMethod> ViaTree = {flatRunMethod(0, 40),
                                         flatRunMethod(1, 40)};
  auto ViaArray = ViaTree;
  auto RT = runLtbo(ViaTree, Opts);
  Opts.Detector = DetectorKind::SuffixArray;
  auto RA = runLtbo(ViaArray, Opts);
  ASSERT_TRUE(bool(RT) && bool(RA));

  EXPECT_GT(RT->Stats.SequencesOutlined, 0u);
  EXPECT_EQ(RT->Stats.CandidatesEvaluated,
            static_cast<std::size_t>(Opts.MaxSeqLen - Opts.MinSeqLen + 1));
  EXPECT_EQ(RA->Stats.CandidatesEvaluated, RT->Stats.CandidatesEvaluated);

  // Dedup must not change what gets selected: both backends still produce
  // bit-identical methods, functions and savings.
  EXPECT_EQ(RT->Stats.InsnsRemoved, RA->Stats.InsnsRemoved);
  EXPECT_EQ(RT->Stats.OccurrencesReplaced, RA->Stats.OccurrencesReplaced);
  ASSERT_EQ(ViaTree.size(), ViaArray.size());
  for (std::size_t M = 0; M < ViaTree.size(); ++M)
    EXPECT_EQ(ViaTree[M].Code, ViaArray[M].Code) << "method " << M;
  ASSERT_EQ(RT->Funcs.size(), RA->Funcs.size());
  for (std::size_t F = 0; F < RT->Funcs.size(); ++F)
    EXPECT_EQ(RT->Funcs[F].Code, RA->Funcs[F].Code);
}

TEST(RedundancyAnalysis, FindsPlantedRedundancy) {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 8; ++I)
    Ms.push_back(chainMethod(I, "r" + std::to_string(I)));
  auto Compiled = compileMethods(Ms);
  auto Report = analyzeRedundancy(Compiled, {});
  EXPECT_GT(Report.TotalInsns, 0u);
  EXPECT_GT(Report.EstimatedReductionRatio, 0.3)
      << "eight identical bodies must show heavy redundancy";
  EXPECT_FALSE(Report.TopPatterns.empty());
  EXPECT_FALSE(Report.RepeatsByLength.empty());
  // Top pattern repeats at least as often as any other.
  for (std::size_t I = 1; I < Report.TopPatterns.size(); ++I)
    EXPECT_GE(Report.TopPatterns[0].Count, Report.TopPatterns[I].Count);
}

TEST(RedundancyAnalysis, TerminatorSeparationLowersEstimate) {
  std::vector<dex::Method> Ms;
  for (uint32_t I = 0; I < 8; ++I)
    Ms.push_back(chainMethod(I, "t" + std::to_string(I)));
  auto Compiled = compileMethods(Ms);
  AnalysisOptions Plain;
  AnalysisOptions Separated;
  Separated.SeparateAtTerminators = true;
  auto A = analyzeRedundancy(Compiled, Plain);
  auto B = analyzeRedundancy(Compiled, Separated);
  EXPECT_GE(A.EstimatedReductionRatio, B.EstimatedReductionRatio);
}

} // namespace
