//===- tests/test_verify.cpp - OAT verifier + differential harness tests ---===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the verification layer itself: the static OatVerifier (accepts
/// every real build stage, rejects targeted corruptions), the duplicate-id
/// link regression, and the differential harness run over the paper's
/// workload presets plus 100+ randomized app shapes.
///
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/Encoder.h"
#include "aarch64/PcRel.h"
#include "core/Calibro.h"
#include "oat/Linker.h"
#include "verify/Differential.h"
#include "verify/FaultInjector.h"
#include "verify/OatVerifier.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace calibro;

namespace {

workload::AppSpec smallSpec(uint64_t Seed) {
  workload::AppSpec S;
  S.Name = "vtest";
  S.Seed = Seed;
  S.NumWorkers = 50;
  S.NumUtilities = 25;
  return S;
}

oat::OatFile buildFull(const workload::AppSpec &Spec) {
  dex::App App = workload::makeApp(Spec);
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  auto B = core::buildApp(App, Opts);
  EXPECT_TRUE(bool(B)) << B.message();
  return std::move(B->Oat);
}

//===----------------------------------------------------------------------===//
// OatVerifier: acceptance on real builds
//===----------------------------------------------------------------------===//

TEST(OatVerifier, AcceptsEveryBuildStage) {
  auto Spec = smallSpec(3);
  dex::App App = workload::makeApp(Spec);
  for (int Stage = 0; Stage < 3; ++Stage) {
    core::CalibroOptions Opts;
    Opts.EnableCto = Stage >= 1;
    Opts.EnableLtbo = Stage >= 2;
    auto B = core::buildApp(App, Opts);
    ASSERT_TRUE(bool(B)) << B.message();
    verify::OatVerifier V(B->Oat);
    EXPECT_FALSE(bool(V.run())) << "stage " << Stage;
    EXPECT_GT(V.stats().WordsDecoded, 0u);
    if (Stage >= 2) {
      EXPECT_GT(V.stats().OutlinedChecked, 0u);
    }
  }
}

TEST(OatVerifier, StatsCoverTheImage) {
  auto Oat = buildFull(smallSpec(7));
  verify::OatVerifier V(Oat);
  ASSERT_FALSE(bool(V.run()));
  const auto &S = V.stats();
  // Decoded + data + padding partition .text... padding words are also
  // decoded (they are NOPs), so decoded + data == total.
  EXPECT_EQ(S.WordsDecoded + S.DataWords, Oat.Text.size());
  EXPECT_GT(S.BranchesChecked, 0u);
  EXPECT_GT(S.CallsChecked, 0u);
  EXPECT_EQ(S.OutlinedChecked, Oat.Outlined.size());
}

TEST(Calibro, VerifyOutputOptionGatesTheBuild) {
  auto Spec = smallSpec(9);
  dex::App App = workload::makeApp(Spec);
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  Opts.LtboPartitions = 4;
  Opts.LtboThreads = 2;
  Opts.VerifyOutput = true;
  auto B = core::buildApp(App, Opts);
  EXPECT_TRUE(bool(B)) << B.message();
}

//===----------------------------------------------------------------------===//
// OatVerifier: rejection of targeted corruptions
//===----------------------------------------------------------------------===//

TEST(OatVerifier, RejectsOutlinedBodyWithoutBrLr) {
  auto Oat = buildFull(smallSpec(11));
  ASSERT_FALSE(Oat.Outlined.empty());
  const auto &F = Oat.Outlined.front();
  // Replace the terminal br x30 with ret: still decodable, still a
  // terminator, but no longer the outlining contract.
  a64::Insn Ret{.Op = a64::Opcode::Ret};
  Ret.Rn = a64::LR;
  Oat.Text[(F.CodeOffset + F.CodeSize) / 4 - 1] = a64::encode(Ret);
  auto E = verify::verifyOatFile(Oat);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("br x30"), std::string::npos) << E.message();
}

TEST(OatVerifier, RejectsCallIntoTheMiddleOfAFunction) {
  auto Oat = buildFull(smallSpec(13));
  ASSERT_FALSE(Oat.Outlined.empty());
  // Find a bl that enters an outlined function and shift its target by one
  // instruction: the call now lands mid-body.
  bool Patched = false;
  for (std::size_t W = 0; W < Oat.Text.size() && !Patched; ++W) {
    auto I = a64::decode(Oat.Text[W]);
    if (!I || I->Op != a64::Opcode::Bl)
      continue;
    uint64_t Pc = Oat.BaseAddress + W * 4;
    auto Target = a64::pcRelTarget(*I, Pc);
    ASSERT_TRUE(Target.has_value());
    if (!Oat.outlinedContaining(static_cast<uint32_t>(*Target -
                                                      Oat.BaseAddress)))
      continue;
    auto NewWord = a64::retargetWord(Oat.Text[W], Pc, *Target + 4);
    ASSERT_TRUE(bool(NewWord)) << NewWord.message();
    Oat.Text[W] = *NewWord;
    Patched = true;
  }
  ASSERT_TRUE(Patched) << "no call to an outlined function found";
  EXPECT_TRUE(bool(verify::verifyOatFile(Oat)));
}

TEST(OatVerifier, RejectsGarbagePastTheLastRange) {
  auto Oat = buildFull(smallSpec(17));
  // An uncovered trailing word must be alignment padding (NOP); raw data
  // there means the layout accounting lost a range.
  Oat.Text.push_back(0xdeadbeef);
  auto E = verify::verifyOatFile(Oat);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("NOP"), std::string::npos) << E.message();
}

TEST(OatVerifier, RejectsDuplicateOutlinedIds) {
  auto Oat = buildFull(smallSpec(19));
  ASSERT_GE(Oat.Outlined.size(), 2u);
  Oat.Outlined[1].Id = Oat.Outlined[0].Id;
  EXPECT_TRUE(bool(verify::verifyOatFile(Oat)));
}

//===----------------------------------------------------------------------===//
// Linker: duplicate-id regression (the O(1) lookup fix detects what the
// old linear scan silently resolved to the first match)
//===----------------------------------------------------------------------===//

TEST(Linker, RejectsDuplicateOutlinedFunctionIds) {
  a64::Insn Add{.Op = a64::Opcode::AddImm};
  Add.Rd = Add.Rn = 1;
  Add.Imm = 1;
  a64::Insn BrLr{.Op = a64::Opcode::Br};
  BrLr.Rn = a64::LR;

  codegen::OutlinedFunc A;
  A.Id = 42;
  A.Code = {a64::encode(Add), a64::encode(BrLr)};
  codegen::OutlinedFunc B = A; // Same id, same body: still illegal.

  oat::LinkInput In;
  In.AppName = "dup";
  In.Outlined = {A, B};
  auto O = oat::link(In);
  ASSERT_FALSE(bool(O)) << "duplicate outlined ids must not link";
  auto E = O.takeError();
  EXPECT_NE(E.message().find("duplicate"), std::string::npos) << E.message();
}

//===----------------------------------------------------------------------===//
// Differential harness
//===----------------------------------------------------------------------===//

TEST(Differential, FullLadderOnWorkloadApps) {
  for (uint64_t Seed : {21u, 42u}) {
    auto Spec = smallSpec(Seed);
    verify::DifferentialOptions Opts;
    auto R = verify::runDifferential(Spec, Opts);
    ASSERT_TRUE(bool(R)) << R.message();
    EXPECT_EQ(R->StagesCompared, 4u);
    EXPECT_LT(R->LtboBytes, R->CtoBytes);
    EXPECT_LT(R->CtoBytes, R->BaselineBytes);
  }
}

TEST(Differential, PaperAppsAllStagesVerifyAndAgree) {
  // Every paper preset (small scale), full ladder: Baseline/CTO/CTO+LTBO/
  // +PlOpti/+HfOpti all statically verified and behaviourally identical.
  for (const auto &Spec : workload::paperApps(0.12)) {
    verify::DifferentialOptions Opts;
    Opts.ScriptLength = 8;
    auto R = verify::runDifferential(Spec, Opts);
    ASSERT_TRUE(bool(R)) << Spec.Name << ": " << R.message();
    EXPECT_EQ(R->StagesCompared, 4u) << Spec.Name;
  }
}

TEST(Differential, SuffixArrayDetectorLadder) {
  auto Spec = smallSpec(23);
  verify::DifferentialOptions Opts;
  Opts.Detector = core::DetectorKind::SuffixArray;
  auto R = verify::runDifferential(Spec, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_EQ(R->StagesCompared, 4u);
}

TEST(Differential, HundredRandomizedApps) {
  // The acceptance bar: >= 100 independently shaped random apps, each
  // proven behaviourally identical between Baseline and CTO+LTBO (with a
  // seed-chosen detector backend and partition count), and every image
  // statically verified. The batch entry point fans the seeds out across a
  // thread pool; reports still come back in seed order.
  auto Batch = verify::runRandomDifferentialBatch(1, 100, 4);
  ASSERT_TRUE(bool(Batch)) << Batch.message();
  ASSERT_EQ(Batch->size(), 100u);
  std::size_t AppsWithOutlining = 0;
  for (const auto &R : *Batch) {
    EXPECT_EQ(R.StagesCompared, 1u);
    EXPECT_GT(R.InvocationsPerStage, 0u);
    if (R.LtboBytes < R.BaselineBytes)
      ++AppsWithOutlining;
  }
  // Most random shapes must actually exercise outlining, or the fuzzing
  // proves nothing.
  EXPECT_GT(AppsWithOutlining, 80u);
}

TEST(Differential, WindowedStageIsByteIdenticalToPlOpti) {
  // With a memory budget set, the ladder gains a windowed PlOpti stage and
  // enforces full-image byte identity against the unbudgeted one — the
  // strongest oracle the harness has.
  for (uint64_t Budget : {uint64_t(1) << 14, uint64_t(1) << 18}) {
    auto Spec = smallSpec(31);
    verify::DifferentialOptions Opts;
    Opts.MemoryBudgetBytes = Budget;
    auto R = verify::runDifferential(Spec, Opts);
    ASSERT_TRUE(bool(R)) << "budget " << Budget << ": " << R.message();
    EXPECT_EQ(R->StagesCompared, 5u);
    EXPECT_GT(R->WindowedBytes, 0u);
    EXPECT_EQ(R->WindowedBytes, R->PlOptiBytes)
        << "windowed image size diverged from monolithic";
  }
}

TEST(Differential, HarnessDefaultsStayAligned) {
  // The two harnesses sweep the same pipeline; their default partition
  // counts must agree or the fault sweep exercises a different Phase B
  // shape than the differential ladder.
  EXPECT_EQ(verify::DifferentialOptions{}.Partitions,
            verify::FaultInjectorOptions{}.LtboPartitions);
}

TEST(Differential, RandomSpecsAreDeterministicAndDiverse) {
  auto A = verify::randomAppSpec(5);
  auto B = verify::randomAppSpec(5);
  EXPECT_EQ(A.NumWorkers, B.NumWorkers);
  EXPECT_EQ(A.Seed, B.Seed);
  bool Diverse = false;
  auto First = verify::randomAppSpec(1);
  for (uint64_t S = 2; S < 12; ++S) {
    auto Other = verify::randomAppSpec(S);
    Diverse |= Other.NumWorkers != First.NumWorkers ||
               Other.NumIdioms != First.NumIdioms;
  }
  EXPECT_TRUE(Diverse);
}

} // namespace
