//===- tests/test_faultinject.cpp - Fault-injection harness tests -----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives verify::FaultInjector across every mutation kind and a wide seed
/// sweep, asserting the fault-tolerance contract: every seeded corruption
/// of the compile→link boundary ends in a clean parse-time rejection, a
/// per-method degradation whose image is verifier-clean and behaviourally
/// identical to the unmutated baseline, or no effect at all. A crash, a
/// simulator fault on an accepted image, or silent divergence makes
/// FaultInjector::run itself return an Error — which these tests treat as
/// failure.
///
//===----------------------------------------------------------------------===//

#include "verify/FaultInjector.h"

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <map>
#include <optional>

#include <unistd.h>

using namespace calibro;
using namespace calibro::verify;

namespace {

/// The artifact-mutation kinds, runnable without a cache directory. The
/// two cache kinds are swept separately (FaultInjectCache below) because
/// they need an injector created with CacheDir set.
constexpr std::array<MutationKind, 6> AllKinds = {
    MutationKind::BitFlipSideInfo,    MutationKind::DropSideInfoEntry,
    MutationKind::SwapRangeEndpoints, MutationKind::StaleBranchTarget,
    MutationKind::TruncateSection,    MutationKind::DuplicateOutlinedId,
};
/// The call-graph mutation kinds, swept separately (FaultInjectCallGraph
/// below) because they only bite on a closed-world app spec.
constexpr std::array<MutationKind, 3> GraphKinds = {
    MutationKind::DropCallEdge,
    MutationKind::ForgeEntrypoint,
    MutationKind::CorruptInvokeIdx,
};
static_assert(NumMutationKinds == AllKinds.size() + GraphKinds.size() +
                                      2 /*cache*/ + 1 /*profile*/,
              "new mutation kinds need sweep coverage here");

/// One injector, compiled once, shared by the whole suite: the compile
/// stage dominates the cost and every run() call starts from the same
/// pristine artifacts anyway.
class FaultInjectTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    workload::AppSpec Spec;
    Spec.Name = "faultapp";
    Spec.Seed = 1117;
    Spec.NumWorkers = 40;
    Spec.NumUtilities = 20;

    FaultInjectorOptions Opts;
    Opts.ScriptLength = 6;
    Opts.LtboPartitions = 2;
    Opts.LtboThreads = 2;

    auto Inj = FaultInjector::create(Spec, Opts);
    ASSERT_TRUE(bool(Inj)) << Inj.message();
    Injector.emplace(std::move(*Inj));
  }

  static void TearDownTestSuite() { Injector.reset(); }

  static std::optional<FaultInjector> Injector;
};

std::optional<FaultInjector> FaultInjectTest::Injector;

} // namespace

TEST_F(FaultInjectTest, BaselineIsUsable) {
  ASSERT_TRUE(Injector.has_value());
  EXPECT_FALSE(Injector->baseline().empty());
  EXPECT_GT(Injector->numCandidateMethods(), 0u);
  for (const auto &O : Injector->baseline())
    EXPECT_EQ(O.What, sim::Outcome::Ok);
}

TEST_F(FaultInjectTest, TrichotomyHoldsAcrossSeedSweep) {
  // ISSUE acceptance: >= 200 seeded mutations spanning every kind, each
  // landing in the trichotomy. 6 kinds x 40 seeds = 240 runs.
  constexpr uint64_t NumSeeds = 40;
  std::map<MutationKind, std::array<std::size_t, 3>> Tally;
  std::size_t Total = 0;

  for (MutationKind Kind : AllKinds) {
    for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
      auto Rep = Injector->run(Seed, Kind);
      ASSERT_TRUE(bool(Rep))
          << mutationKindName(Kind) << " seed " << Seed << ": "
          << Rep.message();
      ++Total;
      ++Tally[Kind][static_cast<std::size_t>(Rep->Outcome)];

      // Internal consistency of the report itself.
      EXPECT_EQ(Rep->Kind, Kind);
      switch (Rep->Outcome) {
      case FaultOutcome::Rejected:
        // Only a "verify"-stage rejection can carry degradations: LTBO
        // excluded the corrupt method, but its lying metadata still made
        // the linked image unshippable.
        if (Rep->RejectStage != "verify") {
          EXPECT_EQ(Rep->MethodsRejected, 0u);
        }
        EXPECT_FALSE(Rep->RejectStage.empty());
        EXPECT_FALSE(Rep->RejectMessage.empty());
        break;
      case FaultOutcome::Degraded:
        EXPECT_GT(Rep->MethodsRejected, 0u);
        EXPECT_TRUE(Rep->RejectStage.empty());
        break;
      case FaultOutcome::Harmless:
        EXPECT_EQ(Rep->MethodsRejected, 0u);
        EXPECT_TRUE(Rep->RejectStage.empty());
        break;
      }

      // Per-kind guarantees that do not depend on the seed.
      if (Kind == MutationKind::TruncateSection) {
        EXPECT_EQ(Rep->Outcome, FaultOutcome::Rejected) << "seed " << Seed;
        EXPECT_EQ(Rep->RejectStage, "parse") << "seed " << Seed;
      }
      if (Kind == MutationKind::DuplicateOutlinedId &&
          Rep->Outcome == FaultOutcome::Rejected) {
        EXPECT_EQ(Rep->RejectStage, "link") << "seed " << Seed;
      }
    }
  }
  EXPECT_GE(Total, 200u);

  auto Count = [&Tally](MutationKind K, FaultOutcome O) {
    return Tally[K][static_cast<std::size_t>(O)];
  };
  // The clean build outlines something, so duplicate ids must actually
  // reach (and be refused by) the linker.
  EXPECT_EQ(Count(MutationKind::DuplicateOutlinedId, FaultOutcome::Rejected),
            NumSeeds);
  // Dropped records survive the container checks (validateOat only checks
  // what IS recorded) but the deep validator's completeness pass catches
  // them: genuine graceful degradation, not rejection.
  EXPECT_GT(Count(MutationKind::DropSideInfoEntry, FaultOutcome::Degraded),
            0u);
  // And across the whole sweep all three outcomes must be exercised.
  std::size_t Rejected = 0, Degraded = 0, Harmless = 0;
  for (MutationKind Kind : AllKinds) {
    Rejected += Count(Kind, FaultOutcome::Rejected);
    Degraded += Count(Kind, FaultOutcome::Degraded);
    Harmless += Count(Kind, FaultOutcome::Harmless);
  }
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Degraded, 0u);
  EXPECT_EQ(Rejected + Degraded + Harmless, Total);
}

TEST_F(FaultInjectTest, ClassificationIndependentOfThreadCount) {
  // ISSUE acceptance: the degradation decision is part of the output
  // contract — outcome, rejection count and rejection message must be
  // identical for Threads in {1, 4, 8}.
  constexpr std::array<MutationKind, 4> MetadataKinds = {
      MutationKind::BitFlipSideInfo,
      MutationKind::DropSideInfoEntry,
      MutationKind::SwapRangeEndpoints,
      MutationKind::StaleBranchTarget,
  };
  for (MutationKind Kind : MetadataKinds) {
    for (uint64_t Seed = 0; Seed < 8; ++Seed) {
      std::optional<FaultReport> First;
      for (uint32_t Threads : {1u, 4u, 8u}) {
        auto Rep = Injector->run(Seed, Kind, Threads);
        ASSERT_TRUE(bool(Rep))
            << mutationKindName(Kind) << " seed " << Seed << " threads "
            << Threads << ": " << Rep.message();
        if (!First) {
          First = *Rep;
          continue;
        }
        EXPECT_EQ(static_cast<int>(Rep->Outcome),
                  static_cast<int>(First->Outcome))
            << mutationKindName(Kind) << " seed " << Seed << " threads "
            << Threads;
        EXPECT_EQ(Rep->MethodsRejected, First->MethodsRejected)
            << mutationKindName(Kind) << " seed " << Seed << " threads "
            << Threads;
        EXPECT_EQ(Rep->RejectStage, First->RejectStage);
        EXPECT_EQ(Rep->RejectMessage, First->RejectMessage);
      }
    }
  }
}

TEST(FaultInjectWindowed, SweepHoldsUnderMemoryBudget) {
  // The same fault-tolerance contract with the windowed (memory-budgeted)
  // pipeline in the loop: mutations over a streaming build land in the
  // identical trichotomy, proving the spill/merge path neither masks
  // corruption nor introduces divergence of its own.
  workload::AppSpec Spec;
  Spec.Name = "faultapp-windowed";
  Spec.Seed = 2229;
  Spec.NumWorkers = 40;
  Spec.NumUtilities = 20;

  FaultInjectorOptions Opts;
  Opts.ScriptLength = 6;
  Opts.LtboThreads = 2; // Default LtboPartitions (8) on purpose.
  Opts.MemoryBudgetBytes = 1 << 14;

  auto Inj = FaultInjector::create(Spec, Opts);
  ASSERT_TRUE(bool(Inj)) << Inj.message();

  constexpr std::array<MutationKind, 4> Kinds = {
      MutationKind::BitFlipSideInfo,
      MutationKind::DropSideInfoEntry,
      MutationKind::SwapRangeEndpoints,
      MutationKind::DuplicateOutlinedId,
  };
  std::size_t Rejected = 0, Degraded = 0, Harmless = 0;
  for (MutationKind Kind : Kinds) {
    for (uint64_t Seed = 0; Seed < 8; ++Seed) {
      auto Rep = Inj->run(Seed, Kind);
      ASSERT_TRUE(bool(Rep)) << mutationKindName(Kind) << " seed " << Seed
                             << ": " << Rep.message();
      switch (Rep->Outcome) {
      case FaultOutcome::Rejected:
        ++Rejected;
        break;
      case FaultOutcome::Degraded:
        ++Degraded;
        EXPECT_GT(Rep->MethodsRejected, 0u);
        break;
      case FaultOutcome::Harmless:
        ++Harmless;
        EXPECT_EQ(Rep->MethodsRejected, 0u);
        break;
      }
    }
  }
  EXPECT_EQ(Rejected + Degraded + Harmless, Kinds.size() * 8);
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Degraded + Harmless, 0u);
}

TEST(FaultInjectCache, CacheCorruptionSweepIsAlwaysHarmless) {
  namespace fs = std::filesystem;
  const fs::path CacheDir =
      fs::temp_directory_path() /
      ("calibro-faultinject-cache-" + std::to_string(::getpid()));
  fs::remove_all(CacheDir);

  workload::AppSpec Spec;
  Spec.Name = "cachefault";
  Spec.Seed = 3307;
  Spec.NumWorkers = 30;
  Spec.NumUtilities = 15;

  FaultInjectorOptions Opts;
  Opts.ScriptLength = 4;
  Opts.LtboPartitions = 2;
  Opts.LtboThreads = 2;
  Opts.CacheDir = CacheDir.string();

  auto Inj = FaultInjector::create(Spec, Opts);
  ASSERT_TRUE(bool(Inj)) << Inj.message();

  // A damaged store entry must be indistinguishable from a miss: the warm
  // rebuild succeeds and is byte-identical to baseline, so the classified
  // outcome is always Harmless — anything else comes back as an Error.
  constexpr std::array<MutationKind, 2> CacheKinds = {
      MutationKind::CorruptCacheBlob, MutationKind::TruncateCacheBlob};
  for (MutationKind Kind : CacheKinds) {
    for (uint64_t Seed = 0; Seed < 12; ++Seed) {
      auto Rep = Inj->run(Seed, Kind);
      ASSERT_TRUE(bool(Rep))
          << mutationKindName(Kind) << " seed " << Seed << ": "
          << Rep.message();
      EXPECT_EQ(static_cast<int>(Rep->Outcome),
                static_cast<int>(FaultOutcome::Harmless))
          << mutationKindName(Kind) << " seed " << Seed;
      EXPECT_EQ(Rep->MethodsRejected, 0u);
      EXPECT_TRUE(Rep->RejectStage.empty());
    }
  }

  // And the classification cannot depend on the warm build's thread count.
  for (uint32_t Threads : {1u, 4u, 8u}) {
    auto Rep = Inj->run(7, MutationKind::CorruptCacheBlob, Threads);
    ASSERT_TRUE(bool(Rep)) << "threads " << Threads << ": " << Rep.message();
    EXPECT_EQ(static_cast<int>(Rep->Outcome),
              static_cast<int>(FaultOutcome::Harmless))
        << Threads;
  }

  fs::remove_all(CacheDir);
}

TEST(FaultInjectCallGraph, LenientGraphMutationsAreHarmless) {
  // Closed world, so the GC/merge pipeline actually consumes the graph.
  workload::AppSpec Spec;
  Spec.Name = "graphfault";
  Spec.Seed = 4409;
  Spec.NumWorkers = 30;
  Spec.NumUtilities = 15;
  workload::enableDeadCode(Spec);

  FaultInjectorOptions Opts;
  Opts.ScriptLength = 4;

  auto Inj = FaultInjector::create(Spec, Opts);
  ASSERT_TRUE(bool(Inj)) << Inj.message();

  // Lenient mode repairs dropped binary-visible edges and treats forged
  // roots / corrupted targets conservatively (liveness can only grow or
  // shed never-executed methods), so every mutated image must behave
  // exactly like baseline: always Harmless, never a harness Error.
  for (MutationKind Kind : GraphKinds) {
    for (uint64_t Seed = 0; Seed < 15; ++Seed) {
      auto Rep = Inj->run(Seed, Kind);
      ASSERT_TRUE(bool(Rep))
          << mutationKindName(Kind) << " seed " << Seed << ": "
          << Rep.message();
      EXPECT_EQ(static_cast<int>(Rep->Outcome),
                static_cast<int>(FaultOutcome::Harmless))
          << mutationKindName(Kind) << " seed " << Seed;
      EXPECT_EQ(Rep->MethodsRejected, 0u);
      EXPECT_TRUE(Rep->RejectStage.empty());
    }
  }

  // Classification must not depend on the link stage's thread count.
  for (MutationKind Kind : GraphKinds) {
    for (uint32_t Threads : {1u, 4u, 8u}) {
      auto Rep = Inj->run(3, Kind, Threads);
      ASSERT_TRUE(bool(Rep)) << mutationKindName(Kind) << " threads "
                             << Threads << ": " << Rep.message();
      EXPECT_EQ(static_cast<int>(Rep->Outcome),
                static_cast<int>(FaultOutcome::Harmless))
          << mutationKindName(Kind) << " threads " << Threads;
    }
  }
}

TEST(FaultInjectProfile, CorruptProfileNeverCorruptsOutput) {
  // Closed world, so a profile arms BOTH hot-function filtering and the
  // layout stage — the mutation must reach the affinity-graph heat lookups
  // and the hot-set selection, not just dead config.
  workload::AppSpec Spec;
  Spec.Name = "proffault";
  Spec.Seed = 5519;
  Spec.NumWorkers = 30;
  Spec.NumUtilities = 15;
  workload::enableDeadCode(Spec);

  FaultInjectorOptions Opts;
  Opts.ScriptLength = 4;

  auto Inj = FaultInjector::create(Spec, Opts);
  ASSERT_TRUE(bool(Inj)) << Inj.message();

  // The profile is advisory: garbage cycle counts, zeroed entries and
  // out-of-range method indices may change which optimizations fire, but
  // never the shipped behaviour — Harmless or Degraded, never Rejected,
  // and any divergence from baseline is a harness Error (run() fails).
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    auto Rep = Inj->run(Seed, MutationKind::CorruptProfile);
    ASSERT_TRUE(bool(Rep)) << "seed " << Seed << ": " << Rep.message();
    EXPECT_NE(static_cast<int>(Rep->Outcome),
              static_cast<int>(FaultOutcome::Rejected))
        << "seed " << Seed << ": " << Rep->RejectStage << ": "
        << Rep->RejectMessage;
  }

  // Classification must not depend on the link stage's thread count.
  for (uint32_t Threads : {1u, 4u, 8u}) {
    auto Rep = Inj->run(3, MutationKind::CorruptProfile, Threads);
    ASSERT_TRUE(bool(Rep)) << "threads " << Threads << ": " << Rep.message();
    EXPECT_NE(static_cast<int>(Rep->Outcome),
              static_cast<int>(FaultOutcome::Rejected))
        << "threads " << Threads;
  }
}

TEST(FaultInjectCallGraph, StrictModeRejectsInconsistentGraphs) {
  workload::AppSpec Spec;
  Spec.Name = "graphstrict";
  Spec.Seed = 4409;
  Spec.NumWorkers = 30;
  Spec.NumUtilities = 15;
  workload::enableDeadCode(Spec);

  FaultInjectorOptions Opts;
  Opts.ScriptLength = 4;
  Opts.Strict = true;

  auto Inj = FaultInjector::create(Spec, Opts);
  ASSERT_TRUE(bool(Inj)) << Inj.message();

  // Under --strict-gc a dropped or retargeted dex edge whose call site is
  // still visible in the binary is a BinaryOnlyCallee anomaly and must
  // fail the build instead of being silently repaired.
  std::size_t Rejected = 0;
  for (MutationKind Kind :
       {MutationKind::DropCallEdge, MutationKind::CorruptInvokeIdx}) {
    for (uint64_t Seed = 0; Seed < 15; ++Seed) {
      auto Rep = Inj->run(Seed, Kind);
      ASSERT_TRUE(bool(Rep))
          << mutationKindName(Kind) << " seed " << Seed << ": "
          << Rep.message();
      EXPECT_NE(static_cast<int>(Rep->Outcome),
                static_cast<int>(FaultOutcome::Degraded))
          << mutationKindName(Kind) << " seed " << Seed;
      if (Rep->Outcome == FaultOutcome::Rejected) {
        EXPECT_EQ(Rep->MethodsRejected, 0u);
        EXPECT_FALSE(Rep->RejectMessage.empty());
        ++Rejected;
      }
    }
  }
  EXPECT_GT(Rejected, 0u);
}

TEST(FaultInjectStrict, StrictModeRejectsInsteadOfDegrading) {
  workload::AppSpec Spec;
  Spec.Name = "strictapp";
  Spec.Seed = 2203;
  Spec.NumWorkers = 20;
  Spec.NumUtilities = 10;

  FaultInjectorOptions Opts;
  Opts.ScriptLength = 4;
  Opts.Strict = true;

  auto Inj = FaultInjector::create(Spec, Opts);
  ASSERT_TRUE(bool(Inj)) << Inj.message();

  std::size_t LtboRejections = 0;
  for (MutationKind Kind : AllKinds) {
    for (uint64_t Seed = 0; Seed < 10; ++Seed) {
      auto Rep = Inj->run(Seed, Kind);
      ASSERT_TRUE(bool(Rep))
          << mutationKindName(Kind) << " seed " << Seed << ": "
          << Rep.message();
      // Strict mode turns every would-be degradation into a fail-fast
      // typed error, so Degraded must never appear.
      EXPECT_NE(static_cast<int>(Rep->Outcome),
                static_cast<int>(FaultOutcome::Degraded))
          << mutationKindName(Kind) << " seed " << Seed;
      if (Rep->Outcome == FaultOutcome::Rejected) {
        // Strict LTBO fails fast, so nothing can both degrade and reject.
        EXPECT_EQ(Rep->MethodsRejected, 0u);
        if (Rep->RejectStage == "ltbo")
          ++LtboRejections;
      }
    }
  }
  // The sweep must actually exercise the fail-fast path.
  EXPECT_GT(LtboRejections, 0u);
}
