//===- tests/test_parallel.cpp - Parallel link-stage determinism -----------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the parallel link stage: the OutlineResult
/// — outlined functions, rewritten method bodies, relocations, side info
/// and every scheduling-invariant statistic — must be byte-identical for
/// every Threads value and for both detection backends, and worker errors
/// must surface as the same Error regardless of scheduling. Also covers the
/// parallel differential ladder and the batched fuzz entry point.
///
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"
#include "core/Outliner.h"
#include "hir/HGraph.h"
#include "hir/Passes.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "verify/Differential.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

using namespace calibro;
using namespace calibro::codegen;
using namespace calibro::core;

namespace {

/// Compiles every method of a random app the way buildApp does (CTO on,
/// default HIR pipeline), serially — the input the outliner determinism
/// tests replay under different thread counts.
std::vector<CompiledMethod> compileApp(const workload::AppSpec &Spec) {
  dex::App App = workload::makeApp(Spec);
  CtoStubCache Cache;
  CodeGenerator Gen({.EnableCto = true}, Cache);
  auto Pipeline = hir::defaultPipeline();
  std::vector<CompiledMethod> Out;
  App.forEachMethod([&](const dex::Method &M) {
    if (M.IsNative) {
      Out.push_back(Gen.compileNative(M));
      return;
    }
    auto G = hir::buildHGraph(M);
    ASSERT_TRUE(bool(G)) << G.message();
    hir::runPipeline(*G, Pipeline);
    Out.push_back(Gen.compile(*G));
  });
  return Out;
}

bool sideEqual(const MethodSideInfo &A, const MethodSideInfo &B) {
  return A.TerminatorOffsets == B.TerminatorOffsets &&
         A.PcRelRecords == B.PcRelRecords &&
         A.EmbeddedData == B.EmbeddedData &&
         A.SlowPathRanges == B.SlowPathRanges &&
         A.HasIndirectJump == B.HasIndirectJump && A.IsNative == B.IsNative;
}

bool methodEqual(const CompiledMethod &A, const CompiledMethod &B) {
  return A.MethodIdx == B.MethodIdx && A.Name == B.Name && A.Code == B.Code &&
         A.Relocs == B.Relocs && sideEqual(A.Side, B.Side) &&
         A.Map.Entries == B.Map.Entries;
}

bool funcEqual(const OutlinedFunc &A, const OutlinedFunc &B) {
  return A.Id == B.Id && A.Code == B.Code && A.Relocs == B.Relocs &&
         A.SeqLength == B.SeqLength && A.Occurrences == B.Occurrences;
}

/// The scheduling-invariant part of OutlineStats (timings and thread
/// counts are explicitly excluded — they are scheduling metadata).
void expectInvariantStatsEqual(const OutlineStats &A, const OutlineStats &B,
                               const std::string &What) {
  EXPECT_EQ(A.CandidateMethods, B.CandidateMethods) << What;
  EXPECT_EQ(A.ExcludedIndirectJump, B.ExcludedIndirectJump) << What;
  EXPECT_EQ(A.ExcludedNative, B.ExcludedNative) << What;
  EXPECT_EQ(A.HotFilteredMethods, B.HotFilteredMethods) << What;
  EXPECT_EQ(A.SequencesOutlined, B.SequencesOutlined) << What;
  EXPECT_EQ(A.OccurrencesReplaced, B.OccurrencesReplaced) << What;
  EXPECT_EQ(A.CandidatesEvaluated, B.CandidatesEvaluated) << What;
  EXPECT_EQ(A.InsnsRemoved, B.InsnsRemoved) << What;
  EXPECT_EQ(A.SymbolCount, B.SymbolCount) << What;
}

void expectSameOutcome(const std::vector<CompiledMethod> &MethodsA,
                       const OutlineResult &A,
                       const std::vector<CompiledMethod> &MethodsB,
                       const OutlineResult &B, const std::string &What) {
  ASSERT_EQ(A.Funcs.size(), B.Funcs.size()) << What;
  for (std::size_t I = 0; I < A.Funcs.size(); ++I)
    EXPECT_TRUE(funcEqual(A.Funcs[I], B.Funcs[I])) << What << " func " << I;
  ASSERT_EQ(MethodsA.size(), MethodsB.size()) << What;
  for (std::size_t I = 0; I < MethodsA.size(); ++I)
    EXPECT_TRUE(methodEqual(MethodsA[I], MethodsB[I]))
        << What << " method " << I << " (" << MethodsA[I].Name << ")";
  expectInvariantStatsEqual(A.Stats, B.Stats, What);
}

//===----------------------------------------------------------------------===//
// Byte-identical OutlineResult for every thread count
//===----------------------------------------------------------------------===//

TEST(ParallelOutliner, ByteIdenticalAcrossThreadCounts) {
  for (uint64_t Seed : {3u, 71u}) {
    auto Spec = verify::randomAppSpec(Seed);
    auto Reference = compileApp(Spec);
    for (uint32_t Partitions : {1u, 4u}) {
      OutlinerOptions Base;
      Base.Partitions = Partitions;
      Base.Threads = 1;
      auto RefMethods = Reference;
      auto RefResult = runLtbo(RefMethods, Base);
      ASSERT_TRUE(bool(RefResult)) << RefResult.message();
      ASSERT_GT(RefResult->Stats.SequencesOutlined, 0u)
          << "seed " << Seed << " outlines nothing; the test proves nothing";
      for (uint32_t Threads : {2u, 8u}) {
        OutlinerOptions Opts = Base;
        Opts.Threads = Threads;
        auto Methods = Reference;
        auto Result = runLtbo(Methods, Opts);
        ASSERT_TRUE(bool(Result)) << Result.message();
        expectSameOutcome(RefMethods, *RefResult, Methods, *Result,
                          "seed " + std::to_string(Seed) + " K=" +
                              std::to_string(Partitions) + " threads=" +
                              std::to_string(Threads));
        // The scheduling metadata must reflect the parallelism actually
        // granted: requests are clamped to the machine (asking a 1-core
        // box for 8 threads gets 1 and runs inline — oversubscription
        // only slows a CPU-bound stage down).
        std::size_t Expect = ThreadPool::effectiveThreads(Threads);
        EXPECT_EQ(Result->Stats.PreprocessThreads, Expect);
        EXPECT_EQ(Result->Stats.RewriteThreads, Expect);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Requesting more threads must never cost wall-clock time
//===----------------------------------------------------------------------===//

// The regression this pins down: an 8-thread link used to run SLOWER than a
// 1-thread link (0.0104s vs 0.0092s on the array detector) because the pool
// spawned all 8 workers even on machines with fewer cores and funneled
// every chunk through the queue handshake. With the request clamped to the
// machine and single-worker/single-chunk parallelFor running inline, extra
// requested threads can only help or be ignored — never hurt. The bound is
// deliberately loose (1.5x + 5ms) so scheduler noise cannot flake the test;
// the regression it guards against was a systematic slowdown, not noise.
TEST(ParallelOutliner, EightThreadLinkNotSlowerThanOneThread) {
  auto Spec = workload::paperApps(0.5)[5]; // Wechat: the largest preset.
  auto Reference = compileApp(Spec);

  auto MedianLinkSeconds = [&](uint32_t Threads) {
    std::vector<double> Times;
    for (int Rep = 0; Rep < 5; ++Rep) {
      OutlinerOptions Opts;
      Opts.Partitions = 4;
      Opts.Threads = Threads;
      Opts.Detector = DetectorKind::SuffixArray;
      auto Methods = Reference;
      Timer T;
      auto Result = runLtbo(Methods, Opts);
      Times.push_back(T.seconds());
      EXPECT_TRUE(bool(Result)) << Result.message();
    }
    std::sort(Times.begin(), Times.end());
    return Times[Times.size() / 2];
  };

  double T1 = MedianLinkSeconds(1);
  double T8 = MedianLinkSeconds(8);
  EXPECT_LE(T8, T1 * 1.5 + 0.005)
      << "8-thread link (" << T8 << "s) slower than 1-thread (" << T1 << "s)";
}

//===----------------------------------------------------------------------===//
// Byte-identical OutlineResult across detection backends
//===----------------------------------------------------------------------===//

TEST(ParallelOutliner, ByteIdenticalAcrossDetectorBackends) {
  for (uint64_t Seed : {5u, 29u}) {
    auto Spec = verify::randomAppSpec(Seed);
    auto Reference = compileApp(Spec);
    for (uint32_t Partitions : {1u, 3u}) {
      OutlinerOptions TreeOpts;
      TreeOpts.Partitions = Partitions;
      TreeOpts.Threads = 8;
      TreeOpts.Detector = DetectorKind::SuffixTree;
      OutlinerOptions ArrayOpts = TreeOpts;
      ArrayOpts.Detector = DetectorKind::SuffixArray;

      auto TreeMethods = Reference;
      auto TreeResult = runLtbo(TreeMethods, TreeOpts);
      ASSERT_TRUE(bool(TreeResult)) << TreeResult.message();
      auto ArrayMethods = Reference;
      auto ArrayResult = runLtbo(ArrayMethods, ArrayOpts);
      ASSERT_TRUE(bool(ArrayResult)) << ArrayResult.message();
      expectSameOutcome(TreeMethods, *TreeResult, ArrayMethods, *ArrayResult,
                        "seed " + std::to_string(Seed) + " K=" +
                            std::to_string(Partitions));
    }
  }
}

//===----------------------------------------------------------------------===//
// Deterministic error reporting from parallel workers
//===----------------------------------------------------------------------===//

TEST(ParallelOutliner, WorkerErrorsSurfaceDeterministically) {
  // Corrupt several methods so multiple Phase A workers hit invalid side
  // info concurrently. In strict mode the surfaced Error must be the
  // LOWEST candidate index's, identically for every thread count; in the
  // default degrading mode the rejection set must be identical for every
  // thread count.
  auto Spec = verify::randomAppSpec(9);
  auto Reference = compileApp(Spec);
  ASSERT_GT(Reference.size(), 8u);

  // An undecodable non-data word: not in the supported encoding subset.
  const uint32_t Garbage = 0xffffffffu;
  std::vector<std::size_t> Corrupted;
  for (std::size_t Row = 0; Row < Reference.size() && Corrupted.size() < 3;
       ++Row) {
    CompiledMethod &M = Reference[Row];
    if (M.Side.IsNative || M.Side.HasIndirectJump || M.Code.empty())
      continue; // Not a candidate — its corruption would go unnoticed.
    bool InData = false;
    for (const auto &D : M.Side.EmbeddedData)
      InData |= D.Offset == 0;
    if (InData)
      continue;
    M.Code[0] = Garbage;
    Corrupted.push_back(Row);
  }
  ASSERT_EQ(Corrupted.size(), 3u);
  const std::string &FirstName = Reference[Corrupted.front()].Name;

  std::string FirstMessage;
  for (uint32_t Threads : {1u, 2u, 8u}) {
    OutlinerOptions Opts;
    Opts.Partitions = 4;
    Opts.Threads = Threads;
    Opts.Strict = true;
    auto Methods = Reference;
    auto R = runLtbo(Methods, Opts);
    ASSERT_FALSE(bool(R)) << "threads=" << Threads;
    std::string Message = R.message();
    EXPECT_NE(Message.find(FirstName), std::string::npos)
        << "threads=" << Threads << ": " << Message;
    if (FirstMessage.empty())
      FirstMessage = Message;
    else
      EXPECT_EQ(Message, FirstMessage) << "threads=" << Threads;
  }

  // Default (non-strict) mode: same corruption degrades per method, with a
  // rejection set that is independent of the thread count.
  std::vector<uint32_t> FirstRejected;
  for (uint32_t Threads : {1u, 2u, 8u}) {
    OutlinerOptions Opts;
    Opts.Partitions = 4;
    Opts.Threads = Threads;
    auto Methods = Reference;
    auto R = runLtbo(Methods, Opts);
    ASSERT_TRUE(bool(R)) << "threads=" << Threads << ": " << R.message();
    EXPECT_EQ(R->Stats.MethodsRejected, Corrupted.size())
        << "threads=" << Threads;
    std::vector<uint32_t> Rejected;
    for (const auto &RM : R->Rejected)
      Rejected.push_back(RM.MethodIdx);
    if (FirstRejected.empty())
      FirstRejected = Rejected;
    else
      EXPECT_EQ(Rejected, FirstRejected) << "threads=" << Threads;
  }
}

//===----------------------------------------------------------------------===//
// Parallel differential ladder and batched fuzzing
//===----------------------------------------------------------------------===//

TEST(ParallelDifferential, LadderReportIndependentOfLadderThreads) {
  workload::AppSpec Spec;
  Spec.Name = "ptest";
  Spec.Seed = 31;
  Spec.NumWorkers = 50;
  Spec.NumUtilities = 25;

  verify::DifferentialOptions Serial;
  Serial.LadderThreads = 1;
  auto A = verify::runDifferential(Spec, Serial);
  ASSERT_TRUE(bool(A)) << A.message();

  verify::DifferentialOptions Parallel;
  Parallel.LadderThreads = 4;
  auto B = verify::runDifferential(Spec, Parallel);
  ASSERT_TRUE(bool(B)) << B.message();

  EXPECT_EQ(A->BaselineBytes, B->BaselineBytes);
  EXPECT_EQ(A->CtoBytes, B->CtoBytes);
  EXPECT_EQ(A->LtboBytes, B->LtboBytes);
  EXPECT_EQ(A->PlOptiBytes, B->PlOptiBytes);
  EXPECT_EQ(A->HfOptiBytes, B->HfOptiBytes);
  EXPECT_EQ(A->StagesCompared, B->StagesCompared);
}

//===----------------------------------------------------------------------===//
// Shared-pool fairness groups (the compile daemon's scheduling hook)
//===----------------------------------------------------------------------===//

TEST(ThreadPoolGroups, ReleasedGroupSlotsAreRecycled) {
  ThreadPool Pool(2);
  ThreadPool::GroupId A = Pool.createGroup();
  ThreadPool::GroupId B = Pool.createGroup();
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_NE(A, B);
  Pool.releaseGroup(A);
  // A daemon creates one group per job; the table must not grow per job.
  EXPECT_EQ(Pool.createGroup(), A);
  Pool.releaseGroup(A);
  Pool.releaseGroup(B);
}

TEST(ThreadPoolGroups, ConcurrentParallelForCallsAreIsolatedPerCall) {
  // Several clients share ONE pool, each fanning out under its own group —
  // the daemon's exact shape. Every call must return with exactly its own
  // work done (per-call completion, not the global queue barrier), no
  // matter how the groups' chunks interleave on the workers.
  ThreadPool Pool(4);
  constexpr std::size_t NumClients = 4, N = 20000, Rounds = 8;
  std::vector<std::thread> Clients;
  std::vector<uint64_t> Sums(NumClients, 0);
  for (std::size_t C = 0; C < NumClients; ++C)
    Clients.emplace_back([&Pool, &Sums, C] {
      for (std::size_t Round = 0; Round < Rounds; ++Round) {
        ThreadPool::GroupId G = Pool.createGroup();
        std::vector<uint32_t> Out(N, 0);
        Pool.parallelForIn(G, N, [&Out, C](std::size_t I) {
          Out[I] = static_cast<uint32_t>(I * (C + 1));
        });
        // The call returned, so every one of ITS iterations ran.
        uint64_t Sum = 0;
        for (uint32_t V : Out)
          Sum += V;
        Sums[C] = Sum;
        Pool.releaseGroup(G);
      }
    });
  for (auto &T : Clients)
    T.join();
  const uint64_t Base = uint64_t(N) * (N - 1) / 2;
  for (std::size_t C = 0; C < NumClients; ++C)
    EXPECT_EQ(Sums[C], Base * (C + 1)) << "client " << C;
}

TEST(ThreadPoolGroups, ExceptionInOneGroupLeavesOthersUnharmed) {
  ThreadPool Pool(4);
  ThreadPool::GroupId Faulty = Pool.createGroup();
  ThreadPool::GroupId Healthy = Pool.createGroup();

  std::thread Neighbor([&] {
    std::atomic<std::size_t> Ran{0};
    Pool.parallelForIn(Healthy, 5000,
                       [&Ran](std::size_t) { Ran.fetch_add(1); });
    EXPECT_EQ(Ran.load(), 5000u);
  });

  // The faulty client observes the LOWEST failing index's exception, same
  // as the single-group contract; its neighbor completes untouched.
  for (int Round = 0; Round < 3; ++Round) {
    try {
      Pool.parallelForIn(Faulty, 1000, [](std::size_t I) {
        if (I >= 100)
          throw std::runtime_error("fail at " + std::to_string(I));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "fail at 100");
    }
  }

  Neighbor.join();
  Pool.releaseGroup(Faulty);
  Pool.releaseGroup(Healthy);
}

TEST(ParallelDifferential, BatchMatchesSerialRuns) {
  auto Batch = verify::runRandomDifferentialBatch(1, 6, 4);
  ASSERT_TRUE(bool(Batch)) << Batch.message();
  ASSERT_EQ(Batch->size(), 6u);
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    auto Single = verify::runRandomDifferential(Seed);
    ASSERT_TRUE(bool(Single)) << Single.message();
    const auto &R = (*Batch)[Seed - 1];
    EXPECT_EQ(R.BaselineBytes, Single->BaselineBytes) << "seed " << Seed;
    EXPECT_EQ(R.LtboBytes, Single->LtboBytes) << "seed " << Seed;
    EXPECT_EQ(R.StagesCompared, Single->StagesCompared) << "seed " << Seed;
  }
}

} // namespace
