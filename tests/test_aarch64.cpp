//===- tests/test_aarch64.cpp - AArch64 encoder/decoder tests --------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "aarch64/Decoder.h"
#include "aarch64/Disasm.h"
#include "aarch64/Encoder.h"
#include "aarch64/PcRel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::a64;

namespace {

Insn makeInsn(Opcode Op) {
  Insn I;
  I.Op = Op;
  return I;
}

TEST(Encoder, KnownEncodings) {
  // Cross-checked against an independent assembler (GNU as).
  Insn Nop = makeInsn(Opcode::Nop);
  EXPECT_EQ(encode(Nop), 0xD503201Fu);

  Insn Ret = makeInsn(Opcode::Ret);
  Ret.Rn = LR;
  EXPECT_EQ(encode(Ret), 0xD65F03C0u);

  // add x0, x1, #42
  Insn Add = makeInsn(Opcode::AddImm);
  Add.Rd = 0;
  Add.Rn = 1;
  Add.Imm = 42;
  EXPECT_EQ(encode(Add), 0x9100A820u);

  // sub x16, sp, #0x2000 (the stack-overflow probe, Fig. 4c).
  Insn Sub = makeInsn(Opcode::SubImm);
  Sub.Rd = IP0;
  Sub.Rn = SP;
  Sub.Imm = 2;
  Sub.Shift = 12;
  EXPECT_EQ(encode(Sub), 0xD1400BF0u);

  // ldr x30, [x0, #24] (the Java call pattern, Fig. 4a).
  Insn Ldr = makeInsn(Opcode::LdrImm);
  Ldr.Rd = LR;
  Ldr.Rn = 0;
  Ldr.Imm = 24;
  EXPECT_EQ(encode(Ldr), 0xF9400C1Eu);

  // blr x30
  Insn Blr = makeInsn(Opcode::Blr);
  Blr.Rn = LR;
  EXPECT_EQ(encode(Blr), 0xD63F03C0u);

  // ldr wzr, [x16]
  Insn Probe = makeInsn(Opcode::LdrImm);
  Probe.Is64 = false;
  Probe.Rd = ZR;
  Probe.Rn = IP0;
  EXPECT_EQ(encode(Probe), 0xB940021Fu);

  // stp x29, x30, [sp, #-16]!
  Insn Push = makeInsn(Opcode::Stp);
  Push.Rd = FP;
  Push.Rn = SP;
  Push.Ra = LR;
  Push.Mode = IndexMode::PreIndex;
  Push.Imm = -16;
  EXPECT_EQ(encode(Push), 0xA9BF7BFDu);

  // b #+8
  Insn B = makeInsn(Opcode::B);
  B.Imm = 8;
  EXPECT_EQ(encode(B), 0x14000002u);

  // bl #-4
  Insn Bl = makeInsn(Opcode::Bl);
  Bl.Imm = -4;
  EXPECT_EQ(encode(Bl), 0x97FFFFFFu);

  // cbz w0, #+0xc (paper Table 2's example).
  Insn Cbz = makeInsn(Opcode::Cbz);
  Cbz.Is64 = false;
  Cbz.Rd = 0;
  Cbz.Imm = 0xc;
  EXPECT_EQ(encode(Cbz), 0x34000060u);

  // movz x1, #0x100
  Insn Mov = makeInsn(Opcode::MovZ);
  Mov.Rd = 1;
  Mov.Imm = 0x100;
  EXPECT_EQ(encode(Mov), 0xD2802001u);

  // br x16
  Insn Br = makeInsn(Opcode::Br);
  Br.Rn = IP0;
  EXPECT_EQ(encode(Br), 0xD61F0200u);
}

TEST(Decoder, RejectsGarbage) {
  EXPECT_FALSE(decode(0x00000000u).has_value());
  EXPECT_FALSE(decode(0xFFFFFFFFu).has_value());
  // An FP instruction (fadd s0, s0, s0) is outside the subset.
  EXPECT_FALSE(decode(0x1E202800u).has_value());
}

TEST(Decoder, RoundTripKnown) {
  Insn Push = makeInsn(Opcode::Stp);
  Push.Rd = FP;
  Push.Rn = SP;
  Push.Ra = LR;
  Push.Mode = IndexMode::PreIndex;
  Push.Imm = -16;
  auto D = decode(encode(Push));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, Push);
}

/// Generates a random valid instruction for round-trip testing.
Insn randomInsn(Rng &R) {
  for (;;) {
    Insn I;
    I.Op = static_cast<Opcode>(R.nextInRange(1, 45));
    I.Is64 = R.nextBool(0.7);
    I.Rd = static_cast<uint8_t>(R.nextBelow(32));
    I.Rn = static_cast<uint8_t>(R.nextBelow(32));
    I.Rm = static_cast<uint8_t>(R.nextBelow(32));
    I.Ra = static_cast<uint8_t>(R.nextBelow(32));
    // Only Bcond/Csel/Csinc encode a condition; everyone else keeps the
    // default so the round trip compares equal.
    if (I.Op == Opcode::Bcond || I.Op == Opcode::Csel ||
        I.Op == Opcode::Csinc)
      I.CC = static_cast<Cond>(R.nextBelow(15));

    switch (I.Op) {
    case Opcode::AddImm:
    case Opcode::SubImm:
    case Opcode::AddsImm:
    case Opcode::SubsImm:
      I.Imm = static_cast<int64_t>(R.nextBelow(4096));
      I.Shift = R.nextBool(0.2) ? 12 : 0;
      break;
    case Opcode::MovZ:
    case Opcode::MovN:
    case Opcode::MovK:
      I.Imm = static_cast<int64_t>(R.nextBelow(65536));
      I.Shift = static_cast<uint8_t>(16 * R.nextBelow(I.Is64 ? 4 : 2));
      break;
    case Opcode::AddReg:
    case Opcode::SubReg:
    case Opcode::AddsReg:
    case Opcode::SubsReg:
    case Opcode::AndReg:
    case Opcode::OrrReg:
    case Opcode::EorReg:
    case Opcode::AndsReg:
      I.Shift = static_cast<uint8_t>(R.nextBelow(I.Is64 ? 64 : 32));
      break;
    case Opcode::Lslv:
    case Opcode::Lsrv:
    case Opcode::Asrv:
    case Opcode::Madd:
    case Opcode::Msub:
    case Opcode::Sdiv:
    case Opcode::Udiv:
    case Opcode::Csel:
    case Opcode::Csinc:
    case Opcode::Br:
    case Opcode::Blr:
    case Opcode::Ret:
    case Opcode::Nop:
      break;
    case Opcode::LdrImm:
    case Opcode::StrImm:
      I.Imm = static_cast<int64_t>(R.nextBelow(4096)) << (I.Is64 ? 3 : 2);
      break;
    case Opcode::LdrbImm:
    case Opcode::StrbImm:
      I.Is64 = false;
      I.Imm = static_cast<int64_t>(R.nextBelow(4096));
      break;
    case Opcode::Ldp:
    case Opcode::Stp:
      I.Mode = static_cast<IndexMode>(R.nextBelow(3));
      I.Imm = (static_cast<int64_t>(R.nextBelow(128)) - 64)
              << (I.Is64 ? 3 : 2);
      break;
    case Opcode::LdrLit:
      I.Imm = (static_cast<int64_t>(R.nextBelow(1 << 19)) - (1 << 18)) * 4;
      break;
    case Opcode::Adr:
      I.Imm = static_cast<int64_t>(R.nextBelow(1 << 21)) - (1 << 20);
      break;
    case Opcode::Adrp:
      I.Imm = (static_cast<int64_t>(R.nextBelow(1 << 21)) - (1 << 20))
              << 12;
      break;
    case Opcode::B:
    case Opcode::Bl:
      I.Imm = (static_cast<int64_t>(R.nextBelow(1 << 26)) - (1 << 25)) * 4;
      break;
    case Opcode::Bcond:
    case Opcode::Cbz:
    case Opcode::Cbnz:
      I.Imm = (static_cast<int64_t>(R.nextBelow(1 << 19)) - (1 << 18)) * 4;
      break;
    case Opcode::Tbz:
    case Opcode::Tbnz:
      I.BitPos = static_cast<uint8_t>(R.nextBelow(64));
      I.Is64 = I.BitPos >= 32;
      I.Imm = (static_cast<int64_t>(R.nextBelow(1 << 14)) - (1 << 13)) * 4;
      break;
    case Opcode::Brk:
      I.Imm = static_cast<int64_t>(R.nextBelow(65536));
      break;
    default:
      continue; // Invalid or out-of-range opcode id; draw again.
    }
    if (auto E = validate(I)) {
      consumeError(std::move(E));
      continue;
    }
    return I;
  }
}

class RoundTrip : public ::testing::TestWithParam<uint64_t> {};

/// Property: decode(encode(I)) == I for every valid instruction, modulo
/// fields that do not participate in the encoding (zeroed by validate's
/// canonical-form rules).
TEST_P(RoundTrip, EncodeDecodeIdentity) {
  Rng R(GetParam());
  for (int K = 0; K < 5000; ++K) {
    Insn I = randomInsn(R);
    // Canonicalize fields the encoding cannot represent so the comparison
    // is meaningful.
    switch (I.Op) {
    case Opcode::B:
    case Opcode::Bl:
    case Opcode::Nop:
    case Opcode::Brk:
      I.Rd = I.Rn = I.Rm = I.Ra = 0;
      I.Is64 = true;
      break;
    case Opcode::Bcond:
      I.Rd = I.Rn = I.Rm = I.Ra = 0;
      I.Is64 = true;
      break;
    case Opcode::Br:
    case Opcode::Blr:
    case Opcode::Ret:
      I.Rd = I.Rm = I.Ra = 0;
      I.Is64 = true;
      break;
    case Opcode::Adr:
    case Opcode::Adrp:
    case Opcode::LdrLit:
      I.Rn = I.Rm = I.Ra = 0;
      if (I.Op != Opcode::LdrLit)
        I.Is64 = true;
      break;
    case Opcode::Cbz:
    case Opcode::Cbnz:
      I.Rn = I.Rm = I.Ra = 0;
      break;
    case Opcode::Tbz:
    case Opcode::Tbnz:
      I.Rn = I.Rm = I.Ra = 0;
      break;
    case Opcode::MovZ:
    case Opcode::MovN:
    case Opcode::MovK:
      I.Rn = I.Rm = I.Ra = 0;
      break;
    case Opcode::AddImm:
    case Opcode::SubImm:
    case Opcode::AddsImm:
    case Opcode::SubsImm:
      I.Rm = I.Ra = 0;
      break;
    case Opcode::LdrImm:
    case Opcode::StrImm:
    case Opcode::LdrbImm:
    case Opcode::StrbImm:
      I.Rm = I.Ra = 0;
      break;
    case Opcode::Ldp:
    case Opcode::Stp:
      I.Rm = 0;
      break;
    case Opcode::AddReg:
    case Opcode::SubReg:
    case Opcode::AddsReg:
    case Opcode::SubsReg:
    case Opcode::AndReg:
    case Opcode::OrrReg:
    case Opcode::EorReg:
    case Opcode::AndsReg:
    case Opcode::Lslv:
    case Opcode::Lsrv:
    case Opcode::Asrv:
    case Opcode::Sdiv:
    case Opcode::Udiv:
      I.Ra = 0;
      break;
    case Opcode::Csel:
    case Opcode::Csinc:
      I.Ra = 0;
      break;
    default:
      break;
    }
    uint32_t W = encode(I);
    auto D = decode(W);
    ASSERT_TRUE(D.has_value()) << "undecodable: " << toString(I);
    EXPECT_EQ(*D, I) << "round trip mismatch: " << toString(I) << " vs "
                     << toString(*D);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(1, 2, 3, 42, 0xdeadbeef));

TEST(PcRel, TargetAndRetarget) {
  Insn B = makeInsn(Opcode::B);
  B.Imm = 0x100;
  auto T = pcRelTarget(B, 0x1000);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(*T, 0x1100u);

  ASSERT_FALSE(bool(retarget(B, 0x1000, 0x2000)));
  EXPECT_EQ(B.Imm, 0x1000);
  EXPECT_EQ(*pcRelTarget(B, 0x1000), 0x2000u);

  // Adrp: page-granular.
  Insn P = makeInsn(Opcode::Adrp);
  P.Imm = 0x3000;
  EXPECT_EQ(*pcRelTarget(P, 0x1234), 0x4000u);
  ASSERT_FALSE(bool(retarget(P, 0x1234, 0x9abc)));
  EXPECT_EQ(*pcRelTarget(P, 0x1234), 0x9000u);

  // Out-of-range retarget must fail, not wrap.
  Insn C = makeInsn(Opcode::Cbz);
  C.Rd = 0;
  C.Imm = 0;
  EXPECT_TRUE(bool(retarget(C, 0, uint64_t(1) << 22)));

  // Non-PC-relative instructions are rejected.
  Insn A = makeInsn(Opcode::AddImm);
  A.Imm = 1;
  EXPECT_TRUE(bool(retarget(A, 0, 4)));
}

TEST(PcRel, RetargetAtExactRangeLimits) {
  // Each PC-relative form at its maximal reach: the last representable
  // displacement must retarget cleanly, one granule further must be a
  // typed rejection (never a silent wrap).
  const uint64_t Pc = uint64_t(1) << 36; // Far from zero: room both ways.
  struct Limit {
    Opcode Op;
    int64_t MaxImm, MinImm;
    int64_t Granule;
  };
  const Limit Limits[] = {
      // B/BL: 26-bit word-scaled, +/-128MiB.
      {Opcode::B, (int64_t(1) << 27) - 4, -(int64_t(1) << 27), 4},
      {Opcode::Bl, (int64_t(1) << 27) - 4, -(int64_t(1) << 27), 4},
      // Bcond/CBZ/CBNZ/LdrLit: 19-bit word-scaled, +/-1MiB.
      {Opcode::Bcond, (int64_t(1) << 20) - 4, -(int64_t(1) << 20), 4},
      {Opcode::Cbz, (int64_t(1) << 20) - 4, -(int64_t(1) << 20), 4},
      {Opcode::Cbnz, (int64_t(1) << 20) - 4, -(int64_t(1) << 20), 4},
      {Opcode::LdrLit, (int64_t(1) << 20) - 4, -(int64_t(1) << 20), 4},
      // TBZ/TBNZ: 14-bit word-scaled, +/-32KiB.
      {Opcode::Tbz, (int64_t(1) << 15) - 4, -(int64_t(1) << 15), 4},
      {Opcode::Tbnz, (int64_t(1) << 15) - 4, -(int64_t(1) << 15), 4},
      // ADR: 21-bit byte-granular, +/-1MiB.
      {Opcode::Adr, (int64_t(1) << 20) - 1, -(int64_t(1) << 20), 1},
  };
  for (const Limit &L : Limits) {
    for (int64_t Imm : {L.MaxImm, L.MinImm}) {
      Insn I = makeInsn(L.Op);
      if (L.Op == Opcode::Tbz || L.Op == Opcode::Tbnz)
        I.Is64 = false; // Testing bit 0: the 32-bit form is the valid one.
      I.Imm = 0;
      auto Ok = retarget(I, Pc, Pc + static_cast<uint64_t>(Imm));
      EXPECT_FALSE(bool(Ok)) << toString(I) << " imm " << Imm << ": "
                             << Ok.message();
      EXPECT_EQ(I.Imm, Imm);
      EXPECT_EQ(*pcRelTarget(I, Pc), Pc + static_cast<uint64_t>(Imm));
      // The edge encodings must survive an encode/decode round trip.
      auto D = decode(encode(I));
      ASSERT_TRUE(D.has_value()) << toString(I);
      EXPECT_EQ(D->Imm, Imm) << toString(I);
    }
    for (int64_t Imm : {L.MaxImm + L.Granule, L.MinImm - L.Granule}) {
      Insn I = makeInsn(L.Op);
      if (L.Op == Opcode::Tbz || L.Op == Opcode::Tbnz)
        I.Is64 = false; // Testing bit 0: the 32-bit form is the valid one.
      I.Imm = 0;
      auto Bad = retarget(I, Pc, Pc + static_cast<uint64_t>(Imm));
      EXPECT_TRUE(bool(Bad)) << toString(I) << " accepted imm " << Imm;
      consumeError(std::move(Bad));
      EXPECT_EQ(I.Imm, 0) << "failed retarget must leave the insn intact";
    }
  }
}

TEST(PcRel, RetargetRejectsMisalignedDisplacement) {
  // Word-scaled forms cannot express a displacement that is not a
  // multiple of four, however small.
  const uint64_t Pc = 0x10000;
  for (Opcode Op : {Opcode::B, Opcode::Cbz, Opcode::Tbz, Opcode::LdrLit}) {
    Insn I = makeInsn(Op);
    if (Op == Opcode::Tbz)
      I.Is64 = false;
    I.Imm = 0;
    auto Bad = retarget(I, Pc, Pc + 6);
    EXPECT_TRUE(bool(Bad)) << toString(I);
    consumeError(std::move(Bad));
  }
  // ADR is byte-granular: the same displacement is fine.
  Insn A = makeInsn(Opcode::Adr);
  A.Imm = 0;
  EXPECT_FALSE(bool(retarget(A, Pc, Pc + 6)));
  EXPECT_EQ(A.Imm, 6);
}

TEST(PcRel, AdrpAtPageRangeLimits) {
  // ADRP works on 4KiB pages with a 21-bit page-scaled immediate:
  // +/-4GiB of page delta. The page math must hold even when the PC sits
  // mid-page.
  const uint64_t Pc = (uint64_t(1) << 36) + 0x234; // Mid-page PC.
  const int64_t MaxPages = (int64_t(1) << 32) - 0x1000;
  const int64_t MinPages = -(int64_t(1) << 32);
  for (int64_t Delta : {MaxPages, MinPages}) {
    Insn P = makeInsn(Opcode::Adrp);
    P.Imm = 0;
    uint64_t Target = (Pc & ~uint64_t(0xfff)) + static_cast<uint64_t>(Delta) +
                      0xabc; // Low bits are ignored by ADRP.
    auto Ok = retarget(P, Pc, Target);
    EXPECT_FALSE(bool(Ok)) << "page delta " << Delta << ": " << Ok.message();
    EXPECT_EQ(P.Imm, Delta);
    EXPECT_EQ(*pcRelTarget(P, Pc), Target & ~uint64_t(0xfff));
    auto D = decode(encode(P));
    ASSERT_TRUE(D.has_value());
    EXPECT_EQ(D->Imm, Delta);
  }
  for (int64_t Delta : {MaxPages + 0x1000, MinPages - 0x1000}) {
    Insn P = makeInsn(Opcode::Adrp);
    P.Imm = 0;
    uint64_t Target = (Pc & ~uint64_t(0xfff)) + static_cast<uint64_t>(Delta);
    auto Bad = retarget(P, Pc, Target);
    EXPECT_TRUE(bool(Bad)) << "page delta " << Delta << " accepted";
    consumeError(std::move(Bad));
  }
}

TEST(PcRel, LdrLitAtAlignmentEdge) {
  // A 64-bit literal load pointing at a 4-but-not-8-aligned address is
  // encodable (the field is word-scaled), so the encoder must accept it —
  // the deep side-info validator, not the encoder, is what polices the
  // 8-alignment of 64-bit pool slots.
  const uint64_t Pc = 0x20000;
  Insn L = makeInsn(Opcode::LdrLit);
  L.Is64 = true;
  L.Imm = 0;
  ASSERT_FALSE(bool(retarget(L, Pc, Pc + 0x14))); // 4-aligned, not 8.
  EXPECT_EQ(L.Imm, 0x14);
  auto D = decode(encode(L));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Imm, 0x14);

  // And the word-level path used by the outliner behaves identically at
  // the extreme of the literal range.
  Insn Base = makeInsn(Opcode::LdrLit);
  Base.Is64 = true;
  Base.Imm = 4;
  auto Max = retargetWord(encode(Base), Pc, Pc + ((uint64_t(1) << 20) - 4));
  ASSERT_TRUE(bool(Max)) << Max.message();
  auto Over = retargetWord(encode(Base), Pc, Pc + (uint64_t(1) << 20));
  EXPECT_FALSE(bool(Over));
  consumeError(Over.takeError());
}

TEST(PcRel, RetargetWordPaperExample) {
  // Paper Table 2: cbz w0 at 0x138320 targeting 0x13832c gets re-pointed
  // to 0x138328 after outlining.
  Insn Cbz = makeInsn(Opcode::Cbz);
  Cbz.Is64 = false;
  Cbz.Rd = 0;
  Cbz.Imm = 0xc;
  uint32_t W = encode(Cbz);
  auto Patched = retargetWord(W, 0x138320, 0x138328);
  ASSERT_TRUE(bool(Patched));
  auto D = decode(*Patched);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Imm, 0x8);
}

TEST(Disasm, PaperStyleListing) {
  Insn Cbz = makeInsn(Opcode::Cbz);
  Cbz.Is64 = false;
  Cbz.Rd = 0;
  Cbz.Imm = 0xc;
  EXPECT_EQ(toString(Cbz, 0x138320), "cbz w0, #+0xc (addr 0x13832c)");

  Insn Ldr = makeInsn(Opcode::LdrImm);
  Ldr.Rd = LR;
  Ldr.Rn = 0;
  Ldr.Imm = 24;
  EXPECT_EQ(toString(Ldr), "ldr x30, [x0, #24]");

  Insn Blr = makeInsn(Opcode::Blr);
  Blr.Rn = LR;
  EXPECT_EQ(toString(Blr), "blr x30");

  Insn Mov = makeInsn(Opcode::OrrReg);
  Mov.Rd = 3;
  Mov.Rn = ZR;
  Mov.Rm = 4;
  EXPECT_EQ(toString(Mov), "mov x3, x4");
}

TEST(Insn, Classification) {
  EXPECT_TRUE(isTerminator(Opcode::B));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::Cbz));
  EXPECT_FALSE(isTerminator(Opcode::Bl));
  EXPECT_FALSE(isTerminator(Opcode::Blr));
  EXPECT_TRUE(isCall(Opcode::Bl));
  EXPECT_TRUE(isCall(Opcode::Blr));
  EXPECT_TRUE(isPcRelative(Opcode::Adrp));
  EXPECT_TRUE(isPcRelative(Opcode::LdrLit));
  EXPECT_FALSE(isPcRelative(Opcode::LdrImm));
}

} // namespace
