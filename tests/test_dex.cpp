//===- tests/test_dex.cpp - DEX model and verifier tests --------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "dex/Dex.h"

#include <gtest/gtest.h>

using namespace calibro;
using namespace calibro::dex;

namespace {

Method minimalMethod() {
  Method M;
  M.Idx = 0;
  M.Name = "m";
  M.NumRegs = 4;
  M.NumArgs = 1;
  M.ReturnsValue = true;
  Insn C;
  C.Opcode = Op::ConstInt;
  C.A = 1;
  C.Imm = 5;
  M.Code.push_back(C);
  Insn Ret;
  Ret.Opcode = Op::Return;
  Ret.A = 1;
  M.Code.push_back(Ret);
  return M;
}

TEST(DexVerifier, AcceptsMinimalMethod) {
  EXPECT_FALSE(bool(verifyMethod(minimalMethod(), 1)));
}

TEST(DexVerifier, RejectsRegisterOutOfRange) {
  Method M = minimalMethod();
  M.Code[0].A = 4; // NumRegs is 4 -> v4 invalid.
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, RejectsFallOffEnd) {
  Method M = minimalMethod();
  M.Code.pop_back(); // Remove the return.
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, RejectsBranchTargetOutOfRange) {
  Method M = minimalMethod();
  Insn If;
  If.Opcode = Op::IfEqz;
  If.A = 1;
  If.Target = 99;
  M.Code.insert(M.Code.begin() + 1, If);
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, RejectsConditionalBranchAtEnd) {
  Method M = minimalMethod();
  Insn If;
  If.Opcode = Op::IfEqz;
  If.A = 1;
  If.Target = 0;
  M.Code.push_back(If); // After the return: branch is last insn.
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, RejectsBadFieldOffset) {
  Method M = minimalMethod();
  Insn Get;
  Get.Opcode = Op::IGet;
  Get.A = 1;
  Get.B = 2;
  Get.Imm = 12; // Not 8-aligned.
  M.Code.insert(M.Code.begin() + 1, Get);
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
  M.Code[1].Imm = 40000; // Too large.
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
  M.Code[1].Imm = 16;
  EXPECT_FALSE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, RejectsCalleeOutOfRange) {
  Method M = minimalMethod();
  Insn Call;
  Call.Opcode = Op::InvokeStatic;
  Call.A = 1;
  Call.Idx = 7;
  Call.NumArgs = 0;
  M.Code.insert(M.Code.begin() + 1, Call);
  EXPECT_TRUE(bool(verifyMethod(M, 1)));   // Only 1 method in the app.
  EXPECT_FALSE(bool(verifyMethod(M, 10))); // 10 methods: idx 7 is fine.
}

TEST(DexVerifier, RejectsVirtualWithoutReceiver) {
  Method M = minimalMethod();
  Insn Call;
  Call.Opcode = Op::InvokeVirtual;
  Call.A = 1;
  Call.Idx = 0;
  Call.NumArgs = 0;
  M.Code.insert(M.Code.begin() + 1, Call);
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, RejectsReturnKindMismatch) {
  Method M = minimalMethod();
  M.ReturnsValue = false; // But code ends with return v1.
  EXPECT_TRUE(bool(verifyMethod(M, 1)));

  Method V = minimalMethod();
  V.Code.back().Opcode = Op::ReturnVoid; // return-void in value method.
  EXPECT_TRUE(bool(verifyMethod(V, 1)));
}

TEST(DexVerifier, RejectsNativeWithCode) {
  Method M = minimalMethod();
  M.IsNative = true;
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
  M.Code.clear();
  EXPECT_FALSE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, RejectsHugeRegisterFile) {
  Method M = minimalMethod();
  M.NumRegs = 65;
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
}

TEST(DexVerifier, SwitchChecks) {
  Method M = minimalMethod();
  Insn Sw;
  Sw.Opcode = Op::Switch;
  Sw.A = 1;
  Sw.Imm = 0;
  M.Code.insert(M.Code.begin() + 1, Sw);
  // No tables registered.
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
  M.SwitchTables.push_back({0u});
  EXPECT_FALSE(bool(verifyMethod(M, 1)));
  M.SwitchTables[0] = {99u}; // Case target out of range.
  EXPECT_TRUE(bool(verifyMethod(M, 1)));
  M.SwitchTables[0] = {};
  EXPECT_TRUE(bool(verifyMethod(M, 1))); // Empty table.
}

TEST(DexApp, DuplicateIndicesRejected) {
  App A;
  A.Name = "app";
  A.Files.resize(1);
  Method M1 = minimalMethod();
  Method M2 = minimalMethod();
  M2.Idx = 0; // Duplicate.
  A.Files[0].Methods = {M1, M2};
  EXPECT_TRUE(bool(verifyApp(A)));
  A.Files[0].Methods[1].Idx = 1;
  EXPECT_FALSE(bool(verifyApp(A)));
}

TEST(DexApp, Lookup) {
  App A;
  A.Files.resize(2);
  Method M = minimalMethod();
  M.Idx = 3;
  A.Files[1].Methods.push_back(M);
  EXPECT_EQ(A.numMethods(), 1u);
  ASSERT_NE(A.findMethod(3), nullptr);
  EXPECT_EQ(A.findMethod(0), nullptr);
}

TEST(DexOps, Classification) {
  EXPECT_TRUE(endsBlock(Op::Goto));
  EXPECT_TRUE(endsBlock(Op::Return));
  EXPECT_TRUE(endsBlock(Op::Throw));
  EXPECT_TRUE(endsBlock(Op::Switch));
  EXPECT_FALSE(endsBlock(Op::IfEq));
  EXPECT_FALSE(endsBlock(Op::InvokeStatic));
  EXPECT_STREQ(opName(Op::NewInstance), "new-instance");
  EXPECT_STREQ(opName(Op::IfLtz), "if-ltz");
}

} // namespace
