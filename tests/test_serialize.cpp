//===- tests/test_serialize.cpp - OAT file format tests ---------------------===//
//
// Part of the Calibro project.
//
//===----------------------------------------------------------------------===//

#include "core/Calibro.h"
#include "oat/Serialize.h"
#include "sim/Simulator.h"
#include "support/BinaryStream.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace calibro;

namespace {

oat::OatFile buildSample() {
  workload::AppSpec Spec;
  Spec.Name = "sertest";
  Spec.Seed = 21;
  Spec.NumWorkers = 24;
  Spec.NumUtilities = 12;
  dex::App App = workload::makeApp(Spec);
  core::CalibroOptions Opts;
  Opts.EnableCto = true;
  Opts.EnableLtbo = true;
  auto B = core::buildApp(App, Opts);
  EXPECT_TRUE(bool(B)) << B.message();
  return std::move(B->Oat);
}

TEST(ByteStream, FixedAndVarints) {
  ByteWriter W;
  W.u8(0xab);
  W.u16(0x1234);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefULL);
  W.uleb(0);
  W.uleb(127);
  W.uleb(128);
  W.uleb(0xffffffffffffffffULL);
  W.str("calibro");
  auto Bytes = W.take();

  ByteReader R(Bytes);
  EXPECT_EQ(*R.u8(), 0xab);
  EXPECT_EQ(*R.u16(), 0x1234);
  EXPECT_EQ(*R.u32(), 0xdeadbeefu);
  EXPECT_EQ(*R.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*R.uleb(), 0u);
  EXPECT_EQ(*R.uleb(), 127u);
  EXPECT_EQ(*R.uleb(), 128u);
  EXPECT_EQ(*R.uleb(), 0xffffffffffffffffULL);
  EXPECT_EQ(*R.str(), "calibro");
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(ByteStream, TruncationIsAnError) {
  ByteWriter W;
  W.u32(42);
  auto Bytes = W.take();
  ByteReader R(Bytes);
  auto V64 = R.u64();
  EXPECT_FALSE(bool(V64));
  consumeError(V64.takeError());

  // A varint with all continuation bits set must not loop forever.
  std::vector<uint8_t> Bad(16, 0xff);
  ByteReader R2(Bad);
  auto V = R2.uleb();
  EXPECT_FALSE(bool(V));
  consumeError(V.takeError());
}

TEST(Serialize, RoundTripPreservesEverything) {
  oat::OatFile O = buildSample();
  auto Bytes = oat::serializeOat(O);
  auto Back = oat::deserializeOat(Bytes);
  ASSERT_TRUE(bool(Back)) << Back.message();

  EXPECT_EQ(Back->AppName, O.AppName);
  EXPECT_EQ(Back->BaseAddress, O.BaseAddress);
  EXPECT_EQ(Back->Text, O.Text);
  ASSERT_EQ(Back->Methods.size(), O.Methods.size());
  for (std::size_t M = 0; M < O.Methods.size(); ++M) {
    const auto &A = O.Methods[M];
    const auto &B = Back->Methods[M];
    EXPECT_EQ(A.MethodIdx, B.MethodIdx);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.CodeOffset, B.CodeOffset);
    EXPECT_EQ(A.CodeSize, B.CodeSize);
    EXPECT_EQ(A.Map.Entries, B.Map.Entries);
    EXPECT_EQ(A.Side.TerminatorOffsets, B.Side.TerminatorOffsets);
    EXPECT_EQ(A.Side.PcRelRecords, B.Side.PcRelRecords);
    EXPECT_EQ(A.Side.EmbeddedData, B.Side.EmbeddedData);
    EXPECT_EQ(A.Side.SlowPathRanges, B.Side.SlowPathRanges);
    EXPECT_EQ(A.Side.HasIndirectJump, B.Side.HasIndirectJump);
    EXPECT_EQ(A.Side.IsNative, B.Side.IsNative);
  }
  ASSERT_EQ(Back->CtoStubs.size(), O.CtoStubs.size());
  ASSERT_EQ(Back->Outlined.size(), O.Outlined.size());

  // Re-serialization must be byte-identical (the format is canonical).
  EXPECT_EQ(oat::serializeOat(*Back), Bytes);
}

TEST(Serialize, DeserializedImageRunsIdentically) {
  oat::OatFile O = buildSample();
  auto Back = oat::deserializeOat(oat::serializeOat(O));
  ASSERT_TRUE(bool(Back));

  sim::Simulator SimA(O, {});
  sim::Simulator SimB(*Back, {});
  for (uint32_t Entry = 0; Entry < 4; ++Entry) {
    int64_t Args[1] = {static_cast<int64_t>(Entry) * 13 + 1};
    auto RA = SimA.call(Entry, Args);
    auto RB = SimB.call(Entry, Args);
    ASSERT_TRUE(bool(RA) && bool(RB));
    EXPECT_EQ(RA->ReturnValue, RB->ReturnValue);
    EXPECT_EQ(RA->TraceHash, RB->TraceHash);
    EXPECT_EQ(RA->Cycles, RB->Cycles);
  }
}

TEST(Serialize, IsValidElf64) {
  auto Bytes = oat::serializeOat(buildSample());
  ASSERT_GE(Bytes.size(), 64u);
  EXPECT_EQ(Bytes[0], 0x7f);
  EXPECT_EQ(Bytes[1], 'E');
  EXPECT_EQ(Bytes[2], 'L');
  EXPECT_EQ(Bytes[3], 'F');
  EXPECT_EQ(Bytes[4], 2); // ELFCLASS64
  EXPECT_EQ(Bytes[5], 1); // Little-endian
  uint16_t Machine;
  std::memcpy(&Machine, Bytes.data() + 18, 2);
  EXPECT_EQ(Machine, 183); // EM_AARCH64
}

TEST(Serialize, RejectsCorruption) {
  auto Bytes = oat::serializeOat(buildSample());

  {
    auto Bad = Bytes;
    Bad[0] = 0x00; // Break the ELF magic.
    auto R = oat::deserializeOat(Bad);
    EXPECT_FALSE(bool(R));
    consumeError(R.takeError());
  }
  {
    auto Bad = Bytes;
    Bad.resize(Bytes.size() / 2); // Truncate.
    auto R = oat::deserializeOat(Bad);
    EXPECT_FALSE(bool(R));
    consumeError(R.takeError());
  }
  {
    // Flipping a code word that a PcRel record covers must be caught by
    // the embedded validateOat pass.
    auto O = buildSample();
    const oat::OatMethodEntry *Victim = nullptr;
    for (const auto &M : O.Methods)
      if (!M.Side.PcRelRecords.empty()) {
        Victim = &M;
        break;
      }
    ASSERT_NE(Victim, nullptr);
    O.Text[(Victim->CodeOffset + Victim->Side.PcRelRecords[0].InsnOffset) /
           4] = 0xD503201F; // NOP where a branch should be.
    auto Bad = oat::serializeOat(O);
    auto R = oat::deserializeOat(Bad);
    EXPECT_FALSE(bool(R));
    consumeError(R.takeError());
  }
}

TEST(Serialize, FileRoundTrip) {
  oat::OatFile O = buildSample();
  std::string Path = ::testing::TempDir() + "/calibro_sertest.oat";
  ASSERT_FALSE(bool(oat::writeOatFile(O, Path)));
  auto Back = oat::readOatFile(Path);
  ASSERT_TRUE(bool(Back)) << Back.message();
  EXPECT_EQ(Back->Text, O.Text);
  std::remove(Path.c_str());
}

} // namespace
